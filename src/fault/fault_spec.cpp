#include "fault/fault_spec.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/file_util.h"

namespace reo {

Result<FaultSite> ParseFaultSite(std::string_view name) {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    FaultSite site = static_cast<FaultSite>(i);
    if (name == to_string(site)) return site;
  }
  return Status{ErrorCode::kInvalidArgument,
                "unknown fault site: " + std::string(name)};
}

bool FaultSpec::Targets(FaultSite site) const {
  for (const auto& r : rules) {
    if (r.site == site) return true;
  }
  return false;
}

namespace {

// Minimal recursive-descent parser for the JSON subset fault specs use.
// Values are doubles, strings, bools, arrays, objects; no escapes beyond
// \" \\ \/ \n \t, no unicode, no nesting deeper than the spec needs.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<FaultSpec> Parse() {
    FaultSpec spec;
    REO_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipWs();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) REO_RETURN_IF_ERROR(Expect(','));
      first = false;
      auto key = ParseString();
      if (!key.ok()) return key.status();
      REO_RETURN_IF_ERROR(Expect(':'));
      if (*key == "seed") {
        auto v = ParseNumber();
        if (!v.ok()) return v.status();
        spec.seed = static_cast<uint64_t>(*v);
      } else if (*key == "rules") {
        REO_RETURN_IF_ERROR(ParseRules(spec.rules));
      } else {
        return Error("unknown top-level key: " + *key);
      }
    }
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters after spec");
    return spec;
  }

 private:
  Status ParseRules(std::vector<FaultRule>& out) {
    REO_RETURN_IF_ERROR(Expect('['));
    bool first = true;
    while (true) {
      SkipWs();
      if (Peek() == ']') {
        ++pos_;
        return Status::Ok();
      }
      if (!first) REO_RETURN_IF_ERROR(Expect(','));
      first = false;
      FaultRule rule;
      REO_RETURN_IF_ERROR(ParseRule(rule));
      out.push_back(rule);
    }
  }

  Status ParseRule(FaultRule& rule) {
    REO_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    bool have_site = false;
    while (true) {
      SkipWs();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) REO_RETURN_IF_ERROR(Expect(','));
      first = false;
      auto key = ParseString();
      if (!key.ok()) return key.status();
      REO_RETURN_IF_ERROR(Expect(':'));
      if (*key == "site") {
        auto name = ParseString();
        if (!name.ok()) return name.status();
        auto site = ParseFaultSite(*name);
        if (!site.ok()) return site.status();
        rule.site = *site;
        have_site = true;
      } else if (*key == "window") {
        REO_RETURN_IF_ERROR(Expect('['));
        auto lo = ParseNumber();
        if (!lo.ok()) return lo.status();
        REO_RETURN_IF_ERROR(Expect(','));
        auto hi = ParseNumber();
        if (!hi.ok()) return hi.status();
        REO_RETURN_IF_ERROR(Expect(']'));
        rule.window_start_op = static_cast<uint64_t>(*lo);
        rule.window_end_op = static_cast<uint64_t>(*hi);
        if (rule.window_end_op <= rule.window_start_op) {
          return Error("window end must be greater than start");
        }
      } else {
        auto v = ParseNumber();
        if (!v.ok()) return v.status();
        if (*key == "probability") {
          if (*v < 0.0 || *v > 1.0) return Error("probability outside [0,1]");
          rule.probability = *v;
        } else if (*key == "burst") {
          if (*v < 1.0) return Error("burst must be >= 1");
          rule.burst = static_cast<uint32_t>(*v);
        } else if (*key == "device") {
          rule.device = static_cast<int32_t>(*v);
        } else if (*key == "slow_factor") {
          if (*v < 1.0) return Error("slow_factor must be >= 1");
          rule.slow_factor = *v;
        } else if (*key == "added_latency_us") {
          rule.added_latency_ns = static_cast<uint64_t>(*v * 1000.0);
        } else if (*key == "added_latency_ns") {
          rule.added_latency_ns = static_cast<uint64_t>(*v);
        } else if (*key == "max_triggers") {
          rule.max_triggers = static_cast<uint64_t>(*v);
        } else {
          return Error("unknown rule key: " + *key);
        }
      }
    }
    if (!have_site) return Error("rule missing \"site\"");
    // A slow-site rule with no explicit probability should always fire
    // inside its window: "device 2 is fail-slow" means every op, not none.
    bool slow_site = rule.site == FaultSite::kFlashFailSlow ||
                     rule.site == FaultSite::kBackendSlow;
    if (slow_site && rule.probability == 0.0) rule.probability = 1.0;
    return Status::Ok();
  }

  Result<std::string> ParseString() {
    REO_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: return Error(std::string("unsupported escape \\") + e);
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<double> ParseNumber() {
    SkipWs();
    // Accept true/false for forward compatibility with boolean knobs.
    if (text_.substr(pos_).starts_with("true")) {
      pos_ += 4;
      return 1.0;
    }
    if (text_.substr(pos_).starts_with("false")) {
      pos_ += 5;
      return 0.0;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a number");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return Error("malformed number: " + token);
    }
    return v;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::Ok();
  }

  Status Error(const std::string& what) const {
    char where[32];
    std::snprintf(where, sizeof where, " at offset %zu", pos_);
    return Status{ErrorCode::kInvalidArgument, what + where};
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<FaultSpec> ParseFaultSpec(std::string_view json) {
  return JsonParser(json).Parse();
}

Result<FaultSpec> LoadFaultSpecFile(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  auto spec = ParseFaultSpec(*contents);
  if (!spec.ok()) {
    return Status{spec.status().code(),
                  path + ": " + std::string(spec.status().message())};
  }
  return spec;
}

}  // namespace reo
