// Bounded retry with jittered exponential backoff, shared by the data
// plane (transient flash errors), the cache manager (transient backend
// fetches), and the socket initiator (reconnect-retry). Jitter draws from
// a caller-owned Pcg32 so simulated retries stay reproducible.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace reo {

struct RetryPolicy {
  uint32_t max_attempts = 3;            ///< total tries, including the first
  SimTime backoff_ns = 200 * kNsPerUs;  ///< delay before the first retry
  double backoff_multiplier = 2.0;      ///< growth per subsequent retry
  double jitter_fraction = 0.5;         ///< uniform +/- fraction of the delay
};

/// Backoff before retry number `retry` (0-based: the delay between the
/// first failure and the second attempt is retry 0).
inline SimTime RetryBackoff(const RetryPolicy& policy, uint32_t retry,
                            Pcg32& rng) {
  double base = static_cast<double>(policy.backoff_ns) *
                std::pow(policy.backoff_multiplier, retry);
  double jitter =
      1.0 + policy.jitter_fraction * (2.0 * rng.NextDouble() - 1.0);
  double delay = base * jitter;
  return delay > 0.0 ? static_cast<SimTime>(delay) : SimTime{0};
}

/// The only error class retries may chase. Everything else is either
/// permanent (corruption, missing object) or needs a different response.
inline bool IsRetryable(const Status& status) {
  return status.code() == ErrorCode::kIoError;
}

}  // namespace reo
