// Fail-slow device detection (the "fail-slow at scale" fault class): a
// device that still answers but takes far longer than its peers. Each
// device's service time feeds an EWMA; every check interval the EWMA is
// compared against the median EWMA across devices. A device that stays
// above `outlier_factor x median` for `sustain_checks` consecutive checks
// is flagged once — the cache layer then demotes it like a failed device
// and recovers onto a spare.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_clock.h"
#include "telemetry/metric_registry.h"
#include "trace/event_log.h"

namespace reo {

/// Mirrors flash/flash_device.h's DeviceIndex without depending on it
/// (reo_fault sits below reo_flash in the library graph).
using FaultDeviceIndex = uint32_t;

struct FailSlowConfig {
  double ewma_alpha = 0.2;       ///< weight of the newest sample
  double outlier_factor = 4.0;   ///< flag when EWMA > factor x median
  uint32_t min_samples = 64;     ///< per-device warm-up before judging
  uint32_t check_interval = 32;  ///< samples between outlier checks
  uint32_t sustain_checks = 3;   ///< consecutive outlier checks to flag
};

class FailSlowDetector {
 public:
  explicit FailSlowDetector(size_t devices, FailSlowConfig config = {});

  /// Feed one completed I/O: `service_ns` is the device-side service time,
  /// `now` timestamps the "device.failslow" event if this sample flags.
  void Observe(FaultDeviceIndex device, SimTime service_ns, SimTime now);

  /// Devices newly flagged since the last call (each at most once until
  /// Reset). The caller owns the response (demote, alert, ...).
  std::vector<FaultDeviceIndex> TakeFlagged();

  bool flagged(FaultDeviceIndex device) const;
  double ewma(FaultDeviceIndex device) const;
  uint64_t flagged_total() const { return flagged_total_; }

  /// Forget a device's history — call after a spare replaces it.
  void Reset(FaultDeviceIndex device);

  /// "failslow.flagged" counter.
  void AttachTelemetry(MetricRegistry& registry);
  void AttachEvents(EventLog& events) { ev_ = &events; }

 private:
  struct DeviceStat {
    double ewma = 0.0;
    uint64_t samples = 0;
    uint32_t outlier_streak = 0;
    bool flagged = false;
  };

  double MedianEwma() const;

  FailSlowConfig config_;
  std::vector<DeviceStat> stats_;
  std::vector<FaultDeviceIndex> pending_;
  uint64_t flagged_total_ = 0;
  Counter* tel_flagged_ = nullptr;
  EventLog* ev_ = nullptr;
};

}  // namespace reo
