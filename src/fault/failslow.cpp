#include "fault/failslow.h"

#include <algorithm>
#include <cstdio>

namespace reo {

FailSlowDetector::FailSlowDetector(size_t devices, FailSlowConfig config)
    : config_(config), stats_(devices) {}

void FailSlowDetector::Observe(FaultDeviceIndex device, SimTime service_ns,
                               SimTime now) {
  if (device >= stats_.size()) return;
  DeviceStat& st = stats_[device];
  double sample = static_cast<double>(service_ns);
  if (st.samples == 0) {
    st.ewma = sample;
  } else {
    st.ewma += config_.ewma_alpha * (sample - st.ewma);
  }
  ++st.samples;
  if (st.flagged || st.samples < config_.min_samples ||
      st.samples % config_.check_interval != 0) {
    return;
  }
  double median = MedianEwma();
  if (median > 0.0 && st.ewma > config_.outlier_factor * median) {
    ++st.outlier_streak;
  } else {
    st.outlier_streak = 0;
    return;
  }
  if (st.outlier_streak < config_.sustain_checks) return;
  st.flagged = true;
  pending_.push_back(device);
  ++flagged_total_;
  Inc(tel_flagged_);
  char ratio[32];
  std::snprintf(ratio, sizeof ratio, "%.1f", st.ewma / median);
  Emit(ev_, now, EventSeverity::kWarn, "device.failslow",
       "device latency sustained above array median",
       {{"device", std::to_string(device)},
        {"ewma_ns", std::to_string(static_cast<uint64_t>(st.ewma))},
        {"median_ns", std::to_string(static_cast<uint64_t>(median))},
        {"ratio", ratio}});
}

std::vector<FaultDeviceIndex> FailSlowDetector::TakeFlagged() {
  std::vector<FaultDeviceIndex> out;
  out.swap(pending_);
  return out;
}

bool FailSlowDetector::flagged(FaultDeviceIndex device) const {
  return device < stats_.size() && stats_[device].flagged;
}

double FailSlowDetector::ewma(FaultDeviceIndex device) const {
  return device < stats_.size() ? stats_[device].ewma : 0.0;
}

void FailSlowDetector::Reset(FaultDeviceIndex device) {
  if (device >= stats_.size()) return;
  stats_[device] = DeviceStat{};
}

void FailSlowDetector::AttachTelemetry(MetricRegistry& registry) {
  tel_flagged_ = &registry.GetCounter("failslow.flagged");
}

double FailSlowDetector::MedianEwma() const {
  std::vector<double> warm;
  warm.reserve(stats_.size());
  for (const auto& st : stats_) {
    if (st.samples > 0) warm.push_back(st.ewma);
  }
  if (warm.empty()) return 0.0;
  size_t mid = warm.size() / 2;
  std::nth_element(warm.begin(), warm.begin() + mid, warm.end());
  return warm[mid];
}

}  // namespace reo
