// Central seeded fault injector. Every instrumented layer holds a pointer
// to one shared FaultInjector and calls Roll(site, device) once per
// operation; the decision says whether a fault fires and with what shape
// (error, slow factor, added latency). Rolls draw from one Pcg32 stream per
// site — (seed, site index) — so the fault sequence at a site depends only
// on that site's operation count, never on interleaving with other sites.
//
// The injector keeps a bounded history of fired injections; the
// seeded-determinism test compares histories across runs byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault_spec.h"
#include "telemetry/metric_registry.h"
#include "trace/event_log.h"

namespace reo {

/// Outcome of one Roll. `fire` covers error-type sites; slow-type sites
/// report their shaping through `slow_factor` / `added_latency_ns`.
struct FaultDecision {
  bool fire = false;
  double slow_factor = 1.0;
  uint64_t added_latency_ns = 0;
};

/// One fired injection, recorded in order. op_index is the per-site
/// operation count at firing time (0-based).
struct InjectionRecord {
  FaultSite site;
  uint64_t op_index;
  int32_t device;

  friend bool operator==(const InjectionRecord&,
                         const InjectionRecord&) = default;
};

class FaultInjector {
 public:
  /// History is bounded; older records beyond the cap are dropped (the
  /// determinism test compares prefixes well under the cap).
  explicit FaultInjector(FaultSpec spec, size_t history_cap = 65536);

  /// Cheap gate: true if any rule targets `site`. Callers on hot paths may
  /// skip Roll entirely when false — enabled() never changes after
  /// construction, so skipping does not perturb the RNG streams.
  bool enabled(FaultSite site) const { return site_enabled_[Index(site)]; }

  /// Rolls the dice for one operation at `site` on `device` (-1 when the
  /// site has no device dimension). Advances the site's op count whenever
  /// any rule targets the site, matched or not, so device-filtered rules
  /// stay reproducible. `now` only timestamps the debug event.
  FaultDecision Roll(FaultSite site, int32_t device = -1, SimTime now = 0);

  const FaultSpec& spec() const { return spec_; }
  const std::vector<InjectionRecord>& history() const { return history_; }
  uint64_t injected(FaultSite site) const { return injected_[Index(site)]; }
  uint64_t injected_total() const;
  uint64_t ops(FaultSite site) const { return ops_[Index(site)]; }

  /// "fault.injected" total + "fault.<site>" per-site counters.
  void AttachTelemetry(MetricRegistry& registry);
  /// kDebug "fault.injected" event per firing (bounded by the EventLog).
  void AttachEvents(EventLog& events) { ev_ = &events; }

 private:
  static size_t Index(FaultSite site) { return static_cast<size_t>(site); }

  FaultSpec spec_;
  size_t history_cap_;
  std::vector<InjectionRecord> history_;
  // Per-site state, indexed by FaultSite.
  Pcg32 rng_[kFaultSiteCount];
  uint64_t ops_[kFaultSiteCount] = {};
  uint64_t injected_[kFaultSiteCount] = {};
  bool site_enabled_[kFaultSiteCount] = {};
  Counter* tel_site_[kFaultSiteCount] = {};
  // Per-rule state, parallel to spec_.rules.
  std::vector<uint64_t> burst_left_;
  std::vector<uint64_t> triggers_;

  Counter* tel_total_ = nullptr;
  EventLog* ev_ = nullptr;
};

}  // namespace reo
