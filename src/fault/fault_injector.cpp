#include "fault/fault_injector.h"

#include <string>

namespace reo {

FaultInjector::FaultInjector(FaultSpec spec, size_t history_cap)
    : spec_(std::move(spec)), history_cap_(history_cap) {
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    rng_[i] = Pcg32(spec_.seed, /*stream=*/i + 1);
  }
  for (const auto& rule : spec_.rules) {
    site_enabled_[Index(rule.site)] = true;
  }
  burst_left_.assign(spec_.rules.size(), 0);
  triggers_.assign(spec_.rules.size(), 0);
}

uint64_t FaultInjector::injected_total() const {
  uint64_t total = 0;
  for (uint64_t n : injected_) total += n;
  return total;
}

FaultDecision FaultInjector::Roll(FaultSite site, int32_t device,
                                  SimTime now) {
  FaultDecision out;
  size_t si = Index(site);
  if (!site_enabled_[si]) return out;
  uint64_t op = ops_[si]++;
  for (size_t ri = 0; ri < spec_.rules.size(); ++ri) {
    const FaultRule& rule = spec_.rules[ri];
    if (rule.site != site) continue;
    if (rule.device >= 0 && rule.device != device) continue;
    if (op < rule.window_start_op || op >= rule.window_end_op) continue;
    bool fire = false;
    if (burst_left_[ri] > 0) {
      --burst_left_[ri];
      fire = true;
    } else if (rule.max_triggers != 0 && triggers_[ri] >= rule.max_triggers) {
      // exhausted; keep drawing nothing so other rules stay independent
    } else if (rule.probability >= 1.0 ||
               rng_[si].NextDouble() < rule.probability) {
      fire = true;
      ++triggers_[ri];
      burst_left_[ri] = rule.burst - 1;
    }
    if (!fire) continue;
    out.fire = true;
    out.slow_factor *= rule.slow_factor;
    out.added_latency_ns += rule.added_latency_ns;
  }
  if (out.fire) {
    ++injected_[si];
    if (history_.size() < history_cap_) {
      history_.push_back(InjectionRecord{site, op, device});
    }
    Inc(tel_total_);
    Inc(tel_site_[si]);
    Emit(ev_, now, EventSeverity::kDebug, "fault.injected",
         std::string(to_string(site)),
         {{"site", std::string(to_string(site))},
          {"op", std::to_string(op)},
          {"device", std::to_string(device)}});
  }
  return out;
}

void FaultInjector::AttachTelemetry(MetricRegistry& registry) {
  tel_total_ = &registry.GetCounter("fault.injected");
  for (size_t i = 0; i < kFaultSiteCount; ++i) {
    if (!site_enabled_[i]) continue;
    tel_site_[i] = &registry.GetCounter(
        "fault." + std::string(to_string(static_cast<FaultSite>(i))));
  }
}

}  // namespace reo
