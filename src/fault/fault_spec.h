// Declarative fault specifications for the fault-injection subsystem.
//
// A FaultSpec is a seed plus a list of rules, one per (site, filter)
// combination. Rules are matched per operation at a fault *site* — a named
// point in the stack where the injector is consulted (flash slot reads,
// backend fetches, persistence commits, ...). Windows are expressed in
// per-site operation counts, not wall-clock time, so the same spec + seed
// reproduces the identical fault sequence in the simulator and behind the
// TCP server regardless of timing.
//
// Specs are written as JSON (reo_cli --fault-spec, reo_server --fault-spec,
// reo_loadgen --chaos-spec):
//
//   {
//     "seed": 42,
//     "rules": [
//       {"site": "flash.latent", "probability": 0.01},
//       {"site": "flash.read_transient", "probability": 0.05,
//        "window": [0, 5000], "burst": 2, "max_triggers": 100},
//       {"site": "flash.failslow", "device": 2, "slow_factor": 8.0},
//       {"site": "backend.transient", "probability": 0.02},
//       {"site": "persist.fsync", "probability": 0.001}
//     ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace reo {

/// A point in the stack where the injector is consulted, one roll per
/// operation. Order is load-bearing: each site draws from its own seeded
/// RNG stream (seed, site index) so adding ops at one site never perturbs
/// the fault sequence at another.
enum class FaultSite : uint8_t {
  kFlashLatent = 0,      ///< corrupt slot payload at write (found on read)
  kFlashReadTransient,   ///< slot read returns kIoError once
  kFlashWriteTransient,  ///< slot write returns kIoError once
  kFlashFailSlow,        ///< multiply device service time
  kBackendTransient,     ///< backend fetch returns kIoError once
  kBackendSlow,          ///< backend fetch gains added latency
  kPersistWrite,         ///< persistence commit fails (short write)
  kPersistFsync,         ///< persistence fsync fails
};

inline constexpr size_t kFaultSiteCount = 8;

constexpr std::string_view to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kFlashLatent: return "flash.latent";
    case FaultSite::kFlashReadTransient: return "flash.read_transient";
    case FaultSite::kFlashWriteTransient: return "flash.write_transient";
    case FaultSite::kFlashFailSlow: return "flash.failslow";
    case FaultSite::kBackendTransient: return "backend.transient";
    case FaultSite::kBackendSlow: return "backend.slow";
    case FaultSite::kPersistWrite: return "persist.write";
    case FaultSite::kPersistFsync: return "persist.fsync";
  }
  return "?";
}

/// Parses a site name ("flash.latent"); kInvalidArgument on unknown names.
Result<FaultSite> ParseFaultSite(std::string_view name);

/// One injection rule. A rule fires when the operation is inside its
/// op-count window, matches its device filter, has triggers left, and the
/// per-site RNG draw lands under `probability` (or a burst is running).
struct FaultRule {
  FaultSite site = FaultSite::kFlashLatent;
  double probability = 0.0;     ///< chance of firing per matched op
  uint32_t burst = 1;           ///< consecutive ops affected once triggered
  uint64_t window_start_op = 0; ///< first per-site op index affected
  uint64_t window_end_op = UINT64_MAX;  ///< one past the last op affected
  int32_t device = -1;          ///< device filter; -1 = any device
  double slow_factor = 1.0;     ///< service-time multiplier (failslow/slow)
  uint64_t added_latency_ns = 0;  ///< flat latency added when firing
  uint64_t max_triggers = 0;    ///< total firings allowed; 0 = unlimited
};

struct FaultSpec {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
  /// True if any rule targets `site`.
  bool Targets(FaultSite site) const;
};

/// Parses the JSON spec format above (dependency-free subset parser:
/// objects, arrays, numbers, strings, bools). kInvalidArgument with a
/// position-carrying message on malformed input or unknown keys/sites.
Result<FaultSpec> ParseFaultSpec(std::string_view json);

/// ParseFaultSpec over a file's contents; the path prefixes parse errors.
Result<FaultSpec> LoadFaultSpecFile(const std::string& path);

}  // namespace reo
