#include "admit/admission.h"

#include <algorithm>

namespace reo {

bool ParseAdmissionPolicy(std::string_view name, AdmissionPolicyKind* out) {
  if (name == "all") {
    *out = AdmissionPolicyKind::kAdmitAll;
  } else if (name == "flashiness") {
    *out = AdmissionPolicyKind::kFlashiness;
  } else if (name == "credit") {
    *out = AdmissionPolicyKind::kWriteCredit;
  } else {
    return false;
  }
  return true;
}

namespace {

class AdmitAllPolicy final : public AdmissionPolicy {
 public:
  bool ShouldAdmit(const AdmissionCandidate&, SimTime) override { return true; }
  std::string_view name() const override { return "all"; }
};

/// Flashield-style: an object graduates only when the reuse observed while
/// DRAM-resident clears `min_hits_`. The threshold adapts per window of
/// evictions: graduating more than the target fraction raises it (flash
/// writes too cheap), less lowers it, so the graduate rate tracks the
/// target without a trace-specific constant.
class FlashinessPolicy final : public AdmissionPolicy {
 public:
  explicit FlashinessPolicy(const AdmissionConfig& cfg)
      : target_(std::clamp(cfg.flashiness_target, 0.0, 1.0)),
        window_(std::max<uint32_t>(cfg.flashiness_window, 1)) {}

  bool ShouldAdmit(const AdmissionCandidate& obj, SimTime now) override {
    bool admit = obj.dram_hits >= min_hits_;
    ++seen_;
    if (admit) ++admitted_;
    if (seen_ >= window_) {
      double fraction = static_cast<double>(admitted_) / seen_;
      uint64_t prev = min_hits_;
      if (fraction > target_ && min_hits_ < kMaxThreshold) {
        ++min_hits_;
      } else if (fraction < target_ && min_hits_ > 0) {
        --min_hits_;
      }
      if (min_hits_ != prev) {
        Emit(ev_, now, EventSeverity::kInfo, "admit.threshold",
             "flashiness threshold adapted",
             {{"min_hits", std::to_string(min_hits_)},
              {"graduate_fraction", std::to_string(fraction)}});
      }
      seen_ = 0;
      admitted_ = 0;
    }
    return admit;
  }

  std::string_view name() const override { return "flashiness"; }

  uint64_t min_hits() const { return min_hits_; }

 private:
  static constexpr uint64_t kMaxThreshold = 1 << 20;

  double target_;
  uint32_t window_;
  uint64_t min_hits_ = 1;  ///< start at "any observed reuse"
  uint32_t seen_ = 0;
  uint32_t admitted_ = 0;
};

/// Token bucket in flash-write bytes, refilled at the configured budget
/// rate (the lsm_sim flash_cache credit scheme): graduation requires and
/// spends `stored_bytes` credits; an exhausted bucket drops evictions
/// until refill catches up.
class WriteCreditPolicy final : public AdmissionPolicy {
 public:
  explicit WriteCreditPolicy(const AdmissionConfig& cfg)
      : rate_bps_(cfg.flash_write_budget_bps),
        cap_(static_cast<double>(cfg.flash_write_budget_bps) *
             std::max(cfg.credit_burst_seconds, 0.0)) {
    credits_ = cap_;  // start full so a cold cache is not throttled
  }

  bool ShouldAdmit(const AdmissionCandidate& obj, SimTime now) override {
    Refill(now);
    double need = static_cast<double>(obj.stored_bytes);
    if (credits_ < need) {
      if (!exhausted_) {
        exhausted_ = true;
        Emit(ev_, now, EventSeverity::kInfo, "admit.budget_exhausted",
             "flash-write credits exhausted; dropping DRAM evictions",
             {{"budget_bps", std::to_string(rate_bps_)}});
      }
      return false;
    }
    return true;
  }

  void OnFlashWrite(uint64_t bytes, SimTime now) override {
    Refill(now);
    credits_ -= static_cast<double>(bytes);
    if (credits_ < 0) credits_ = 0;
  }

  std::string_view name() const override { return "credit"; }

  double credits() const { return credits_; }

 private:
  void Refill(SimTime now) {
    if (now > last_refill_) {
      double dt_s = static_cast<double>(now - last_refill_) / 1e9;
      credits_ = std::min(cap_, credits_ + dt_s * static_cast<double>(rate_bps_));
      last_refill_ = now;
    }
    if (exhausted_ && credits_ > 0) exhausted_ = false;
  }

  uint64_t rate_bps_;
  double cap_;
  double credits_ = 0;
  SimTime last_refill_ = 0;
  bool exhausted_ = false;
};

}  // namespace

std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(const AdmissionConfig& cfg) {
  switch (cfg.policy) {
    case AdmissionPolicyKind::kAdmitAll:
      return std::make_unique<AdmitAllPolicy>();
    case AdmissionPolicyKind::kFlashiness:
      return std::make_unique<FlashinessPolicy>(cfg);
    case AdmissionPolicyKind::kWriteCredit:
      return std::make_unique<WriteCreditPolicy>(cfg);
  }
  return std::make_unique<AdmitAllPolicy>();
}

}  // namespace reo
