// AdmissionTier: the DRAM front cache plus its admission policy, as one
// facade the data plane drives.
//
// Clean writes (classes 2/3) are staged in DRAM instead of going to
// flash; reads check DRAM first. When staging needs room the tier evicts
// (segmented LRU) and the policy decides per victim: graduate — write to
// flash through the writer callback the plane installed, carrying the
// hotness the classifier hook reports — or drop, spending no flash
// endurance on an object that never earned it.
//
// The tier is deliberately below the core library: it talks to flash only
// through the installed callback, so `reo_admit` depends on nothing above
// the telemetry/trace substrate.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "admit/admission.h"
#include "admit/dram_cache.h"
#include "common/status.h"
#include "telemetry/metric_registry.h"

namespace reo {

/// Plain mirrors of the tier counters for tests and simulator reports.
struct AdmissionStats {
  uint64_t staged = 0;         ///< writes held in DRAM
  uint64_t bypass = 0;         ///< writes sent straight to flash
  uint64_t write_through = 0;  ///< overwrites of flash-resident objects
  uint64_t dram_hits = 0;
  uint64_t dram_misses = 0;
  uint64_t evictions = 0;  ///< == graduated + dropped
  uint64_t graduated = 0;
  uint64_t graduated_bytes = 0;
  uint64_t dropped = 0;
  uint64_t dropped_bytes = 0;
  uint64_t graduate_failures = 0;  ///< graduation writes flash refused
};

class AdmissionTier {
 public:
  /// Writes one graduating object to flash (the plane's write path).
  using FlashWriteFn = std::function<Status(
      ObjectId id, std::span<const uint8_t> payload, uint64_t logical_bytes,
      uint8_t class_id, SimTime now)>;

  /// Classifies a graduating object from its observed DRAM reuse; the
  /// cache manager installs this so class 2/3 placement starts from
  /// evidence. Null falls back to the class the object was staged with.
  using HotnessFn = std::function<uint8_t(ObjectId id, uint64_t logical_bytes,
                                          uint64_t dram_hits,
                                          uint8_t staged_class)>;

  explicit AdmissionTier(const AdmissionConfig& cfg);

  bool enabled() const { return cfg_.dram_bytes > 0; }
  const AdmissionConfig& config() const { return cfg_; }

  void SetFlashWriter(FlashWriteFn fn) { flash_write_ = std::move(fn); }
  /// The currently installed writer, so a layer with eviction authority
  /// (the cache manager) can wrap it with make-room-then-write.
  const FlashWriteFn& flash_writer() const { return flash_write_; }
  void SetHotnessHook(HotnessFn fn) { hotness_ = std::move(fn); }

  /// Whether a write of this class should be staged at all (clean classes
  /// only; durability classes 0/1 must hit flash before the ack).
  static bool StageableClass(uint8_t class_id) { return class_id >= 2; }

  /// Whether `stored_bytes` can ever fit the DRAM budget.
  bool CanHold(uint64_t stored_bytes) const {
    return dram_.CanHold(stored_bytes);
  }

  /// Stages a shaped (flash-ready) payload, evicting — graduate or drop,
  /// per policy — until it fits. Counted as admit.staged.
  Status Stage(ObjectId id, PayloadBuffer payload, uint64_t logical_bytes,
               uint8_t class_id, SimTime now);

  /// DRAM lookup for the read path; counts dram.hits / dram.misses and
  /// maintains dram.hit_ratio. The pointer is valid until the next
  /// mutating tier call.
  const DramCache::Entry* Lookup(ObjectId id, SimTime now);

  bool Contains(ObjectId id) const { return dram_.Peek(id) != nullptr; }

  /// Drops a staged object (overwrite-invalidate, REMOVE). True when a
  /// DRAM entry existed.
  bool Erase(ObjectId id);

  /// Updates the staged class in place (clean reclass). False when the
  /// object is not staged.
  bool SetClass(ObjectId id, uint8_t class_id);

  /// Forces a staged object to flash now (reclass to a durability class):
  /// writes with `class_id`, then drops the DRAM copy. Counted as an
  /// eviction + graduation so the admit invariant holds.
  Status GraduateNow(ObjectId id, uint8_t class_id, SimTime now);

  /// Reports a tier-caused flash write the tier did not issue itself
  /// (write-through of an overwrite) so budget policies can spend it.
  void NoteWriteThrough(uint64_t bytes, SimTime now);

  /// Counts a write the tier declined to stage (wrong class, oversized,
  /// replay). Telemetry only.
  void CountBypass();

  void Clear() { dram_.Clear(); UpdateGauges(); }

  void AttachTelemetry(MetricRegistry& registry);
  void AttachEvents(EventLog& events);

  const AdmissionStats& stats() const { return stats_; }
  const AdmissionPolicy& policy() const { return *policy_; }
  uint64_t dram_bytes_used() const { return dram_.bytes(); }
  size_t dram_objects() const { return dram_.size(); }

 private:
  /// Evicts until `needed_bytes` fit, graduating or dropping each victim.
  void EvictUntilFit(uint64_t needed_bytes, SimTime now);
  uint8_t ClassifyForFlash(const AdmissionCandidate& victim) const;
  void UpdateGauges();
  void UpdateHitRatio();

  AdmissionConfig cfg_;
  DramCache dram_;
  std::unique_ptr<AdmissionPolicy> policy_;
  FlashWriteFn flash_write_;
  HotnessFn hotness_;
  AdmissionStats stats_;

  // Telemetry (null when un-attached).
  Counter* tel_staged_ = nullptr;
  Counter* tel_bypass_ = nullptr;
  Counter* tel_write_through_ = nullptr;
  Counter* tel_hits_ = nullptr;
  Counter* tel_misses_ = nullptr;
  Counter* tel_evictions_ = nullptr;
  Counter* tel_graduated_ = nullptr;
  Counter* tel_graduated_bytes_ = nullptr;
  Counter* tel_dropped_ = nullptr;
  Counter* tel_dropped_bytes_ = nullptr;
  Counter* tel_graduate_failures_ = nullptr;
  Gauge* tel_dram_bytes_ = nullptr;
  Gauge* tel_dram_objects_ = nullptr;
  Gauge* tel_hit_ratio_ = nullptr;
};

}  // namespace reo
