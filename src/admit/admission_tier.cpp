#include "admit/admission_tier.h"

namespace reo {

AdmissionTier::AdmissionTier(const AdmissionConfig& cfg)
    : cfg_(cfg),
      dram_(cfg.dram_bytes, cfg.protected_fraction),
      policy_(MakeAdmissionPolicy(cfg)) {}

void AdmissionTier::AttachTelemetry(MetricRegistry& registry) {
  tel_staged_ = &registry.GetCounter("admit.staged");
  tel_bypass_ = &registry.GetCounter("admit.bypass");
  tel_write_through_ = &registry.GetCounter("admit.write_through");
  tel_hits_ = &registry.GetCounter("dram.hits");
  tel_misses_ = &registry.GetCounter("dram.misses");
  tel_evictions_ = &registry.GetCounter("dram.evictions");
  tel_graduated_ = &registry.GetCounter("admit.graduated");
  tel_graduated_bytes_ = &registry.GetCounter("admit.graduated_bytes");
  tel_dropped_ = &registry.GetCounter("admit.dropped");
  tel_dropped_bytes_ = &registry.GetCounter("admit.dropped_bytes");
  tel_graduate_failures_ = &registry.GetCounter("admit.graduate_failures");
  tel_dram_bytes_ = &registry.GetGauge("dram.bytes");
  tel_dram_objects_ = &registry.GetGauge("dram.objects");
  tel_hit_ratio_ = &registry.GetGauge("dram.hit_ratio");
  registry.GetGauge("dram.capacity_bytes")
      .Set(static_cast<double>(cfg_.dram_bytes));
  UpdateGauges();
}

void AdmissionTier::AttachEvents(EventLog& events) {
  policy_->AttachEvents(events);
}

uint8_t AdmissionTier::ClassifyForFlash(const AdmissionCandidate& v) const {
  if (!hotness_) return v.staged_class;
  return hotness_(v.id, v.logical_bytes, v.dram_hits, v.staged_class);
}

void AdmissionTier::EvictUntilFit(uint64_t needed_bytes, SimTime now) {
  AdmissionCandidate victim;
  PayloadBuffer payload;
  while (!dram_.HasRoomFor(needed_bytes) &&
         dram_.PopVictim(&victim, &payload)) {
    ++stats_.evictions;
    Inc(tel_evictions_);
    bool graduate =
        flash_write_ != nullptr && policy_->ShouldAdmit(victim, now);
    if (graduate) {
      uint8_t cls = ClassifyForFlash(victim);
      Status st =
          flash_write_(victim.id, payload, victim.logical_bytes, cls, now);
      if (st.ok()) {
        ++stats_.graduated;
        stats_.graduated_bytes += victim.stored_bytes;
        Inc(tel_graduated_);
        Inc(tel_graduated_bytes_, victim.stored_bytes);
        policy_->OnFlashWrite(victim.stored_bytes, now);
        continue;
      }
      ++stats_.graduate_failures;
      Inc(tel_graduate_failures_);
      // Fall through: a refused graduation is a drop (clean data — the
      // backend still has it).
    }
    ++stats_.dropped;
    stats_.dropped_bytes += victim.stored_bytes;
    Inc(tel_dropped_);
    Inc(tel_dropped_bytes_, victim.stored_bytes);
  }
}

Status AdmissionTier::Stage(ObjectId id, PayloadBuffer payload,
                            uint64_t logical_bytes, uint8_t class_id,
                            SimTime now) {
  uint64_t stored = payload.size();
  if (!dram_.CanHold(stored)) {
    return {ErrorCode::kNoSpace, "object exceeds the DRAM budget"};
  }
  // Overwrite drops the old copy first so its bytes don't count against
  // the room the new version needs.
  dram_.Erase(id);
  EvictUntilFit(stored, now);
  dram_.Put(id, std::move(payload), logical_bytes, class_id, now);
  ++stats_.staged;
  Inc(tel_staged_);
  UpdateGauges();
  return Status::Ok();
}

const DramCache::Entry* AdmissionTier::Lookup(ObjectId id, SimTime now) {
  const DramCache::Entry* e = dram_.Get(id, now);
  if (e != nullptr) {
    ++stats_.dram_hits;
    Inc(tel_hits_);
  } else {
    ++stats_.dram_misses;
    Inc(tel_misses_);
  }
  UpdateHitRatio();
  return e;
}

bool AdmissionTier::Erase(ObjectId id) {
  bool erased = dram_.Erase(id);
  if (erased) UpdateGauges();
  return erased;
}

bool AdmissionTier::SetClass(ObjectId id, uint8_t class_id) {
  return dram_.SetClass(id, class_id);
}

Status AdmissionTier::GraduateNow(ObjectId id, uint8_t class_id, SimTime now) {
  const DramCache::Entry* e = dram_.Peek(id);
  if (e == nullptr) return {ErrorCode::kNotFound, "not staged in DRAM"};
  if (flash_write_ == nullptr) {
    return {ErrorCode::kInternal, "admission tier has no flash writer"};
  }
  Status st = flash_write_(id, e->payload, e->logical_bytes, class_id, now);
  if (!st.ok()) {
    ++stats_.graduate_failures;
    Inc(tel_graduate_failures_);
    return st;  // still staged; the caller sees the reclass fail
  }
  uint64_t stored = e->payload.size();
  ++stats_.evictions;
  ++stats_.graduated;
  stats_.graduated_bytes += stored;
  Inc(tel_evictions_);
  Inc(tel_graduated_);
  Inc(tel_graduated_bytes_, stored);
  policy_->OnFlashWrite(stored, now);
  dram_.Erase(id);
  UpdateGauges();
  return Status::Ok();
}

void AdmissionTier::NoteWriteThrough(uint64_t bytes, SimTime now) {
  ++stats_.write_through;
  Inc(tel_write_through_);
  policy_->OnFlashWrite(bytes, now);
}

void AdmissionTier::CountBypass() {
  ++stats_.bypass;
  Inc(tel_bypass_);
}

void AdmissionTier::UpdateGauges() {
  Set(tel_dram_bytes_, static_cast<double>(dram_.bytes()));
  Set(tel_dram_objects_, static_cast<double>(dram_.size()));
}

void AdmissionTier::UpdateHitRatio() {
  uint64_t total = stats_.dram_hits + stats_.dram_misses;
  if (total > 0) {
    Set(tel_hit_ratio_,
        static_cast<double>(stats_.dram_hits) / static_cast<double>(total));
  }
}

}  // namespace reo
