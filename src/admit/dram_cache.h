// Bounded DRAM front cache: hash index over a segmented LRU (probation +
// protected), byte-capacity budget.
//
// New objects land at the head of the probation segment; a DRAM hit
// promotes into the protected segment, whose overflow demotes back to
// probation — one re-reference is evidence, two evictions' worth of scan
// traffic is not (the classic SLRU scan filter). Eviction always takes
// the probation tail first, so one-hit-wonders leave before anything with
// observed reuse. Single-threaded, like the data plane that owns it.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "admit/admission.h"
#include "common/buffer.h"
#include "common/object_id.h"
#include "common/sim_clock.h"

namespace reo {

class DramCache {
 public:
  struct Entry {
    PayloadBuffer payload;  ///< shaped (physical-size) bytes, flash-ready
    uint64_t logical_bytes = 0;
    uint64_t hits = 0;  ///< reads served while resident
    SimTime staged_at = 0;
    SimTime last_hit = 0;
    uint8_t class_id = 3;
  };

  /// @param capacity_bytes DRAM budget; charges the stored payload size.
  /// @param protected_fraction share of the budget the protected segment
  ///        may hold before demoting its tail.
  DramCache(uint64_t capacity_bytes, double protected_fraction);

  /// Inserts or replaces `id`. The caller must have made room first
  /// (CanHold / evictions via TakeEvictionCandidate); oversized objects
  /// are the caller's problem to bypass.
  void Put(ObjectId id, PayloadBuffer payload, uint64_t logical_bytes,
           uint8_t class_id, SimTime now);

  /// Looks up `id`; a hit bumps the reuse features and promotes the entry
  /// to the protected segment. Returns null on miss. The pointer is valid
  /// until the next mutating call.
  const Entry* Get(ObjectId id, SimTime now);

  /// Looks up without touching recency/reuse state.
  const Entry* Peek(ObjectId id) const;

  /// Updates the staged class in place. False when absent.
  bool SetClass(ObjectId id, uint8_t class_id);

  /// Removes `id` if present; true when something was dropped.
  bool Erase(ObjectId id);

  /// Pops the eviction victim (probation tail, else protected tail) and
  /// returns it with its accumulated features; the entry leaves the cache.
  /// Returns false when empty.
  bool PopVictim(AdmissionCandidate* out, PayloadBuffer* payload);

  /// Whether an object of `stored_bytes` can ever fit the budget.
  bool CanHold(uint64_t stored_bytes) const {
    return stored_bytes <= capacity_bytes_;
  }
  /// Whether it fits right now without evicting.
  bool HasRoomFor(uint64_t stored_bytes) const {
    return bytes_ + stored_bytes <= capacity_bytes_;
  }

  void Clear();

  uint64_t bytes() const { return bytes_; }
  size_t size() const { return index_.size(); }
  uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  enum class Segment : uint8_t { kProbation, kProtected };

  struct Node {
    Entry entry;
    Segment segment = Segment::kProbation;
    std::list<ObjectId>::iterator lru_it;
  };

  /// Moves the protected tail back to probation while the protected
  /// segment exceeds its share of the budget.
  void RebalanceProtected();

  uint64_t capacity_bytes_;
  uint64_t protected_capacity_bytes_;
  uint64_t bytes_ = 0;
  uint64_t protected_bytes_ = 0;
  std::unordered_map<ObjectId, Node, ObjectIdHash> index_;
  std::list<ObjectId> probation_;  ///< head = most recent arrival
  std::list<ObjectId> protected_;  ///< head = most recently re-referenced
};

}  // namespace reo
