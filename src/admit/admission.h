// DRAM admission tier configuration and the flash-admission policy
// interface (ROADMAP item 3).
//
// Reo's baseline writes every cache miss straight to flash, so endurance
// is spent on objects never read again. The admission tier holds clean
// objects (classes 2/3) in a bounded DRAM front cache first; on DRAM
// eviction a policy decides whether the object has earned its flash write
// ("graduates" through the existing differentiated-redundancy write path)
// or is dropped and re-fetched from the backend on its next miss. Dirty
// data and metadata (classes 0/1) always bypass the tier — their
// durability contract requires flash + journal before the ack.
//
// Three policies:
//   admit-all    — every eviction graduates; the control arm. With DRAM
//                  size 0 this is byte-identical to the pre-tier stack.
//   flashiness   — Flashield-style: objects graduate only when the reuse
//                  observed while DRAM-resident clears a threshold that
//                  adapts toward a target graduate fraction.
//   write-credit — token bucket refilled at a configured flash-write
//                  budget (bytes/s); graduation spends credits, modeled
//                  on lsm_sim's flash_cache credit scheme.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/object_id.h"
#include "common/sim_clock.h"
#include "common/units.h"
#include "trace/event_log.h"

namespace reo {

enum class AdmissionPolicyKind : uint8_t {
  kAdmitAll = 0,
  kFlashiness,
  kWriteCredit,
};

constexpr std::string_view to_string(AdmissionPolicyKind k) {
  switch (k) {
    case AdmissionPolicyKind::kAdmitAll: return "all";
    case AdmissionPolicyKind::kFlashiness: return "flashiness";
    case AdmissionPolicyKind::kWriteCredit: return "credit";
  }
  return "?";
}

/// Parses "all" / "flashiness" / "credit" (the CLI spelling). Returns
/// false on anything else.
bool ParseAdmissionPolicy(std::string_view name, AdmissionPolicyKind* out);

struct AdmissionConfig {
  /// DRAM front-cache byte budget. 0 disables the tier entirely: every
  /// write goes straight to flash, exactly the pre-tier stack.
  uint64_t dram_bytes = 0;
  AdmissionPolicyKind policy = AdmissionPolicyKind::kAdmitAll;

  /// write-credit: token-bucket refill rate in flash-write bytes/second.
  uint64_t flash_write_budget_bps = 64 * kMiB;
  /// write-credit: bucket cap, as seconds of refill it can accumulate.
  double credit_burst_seconds = 2.0;

  /// flashiness: fraction of DRAM evictions the threshold adapts toward
  /// graduating (the flash-write budget expressed as a rate of evictions).
  double flashiness_target = 0.5;
  /// flashiness: evictions per adaptation window.
  uint32_t flashiness_window = 64;

  /// Segmented LRU: share of the DRAM budget protected for re-referenced
  /// objects; the rest is the probation segment new arrivals land in.
  double protected_fraction = 0.8;
};

/// One DRAM-evicted object as the policy sees it: the reuse/recency
/// features accumulated while it lived in DRAM.
struct AdmissionCandidate {
  ObjectId id;
  uint64_t logical_bytes = 0;
  uint64_t stored_bytes = 0;  ///< DRAM footprint = flash write size
  uint64_t dram_hits = 0;     ///< reads served while DRAM-resident
  SimTime staged_at = 0;
  SimTime last_hit = 0;
  uint8_t staged_class = 3;
};

/// Decides, per DRAM eviction, whether an object graduates to flash.
/// Policies are single-threaded like the data plane that drives them.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// True = graduate (write to flash), false = drop.
  virtual bool ShouldAdmit(const AdmissionCandidate& obj, SimTime now) = 0;

  /// Every flash write the tier causes (graduations and write-throughs)
  /// is reported here so budget-based policies can spend it.
  virtual void OnFlashWrite(uint64_t bytes, SimTime now) {
    (void)bytes;
    (void)now;
  }

  virtual std::string_view name() const = 0;

  /// Threshold moves and budget exhaustion land in this log.
  void AttachEvents(EventLog& events) { ev_ = &events; }

 protected:
  EventLog* ev_ = nullptr;
};

/// Builds the configured policy.
std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(const AdmissionConfig& cfg);

}  // namespace reo
