#include "admit/dram_cache.h"

#include <algorithm>

namespace reo {

DramCache::DramCache(uint64_t capacity_bytes, double protected_fraction)
    : capacity_bytes_(capacity_bytes),
      protected_capacity_bytes_(static_cast<uint64_t>(
          static_cast<double>(capacity_bytes) *
          std::clamp(protected_fraction, 0.0, 1.0))) {}

void DramCache::Put(ObjectId id, PayloadBuffer payload, uint64_t logical_bytes,
                    uint8_t class_id, SimTime now) {
  Erase(id);
  Node node;
  node.entry.logical_bytes = logical_bytes;
  node.entry.staged_at = now;
  node.entry.last_hit = now;
  node.entry.class_id = class_id;
  bytes_ += payload.size();
  node.entry.payload = std::move(payload);
  node.segment = Segment::kProbation;
  probation_.push_front(id);
  node.lru_it = probation_.begin();
  index_.emplace(id, std::move(node));
}

const DramCache::Entry* DramCache::Get(ObjectId id, SimTime now) {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  Node& node = it->second;
  ++node.entry.hits;
  node.entry.last_hit = now;
  // Promote: observed reuse moves the entry into the protected segment.
  if (node.segment == Segment::kProbation) {
    probation_.erase(node.lru_it);
    node.segment = Segment::kProtected;
    protected_bytes_ += node.entry.payload.size();
  } else {
    protected_.erase(node.lru_it);
  }
  protected_.push_front(id);
  node.lru_it = protected_.begin();
  RebalanceProtected();
  return &node.entry;
}

const DramCache::Entry* DramCache::Peek(ObjectId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &it->second.entry;
}

bool DramCache::SetClass(ObjectId id, uint8_t class_id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  it->second.entry.class_id = class_id;
  return true;
}

bool DramCache::Erase(ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  Node& node = it->second;
  bytes_ -= node.entry.payload.size();
  if (node.segment == Segment::kProbation) {
    probation_.erase(node.lru_it);
  } else {
    protected_bytes_ -= node.entry.payload.size();
    protected_.erase(node.lru_it);
  }
  index_.erase(it);
  return true;
}

bool DramCache::PopVictim(AdmissionCandidate* out, PayloadBuffer* payload) {
  ObjectId victim;
  if (!probation_.empty()) {
    victim = probation_.back();
  } else if (!protected_.empty()) {
    victim = protected_.back();
  } else {
    return false;
  }
  auto it = index_.find(victim);
  Node& node = it->second;
  out->id = victim;
  out->logical_bytes = node.entry.logical_bytes;
  out->stored_bytes = node.entry.payload.size();
  out->dram_hits = node.entry.hits;
  out->staged_at = node.entry.staged_at;
  out->last_hit = node.entry.last_hit;
  out->staged_class = node.entry.class_id;
  *payload = std::move(node.entry.payload);
  bytes_ -= out->stored_bytes;
  if (node.segment == Segment::kProbation) {
    probation_.pop_back();
  } else {
    protected_bytes_ -= out->stored_bytes;
    protected_.pop_back();
  }
  index_.erase(it);
  return true;
}

void DramCache::Clear() {
  index_.clear();
  probation_.clear();
  protected_.clear();
  bytes_ = 0;
  protected_bytes_ = 0;
}

void DramCache::RebalanceProtected() {
  while (protected_bytes_ > protected_capacity_bytes_ &&
         protected_.size() > 1) {
    ObjectId demote = protected_.back();
    protected_.pop_back();
    Node& node = index_.at(demote);
    protected_bytes_ -= node.entry.payload.size();
    node.segment = Segment::kProbation;
    // Demotion lands at probation *head*: it was re-referenced once, so it
    // still outranks brand-new arrivals... but below anything protected.
    probation_.push_front(demote);
    node.lru_it = probation_.begin();
  }
}

}  // namespace reo
