// Consistent-hash ring with virtual nodes: the cluster's placement
// function.
//
// Each member node is hashed onto the ring at `virtual_nodes` points; a
// key is owned by the first node point clockwise from the key's own hash.
// Virtual nodes smooth the per-node share toward 1/N (the skew bound the
// ring tests pin), and consistency bounds churn: adding or removing one
// of N nodes remaps only ~1/N of the key space — every other key keeps
// its owner, which is what makes node death a partial event instead of a
// reshuffle.
//
// The ring is pure membership: it answers "who would own this key" for
// the configured node set. Liveness is a separate concern (NodeHealth);
// ClusterInitiator composes the two by walking ReplicasOf() until it
// finds a usable node — so a dead node's keys land on its ring successor
// without mutating the ring, and remap back the moment it returns.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/object_id.h"

namespace reo {

struct HashRingConfig {
  uint32_t virtual_nodes = 128;  ///< ring points per member node
};

class HashRing {
 public:
  explicit HashRing(HashRingConfig config = {}) : config_(config) {}

  /// Adds a member (no-op if present). O(V log V) re-sort.
  void AddNode(uint32_t node);
  /// Removes a member (no-op if absent).
  void RemoveNode(uint32_t node);
  bool Contains(uint32_t node) const;
  size_t num_nodes() const { return nodes_.size(); }

  /// Ring owner of a key; nullopt on an empty ring.
  std::optional<uint32_t> OwnerOf(ObjectId id) const;

  /// Up to `count` distinct members clockwise from the key's point,
  /// owner first — the failover order. The second entry is the ring
  /// successor: the node that inherits the key if the owner leaves.
  std::vector<uint32_t> ReplicasOf(ObjectId id, size_t count) const;

  /// The key's ring successor (second distinct member clockwise);
  /// nullopt with fewer than two members.
  std::optional<uint32_t> SuccessorOf(ObjectId id) const;

 private:
  uint64_t KeyPoint(ObjectId id) const;

  HashRingConfig config_;
  std::vector<uint32_t> nodes_;  ///< sorted member ids
  /// Sorted (ring point, node) pairs — the ring itself.
  std::vector<std::pair<uint64_t, uint32_t>> points_;
};

}  // namespace reo
