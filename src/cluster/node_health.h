// Per-node health state machine for the cluster client.
//
//   alive --consecutive failures--> suspect --more failures--> dead
//   dead  --probe interval elapses--> probing --success--> alive
//                                             --failure--> dead
//
// Two failure detectors feed it, mirroring the repo's device-level
// tolerance story one domain up:
//   * fail-stop: `suspect_after` consecutive transport failures mark a
//     node suspect, `dead_after` mark it dead;
//   * fail-slow: a per-node latency EWMA compared against the median of
//     its peers' EWMAs (failslow.h's detection idea) marks a node
//     suspect before it ever drops a connection.
// Suspect nodes still serve (reads are deprioritized by the caller);
// dead nodes are skipped by routing until a timed probe brings them
// back. Single-threaded by design: each closed-loop worker owns one
// tracker, like it owns one initiator per node.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace reo {

enum class NodeState : uint8_t { kAlive = 0, kSuspect, kDead, kProbing };

constexpr std::string_view to_string(NodeState s) {
  switch (s) {
    case NodeState::kAlive: return "alive";
    case NodeState::kSuspect: return "suspect";
    case NodeState::kDead: return "dead";
    case NodeState::kProbing: return "probing";
  }
  return "?";
}

struct NodeHealthConfig {
  uint32_t suspect_after = 2;  ///< consecutive failures → suspect
  uint32_t dead_after = 4;     ///< consecutive failures → dead
  double ewma_alpha = 0.2;     ///< latency EWMA smoothing factor
  /// Fail-slow: EWMA above this multiple of the peer median → suspect.
  double fail_slow_factor = 8.0;
  /// Minimum latency samples before fail-slow judgement engages.
  uint64_t fail_slow_min_samples = 16;
  /// How often a dead node is probed back, in caller-clock ms.
  uint64_t probe_interval_ms = 200;
};

struct NodeHealthStats {
  uint64_t failures = 0;
  uint64_t marked_suspect = 0;
  uint64_t marked_dead = 0;
  uint64_t probes = 0;
  uint64_t revived = 0;
};

class NodeHealthTracker {
 public:
  NodeHealthTracker(size_t num_nodes, NodeHealthConfig config = {});

  size_t num_nodes() const { return nodes_.size(); }
  NodeState state(uint32_t node) const { return nodes_[node].state; }
  /// Routable: alive, suspect (still serving), or mid-probe.
  bool Usable(uint32_t node) const {
    return nodes_[node].state != NodeState::kDead;
  }

  /// A request to `node` completed in `latency_us`. Clears failure
  /// streaks, revives probing nodes, and runs the fail-slow check.
  void RecordSuccess(uint32_t node, double latency_us);

  /// A request to `node` failed at the transport (not a storage sense
  /// code — those prove the node is alive).
  void RecordFailure(uint32_t node);

  /// Externally declare the node dead (operator / chaos announcement).
  void MarkDead(uint32_t node);

  /// True when a dead node's probe timer has elapsed: transitions it to
  /// kProbing and stamps the attempt, so exactly one caller probes per
  /// interval. The probe's outcome comes back via RecordSuccess/Failure.
  bool ProbeDue(uint32_t node, uint64_t now_ms);

  double latency_ewma_us(uint32_t node) const { return nodes_[node].ewma_us; }
  const NodeHealthStats& stats() const { return stats_; }

 private:
  struct Node {
    NodeState state = NodeState::kAlive;
    uint32_t consecutive_failures = 0;
    double ewma_us = 0.0;
    uint64_t samples = 0;
    uint64_t last_probe_ms = 0;
  };

  /// Median of the latency EWMAs of nodes other than `except` that have
  /// enough samples; 0 when no peer qualifies.
  double PeerMedianUs(uint32_t except) const;

  NodeHealthConfig config_;
  std::vector<Node> nodes_;
  NodeHealthStats stats_;
};

}  // namespace reo
