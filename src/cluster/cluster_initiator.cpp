#include "cluster/cluster_initiator.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "osd/control_protocol.h"

namespace reo {
namespace {

OsdResponse FailResponse() {
  OsdResponse r;
  r.sense = SenseCode::kFail;
  return r;
}

/// Safe to replay on another replica: re-executing changes nothing.
bool IdempotentRead(OsdOp op) {
  return op == OsdOp::kRead || op == OsdOp::kGetAttr || op == OsdOp::kList ||
         op == OsdOp::kListCollection;
}

/// Must execute on every member: each node holds a slice of every
/// partition and collection (same reasoning as ShardRouter's fan-out).
bool NamespaceWide(OsdOp op) {
  return op == OsdOp::kFormat || op == OsdOp::kCreatePartition ||
         op == OsdOp::kCreateCollection || op == OsdOp::kRemoveCollection ||
         op == OsdOp::kList || op == OsdOp::kListCollection;
}

void MergeInto(OsdResponse& merged, OsdResponse&& part) {
  if (merged.sense == SenseCode::kOk && part.sense != SenseCode::kOk) {
    merged.sense = part.sense;
  }
  merged.complete = std::max(merged.complete, part.complete);
  merged.degraded = merged.degraded || part.degraded;
  merged.list.insert(merged.list.end(), part.list.begin(), part.list.end());
}

}  // namespace

std::vector<ClusterEndpoint> ParseClusterEndpoints(const std::string& list) {
  std::vector<ClusterEndpoint> out;
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    std::string item = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= item.size()) {
      return {};
    }
    char* end = nullptr;
    unsigned long port = std::strtoul(item.c_str() + colon + 1, &end, 10);
    if (port == 0 || port > 65535 || (end != nullptr && *end != '\0')) {
      return {};
    }
    out.push_back({item.substr(0, colon), static_cast<uint16_t>(port)});
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

ClusterInitiator::ClusterInitiator(std::vector<ClusterEndpoint> endpoints,
                                   ClusterInitiatorConfig config)
    : endpoints_(std::move(endpoints)),
      config_(config),
      ring_(config.ring),
      health_(endpoints_.size(), config.health) {
  sessions_.reserve(endpoints_.size());
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    SocketInitiatorConfig session = config_.session;
    // Distinct jitter streams per node so one worker's reconnects to
    // different nodes don't sleep in lockstep either.
    session.seed = config_.session.seed * 0x9E3779B97F4A7C15ULL + node + 1;
    sessions_.emplace_back(session);
    ring_.AddNode(node);
  }
}

uint64_t ClusterInitiator::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SocketInitiatorStats ClusterInitiator::WireStats() const {
  SocketInitiatorStats sum;
  for (const SocketInitiator& s : sessions_) {
    const SocketInitiatorStats& w = s.stats();
    sum.commands += w.commands;
    sum.bytes_sent += w.bytes_sent;
    sum.bytes_received += w.bytes_received;
    sum.decode_errors += w.decode_errors;
    sum.frames_sent += w.frames_sent;
    sum.frames_received += w.frames_received;
    sum.crc_errors += w.crc_errors;
    sum.frame_errors += w.frame_errors;
    sum.timeouts += w.timeouts;
    sum.reconnects += w.reconnects;
    sum.admin_commands += w.admin_commands;
  }
  return sum;
}

Status ClusterInitiator::ConnectAll() {
  size_t connected = 0;
  for (uint32_t node = 0; node < sessions_.size(); ++node) {
    if (sessions_[node].Connect(endpoints_[node].host, endpoints_[node].port)
            .ok()) {
      health_.RecordSuccess(node, 0.0);
      ++connected;
    } else {
      health_.RecordFailure(node);
    }
  }
  if (connected == 0) {
    return Status{ErrorCode::kUnavailable, "no cluster node reachable"};
  }
  return Status::Ok();
}

void ClusterInitiator::CloseAll() {
  for (auto& s : sessions_) s.Close();
}

bool ClusterInitiator::EnsureSession(uint32_t node) {
  if (health_.state(node) == NodeState::kDead) {
    // Dead nodes are skipped except when their probe timer is due; the
    // probe is the connect itself.
    if (!health_.ProbeDue(node, NowMs())) return false;
  }
  if (sessions_[node].connected()) return true;
  auto t0 = std::chrono::steady_clock::now();
  if (!sessions_[node].Connect(endpoints_[node].host, endpoints_[node].port)
           .ok()) {
    ++stats_.transport_failures;
    health_.RecordFailure(node);
    return false;
  }
  double us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  health_.RecordSuccess(node, us);
  return true;
}

OsdResponse ClusterInitiator::RoundtripOn(uint32_t node,
                                          const OsdCommand& command,
                                          bool* transport_failure) {
  *transport_failure = false;
  if (!EnsureSession(node)) {
    *transport_failure = true;
    return FailResponse();
  }
  auto t0 = std::chrono::steady_clock::now();
  OsdResponse resp = sessions_[node].Roundtrip(command);
  if (resp.sense != SenseCode::kOk && !sessions_[node].connected()) {
    // The session died mid-flight: a wire failure, not a storage verdict
    // (sense errors leave the connection open).
    *transport_failure = true;
    ++stats_.transport_failures;
    health_.RecordFailure(node);
    return resp;
  }
  double us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  health_.RecordSuccess(node, us);
  return resp;
}

std::optional<uint32_t> ClusterInitiator::PickNode(ObjectId id) {
  auto replicas = ring_.ReplicasOf(id, sessions_.size());
  for (uint32_t node : replicas) {
    if (health_.Usable(node)) return node;
    // Dead: give its probe timer a chance to bring it back right now.
    if (EnsureSession(node)) return node;
  }
  return std::nullopt;
}

std::optional<uint32_t> ClusterInitiator::LiveOwnerOf(ObjectId id) {
  return PickNode(id);
}

OsdResponse ClusterInitiator::FanOut(const OsdCommand& command) {
  OsdResponse merged;
  size_t served = 0;
  for (uint32_t node = 0; node < sessions_.size(); ++node) {
    if (!health_.Usable(node) && !EnsureSession(node)) continue;
    bool transport_failure = false;
    OsdResponse part = RoundtripOn(node, command, &transport_failure);
    if (transport_failure) continue;
    MergeInto(merged, std::move(part));
    ++served;
  }
  if (served == 0) return FailResponse();
  std::sort(merged.list.begin(), merged.list.end());
  merged.list.erase(std::unique(merged.list.begin(), merged.list.end()),
                    merged.list.end());
  return merged;
}

OsdResponse ClusterInitiator::Roundtrip(const OsdCommand& command) {
  ++stats_.commands;
  if (NamespaceWide(command.op)) return FanOut(command);

  if (command.op == OsdOp::kWrite && command.id == kControlObject) {
    auto msg = DecodeControlMessage(command.data);
    if (msg.ok()) {
      if (std::holds_alternative<NodeDownCommand>(*msg)) return FanOut(command);
      if (const auto* q = std::get_if<QueryCommand>(&*msg)) {
        if (q->target == kControlObject) return FanOut(command);
        return RouteSingle(command, q->target);
      }
      if (const auto* set = std::get_if<SetIdCommand>(&*msg)) {
        return RouteSingle(command, set->target);
      }
      if (const auto* hint = std::get_if<OwnerHintCommand>(&*msg)) {
        // Hints belong on the target's ring successor relative to the
        // recorded owner, so they survive the owner's death in place.
        auto replicas = ring_.ReplicasOf(hint->target, sessions_.size());
        for (uint32_t node : replicas) {
          if (node == hint->owner) continue;
          if (health_.Usable(node) || EnsureSession(node)) {
            return RouteSingle(command, ObjectId{}, node);
          }
        }
        return FailResponse();
      }
    }
    // Malformed: any node rejects it identically.
    return RouteSingle(command, command.id);
  }

  if (IdempotentRead(command.op)) {
    ++stats_.reads;
    auto replicas = ring_.ReplicasOf(command.id, sessions_.size());
    for (uint32_t node : replicas) {
      if (!health_.Usable(node) && !EnsureSession(node)) continue;
      bool transport_failure = false;
      OsdResponse resp = RoundtripOn(node, command, &transport_failure);
      if (!transport_failure) {
        if (resp.sense == SenseCode::kOk && command.op == OsdOp::kRead) {
          MaybeRehint(command.id);
        }
        return resp;  // served (a sense miss is a verdict, not a failure)
      }
      ++stats_.read_failovers;  // wire failure: move on to the next replica
    }
    ++stats_.failed_reads;
    return FailResponse();
  }

  // Write-side op: one attempt on the first usable replica, never
  // blindly resent (the ack is the durability contract).
  ++stats_.writes;
  return RouteSingle(command, command.id);
}

OsdResponse ClusterInitiator::RouteSingle(const OsdCommand& command,
                                          ObjectId route_by,
                                          std::optional<uint32_t> forced) {
  std::optional<uint32_t> node = forced ? forced : PickNode(route_by);
  if (!node) {
    ++stats_.failed_writes;
    return FailResponse();
  }
  bool transport_failure = false;
  OsdResponse resp = RoundtripOn(*node, command, &transport_failure);
  if (transport_failure) ++stats_.failed_writes;
  return resp;
}

OsdResponse ClusterInitiator::Classify(ObjectId id, uint8_t class_id) {
  std::optional<uint32_t> node = PickNode(id);
  if (!node) {
    ++stats_.failed_writes;
    return FailResponse();
  }
  OsdCommand cmd;
  cmd.op = OsdOp::kWrite;
  cmd.id = kControlObject;
  cmd.data = EncodeControlMessage(
      ControlMessage{SetIdCommand{.target = id, .class_id = class_id}});
  bool transport_failure = false;
  OsdResponse resp = RoundtripOn(*node, cmd, &transport_failure);
  if (transport_failure) {
    ++stats_.failed_writes;
    return resp;
  }
  ObjectMeta& meta = objects_[id];
  meta.class_id = class_id;
  if (config_.hint_objects) SendHint(id, class_id, meta.reads, *node);
  return resp;
}

void ClusterInitiator::SendHint(ObjectId id, uint8_t class_id,
                                uint64_t hotness, uint32_t owner) {
  auto replicas = ring_.ReplicasOf(id, sessions_.size());
  for (uint32_t node : replicas) {
    if (node == owner) continue;
    if (!health_.Usable(node) && !EnsureSession(node)) continue;
    OsdCommand cmd;
    cmd.op = OsdOp::kWrite;
    cmd.id = kControlObject;
    cmd.data = EncodeControlMessage(ControlMessage{OwnerHintCommand{
        .target = id, .class_id = class_id, .hotness = hotness,
        .owner = owner}});
    bool transport_failure = false;
    OsdResponse resp = RoundtripOn(node, cmd, &transport_failure);
    if (!transport_failure && resp.sense == SenseCode::kOk) {
      ++stats_.hints_sent;
      return;
    }
  }
}

void ClusterInitiator::MaybeRehint(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  uint64_t reads = ++it->second.reads;
  // Amortized hotness refresh: re-hint at powers of two, so a hot
  // object's survivor-side estimate tracks within 2x at O(log n) cost.
  if (!config_.hint_objects || reads < 2 || (reads & (reads - 1)) != 0) return;
  if (auto owner = PickNode(id)) {
    SendHint(id, it->second.class_id, reads, *owner);
  }
}

Status ClusterInitiator::AnnounceNodeDown(uint32_t node) {
  if (node >= sessions_.size()) {
    return Status{ErrorCode::kInvalidArgument, "no such node"};
  }
  health_.MarkDead(node);
  sessions_[node].Close();
  OsdCommand cmd;
  cmd.op = OsdOp::kWrite;
  cmd.id = kControlObject;
  cmd.data =
      EncodeControlMessage(ControlMessage{NodeDownCommand{.node = node}});
  size_t delivered = 0;
  for (uint32_t peer = 0; peer < sessions_.size(); ++peer) {
    if (peer == node) continue;
    if (!health_.Usable(peer) && !EnsureSession(peer)) continue;
    bool transport_failure = false;
    OsdResponse resp = RoundtripOn(peer, cmd, &transport_failure);
    if (!transport_failure && resp.sense == SenseCode::kOk) ++delivered;
  }
  ++stats_.announces;
  if (delivered == 0) {
    return Status{ErrorCode::kUnavailable, "no survivor reachable"};
  }
  return Status::Ok();
}

Result<AdminResponse> ClusterInitiator::AdminRoundtrip(uint32_t node,
                                                       AdminOp op,
                                                       uint32_t arg) {
  if (node >= sessions_.size()) {
    return Status{ErrorCode::kInvalidArgument, "no such node"};
  }
  if (!sessions_[node].connected() && !EnsureSession(node)) {
    return Status{ErrorCode::kUnavailable, "node unreachable"};
  }
  return sessions_[node].AdminRoundtrip(op, arg);
}

}  // namespace reo
