#include "cluster/hash_ring.h"

#include <algorithm>

namespace reo {
namespace {

/// splitmix64 finalizer — the same mixer ObjectIdHash uses, applied to
/// (node, replica) points so virtual nodes scatter independently.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

void HashRing::AddNode(uint32_t node) {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it != nodes_.end() && *it == node) return;
  nodes_.insert(it, node);
  points_.reserve(points_.size() + config_.virtual_nodes);
  for (uint32_t v = 0; v < config_.virtual_nodes; ++v) {
    // (node, v) pack into disjoint bit ranges; adding the odd constant
    // keeps the input a bijection of the pair (OR would let the constant
    // absorb low node bits and give two nodes identical points).
    uint64_t point = Mix64((static_cast<uint64_t>(node) << 32) + v +
                           0x9E3779B97F4A7C15ULL);
    points_.emplace_back(point, node);
  }
  std::sort(points_.begin(), points_.end());
}

void HashRing::RemoveNode(uint32_t node) {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) return;
  nodes_.erase(it);
  std::erase_if(points_, [node](const auto& p) { return p.second == node; });
}

bool HashRing::Contains(uint32_t node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

uint64_t HashRing::KeyPoint(ObjectId id) const {
  return static_cast<uint64_t>(ObjectIdHash{}(id));
}

std::optional<uint32_t> HashRing::OwnerOf(ObjectId id) const {
  if (points_.empty()) return std::nullopt;
  uint64_t point = KeyPoint(id);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), point,
      [](const auto& p, uint64_t v) { return p.first < v; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<uint32_t> HashRing::ReplicasOf(ObjectId id, size_t count) const {
  std::vector<uint32_t> out;
  if (points_.empty() || count == 0) return out;
  count = std::min(count, nodes_.size());
  uint64_t point = KeyPoint(id);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), point,
      [](const auto& p, uint64_t v) { return p.first < v; });
  for (size_t walked = 0; walked < points_.size() && out.size() < count;
       ++walked, ++it) {
    if (it == points_.end()) it = points_.begin();  // wrap
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::optional<uint32_t> HashRing::SuccessorOf(ObjectId id) const {
  auto replicas = ReplicasOf(id, 2);
  if (replicas.size() < 2) return std::nullopt;
  return replicas[1];
}

}  // namespace reo
