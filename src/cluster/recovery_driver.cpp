#include "cluster/recovery_driver.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "telemetry/json_scan.h"

namespace reo {
namespace {

uint64_t ParseHexField(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 0);  // accepts "0x..." and decimal
}

}  // namespace

Result<std::vector<RefetchItem>> ClusterRecoveryDriver::Plan(
    uint32_t dead_node, ClusterRecoveryReport& report) {
  // Dedup across survivors (refetch re-hints can briefly duplicate an
  // entry on two successors); the hottest estimate wins.
  std::unordered_map<ObjectId, RefetchItem, ObjectIdHash> dead_objects;
  for (uint32_t node = 0; node < cluster_.num_nodes(); ++node) {
    if (node == dead_node) continue;
    auto resp = cluster_.AdminRoundtrip(node, AdminOp::kOwners);
    if (!resp.ok() || resp->status != 0) continue;
    auto doc = JsonDoc::Parse(resp->json);
    if (!doc) continue;
    ++report.survivors_queried;
    int entries = doc->member(doc->root(), "entries");
    if (!doc->is(entries, JsonDoc::Type::kArray)) continue;
    for (size_t i = 0; i < doc->size(entries); ++i) {
      int e = doc->item(entries, i);
      ++report.entries_scanned;
      if (static_cast<uint32_t>(doc->number(doc->member(e, "owner"))) !=
          dead_node) {
        continue;
      }
      ++report.dead_entries;
      RefetchItem item;
      item.id = ObjectId{ParseHexField(doc->str(doc->member(e, "pid"))),
                         ParseHexField(doc->str(doc->member(e, "oid")))};
      item.class_id =
          static_cast<uint8_t>(doc->number(doc->member(e, "class")));
      item.hotness = static_cast<uint64_t>(
          doc->number(doc->member(e, "hotness")));
      auto [it, inserted] = dead_objects.try_emplace(item.id, item);
      if (!inserted) {
        it->second.hotness = std::max(it->second.hotness, item.hotness);
        --report.dead_entries;
      }
    }
  }
  if (report.survivors_queried == 0) {
    return Status{ErrorCode::kUnavailable, "no survivor answered OWNERS"};
  }

  std::vector<RefetchItem> plan;
  plan.reserve(dead_objects.size());
  for (auto& [id, item] : dead_objects) {
    switch (item.class_id) {
      case 0:
      case 1:
        plan.push_back(item);
        break;
      case 2:
        ++report.clean_miss_class2;
        break;
      default:
        ++report.clean_miss_class3;
        break;
    }
  }
  // The differentiated ordering: class 0 strictly before class 1, hot
  // before cold within a class — same priorities as the restart restore.
  std::sort(plan.begin(), plan.end(),
            [](const RefetchItem& a, const RefetchItem& b) {
              if (a.class_id != b.class_id) return a.class_id < b.class_id;
              if (a.hotness != b.hotness) return a.hotness > b.hotness;
              return a.id < b.id;
            });
  return plan;
}

Result<ClusterRecoveryReport> ClusterRecoveryDriver::Recover(
    uint32_t dead_node) {
  ClusterRecoveryReport report;
  // 1. Announce: survivors mark the dead node's hints down (so the
  //    refetch writes below are recognized as refetches) and account the
  //    class-2/3 degradation.
  REO_RETURN_IF_ERROR(cluster_.AnnounceNodeDown(dead_node));

  // 2. Gather and order the work.
  auto plan = Plan(dead_node, report);
  if (!plan.ok()) return plan.status();

  // 3. Refetch class-0/1 from the backend, hottest first, and write each
  //    through the cluster: routing lands it on the key's new owner —
  //    the hint holder, which emits cluster.refetch on arrival.
  for (const RefetchItem& item : *plan) {
    auto payload = backend_(item.id);
    if (!payload.ok()) {
      ++report.refetch_failures;
      continue;
    }
    OsdCommand create;
    create.op = OsdOp::kCreate;
    create.id = item.id;
    create.logical_size = payload->size();
    // The new owner has no record of the object; an exists-failure from
    // a re-run is fine, the write below is the real verdict.
    (void)cluster_.Roundtrip(create);
    (void)cluster_.Classify(item.id, item.class_id);

    OsdCommand write;
    write.op = OsdOp::kWrite;
    write.id = item.id;
    write.logical_size = payload->size();
    write.data = std::move(*payload);
    OsdResponse resp = cluster_.Roundtrip(write);
    if (!resp.ok()) {
      ++report.refetch_failures;
      continue;
    }
    if (item.class_id == 0) {
      ++report.refetched_class0;
    } else {
      ++report.refetched_class1;
    }
  }
  return report;
}

}  // namespace reo
