// ClusterInitiator: client-side cluster routing over per-node socket
// sessions.
//
// Wraps one SocketInitiator per member node behind the consistent-hash
// ring (hash_ring.h) and the health tracker (node_health.h). Commands
// route to the key's first *usable* ring replica, so a dead node's keys
// flow to its ring successor without reconfiguration and flow back when
// the node revives — membership never mutates, only liveness.
//
// Failover mirrors the single-node tolerance contract:
//   * idempotent reads (kRead/kGetAttr/kList*) that fail at the
//     transport retry on the next usable ring replica; if every replica
//     fails, the caller falls through to its backend refetch;
//   * writes are NEVER blindly resent — a write that died mid-flight
//     may have been applied, so it surfaces as failed (unacked) and the
//     caller decides; routing only moves *subsequent* writes once health
//     marks the node dead. Acked-object guarantees are thus preserved
//     per class: an acked class-0/1 write reached a node that fsync'd it.
//
// Cluster metadata: Classify() places a "#OWNER#" hint for every
// classified object on the object's ring successor (the node that will
// inherit the key if the owner dies — see cluster_directory.h for why
// that address is the right one), and successful reads re-hint at
// power-of-two read counts so survivors know hot from cold. Single-
// threaded by design, like SocketInitiator: one instance per worker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/node_health.h"
#include "common/object_id.h"
#include "server/socket_initiator.h"

namespace reo {

struct ClusterEndpoint {
  std::string host;
  uint16_t port = 0;
};

/// Parses a "host:port,host:port,..." member list (the --cluster /
/// --endpoints flag shared by reo_loadgen, admin_probe, and reo_top).
/// Returns an empty vector when any entry is malformed.
std::vector<ClusterEndpoint> ParseClusterEndpoints(const std::string& list);

struct ClusterInitiatorConfig {
  HashRingConfig ring;
  NodeHealthConfig health;
  SocketInitiatorConfig session;  ///< per-node socket posture
  /// Send #OWNER# hints on Classify and power-of-two read counts.
  bool hint_objects = true;
};

struct ClusterInitiatorStats {
  uint64_t commands = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_failovers = 0;   ///< reads retried on a later ring replica
  uint64_t failed_reads = 0;     ///< reads no replica could serve
  uint64_t failed_writes = 0;    ///< writes surfaced unacked (never resent)
  uint64_t transport_failures = 0;
  uint64_t hints_sent = 0;
  uint64_t announces = 0;        ///< NODEDOWN fan-outs issued
};

class ClusterInitiator {
 public:
  ClusterInitiator(std::vector<ClusterEndpoint> endpoints,
                   ClusterInitiatorConfig config = {});

  /// Connects every session; ok if at least one node is reachable
  /// (unreachable ones are recorded as failures and probed back later).
  Status ConnectAll();
  void CloseAll();

  size_t num_nodes() const { return sessions_.size(); }
  const HashRing& ring() const { return ring_; }
  NodeHealthTracker& health() { return health_; }
  const NodeHealthTracker& health() const { return health_; }
  const ClusterInitiatorStats& stats() const { return stats_; }
  /// Wire-level counters summed over every per-node session.
  SocketInitiatorStats WireStats() const;
  const ClusterEndpoint& endpoint(uint32_t node) const {
    return endpoints_[node];
  }

  /// Routes one command per the failover contract above. Namespace-wide
  /// ops (FORMAT, partition/collection DDL, LIST) fan out to every
  /// usable node and merge.
  OsdResponse Roundtrip(const OsdCommand& command);

  /// Classifies an object on its live owner (SETID) and, when hinting is
  /// on, places the #OWNER# hint on the next usable ring replica.
  OsdResponse Classify(ObjectId id, uint8_t class_id);

  /// Seeds the local object table (class, zero reads) without wire
  /// traffic, so read-count re-hints fire for objects another session
  /// classified (e.g. a populate phase before the worker threads).
  void NoteObject(ObjectId id, uint8_t class_id) {
    objects_[id].class_id = class_id;
  }

  /// Declares `node` dead client-side and fans #NODEDOWN# to survivors
  /// (they account the dead node's hinted objects per class).
  Status AnnounceNodeDown(uint32_t node);

  /// The node a write of `id` would go to right now (first usable ring
  /// replica); nullopt when no node is usable.
  std::optional<uint32_t> LiveOwnerOf(ObjectId id);

  /// ADMIN round-trip against one specific node.
  Result<AdminResponse> AdminRoundtrip(uint32_t node, AdminOp op,
                                       uint32_t arg = 0);

 private:
  /// Tracked per classified object for hint refresh.
  struct ObjectMeta {
    uint8_t class_id = 3;
    uint64_t reads = 0;
  };

  static uint64_t NowMs();
  /// Ensures the session is connected (probing dead nodes only on their
  /// timer); false means the node is unusable right now.
  bool EnsureSession(uint32_t node);
  /// One measured round-trip against one node, feeding health. Sets
  /// `transport_failure` when the failure was the wire, not a sense code.
  OsdResponse RoundtripOn(uint32_t node, const OsdCommand& command,
                          bool* transport_failure);
  /// First usable replica for the key, after running due probes.
  std::optional<uint32_t> PickNode(ObjectId id);
  /// Routes to `forced` or to route_by's first usable replica; a wire
  /// failure surfaces as failed (the never-blindly-resend leg).
  OsdResponse RouteSingle(const OsdCommand& command, ObjectId route_by,
                          std::optional<uint32_t> forced = std::nullopt);
  OsdResponse FanOut(const OsdCommand& command);
  void SendHint(ObjectId id, uint8_t class_id, uint64_t hotness,
                uint32_t owner);
  void MaybeRehint(ObjectId id);

  std::vector<ClusterEndpoint> endpoints_;
  ClusterInitiatorConfig config_;
  std::vector<SocketInitiator> sessions_;
  HashRing ring_;
  NodeHealthTracker health_;
  ClusterInitiatorStats stats_;
  std::unordered_map<ObjectId, ObjectMeta, ObjectIdHash> objects_;
};

}  // namespace reo
