// ClusterRecoveryDriver: cross-node differentiated recovery.
//
// The node-level analogue of the repo's device-level recovery scheduler
// (core/recovery_scheduler.*): when a node dies, what it held is not
// rebuilt from parity — survivors never stored its payload — but
// *refetched from the backend*, and the differentiated-redundancy
// classes decide what is worth the backend traffic:
//
//   class 0/1 (replicated / fsync-before-ack): proactively refetched,
//     class 0 before class 1, hot before cold within a class — the same
//     ordering the restart restore (persist/restore.h) uses;
//   class 2/3 (clean): degrade to clean misses; the cache refills them
//     on demand.
//
// The driver walks every survivor's cluster directory (ADMIN OWNERS —
// the hints the clients placed on ring successors), filters the dead
// node's objects, and writes the refetched payloads back through the
// cluster, where routing lands them on each key's new owner: the very
// node holding the hint, which detects the arrival and emits the
// class-ordered `cluster.refetch` events the drill asserts on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster_initiator.h"
#include "common/object_id.h"
#include "common/status.h"

namespace reo {

/// One refetch work item parsed from a survivor's OWNERS dump.
struct RefetchItem {
  ObjectId id;
  uint8_t class_id = 3;
  uint64_t hotness = 0;
};

struct ClusterRecoveryReport {
  uint64_t entries_scanned = 0;    ///< directory entries walked
  uint64_t dead_entries = 0;       ///< entries owned by the dead node
  uint64_t refetched_class0 = 0;
  uint64_t refetched_class1 = 0;
  uint64_t clean_miss_class2 = 0;  ///< degraded, not refetched
  uint64_t clean_miss_class3 = 0;
  uint64_t refetch_failures = 0;   ///< backend or write-path failures
  uint64_t survivors_queried = 0;

  uint64_t refetched() const { return refetched_class0 + refetched_class1; }
};

class ClusterRecoveryDriver {
 public:
  /// Backend fetch: payload bytes of `id` from the origin store (the
  /// deterministic generator in the load driver; a real backend in
  /// production). A failed fetch counts, never aborts the sweep.
  using BackendFetch =
      std::function<Result<std::vector<uint8_t>>(ObjectId id)>;

  ClusterRecoveryDriver(ClusterInitiator& cluster, BackendFetch backend)
      : cluster_(cluster), backend_(std::move(backend)) {}

  /// Runs the full drill for `dead_node`: announce the death (survivors
  /// mark + account), gather survivors' OWNERS, then refetch class-0/1
  /// strictly class-ordered and hot-before-cold. Fails only when no
  /// survivor is reachable.
  Result<ClusterRecoveryReport> Recover(uint32_t dead_node);

  /// The sorted class-0/1 work list for `dead_node` without executing it
  /// (exposed for tests and dry runs). Also fills the class-2/3 miss
  /// counts in `report`.
  Result<std::vector<RefetchItem>> Plan(uint32_t dead_node,
                                        ClusterRecoveryReport& report);

 private:
  ClusterInitiator& cluster_;
  BackendFetch backend_;
};

}  // namespace reo
