#include "cluster/node_health.h"

#include <algorithm>
#include <cstddef>

namespace reo {

NodeHealthTracker::NodeHealthTracker(size_t num_nodes,
                                     NodeHealthConfig config)
    : config_(config), nodes_(num_nodes) {}

void NodeHealthTracker::RecordSuccess(uint32_t node, double latency_us) {
  Node& n = nodes_[node];
  n.consecutive_failures = 0;
  if (n.state == NodeState::kDead || n.state == NodeState::kProbing) {
    ++stats_.revived;
  }
  n.state = NodeState::kAlive;
  ++n.samples;
  n.ewma_us = n.samples == 1
                  ? latency_us
                  : config_.ewma_alpha * latency_us +
                        (1.0 - config_.ewma_alpha) * n.ewma_us;
  // Fail-slow: a node can degrade without ever dropping a connection.
  if (n.samples >= config_.fail_slow_min_samples) {
    double median = PeerMedianUs(node);
    if (median > 0.0 && n.ewma_us > config_.fail_slow_factor * median) {
      n.state = NodeState::kSuspect;
      ++stats_.marked_suspect;
    }
  }
}

void NodeHealthTracker::RecordFailure(uint32_t node) {
  Node& n = nodes_[node];
  ++stats_.failures;
  ++n.consecutive_failures;
  if (n.state == NodeState::kProbing) {
    // Failed probe: back to dead, wait out another interval.
    n.state = NodeState::kDead;
    return;
  }
  if (n.consecutive_failures >= config_.dead_after) {
    if (n.state != NodeState::kDead) ++stats_.marked_dead;
    n.state = NodeState::kDead;
  } else if (n.consecutive_failures >= config_.suspect_after) {
    if (n.state == NodeState::kAlive) ++stats_.marked_suspect;
    n.state = NodeState::kSuspect;
  }
}

void NodeHealthTracker::MarkDead(uint32_t node) {
  Node& n = nodes_[node];
  if (n.state != NodeState::kDead) ++stats_.marked_dead;
  n.state = NodeState::kDead;
  n.consecutive_failures = config_.dead_after;
}

bool NodeHealthTracker::ProbeDue(uint32_t node, uint64_t now_ms) {
  Node& n = nodes_[node];
  if (n.state != NodeState::kDead) return false;
  if (n.last_probe_ms != 0 &&
      now_ms - n.last_probe_ms < config_.probe_interval_ms) {
    return false;
  }
  n.last_probe_ms = now_ms;
  n.state = NodeState::kProbing;
  ++stats_.probes;
  return true;
}

double NodeHealthTracker::PeerMedianUs(uint32_t except) const {
  std::vector<double> peers;
  peers.reserve(nodes_.size());
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (i == except) continue;
    const Node& n = nodes_[i];
    if (n.samples >= config_.fail_slow_min_samples) peers.push_back(n.ewma_us);
  }
  if (peers.empty()) return 0.0;
  auto mid = peers.begin() + static_cast<ptrdiff_t>(peers.size() / 2);
  std::nth_element(peers.begin(), mid, peers.end());
  return *mid;
}

}  // namespace reo
