#include "osd/attribute_store.h"

#include <cstring>

namespace reo {

void AttributeStore::Set(AttributeId id, std::span<const uint8_t> value) {
  attrs_[id].assign(value.begin(), value.end());
}

void AttributeStore::SetU64(AttributeId id, uint64_t value) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(value >> (8 * i));
  Set(id, buf);
}

std::optional<std::span<const uint8_t>> AttributeStore::Get(AttributeId id) const {
  auto it = attrs_.find(id);
  if (it == attrs_.end()) return std::nullopt;
  return std::span<const uint8_t>(it->second);
}

std::optional<uint64_t> AttributeStore::GetU64(AttributeId id) const {
  auto v = Get(id);
  if (!v || v->size() != 8) return std::nullopt;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>((*v)[static_cast<size_t>(i)]) << (8 * i);
  return out;
}

Status AttributeStore::Remove(AttributeId id) {
  return attrs_.erase(id) ? Status::Ok()
                          : Status{ErrorCode::kNotFound, "no such attribute"};
}

std::vector<AttributeId> AttributeStore::ListPage(uint32_t page) const {
  std::vector<AttributeId> out;
  for (const auto& [id, _] : attrs_) {
    if (id.page == page) out.push_back(id);
  }
  return out;
}

}  // namespace reo
