// Serialized command transport: the iSCSI stand-in.
//
// The paper's initiator and target are separate hosts speaking SCSI over
// TCP (iSCSI). This module provides the wire layer: OSD commands and
// responses serialize to a binary format, cross a modeled network link
// (both directions, with payload-proportional transfer time), and are
// executed by the remote target. Serialization is real — every command
// the cache manager issues can round-trip bytes — so interface bugs that
// an in-process call would hide (field ordering, size limits, unknown
// opcodes) are exercised.
#pragma once

#include <cstdint>
#include <vector>

#include "backend/network_link.h"
#include "osd/osd_target.h"
#include "telemetry/metric_registry.h"
#include "trace/tracer.h"

namespace reo {

/// Binary encoding of one command (little-endian TLV-free fixed header +
/// variable payload).
std::vector<uint8_t> EncodeCommand(const OsdCommand& command);
Result<OsdCommand> DecodeCommand(std::span<const uint8_t> wire);

std::vector<uint8_t> EncodeResponse(const OsdResponse& response);
Result<OsdResponse> DecodeResponse(std::span<const uint8_t> wire);

/// Scatter-gather encoding of a response: head‖body‖tail is byte-identical
/// to EncodeResponse(response), but the bulk `data` payload is *moved*
/// into `body` instead of copied behind its length prefix. The socket
/// serving path ships the three buffers with one writev, so a 64 KiB read
/// response costs zero payload copies between cache and kernel.
struct EncodedResponseParts {
  std::vector<uint8_t> head;  ///< magic..degraded + data length prefix
  PayloadBuffer body;         ///< the response's data buffer, moved
  std::vector<uint8_t> tail;  ///< attr_value + list encodings
};
EncodedResponseParts EncodeResponseParts(OsdResponse&& response);

/// Wire-level counters.
struct TransportStats {
  uint64_t commands = 0;
  uint64_t bytes_sent = 0;      ///< initiator -> target
  uint64_t bytes_received = 0;  ///< target -> initiator
  uint64_t decode_errors = 0;
};

/// Client endpoint of one initiator-target session. Commands are encoded,
/// shipped across the link, decoded and executed at the target, and the
/// encoded response shipped back; the response's completion time includes
/// both transfers.
class OsdTransport {
 public:
  /// @param target the remote service; must outlive the transport.
  explicit OsdTransport(OsdTarget& target, NetworkLinkConfig link = {})
      : target_(target), link_(link) {}

  /// Sends one command and waits for the response.
  OsdResponse Roundtrip(const OsdCommand& command);

  const TransportStats& stats() const { return stats_; }

  /// Registers wire-level metrics ("transport.*") and begins hot-path
  /// updates: command count, bytes each way, decode errors.
  void AttachTelemetry(MetricRegistry& registry);

  /// Resolves the transport span track: every Roundtrip records one span
  /// covering encode + both link transfers + target execution.
  void AttachTracing(Tracer& tracer) {
    trace_ = &tracer.RecorderFor(TraceComponent::kTransport);
  }

 private:
  OsdTarget& target_;
  NetworkLink link_;
  TransportStats stats_;

  // Telemetry (null when un-attached).
  Counter* tel_commands_ = nullptr;
  Counter* tel_bytes_sent_ = nullptr;
  Counter* tel_bytes_received_ = nullptr;
  Counter* tel_decode_errors_ = nullptr;

  SpanRecorder* trace_ = nullptr;
};

}  // namespace reo
