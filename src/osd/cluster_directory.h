// Server-side cluster directory: the survivor's view of what the other
// nodes hold.
//
// Cluster clients place a small owner hint ("#OWNER#" control message,
// control_protocol.h) on the ring *successor* of every class-hinted
// object they write. The key invariant: when the owning node dies, the
// consistent-hash ring remaps each of its keys to exactly that successor
// — so the metadata needed to recover an object already lives on the
// node where its refetched bytes will arrive. This mirrors the paper's
// differentiated-redundancy idea one failure domain up (device → node,
// per the RAID-organizations framing): classes 0/1 carry cross-node
// metadata redundancy, classes 2/3 are hinted only for accounting and
// degrade to clean misses.
//
// The directory is mutex-protected: the data plane mutates it from shard
// event-loop threads while the admin plane (ADMIN OWNERS) snapshots it
// from whichever shard answers the admin frame.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/object_id.h"
#include "common/sim_clock.h"
#include "osd/control_protocol.h"
#include "telemetry/metric_registry.h"
#include "trace/event_log.h"

namespace reo {

/// One directory entry: an object some cluster node owns, as reported by
/// the client's owner hint.
struct OwnerEntry {
  uint8_t class_id = 3;
  uint64_t hotness = 0;
  uint32_t owner = 0;
  bool down = false;  ///< owner announced dead, refetch/miss pending
};

struct ClusterDirectoryStats {
  uint64_t hints = 0;           ///< owner hints recorded (insert or update)
  uint64_t node_downs = 0;      ///< node-down announcements processed
  uint64_t refetches = 0;       ///< refetched writes re-owned locally
  uint64_t degraded_misses = 0; ///< class-2/3 entries degraded to clean misses
};

/// Per-node cluster metadata directory. Thread-safe.
class ClusterDirectory {
 public:
  explicit ClusterDirectory(uint32_t local_node) : local_node_(local_node) {}

  uint32_t local_node() const { return local_node_; }

  /// Registers "cluster.*" counters for hint/refetch/miss accounting.
  void AttachTelemetry(MetricRegistry& registry);

  /// Events: cluster.node_down on announcements, cluster.refetch per
  /// re-owned object (class-ordered because the recovery driver writes
  /// class 0 before class 1).
  void AttachEvents(EventLog& log) { events_ = &log; }

  /// Records (or refreshes) an owner hint.
  void RecordHint(const OwnerHintCommand& hint, SimTime now);

  /// Processes a node-down announcement: marks the dead node's entries,
  /// counts class-0/1 as refetch-pending and class-2/3 as clean misses.
  void OnNodeDown(const NodeDownCommand& cmd, SimTime now);

  /// Called on every successful local data write. If the object was
  /// hinted as owned by a dead node this is a recovery refetch arriving:
  /// the entry is re-owned locally and a cluster.refetch event emitted.
  void OnLocalWrite(ObjectId id, SimTime now);

  /// Drops the entry for a removed object, if any.
  void OnLocalRemove(ObjectId id);

  ClusterDirectoryStats stats() const;
  size_t size() const;

  /// {"schema":"reo.owners.v1","node":N,"entries":[{"pid":...,"oid":...,
  ///  "class":...,"hotness":...,"owner":...,"down":...},...]} — the ADMIN
  /// OWNERS body. Entries are sorted class-ascending then hotness-
  /// descending so a recovery driver can stream them in refetch order.
  std::string ToJson() const;

  /// Merged "reo.owners.v1" over several directories (the sharded
  /// server's per-shard slices of one node's hint space), in the same
  /// class-then-hotness refetch order.
  static std::string MergedJson(
      const std::vector<const ClusterDirectory*>& parts);

 private:
  std::vector<std::pair<ObjectId, OwnerEntry>> Snapshot() const;

  const uint32_t local_node_;
  mutable std::mutex mu_;
  std::unordered_map<ObjectId, OwnerEntry, ObjectIdHash> entries_;
  ClusterDirectoryStats stats_;

  Counter* tel_hints_ = nullptr;
  Counter* tel_node_downs_ = nullptr;
  Counter* tel_refetches_ = nullptr;
  Counter* tel_degraded_misses_ = nullptr;
  Gauge* tel_entries_ = nullptr;

  EventLog* events_ = nullptr;
};

}  // namespace reo
