// exofs-like filesystem client over an OSD session.
//
// The paper's initiator stack runs exofs, the Linux object filesystem: "a
// special file system exofs ... exposes a file system interface to the
// upper-level applications. All the file system metadata (e.g.,
// superblock, inode), regular files, and directories are stored in the
// OSD in the form of user objects" (§II.A). This is that layer, scoped to
// what the cache stack needs: a mountable superblock, a persistent
// directory tree, and whole-file read/write — everything stored as user
// objects through the OsdInitiator, with the Table I reserved objects
// (super block 0x10000, root directory 0x10002) used exactly as exofs
// reserves them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "osd/osd_initiator.h"

namespace reo {

/// One directory entry.
struct ExofsDirent {
  std::string name;
  ObjectId object;
  bool is_directory = false;
  uint64_t size = 0;  ///< logical bytes (files)
};

/// Minimal exofs client. Paths are absolute, '/'-separated; components may
/// not contain '/', spaces, or newlines.
class ExofsClient {
 public:
  /// @param initiator session to the target; must outlive the client.
  /// @param physical_size maps a logical byte count to the physical
  ///        payload size of the data plane (StripeManager::PhysicalSize).
  ExofsClient(OsdInitiator& initiator,
              std::function<uint64_t(uint64_t)> physical_size);

  /// Creates the filesystem: formats the OSD and writes the superblock
  /// and empty root directory.
  Status MkFs(uint64_t capacity_bytes, SimTime now);

  /// Loads and validates the superblock of an existing filesystem.
  Status Mount(SimTime now);
  bool mounted() const { return mounted_; }

  // --- Namespace ---------------------------------------------------------------

  Status Mkdir(const std::string& path, SimTime now);
  Result<std::vector<ExofsDirent>> ReadDir(const std::string& path, SimTime now);
  Result<ExofsDirent> Lookup(const std::string& path, SimTime now);
  /// Removes a file or an empty directory.
  Status Unlink(const std::string& path, SimTime now);

  // --- Files -------------------------------------------------------------------

  /// Creates (or truncates) a file and writes its contents.
  Status WriteFile(const std::string& path, std::span<const uint8_t> payload,
                   uint64_t logical_size, SimTime now);
  /// Reads a whole file.
  Result<std::vector<uint8_t>> ReadFile(const std::string& path, SimTime now);

  uint64_t next_oid() const { return next_oid_; }

 private:
  static constexpr std::string_view kSuperMagic = "exofs-reo v1";

  Result<ObjectId> ResolveDir(const std::string& path, SimTime now);
  Result<std::vector<ExofsDirent>> LoadDir(ObjectId dir, SimTime now);
  Status StoreDir(ObjectId dir, const std::vector<ExofsDirent>& entries,
                  SimTime now);
  Status PersistSuper(SimTime now);
  ObjectId AllocateOid();
  /// Splits "/a/b/c" into {"a","b","c"}; fails on malformed paths.
  static Result<std::vector<std::string>> SplitPath(const std::string& path);

  /// Writes a (metadata) payload padded to the data plane's physical size.
  Status WritePadded(ObjectId id, std::span<const uint8_t> bytes, SimTime now);

  OsdInitiator& initiator_;
  std::function<uint64_t(uint64_t)> physical_size_;
  bool mounted_ = false;
  uint64_t next_oid_ = 0x20000;  ///< first OID above the reserved range
};

}  // namespace reo
