// Target-side object metadata store.
//
// The original osd-target kept object metadata in SQLite; the Reo prototype
// replaced it with a hash table (paper §V). This is that hash table:
// partitions, collections, user objects, membership, and the Table I
// reserved objects created at format time.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/object_id.h"
#include "osd/object.h"

namespace reo {

/// All object metadata of one OSD logical unit.
class ObjectStore {
 public:
  ObjectStore() = default;

  /// FORMAT OSD: wipes everything, then creates the root object, the first
  /// partition (0x10000), and the exofs metadata objects of Table I
  /// (super block, device table, root directory) plus Reo's control object.
  void Format(uint64_t capacity_bytes);

  // --- Partitions ----------------------------------------------------------

  /// Creates partition `pid` (>= kFirstUserId).
  Status CreatePartition(uint64_t pid);
  bool HasPartition(uint64_t pid) const;
  std::vector<uint64_t> ListPartitions() const;

  // --- Collections ---------------------------------------------------------

  Status CreateCollection(ObjectId id);
  Status RemoveCollection(ObjectId id);  ///< fails if non-empty
  /// Adds/removes a user object to/from a collection in the same partition.
  Status AddToCollection(ObjectId collection, ObjectId member);
  Status RemoveFromCollection(ObjectId collection, ObjectId member);
  Result<std::vector<uint64_t>> ListCollection(ObjectId collection) const;

  // --- User objects ----------------------------------------------------------

  /// Creates a user object record (fails if the partition is missing or the
  /// id exists).
  Status CreateObject(ObjectId id, uint64_t logical_size = 0);
  Status RemoveObject(ObjectId id);
  bool Exists(ObjectId id) const;

  Result<ObjectRecord*> Find(ObjectId id);
  Result<const ObjectRecord*> Find(ObjectId id) const;

  /// OIDs of user objects in a partition, unsorted.
  std::vector<uint64_t> ListObjects(uint64_t pid) const;

  /// Number of user objects across all partitions.
  size_t user_object_count() const { return user_count_; }

  /// Root-object view: capacity and partition count (paper Table I: "the
  /// root object records the global information of the OSD").
  uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  ObjectRecord* FindMutable(ObjectId id);

  std::unordered_map<ObjectId, ObjectRecord, ObjectIdHash> objects_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> partitions_;  // pid -> oids
  std::unordered_map<ObjectId, std::vector<uint64_t>, ObjectIdHash> collections_;
  uint64_t capacity_bytes_ = 0;
  size_t user_count_ = 0;
};

}  // namespace reo
