#include "osd/object_store.h"

#include <algorithm>

namespace reo {

void ObjectStore::Format(uint64_t capacity_bytes) {
  objects_.clear();
  partitions_.clear();
  collections_.clear();
  user_count_ = 0;
  capacity_bytes_ = capacity_bytes;

  // Root object (PID 0x0, OID 0x0).
  ObjectRecord root{.id = kRootObject, .type = ObjectType::kRoot};
  objects_.emplace(kRootObject, std::move(root));

  // First partition and the exofs reserved metadata objects (Table I).
  REO_CHECK(CreatePartition(kFirstUserId).ok());
  for (ObjectId id : {kSuperBlockObject, kDeviceTableObject,
                      kRootDirectoryObject, kControlObject}) {
    REO_CHECK(CreateObject(id).ok());
  }
}

Status ObjectStore::CreatePartition(uint64_t pid) {
  if (pid < kFirstUserId) {
    return {ErrorCode::kInvalidArgument, "partition ids start at 0x10000"};
  }
  if (partitions_.contains(pid)) return {ErrorCode::kAlreadyExists, "partition exists"};
  partitions_.emplace(pid, std::vector<uint64_t>{});
  ObjectId id{pid, 0};
  ObjectRecord rec{.id = id, .type = ObjectType::kPartition};
  objects_.emplace(id, std::move(rec));
  return Status::Ok();
}

bool ObjectStore::HasPartition(uint64_t pid) const {
  return partitions_.contains(pid);
}

std::vector<uint64_t> ObjectStore::ListPartitions() const {
  std::vector<uint64_t> out;
  out.reserve(partitions_.size());
  for (const auto& [pid, _] : partitions_) out.push_back(pid);
  std::sort(out.begin(), out.end());
  return out;
}

Status ObjectStore::CreateCollection(ObjectId id) {
  if (!partitions_.contains(id.pid)) return {ErrorCode::kNotFound, "no partition"};
  if (id.oid < kFirstUserId) return {ErrorCode::kInvalidArgument, "collection oid"};
  if (objects_.contains(id)) return {ErrorCode::kAlreadyExists, "object exists"};
  ObjectRecord rec{.id = id, .type = ObjectType::kCollection};
  objects_.emplace(id, std::move(rec));
  collections_.emplace(id, std::vector<uint64_t>{});
  return Status::Ok();
}

Status ObjectStore::RemoveCollection(ObjectId id) {
  auto it = collections_.find(id);
  if (it == collections_.end()) return {ErrorCode::kNotFound, "no collection"};
  if (!it->second.empty()) return {ErrorCode::kInvalidArgument, "collection not empty"};
  collections_.erase(it);
  objects_.erase(id);
  return Status::Ok();
}

Status ObjectStore::AddToCollection(ObjectId collection, ObjectId member) {
  auto it = collections_.find(collection);
  if (it == collections_.end()) return {ErrorCode::kNotFound, "no collection"};
  if (collection.pid != member.pid) {
    // §II.A: collection and user objects within one partition share the PID.
    return {ErrorCode::kInvalidArgument, "cross-partition membership"};
  }
  auto* rec = FindMutable(member);
  if (rec == nullptr || rec->type != ObjectType::kUser) {
    return {ErrorCode::kNotFound, "no such user object"};
  }
  auto& members = it->second;
  if (std::find(members.begin(), members.end(), member.oid) != members.end()) {
    return {ErrorCode::kAlreadyExists, "already a member"};
  }
  members.push_back(member.oid);
  rec->collections.push_back(collection.oid);
  return Status::Ok();
}

Status ObjectStore::RemoveFromCollection(ObjectId collection, ObjectId member) {
  auto it = collections_.find(collection);
  if (it == collections_.end()) return {ErrorCode::kNotFound, "no collection"};
  auto& members = it->second;
  auto pos = std::find(members.begin(), members.end(), member.oid);
  if (pos == members.end()) return {ErrorCode::kNotFound, "not a member"};
  members.erase(pos);
  if (auto* rec = FindMutable(member)) {
    auto& cs = rec->collections;
    cs.erase(std::remove(cs.begin(), cs.end(), collection.oid), cs.end());
  }
  return Status::Ok();
}

Result<std::vector<uint64_t>> ObjectStore::ListCollection(ObjectId collection) const {
  auto it = collections_.find(collection);
  if (it == collections_.end()) return Status{ErrorCode::kNotFound, "no collection"};
  return it->second;
}

Status ObjectStore::CreateObject(ObjectId id, uint64_t logical_size) {
  if (!partitions_.contains(id.pid)) return {ErrorCode::kNotFound, "no partition"};
  if (objects_.contains(id)) return {ErrorCode::kAlreadyExists, "object exists"};
  ObjectRecord rec{.id = id, .type = ObjectType::kUser, .logical_size = logical_size};
  objects_.emplace(id, std::move(rec));
  partitions_[id.pid].push_back(id.oid);
  ++user_count_;
  return Status::Ok();
}

Status ObjectStore::RemoveObject(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end() || it->second.type != ObjectType::kUser) {
    return {ErrorCode::kNotFound, "no such user object"};
  }
  if (IsSystemMetadata(id, it->second.type)) {
    // The Table I reserved objects (super block, device table, root
    // directory, control object) are part of the volume format.
    return {ErrorCode::kInvalidArgument, "reserved metadata object"};
  }
  // Drop from any collections.
  for (uint64_t coll_oid : it->second.collections) {
    auto cit = collections_.find(ObjectId{id.pid, coll_oid});
    if (cit != collections_.end()) {
      auto& members = cit->second;
      members.erase(std::remove(members.begin(), members.end(), id.oid),
                    members.end());
    }
  }
  auto& oids = partitions_[id.pid];
  oids.erase(std::remove(oids.begin(), oids.end(), id.oid), oids.end());
  objects_.erase(it);
  --user_count_;
  return Status::Ok();
}

bool ObjectStore::Exists(ObjectId id) const { return objects_.contains(id); }

ObjectRecord* ObjectStore::FindMutable(ObjectId id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

Result<ObjectRecord*> ObjectStore::Find(ObjectId id) {
  auto* rec = FindMutable(id);
  if (rec == nullptr) return Status{ErrorCode::kNotFound, "no such object"};
  return rec;
}

Result<const ObjectRecord*> ObjectStore::Find(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status{ErrorCode::kNotFound, "no such object"};
  return &it->second;
}

std::vector<uint64_t> ObjectStore::ListObjects(uint64_t pid) const {
  auto it = partitions_.find(pid);
  if (it == partitions_.end()) return {};
  return it->second;
}

}  // namespace reo
