#include "osd/exofs.h"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace reo {
namespace {

/// Directory payload: one text line per entry, "D|F <oid-hex> <size> <name>".
std::string SerializeDir(const std::vector<ExofsDirent>& entries) {
  std::ostringstream out;
  out << "#dir\n";
  for (const auto& e : entries) {
    char oid[32];
    std::snprintf(oid, sizeof(oid), "0x%llx",
                  static_cast<unsigned long long>(e.object.oid));
    out << (e.is_directory ? 'D' : 'F') << ' ' << oid << ' ' << e.size << ' '
        << e.name << '\n';
  }
  return out.str();
}

Result<std::vector<ExofsDirent>> ParseDir(std::string_view text, uint64_t pid) {
  std::vector<ExofsDirent> entries;
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "#dir") {
    return Status{ErrorCode::kCorrupted, "bad directory header"};
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    std::string oid_hex, name;
    uint64_t size = 0;
    if (!(ls >> kind >> oid_hex >> size >> name) || (kind != 'D' && kind != 'F')) {
      return Status{ErrorCode::kCorrupted, "bad directory entry"};
    }
    uint64_t oid = 0;
    std::string_view digits = oid_hex;
    if (digits.starts_with("0x")) digits.remove_prefix(2);
    auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), oid, 16);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      return Status{ErrorCode::kCorrupted, "bad oid in directory"};
    }
    entries.push_back(ExofsDirent{.name = name,
                                  .object = {pid, oid},
                                  .is_directory = kind == 'D',
                                  .size = size});
  }
  return entries;
}

}  // namespace

ExofsClient::ExofsClient(OsdInitiator& initiator,
                         std::function<uint64_t(uint64_t)> physical_size)
    : initiator_(initiator), physical_size_(std::move(physical_size)) {
  REO_CHECK(physical_size_ != nullptr);
}

Result<std::vector<std::string>> ExofsClient::SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status{ErrorCode::kInvalidArgument, "path must be absolute"};
  }
  std::vector<std::string> parts;
  std::string part;
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!part.empty()) {
        parts.push_back(part);
        part.clear();
      }
    } else if (path[i] == ' ' || path[i] == '\n') {
      return Status{ErrorCode::kInvalidArgument, "illegal character in path"};
    } else {
      part += path[i];
    }
  }
  return parts;
}

Status ExofsClient::WritePadded(ObjectId id, std::span<const uint8_t> bytes,
                                SimTime now) {
  uint64_t logical = std::max<uint64_t>(bytes.size(), 1);
  std::vector<uint8_t> padded(static_cast<size_t>(physical_size_(logical)), 0);
  REO_CHECK(padded.size() >= bytes.size());
  std::copy(bytes.begin(), bytes.end(), padded.begin());
  auto resp = initiator_.WriteObject(id, padded, logical, now);
  if (!resp.ok()) {
    return {ErrorCode::kInternal, "OSD write failed: " +
                                      std::string(to_string(resp.sense))};
  }
  return Status::Ok();
}

Status ExofsClient::PersistSuper(SimTime now) {
  char buf[96];
  int n = std::snprintf(buf, sizeof(buf), "%s\nnext_oid 0x%llx\n",
                        std::string(kSuperMagic).c_str(),
                        static_cast<unsigned long long>(next_oid_));
  return WritePadded(kSuperBlockObject,
                     std::span<const uint8_t>(
                         reinterpret_cast<const uint8_t*>(buf),
                         static_cast<size_t>(n)),
                     now);
}

Status ExofsClient::MkFs(uint64_t capacity_bytes, SimTime now) {
  auto resp = initiator_.FormatOsd(capacity_bytes, now);
  if (!resp.ok()) return {ErrorCode::kInternal, "format failed"};
  next_oid_ = 0x20000;
  REO_RETURN_IF_ERROR(PersistSuper(now));
  REO_RETURN_IF_ERROR(StoreDir(kRootDirectoryObject, {}, now));
  mounted_ = true;
  return Status::Ok();
}

Status ExofsClient::Mount(SimTime now) {
  auto resp = initiator_.ReadObject(kSuperBlockObject, now);
  if (!resp.ok()) return {ErrorCode::kNotFound, "no superblock"};
  std::string text(resp.data.begin(), resp.data.end());
  std::istringstream in(text);
  std::string magic;
  std::getline(in, magic);
  if (magic != kSuperMagic) return {ErrorCode::kCorrupted, "bad superblock magic"};
  std::string key, value;
  if (!(in >> key >> value) || key != "next_oid") {
    return {ErrorCode::kCorrupted, "bad superblock body"};
  }
  next_oid_ = std::stoull(value, nullptr, 16);
  mounted_ = true;
  return Status::Ok();
}

ObjectId ExofsClient::AllocateOid() {
  return ObjectId{kFirstUserId, next_oid_++};
}

Result<std::vector<ExofsDirent>> ExofsClient::LoadDir(ObjectId dir, SimTime now) {
  auto resp = initiator_.ReadObject(dir, now);
  if (!resp.ok()) return Status{ErrorCode::kNotFound, "directory unreadable"};
  // Strip the physical padding: the logical size attribute holds the
  // actual byte count.
  auto attr = initiator_.GetAttr(dir, kAttrLogicalSize, now);
  std::string text(resp.data.begin(), resp.data.end());
  if (attr.ok() && attr.attr_value.size() == 8) {
    uint64_t logical = 0;
    for (int i = 0; i < 8; ++i) {
      logical |= static_cast<uint64_t>(attr.attr_value[static_cast<size_t>(i)]) << (8 * i);
    }
    text.resize(std::min<size_t>(text.size(), static_cast<size_t>(logical)));
  }
  return ParseDir(text, dir.pid);
}

Status ExofsClient::StoreDir(ObjectId dir, const std::vector<ExofsDirent>& entries,
                             SimTime now) {
  if (!initiator_.ListObjects(dir.pid, now).ok()) {
    return {ErrorCode::kNotFound, "no partition"};
  }
  (void)initiator_.CreateObject(dir, 0, now);  // idempotent for re-store
  std::string text = SerializeDir(entries);
  return WritePadded(dir, {reinterpret_cast<const uint8_t*>(text.data()),
                           text.size()},
                     now);
}

Result<ObjectId> ExofsClient::ResolveDir(const std::string& path, SimTime now) {
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  ObjectId dir = kRootDirectoryObject;
  for (const auto& part : *parts) {
    auto entries = LoadDir(dir, now);
    if (!entries.ok()) return entries.status();
    auto it = std::find_if(entries->begin(), entries->end(),
                           [&](const ExofsDirent& e) { return e.name == part; });
    if (it == entries->end()) return Status{ErrorCode::kNotFound, part};
    if (!it->is_directory) {
      return Status{ErrorCode::kInvalidArgument, part + " is not a directory"};
    }
    dir = it->object;
  }
  return dir;
}

Status ExofsClient::Mkdir(const std::string& path, SimTime now) {
  if (!mounted_) return {ErrorCode::kUnavailable, "not mounted"};
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return {ErrorCode::kAlreadyExists, "/"};
  std::string name = parts->back();
  std::string parent_path = "/";
  for (size_t i = 0; i + 1 < parts->size(); ++i) parent_path += (*parts)[i] + "/";

  auto parent = ResolveDir(parent_path, now);
  if (!parent.ok()) return parent.status();
  auto entries = LoadDir(*parent, now);
  if (!entries.ok()) return entries.status();
  for (const auto& e : *entries) {
    if (e.name == name) return {ErrorCode::kAlreadyExists, name};
  }

  ObjectId dir = AllocateOid();
  REO_RETURN_IF_ERROR(StoreDir(dir, {}, now));
  entries->push_back(ExofsDirent{.name = name, .object = dir, .is_directory = true});
  REO_RETURN_IF_ERROR(StoreDir(*parent, *entries, now));
  return PersistSuper(now);
}

Result<std::vector<ExofsDirent>> ExofsClient::ReadDir(const std::string& path,
                                                      SimTime now) {
  if (!mounted_) return Status{ErrorCode::kUnavailable, "not mounted"};
  auto dir = ResolveDir(path, now);
  if (!dir.ok()) return dir.status();
  return LoadDir(*dir, now);
}

Result<ExofsDirent> ExofsClient::Lookup(const std::string& path, SimTime now) {
  if (!mounted_) return Status{ErrorCode::kUnavailable, "not mounted"};
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) {
    return ExofsDirent{.name = "/", .object = kRootDirectoryObject,
                       .is_directory = true};
  }
  std::string name = parts->back();
  std::string parent_path = "/";
  for (size_t i = 0; i + 1 < parts->size(); ++i) parent_path += (*parts)[i] + "/";
  auto parent = ResolveDir(parent_path, now);
  if (!parent.ok()) return parent.status();
  auto entries = LoadDir(*parent, now);
  if (!entries.ok()) return entries.status();
  for (const auto& e : *entries) {
    if (e.name == name) return e;
  }
  return Status{ErrorCode::kNotFound, name};
}

Status ExofsClient::Unlink(const std::string& path, SimTime now) {
  if (!mounted_) return {ErrorCode::kUnavailable, "not mounted"};
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return {ErrorCode::kInvalidArgument, "cannot unlink /"};
  std::string name = parts->back();
  std::string parent_path = "/";
  for (size_t i = 0; i + 1 < parts->size(); ++i) parent_path += (*parts)[i] + "/";
  auto parent = ResolveDir(parent_path, now);
  if (!parent.ok()) return parent.status();
  auto entries = LoadDir(*parent, now);
  if (!entries.ok()) return entries.status();

  auto it = std::find_if(entries->begin(), entries->end(),
                         [&](const ExofsDirent& e) { return e.name == name; });
  if (it == entries->end()) return {ErrorCode::kNotFound, name};
  if (it->is_directory) {
    auto children = LoadDir(it->object, now);
    if (children.ok() && !children->empty()) {
      return {ErrorCode::kInvalidArgument, "directory not empty"};
    }
  }
  (void)initiator_.RemoveObject(it->object, now);
  entries->erase(it);
  return StoreDir(*parent, *entries, now);
}

Status ExofsClient::WriteFile(const std::string& path,
                              std::span<const uint8_t> payload,
                              uint64_t logical_size, SimTime now) {
  if (!mounted_) return {ErrorCode::kUnavailable, "not mounted"};
  if (payload.size() != logical_size) {
    return {ErrorCode::kInvalidArgument, "payload/logical mismatch"};
  }
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return {ErrorCode::kInvalidArgument, "bad file path"};
  std::string name = parts->back();
  std::string parent_path = "/";
  for (size_t i = 0; i + 1 < parts->size(); ++i) parent_path += (*parts)[i] + "/";
  auto parent = ResolveDir(parent_path, now);
  if (!parent.ok()) return parent.status();
  auto entries = LoadDir(*parent, now);
  if (!entries.ok()) return entries.status();

  auto it = std::find_if(entries->begin(), entries->end(),
                         [&](const ExofsDirent& e) { return e.name == name; });
  ObjectId file;
  if (it == entries->end()) {
    file = AllocateOid();
    (void)initiator_.CreateObject(file, logical_size, now);
    entries->push_back(ExofsDirent{.name = name, .object = file, .size = logical_size});
  } else {
    if (it->is_directory) return {ErrorCode::kInvalidArgument, "is a directory"};
    file = it->object;
    it->size = logical_size;
  }
  REO_RETURN_IF_ERROR(WritePadded(file, payload, now));
  REO_RETURN_IF_ERROR(StoreDir(*parent, *entries, now));
  return PersistSuper(now);
}

Result<std::vector<uint8_t>> ExofsClient::ReadFile(const std::string& path,
                                                   SimTime now) {
  auto ent = Lookup(path, now);
  if (!ent.ok()) return ent.status();
  if (ent->is_directory) return Status{ErrorCode::kInvalidArgument, "is a directory"};
  auto resp = initiator_.ReadObject(ent->object, now);
  if (!resp.ok()) {
    return Status{ErrorCode::kCorrupted,
                  "read failed: " + std::string(to_string(resp.sense))};
  }
  std::vector<uint8_t> data(resp.data.begin(), resp.data.end());
  data.resize(std::min<size_t>(data.size(), static_cast<size_t>(ent->size)));
  return data;
}

}  // namespace reo
