#include "osd/cluster_directory.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/json_util.h"

namespace reo {

void ClusterDirectory::AttachTelemetry(MetricRegistry& registry) {
  tel_hints_ = &registry.GetCounter("cluster.hints");
  tel_node_downs_ = &registry.GetCounter("cluster.node_down");
  tel_refetches_ = &registry.GetCounter("cluster.refetch");
  tel_degraded_misses_ = &registry.GetCounter("cluster.degraded_miss");
  tel_entries_ = &registry.GetGauge("cluster.directory_entries");
}

void ClusterDirectory::RecordHint(const OwnerHintCommand& hint, SimTime now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  OwnerEntry& e = entries_[hint.target];
  e.class_id = hint.class_id;
  // Hotness only grows: re-hints race with refetch re-owning, and a stale
  // lower estimate must not erase a fresher one.
  e.hotness = std::max(e.hotness, hint.hotness);
  e.owner = hint.owner;
  e.down = false;
  ++stats_.hints;
  Inc(tel_hints_);
  if (tel_entries_) tel_entries_->Set(static_cast<double>(entries_.size()));
}

void ClusterDirectory::OnNodeDown(const NodeDownCommand& cmd, SimTime now) {
  uint64_t pending[4] = {0, 0, 0, 0};
  size_t misses = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, e] : entries_) {
      if (e.owner != cmd.node || e.down) continue;
      e.down = true;
      if (e.class_id < 4) ++pending[e.class_id];
      if (e.class_id >= 2) ++misses;
    }
    ++stats_.node_downs;
    stats_.degraded_misses += misses;
  }
  Inc(tel_node_downs_);
  Inc(tel_degraded_misses_, misses);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "node %u down", cmd.node);
  Emit(events_, now, EventSeverity::kError, "cluster.node_down", buf,
       {{"node", std::to_string(cmd.node)},
        {"pending_class0", std::to_string(pending[0])},
        {"pending_class1", std::to_string(pending[1])},
        {"clean_miss_class2", std::to_string(pending[2])},
        {"clean_miss_class3", std::to_string(pending[3])}});
}

void ClusterDirectory::OnLocalWrite(ObjectId id, SimTime now) {
  uint8_t class_id = 0;
  uint64_t hotness = 0;
  uint32_t prev_owner = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end() || !it->second.down) return;
    class_id = it->second.class_id;
    hotness = it->second.hotness;
    prev_owner = it->second.owner;
    it->second.owner = local_node_;
    it->second.down = false;
    ++stats_.refetches;
  }
  Inc(tel_refetches_);
  Emit(events_, now, EventSeverity::kInfo, "cluster.refetch",
       "refetched object re-owned",
       {{"object", id.ToString()},
        {"class", std::to_string(class_id)},
        {"hotness", std::to_string(hotness)},
        {"from_node", std::to_string(prev_owner)},
        {"to_node", std::to_string(local_node_)}});
}

void ClusterDirectory::OnLocalRemove(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(id);
  if (tel_entries_) tel_entries_->Set(static_cast<double>(entries_.size()));
}

ClusterDirectoryStats ClusterDirectory::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ClusterDirectory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::pair<ObjectId, OwnerEntry>> ClusterDirectory::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

namespace {

/// Refetch order: class ascending, then hot before cold.
void SortRefetchOrder(std::vector<std::pair<ObjectId, OwnerEntry>>& v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.second.class_id != b.second.class_id) {
      return a.second.class_id < b.second.class_id;
    }
    if (a.second.hotness != b.second.hotness) {
      return a.second.hotness > b.second.hotness;
    }
    return a.first < b.first;
  });
}

std::string OwnersJson(uint32_t node,
                       std::vector<std::pair<ObjectId, OwnerEntry>> snapshot) {
  SortRefetchOrder(snapshot);
  std::string out;
  out.reserve(64 + snapshot.size() * 96);
  out += "{\"schema\":\"reo.owners.v1\",\"node\":";
  out += std::to_string(node);
  out += ",\"entries\":[";
  bool first = true;
  char buf[192];
  for (const auto& [id, e] : snapshot) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"pid\":\"0x%llx\",\"oid\":\"0x%llx\",\"class\":%u,"
                  "\"hotness\":%llu,\"owner\":%u,\"down\":%s}",
                  static_cast<unsigned long long>(id.pid),
                  static_cast<unsigned long long>(id.oid),
                  static_cast<unsigned>(e.class_id),
                  static_cast<unsigned long long>(e.hotness),
                  static_cast<unsigned>(e.owner), e.down ? "true" : "false");
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace

std::string ClusterDirectory::ToJson() const {
  return OwnersJson(local_node_, Snapshot());
}

std::string ClusterDirectory::MergedJson(
    const std::vector<const ClusterDirectory*>& parts) {
  std::vector<std::pair<ObjectId, OwnerEntry>> all;
  uint32_t node = 0;
  for (const ClusterDirectory* d : parts) {
    if (d == nullptr) continue;
    node = d->local_node();
    auto part = d->Snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  return OwnersJson(node, std::move(all));
}

}  // namespace reo
