#include "osd/osd_initiator.h"

namespace reo {

OsdResponse OsdInitiator::Execute(OsdCommand command) {
  ++stats_.commands_sent;
  OsdResponse resp = transport_ != nullptr ? transport_->Roundtrip(command)
                                           : target_.Execute(command);
  if (!resp.ok()) ++stats_.errors;
  return resp;
}

OsdResponse OsdInitiator::FormatOsd(uint64_t capacity_bytes, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kFormat;
  c.capacity_bytes = capacity_bytes;
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::CreatePartition(uint64_t pid, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kCreatePartition;
  c.id = ObjectId{pid, 0};
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::CreateObject(ObjectId id, uint64_t logical_size,
                                       SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kCreate;
  c.id = id;
  c.logical_size = logical_size;
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::WriteObject(ObjectId id,
                                      std::span<const uint8_t> payload,
                                      uint64_t logical_size, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kWrite;
  c.id = id;
  c.data.assign(payload.begin(), payload.end());
  c.logical_size = logical_size;
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::ReadObject(ObjectId id, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kRead;
  c.id = id;
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::RemoveObject(ObjectId id, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kRemove;
  c.id = id;
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::ListObjects(uint64_t pid, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kList;
  c.id = ObjectId{pid, 0};
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::SetAttr(ObjectId id, AttributeId attr,
                                  std::span<const uint8_t> value, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kSetAttr;
  c.id = id;
  c.attr = attr;
  c.attr_value.assign(value.begin(), value.end());
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::GetAttr(ObjectId id, AttributeId attr, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kGetAttr;
  c.id = id;
  c.attr = attr;
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::CreateCollection(ObjectId id, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kCreateCollection;
  c.id = id;
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::RemoveCollection(ObjectId id, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kRemoveCollection;
  c.id = id;
  c.now = now;
  return Execute(std::move(c));
}

OsdResponse OsdInitiator::ListCollection(ObjectId id, SimTime now) {
  OsdCommand c;
  c.op = OsdOp::kListCollection;
  c.id = id;
  c.now = now;
  return Execute(std::move(c));
}

SenseCode OsdInitiator::SendControl(const ControlMessage& msg, SimTime now) {
  ++stats_.control_writes;
  OsdCommand c;
  c.op = OsdOp::kWrite;
  c.id = kControlObject;
  c.data = EncodeControlMessage(msg);
  // §IV.C.2: control messages are written with fsync to reach the target
  // immediately; the message is a few dozen bytes, so a fixed cost models
  // the synchronous round trip.
  c.now = now + control_latency_ns_;
  return Execute(std::move(c)).sense;
}

SenseCode OsdInitiator::SetClassId(ObjectId id, uint8_t cid, SimTime now) {
  return SendControl(ControlMessage{SetIdCommand{.target = id, .class_id = cid}},
                     now);
}

SenseCode OsdInitiator::Query(ObjectId id, bool is_write, uint64_t offset,
                              uint64_t size, SimTime now) {
  return SendControl(ControlMessage{QueryCommand{.target = id,
                                                 .is_write = is_write,
                                                 .offset = offset,
                                                 .size = size}},
                     now);
}

SenseCode OsdInitiator::QueryRecoveryState(SimTime now) {
  return Query(kControlObject, false, 0, 0, now);
}

}  // namespace reo
