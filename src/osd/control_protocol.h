// The control side-channel of Reo (paper §IV.C.2).
//
// All management/control traffic between the cache manager and the object
// storage is encoded as small messages written synchronously to the
// reserved communication object (OID 0x10004). Four commands exist:
//
//   Classification: "#SETID#"    <PID> <OID> <CID>
//   Query:          "#QUERY#"    <PID> <OID> <R|W> <offset> <size>
//   Owner hint:     "#OWNER#"    <PID> <OID> <CID> <hotness> <node>
//   Node down:      "#NODEDOWN#" <node>
//
// The first two are the paper's cache-manager protocol. The last two are
// the cluster extension: an owner hint records, on a ring-successor node,
// that object (PID, OID) of class CID lives on cluster node <node> — the
// metadata a survivor needs to drive cross-node differentiated recovery
// when <node> dies; a node-down announcement tells a survivor to account
// the dead node's hinted objects (class 0/1 pending refetch, class 2/3
// degraded to clean misses). This header provides encode/decode for that
// wire format.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"

namespace reo {

inline constexpr std::string_view kSetIdHeader = "#SETID#";
inline constexpr std::string_view kQueryHeader = "#QUERY#";
inline constexpr std::string_view kOwnerHeader = "#OWNER#";
inline constexpr std::string_view kNodeDownHeader = "#NODEDOWN#";

/// Classification command: assigns class CID to the target object.
struct SetIdCommand {
  ObjectId target;
  uint8_t class_id = 0;
  friend bool operator==(const SetIdCommand&, const SetIdCommand&) = default;
};

/// Query command: asks about the status of (part of) an object.
struct QueryCommand {
  ObjectId target;
  bool is_write = false;  ///< operation type field: R or W
  uint64_t offset = 0;
  uint64_t size = 0;
  friend bool operator==(const QueryCommand&, const QueryCommand&) = default;
};

/// Cluster owner hint: object `target` of class `class_id` lives on
/// cluster node `owner`; `hotness` is the writer's read-popularity
/// estimate, re-hinted as it grows so survivors can refetch hot-first.
struct OwnerHintCommand {
  ObjectId target;
  uint8_t class_id = 0;
  uint64_t hotness = 0;
  uint32_t owner = 0;
  friend bool operator==(const OwnerHintCommand&,
                         const OwnerHintCommand&) = default;
};

/// Cluster node-down announcement: node `node` is considered dead; the
/// receiver accounts its hinted objects per class.
struct NodeDownCommand {
  uint32_t node = 0;
  friend bool operator==(const NodeDownCommand&,
                         const NodeDownCommand&) = default;
};

using ControlMessage =
    std::variant<SetIdCommand, QueryCommand, OwnerHintCommand, NodeDownCommand>;

/// Serializes a control message to its wire bytes.
std::vector<uint8_t> EncodeControlMessage(const ControlMessage& msg);

/// Parses wire bytes back into a message; fails on malformed input.
Result<ControlMessage> DecodeControlMessage(std::span<const uint8_t> wire);

}  // namespace reo
