// The control side-channel of Reo (paper §IV.C.2).
//
// All management/control traffic between the cache manager and the object
// storage is encoded as small messages written synchronously to the
// reserved communication object (OID 0x10004). Two commands exist:
//
//   Classification: "#SETID#"  <PID> <OID> <CID>
//   Query:          "#QUERY#"  <PID> <OID> <R|W> <offset> <size>
//
// This header provides encode/decode for that wire format.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"

namespace reo {

inline constexpr std::string_view kSetIdHeader = "#SETID#";
inline constexpr std::string_view kQueryHeader = "#QUERY#";

/// Classification command: assigns class CID to the target object.
struct SetIdCommand {
  ObjectId target;
  uint8_t class_id = 0;
  friend bool operator==(const SetIdCommand&, const SetIdCommand&) = default;
};

/// Query command: asks about the status of (part of) an object.
struct QueryCommand {
  ObjectId target;
  bool is_write = false;  ///< operation type field: R or W
  uint64_t offset = 0;
  uint64_t size = 0;
  friend bool operator==(const QueryCommand&, const QueryCommand&) = default;
};

using ControlMessage = std::variant<SetIdCommand, QueryCommand>;

/// Serializes a control message to its wire bytes.
std::vector<uint8_t> EncodeControlMessage(const ControlMessage& msg);

/// Parses wire bytes back into a message; fails on malformed input.
Result<ControlMessage> DecodeControlMessage(std::span<const uint8_t> wire);

}  // namespace reo
