#include "osd/transport.h"

#include <algorithm>
#include <cstring>

namespace reo {
namespace {

constexpr uint32_t kCommandMagic = 0x52454F43;   // "REOC"
constexpr uint32_t kResponseMagic = 0x52454F52;  // "REOR"

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void Bytes(std::span<const uint8_t> b) {
    U64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void U64Vec(const std::vector<uint64_t>& v) {
    U64(v.size());
    for (uint64_t x : v) U64(x);
  }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> b) : buf_(b) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > buf_.size()) return false;
    *v = buf_[pos_++];
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos_ + 4 > buf_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf_[pos_++]) << (8 * i);
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > buf_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf_[pos_++]) << (8 * i);
    return true;
  }
  // Length-prefixed fields compare the announced count against the bytes
  // actually remaining (never `pos_ + n`, which a hostile 64-bit length
  // wraps past the size check into an out-of-bounds read).
  template <typename Vec>  // std::vector<uint8_t> or PayloadBuffer
  bool Bytes(Vec* out) {
    uint64_t n = 0;
    if (!U64(&n) || n > Remaining()) return false;
    out->assign(buf_.begin() + static_cast<long>(pos_),
                buf_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool U64Vec(std::vector<uint64_t>* out) {
    uint64_t n = 0;
    if (!U64(&n) || n > Remaining() / 8) return false;
    out->resize(static_cast<size_t>(n));
    for (auto& x : *out) {
      if (!U64(&x)) return false;
    }
    return true;
  }
  bool Done() const { return pos_ == buf_.size(); }

 private:
  size_t Remaining() const { return buf_.size() - pos_; }

  std::span<const uint8_t> buf_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> EncodeCommand(const OsdCommand& c) {
  Writer w;
  w.U32(kCommandMagic);
  w.U8(static_cast<uint8_t>(c.op));
  w.U64(c.id.pid);
  w.U64(c.id.oid);
  w.U64(c.logical_size);
  w.U64(c.capacity_bytes);
  w.U64(c.now);
  w.U32(c.attr.page);
  w.U32(c.attr.number);
  w.Bytes(c.data);
  w.Bytes(c.attr_value);
  return w.Take();
}

Result<OsdCommand> DecodeCommand(std::span<const uint8_t> wire) {
  Reader r(wire);
  uint32_t magic = 0;
  uint8_t op = 0;
  OsdCommand c;
  if (!r.U32(&magic) || magic != kCommandMagic) {
    return Status{ErrorCode::kInvalidArgument, "bad command magic"};
  }
  if (!r.U8(&op) || op > static_cast<uint8_t>(OsdOp::kListCollection)) {
    return Status{ErrorCode::kInvalidArgument, "bad opcode"};
  }
  c.op = static_cast<OsdOp>(op);
  if (!r.U64(&c.id.pid) || !r.U64(&c.id.oid) || !r.U64(&c.logical_size) ||
      !r.U64(&c.capacity_bytes) || !r.U64(&c.now) || !r.U32(&c.attr.page) ||
      !r.U32(&c.attr.number) || !r.Bytes(&c.data) || !r.Bytes(&c.attr_value) ||
      !r.Done()) {
    return Status{ErrorCode::kInvalidArgument, "truncated command"};
  }
  return c;
}

std::vector<uint8_t> EncodeResponse(const OsdResponse& resp) {
  Writer w;
  w.U32(kResponseMagic);
  w.U32(static_cast<uint32_t>(resp.sense));
  w.U64(resp.complete);
  w.U8(resp.degraded ? 1 : 0);
  w.Bytes(resp.data);
  w.Bytes(resp.attr_value);
  w.U64Vec(resp.list);
  return w.Take();
}

EncodedResponseParts EncodeResponseParts(OsdResponse&& resp) {
  EncodedResponseParts out;
  Writer head;
  head.U32(kResponseMagic);
  head.U32(static_cast<uint32_t>(resp.sense));
  head.U64(resp.complete);
  head.U8(resp.degraded ? 1 : 0);
  head.U64(resp.data.size());  // Bytes() length prefix; the bytes ride in body
  out.head = head.Take();
  out.body = std::move(resp.data);
  Writer tail;
  tail.Bytes(resp.attr_value);
  tail.U64Vec(resp.list);
  out.tail = tail.Take();
  return out;
}

Result<OsdResponse> DecodeResponse(std::span<const uint8_t> wire) {
  Reader r(wire);
  uint32_t magic = 0, sense = 0;
  uint8_t degraded = 0;
  OsdResponse resp;
  if (!r.U32(&magic) || magic != kResponseMagic) {
    return Status{ErrorCode::kInvalidArgument, "bad response magic"};
  }
  if (!r.U32(&sense) || !r.U64(&resp.complete) || !r.U8(&degraded) ||
      !r.Bytes(&resp.data) || !r.Bytes(&resp.attr_value) ||
      !r.U64Vec(&resp.list) || !r.Done()) {
    return Status{ErrorCode::kInvalidArgument, "truncated response"};
  }
  resp.sense = static_cast<SenseCode>(static_cast<int32_t>(sense));
  resp.degraded = degraded != 0;
  return resp;
}

void OsdTransport::AttachTelemetry(MetricRegistry& registry) {
  tel_commands_ = &registry.GetCounter("transport.commands");
  tel_bytes_sent_ = &registry.GetCounter("transport.bytes_sent");
  tel_bytes_received_ = &registry.GetCounter("transport.bytes_received");
  tel_decode_errors_ = &registry.GetCounter("transport.decode_errors");
}

OsdResponse OsdTransport::Roundtrip(const OsdCommand& command) {
  ++stats_.commands;
  Inc(tel_commands_);
  TraceSpan span(trace_, TraceOp::kRoundtrip, command.now, command.id.oid);

  // Initiator -> target.
  auto request_wire = EncodeCommand(command);
  stats_.bytes_sent += request_wire.size();
  Inc(tel_bytes_sent_, request_wire.size());
  SimTime arrived = link_.Transfer(command.now, request_wire.size());

  auto decoded = DecodeCommand(request_wire);
  if (!decoded.ok()) {
    ++stats_.decode_errors;
    Inc(tel_decode_errors_);
    span.set_flags(kSpanError);
    OsdResponse err;
    err.sense = SenseCode::kFail;
    return err;
  }
  decoded->now = arrived;  // device time starts when the command lands
  OsdResponse resp = target_.Execute(*decoded);

  // Target -> initiator.
  auto response_wire = EncodeResponse(resp);
  stats_.bytes_received += response_wire.size();
  Inc(tel_bytes_received_, response_wire.size());
  SimTime target_done = std::max(arrived, resp.complete);
  SimTime received = link_.Transfer(target_done, response_wire.size());

  auto back = DecodeResponse(response_wire);
  if (!back.ok()) {
    ++stats_.decode_errors;
    Inc(tel_decode_errors_);
    span.set_flags(kSpanError);
    OsdResponse err;
    err.sense = SenseCode::kFail;
    return err;
  }
  back->complete = received;
  span.set_end(received);
  span.set_detail(request_wire.size() + response_wire.size());
  if (back->degraded) span.set_flags(kSpanDegraded);
  return std::move(*back);
}

}  // namespace reo
