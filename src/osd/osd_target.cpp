#include "osd/osd_target.h"

namespace reo {
namespace {

OsdResponse MakeError(SenseCode sense) {
  OsdResponse r;
  r.sense = sense;
  return r;
}

}  // namespace

OsdTarget::OsdTarget(DataPlane& data_plane) : data_plane_(data_plane) {}

void OsdTarget::AttachTelemetry(MetricRegistry& registry) {
  tel_commands_ = &registry.GetCounter("osd.commands");
  tel_reads_ = &registry.GetCounter("osd.reads");
  tel_read_misses_ = &registry.GetCounter("osd.read_misses");
  tel_writes_ = &registry.GetCounter("osd.writes");
  tel_control_ = &registry.GetCounter("osd.control_messages");
  tel_degraded_ = &registry.GetCounter("osd.degraded_reads");
  tel_sense_errors_ = &registry.GetCounter("osd.sense_errors");
  tel_bytes_in_ = &registry.GetCounter("osd.bytes_in");
  tel_bytes_out_ = &registry.GetCounter("osd.bytes_out");
}

OsdResponse OsdTarget::Execute(const OsdCommand& cmd) {
  ++stats_.commands;
  Inc(tel_commands_);
  TraceOp span_op = TraceOp::kOsdCommand;
  switch (cmd.op) {
    case OsdOp::kRead: span_op = TraceOp::kOsdRead; break;
    case OsdOp::kWrite:
      span_op = cmd.id == kControlObject ? TraceOp::kOsdControl
                                         : TraceOp::kOsdWrite;
      break;
    default: break;
  }
  TraceSpan span(trace_, span_op, cmd.now, cmd.id.oid);
  OsdResponse resp;
  switch (cmd.op) {
    case OsdOp::kFormat:
      store_.Format(cmd.capacity_bytes);
      data_plane_.OnFormat(cmd.capacity_bytes, cmd.now);
      break;

    case OsdOp::kCreatePartition:
      resp.sense = SenseFromStatus(store_.CreatePartition(cmd.id.pid));
      break;

    case OsdOp::kCreate:
      resp.sense = SenseFromStatus(store_.CreateObject(cmd.id, cmd.logical_size));
      break;

    case OsdOp::kWrite:
      resp = cmd.id == kControlObject ? HandleControlWrite(cmd) : HandleWrite(cmd);
      break;

    case OsdOp::kRead:
      resp = HandleRead(cmd);
      break;

    case OsdOp::kRemove: {
      Status meta = store_.RemoveObject(cmd.id);
      if (!meta.ok()) {
        resp.sense = SenseFromStatus(meta);
        break;
      }
      Status data = data_plane_.RemoveObject(cmd.id);
      // A created-but-never-written object has no data-plane state.
      if (!data.ok() && data.code() != ErrorCode::kNotFound) {
        resp.sense = SenseFromStatus(data);
      }
      if (cluster_) cluster_->OnLocalRemove(cmd.id);
      break;
    }

    case OsdOp::kSetAttr: {
      auto rec = store_.Find(cmd.id);
      if (!rec.ok()) {
        resp.sense = SenseCode::kFail;
        break;
      }
      (*rec)->attributes.Set(cmd.attr, cmd.attr_value);
      break;
    }

    case OsdOp::kGetAttr: {
      auto rec = store_.Find(cmd.id);
      if (!rec.ok()) {
        resp.sense = SenseCode::kFail;
        break;
      }
      auto v = (*rec)->attributes.Get(cmd.attr);
      if (!v) {
        resp.sense = SenseCode::kFail;
        break;
      }
      resp.attr_value.assign(v->begin(), v->end());
      break;
    }

    case OsdOp::kList:
      if (!store_.HasPartition(cmd.id.pid)) {
        resp.sense = SenseCode::kFail;
      } else {
        resp.list = store_.ListObjects(cmd.id.pid);
      }
      break;

    case OsdOp::kCreateCollection:
      resp.sense = SenseFromStatus(store_.CreateCollection(cmd.id));
      break;

    case OsdOp::kRemoveCollection:
      resp.sense = SenseFromStatus(store_.RemoveCollection(cmd.id));
      break;

    case OsdOp::kListCollection: {
      auto members = store_.ListCollection(cmd.id);
      if (!members.ok()) {
        resp.sense = SenseCode::kFail;
      } else {
        resp.list = std::move(members).value();
      }
      break;
    }
  }
  if (resp.sense != SenseCode::kOk) {
    ++stats_.sense_errors;
    Inc(tel_sense_errors_);
    span.set_flags(kSpanError);
  }
  if (resp.degraded) span.set_flags(kSpanDegraded);
  span.Cover(resp.complete);
  return resp;
}

OsdResponse OsdTarget::HandleControlWrite(const OsdCommand& cmd) {
  ++stats_.control_messages;
  Inc(tel_control_);
  // §IV.C.2: control writes are fsync'd — modeled as one metadata-size
  // device write worth of latency, negligible and charged by the caller.
  auto msg = DecodeControlMessage(cmd.data);
  if (!msg.ok()) return MakeError(SenseCode::kFail);

  OsdResponse resp;
  if (const auto* set = std::get_if<SetIdCommand>(&*msg)) {
    auto rec = store_.Find(set->target);
    if (!rec.ok()) return MakeError(SenseCode::kFail);
    (*rec)->attributes.SetU64(kAttrClassId, set->class_id);
    Status st = data_plane_.SetObjectClass(set->target, set->class_id, cmd.now);
    if (st.code() == ErrorCode::kNoSpace) {
      // Table III 0x67: the allocated space for data redundancy is full.
      resp.sense = SenseCode::kRedundancyFull;
    } else if (st.code() == ErrorCode::kNotFound) {
      // Classifying before the first write is legal; the class attribute
      // (set above) is applied when the payload arrives.
      resp.sense = SenseCode::kOk;
    } else {
      resp.sense = SenseFromStatus(st);
    }
    return resp;
  }

  if (const auto* hint = std::get_if<OwnerHintCommand>(&*msg)) {
    // Cluster owner hint: accepted (and fsync'd like any control write)
    // even without an attached directory so single-node servers tolerate
    // cluster clients; the metadata is simply not retained.
    if (cluster_) cluster_->RecordHint(*hint, cmd.now);
    return resp;
  }
  if (const auto* down = std::get_if<NodeDownCommand>(&*msg)) {
    if (cluster_) cluster_->OnNodeDown(*down, cmd.now);
    return resp;
  }

  const auto& q = std::get<QueryCommand>(*msg);
  if (q.target == kControlObject) {
    // Querying the control object itself reports recovery state:
    // 0x65 while reconstruction is running, 0x00 otherwise.
    resp.sense = data_plane_.recovery_active() ? SenseCode::kRecoveryStarts
                                               : SenseCode::kOk;
    return resp;
  }
  if (q.is_write) {
    // Write query: is there room for `size` bytes (class from the object's
    // attribute if present, else cold)?
    uint8_t cls = 3;
    if (auto rec = store_.Find(q.target); rec.ok()) {
      if (auto v = (*rec)->attributes.GetU64(kAttrClassId)) {
        cls = static_cast<uint8_t>(*v);
      }
    }
    resp.sense = data_plane_.HasSpaceFor(q.size, cls) ? SenseCode::kOk
                                                      : SenseCode::kCacheFull;
    return resp;
  }
  // Read query: object accessibility.
  switch (data_plane_.Health(q.target)) {
    case ObjectHealth::kIntact:
    case ObjectHealth::kDegraded:
      resp.sense = SenseCode::kOk;
      break;
    case ObjectHealth::kLost:
      resp.sense = SenseCode::kCorrupted;
      break;
    case ObjectHealth::kAbsent:
      resp.sense = SenseCode::kFail;
      break;
  }
  return resp;
}

OsdResponse OsdTarget::HandleWrite(const OsdCommand& cmd) {
  ++stats_.writes;
  Inc(tel_writes_);
  Inc(tel_bytes_in_, cmd.logical_size);
  auto rec = store_.Find(cmd.id);
  if (!rec.ok()) return MakeError(SenseCode::kFail);

  uint8_t cls = 3;  // unclassified data defaults to cold/clean
  if (auto v = (*rec)->attributes.GetU64(kAttrClassId)) {
    cls = static_cast<uint8_t>(*v);
  }
  auto io = data_plane_.WriteObject(cmd.id, cmd.data, cmd.logical_size, cls, cmd.now);
  if (!io.ok()) return MakeError(SenseFromStatus(io.status()));

  (*rec)->logical_size = cmd.logical_size;
  (*rec)->attributes.SetU64(kAttrLogicalSize, cmd.logical_size);
  if (cluster_) cluster_->OnLocalWrite(cmd.id, cmd.now);
  OsdResponse resp;
  resp.complete = io->complete;
  return resp;
}

OsdResponse OsdTarget::HandleRead(const OsdCommand& cmd) {
  ++stats_.reads;
  Inc(tel_reads_);
  if (!store_.Exists(cmd.id)) {
    // A miss at the target is the serving path's hit-ratio signal (the
    // standalone server has no cache manager in front of it).
    ++stats_.read_misses;
    Inc(tel_read_misses_);
    return MakeError(SenseCode::kFail);
  }
  auto rec = store_.Find(cmd.id);
  auto io = data_plane_.ReadObject(cmd.id, cmd.now);
  if (!io.ok()) return MakeError(SenseFromStatus(io.status()));
  OsdResponse resp;
  resp.complete = io->complete;
  resp.degraded = io->degraded;
  resp.data = std::move(io->payload);
  if (rec.ok()) Inc(tel_bytes_out_, (*rec)->logical_size);
  if (io->degraded) {
    ++stats_.degraded_reads;
    Inc(tel_degraded_);
  }
  return resp;
}

}  // namespace reo
