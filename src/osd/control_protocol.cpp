#include "osd/control_protocol.h"

#include <charconv>
#include <cstdio>

namespace reo {
namespace {

std::vector<uint8_t> ToBytes(const std::string& s) {
  return {s.begin(), s.end()};
}

/// Splits "a:b:c" into fields. The header keeps its surrounding '#'s.
std::vector<std::string_view> SplitFields(std::string_view s) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(':', start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

Result<uint64_t> ParseU64(std::string_view f) {
  uint64_t v = 0;
  int base = 10;
  if (f.starts_with("0x") || f.starts_with("0X")) {
    f.remove_prefix(2);
    base = 16;
  }
  auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), v, base);
  if (ec != std::errc{} || ptr != f.data() + f.size()) {
    return Status{ErrorCode::kInvalidArgument, "bad integer field"};
  }
  return v;
}

}  // namespace

std::vector<uint8_t> EncodeControlMessage(const ControlMessage& msg) {
  char buf[160];
  if (const auto* set = std::get_if<SetIdCommand>(&msg)) {
    std::snprintf(buf, sizeof(buf), "%s:0x%llx:0x%llx:%u",
                  std::string(kSetIdHeader).c_str(),
                  static_cast<unsigned long long>(set->target.pid),
                  static_cast<unsigned long long>(set->target.oid),
                  static_cast<unsigned>(set->class_id));
    return ToBytes(buf);
  }
  if (const auto* q = std::get_if<QueryCommand>(&msg)) {
    std::snprintf(buf, sizeof(buf), "%s:0x%llx:0x%llx:%c:%llu:%llu",
                  std::string(kQueryHeader).c_str(),
                  static_cast<unsigned long long>(q->target.pid),
                  static_cast<unsigned long long>(q->target.oid),
                  q->is_write ? 'W' : 'R',
                  static_cast<unsigned long long>(q->offset),
                  static_cast<unsigned long long>(q->size));
    return ToBytes(buf);
  }
  if (const auto* h = std::get_if<OwnerHintCommand>(&msg)) {
    std::snprintf(buf, sizeof(buf), "%s:0x%llx:0x%llx:%u:%llu:%u",
                  std::string(kOwnerHeader).c_str(),
                  static_cast<unsigned long long>(h->target.pid),
                  static_cast<unsigned long long>(h->target.oid),
                  static_cast<unsigned>(h->class_id),
                  static_cast<unsigned long long>(h->hotness),
                  static_cast<unsigned>(h->owner));
    return ToBytes(buf);
  }
  const auto& d = std::get<NodeDownCommand>(msg);
  std::snprintf(buf, sizeof(buf), "%s:%u", std::string(kNodeDownHeader).c_str(),
                static_cast<unsigned>(d.node));
  return ToBytes(buf);
}

Result<ControlMessage> DecodeControlMessage(std::span<const uint8_t> wire) {
  std::string_view s(reinterpret_cast<const char*>(wire.data()), wire.size());
  auto fields = SplitFields(s);
  if (fields.empty()) return Status{ErrorCode::kInvalidArgument, "empty message"};

  if (fields[0] == kSetIdHeader) {
    if (fields.size() != 4) {
      return Status{ErrorCode::kInvalidArgument, "SETID needs 4 fields"};
    }
    auto pid = ParseU64(fields[1]);
    auto oid = ParseU64(fields[2]);
    auto cid = ParseU64(fields[3]);
    if (!pid.ok() || !oid.ok() || !cid.ok() || *cid > 0xFF) {
      return Status{ErrorCode::kInvalidArgument, "bad SETID field"};
    }
    return ControlMessage{SetIdCommand{
        .target = {*pid, *oid}, .class_id = static_cast<uint8_t>(*cid)}};
  }

  if (fields[0] == kQueryHeader) {
    if (fields.size() != 6) {
      return Status{ErrorCode::kInvalidArgument, "QUERY needs 6 fields"};
    }
    auto pid = ParseU64(fields[1]);
    auto oid = ParseU64(fields[2]);
    std::string_view op = fields[3];
    auto offset = ParseU64(fields[4]);
    auto size = ParseU64(fields[5]);
    if (!pid.ok() || !oid.ok() || !offset.ok() || !size.ok() ||
        (op != "R" && op != "W")) {
      return Status{ErrorCode::kInvalidArgument, "bad QUERY field"};
    }
    return ControlMessage{QueryCommand{.target = {*pid, *oid},
                                       .is_write = op == "W",
                                       .offset = *offset,
                                       .size = *size}};
  }
  if (fields[0] == kOwnerHeader) {
    if (fields.size() != 6) {
      return Status{ErrorCode::kInvalidArgument, "OWNER needs 6 fields"};
    }
    auto pid = ParseU64(fields[1]);
    auto oid = ParseU64(fields[2]);
    auto cid = ParseU64(fields[3]);
    auto hot = ParseU64(fields[4]);
    auto owner = ParseU64(fields[5]);
    if (!pid.ok() || !oid.ok() || !cid.ok() || !hot.ok() || !owner.ok() ||
        *cid > 0xFF || *owner > 0xFFFFFFFFull) {
      return Status{ErrorCode::kInvalidArgument, "bad OWNER field"};
    }
    return ControlMessage{OwnerHintCommand{
        .target = {*pid, *oid},
        .class_id = static_cast<uint8_t>(*cid),
        .hotness = *hot,
        .owner = static_cast<uint32_t>(*owner)}};
  }

  if (fields[0] == kNodeDownHeader) {
    if (fields.size() != 2) {
      return Status{ErrorCode::kInvalidArgument, "NODEDOWN needs 2 fields"};
    }
    auto node = ParseU64(fields[1]);
    if (!node.ok() || *node > 0xFFFFFFFFull) {
      return Status{ErrorCode::kInvalidArgument, "bad NODEDOWN field"};
    }
    return ControlMessage{NodeDownCommand{.node = static_cast<uint32_t>(*node)}};
  }
  return Status{ErrorCode::kInvalidArgument, "unknown control header"};
}

}  // namespace reo
