// The OSD target: command dispatch for the object interface.
//
// Mirrors the role of osd-target in the paper's prototype (§V): it owns the
// object metadata (ObjectStore), delegates payload bytes to a DataPlane
// (the differentiated-redundancy flash array in production; a plain map in
// tests), and implements the control-object protocol and Table III sense
// codes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/object_id.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "osd/attribute_store.h"
#include "osd/cluster_directory.h"
#include "osd/control_protocol.h"
#include "osd/object_store.h"
#include "osd/sense.h"
#include "telemetry/metric_registry.h"
#include "trace/tracer.h"

namespace reo {

/// Result of a data-plane IO: virtual completion time, whether parity
/// reconstruction was needed (degraded read), and the payload for reads.
struct DataPlaneIo {
  SimTime complete = 0;
  bool degraded = false;
  PayloadBuffer payload;  ///< non-zeroing: reads fill every byte anyway
};

/// Accessibility of an object's bytes (paper §IV.D: "immediately
/// accessible / corrupted but recoverable / irrecoverable").
enum class ObjectHealth : uint8_t {
  kIntact,    ///< every chunk readable directly
  kDegraded,  ///< some chunks lost but within parity capability
  kLost,      ///< lost beyond recovery
  kAbsent,    ///< no data stored for this id
};

/// Payload storage behind the OSD target. Implemented by the Reo
/// differentiated-redundancy engine (core/) and by plain stores in tests.
class DataPlane {
 public:
  virtual ~DataPlane() = default;

  /// Stores a full object (physical payload bytes; logical size for space
  /// and timing). `class_id` selects the redundancy policy.
  virtual Result<DataPlaneIo> WriteObject(ObjectId id,
                                          std::span<const uint8_t> payload,
                                          uint64_t logical_bytes,
                                          uint8_t class_id, SimTime now) = 0;

  /// Reads a full object; performs a degraded read if needed.
  virtual Result<DataPlaneIo> ReadObject(ObjectId id, SimTime now) = 0;

  virtual Status RemoveObject(ObjectId id) = 0;

  /// Re-applies redundancy after a classification change. May fail with
  /// kNoSpace when the redundancy reserve is exhausted (sense 0x67).
  virtual Status SetObjectClass(ObjectId id, uint8_t class_id, SimTime now) = 0;

  virtual ObjectHealth Health(ObjectId id) const = 0;

  /// True between a device failure and the end of its reconstruction
  /// (drives sense 0x65 / 0x66 on control-object queries).
  virtual bool recovery_active() const = 0;

  /// Whether an object of `logical_bytes` in class `class_id` (data plus
  /// its redundancy) currently fits.
  virtual bool HasSpaceFor(uint64_t logical_bytes, uint8_t class_id) const = 0;

  /// FORMAT OSD notification: the target wiped its metadata store; planes
  /// holding state of their own (e.g. durable logs) discard it here.
  virtual void OnFormat(uint64_t capacity_bytes, SimTime now) {
    (void)capacity_bytes;
    (void)now;
  }
};

/// OSD command opcodes (the subset of OSD-2 Reo exercises).
enum class OsdOp : uint8_t {
  kFormat,
  kCreatePartition,
  kCreate,
  kWrite,
  kRead,
  kRemove,
  kSetAttr,
  kGetAttr,
  kList,
  kCreateCollection,
  kRemoveCollection,
  kListCollection,
};

/// One CDB-equivalent command.
struct OsdCommand {
  OsdOp op = OsdOp::kRead;
  ObjectId id;
  uint64_t logical_size = 0;          ///< WRITE: user-visible byte count
  std::vector<uint8_t> data;          ///< WRITE payload / control message
  AttributeId attr;                   ///< SET/GET ATTR target
  std::vector<uint8_t> attr_value;    ///< SET_ATTR value
  uint64_t capacity_bytes = 0;        ///< FORMAT
  SimTime now = 0;                    ///< virtual submission time
};

/// Command result.
struct OsdResponse {
  SenseCode sense = SenseCode::kOk;
  SimTime complete = 0;
  bool degraded = false;
  PayloadBuffer data;               ///< READ payload (non-zeroing buffer)
  std::vector<uint8_t> attr_value;  ///< GET_ATTR value
  std::vector<uint64_t> list;       ///< LIST / LIST_COLLECTION oids

  bool ok() const { return sense == SenseCode::kOk; }
};

/// Per-op service counters.
struct OsdTargetStats {
  uint64_t commands = 0;
  uint64_t reads = 0;
  uint64_t read_misses = 0;  ///< reads for oids the object index lacks
  uint64_t writes = 0;
  uint64_t control_messages = 0;
  uint64_t degraded_reads = 0;
  uint64_t sense_errors = 0;  ///< responses with sense != OK
};

/// The target. Not thread-safe; the simulator is single-threaded by design.
class OsdTarget {
 public:
  /// @param data_plane payload storage; must outlive the target.
  explicit OsdTarget(DataPlane& data_plane);

  /// Executes one command and returns its response (never throws; all
  /// storage conditions surface as sense codes).
  OsdResponse Execute(const OsdCommand& command);

  ObjectStore& object_store() { return store_; }
  const ObjectStore& object_store() const { return store_; }
  const OsdTargetStats& stats() const { return stats_; }

  /// Registers the target's service metrics ("osd.*") and begins hot-path
  /// updates: op counts, payload bytes in/out, sense-error counts.
  void AttachTelemetry(MetricRegistry& registry);

  /// Resolves the target's span track: Execute records one span per
  /// command, op-labelled, flagged degraded / error from the response.
  void AttachTracing(Tracer& tracer) {
    trace_ = &tracer.RecorderFor(TraceComponent::kOsdTarget);
  }

  /// Cluster mode: routes #OWNER#/#NODEDOWN# control messages into the
  /// directory and notifies it of local writes/removes (refetch
  /// detection). Must outlive the target.
  void AttachCluster(ClusterDirectory& directory) { cluster_ = &directory; }

 private:
  OsdResponse HandleControlWrite(const OsdCommand& command);
  OsdResponse HandleWrite(const OsdCommand& command);
  OsdResponse HandleRead(const OsdCommand& command);

  DataPlane& data_plane_;
  ObjectStore store_;
  OsdTargetStats stats_;
  ClusterDirectory* cluster_ = nullptr;

  // Telemetry (null when un-attached).
  Counter* tel_commands_ = nullptr;
  Counter* tel_reads_ = nullptr;
  Counter* tel_read_misses_ = nullptr;
  Counter* tel_writes_ = nullptr;
  Counter* tel_control_ = nullptr;
  Counter* tel_degraded_ = nullptr;
  Counter* tel_sense_errors_ = nullptr;
  Counter* tel_bytes_in_ = nullptr;
  Counter* tel_bytes_out_ = nullptr;

  SpanRecorder* trace_ = nullptr;
};

}  // namespace reo
