// Sense codes returned by the Reo OSD target — exactly the set the paper
// defines in Table III (§IV.C.2).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace reo {

/// Table III: sense code definition in Reo.
enum class SenseCode : int32_t {
  kOk = 0,                 ///< the command is successful
  kFail = -1,              ///< the command is unsuccessful
  kCorrupted = 0x63,       ///< data is corrupted
  kCacheFull = 0x64,       ///< the cache is full (demands replacement)
  kRecoveryStarts = 0x65,  ///< recovery starts (device failure occurred)
  kRecoveryEnds = 0x66,    ///< recovery ends
  kRedundancyFull = 0x67,  ///< the allocated space for data redundancy is full
};

constexpr std::string_view to_string(SenseCode c) {
  switch (c) {
    case SenseCode::kOk: return "OK";
    case SenseCode::kFail: return "FAIL";
    case SenseCode::kCorrupted: return "CORRUPTED";
    case SenseCode::kCacheFull: return "CACHE_FULL";
    case SenseCode::kRecoveryStarts: return "RECOVERY_STARTS";
    case SenseCode::kRecoveryEnds: return "RECOVERY_ENDS";
    case SenseCode::kRedundancyFull: return "REDUNDANCY_FULL";
  }
  return "UNKNOWN";
}

/// Maps a library Status onto the wire-level sense code the paper defines.
inline SenseCode SenseFromStatus(const Status& st) {
  switch (st.code()) {
    case ErrorCode::kOk: return SenseCode::kOk;
    case ErrorCode::kCorrupted: return SenseCode::kCorrupted;
    case ErrorCode::kUnrecoverable: return SenseCode::kCorrupted;
    case ErrorCode::kNoSpace: return SenseCode::kCacheFull;
    default: return SenseCode::kFail;
  }
}

}  // namespace reo
