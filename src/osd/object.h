// The T10 OSD object model (paper §II.A, Figure 2, Table I).
//
// Four object kinds: one Root object per logical unit, Partition objects
// that subdivide the unit, Collection objects for fast grouping/indexing,
// and User objects holding regular data. exofs additionally reserves three
// metadata objects (super block, device table, root directory) inside the
// first partition; Reo reserves OID 0x10004 as its control object.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/object_id.h"
#include "osd/attribute_store.h"

namespace reo {

enum class ObjectType : uint8_t {
  kRoot,
  kPartition,
  kCollection,
  kUser,
};

constexpr std::string_view to_string(ObjectType t) {
  switch (t) {
    case ObjectType::kRoot: return "Root";
    case ObjectType::kPartition: return "Partition";
    case ObjectType::kCollection: return "Collection";
    case ObjectType::kUser: return "User";
  }
  return "?";
}

/// True for the exofs/Reo reserved metadata objects of Table I (super
/// block, device table, root directory, control object) and the root /
/// partition objects themselves — everything Reo puts in Class 0.
bool IsSystemMetadata(const ObjectId& id, ObjectType type);

/// Metadata record for one OSD object. Payload bytes live in the data
/// plane (the flash array); this is the target-side bookkeeping the paper's
/// prototype kept in a hash table (§V).
struct ObjectRecord {
  ObjectId id;
  ObjectType type = ObjectType::kUser;
  uint64_t logical_size = 0;  ///< user-visible byte length
  AttributeStore attributes;
  /// Collections this (user) object belongs to ("a user object belongs to
  /// no or multiple collections", §II.A).
  std::vector<uint64_t> collections;
};

}  // namespace reo
