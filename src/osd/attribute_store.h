// OSD attribute pages.
//
// T10 OSD attaches typed attributes, grouped into numbered pages, to every
// object. Reo rides on this mechanism to carry its semantic hints (class
// ID, access frequency, dirty flag) from the cache manager to the device.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"

namespace reo {

/// (page, attribute number) address of one attribute.
struct AttributeId {
  uint32_t page = 0;
  uint32_t number = 0;
  friend auto operator<=>(const AttributeId&, const AttributeId&) = default;
};

// Reo's policy attribute page and its attribute numbers.
inline constexpr uint32_t kReoAttributePage = 0x2F000000;
inline constexpr AttributeId kAttrClassId{kReoAttributePage, 0x1};
inline constexpr AttributeId kAttrReadFreq{kReoAttributePage, 0x2};
inline constexpr AttributeId kAttrDirty{kReoAttributePage, 0x3};
inline constexpr AttributeId kAttrLogicalSize{kReoAttributePage, 0x4};

/// A small ordered attribute map for one object.
class AttributeStore {
 public:
  void Set(AttributeId id, std::span<const uint8_t> value);
  void SetU64(AttributeId id, uint64_t value);

  std::optional<std::span<const uint8_t>> Get(AttributeId id) const;
  std::optional<uint64_t> GetU64(AttributeId id) const;

  Status Remove(AttributeId id);
  size_t size() const { return attrs_.size(); }

  /// Lists every attribute on a page, in number order.
  std::vector<AttributeId> ListPage(uint32_t page) const;

 private:
  std::map<AttributeId, std::vector<uint8_t>> attrs_;
};

}  // namespace reo
