#include "osd/object.h"

namespace reo {

bool IsSystemMetadata(const ObjectId& id, ObjectType type) {
  if (type == ObjectType::kRoot || type == ObjectType::kPartition) return true;
  if (id == kSuperBlockObject || id == kDeviceTableObject ||
      id == kRootDirectoryObject || id == kControlObject) {
    return true;
  }
  return false;
}

}  // namespace reo
