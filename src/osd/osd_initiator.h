// The initiator (client) side of the OSD session.
//
// In the paper's prototype the cache manager talks to osd-target through
// the osd-initiator kernel modules over iSCSI. This class is that
// initiator: it owns the session to one target, builds well-formed
// commands (including the §IV.C.2 control-object messages), and offers a
// typed API so upper layers never touch raw CDBs.
#pragma once

#include <cstdint>
#include <span>

#include "osd/osd_target.h"
#include "osd/transport.h"

namespace reo {

/// Per-session counters.
struct OsdInitiatorStats {
  uint64_t commands_sent = 0;
  uint64_t control_writes = 0;
  uint64_t errors = 0;  ///< responses with sense != OK
};

/// Typed command front-end over one OSD target session.
class OsdInitiator {
 public:
  /// @param target the service delegate (in-process stand-in for iSCSI).
  explicit OsdInitiator(OsdTarget& target) : target_(target) {}

  // --- Device / partition management ----------------------------------------

  OsdResponse FormatOsd(uint64_t capacity_bytes, SimTime now = 0);
  OsdResponse CreatePartition(uint64_t pid, SimTime now = 0);

  // --- Object data path -------------------------------------------------------

  OsdResponse CreateObject(ObjectId id, uint64_t logical_size, SimTime now);
  OsdResponse WriteObject(ObjectId id, std::span<const uint8_t> payload,
                          uint64_t logical_size, SimTime now);
  OsdResponse ReadObject(ObjectId id, SimTime now);
  OsdResponse RemoveObject(ObjectId id, SimTime now);
  OsdResponse ListObjects(uint64_t pid, SimTime now = 0);

  // --- Attributes --------------------------------------------------------------

  OsdResponse SetAttr(ObjectId id, AttributeId attr,
                      std::span<const uint8_t> value, SimTime now = 0);
  OsdResponse GetAttr(ObjectId id, AttributeId attr, SimTime now = 0);

  // --- Collections -------------------------------------------------------------

  OsdResponse CreateCollection(ObjectId id, SimTime now = 0);
  OsdResponse RemoveCollection(ObjectId id, SimTime now = 0);
  OsdResponse ListCollection(ObjectId id, SimTime now = 0);

  // --- Reo control protocol (paper §IV.C.2) -------------------------------------

  /// Sends "#SETID#" for `id` with class `cid`. The write is synchronous
  /// (fsync'd), modeled by `control_latency_ns`.
  SenseCode SetClassId(ObjectId id, uint8_t cid, SimTime now);

  /// Sends "#QUERY#" about `id`; returns the sense code per Table III.
  SenseCode Query(ObjectId id, bool is_write, uint64_t offset, uint64_t size,
                  SimTime now);

  /// Queries the control object itself: recovery state (0x65 / 0x00).
  SenseCode QueryRecoveryState(SimTime now);

  const OsdInitiatorStats& stats() const { return stats_; }

  /// Latency charged per synchronous control-object write.
  void set_control_latency(SimTime ns) { control_latency_ns_ = ns; }
  SimTime control_latency() const { return control_latency_ns_; }

  /// Routes all commands through a serialized wire transport (iSCSI
  /// stand-in) instead of the in-process fast path. The transport must
  /// outlive the initiator. Pass nullptr to go back in-process.
  void UseTransport(OsdTransport* transport) { transport_ = transport; }
  bool using_transport() const { return transport_ != nullptr; }

 private:
  OsdResponse Execute(OsdCommand command);
  SenseCode SendControl(const ControlMessage& msg, SimTime now);

  OsdTarget& target_;
  OsdTransport* transport_ = nullptr;
  OsdInitiatorStats stats_;
  SimTime control_latency_ns_ = 150 * kNsPerUs;
};

}  // namespace reo
