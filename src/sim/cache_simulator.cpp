#include "sim/cache_simulator.h"

#include <algorithm>
#include <cstdio>

namespace reo {

CacheSimulator::CacheSimulator(const Trace& trace, SimulationConfig config)
    : trace_(trace), config_(std::move(config)), tracer_(config_.tracer) {
  uint64_t dataset = trace_.catalog.TotalBytes();
  uint64_t raw_capacity = static_cast<uint64_t>(
      config_.cache_fraction * static_cast<double>(dataset));

  // Devices are far larger than the cache budget (the paper's 5 x 120 GB
  // array vs a ~1.7 GB configured cache): each simulated device could hold
  // the whole budget, and the budget itself is enforced logically by the
  // stripe manager. Failures therefore cost data, not allocatable space.
  FlashDeviceConfig dev = config_.device;
  dev.capacity_bytes = std::max<uint64_t>(raw_capacity,
                                          4 * config_.chunk_logical_bytes);
  array_ = std::make_unique<FlashArray>(config_.num_devices, dev);

  StripeManagerConfig smc;
  smc.chunk_logical_bytes = config_.chunk_logical_bytes;
  smc.scale_shift = config_.scale_shift;
  smc.capacity_limit_bytes = raw_capacity;
  stripes_ = std::make_unique<StripeManager>(*array_, smc);

  plane_ = std::make_unique<ReoDataPlane>(*stripes_,
                                          RedundancyPolicy(config_.policy));
  target_ = std::make_unique<OsdTarget>(*plane_);
  backend_ = std::make_unique<BackendStore>(config_.hdd, config_.net);

  if (config_.persistence.enabled()) {
    auto persist = PersistenceManager::Open(config_.persistence);
    // Simulator runs treat an unopenable data dir as a configuration
    // error; the REO_CHECK keeps misconfigured benches from silently
    // running without the durability they asked for.
    REO_CHECK(persist.ok());
    persist_ = std::move(*persist);
    persist_->AttachTelemetry(telemetry_);
    plane_->AttachPersistence(persist_.get());
  }

  if (!config_.faults.empty()) {
    // Deterministic fault injection: per-site seeded streams, so the same
    // spec + seed reproduces the exact same fault sequence (DESIGN.md
    // "Fault model & partial-failure handling").
    injector_ = std::make_unique<FaultInjector>(config_.faults);
    failslow_ = std::make_unique<FailSlowDetector>(
        static_cast<uint32_t>(config_.num_devices), config_.failslow);
    array_->AttachFaults(injector_.get(), failslow_.get());
    backend_->AttachFaults(injector_.get());
    if (persist_) persist_->AttachFaults(injector_.get());
    injector_->AttachTelemetry(telemetry_);
    failslow_->AttachTelemetry(telemetry_);
    // Seed the retry backoff jitter from the fault seed so the whole
    // failure/recovery interleaving is reproducible.
    plane_->ConfigureRetry(plane_->retry_policy(), config_.faults.seed);
  }

  CacheManagerConfig cmc = config_.cache;
  cmc.verify_hits = config_.verify_hits;
  cmc.failslow_demote = config_.failslow_demote;
  cache_ = std::make_unique<CacheManager>(*target_, *plane_, *backend_, cmc);
  if (persist_) cache_->AttachPersistence(persist_.get());
  if (failslow_) cache_->AttachFaultDetector(failslow_.get());

  if (config_.admission.dram_bytes > 0) {
    admit_ = std::make_unique<AdmissionTier>(config_.admission);
    plane_->AttachAdmission(*admit_);
    // Graduating objects classify from observed hotness, not the staged
    // cold-start guess.
    cache_->AttachAdmission(*admit_);
  }

  if (config_.wire_transport) {
    transport_ = std::make_unique<OsdTransport>(*target_, config_.net);
    cache_->initiator_mutable().UseTransport(transport_.get());
  }

  // Attach every layer to the run-wide registry (the cache manager attaches
  // its recovery scheduler itself).
  array_->AttachTelemetry(telemetry_);
  plane_->AttachTelemetry(telemetry_);
  target_->AttachTelemetry(telemetry_);
  cache_->AttachTelemetry(telemetry_);
  if (transport_) transport_->AttachTelemetry(telemetry_);
  if (admit_) admit_->AttachTelemetry(telemetry_);

  if (config_.enable_tracing) {
    // The cache manager fans out to the data plane (stripes + flash
    // devices) and the backend; the target and wire transport attach here.
    cache_->AttachTracing(tracer_);
    target_->AttachTracing(tracer_);
    if (transport_) transport_->AttachTracing(tracer_);
    sim_ev_ = &tracer_.events();
    if (persist_) persist_->AttachEvents(tracer_.events());
    // Partial-failure milestones (retry exhaustion, CRC repairs, scrub
    // findings, fail-slow flags) land in the same event log.
    plane_->AttachEvents(tracer_.events());
    if (injector_) injector_->AttachEvents(tracer_.events());
    if (failslow_) failslow_->AttachEvents(tracer_.events());
    if (admit_) admit_->AttachEvents(tracer_.events());
  }

  // Register the catalog with the backend store.
  for (uint32_t i = 0; i < trace_.catalog.count(); ++i) {
    ObjectId id = ObjectCatalog::IdFor(i);
    uint64_t logical = trace_.catalog.sizes[i];
    backend_->RegisterObject(id, logical, stripes_->PhysicalSize(logical));
  }
  cache_->Initialize(clock_.now());
}

CacheSimulator::~CacheSimulator() = default;

void CacheSimulator::ReplayUnmeasured() {
  for (const Request& req : trace_.requests) {
    ObjectId id = ObjectCatalog::IdFor(req.object);
    uint64_t size = trace_.catalog.sizes[req.object];
    RequestResult r = req.is_write ? cache_->Put(id, size, clock_.now())
                                   : cache_->Get(id, size, clock_.now());
    clock_.Advance(r.latency);
  }
}

RunReport CacheSimulator::Run() {
  if (config_.warmup_pass) ReplayUnmeasured();

  MetricsCollector metrics;
  metrics.StartWindow("0-failures", clock_.now());
  const SimTime measure_start = clock_.now();
  server_free_ = clock_.now();

  size_t next_failure = 0;
  size_t next_spare = 0;
  size_t failed_so_far = 0;
  uint64_t probe_until = 0;  // request index ending the current probe window

  for (uint64_t i = 0; i < trace_.requests.size(); ++i) {
    while (next_failure < config_.failures.size() &&
           config_.failures[next_failure].at_request == i) {
      Emit(sim_ev_, clock_.now(), EventSeverity::kWarn, "sim.fail_injected",
           "scripted device failure",
           {{"device", std::to_string(config_.failures[next_failure].device)},
            {"request", std::to_string(i)}});
      cache_->OnDeviceFailure(config_.failures[next_failure].device, clock_.now());
      ++failed_so_far;
      char label[48];
      if (config_.probe_window_requests > 0) {
        std::snprintf(label, sizeof(label), "%zu-failures-early", failed_so_far);
        probe_until = i + config_.probe_window_requests;
      } else {
        std::snprintf(label, sizeof(label), "%zu-failures", failed_so_far);
      }
      metrics.StartWindow(label, clock_.now());
      ++next_failure;
    }
    if (probe_until != 0 && i == probe_until) {
      char label[48];
      std::snprintf(label, sizeof(label), "%zu-failures", failed_so_far);
      metrics.StartWindow(label, clock_.now());
      probe_until = 0;
    }
    while (next_spare < config_.spares.size() &&
           config_.spares[next_spare].at_request == i) {
      Emit(sim_ev_, clock_.now(), EventSeverity::kInfo, "sim.spare_injected",
           "scripted spare insertion",
           {{"device", std::to_string(config_.spares[next_spare].device)},
            {"request", std::to_string(i)}});
      cache_->OnSpareInserted(config_.spares[next_spare].device, clock_.now());
      ++next_spare;
    }

    const Request& req = trace_.requests[i];
    ObjectId id = ObjectCatalog::IdFor(req.object);
    uint64_t size = trace_.catalog.sizes[req.object];

    // Closed loop: the next request starts when the previous finished.
    // Open loop: it arrives on schedule and may queue behind the server.
    SimTime arrival = clock_.now();
    SimTime start = arrival;
    if (config_.arrival_interval_ns > 0) {
      arrival = measure_start + i * config_.arrival_interval_ns;
      start = std::max(arrival, server_free_);
    }
    RequestResult r = req.is_write ? cache_->Put(id, size, start)
                                   : cache_->Get(id, size, start);
    server_free_ = start + r.latency;
    SimTime observed = server_free_ - arrival;  // includes queueing
    clock_.AdvanceTo(server_free_);
    metrics.Record(r.hit, r.is_write, r.bytes, observed, clock_.now());

    // Periodic scrubbing: find latent corruption while redundancy can
    // still repair it (the scrub itself charges device time).
    if (config_.scrub_interval_requests > 0 &&
        (i + 1) % config_.scrub_interval_requests == 0) {
      auto scrub = cache_->RunScrub(clock_.now());
      server_free_ = std::max(server_free_, scrub.complete);
      clock_.AdvanceTo(server_free_);
    }
  }
  metrics.Finish(clock_.now());

  RunReport report;
  report.name = config_.name;
  report.total = metrics.total();
  report.windows = metrics.windows();
  report.cache = cache_->stats();
  report.space = stripes_->Space();
  report.osd = target_->stats();
  report.max_wear = array_->MaxWearFraction();
  report.dataset_bytes = trace_.catalog.TotalBytes();
  report.raw_capacity_bytes = array_->total_capacity_bytes();
  report.telemetry = telemetry_.Snapshot();
  report.trace = tracer_.Stats();
  return report;
}

std::string FormatReportRow(const RunReport& report) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-18s hit=%5.1f%%  bw=%7.1f MB/s  lat=%6.2f ms  eff=%5.1f%%",
                report.name.c_str(), report.total.HitRatio() * 100.0,
                report.total.BandwidthMBps(), report.total.AvgLatencyMs(),
                report.space.SpaceEfficiency() * 100.0);
  return buf;
}

}  // namespace reo
