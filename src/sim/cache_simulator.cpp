#include "sim/cache_simulator.h"

#include <algorithm>
#include <cstdio>

namespace reo {

void CacheSimulator::BuildShard(size_t index, uint64_t shard_capacity) {
  shards_[index] = std::make_unique<ShardInstance>();
  ShardInstance& s = *shards_[index];

  // Devices are far larger than the cache budget (the paper's 5 x 120 GB
  // array vs a ~1.7 GB configured cache): each simulated device could hold
  // the whole budget, and the budget itself is enforced logically by the
  // stripe manager. Failures therefore cost data, not allocatable space.
  FlashDeviceConfig dev = config_.device;
  dev.capacity_bytes = std::max<uint64_t>(shard_capacity,
                                          4 * config_.chunk_logical_bytes);
  s.array = std::make_unique<FlashArray>(config_.num_devices, dev);

  StripeManagerConfig smc;
  smc.chunk_logical_bytes = config_.chunk_logical_bytes;
  smc.scale_shift = config_.scale_shift;
  smc.capacity_limit_bytes = shard_capacity;
  s.stripes = std::make_unique<StripeManager>(*s.array, smc);

  s.plane = std::make_unique<ReoDataPlane>(*s.stripes,
                                           RedundancyPolicy(config_.policy));
  s.target = std::make_unique<OsdTarget>(*s.plane);
  s.backend = std::make_unique<BackendStore>(config_.hdd, config_.net);

  if (config_.persistence.enabled()) {
    // Each shard journals independently (shard K under data_dir/shardK
    // when sharded, flat when not — matching reo_server's layout).
    PersistenceConfig pc = config_.persistence;
    if (shards_.size() > 1) {
      pc.data_dir += "/shard" + std::to_string(index);
    }
    auto persist = PersistenceManager::Open(pc);
    // Simulator runs treat an unopenable data dir as a configuration
    // error; the REO_CHECK keeps misconfigured benches from silently
    // running without the durability they asked for.
    REO_CHECK(persist.ok());
    s.persist = std::move(*persist);
    s.persist->AttachTelemetry(s.telemetry);
    s.plane->AttachPersistence(s.persist.get());
  }

  if (!config_.faults.empty()) {
    // Deterministic fault injection: per-site seeded streams, so the same
    // spec + seed reproduces the exact same fault sequence (DESIGN.md
    // "Fault model & partial-failure handling"). Shard K reseeds with
    // seed + K so shards do not fault in lockstep.
    FaultSpec spec = config_.faults;
    spec.seed += index;
    s.injector = std::make_unique<FaultInjector>(spec);
    s.failslow = std::make_unique<FailSlowDetector>(
        static_cast<uint32_t>(config_.num_devices), config_.failslow);
    s.array->AttachFaults(s.injector.get(), s.failslow.get());
    s.backend->AttachFaults(s.injector.get());
    if (s.persist) s.persist->AttachFaults(s.injector.get());
    s.injector->AttachTelemetry(s.telemetry);
    s.failslow->AttachTelemetry(s.telemetry);
    // Seed the retry backoff jitter from the fault seed so the whole
    // failure/recovery interleaving is reproducible.
    s.plane->ConfigureRetry(s.plane->retry_policy(), spec.seed);
  }

  CacheManagerConfig cmc = config_.cache;
  cmc.verify_hits = config_.verify_hits;
  cmc.failslow_demote = config_.failslow_demote;
  s.cache = std::make_unique<CacheManager>(*s.target, *s.plane, *s.backend,
                                           cmc);
  if (s.persist) s.cache->AttachPersistence(s.persist.get());
  if (s.failslow) s.cache->AttachFaultDetector(s.failslow.get());

  if (config_.admission.dram_bytes > 0) {
    AdmissionConfig ac = config_.admission;
    ac.dram_bytes = config_.admission.dram_bytes / shards_.size();
    s.admit = std::make_unique<AdmissionTier>(ac);
    s.plane->AttachAdmission(*s.admit);
    // Graduating objects classify from observed hotness, not the staged
    // cold-start guess.
    s.cache->AttachAdmission(*s.admit);
  }

  if (config_.wire_transport) {
    s.transport = std::make_unique<OsdTransport>(*s.target, config_.net);
    s.cache->initiator_mutable().UseTransport(s.transport.get());
  }

  // Attach every layer to the shard's registry (the cache manager attaches
  // its recovery scheduler itself).
  s.array->AttachTelemetry(s.telemetry);
  s.plane->AttachTelemetry(s.telemetry);
  s.target->AttachTelemetry(s.telemetry);
  s.cache->AttachTelemetry(s.telemetry);
  if (s.transport) s.transport->AttachTelemetry(s.telemetry);
  if (s.admit) s.admit->AttachTelemetry(s.telemetry);

  if (config_.enable_tracing) {
    // The cache manager fans out to the data plane (stripes + flash
    // devices) and the backend; the target and wire transport attach here.
    // Replay is single-threaded, so every shard can share the one tracer.
    s.cache->AttachTracing(tracer_);
    s.target->AttachTracing(tracer_);
    if (s.transport) s.transport->AttachTracing(tracer_);
    if (s.persist) s.persist->AttachEvents(tracer_.events());
    // Partial-failure milestones (retry exhaustion, CRC repairs, scrub
    // findings, fail-slow flags) land in the same event log.
    s.plane->AttachEvents(tracer_.events());
    if (s.injector) s.injector->AttachEvents(tracer_.events());
    if (s.failslow) s.failslow->AttachEvents(tracer_.events());
    if (s.admit) s.admit->AttachEvents(tracer_.events());
  }
}

CacheSimulator::CacheSimulator(const Trace& trace, SimulationConfig config)
    : trace_(trace),
      config_(std::move(config)),
      tracer_(config_.tracer),
      router_(config_.shards == 0 ? 1 : config_.shards) {
  uint64_t dataset = trace_.catalog.TotalBytes();
  uint64_t raw_capacity = static_cast<uint64_t>(
      config_.cache_fraction * static_cast<double>(dataset));

  // Capacity splits evenly: each shard serves ~1/N of the dataset (hash
  // partition), so its slice keeps the configured cache fraction.
  shards_.resize(router_.num_shards());
  uint64_t shard_capacity = raw_capacity / shards_.size();
  for (size_t k = 0; k < shards_.size(); ++k) BuildShard(k, shard_capacity);

  if (config_.enable_tracing) sim_ev_ = &tracer_.events();

  // Register the catalog with each object's owning shard.
  for (uint32_t i = 0; i < trace_.catalog.count(); ++i) {
    ObjectId id = ObjectCatalog::IdFor(i);
    uint64_t logical = trace_.catalog.sizes[i];
    ShardInstance& s = *shards_[router_.ShardOf(id)];
    s.backend->RegisterObject(id, logical, s.stripes->PhysicalSize(logical));
  }
  for (auto& s : shards_) s->cache->Initialize(clock_.now());
}

CacheSimulator::~CacheSimulator() = default;

void CacheSimulator::ReplayUnmeasured() {
  for (const Request& req : trace_.requests) {
    ObjectId id = ObjectCatalog::IdFor(req.object);
    uint64_t size = trace_.catalog.sizes[req.object];
    CacheManager& cache = Route(id);
    RequestResult r = req.is_write ? cache.Put(id, size, clock_.now())
                                   : cache.Get(id, size, clock_.now());
    clock_.Advance(r.latency);
  }
}

RunReport CacheSimulator::Run() {
  if (config_.warmup_pass) ReplayUnmeasured();

  MetricsCollector metrics;
  metrics.StartWindow("0-failures", clock_.now());
  const SimTime measure_start = clock_.now();
  server_free_ = clock_.now();

  size_t next_failure = 0;
  size_t next_spare = 0;
  size_t failed_so_far = 0;
  uint64_t probe_until = 0;  // request index ending the current probe window

  for (uint64_t i = 0; i < trace_.requests.size(); ++i) {
    while (next_failure < config_.failures.size() &&
           config_.failures[next_failure].at_request == i) {
      // A device failure hits every shard: the shards partition one
      // physical array, so losing a device loses its slice everywhere.
      Emit(sim_ev_, clock_.now(), EventSeverity::kWarn, "sim.fail_injected",
           "scripted device failure",
           {{"device", std::to_string(config_.failures[next_failure].device)},
            {"request", std::to_string(i)}});
      for (auto& s : shards_) {
        s->cache->OnDeviceFailure(config_.failures[next_failure].device,
                                  clock_.now());
      }
      ++failed_so_far;
      char label[48];
      if (config_.probe_window_requests > 0) {
        std::snprintf(label, sizeof(label), "%zu-failures-early", failed_so_far);
        probe_until = i + config_.probe_window_requests;
      } else {
        std::snprintf(label, sizeof(label), "%zu-failures", failed_so_far);
      }
      metrics.StartWindow(label, clock_.now());
      ++next_failure;
    }
    if (probe_until != 0 && i == probe_until) {
      char label[48];
      std::snprintf(label, sizeof(label), "%zu-failures", failed_so_far);
      metrics.StartWindow(label, clock_.now());
      probe_until = 0;
    }
    while (next_spare < config_.spares.size() &&
           config_.spares[next_spare].at_request == i) {
      Emit(sim_ev_, clock_.now(), EventSeverity::kInfo, "sim.spare_injected",
           "scripted spare insertion",
           {{"device", std::to_string(config_.spares[next_spare].device)},
            {"request", std::to_string(i)}});
      for (auto& s : shards_) {
        s->cache->OnSpareInserted(config_.spares[next_spare].device,
                                  clock_.now());
      }
      ++next_spare;
    }

    const Request& req = trace_.requests[i];
    ObjectId id = ObjectCatalog::IdFor(req.object);
    uint64_t size = trace_.catalog.sizes[req.object];
    CacheManager& cache = Route(id);

    // Closed loop: the next request starts when the previous finished.
    // Open loop: it arrives on schedule and may queue behind the server.
    SimTime arrival = clock_.now();
    SimTime start = arrival;
    if (config_.arrival_interval_ns > 0) {
      arrival = measure_start + i * config_.arrival_interval_ns;
      start = std::max(arrival, server_free_);
    }
    RequestResult r = req.is_write ? cache.Put(id, size, start)
                                   : cache.Get(id, size, start);
    server_free_ = start + r.latency;
    SimTime observed = server_free_ - arrival;  // includes queueing
    clock_.AdvanceTo(server_free_);
    metrics.Record(r.hit, r.is_write, r.bytes, observed, clock_.now());

    // Periodic scrubbing: find latent corruption while redundancy can
    // still repair it (the scrub itself charges device time).
    if (config_.scrub_interval_requests > 0 &&
        (i + 1) % config_.scrub_interval_requests == 0) {
      for (auto& s : shards_) {
        auto scrub = s->cache->RunScrub(clock_.now());
        server_free_ = std::max(server_free_, scrub.complete);
      }
      clock_.AdvanceTo(server_free_);
    }
  }
  metrics.Finish(clock_.now());

  RunReport report;
  report.name = config_.name;
  report.total = metrics.total();
  report.windows = metrics.windows();
  report.dataset_bytes = trace_.catalog.TotalBytes();
  for (auto& sp : shards_) {
    ShardInstance& s = *sp;
    CacheStats cs = s.cache->stats();
    report.cache.gets += cs.gets;
    report.cache.hits += cs.hits;
    report.cache.misses += cs.misses;
    report.cache.writes += cs.writes;
    report.cache.evictions += cs.evictions;
    report.cache.lost_evictions += cs.lost_evictions;
    report.cache.dirty_lost += cs.dirty_lost;
    report.cache.degraded_reads += cs.degraded_reads;
    report.cache.rebuilds += cs.rebuilds;
    report.cache.flushes += cs.flushes;
    report.cache.reclassifications += cs.reclassifications;
    report.cache.verify_failures += cs.verify_failures;
    report.cache.uncacheable += cs.uncacheable;
    SpaceStats ss = s.stripes->Space();
    report.space.user_bytes += ss.user_bytes;
    report.space.redundancy_bytes += ss.redundancy_bytes;
    report.space.capacity_bytes += ss.capacity_bytes;
    report.space.free_bytes += ss.free_bytes;
    OsdTargetStats os = s.target->stats();
    report.osd.commands += os.commands;
    report.osd.reads += os.reads;
    report.osd.read_misses += os.read_misses;
    report.osd.writes += os.writes;
    report.osd.control_messages += os.control_messages;
    report.osd.degraded_reads += os.degraded_reads;
    report.osd.sense_errors += os.sense_errors;
    report.max_wear = std::max(report.max_wear, s.array->MaxWearFraction());
    report.raw_capacity_bytes += s.array->total_capacity_bytes();
  }
  if (shards_.size() == 1) {
    report.telemetry = shards_[0]->telemetry.Snapshot();
  } else {
    std::vector<const MetricRegistry*> regs;
    regs.reserve(shards_.size());
    for (auto& s : shards_) regs.push_back(&s->telemetry);
    report.telemetry = MetricRegistry::Merged(regs);
  }
  report.trace = tracer_.Stats();
  return report;
}

std::string FormatReportRow(const RunReport& report) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-18s hit=%5.1f%%  bw=%7.1f MB/s  lat=%6.2f ms  eff=%5.1f%%",
                report.name.c_str(), report.total.HitRatio() * 100.0,
                report.total.BandwidthMBps(), report.total.AvgLatencyMs(),
                report.space.SpaceEfficiency() * 100.0);
  return buf;
}

}  // namespace reo
