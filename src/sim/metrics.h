// Windowed evaluation metrics: hit ratio, bandwidth, latency — the three
// panels of every figure in the paper's evaluation (§VI).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/sim_clock.h"

namespace reo {

/// Metrics over one measurement window (a whole run, or one failure phase
/// of Fig 8).
struct WindowMetrics {
  std::string label;
  SimTime start = 0;
  SimTime end = 0;
  uint64_t requests = 0;
  uint64_t hits = 0;       ///< read hits (writes are always absorbed)
  uint64_t reads = 0;      ///< read requests
  uint64_t bytes = 0;      ///< logical bytes served (reads + writes)
  Histogram latency_us;

  /// Read hit ratio — the paper's metric (write-back absorbs every write,
  /// so counting writes as hits would inflate write-heavy runs).
  double HitRatio() const {
    return reads ? static_cast<double>(hits) / static_cast<double>(reads) : 0.0;
  }
  /// Served bytes over wall (virtual) time — the paper's bandwidth metric.
  double BandwidthMBps() const {
    double secs = ToSec(end - start);
    return secs > 0 ? static_cast<double>(bytes) / 1e6 / secs : 0.0;
  }
  double AvgLatencyMs() const { return latency_us.mean() / 1e3; }
  double P99LatencyMs() const { return latency_us.Percentile(0.99) / 1e3; }

  /// Combines another window into this one (for re-aggregating split
  /// windows, e.g. probe + steady phases).
  void Merge(const WindowMetrics& other) {
    if (other.requests == 0 && other.start == other.end) return;
    if (requests == 0 && start == end) {
      start = other.start;
    } else if (other.start < start) {
      // Merging windows in either order must keep the earliest start, or
      // BandwidthMBps() divides by a truncated wall-time span.
      start = other.start;
    }
    end = other.end > end ? other.end : end;
    requests += other.requests;
    hits += other.hits;
    reads += other.reads;
    bytes += other.bytes;
    latency_us.Merge(other.latency_us);
  }
};

/// Accumulates request outcomes into the current window and the run total.
class MetricsCollector {
 public:
  /// Closes the current window at `now` and opens a new one. Must be
  /// called once before the first Record.
  void StartWindow(std::string label, SimTime now);

  /// Records one completed request.
  void Record(bool hit, bool is_write, uint64_t bytes, SimTime latency,
              SimTime now);

  /// Closes the last window.
  void Finish(SimTime now);

  const WindowMetrics& total() const { return total_; }
  const std::vector<WindowMetrics>& windows() const { return windows_; }

 private:
  WindowMetrics total_;
  std::vector<WindowMetrics> windows_;
};

}  // namespace reo
