#include "sim/metrics.h"

namespace reo {

void MetricsCollector::StartWindow(std::string label, SimTime now) {
  if (!windows_.empty()) {
    windows_.back().end = now;
  }
  WindowMetrics w;
  w.label = std::move(label);
  w.start = now;
  windows_.push_back(std::move(w));
}

void MetricsCollector::Record(bool hit, bool is_write, uint64_t bytes,
                              SimTime latency, SimTime now) {
  REO_CHECK(!windows_.empty());
  auto record = [&](WindowMetrics& w) {
    ++w.requests;
    if (!is_write) {
      ++w.reads;
      w.hits += hit ? 1 : 0;
    }
    w.bytes += bytes;
    w.latency_us.Add(static_cast<double>(latency) / 1e3);
    w.end = now;
  };
  record(total_);
  record(windows_.back());
}

void MetricsCollector::Finish(SimTime now) {
  REO_CHECK(!windows_.empty());
  windows_.back().end = now;
  total_.end = now;
}

}  // namespace reo
