// End-to-end experiment driver.
//
// Wires the whole system together — client trace, cache manager, OSD
// target, differentiated-redundancy data plane, flash array, backend store
// — under the virtual clock, replays a trace closed-loop, injects device
// failures / spare insertions at scripted request indices (paper §VI.C),
// and reports the paper's metrics.
//
// With `shards` > 1 the simulator models the sharded server: the object
// space is hash-partitioned (ShardRouter) across N independent stacks —
// each with its own flash array, data plane, cache manager, and backend —
// and the replay routes every request to its object's shard. Replay stays
// single-threaded under the one virtual clock (the simulator measures
// cache behavior, not thread scaling), so runs remain deterministic.
// `shards = 1` is byte-identical to the pre-sharding simulator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "admit/admission_tier.h"
#include "backend/backend_store.h"
#include "core/cache_manager.h"
#include "fault/failslow.h"
#include "fault/fault_injector.h"
#include "fault/fault_spec.h"
#include "persist/persistence.h"
#include "shard/shard_router.h"
#include "sim/metrics.h"
#include "telemetry/metric_registry.h"
#include "trace/tracer.h"
#include "workload/trace.h"

namespace reo {

/// Scripted fault events, by request index within the measured run.
/// With shards > 1 a failure/spare fans out: device `device` fails in
/// EVERY shard's array (the shards model one physical array partitioned
/// logically, so a device loss touches every shard's slice).
struct FailureEvent {
  uint64_t at_request = 0;
  DeviceIndex device = 0;
};
struct SpareEvent {
  uint64_t at_request = 0;
  DeviceIndex device = 0;
};

struct SimulationConfig {
  std::string name = "run";

  // Cache geometry (paper §VI.A).
  PolicyConfig policy;
  double cache_fraction = 0.10;  ///< raw flash capacity / dataset bytes
  size_t num_devices = 5;
  uint64_t chunk_logical_bytes = 64 * 1024;
  /// Physical payload scale (DESIGN.md "Scaling"): 0 for tests, 6 for the
  /// paper-scale benches.
  uint32_t scale_shift = 6;

  /// Serving shards (DESIGN.md "Sharded serving"). Each shard is an
  /// independent stack over its hash slice of the object space; capacity
  /// and DRAM budgets split evenly. 1 = the classic single-stack run.
  size_t shards = 1;

  // Device / backend models.
  FlashDeviceConfig device;      ///< capacity_bytes is overridden
  HddConfig hdd;
  NetworkLinkConfig net;
  CacheManagerConfig cache;

  // Fault schedule.
  std::vector<FailureEvent> failures;
  std::vector<SpareEvent> spares;

  /// Replay the full trace once, unmeasured, before the measured pass
  /// ("we first fully warm up the cache", §VI.C).
  bool warmup_pass = false;

  /// When > 0, split each failure phase into an early probe window of this
  /// many requests ("<n>-failures-early") and the remainder
  /// ("<n>-failures"), to expose the immediate post-failure drop before
  /// the cache re-warms.
  uint64_t probe_window_requests = 0;

  /// Arrival model. 0 = closed loop (one outstanding request, the paper's
  /// replay style). > 0 = open loop: request i arrives at i * interval of
  /// virtual time regardless of completions; the cache server processes
  /// sequentially, so reported latency includes queueing delay. Lets the
  /// harness measure latency vs offered load.
  SimTime arrival_interval_ns = 0;

  /// Verify hit payload contents (CRC) during the run.
  bool verify_hits = false;

  // Tracing (DESIGN.md "Tracing & Events"). When enabled, every layer is
  // attached to the simulator's Tracer and the run produces spans + a
  // structured event log exportable via ChromeTraceJson / TraceReportText.
  bool enable_tracing = false;
  TracerConfig tracer;
  /// Route every OSD command through the serialized wire transport (the
  /// iSCSI stand-in) instead of the in-process fast path, so traces show
  /// the transport layer. Slightly slower; off by default.
  bool wire_transport = false;

  /// Durable cache state (DESIGN.md "Persistence & restart recovery").
  /// The default (empty data_dir) is the null backend: no files are
  /// touched and the run is byte-identical to the in-memory simulator.
  /// With shards > 1, shard K journals under data_dir/shardK.
  PersistenceConfig persistence;

  // Fault injection (DESIGN.md "Fault model & partial-failure handling").
  /// Probabilistic fault rules; the default (no rules) wires nothing and
  /// keeps the run byte-identical to a fault-free simulator.
  FaultSpec faults;
  /// Fail-slow detection thresholds (only used when `faults` is non-empty).
  FailSlowConfig failslow;
  /// Demote fail-slow devices (fail + spare swap + recovery) when flagged.
  bool failslow_demote = false;
  /// When > 0, run a full scrub pass every N measured requests.
  uint64_t scrub_interval_requests = 0;

  /// DRAM admission tier (DESIGN.md "DRAM admission tier"). The default
  /// (dram_bytes == 0) wires nothing and keeps the run byte-identical to
  /// the pre-tier simulator.
  AdmissionConfig admission;
};

/// Everything a bench/test needs from one run. With shards > 1 every
/// counter below is the sum across shards, max_wear the max, and
/// `telemetry` the bucket-level cross-shard merge (MetricRegistry::Merged).
struct RunReport {
  std::string name;
  WindowMetrics total;
  std::vector<WindowMetrics> windows;  ///< segmented at failure events
  CacheStats cache;
  SpaceStats space;
  OsdTargetStats osd;
  double max_wear = 0.0;
  uint64_t dataset_bytes = 0;
  uint64_t raw_capacity_bytes = 0;
  /// Point-in-time telemetry snapshot taken at the end of the run (every
  /// layer is attached to the simulator's registry at construction).
  MetricSnapshot telemetry;
  /// Trace accounting (all zero unless `enable_tracing` was set).
  TraceStats trace;
};

/// Owns one fully wired system instance and replays one trace through it.
class CacheSimulator {
 public:
  /// @param trace must outlive the simulator.
  CacheSimulator(const Trace& trace, SimulationConfig config);
  ~CacheSimulator();

  CacheSimulator(const CacheSimulator&) = delete;
  CacheSimulator& operator=(const CacheSimulator&) = delete;

  /// Replays the trace (optionally after a warm-up pass) and reports.
  RunReport Run();

  /// Component access for integration tests and examples; with shards > 1
  /// these answer for shard 0 (use shard_count()/cache_of() to reach the
  /// rest).
  CacheManager& cache() { return *shards_[0]->cache; }
  StripeManager& stripes() { return *shards_[0]->stripes; }
  FlashArray& array() { return *shards_[0]->array; }
  BackendStore& backend() { return *shards_[0]->backend; }
  OsdTarget& target() { return *shards_[0]->target; }
  /// Live metric registry (all layers attached); snapshot at any time.
  /// Shard 0's registry with shards > 1 (RunReport carries the merge).
  MetricRegistry& telemetry() { return shards_[0]->telemetry; }
  /// Tracing sink (spans + event log). Inert unless `enable_tracing`;
  /// export with ChromeTraceJson / TraceReportText after Run().
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  /// Durable-state manager; null unless `persistence.data_dir` was set.
  PersistenceManager* persistence() { return shards_[0]->persist.get(); }
  /// Fault injector; null unless `faults` had rules.
  FaultInjector* fault_injector() { return shards_[0]->injector.get(); }
  /// Fail-slow detector; null unless `faults` had rules.
  FailSlowDetector* failslow_detector() { return shards_[0]->failslow.get(); }
  /// DRAM admission tier; null unless `admission.dram_bytes` was set.
  AdmissionTier* admission_tier() { return shards_[0]->admit.get(); }

  size_t shard_count() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }
  CacheManager& cache_of(size_t shard) { return *shards_[shard]->cache; }
  OsdTarget& target_of(size_t shard) { return *shards_[shard]->target; }

 private:
  /// One shard's full stack; declaration order is destruction-safe
  /// (registry before the components that cache pointers into it).
  struct ShardInstance {
    MetricRegistry telemetry;
    std::unique_ptr<FlashArray> array;
    std::unique_ptr<StripeManager> stripes;
    std::unique_ptr<ReoDataPlane> plane;
    std::unique_ptr<OsdTarget> target;
    std::unique_ptr<OsdTransport> transport;  ///< only when wire_transport
    std::unique_ptr<BackendStore> backend;
    std::unique_ptr<PersistenceManager> persist;  ///< only when data_dir set
    std::unique_ptr<FaultInjector> injector;      ///< only when faults set
    std::unique_ptr<FailSlowDetector> failslow;   ///< only when faults set
    std::unique_ptr<AdmissionTier> admit;  ///< only when dram_bytes > 0
    std::unique_ptr<CacheManager> cache;
  };

  void BuildShard(size_t index, uint64_t shard_capacity);
  void ReplayUnmeasured();
  CacheManager& Route(ObjectId id) {
    return *shards_[router_.ShardOf(id)]->cache;
  }

  const Trace& trace_;
  SimulationConfig config_;

  Tracer tracer_;
  ShardRouter router_;
  std::vector<std::unique_ptr<ShardInstance>> shards_;
  /// Event sink for the injection script ("sim.*"); null when tracing off.
  EventLog* sim_ev_ = nullptr;
  SimClock clock_;
  SimTime server_free_ = 0;  ///< when the (sequential) cache server frees up
};

/// Formats one "Label  hit%  MB/s  ms" row (shared by the figure benches).
std::string FormatReportRow(const RunReport& report);

}  // namespace reo
