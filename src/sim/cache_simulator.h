// End-to-end experiment driver.
//
// Wires the whole system together — client trace, cache manager, OSD
// target, differentiated-redundancy data plane, flash array, backend store
// — under the virtual clock, replays a trace closed-loop, injects device
// failures / spare insertions at scripted request indices (paper §VI.C),
// and reports the paper's metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "admit/admission_tier.h"
#include "backend/backend_store.h"
#include "core/cache_manager.h"
#include "fault/failslow.h"
#include "fault/fault_injector.h"
#include "fault/fault_spec.h"
#include "persist/persistence.h"
#include "sim/metrics.h"
#include "telemetry/metric_registry.h"
#include "trace/tracer.h"
#include "workload/trace.h"

namespace reo {

/// Scripted fault events, by request index within the measured run.
struct FailureEvent {
  uint64_t at_request = 0;
  DeviceIndex device = 0;
};
struct SpareEvent {
  uint64_t at_request = 0;
  DeviceIndex device = 0;
};

struct SimulationConfig {
  std::string name = "run";

  // Cache geometry (paper §VI.A).
  PolicyConfig policy;
  double cache_fraction = 0.10;  ///< raw flash capacity / dataset bytes
  size_t num_devices = 5;
  uint64_t chunk_logical_bytes = 64 * 1024;
  /// Physical payload scale (DESIGN.md "Scaling"): 0 for tests, 6 for the
  /// paper-scale benches.
  uint32_t scale_shift = 6;

  // Device / backend models.
  FlashDeviceConfig device;      ///< capacity_bytes is overridden
  HddConfig hdd;
  NetworkLinkConfig net;
  CacheManagerConfig cache;

  // Fault schedule.
  std::vector<FailureEvent> failures;
  std::vector<SpareEvent> spares;

  /// Replay the full trace once, unmeasured, before the measured pass
  /// ("we first fully warm up the cache", §VI.C).
  bool warmup_pass = false;

  /// When > 0, split each failure phase into an early probe window of this
  /// many requests ("<n>-failures-early") and the remainder
  /// ("<n>-failures"), to expose the immediate post-failure drop before
  /// the cache re-warms.
  uint64_t probe_window_requests = 0;

  /// Arrival model. 0 = closed loop (one outstanding request, the paper's
  /// replay style). > 0 = open loop: request i arrives at i * interval of
  /// virtual time regardless of completions; the cache server processes
  /// sequentially, so reported latency includes queueing delay. Lets the
  /// harness measure latency vs offered load.
  SimTime arrival_interval_ns = 0;

  /// Verify hit payload contents (CRC) during the run.
  bool verify_hits = false;

  // Tracing (DESIGN.md "Tracing & Events"). When enabled, every layer is
  // attached to the simulator's Tracer and the run produces spans + a
  // structured event log exportable via ChromeTraceJson / TraceReportText.
  bool enable_tracing = false;
  TracerConfig tracer;
  /// Route every OSD command through the serialized wire transport (the
  /// iSCSI stand-in) instead of the in-process fast path, so traces show
  /// the transport layer. Slightly slower; off by default.
  bool wire_transport = false;

  /// Durable cache state (DESIGN.md "Persistence & restart recovery").
  /// The default (empty data_dir) is the null backend: no files are
  /// touched and the run is byte-identical to the in-memory simulator.
  PersistenceConfig persistence;

  // Fault injection (DESIGN.md "Fault model & partial-failure handling").
  /// Probabilistic fault rules; the default (no rules) wires nothing and
  /// keeps the run byte-identical to a fault-free simulator.
  FaultSpec faults;
  /// Fail-slow detection thresholds (only used when `faults` is non-empty).
  FailSlowConfig failslow;
  /// Demote fail-slow devices (fail + spare swap + recovery) when flagged.
  bool failslow_demote = false;
  /// When > 0, run a full scrub pass every N measured requests.
  uint64_t scrub_interval_requests = 0;

  /// DRAM admission tier (DESIGN.md "DRAM admission tier"). The default
  /// (dram_bytes == 0) wires nothing and keeps the run byte-identical to
  /// the pre-tier simulator.
  AdmissionConfig admission;
};

/// Everything a bench/test needs from one run.
struct RunReport {
  std::string name;
  WindowMetrics total;
  std::vector<WindowMetrics> windows;  ///< segmented at failure events
  CacheStats cache;
  SpaceStats space;
  OsdTargetStats osd;
  double max_wear = 0.0;
  uint64_t dataset_bytes = 0;
  uint64_t raw_capacity_bytes = 0;
  /// Point-in-time telemetry snapshot taken at the end of the run (every
  /// layer is attached to the simulator's registry at construction).
  MetricSnapshot telemetry;
  /// Trace accounting (all zero unless `enable_tracing` was set).
  TraceStats trace;
};

/// Owns one fully wired system instance and replays one trace through it.
class CacheSimulator {
 public:
  /// @param trace must outlive the simulator.
  CacheSimulator(const Trace& trace, SimulationConfig config);
  ~CacheSimulator();

  CacheSimulator(const CacheSimulator&) = delete;
  CacheSimulator& operator=(const CacheSimulator&) = delete;

  /// Replays the trace (optionally after a warm-up pass) and reports.
  RunReport Run();

  /// Component access for integration tests and examples.
  CacheManager& cache() { return *cache_; }
  StripeManager& stripes() { return *stripes_; }
  FlashArray& array() { return *array_; }
  BackendStore& backend() { return *backend_; }
  OsdTarget& target() { return *target_; }
  /// Live metric registry (all layers attached); snapshot at any time.
  MetricRegistry& telemetry() { return telemetry_; }
  /// Tracing sink (spans + event log). Inert unless `enable_tracing`;
  /// export with ChromeTraceJson / TraceReportText after Run().
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  /// Durable-state manager; null unless `persistence.data_dir` was set.
  PersistenceManager* persistence() { return persist_.get(); }
  /// Fault injector; null unless `faults` had rules.
  FaultInjector* fault_injector() { return injector_.get(); }
  /// Fail-slow detector; null unless `faults` had rules.
  FailSlowDetector* failslow_detector() { return failslow_.get(); }
  /// DRAM admission tier; null unless `admission.dram_bytes` was set.
  AdmissionTier* admission_tier() { return admit_.get(); }

 private:
  void ReplayUnmeasured();

  const Trace& trace_;
  SimulationConfig config_;

  /// Declared before the components so they outlive the cached pointers.
  MetricRegistry telemetry_;
  Tracer tracer_;
  std::unique_ptr<FlashArray> array_;
  std::unique_ptr<StripeManager> stripes_;
  std::unique_ptr<ReoDataPlane> plane_;
  std::unique_ptr<OsdTarget> target_;
  std::unique_ptr<OsdTransport> transport_;  ///< only when wire_transport
  std::unique_ptr<BackendStore> backend_;
  std::unique_ptr<PersistenceManager> persist_;  ///< only when data_dir set
  std::unique_ptr<FaultInjector> injector_;      ///< only when faults set
  std::unique_ptr<FailSlowDetector> failslow_;   ///< only when faults set
  std::unique_ptr<AdmissionTier> admit_;         ///< only when dram_bytes > 0
  std::unique_ptr<CacheManager> cache_;
  /// Event sink for the injection script ("sim.*"); null when tracing off.
  EventLog* sim_ev_ = nullptr;
  SimClock clock_;
  SimTime server_free_ = 0;  ///< when the (sequential) cache server frees up
};

/// Formats one "Label  hit%  MB/s  ms" row (shared by the figure benches).
std::string FormatReportRow(const RunReport& report);

}  // namespace reo
