#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace reo {

void StatAccumulator::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void StatAccumulator::Merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void StatAccumulator::Reset() { *this = StatAccumulator{}; }

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketForReference(double v) {
  if (v <= 1.0) return 0;
  // 8 buckets per factor of 2 (~9 % resolution), covering up to ~2^31.
  int b = static_cast<int>(std::log2(v) * 8.0) + 1;
  return std::clamp(b, 0, kBuckets - 1);
}

namespace {

// t[b] = smallest double whose reference bucket is >= b. Computed once by
// binary search over positive-double bit patterns (ordered the same as the
// values) against the reference formula, so the razor-edge rounding of
// log2(v)*8 at each boundary is captured exactly rather than re-derived.
struct BucketCrossovers {
  double t[Histogram::kBuckets];
};

const BucketCrossovers& Crossovers() {
  static const BucketCrossovers table = [] {
    BucketCrossovers c{};
    c.t[0] = 0.0;
    for (int b = 1; b < Histogram::kBuckets; ++b) {
      uint64_t lo = std::bit_cast<uint64_t>(1.0);
      // 2^33 buckets far past the clamp, so Ref(hi) >= b for every b.
      uint64_t hi = std::bit_cast<uint64_t>(std::exp2(33.0));
      while (lo < hi) {
        uint64_t mid = lo + (hi - lo) / 2;
        if (Histogram::BucketForReference(std::bit_cast<double>(mid)) >= b) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      c.t[b] = std::bit_cast<double>(lo);
    }
    return c;
  }();
  return table;
}

}  // namespace

int Histogram::BucketFor(double v) {
  if (v <= 1.0) return 0;
  // v > 1 is a normal double, so its biased exponent gives floor-ish log2:
  // the bucket lies in [8e+1, 8e+9] (2^e maps exactly to 8e+1 because
  // log2(2^e)*8 is exact; the top slot exists because log2 of a value just
  // under 2^(e+1) rounds up to exactly e+1). At most 8 threshold compares.
  uint64_t bits = std::bit_cast<uint64_t>(v);
  int e = static_cast<int>((bits >> 52) & 0x7FF) - 1023;
  int b = 8 * e + 1;
  if (b >= kBuckets - 1) return kBuckets - 1;
  const double* t = Crossovers().t;
  int limit = std::min(b + 8, kBuckets - 1);
  while (b < limit && v >= t[b + 1]) ++b;
  return b;
}

double Histogram::BucketLow(int b) {
  if (b <= 0) return 0.0;
  return std::exp2(static_cast<double>(b - 1) / 8.0);
}

double Histogram::BucketHigh(int b) {
  return std::exp2(static_cast<double>(b) / 8.0);
}

void Histogram::Add(double v) {
  if (v < 0) v = 0;
  buckets_[static_cast<size_t>(BucketFor(v))]++;
  ++total_;
  sum_ += v;
  max_ = std::max(max_, v);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::MergeBuckets(const uint64_t counts[], uint64_t total,
                             double sum, double max) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += counts[i];
  }
  total_ += total;
  sum_ += sum;
  max_ = std::max(max_, max);
}

Histogram Histogram::DeltaSince(const Histogram& prev) const {
  Histogram delta;
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    uint64_t now = buckets_[static_cast<size_t>(i)];
    uint64_t before = prev.buckets_[static_cast<size_t>(i)];
    // Clamp per bucket: a reset between snapshots must not wrap.
    uint64_t d = now > before ? now - before : 0;
    delta.buckets_[static_cast<size_t>(i)] = d;
    total += d;
  }
  delta.total_ = total;
  delta.sum_ = sum_ > prev.sum_ ? sum_ - prev.sum_ : 0.0;
  delta.max_ = max_;  // cumulative (see header)
  return delta;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

double Histogram::mean() const {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double Histogram::Percentile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank-up: the value whose 1-indexed rank is ceil(q*n). A floor
  // rank (q*(n-1)) lands one sample short at high quantiles — p99.5 of 100
  // samples must be the 100th sample, not the 99th.
  uint64_t rank = 0;
  if (q > 0.0) {
    rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total_))) - 1;
  }
  if (rank >= total_) rank = total_ - 1;

  // The top occupied bucket's true upper edge is max_, not its nominal
  // bound: interpolation clamps there so Percentile(1.0) == max() exactly
  // (the nominal bound also under-reports values clamped into the overflow
  // bucket, where max_ exceeds BucketHigh).
  int top = kBuckets - 1;
  while (top > 0 && buckets_[static_cast<size_t>(top)] == 0) --top;

  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t n = buckets_[static_cast<size_t>(b)];
    if (n > 0 && seen + n > rank) {
      double lo = BucketLow(b);
      double hi = b == top ? max_ : BucketHigh(b);
      if (hi < lo) hi = lo;
      // Position of the rank within the bucket, counting the sample itself:
      // the last sample of the bucket maps to the bucket's upper edge.
      double frac = static_cast<double>(rank - seen + 1) / static_cast<double>(n);
      return lo + frac * (hi - lo);
    }
    seen += n;
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2f p50=%.2f p99=%.2f max=%.2f",
                static_cast<unsigned long long>(total_), mean(),
                Percentile(0.50), Percentile(0.99), max_);
  return buf;
}

}  // namespace reo
