#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace reo {

void StatAccumulator::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void StatAccumulator::Merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void StatAccumulator::Reset() { *this = StatAccumulator{}; }

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketFor(double v) {
  if (v <= 1.0) return 0;
  // 8 buckets per factor of 2 (~9 % resolution), covering up to ~2^31.
  int b = static_cast<int>(std::log2(v) * 8.0) + 1;
  return std::clamp(b, 0, kBuckets - 1);
}

double Histogram::BucketLow(int b) {
  if (b <= 0) return 0.0;
  return std::exp2(static_cast<double>(b - 1) / 8.0);
}

double Histogram::BucketHigh(int b) {
  return std::exp2(static_cast<double>(b) / 8.0);
}

void Histogram::Add(double v) {
  if (v < 0) v = 0;
  buckets_[static_cast<size_t>(BucketFor(v))]++;
  ++total_;
  sum_ += v;
  max_ = std::max(max_, v);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

double Histogram::mean() const {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double Histogram::Percentile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank-up: the value whose 1-indexed rank is ceil(q*n). A floor
  // rank (q*(n-1)) lands one sample short at high quantiles — p99.5 of 100
  // samples must be the 100th sample, not the 99th.
  uint64_t rank = 0;
  if (q > 0.0) {
    rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total_))) - 1;
  }
  if (rank >= total_) rank = total_ - 1;

  // The top occupied bucket's true upper edge is max_, not its nominal
  // bound: interpolation clamps there so Percentile(1.0) == max() exactly
  // (the nominal bound also under-reports values clamped into the overflow
  // bucket, where max_ exceeds BucketHigh).
  int top = kBuckets - 1;
  while (top > 0 && buckets_[static_cast<size_t>(top)] == 0) --top;

  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t n = buckets_[static_cast<size_t>(b)];
    if (n > 0 && seen + n > rank) {
      double lo = BucketLow(b);
      double hi = b == top ? max_ : BucketHigh(b);
      if (hi < lo) hi = lo;
      // Position of the rank within the bucket, counting the sample itself:
      // the last sample of the bucket maps to the bucket's upper edge.
      double frac = static_cast<double>(rank - seen + 1) / static_cast<double>(n);
      return lo + frac * (hi - lo);
    }
    seen += n;
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2f p50=%.2f p99=%.2f max=%.2f",
                static_cast<unsigned long long>(total_), mean(),
                Percentile(0.50), Percentile(0.99), max_);
  return buf;
}

}  // namespace reo
