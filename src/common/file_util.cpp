#include "common/file_util.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/types.h>
#include <unistd.h>
#define REO_HAVE_FSYNC 1
#endif

namespace reo {
namespace {

/// A tmp name unique per process AND per call: two threads (or a fast
/// write-crash-rewrite cycle) must never scribble into the same tmp file,
/// or the rename can publish a half-written image.
std::string TmpPathFor(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  uint64_t seq = counter.fetch_add(1);
#ifdef REO_HAVE_FSYNC
  long pid = static_cast<long>(::getpid());
#else
  long pid = 0;
#endif
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%llu", pid,
                static_cast<unsigned long long>(seq));
  return path + suffix;
}

#ifdef REO_HAVE_FSYNC
/// fsyncs the directory containing `path` so the rename itself is durable;
/// without it a crash can roll the directory entry back to the old file
/// (or to nothing) even though the new bytes were fsynced.
Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status(ErrorCode::kUnavailable,
                  "open dir " + dir + ": " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status(ErrorCode::kUnavailable,
                  "fsync dir " + dir + ": " + std::strerror(errno));
  }
  return Status::Ok();
}
#endif

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = TmpPathFor(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    return Status(ErrorCode::kUnavailable,
                  "open " + tmp + ": " + std::strerror(errno));
  }
  bool write_ok =
      contents.empty() ||
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  if (write_ok && std::fflush(f) != 0) write_ok = false;
#ifdef REO_HAVE_FSYNC
  if (write_ok && fsync(fileno(f)) != 0) write_ok = false;
#endif
  if (std::fclose(f) != 0) write_ok = false;
  if (!write_ok) {
    std::remove(tmp.c_str());
    return Status(ErrorCode::kUnavailable,
                  "write " + tmp + ": " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(ErrorCode::kUnavailable,
                  "rename " + tmp + " -> " + path + ": " + std::strerror(errno));
  }
#ifdef REO_HAVE_FSYNC
  REO_RETURN_IF_ERROR(SyncParentDir(path));
#endif
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return Status(ErrorCode::kNotFound,
                  "open " + path + ": " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    return Status(ErrorCode::kCorrupted, "read " + path);
  }
  return out;
}

}  // namespace reo
