#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define REO_HAVE_FSYNC 1
#endif

namespace reo {

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    return Status(ErrorCode::kUnavailable,
                  "open " + tmp + ": " + std::strerror(errno));
  }
  bool write_ok =
      contents.empty() ||
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  if (write_ok && std::fflush(f) != 0) write_ok = false;
#ifdef REO_HAVE_FSYNC
  if (write_ok && fsync(fileno(f)) != 0) write_ok = false;
#endif
  if (std::fclose(f) != 0) write_ok = false;
  if (!write_ok) {
    std::remove(tmp.c_str());
    return Status(ErrorCode::kUnavailable,
                  "write " + tmp + ": " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(ErrorCode::kUnavailable,
                  "rename " + tmp + " -> " + path + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return Status(ErrorCode::kNotFound,
                  "open " + path + ": " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    return Status(ErrorCode::kCorrupted, "read " + path);
  }
  return out;
}

}  // namespace reo
