#include "common/crc32c.h"

#include <array>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace reo {
namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

uint32_t Crc32cSoftware(std::span<const uint8_t> data, uint32_t crc) {
  for (uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) || defined(__i386__)
// Hardware path: the SSE4.2 CRC32 instruction computes exactly CRC32C.
// The data plane checksums every chunk on every IO, so this is hot.
__attribute__((target("sse4.2")))
uint32_t Crc32cHardware(std::span<const uint8_t> data, uint32_t crc) {
  const uint8_t* p = data.data();
  size_t n = data.size();
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (n >= 4) {
    uint32_t word;
    __builtin_memcpy(&word, p, 4);
    crc = __builtin_ia32_crc32si(crc, word);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p);
    ++p;
    --n;
  }
  return crc;
}

bool HasSse42() {
  static const bool has = __builtin_cpu_supports("sse4.2");
  return has;
}
#endif

#if defined(__x86_64__)
// --- PCLMULQDQ-folded bulk path ---------------------------------------------
//
// The SSE4.2 crc32q instruction has 3-cycle latency but 1-cycle
// throughput, so a single dependent stream leaves 2/3 of the unit idle.
// The folded path runs THREE independent crc32q streams over adjacent
// kFoldLane-byte lanes of each block, then recombines the three partial
// CRCs with carry-less multiplies.
//
// Combine math, in the reflected-CRC state convention (state bit i =
// coefficient of x^i; G below is the degree-32 CRC32C polynomial in that
// convention, G = (0x82F63B78 << 1) | 1):
//
//   * Appending one zero BIT to the message multiplies the state
//     polynomial by x^-1 mod G, so appending N zero bytes multiplies by
//     x^-8N — "shifting" a lane CRC across the lanes after it.
//   * crc32q with a zero seed maps a 64-bit operand D to D(x) * x^-64
//     mod G, and PCLMULQDQ computes the plain polynomial product, so
//     crc32q(0, clmul(C, K)) = C(x) * K(x) * x^-64 mod G.
//   * Picking K = x^(64 - 8N) mod G therefore turns that two-instruction
//     sequence into exactly the shift-by-N-zero-bytes map.
//
// With lane CRCs c0 (seeded with the running CRC), c1, c2 (seeded 0):
//   crc(block) = shift_2L(c0) ^ shift_L(c1) ^ c2
//              = crc32q(0, clmul(c0, K_2L) ^ clmul(c1, K_L)) ^ c2.
// The constants are powers of x^-1 = 0x82F63B78 mod G, computed once at
// first use by plain square-and-multiply — no opaque magic numbers, and
// the differential test pins the whole construction against the portable
// table implementation.

constexpr size_t kFoldLane = kCrc32cFoldThreshold / 3;
constexpr uint64_t kPolyG = (0x82F63B78ull << 1) | 1;  // x^32..x^0 coeffs

/// GF(2) polynomial multiply mod G; operands/result use bit i = coeff x^i.
constexpr uint32_t PolyMulMod(uint32_t a, uint32_t b) {
  uint64_t prod = 0;
  for (int i = 0; i < 32; ++i) {
    if ((a >> i) & 1) prod ^= static_cast<uint64_t>(b) << i;
  }
  for (int i = 62; i >= 32; --i) {
    if ((prod >> i) & 1) prod ^= kPolyG << (i - 32);
  }
  return static_cast<uint32_t>(prod);
}

/// (x^-1)^e mod G by square-and-multiply.
constexpr uint32_t PolyPowXInv(uint64_t e) {
  uint32_t result = 1;            // polynomial "1"
  uint32_t base = 0x82F63B78u;    // x^-1 mod G
  while (e != 0) {
    if (e & 1) result = PolyMulMod(result, base);
    base = PolyMulMod(base, base);
    e >>= 1;
  }
  return result;
}

// K_L = x^(64 - 8L), K_2L = x^(64 - 16L): both exponents are negative for
// any useful lane size, i.e. powers of x^-1.
constexpr uint32_t kFoldShiftL = PolyPowXInv(8 * kFoldLane - 64);
constexpr uint32_t kFoldShift2L = PolyPowXInv(16 * kFoldLane - 64);

__attribute__((target("sse4.2,pclmul")))
uint32_t Crc32cFolded(std::span<const uint8_t> data, uint32_t crc) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint64_t c0 = crc;
  const __m128i k = _mm_set_epi64x(static_cast<long long>(kFoldShiftL),
                                   static_cast<long long>(kFoldShift2L));
  while (n >= 3 * kFoldLane) {
    uint64_t s0 = c0, s1 = 0, s2 = 0;
    const uint8_t* q0 = p;
    const uint8_t* q1 = p + kFoldLane;
    const uint8_t* q2 = p + 2 * kFoldLane;
    for (size_t i = 0; i < kFoldLane; i += 8) {
      uint64_t w0, w1, w2;
      __builtin_memcpy(&w0, q0 + i, 8);
      __builtin_memcpy(&w1, q1 + i, 8);
      __builtin_memcpy(&w2, q2 + i, 8);
      s0 = _mm_crc32_u64(s0, w0);
      s1 = _mm_crc32_u64(s1, w1);
      s2 = _mm_crc32_u64(s2, w2);
    }
    // imm 0x00: a.lo * k.lo (c0 * K_2L); 0x10: a.lo * k.hi (c1 * K_L).
    // Both products have degree <= 62, so the low 64 bits hold them fully.
    __m128i f0 =
        _mm_clmulepi64_si128(_mm_cvtsi64_si128(static_cast<long long>(s0)), k,
                             0x00);
    __m128i f1 =
        _mm_clmulepi64_si128(_mm_cvtsi64_si128(static_cast<long long>(s1)), k,
                             0x10);
    uint64_t folded =
        static_cast<uint64_t>(_mm_cvtsi128_si64(_mm_xor_si128(f0, f1)));
    c0 = _mm_crc32_u64(0, folded) ^ s2;
    p += 3 * kFoldLane;
    n -= 3 * kFoldLane;
  }
  return Crc32cHardware({p, n}, static_cast<uint32_t>(c0));
}

bool HasClmul() {
  static const bool has =
      __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("pclmul");
  return has;
}
#endif

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed) {
  uint32_t crc = ~seed;
#if defined(__x86_64__)
  if (data.size() >= kCrc32cFoldThreshold && HasClmul()) {
    return ~Crc32cFolded(data, crc);
  }
#endif
#if defined(__x86_64__) || defined(__i386__)
  if (HasSse42()) return ~Crc32cHardware(data, crc);
#endif
  return ~Crc32cSoftware(data, crc);
}

uint32_t Crc32cPortable(std::span<const uint8_t> data, uint32_t seed) {
  return ~Crc32cSoftware(data, ~seed);
}

bool Crc32cUsesHardware() {
#if defined(__x86_64__) || defined(__i386__)
  return HasSse42();
#else
  return false;
#endif
}

bool Crc32cUsesClmul() {
#if defined(__x86_64__)
  return HasClmul();
#else
  return false;
#endif
}

}  // namespace reo
