#include "common/crc32c.h"

#include <array>

namespace reo {
namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

uint32_t Crc32cSoftware(std::span<const uint8_t> data, uint32_t crc) {
  for (uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) || defined(__i386__)
// Hardware path: the SSE4.2 CRC32 instruction computes exactly CRC32C.
// The data plane checksums every chunk on every IO, so this is hot.
__attribute__((target("sse4.2")))
uint32_t Crc32cHardware(std::span<const uint8_t> data, uint32_t crc) {
  const uint8_t* p = data.data();
  size_t n = data.size();
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (n >= 4) {
    uint32_t word;
    __builtin_memcpy(&word, p, 4);
    crc = __builtin_ia32_crc32si(crc, word);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p);
    ++p;
    --n;
  }
  return crc;
}

bool HasSse42() {
  static const bool has = __builtin_cpu_supports("sse4.2");
  return has;
}
#endif

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed) {
  uint32_t crc = ~seed;
#if defined(__x86_64__) || defined(__i386__)
  if (HasSse42()) return ~Crc32cHardware(data, crc);
#endif
  return ~Crc32cSoftware(data, crc);
}

uint32_t Crc32cPortable(std::span<const uint8_t> data, uint32_t seed) {
  return ~Crc32cSoftware(data, ~seed);
}

bool Crc32cUsesHardware() {
#if defined(__x86_64__) || defined(__i386__)
  return HasSse42();
#else
  return false;
#endif
}

}  // namespace reo
