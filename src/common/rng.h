// Deterministic PRNG (PCG32). All randomness in Reo — workload generation,
// synthetic payloads, failure placement — flows through seeded Pcg32
// instances so every experiment is exactly reproducible.
#pragma once

#include <cstdint>

namespace reo {

/// PCG32: small, fast, statistically solid 32-bit generator.
/// (O'Neill, "PCG: A Family of Simple Fast Space-Efficient Statistically
/// Good Algorithms for Random Number Generation".)
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    Next();
    state_ += seed;
    Next();
  }

  /// Uniform 32-bit value.
  uint32_t Next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

  /// Uniform value in [0, bound). Unbiased (rejection sampling).
  uint32_t NextBounded(uint32_t bound) {
    if (bound <= 1) return 0;
    uint32_t threshold = (-bound) % bound;
    for (;;) {
      uint32_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return Next() * (1.0 / 4294967296.0);
  }

  /// Uniform 64-bit value.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next()) << 32) | Next();
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace reo
