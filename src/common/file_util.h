// Filesystem helpers for report/trace emission. Kept out of the hot path;
// only CLI tools and exporters use these.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"

namespace reo {

/// Writes `contents` to `path` atomically: the bytes land in `path + ".tmp"`
/// first (flushed + fsynced), then rename() swaps it into place, so readers
/// never observe a torn or partial file even if the process dies mid-write.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Reads a whole file into a string. kNotFound if it cannot be opened.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace reo
