// Filesystem helpers shared by the persistence layer, CLI tools, and
// exporters. WriteFileAtomic carries checkpoint images, so its durability
// contract is load-bearing, not just convenience.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"

namespace reo {

/// Writes `contents` to `path` atomically and durably: the bytes land in a
/// per-call unique `path + ".tmp.<pid>.<seq>"` first (flushed + fsynced),
/// rename() swaps it into place, and the parent directory is fsynced so the
/// rename survives a power cut. Readers never observe a torn or partial
/// file, and concurrent writers to the same path cannot corrupt each other.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Reads a whole file into a string. kNotFound if it cannot be opened.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace reo
