// Virtual time for the whole simulation.
//
// Reo's evaluation metrics (bandwidth, latency) are computed on a discrete
// virtual clock: device models return service durations; the simulator
// advances the clock by completion times. Nothing in the library reads wall
// time, so runs are bit-reproducible.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace reo {

/// Nanoseconds of virtual time.
using SimTime = uint64_t;

constexpr SimTime kNsPerUs = 1000;
constexpr SimTime kNsPerMs = 1000 * kNsPerUs;
constexpr SimTime kNsPerSec = 1000 * kNsPerMs;

/// Converts virtual nanoseconds to floating-point milliseconds / seconds.
constexpr double ToMs(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSec(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Duration (ns) to move `bytes` at `mb_per_sec` megabytes per second.
constexpr SimTime TransferTime(uint64_t bytes, double mb_per_sec) {
  if (mb_per_sec <= 0.0) return 0;
  return static_cast<SimTime>(static_cast<double>(bytes) / (mb_per_sec * 1e6) * 1e9);
}

/// Monotone virtual clock shared by all simulated components.
class SimClock {
 public:
  SimTime now() const { return now_; }

  /// Advances by `delta` ns and returns the new time.
  SimTime Advance(SimTime delta) {
    now_ += delta;
    return now_;
  }

  /// Moves the clock forward to `t` (no-op if `t` is in the past).
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace reo
