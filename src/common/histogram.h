// Streaming statistics used by the simulator's metrics plane: a running
// mean/min/max accumulator and a log-bucketed latency histogram with
// percentile queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reo {

/// Running summary of a stream of doubles (count/mean/min/max/sum).
class StatAccumulator {
 public:
  void Add(double v);
  void Merge(const StatAccumulator& other);
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-bucketed histogram for non-negative values (e.g. latencies in µs).
/// Buckets grow geometrically (8 per factor of 2); percentile queries
/// interpolate within a bucket. ~9% relative error — ample for reporting.
class Histogram {
 public:
  Histogram();

  void Add(double v);
  void Merge(const Histogram& other);
  void Reset();

  /// Bulk-merge primitive for external aggregators (the telemetry plane's
  /// sharded histograms accumulate into atomic per-domain bucket arrays and
  /// fold them into a plain Histogram at snapshot time): adds `counts`
  /// (length kBuckets) to the buckets plus the raw moments in one call.
  void MergeBuckets(const uint64_t counts[/*kBuckets*/], uint64_t total,
                    double sum, double max);

  /// Windowed-delta view: the samples added to `*this` since `prev` was
  /// captured, assuming `prev` is an earlier snapshot of the same stream
  /// (bucketwise monotone). Bucket counts and sum subtract; `max` cannot be
  /// un-merged from a cumulative stream, so the delta carries the
  /// cumulative max (documented approximation — per-window percentiles
  /// interpolate inside log buckets and clamp at it).
  Histogram DeltaSince(const Histogram& prev) const;

  uint64_t count() const { return total_; }
  double mean() const;
  double sum() const { return sum_; }
  /// Largest value added; 0 if empty.
  double max() const { return max_; }
  /// Value at quantile q in [0, 1]; 0 if empty. Nearest-rank-up with
  /// in-bucket interpolation; Percentile(1.0) == max() exactly.
  double Percentile(double q) const;

  /// One-line summary: count, mean, p50, p99, max.
  std::string Summary() const;

  static constexpr int kBuckets = 256;

  /// Samples recorded in bucket `b` (external aggregators walk the layout).
  uint64_t bucket_count(int b) const { return buckets_[static_cast<size_t>(b)]; }

  /// Bucket index for v: exponent bit-scan plus an exact-crossover threshold
  /// table, no libm call per sample. Agrees with BucketForReference for
  /// every double (the equivalence test pins this).
  static int BucketFor(double v);

  /// The original log2-per-sample formulation, kept as the semantic
  /// definition of the bucketing and the oracle for the equivalence test.
  static int BucketForReference(double v);

 private:
  static double BucketLow(int b);
  static double BucketHigh(int b);

  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace reo
