#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace reo {

ZipfSampler::ZipfSampler(uint32_t n, double skew) : n_(n), skew_(skew) {
  REO_CHECK(n > 0);
  REO_CHECK(skew >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i) + 1.0, skew);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

uint32_t ZipfSampler::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint32_t rank) const {
  REO_CHECK(rank < n_);
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double ZipfSampler::Cdf(uint32_t rank) const {
  REO_CHECK(rank < n_);
  return cdf_[rank];
}

}  // namespace reo
