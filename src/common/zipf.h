// Zipf(ian) popularity sampler used by the MediSyn-like workload generator.
//
// MediSyn (NOSSDAV'03) models media-object popularity as a (generalized)
// Zipf distribution; the paper's weak/medium/strong locality traces are
// Zipfian with different skews. We precompute the CDF once and sample by
// binary search, so sampling is O(log N) and fully deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace reo {

/// Samples ranks in [0, n) with probability proportional to 1 / (rank+1)^s.
class ZipfSampler {
 public:
  /// @param n      number of distinct items (ranks 0..n-1)
  /// @param skew   Zipf exponent s; 0 = uniform, larger = more skewed
  ZipfSampler(uint32_t n, double skew);

  /// Draws one rank using the supplied generator.
  uint32_t Sample(Pcg32& rng) const;

  /// Probability mass of a single rank.
  double Pmf(uint32_t rank) const;

  /// Cumulative probability of ranks [0, rank].
  double Cdf(uint32_t rank) const;

  uint32_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  uint32_t n_;
  double skew_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i); cdf_.back() == 1.0
};

}  // namespace reo
