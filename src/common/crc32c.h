// CRC32C (Castagnoli) checksum, used to verify chunk payload integrity in
// the flash data plane and to detect corruption injected by device failures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace reo {

/// Computes CRC32C over `data`, continuing from `seed` (0 for a fresh CRC).
uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed = 0);

}  // namespace reo
