// CRC32C (Castagnoli) checksum, used to verify chunk payload integrity in
// the flash data plane and to detect corruption injected by device failures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace reo {

/// Computes CRC32C over `data`, continuing from `seed` (0 for a fresh CRC).
uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed = 0);

/// Table-driven portable path, always available. Exposed so the differential
/// test can pin the SSE4.2 hardware path against it; callers use Crc32c.
uint32_t Crc32cPortable(std::span<const uint8_t> data, uint32_t seed = 0);

/// True when Crc32c dispatches to the SSE4.2 instruction on this CPU.
bool Crc32cUsesHardware();

/// True when bulk payloads additionally take the PCLMULQDQ-folded path:
/// three independent CRC32 instruction streams per block, recombined with
/// one carry-less multiply — ~3x the single-stream instruction throughput
/// on large buffers. Small inputs always use the plain SSE4.2 loop.
bool Crc32cUsesClmul();

/// Minimum input size (bytes) for the folded path (one 3-lane block);
/// exposed so the differential test straddles the dispatch boundary.
inline constexpr size_t kCrc32cFoldThreshold = 3 * 1024;

}  // namespace reo
