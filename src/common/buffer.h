// PayloadBuffer: a std::vector<uint8_t> that default-initializes (i.e.
// leaves uninitialized) its elements on resize instead of zero-filling.
//
// The read path materializes a fresh payload buffer per GetObject and then
// overwrites every byte with chunk copies; the value-initializing resize in
// plain std::vector memsets 64 KiB first, purely to be overwritten. The
// allocator below rebinds construct() so `resize(n)` default-initializes
// trivially-constructible elements (a no-op for uint8_t) while explicit
// value construction (`assign`, `resize(n, 0)`, brace-init) still works.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace reo {

template <typename T, typename Base = std::allocator<T>>
class DefaultInitAllocator : public Base {
 public:
  using Base::Base;

  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U, typename std::allocator_traits<
                                              Base>::template rebind_alloc<U>>;
  };

  // Default construction (what vector::resize(n) calls) becomes
  // default-init: trivial types are left uninitialized.
  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }
  // Value/copy construction (resize(n, v), assign, push_back) unchanged.
  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    std::allocator_traits<Base>::construct(static_cast<Base&>(*this), ptr,
                                           std::forward<Args>(args)...);
  }
};

/// Byte buffer for bulk payloads on the read path: resize() does not
/// zero-fill. Interchangeable with std::vector<uint8_t> through spans,
/// .data()/.size(), and the comparison operators below.
using PayloadBuffer = std::vector<uint8_t, DefaultInitAllocator<uint8_t>>;

inline bool operator==(const PayloadBuffer& a, const std::vector<uint8_t>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}
inline bool operator==(const std::vector<uint8_t>& a, const PayloadBuffer& b) {
  return b == a;
}

}  // namespace reo
