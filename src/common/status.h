// Lightweight error-handling vocabulary used across all Reo subsystems.
//
// The library does not throw for expected storage conditions (corrupted
// chunk, cache full, object missing); those travel as Status / Result<T>.
// Exceptions are reserved for programming errors (checked via REO_CHECK).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace reo {

/// Error categories for storage-level outcomes. Kept deliberately small;
/// OSD-level sense codes (paper Table III) map onto these in osd/sense.h.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kNotFound,       ///< object / chunk / device does not exist
  kCorrupted,      ///< data present but failed verification or device dead
  kUnrecoverable,  ///< lost beyond the stripe's parity capability
  kNoSpace,        ///< cache or device is full
  kInvalidArgument,
  kAlreadyExists,
  kUnavailable,    ///< device offline / recovery in progress
  kInternal,
  kIoError,        ///< transient I/O error; safe to retry
};

/// Human-readable name for an ErrorCode.
constexpr std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kCorrupted: return "CORRUPTED";
    case ErrorCode::kUnrecoverable: return "UNRECOVERABLE";
    case ErrorCode::kNoSpace: return "NO_SPACE";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kIoError: return "IO_ERROR";
  }
  return "UNKNOWN";
}

/// A status: either OK or an ErrorCode plus optional context message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message = {})
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    std::string s{reo::to_string(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Either a value or a Status error — a minimal std::expected stand-in.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT
  Result(ErrorCode code, std::string message = {})
      : status_(code, std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  ErrorCode code() const { return ok() ? ErrorCode::kOk : status_.code(); }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Returns the contained value or `fallback` on error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Fatal invariant check: programming errors only, never data conditions.
#define REO_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "REO_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define REO_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::reo::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace reo
