// Object identity shared by the OSD layer and the flash array layer.
//
// T10 OSD names every object by a (Partition ID, Object ID) pair; the pair
// is unique within a logical unit (paper §II.A, Table I).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace reo {

/// (PID, OID) pair identifying one object within an OSD logical unit.
struct ObjectId {
  uint64_t pid = 0;
  uint64_t oid = 0;

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;

  std::string ToString() const {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "0x%llx:0x%llx",
                  static_cast<unsigned long long>(pid),
                  static_cast<unsigned long long>(oid));
    return buf;
  }
};

// --- Reserved IDs (paper Table I; exofs conventions) ---------------------

/// Root object: PID 0x0, OID 0x0.
inline constexpr ObjectId kRootObject{0x0, 0x0};
/// First non-reserved partition / object number.
inline constexpr uint64_t kFirstUserId = 0x10000;
/// exofs metadata objects inside partition 0x10000.
inline constexpr ObjectId kSuperBlockObject{0x10000, 0x10000};
inline constexpr ObjectId kDeviceTableObject{0x10000, 0x10001};
inline constexpr ObjectId kRootDirectoryObject{0x10000, 0x10002};
/// Reo's control/communication object (paper §IV.C.2): all classification
/// and query messages are written to this reserved object.
inline constexpr ObjectId kControlObject{0x10000, 0x10004};

struct ObjectIdHash {
  size_t operator()(const ObjectId& id) const {
    // Mix the two words; splitmix64 finalizer.
    uint64_t x = id.pid * 0x9E3779B97F4A7C15ULL ^ id.oid;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace reo
