// Byte-size literals and formatting helpers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace reo {

constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;

/// "4.40 MB"-style human-readable byte count.
inline std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace reo
