// Failure marking and chunk reconstruction (paper §IV.D).
//
// These are the StripeManager members implemented in reconstruction.cpp:
// OnDeviceFailure / RebuildObject / DamagedObjects. This header exists for
// documentation symmetry; include stripe_manager.h for the API.
#pragma once

#include "array/stripe_manager.h"
