// Failure handling and reconstruction for StripeManager (paper §IV.D).
//
// Split from stripe_manager.cpp to keep the data path and the recovery path
// separately reviewable.
#include <algorithm>

#include "array/stripe_manager.h"

namespace reo {

std::vector<AffectedObject> StripeManager::OnDeviceFailure(DeviceIndex device) {
  // Mark every chunk resident on the failed device as lost. A lost chunk's
  // slot handle is dead from here on (the device's contents are gone and
  // the slot id may be reused after a replace), so FreeStripe skips it.
  std::unordered_map<ObjectId, AffectedObject, ObjectIdHash> affected;
  for (auto& [sid, stripe] : stripes_) {
    bool touched = false;
    for (auto* chunks : {&stripe.data, &stripe.redundancy}) {
      for (auto& c : *chunks) {
        if (c.device == device && !c.lost) {
          c.lost = true;
          touched = true;
        }
      }
    }
    if (touched) {
      auto& rec = affected[stripe.owner];
      rec.id = stripe.owner;
      for (const auto& c : stripe.data) {
        if (c.lost) rec.lost_bytes += c.logical_bytes;
      }
    }
  }
  std::vector<AffectedObject> out;
  out.reserve(affected.size());
  for (auto& [id, rec] : affected) {
    rec.survival = SurvivalOf(id);
    out.push_back(rec);
  }
  return out;
}

namespace {

/// True if the stripe keeps >=2 live chunks on one device while another
/// healthy device holds none of its chunks (fault isolation violated and
/// fixable).
bool PoorlyPlaced(const Stripe& stripe, const FlashArray& array) {
  std::vector<uint32_t> per_device(array.size(), 0);
  size_t live = 0;
  for (const auto* chunks : {&stripe.data, &stripe.redundancy}) {
    for (const auto& c : *chunks) {
      if (!c.lost) {
        ++per_device[c.device];
        ++live;
      }
    }
  }
  (void)live;
  bool has_duplicate = false;
  bool has_empty_healthy = false;
  for (DeviceIndex d = 0; d < array.size(); ++d) {
    if (!array.device(d).healthy()) continue;
    if (per_device[d] >= 2) has_duplicate = true;
    if (per_device[d] == 0) has_empty_healthy = true;
  }
  return has_duplicate && has_empty_healthy;
}

}  // namespace

std::vector<ObjectId> StripeManager::PoorlyPlacedObjects() const {
  std::vector<ObjectId> out;
  std::unordered_map<ObjectId, bool, ObjectIdHash> seen;
  for (const auto& [sid, stripe] : stripes_) {
    if (seen.contains(stripe.owner)) continue;
    if (PoorlyPlaced(stripe, array_)) {
      seen.emplace(stripe.owner, true);
      out.push_back(stripe.owner);
    }
  }
  return out;
}

std::vector<ObjectId> StripeManager::DamagedObjects() const {
  std::vector<ObjectId> out;
  for (const auto& [id, entry] : objects_) {
    for (StripeId sid : entry.stripes) {
      auto sit = stripes_.find(sid);
      REO_CHECK(sit != stripes_.end());
      if (sit->second.lost_count() > 0) {
        out.push_back(id);
        break;
      }
    }
  }
  return out;
}

Result<ArrayIo> StripeManager::RebuildObject(ObjectId id, SimTime now) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status{ErrorCode::kNotFound, "no such object"};
  TraceSpan span(trace_recon_, TraceOp::kRebuild, now, id.oid);

  ArrayIo io;
  io.complete = now;

  // Phase 2 (placement repair) runs after the loss repair below: stripes
  // rebuilt while the array was narrow keep multiple chunks on one device;
  // re-spread them once healthy devices are available again.
  auto rebalance_stripe = [&](Stripe& stripe) -> Status {
    std::vector<uint32_t> per_device(array_.size(), 0);
    for (const auto* chunks : {&stripe.data, &stripe.redundancy}) {
      for (const auto& c : *chunks) {
        if (!c.lost) ++per_device[c.device];
      }
    }
    for (auto* chunks : {&stripe.data, &stripe.redundancy}) {
      for (auto& c : *chunks) {
        if (c.lost || per_device[c.device] < 2) continue;
        // Find an empty healthy device for this duplicate.
        DeviceIndex dst = static_cast<DeviceIndex>(array_.size());
        for (DeviceIndex d = 0; d < array_.size(); ++d) {
          if (array_.device(d).healthy() && per_device[d] == 0 &&
              array_.device(d).free_bytes() >= c.logical_bytes) {
            dst = d;
            break;
          }
        }
        if (dst == array_.size()) continue;
        auto payload = array_.device(c.device).ReadSlot(c.slot);
        if (!payload.ok()) {
          if (payload.status().code() == ErrorCode::kCorrupted) {
            MarkChunkLost(c);  // found rot while moving; next pass repairs
            ++io.corrupt_chunks;
            continue;
          }
          return payload.status();
        }
        io.complete = std::max(
            io.complete,
            array_.device(c.device).SubmitIo(now, c.logical_bytes, false));
        ++io.chunk_reads;
        auto slot = array_.device(dst).AllocateSlot(c.logical_bytes);
        if (!slot.ok()) continue;
        std::vector<uint8_t> copy(payload->begin(), payload->end());
        Status st = array_.device(dst).WriteSlot(*slot, copy);
        if (!st.ok()) {
          (void)array_.device(dst).FreeSlot(*slot);
          return st;
        }
        io.complete = std::max(
            io.complete, array_.device(dst).SubmitIo(now, c.logical_bytes, true));
        ++io.chunk_writes;
        (void)array_.device(c.device).FreeSlot(c.slot);
        --per_device[c.device];
        ++per_device[dst];
        c.device = dst;
        c.slot = *slot;
      }
    }
    return Status::Ok();
  };

  for (StripeId sid : it->second.stripes) {
    auto sit = stripes_.find(sid);
    REO_CHECK(sit != stripes_.end());
    Stripe& stripe = sit->second;
    if (stripe.lost_count() == 0) {
      REO_RETURN_IF_ERROR(rebalance_stripe(stripe));
      continue;
    }
    if (!stripe.recoverable()) {
      span.set_flags(kSpanError);
      return Status{ErrorCode::kUnrecoverable, "stripe beyond parity"};
    }

    // Devices already hosting a surviving chunk of this stripe — rebuilt
    // chunks must land elsewhere to preserve fault isolation.
    std::vector<bool> occupied(array_.size(), false);
    for (const auto* chunks : {&stripe.data, &stripe.redundancy}) {
      for (const auto& c : *chunks) {
        if (!c.lost) occupied[c.device] = true;
      }
    }
    auto pick_device = [&](uint64_t logical) -> Result<DeviceIndex> {
      DeviceIndex best = static_cast<DeviceIndex>(array_.size());
      uint64_t best_free = 0;
      // Prefer an unoccupied healthy device with the most free space;
      // fall back to any healthy device (width may have shrunk).
      for (int pass = 0; pass < 2 && best == array_.size(); ++pass) {
        for (DeviceIndex d = 0; d < array_.size(); ++d) {
          auto& dev = array_.device(d);
          if (!dev.healthy()) continue;
          if (pass == 0 && occupied[d]) continue;
          if (dev.free_bytes() >= logical && dev.free_bytes() > best_free) {
            best = d;
            best_free = dev.free_bytes();
          }
        }
      }
      if (best == array_.size()) {
        return Status{ErrorCode::kNoSpace, "no device can host rebuilt chunk"};
      }
      return best;
    };

    // Decode every lost data chunk in one pass (charges survivor reads).
    std::unordered_map<uint32_t, std::vector<uint8_t>> decoded;
    if (stripe.lost_data_count() > 0 ||
        stripe.level == RedundancyLevel::kReplicate) {
      REO_RETURN_IF_ERROR(DecodeStripe(stripe, decoded, now, io));
    }

    // Materialize data chunk buffers for parity re-encoding if needed.
    auto read_or_decoded = [&](uint32_t i) -> Result<std::vector<uint8_t>> {
      if (stripe.data[i].lost) {
        auto d = decoded.find(i);
        REO_CHECK(d != decoded.end());
        return d->second;
      }
      const auto& c = stripe.data[i];
      auto buf = array_.device(c.device).ReadSlot(c.slot);
      if (!buf.ok()) return buf.status();
      io.complete = std::max(
          io.complete,
          array_.device(c.device).SubmitIo(now, c.logical_bytes, false));
      ++io.chunk_reads;
      return std::vector<uint8_t>(buf->begin(), buf->end());
    };

    auto rebuild_chunk = [&](StripeChunk& c,
                             std::span<const uint8_t> payload) -> Status {
      auto dev = pick_device(c.logical_bytes);
      if (!dev.ok()) return dev.status();
      auto slot = array_.device(*dev).AllocateSlot(c.logical_bytes);
      if (!slot.ok()) return slot.status();
      Status st = array_.device(*dev).WriteSlot(*slot, payload);
      if (!st.ok()) {
        (void)array_.device(*dev).FreeSlot(*slot);
        return st;
      }
      io.complete = std::max(
          io.complete, array_.device(*dev).SubmitIo(now, c.logical_bytes, true));
      ++io.chunk_writes;
      c.device = *dev;
      c.slot = *slot;
      c.lost = false;
      occupied[*dev] = true;
      return Status::Ok();
    };

    // Rebuild lost data chunks from the decode.
    for (uint32_t i = 0; i < stripe.data.size(); ++i) {
      if (!stripe.data[i].lost) continue;
      if (stripe.level == RedundancyLevel::kReplicate) {
        auto d = decoded.find(0);
        REO_CHECK(d != decoded.end());
        REO_RETURN_IF_ERROR(rebuild_chunk(stripe.data[i], d->second));
      } else {
        auto d = decoded.find(i);
        REO_CHECK(d != decoded.end());
        REO_RETURN_IF_ERROR(rebuild_chunk(stripe.data[i], d->second));
      }
    }

    // Rebuild lost redundancy chunks: replicas copy the data; parity is
    // re-encoded from the (now complete) data chunks.
    for (size_t j = 0; j < stripe.redundancy.size(); ++j) {
      StripeChunk& c = stripe.redundancy[j];
      if (!c.lost) continue;
      if (stripe.level == RedundancyLevel::kReplicate) {
        auto src = read_or_decoded(0);
        if (!src.ok()) return src.status();
        REO_RETURN_IF_ERROR(rebuild_chunk(c, *src));
      } else {
        size_t m = stripe.data.size();
        const RsCode& code = CodeFor(m, stripe.redundancy.size());
        std::vector<std::vector<uint8_t>> data_bufs;
        data_bufs.reserve(m);
        for (uint32_t i = 0; i < m; ++i) {
          auto b = read_or_decoded(i);
          if (!b.ok()) return b.status();
          data_bufs.push_back(std::move(*b));
        }
        std::vector<std::span<const uint8_t>> dspans;
        dspans.reserve(m);
        for (const auto& b : data_bufs) dspans.emplace_back(b);
        std::vector<uint8_t> parity(static_cast<size_t>(chunk_physical_));
        code.EncodeParity(j, dspans, parity);
        REO_RETURN_IF_ERROR(rebuild_chunk(c, parity));
      }
    }

    // Loss repair done; restore fault isolation if placement doubled up.
    REO_RETURN_IF_ERROR(rebalance_stripe(stripe));
  }
  span.set_end(io.complete);
  span.set_detail(static_cast<uint64_t>(io.chunk_reads) + io.chunk_writes);
  return io;
}

}  // namespace reo
