// Background scrubbing: latent-corruption detection and repair.
//
// Flash bit rot and partial data loss are only visible when data is read;
// a cache that holds cold (rarely read) data for long periods needs a
// scrubber to find such damage while the stripe's parity can still fix it
// (paper §I: "from partial data loss to a complete device failure",
// "silent data corruption").
//
// Every detection and repair is accounted twice: in the returned
// ScrubReport (caller-visible) and in scrub.* metrics + EventLog events
// (operator-visible), so background repairs never happen silently.
#include <algorithm>

#include "array/stripe_manager.h"

namespace reo {

StripeManager::ScrubReport StripeManager::Scrub(SimTime now) {
  ScrubReport report;
  report.complete = now;
  Inc(tel_scrub_passes_);

  // Pass 1: verify every chunk's CRC; mark corrupt chunks lost so the
  // normal reconstruction machinery can repair them.
  std::vector<ObjectId> damaged_owners;
  for (auto& [sid, stripe] : stripes_) {
    bool touched = false;
    for (auto* chunks : {&stripe.data, &stripe.redundancy}) {
      for (auto& c : *chunks) {
        if (c.lost) continue;  // already known-bad (device failure)
        ++report.chunks_scanned;
        auto& dev = array_.device(c.device);
        auto buf = dev.ReadSlot(c.slot);
        report.complete = std::max(
            report.complete, dev.SubmitIo(now, c.logical_bytes, false));
        if (buf.ok()) continue;
        if (buf.status().code() == ErrorCode::kCorrupted) {
          ++report.corrupt_found;
          Inc(tel_scrub_corrupt_);
          Inc(tel_crc_detected_);
          Emit(ev_, report.complete, EventSeverity::kWarn,
               "scrub.corrupt_found", "latent corruption found by scrub",
               {{"object", std::to_string(stripe.owner.oid)},
                {"device", std::to_string(c.device)},
                {"slot", std::to_string(c.slot)}});
          // The slot content is garbage: release it and treat the chunk
          // exactly like one lost to a device failure.
          (void)dev.FreeSlot(c.slot);
          c.lost = true;
          touched = true;
        }
      }
    }
    if (touched) damaged_owners.push_back(stripe.owner);
  }
  Inc(tel_scrub_scanned_, report.chunks_scanned);

  // Pass 2: repair via the reconstruction engine, object by object.
  std::sort(damaged_owners.begin(), damaged_owners.end());
  damaged_owners.erase(
      std::unique(damaged_owners.begin(), damaged_owners.end()),
      damaged_owners.end());
  for (ObjectId id : damaged_owners) {
    auto it = objects_.find(id);
    if (it == objects_.end()) continue;
    // Count the lost chunks of this object before rebuilding.
    uint64_t lost_chunks = 0;
    for (StripeId sid : it->second.stripes) {
      lost_chunks += stripes_.at(sid).lost_count();
    }
    auto rb = RebuildObject(id, report.complete);
    if (rb.ok()) {
      report.chunks_repaired += lost_chunks;
      report.complete = std::max(report.complete, rb->complete);
      Inc(tel_scrub_repaired_, lost_chunks);
      Emit(ev_, report.complete, EventSeverity::kInfo, "scrub.repair",
           "scrub repaired corrupt chunks in place",
           {{"object", std::to_string(id.oid)},
            {"chunks", std::to_string(lost_chunks)}});
    } else if (rb.code() == ErrorCode::kUnrecoverable) {
      report.lost.push_back(id);
      Inc(tel_scrub_lost_);
      Emit(ev_, report.complete, EventSeverity::kError, "scrub.lost",
           "corruption beyond redundancy; object must be evicted",
           {{"object", std::to_string(id.oid)},
            {"chunks", std::to_string(lost_chunks)}});
    }
  }
  return report;
}

}  // namespace reo
