// In-place partial updates with parity maintenance (paper §II.B).
//
// Updating a data chunk invalidates the parity of its stripe. Two repair
// strategies exist: *direct* (read the sibling data chunks, re-encode) and
// *delta* (read the old data + old parity, apply P' = P + g*(D' ^ D)).
// Following the paper, each chunk update uses whichever incurs fewer chunk
// reads. Replicated stripes simply rewrite every copy.
#include <algorithm>

#include "array/stripe_manager.h"

namespace reo {

Result<ParityUpdateCost> StripeManager::UpdateCostOf(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status{ErrorCode::kNotFound, "no such object"};
  auto sit = stripes_.find(it->second.stripes.front());
  REO_CHECK(sit != stripes_.end());
  return ComputeUpdateCost(sit->second.data.size(), sit->second.redundancy.size());
}

Result<ArrayIo> StripeManager::UpdateObjectRange(ObjectId id, uint64_t offset,
                                                 std::span<const uint8_t> data,
                                                 SimTime now) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status{ErrorCode::kNotFound, "no such object"};
  ObjectEntry& entry = it->second;
  uint64_t extent = PhysicalSize(entry.logical_size);
  if (data.empty()) return ArrayIo{.complete = now};
  if (offset + data.size() > extent) {
    return Status{ErrorCode::kInvalidArgument, "range beyond object extent"};
  }

  // Map the touched physical chunk range onto (stripe, data position).
  uint64_t first_chunk = offset / chunk_physical_;
  uint64_t last_chunk = (offset + data.size() - 1) / chunk_physical_;
  struct Touched {
    StripeId sid;
    uint32_t pos;  // data position within the stripe
  };
  std::vector<Touched> touched;
  {
    uint64_t base = 0;  // first object-chunk index of the current stripe
    for (StripeId sid : entry.stripes) {
      auto sit = stripes_.find(sid);
      REO_CHECK(sit != stripes_.end());
      uint64_t count = sit->second.data.size();
      for (uint64_t ci = std::max(base, first_chunk);
           ci < base + count && ci <= last_chunk; ++ci) {
        touched.push_back({sid, static_cast<uint32_t>(ci - base)});
      }
      base += count;
      if (base > last_chunk) break;
    }
  }

  ArrayIo io;
  io.complete = now;

  auto read_slot = [&](const StripeChunk& c) -> Result<std::vector<uint8_t>> {
    auto buf = array_.device(c.device).ReadSlot(c.slot);
    if (!buf.ok()) return buf.status();
    io.complete = std::max(
        io.complete, array_.device(c.device).SubmitIo(now, c.logical_bytes, false));
    ++io.chunk_reads;
    return std::vector<uint8_t>(buf->begin(), buf->end());
  };
  auto write_slot = [&](const StripeChunk& c,
                        std::span<const uint8_t> buf) -> Status {
    Status st = array_.device(c.device).WriteSlot(c.slot, buf);
    if (!st.ok()) return st;
    io.complete = std::max(
        io.complete, array_.device(c.device).SubmitIo(now, c.logical_bytes, true));
    ++io.chunk_writes;
    return Status::Ok();
  };

  for (const Touched& t : touched) {
    auto sit = stripes_.find(t.sid);
    REO_CHECK(sit != stripes_.end());
    Stripe& stripe = sit->second;
    if (stripe.lost_count() > 0) {
      return Status{ErrorCode::kUnavailable,
                    "stripe has lost chunks; rebuild before updating"};
    }
    StripeChunk& chunk = stripe.data[t.pos];

    // Object-chunk index of this data chunk, to slice the update range.
    uint64_t ci = chunk.owner_chunk_index;
    uint64_t chunk_begin = ci * chunk_physical_;
    uint64_t lo = std::max<uint64_t>(offset, chunk_begin);
    uint64_t hi = std::min<uint64_t>(offset + data.size(),
                                     chunk_begin + chunk_physical_);
    REO_CHECK(lo < hi);

    // Read-modify-write the chunk content (the old bytes are also the
    // delta input, so this read serves both purposes).
    auto old_data = read_slot(chunk);
    if (!old_data.ok()) return old_data.status();
    std::vector<uint8_t> new_data = *old_data;
    std::copy(data.begin() + static_cast<long>(lo - offset),
              data.begin() + static_cast<long>(hi - offset),
              new_data.begin() + static_cast<long>(lo - chunk_begin));

    if (stripe.level == RedundancyLevel::kReplicate) {
      REO_RETURN_IF_ERROR(write_slot(chunk, new_data));
      for (StripeChunk& replica : stripe.redundancy) {
        REO_RETURN_IF_ERROR(write_slot(replica, new_data));
      }
      continue;
    }

    size_t m = stripe.data.size();
    size_t k = stripe.redundancy.size();
    if (k == 0) {
      REO_RETURN_IF_ERROR(write_slot(chunk, new_data));
      continue;
    }

    const RsCode& code = CodeFor(m, k);
    // §II.B: pick the method with the fewest chunk reads. The old-data
    // read above is shared by both paths, so compare the *extra* reads:
    // direct needs the m-1 siblings; delta needs the k old parity chunks.
    bool use_delta = k <= m - 1;
    if (use_delta) {
      for (size_t p = 0; p < k; ++p) {
        StripeChunk& parity = stripe.redundancy[p];
        auto old_parity = read_slot(parity);
        if (!old_parity.ok()) return old_parity.status();
        ApplyDeltaUpdate(code, p, t.pos, *old_data, new_data, *old_parity);
        REO_RETURN_IF_ERROR(write_slot(parity, *old_parity));
      }
      REO_RETURN_IF_ERROR(write_slot(chunk, new_data));
    } else {
      // Direct: gather all data chunks (with the update applied) and
      // re-encode every parity chunk.
      std::vector<std::vector<uint8_t>> bufs(m);
      for (size_t d = 0; d < m; ++d) {
        if (d == t.pos) {
          bufs[d] = new_data;
          continue;
        }
        auto sibling = read_slot(stripe.data[d]);
        if (!sibling.ok()) return sibling.status();
        bufs[d] = std::move(*sibling);
      }
      std::vector<std::span<const uint8_t>> dspans(bufs.begin(), bufs.end());
      REO_RETURN_IF_ERROR(write_slot(chunk, new_data));
      for (size_t p = 0; p < k; ++p) {
        std::vector<uint8_t> parity(static_cast<size_t>(chunk_physical_));
        code.EncodeParity(p, dspans, parity);
        REO_RETURN_IF_ERROR(write_slot(stripe.redundancy[p], parity));
      }
    }
  }
  return io;
}

}  // namespace reo
