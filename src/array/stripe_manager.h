// StripeManager: the differentiated-redundancy storage engine of Reo.
//
// Maps whole objects onto variable-parity stripes over a FlashArray
// (paper §IV.C.3–C.4), serves normal / degraded reads (§IV.D "on-demand
// access"), rebuilds lost chunks (§IV.D "data reconstruction"), and keeps
// the space accounting (user vs redundancy bytes) that drives the paper's
// space-efficiency results (§VI.B).
//
// Striping is per-object: an object's chunks fill consecutive stripes of
// its redundancy level; the final stripe may be short. Parity is computed
// at stripe seal with the systematic Reed-Solomon code; replication levels
// store verbatim copies.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/object_id.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "ec/parity_update.h"
#include "ec/rs_code.h"
#include "flash/flash_array.h"
#include "array/stripe.h"
#include "telemetry/metric_registry.h"
#include "trace/event_log.h"
#include "trace/tracer.h"

namespace reo {

/// Parity placement across devices. kRotating spreads parity round-robin
/// (the paper's scheme, §IV.C.3: "map the parity chunks to the devices in
/// a round-robin manner for an even distribution"). kAgeSkewed pins parity
/// to the highest-index devices so the array ages *unevenly* — the idea of
/// Differential RAID (Balakrishnan et al., [34] in the paper): correlated
/// wear-out of same-age SSDs is itself a reliability risk.
enum class ParityPlacement : uint8_t {
  kRotating,
  kAgeSkewed,
};

struct StripeManagerConfig {
  /// Logical bytes per chunk (64 KiB in Figs 5–7/9; 1 MiB in Fig 8).
  uint64_t chunk_logical_bytes = 64 * 1024;
  ParityPlacement parity_placement = ParityPlacement::kRotating;
  /// Physical payload = logical >> scale_shift (DESIGN.md "Scaling").
  /// 0 = store full-size payloads (tests); 6 = 1:64 (benches).
  uint32_t scale_shift = 0;
  /// Logical byte budget (data + redundancy) the cache may occupy across
  /// the array. 0 = no limit beyond the devices themselves. The paper's
  /// cache size (e.g. 10 % of the dataset) is a configuration knob, far
  /// below the 5 x 120 GB of raw flash.
  uint64_t capacity_limit_bytes = 0;
  /// Verify chunk CRCs and sizes on every read (cheap; on by default).
  bool verify_reads = true;
};

/// Outcome of a data-path operation, with virtual-time completion.
struct ArrayIo {
  SimTime complete = 0;
  bool degraded = false;            ///< read needed parity reconstruction
  /// Physical bytes (reads only). PayloadBuffer: the read path sizes this
  /// buffer and then overwrites every byte with chunk copies, so resize()
  /// must not pay a zero-fill first.
  PayloadBuffer payload;
  uint32_t chunk_reads = 0;
  uint32_t chunk_writes = 0;
  /// Chunks whose CRC failed during this operation (latent sector errors
  /// found on read). Each was marked lost; the caller should repair in
  /// place via RebuildObject.
  uint32_t corrupt_chunks = 0;
};

/// Array-wide space accounting (logical bytes).
struct SpaceStats {
  uint64_t user_bytes = 0;        ///< live object data
  uint64_t redundancy_bytes = 0;  ///< parity chunks + extra replicas
  uint64_t capacity_bytes = 0;    ///< healthy-device capacity
  uint64_t free_bytes = 0;
  /// §VI.B: user data as a fraction of all occupied space.
  double SpaceEfficiency() const {
    uint64_t occupied = user_bytes + redundancy_bytes;
    return occupied ? static_cast<double>(user_bytes) / static_cast<double>(occupied) : 1.0;
  }
};

/// Recoverability of one object after failures.
enum class ObjectSurvival : uint8_t {
  kIntact,       ///< all chunks readable
  kRecoverable,  ///< some chunks lost, all within parity capability
  kLost,         ///< at least one chunk irrecoverable
};

/// Entry in the failure report handed to the cache manager.
struct AffectedObject {
  ObjectId id;
  ObjectSurvival survival = ObjectSurvival::kIntact;
  uint64_t lost_bytes = 0;  ///< logical bytes needing reconstruction
};

class StripeManager {
 public:
  /// @param array device substrate; must outlive the manager.
  StripeManager(FlashArray& array, StripeManagerConfig config);

  const StripeManagerConfig& config() const { return config_; }

  /// Physical payload bytes required for an object of `logical` size.
  uint64_t PhysicalSize(uint64_t logical) const;
  uint64_t chunk_physical_bytes() const { return chunk_physical_; }

  // --- Data path -------------------------------------------------------------

  /// Stores an object at the given redundancy level. Overwrites any
  /// previous version. Fails with kNoSpace (nothing stored) when the data
  /// plus redundancy does not fit on the healthy devices.
  Result<ArrayIo> PutObject(ObjectId id, std::span<const uint8_t> payload,
                            uint64_t logical_bytes, RedundancyLevel level,
                            SimTime now);

  /// Reads a whole object, reconstructing lost chunks from parity when
  /// needed (degraded read). Fails with kUnrecoverable when lost chunks
  /// exceed the stripe's parity, kNotFound when absent.
  Result<ArrayIo> GetObject(ObjectId id, SimTime now);

  /// In-place partial update: overwrites the physical byte range
  /// [offset, offset+data.size()) of an object and maintains parity per
  /// chunk using whichever of direct re-encode / delta update incurs fewer
  /// chunk reads (paper §II.B). Replicated objects update every copy.
  /// The object's logical size and level are unchanged; the range must lie
  /// within the object's physical extent. Fails with kUnavailable if any
  /// touched stripe has lost chunks (rebuild first).
  Result<ArrayIo> UpdateObjectRange(ObjectId id, uint64_t offset,
                                    std::span<const uint8_t> data, SimTime now);

  /// Chunk reads the §II.B cost model predicts for updating one data chunk
  /// of this object (exposed for tests/benches).
  Result<ParityUpdateCost> UpdateCostOf(ObjectId id) const;

  /// Drops an object and frees all of its stripes.
  Status RemoveObject(ObjectId id);

  /// Re-encodes an object at a new redundancy level (classification
  /// change). No-op if the level is unchanged.
  Result<ArrayIo> ReencodeObject(ObjectId id, RedundancyLevel level, SimTime now);

  bool Contains(ObjectId id) const { return objects_.contains(id); }
  Result<RedundancyLevel> LevelOf(ObjectId id) const;
  Result<uint64_t> LogicalSizeOf(ObjectId id) const;
  ObjectSurvival SurvivalOf(ObjectId id) const;

  /// All resident object ids (unordered).
  std::vector<ObjectId> ListObjects() const;

  // --- Failure handling (paper §IV.D) ---------------------------------------

  /// Marks every chunk on `device` lost and reports each affected object
  /// with its survivability. Call after FlashArray::FailDevice.
  std::vector<AffectedObject> OnDeviceFailure(DeviceIndex device);

  /// Rebuilds all lost chunks of one object onto healthy devices, reading
  /// survivors and decoding, then re-spreads chunks that share a device
  /// (stripes rebuilt at reduced width double up; once spares restore the
  /// width, fault isolation must be restored too). Consumes IO time on the
  /// devices; returns the rebuild completion time.
  ///
  /// Fails with kUnrecoverable if the object is lost, kNoSpace if no
  /// healthy device can hold a rebuilt chunk.
  Result<ArrayIo> RebuildObject(ObjectId id, SimTime now);

  /// Objects with a stripe that keeps two live chunks on one device while
  /// some healthy device holds none — candidates for RebuildObject's
  /// rebalancing after a spare insertion.
  std::vector<ObjectId> PoorlyPlacedObjects() const;

  /// Objects currently having at least one lost chunk (rebuild work list).
  std::vector<ObjectId> DamagedObjects() const;

  /// Result of one scrubbing pass (see Scrub).
  struct ScrubReport {
    uint64_t chunks_scanned = 0;
    uint64_t corrupt_found = 0;   ///< CRC mismatches detected
    uint64_t chunks_repaired = 0; ///< rebuilt from parity/replicas
    std::vector<ObjectId> lost;   ///< corruption beyond parity capability
    SimTime complete = 0;
  };

  /// Background scrubber: reads and CRC-verifies every resident chunk,
  /// repairs latent corruption from parity/replicas, and reports objects
  /// whose damage exceeds their redundancy (the caller should evict
  /// those). Catches the silent-corruption failure mode the paper's
  /// introduction warns about.
  ScrubReport Scrub(SimTime now);

  // --- Accounting ------------------------------------------------------------

  SpaceStats Space() const;

  /// Estimated logical bytes (data + redundancy) storing an object of
  /// `logical_bytes` at `level` would consume at current array width.
  uint64_t FootprintEstimate(uint64_t logical_bytes, RedundancyLevel level) const;

  /// True if FootprintEstimate fits in current free space.
  bool HasSpaceFor(uint64_t logical_bytes, RedundancyLevel level) const;

  uint64_t user_bytes() const { return user_bytes_; }
  uint64_t redundancy_bytes() const { return redundancy_bytes_; }
  /// Redundancy bytes attributable to stripes of one level (e.g. how much
  /// of the reserve replication is consuming vs hot-data parity).
  uint64_t redundancy_bytes_at(RedundancyLevel level) const {
    return redundancy_by_level_[static_cast<size_t>(level)];
  }

  FlashArray& array() { return array_; }

  /// Resolves the reconstruction span track (stripe decodes, rebuilds)
  /// and fans out to every device's flash track.
  void AttachTracing(Tracer& tracer) {
    trace_recon_ = &tracer.RecorderFor(TraceComponent::kReconstruction);
    array_.AttachTracing(tracer);
  }

  /// "scrub.*" counters: every scrub detection and repair is visible in
  /// metrics, not just in the returned ScrubReport.
  void AttachTelemetry(MetricRegistry& registry);

  /// Scrub milestones ("scrub.corrupt_found" per detection,
  /// "scrub.repair" per repaired object) land in this log.
  void AttachEvents(EventLog& events) { ev_ = &events; }

 private:
  struct ObjectEntry {
    uint64_t logical_size = 0;
    RedundancyLevel level = RedundancyLevel::kNone;
    std::vector<StripeId> stripes;  // in chunk order
  };

  friend class StripeRebuilder;  // reconstruction.cpp

  /// Writes one stripe's worth of chunks (data slice + redundancy) onto
  /// devices; returns completion time or rolls back on allocation failure.
  Result<SimTime> WriteStripe(ObjectId id, RedundancyLevel level,
                              std::span<const std::span<const uint8_t>> data_bufs,
                              std::span<const uint64_t> data_logical,
                              uint32_t first_chunk_index, SimTime now,
                              ArrayIo& io, std::vector<StripeId>& out);

  /// Reads one chunk (possibly via stripe decode); appends into `out` at
  /// the chunk's offset. Updates `io`.
  Status ReadChunk(const Stripe& stripe, const StripeChunk& chunk,
                   std::span<uint8_t> out, SimTime now, ArrayIo& io);

  /// Decodes all lost data chunks of `stripe` from survivors into
  /// `decoded` (map chunk-position -> buffer). Charges survivor reads.
  /// Self-healing: a survivor that fails its CRC is marked lost on the
  /// spot and decoding continues with the remaining fragments.
  Status DecodeStripe(Stripe& stripe,
                      std::unordered_map<uint32_t, std::vector<uint8_t>>& decoded,
                      SimTime now, ArrayIo& io);

  /// Marks a chunk lost after its payload proved unreadable (corrupt):
  /// releases the slot and flags it for reconstruction.
  void MarkChunkLost(StripeChunk& chunk);

  void FreeStripe(Stripe& stripe);
  const RsCode& CodeFor(size_t m, size_t k);

  FlashArray& array_;
  StripeManagerConfig config_;
  uint64_t chunk_physical_ = 0;
  StripeId next_stripe_id_ = 1;

  std::unordered_map<ObjectId, ObjectEntry, ObjectIdHash> objects_;
  std::unordered_map<StripeId, Stripe> stripes_;
  std::unordered_map<uint64_t, RsCode> codes_;  // key m*256+k

  uint64_t user_bytes_ = 0;
  uint64_t redundancy_bytes_ = 0;
  uint64_t redundancy_by_level_[4] = {0, 0, 0, 0};

  SpanRecorder* trace_recon_ = nullptr;
  EventLog* ev_ = nullptr;
  Counter* tel_scrub_passes_ = nullptr;
  Counter* tel_scrub_scanned_ = nullptr;
  Counter* tel_scrub_corrupt_ = nullptr;
  Counter* tel_scrub_repaired_ = nullptr;
  Counter* tel_scrub_lost_ = nullptr;
  Counter* tel_crc_detected_ = nullptr;
};

}  // namespace reo
