// Stripe and chunk types for the differentiated-redundancy flash array
// (paper §IV.C.3, Figure 4).
//
// The array's basic management unit is a stripe: up to `width` chunks, one
// per device. Unlike RAID, stripes carry a *variable* number of parity
// chunks — 0, 1 or 2 parity, or full replication — and parity positions
// rotate round-robin with the stripe ID.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"
#include "flash/flash_device.h"

namespace reo {

using StripeId = uint64_t;

/// Redundancy levels Reo assigns (paper §IV.C.4).
enum class RedundancyLevel : uint8_t {
  kNone,       ///< 0-parity: cold clean data (Class 3)
  kParity1,    ///< 1 parity chunk per stripe (uniform baseline)
  kParity2,    ///< 2 parity chunks per stripe: hot clean data (Class 2)
  kReplicate,  ///< copies on every device: metadata & dirty data (Class 0/1)
};

constexpr std::string_view to_string(RedundancyLevel l) {
  switch (l) {
    case RedundancyLevel::kNone: return "0-parity";
    case RedundancyLevel::kParity1: return "1-parity";
    case RedundancyLevel::kParity2: return "2-parity";
    case RedundancyLevel::kReplicate: return "replicate";
  }
  return "?";
}

/// Parity/replica chunk count for a level at a given stripe width.
constexpr size_t RedundantChunkCount(RedundancyLevel l, size_t width) {
  switch (l) {
    case RedundancyLevel::kNone: return 0;
    case RedundancyLevel::kParity1: return width >= 2 ? 1 : 0;
    case RedundancyLevel::kParity2: return width >= 3 ? 2 : (width >= 2 ? 1 : 0);
    case RedundancyLevel::kReplicate: return width >= 1 ? width - 1 : 0;
  }
  return 0;
}

/// Device failures a level survives at a given width.
constexpr size_t FailuresSurvived(RedundancyLevel l, size_t width) {
  return RedundantChunkCount(l, width);
}

enum class ChunkKind : uint8_t { kData, kParity, kReplica };

/// One chunk slot within a stripe.
struct StripeChunk {
  ChunkKind kind = ChunkKind::kData;
  DeviceIndex device = 0;
  SlotId slot = 0;
  uint64_t logical_bytes = 0;
  bool lost = false;  ///< resides on a failed device, not yet rebuilt
  /// For data chunks: which chunk of the owning object this is.
  uint32_t owner_chunk_index = 0;
};

/// A sealed or in-flight stripe. All chunks of a stripe belong to the same
/// object (per-object striping; see DESIGN.md §5).
struct Stripe {
  StripeId id = 0;
  ObjectId owner;
  RedundancyLevel level = RedundancyLevel::kNone;
  /// Data chunks in Reed-Solomon fragment order 0..m-1.
  std::vector<StripeChunk> data;
  /// Parity chunks (fragment order m..m+k-1) or replicas.
  std::vector<StripeChunk> redundancy;

  size_t lost_count() const {
    size_t n = 0;
    for (const auto& c : data) n += c.lost ? 1 : 0;
    for (const auto& c : redundancy) n += c.lost ? 1 : 0;
    return n;
  }

  size_t lost_data_count() const {
    size_t n = 0;
    for (const auto& c : data) n += c.lost ? 1 : 0;
    return n;
  }

  /// True if every lost chunk can still be reconstructed.
  bool recoverable() const {
    if (level == RedundancyLevel::kReplicate) {
      // A replica stripe survives while any copy survives.
      size_t copies = 1 + redundancy.size();
      return lost_count() < copies;
    }
    return lost_count() <= redundancy.size();
  }

  /// True if no chunk is lost.
  bool intact() const { return lost_count() == 0; }
};

}  // namespace reo
