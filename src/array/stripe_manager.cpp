#include "array/stripe_manager.h"

#include <algorithm>

namespace reo {

namespace {
constexpr uint64_t kMinPhysicalChunk = 16;

uint64_t ChunkCount(uint64_t logical, uint64_t chunk_logical) {
  if (logical == 0) return 1;
  return (logical + chunk_logical - 1) / chunk_logical;
}
}  // namespace

StripeManager::StripeManager(FlashArray& array, StripeManagerConfig config)
    : array_(array), config_(config) {
  REO_CHECK(config_.chunk_logical_bytes > 0);
  chunk_physical_ =
      std::max<uint64_t>(config_.chunk_logical_bytes >> config_.scale_shift,
                         kMinPhysicalChunk);
}

uint64_t StripeManager::PhysicalSize(uint64_t logical) const {
  return ChunkCount(logical, config_.chunk_logical_bytes) * chunk_physical_;
}

const RsCode& StripeManager::CodeFor(size_t m, size_t k) {
  uint64_t key = (static_cast<uint64_t>(m) << 16) | k;
  auto it = codes_.find(key);
  if (it == codes_.end()) {
    it = codes_.emplace(key, RsCode(m, k)).first;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Result<ArrayIo> StripeManager::PutObject(ObjectId id,
                                         std::span<const uint8_t> payload,
                                         uint64_t logical_bytes,
                                         RedundancyLevel level, SimTime now) {
  if (payload.size() != PhysicalSize(logical_bytes)) {
    return Status{ErrorCode::kInvalidArgument, "payload/logical size mismatch"};
  }
  auto healthy = array_.HealthyDevices();
  if (healthy.empty()) return Status{ErrorCode::kUnavailable, "no healthy devices"};

  // Refuse early if the object obviously cannot fit — avoids a long
  // allocate-then-rollback dance on every admission attempt.
  if (!HasSpaceFor(logical_bytes, level)) {
    return Status{ErrorCode::kNoSpace, "array full"};
  }
  // Overwrite: keep the old copy intact until the new one is fully
  // written, so a failed overwrite cannot destroy previously-acked data.
  // The space check above ran with the old copy still resident, so holding
  // both transiently is already covered by the admission condition.
  ObjectEntry old_entry;
  std::vector<Stripe> old_stripes;
  bool replacing = false;
  if (auto oit = objects_.find(id); oit != objects_.end()) {
    replacing = true;
    old_entry = std::move(oit->second);
    objects_.erase(oit);
    for (StripeId sid : old_entry.stripes) {
      auto sit = stripes_.find(sid);
      REO_CHECK(sit != stripes_.end());
      old_stripes.push_back(std::move(sit->second));
      stripes_.erase(sit);
    }
  }

  size_t width = healthy.size();
  size_t k = RedundantChunkCount(level, width);
  size_t m = level == RedundancyLevel::kReplicate ? 1 : width - k;
  REO_CHECK(m >= 1);

  uint64_t nchunks = ChunkCount(logical_bytes, config_.chunk_logical_bytes);
  ArrayIo io;
  ObjectEntry entry;
  entry.logical_size = logical_bytes;
  entry.level = level;

  uint64_t remaining_logical = logical_bytes == 0 ? 0 : logical_bytes;
  Status failure = Status::Ok();
  for (uint64_t first = 0; first < nchunks; first += m) {
    size_t group = static_cast<size_t>(std::min<uint64_t>(m, nchunks - first));
    std::vector<std::span<const uint8_t>> bufs(group);
    std::vector<uint64_t> logicals(group);
    for (size_t i = 0; i < group; ++i) {
      bufs[i] = payload.subspan((first + i) * chunk_physical_,
                                static_cast<size_t>(chunk_physical_));
      uint64_t l = std::min<uint64_t>(remaining_logical, config_.chunk_logical_bytes);
      if (l == 0) l = 1;  // zero-length objects still occupy one minimal chunk
      logicals[i] = l;
      remaining_logical -= std::min(remaining_logical, config_.chunk_logical_bytes);
    }
    auto done = WriteStripe(id, level, bufs, logicals,
                            static_cast<uint32_t>(first), now, io, entry.stripes);
    if (!done.ok()) {
      failure = done.status();
      break;
    }
    io.complete = std::max(io.complete, *done);
  }

  if (!failure.ok()) {
    // Roll back everything written for this object.
    for (StripeId sid : entry.stripes) {
      auto it = stripes_.find(sid);
      if (it != stripes_.end()) {
        FreeStripe(it->second);
        stripes_.erase(it);
      }
    }
    if (replacing) {
      // Restore the untouched old copy: the overwrite never happened.
      for (auto& s : old_stripes) {
        StripeId sid = s.id;
        stripes_.emplace(sid, std::move(s));
      }
      objects_[id] = std::move(old_entry);
    }
    return failure;
  }

  if (replacing) {
    for (auto& s : old_stripes) FreeStripe(s);
  }
  objects_[id] = std::move(entry);
  return io;
}

Result<SimTime> StripeManager::WriteStripe(
    ObjectId id, RedundancyLevel level,
    std::span<const std::span<const uint8_t>> data_bufs,
    std::span<const uint64_t> data_logical, uint32_t first_chunk_index,
    SimTime now, ArrayIo& io, std::vector<StripeId>& out) {
  auto healthy = array_.HealthyDevices();
  size_t width = healthy.size();
  size_t m = data_bufs.size();
  size_t k = RedundantChunkCount(level, width);
  REO_CHECK(m + k <= width || level == RedundancyLevel::kReplicate);

  StripeId sid = next_stripe_id_++;
  Stripe stripe;
  stripe.id = sid;
  stripe.owner = id;
  stripe.level = level;

  // Parity/replica logical size: the largest member, so accounting reflects
  // what the devices actually reserve.
  uint64_t parity_logical = 0;
  for (uint64_t l : data_logical) parity_logical = std::max(parity_logical, l);

  // Placement: rotating (paper §IV.C.3) spreads both data and parity
  // round-robin by stripe id; age-skewed pins parity on the top devices
  // (Differential-RAID-style uneven aging). Either way every chunk of a
  // stripe lands on a distinct device.
  auto device_at = [&](size_t pos) -> DeviceIndex {
    if (config_.parity_placement == ParityPlacement::kAgeSkewed) {
      if (pos >= m) {
        return healthy[width - 1 - (pos - m)];  // parity slots, fixed
      }
      size_t data_span = width - k > 0 ? width - k : 1;
      return healthy[(static_cast<size_t>(sid) + pos) % data_span];
    }
    return healthy[(static_cast<size_t>(sid) + pos) % width];
  };

  struct Alloc {
    DeviceIndex dev;
    SlotId slot;
  };
  std::vector<Alloc> allocs;
  auto rollback = [&] {
    for (const auto& a : allocs) {
      (void)array_.device(a.dev).FreeSlot(a.slot);
    }
  };

  auto place = [&](size_t pos, uint64_t logical) -> Result<Alloc> {
    DeviceIndex dev = device_at(pos);
    auto slot = array_.device(dev).AllocateSlot(logical);
    if (!slot.ok()) return slot.status();
    Alloc a{dev, *slot};
    allocs.push_back(a);
    return a;
  };

  SimTime done = now;
  auto write_chunk = [&](const Alloc& a, std::span<const uint8_t> buf,
                         uint64_t logical) -> Status {
    Status st = array_.device(a.dev).WriteSlot(a.slot, buf);
    if (!st.ok()) return st;
    done = std::max(done, array_.device(a.dev).SubmitIo(now, logical, true));
    ++io.chunk_writes;
    return Status::Ok();
  };

  // Data chunks.
  for (size_t i = 0; i < m; ++i) {
    auto a = place(i, data_logical[i]);
    if (!a.ok()) {
      rollback();
      return a.status();
    }
    Status st = write_chunk(*a, data_bufs[i], data_logical[i]);
    if (!st.ok()) {
      rollback();
      return st;
    }
    stripe.data.push_back(StripeChunk{.kind = ChunkKind::kData,
                                      .device = a->dev,
                                      .slot = a->slot,
                                      .logical_bytes = data_logical[i],
                                      .owner_chunk_index =
                                          first_chunk_index + static_cast<uint32_t>(i)});
  }

  // Redundancy chunks.
  if (level == RedundancyLevel::kReplicate) {
    for (size_t j = 0; j < k; ++j) {
      auto a = place(m + j, parity_logical);
      if (!a.ok()) {
        rollback();
        return a.status();
      }
      Status st = write_chunk(*a, data_bufs[0], parity_logical);
      if (!st.ok()) {
        rollback();
        return st;
      }
      stripe.redundancy.push_back(StripeChunk{.kind = ChunkKind::kReplica,
                                              .device = a->dev,
                                              .slot = a->slot,
                                              .logical_bytes = parity_logical});
    }
  } else if (k > 0) {
    const RsCode& code = CodeFor(m, k);
    std::vector<std::vector<uint8_t>> parity(k,
        std::vector<uint8_t>(static_cast<size_t>(chunk_physical_)));
    std::vector<std::span<uint8_t>> pspans;
    pspans.reserve(k);
    for (auto& p : parity) pspans.emplace_back(p);
    code.Encode(data_bufs, pspans);
    for (size_t j = 0; j < k; ++j) {
      auto a = place(m + j, parity_logical);
      if (!a.ok()) {
        rollback();
        return a.status();
      }
      Status st = write_chunk(*a, parity[j], parity_logical);
      if (!st.ok()) {
        rollback();
        return st;
      }
      stripe.redundancy.push_back(StripeChunk{.kind = ChunkKind::kParity,
                                              .device = a->dev,
                                              .slot = a->slot,
                                              .logical_bytes = parity_logical});
    }
  }

  // Commit accounting.
  for (uint64_t l : data_logical) user_bytes_ += l;
  uint64_t red = static_cast<uint64_t>(stripe.redundancy.size()) * parity_logical;
  redundancy_bytes_ += red;
  redundancy_by_level_[static_cast<size_t>(level)] += red;
  out.push_back(sid);
  stripes_.emplace(sid, std::move(stripe));
  return done;
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

Status StripeManager::ReadChunk(const Stripe& stripe, const StripeChunk& chunk,
                                std::span<uint8_t> out, SimTime now,
                                ArrayIo& io) {
  (void)stripe;
  auto data = array_.device(chunk.device).ReadSlot(chunk.slot);
  if (!data.ok()) return data.status();
  if (config_.verify_reads && data->size() != out.size()) {
    return {ErrorCode::kCorrupted, "chunk size mismatch"};
  }
  std::copy(data->begin(), data->end(), out.begin());
  io.complete = std::max(
      io.complete,
      array_.device(chunk.device).SubmitIo(now, chunk.logical_bytes, false));
  ++io.chunk_reads;
  return Status::Ok();
}

void StripeManager::MarkChunkLost(StripeChunk& chunk) {
  (void)array_.device(chunk.device).FreeSlot(chunk.slot);
  chunk.lost = true;
  // Every MarkChunkLost call is a CRC failure found on a live read path
  // (device loss goes through OnDeviceFailure instead).
  Inc(tel_crc_detected_);
}

void StripeManager::AttachTelemetry(MetricRegistry& registry) {
  tel_scrub_passes_ = &registry.GetCounter("scrub.passes");
  tel_scrub_scanned_ = &registry.GetCounter("scrub.chunks_scanned");
  tel_scrub_corrupt_ = &registry.GetCounter("scrub.corrupt_found");
  tel_scrub_repaired_ = &registry.GetCounter("scrub.chunks_repaired");
  tel_scrub_lost_ = &registry.GetCounter("scrub.lost_objects");
  tel_crc_detected_ = &registry.GetCounter("fault.crc_detected");
}

Status StripeManager::DecodeStripe(
    Stripe& stripe,
    std::unordered_map<uint32_t, std::vector<uint8_t>>& decoded, SimTime now,
    ArrayIo& io) {
  if (!stripe.recoverable()) {
    return {ErrorCode::kUnrecoverable, "stripe lost beyond parity"};
  }
  size_t m = stripe.data.size();
  TraceSpan span(trace_recon_, TraceOp::kStripeDecode, now);

  // Reads a survivor; latent corruption marks the chunk lost (read-repair
  // semantics) and reports kCorrupted so the caller tries the next one.
  auto read_survivor =
      [&](StripeChunk& c) -> Result<std::span<const uint8_t>> {
    auto buf = array_.device(c.device).ReadSlot(c.slot);
    io.complete = std::max(
        io.complete, array_.device(c.device).SubmitIo(now, c.logical_bytes, false));
    span.Cover(io.complete);
    ++io.chunk_reads;
    if (!buf.ok()) {
      if (buf.status().code() == ErrorCode::kCorrupted) {
        MarkChunkLost(c);
        ++io.corrupt_chunks;
      }
      return buf.status();
    }
    return *buf;
  };

  if (stripe.level == RedundancyLevel::kReplicate) {
    // Any surviving copy serves all lost positions (there is one data pos).
    for (auto* chunks : {&stripe.data, &stripe.redundancy}) {
      for (auto& c : *chunks) {
        if (c.lost) continue;
        auto data = read_survivor(c);
        if (!data.ok()) continue;  // corrupt copy marked lost; try next
        for (uint32_t i = 0; i < stripe.data.size(); ++i) {
          if (stripe.data[i].lost) {
            decoded[i] = std::vector<uint8_t>(data->begin(), data->end());
          }
        }
        return Status::Ok();
      }
    }
    span.set_flags(kSpanError);
    return {ErrorCode::kUnrecoverable, "all replicas lost"};
  }

  size_t k = stripe.redundancy.size();
  const RsCode& code = CodeFor(m, k);

  // Gather m survivors (fragment index order: data 0..m-1, parity m..m+k-1).
  std::vector<std::pair<size_t, std::span<const uint8_t>>> present;
  for (size_t i = 0; i < m && present.size() < m; ++i) {
    StripeChunk& c = stripe.data[i];
    if (c.lost) continue;
    auto buf = read_survivor(c);
    if (buf.ok()) present.emplace_back(i, *buf);
  }
  for (size_t j = 0; j < k && present.size() < m; ++j) {
    StripeChunk& c = stripe.redundancy[j];
    if (c.lost) continue;
    auto buf = read_survivor(c);
    if (buf.ok()) present.emplace_back(m + j, *buf);
  }
  if (present.size() < m) {
    span.set_flags(kSpanError);
    return {ErrorCode::kUnrecoverable, "not enough survivors"};
  }
  std::vector<size_t> missing_data;
  for (size_t i = 0; i < m; ++i) {
    if (stripe.data[i].lost) missing_data.push_back(i);
  }

  std::vector<std::vector<uint8_t>> outs(missing_data.size(),
      std::vector<uint8_t>(static_cast<size_t>(chunk_physical_)));
  std::vector<std::span<uint8_t>> out_spans;
  out_spans.reserve(outs.size());
  for (auto& o : outs) out_spans.emplace_back(o);
  REO_RETURN_IF_ERROR(code.Reconstruct(present, missing_data, out_spans));

  for (size_t i = 0; i < missing_data.size(); ++i) {
    decoded[static_cast<uint32_t>(missing_data[i])] = std::move(outs[i]);
  }
  return Status::Ok();
}

Result<ArrayIo> StripeManager::GetObject(ObjectId id, SimTime now) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status{ErrorCode::kNotFound, "no such object"};
  const ObjectEntry& entry = it->second;

  ArrayIo io;
  io.complete = now;
  io.payload.resize(static_cast<size_t>(PhysicalSize(entry.logical_size)));

  size_t out_pos = 0;
  for (StripeId sid : entry.stripes) {
    auto sit = stripes_.find(sid);
    REO_CHECK(sit != stripes_.end());
    Stripe& stripe = sit->second;

    // Serve the stripe, retrying if a direct read exposes latent
    // corruption (the bad chunk is marked lost and parity fills in —
    // read-repair). Each retry removes a chunk, so this terminates.
    Status stripe_status = Status::Ok();
    for (size_t attempt = 0; attempt <= stripe.data.size(); ++attempt) {
      stripe_status = Status::Ok();
      std::unordered_map<uint32_t, std::vector<uint8_t>> decoded;
      if (stripe.lost_data_count() > 0) {
        stripe_status = DecodeStripe(stripe, decoded, now, io);
        if (!stripe_status.ok()) break;
        io.degraded = true;
      }
      size_t pos = out_pos;
      bool retry = false;
      for (uint32_t i = 0; i < stripe.data.size(); ++i) {
        std::span<uint8_t> out(io.payload.data() + pos,
                               static_cast<size_t>(chunk_physical_));
        if (stripe.data[i].lost) {
          auto d = decoded.find(i);
          REO_CHECK(d != decoded.end());
          std::copy(d->second.begin(), d->second.end(), out.begin());
        } else {
          Status st = ReadChunk(stripe, stripe.data[i], out, now, io);
          if (st.code() == ErrorCode::kCorrupted) {
            MarkChunkLost(stripe.data[i]);
            ++io.corrupt_chunks;
            retry = true;
            break;
          }
          if (!st.ok()) {
            stripe_status = st;
            break;
          }
        }
        pos += static_cast<size_t>(chunk_physical_);
      }
      if (!retry) break;
    }
    REO_RETURN_IF_ERROR(stripe_status);
    out_pos += stripe.data.size() * static_cast<size_t>(chunk_physical_);
  }
  REO_CHECK(out_pos == io.payload.size());
  return io;
}

// ---------------------------------------------------------------------------
// Remove / re-encode
// ---------------------------------------------------------------------------

void StripeManager::FreeStripe(Stripe& stripe) {
  for (const auto& c : stripe.data) {
    if (!c.lost) (void)array_.device(c.device).FreeSlot(c.slot);
    user_bytes_ -= c.logical_bytes;
  }
  for (const auto& c : stripe.redundancy) {
    if (!c.lost) (void)array_.device(c.device).FreeSlot(c.slot);
    redundancy_bytes_ -= c.logical_bytes;
    redundancy_by_level_[static_cast<size_t>(stripe.level)] -= c.logical_bytes;
  }
}

Status StripeManager::RemoveObject(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return {ErrorCode::kNotFound, "no such object"};
  for (StripeId sid : it->second.stripes) {
    auto sit = stripes_.find(sid);
    if (sit != stripes_.end()) {
      FreeStripe(sit->second);
      stripes_.erase(sit);
    }
  }
  objects_.erase(it);
  return Status::Ok();
}

Result<ArrayIo> StripeManager::ReencodeObject(ObjectId id, RedundancyLevel level,
                                              SimTime now) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status{ErrorCode::kNotFound, "no such object"};
  if (it->second.level == level) return ArrayIo{.complete = now};

  auto read = GetObject(id, now);
  if (!read.ok()) return read.status();
  uint64_t logical = it->second.logical_size;
  RedundancyLevel old_level = it->second.level;

  REO_RETURN_IF_ERROR(RemoveObject(id));
  auto put = PutObject(id, read->payload, logical, level, read->complete);
  if (put.ok()) {
    ArrayIo io = std::move(*put);
    io.degraded = read->degraded;
    io.chunk_reads += read->chunk_reads;
    io.payload.clear();
    return io;
  }
  // Could not fit at the new level — restore the previous encoding so the
  // object is not silently dropped.
  auto restore = PutObject(id, read->payload, logical, old_level, read->complete);
  if (!restore.ok()) {
    // The object is gone; the cache layer treats this as an eviction.
    return Status{ErrorCode::kNoSpace, "re-encode failed and restore failed"};
  }
  return put.status();
}

// ---------------------------------------------------------------------------
// Queries & accounting
// ---------------------------------------------------------------------------

Result<RedundancyLevel> StripeManager::LevelOf(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status{ErrorCode::kNotFound, "no such object"};
  return it->second.level;
}

Result<uint64_t> StripeManager::LogicalSizeOf(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status{ErrorCode::kNotFound, "no such object"};
  return it->second.logical_size;
}

ObjectSurvival StripeManager::SurvivalOf(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return ObjectSurvival::kLost;
  bool damaged = false;
  for (StripeId sid : it->second.stripes) {
    auto sit = stripes_.find(sid);
    REO_CHECK(sit != stripes_.end());
    const Stripe& s = sit->second;
    if (!s.recoverable()) return ObjectSurvival::kLost;
    if (s.lost_count() > 0) damaged = true;
  }
  return damaged ? ObjectSurvival::kRecoverable : ObjectSurvival::kIntact;
}

std::vector<ObjectId> StripeManager::ListObjects() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [id, _] : objects_) out.push_back(id);
  return out;
}

SpaceStats StripeManager::Space() const {
  SpaceStats s;
  s.user_bytes = user_bytes_;
  s.redundancy_bytes = redundancy_bytes_;
  uint64_t cap = 0, used = 0;
  for (DeviceIndex i = 0; i < array_.size(); ++i) {
    const auto& d = array_.device(i);
    if (!d.healthy()) continue;
    cap += d.config().capacity_bytes;
    used += d.used_bytes();
  }
  uint64_t physical_free = cap - used;
  if (config_.capacity_limit_bytes > 0) {
    cap = std::min(cap, config_.capacity_limit_bytes);
    // Logical occupancy counts lost-but-owned chunks too, so a failure
    // does not silently enlarge the budget.
    uint64_t occupied = user_bytes_ + redundancy_bytes_;
    uint64_t budget_free = cap > occupied ? cap - occupied : 0;
    physical_free = std::min(physical_free, budget_free);
  }
  s.capacity_bytes = cap;
  s.free_bytes = physical_free;
  return s;
}

uint64_t StripeManager::FootprintEstimate(uint64_t logical_bytes,
                                          RedundancyLevel level) const {
  size_t width = array_.healthy_count();
  if (width == 0) return logical_bytes;
  size_t k = RedundantChunkCount(level, width);
  size_t m = level == RedundancyLevel::kReplicate ? 1 : width - k;
  uint64_t nchunks = ChunkCount(logical_bytes, config_.chunk_logical_bytes);
  uint64_t nstripes = (nchunks + m - 1) / m;
  return logical_bytes + nstripes * k * config_.chunk_logical_bytes;
}

bool StripeManager::HasSpaceFor(uint64_t logical_bytes,
                                RedundancyLevel level) const {
  return FootprintEstimate(logical_bytes, level) <= Space().free_bytes;
}

}  // namespace reo
