// ShardedServer: N-shard multi-threaded serving over one TCP port.
//
// The object space is hash-partitioned across N shards (ShardRouter);
// each shard owns a full serving stack — its own epoll EventLoop thread,
// its own OsdTarget (and everything behind it: data plane, flash array,
// persistence journal), and its own connections. Within a shard nothing
// changed: socket IO and command execution stay single-threaded and
// lock-free on the shard's loop, exactly the OsdServer model.
//
// Cross-shard work moves BETWEEN loops, never shares state:
//   * An acceptor thread owns the listening socket and hands each new
//     connection to a shard round-robin (connections are not pinned to
//     the shard of any object — any connection may address any object).
//   * A frame whose command routes to another shard is FORWARDED: the
//     home loop packages the decoded command, Post()s it to the owning
//     loop, which executes and Post()s the encoded response back; the
//     connection holds the frame's response slot open so replies always
//     flush in request order (see Connection::Complete). We chose
//     forwarding over connection affinity because clients multiplex
//     objects of every shard on one pipelined connection; DESIGN.md
//     "Sharded serving" records the tradeoff.
//   * Fan-out commands (FORMAT, LIST, partition/collection ops) run
//     through a control barrier: the home shard broadcasts the command
//     to every loop, a shared atomic counts completions, the last shard
//     merges the per-shard responses (MergeFanOutResponses) and posts
//     the reply home. A fan-out frame is a pipeline BARRIER on its
//     connection: later frames do not dispatch until it completes, so a
//     FORMAT-then-WRITE pipeline can never reorder.
//
// The admin plane aggregates: STATS arg 0 answers the bucket-level merge
// of every shard's registry (MetricRegistry::Merged), arg k >= 1 answers
// shard k-1 alone; SERIES reads the single whole-process ring (columns
// sum per-shard metrics by construction — time_series.h); HEALTH sums
// every shard's counters and names the answering connection's home
// shard. Existing admin clients (reo_top, admin_probe) work unchanged.
//
// Graceful drain is two-phase so forwarded work is never orphaned:
// phase 1 stops accepting and drains every connection on every shard
// (in-flight and already-buffered requests complete, including their
// cross-shard hops); only when EVERY shard's connection map is empty —
// no forwarded request can be outstanding anywhere — does phase 2 run
// each shard's on_shard_drained checkpoint hook on its own loop thread
// and stop the loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "osd/osd_target.h"
#include "server/connection.h"
#include "server/event_loop.h"
#include "shard/shard_router.h"
#include "telemetry/metric_registry.h"
#include "telemetry/time_series.h"
#include "trace/event_log.h"

namespace reo {

class ShardWorker;

struct ShardedServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port via port()
  int backlog = 128;
  size_t max_connections = 1024;  ///< across all shards
  uint64_t idle_timeout_ms = 60'000;
  /// After RequestDrain(), connections that have not finished within this
  /// budget are force-closed so shutdown always completes.
  uint64_t drain_timeout_ms = 5'000;
  ConnectionConfig connection;
  /// Phase-2 drain hook, run on shard `shard`'s loop thread after every
  /// connection everywhere has drained and before that loop stops — the
  /// per-shard clean-shutdown checkpoint (each shard checkpoints its own
  /// journal; nothing can dirty any shard's state afterwards).
  std::function<void(size_t shard)> on_shard_drained;
};

/// Whole-process serving counters summed across shards (stats()).
struct ShardedServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t rejected = 0;
  uint64_t requests = 0;
  uint64_t responses = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frame_errors = 0;
  uint64_t crc_errors = 0;
  uint64_t decode_errors = 0;
  uint64_t admin_requests = 0;
  uint64_t admin_errors = 0;
  /// Frames whose command was handed to another loop (each fan-out part
  /// counts once). Invariant: forwarded == forward_executed once idle.
  uint64_t forwarded = 0;
  uint64_t forward_executed = 0;
};

class ShardedServer {
 public:
  /// @param targets one executor per shard (targets.size() = shard
  /// count); each must be confined to its shard's loop thread and must
  /// outlive the server.
  ShardedServer(std::span<OsdTarget* const> targets,
                ShardedServerConfig config = {});
  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Binds and listens; after success port() returns the bound port.
  Status Listen();
  uint16_t port() const { return port_; }

  /// Spawns one serving thread per shard, runs the acceptor on the
  /// calling thread, and returns once drain completes everywhere.
  void Run();

  /// Initiates graceful shutdown. Thread- and async-signal-safe.
  void RequestDrain();

  size_t num_shards() const { return workers_.size(); }
  const ShardRouter& router() const { return router_; }

  /// Wires shard `shard`'s serving counters ("server.*", plus the
  /// cross-shard "server.forwarded" / "server.forward_executed") into
  /// its per-shard registry. Call before Run(), once per shard.
  void AttachShardTelemetry(size_t shard, MetricRegistry& registry);

  /// Shared structured event sink (EventLog is thread-safe; events from
  /// every shard interleave in global ticket order).
  void AttachEvents(EventLog& events) { events_ = &events; }

  /// Enables in-band ADMIN on every connection. `registries[k]` is
  /// shard k's registry: STATS arg 0 answers their bucket-level merge,
  /// arg k >= 1 answers shard k-1, anything larger is an error.
  /// `series` is the single whole-process ring (may be null).
  void AttachAdmin(std::vector<MetricRegistry*> registries,
                   TimeSeriesRing* series);

  /// Cluster mode: `directories[k]` is shard k's slice of this node's
  /// hint space; ADMIN OWNERS answers their merge (directories are
  /// thread-safe, so any shard's loop can snapshot all of them) and
  /// HealthJson reports the node id. Each must outlive the server.
  void AttachCluster(std::vector<const ClusterDirectory*> directories) {
    cluster_dirs_ = std::move(directories);
  }

  /// Counters summed across every shard (safe to call after Run()
  /// returns, or concurrently — per-shard counters are relaxed atomics).
  ShardedServerStats stats() const;

  /// Connections currently open, summed across shards.
  size_t active_connections() const {
    return active_conns_.load(std::memory_order_relaxed);
  }

 private:
  friend class ShardWorker;

  struct ForwardState;
  struct BarrierState;

  void OnAcceptReady();
  void PollDrain();
  void BeginDrainOnAcceptor();
  /// Worker -> coordinator: this shard's connection map went (and every
  /// subsequent map stays) empty. The last reporter triggers phase 2.
  void OnWorkerEmpty();
  std::string HealthJson(const ShardWorker& home) const;
  FramePayload HandleAdminFrame(ShardWorker& home, Connection& conn,
                                std::span<const uint8_t> payload);
  /// Hands one decoded command to shard `dest`'s loop; the response
  /// posts back to `home` and completes the connection's slot.
  void Forward(ShardWorker& home, Connection& conn, OsdCommand&& cmd,
               size_t dest, SimTime start_ns);
  /// Broadcasts one command to every shard through the control barrier.
  void FanOut(ShardWorker& home, Connection& conn, OsdCommand&& cmd,
              SimTime start_ns);
  void RollSeries();
  static SimTime NowNs();

  ShardedServerConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  std::vector<std::thread> threads_;
  EventLoop accept_loop_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;  ///< acceptor thread only
  size_t next_shard_rr_ = 0;   ///< acceptor thread only
  std::atomic<size_t> active_conns_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<bool> drain_requested_{false};
  bool drain_begun_ = false;  ///< acceptor thread only
  std::atomic<size_t> empty_workers_{0};
  std::atomic<bool> draining_{false};  ///< for HEALTH status
  SimTime started_ns_ = 0;

  EventLog* events_ = nullptr;
  std::vector<MetricRegistry*> registries_;
  TimeSeriesRing* series_ = nullptr;
  std::vector<const ClusterDirectory*> cluster_dirs_;
  Counter* tel_rejected_ = nullptr;  ///< shard 0's registry (acceptor-side)
};

}  // namespace reo
