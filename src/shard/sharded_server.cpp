#include "shard/sharded_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "osd/transport.h"
#include "server/admin_protocol.h"
#include "telemetry/json_util.h"

namespace reo {
namespace {

std::string PeerName(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

FramePayload EncodeResponsePayload(OsdResponse&& resp) {
  EncodedResponseParts p = EncodeResponseParts(std::move(resp));
  return FramePayload{std::move(p.head), std::move(p.body), std::move(p.tail)};
}

}  // namespace

/// Per-shard serving counters. Updated by the owning loop thread with
/// relaxed atomics so HEALTH aggregation (which runs on whichever shard
/// answers the probe) reads them without locks or races.
struct ShardWorkerStats {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> frame_errors{0};
  std::atomic<uint64_t> crc_errors{0};
  std::atomic<uint64_t> decode_errors{0};
  std::atomic<uint64_t> admin_requests{0};
  std::atomic<uint64_t> admin_errors{0};
  std::atomic<uint64_t> forwarded{0};
  std::atomic<uint64_t> forward_executed{0};
  std::atomic<size_t> active{0};
};

/// One shard: an EventLoop thread owning its connections and OsdTarget.
/// Everything except the stats atomics and loop().Post() is confined to
/// the shard's loop thread.
class ShardWorker final : private ConnectionHost {
 public:
  ShardWorker(ShardedServer& owner, size_t index, OsdTarget& target)
      : owner_(owner), index_(index), target_(target) {}

  EventLoop& loop() { return loop_; }
  size_t index() const { return index_; }
  OsdTarget& target() { return target_; }
  ShardWorkerStats& stats() { return stats_; }
  const ShardWorkerStats& stats() const { return stats_; }

  void AttachTelemetry(MetricRegistry& registry) {
    tel_accepted_ = &registry.GetCounter("server.connections.accepted");
    tel_closed_ = &registry.GetCounter("server.connections.closed");
    tel_requests_ = &registry.GetCounter("server.requests");
    tel_bytes_in_ = &registry.GetCounter("server.bytes_in");
    tel_bytes_out_ = &registry.GetCounter("server.bytes_out");
    tel_frame_errors_ = &registry.GetCounter("server.frame_errors");
    tel_crc_errors_ = &registry.GetCounter("server.crc_errors");
    tel_decode_errors_ = &registry.GetCounter("server.decode_errors");
    tel_admin_requests_ = &registry.GetCounter("server.admin.requests");
    tel_admin_errors_ = &registry.GetCounter("server.admin.errors");
    tel_forwarded_ = &registry.GetCounter("server.forwarded");
    tel_forward_executed_ = &registry.GetCounter("server.forward_executed");
    tel_active_ = &registry.GetGauge("server.connections.active");
    tel_lat_read_ = &registry.GetHistogram("server.latency.read_us");
    tel_lat_write_ = &registry.GetHistogram("server.latency.write_us");
    tel_lat_other_ = &registry.GetHistogram("server.latency.other_us");
  }

  // --- Loop-thread entry points (Posted by the acceptor / coordinator).

  /// Adopts an accepted socket: constructs the Connection here so its
  /// EventLoop registration happens on the owning thread.
  void Adopt(int fd, uint64_t id, std::string peer, ConnectionConfig cfg) {
    ConnectionHost& host = *this;
    connections_.emplace(id, std::make_unique<Connection>(
                                 fd, id, loop_, host, cfg, peer, pool_));
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.active.store(connections_.size(), std::memory_order_relaxed);
    Inc(tel_accepted_);
    Set(tel_active_, static_cast<double>(connections_.size()));
    Emit(owner_.events_, ShardedServer::NowNs(), EventSeverity::kDebug,
         "server.accept", "connection accepted",
         {{"peer", peer}, {"conn", std::to_string(id)},
          {"shard", std::to_string(index_)}});
    // Safety net: the acceptor's per-loop FIFO means BeginDrain always
    // lands after every adoption it raced with, but be defensive.
    if (draining_) connections_[id]->BeginDrain();
  }

  /// Phase 1: stop this shard's connections taking new requests; finish
  /// what they already received (including cross-shard hops).
  void BeginDrain() {
    draining_ = true;
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it != connections_.end()) it->second->BeginDrain();
    }
    ReportIfEmpty();
  }

  /// Phase 2: every shard's map is empty — checkpoint and stop.
  void FinishDrain() {
    if (owner_.config_.on_shard_drained) {
      owner_.config_.on_shard_drained(index_);
    }
    loop_.Stop();
  }

  /// Drain-deadline enforcement: force-close whatever is left.
  void ForceCloseAll() {
    size_t n = connections_.size();
    if (n == 0) return;
    stats_.closed.fetch_add(n, std::memory_order_relaxed);
    Inc(tel_closed_, n);
    connections_.clear();
    owner_.active_conns_.fetch_sub(n, std::memory_order_relaxed);
    stats_.active.store(0, std::memory_order_relaxed);
    Set(tel_active_, 0);
    ReportIfEmpty();
  }

  void CountForwardExecuted() {
    stats_.forward_executed.fetch_add(1, std::memory_order_relaxed);
    Inc(tel_forward_executed_);
  }

  /// Delivers a cross-shard response to the connection that deferred the
  /// frame. The connection may have died meanwhile (peer reset): a miss
  /// in the map drops the completion — its slot died with the conn.
  void DeliverCompletion(uint64_t conn_id, uint64_t token,
                         FramePayload payload, SimTime start_ns, OsdOp op) {
    ObserveLatency(op, start_ns, ShardedServer::NowNs());
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    it->second->Complete(token, std::move(payload));  // may destroy conn
  }

 private:
  // ConnectionHost (loop thread):
  FrameResult OnFrame(Connection& conn,
                      std::span<const uint8_t> payload) override {
    if (IsAdminFrame(payload)) {
      return FrameResult{owner_.HandleAdminFrame(*this, conn, payload)};
    }
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    Inc(tel_requests_);
    auto decoded = DecodeCommand(payload);
    if (!decoded.ok()) {
      stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
      Inc(tel_decode_errors_);
      Emit(owner_.events_, ShardedServer::NowNs(), EventSeverity::kWarn,
           "server.decode_error", "framed payload is not a valid OSD command",
           {{"peer", conn.peer()},
            {"bytes", std::to_string(payload.size())},
            {"error", std::string(decoded.status().message())}});
      OsdResponse err;
      err.sense = SenseCode::kFail;
      stats_.responses.fetch_add(1, std::memory_order_relaxed);
      return FrameResult{EncodeResponsePayload(std::move(err))};
    }
    SimTime start = ShardedServer::NowNs();
    decoded->now = start;
    ShardRoute route = owner_.router_.RouteOf(*decoded);
    if (route.fan_out && owner_.workers_.size() > 1) {
      owner_.FanOut(*this, conn, std::move(*decoded), start);
      return FrameResult{{}, /*deferred=*/true, /*barrier=*/true};
    }
    if (!route.fan_out && route.shard != index_) {
      owner_.Forward(*this, conn, std::move(*decoded), route.shard, start);
      return FrameResult{{}, /*deferred=*/true, /*barrier=*/false};
    }
    // Home shard (or single-shard fan-out): execute synchronously, the
    // unchanged OsdServer path.
    OsdResponse resp = target_.Execute(*decoded);
    ObserveLatency(decoded->op, start, ShardedServer::NowNs());
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
    return FrameResult{EncodeResponsePayload(std::move(resp))};
  }

  void OnCorruptFrame(Connection& conn, FrameStatus status) override {
    const char* kind = "bad_magic";
    if (status == FrameStatus::kCrcMismatch) {
      stats_.crc_errors.fetch_add(1, std::memory_order_relaxed);
      Inc(tel_crc_errors_);
      kind = "crc_mismatch";
    } else {
      stats_.frame_errors.fetch_add(1, std::memory_order_relaxed);
      Inc(tel_frame_errors_);
      if (status == FrameStatus::kOversized) kind = "oversized_length";
    }
    Emit(owner_.events_, ShardedServer::NowNs(), EventSeverity::kWarn,
         "server.wire_corruption", "corrupt frame on connection; dropping it",
         {{"peer", conn.peer()},
          {"conn", std::to_string(conn.id())},
          {"shard", std::to_string(index_)},
          {"kind", kind},
          {"frames_ok", std::to_string(conn.frames_handled())}});
  }

  void OnBytes(uint64_t bytes_in, uint64_t bytes_out) override {
    stats_.bytes_in.fetch_add(bytes_in, std::memory_order_relaxed);
    stats_.bytes_out.fetch_add(bytes_out, std::memory_order_relaxed);
    Inc(tel_bytes_in_, bytes_in);
    Inc(tel_bytes_out_, bytes_out);
  }

  void OnClose(Connection& conn, std::string_view reason) override {
    Emit(owner_.events_, ShardedServer::NowNs(), EventSeverity::kDebug,
         "server.close", "connection closed",
         {{"peer", conn.peer()},
          {"conn", std::to_string(conn.id())},
          {"shard", std::to_string(index_)},
          {"reason", std::string(reason)},
          {"frames", std::to_string(conn.frames_handled())}});
    stats_.closed.fetch_add(1, std::memory_order_relaxed);
    Inc(tel_closed_);
    connections_.erase(conn.id());  // destroys conn
    owner_.active_conns_.fetch_sub(1, std::memory_order_relaxed);
    stats_.active.store(connections_.size(), std::memory_order_relaxed);
    Set(tel_active_, static_cast<double>(connections_.size()));
    if (draining_) ReportIfEmpty();
  }

  void ObserveLatency(OsdOp op, SimTime start, SimTime end) {
    double us = static_cast<double>(end - start) / 1e3;
    switch (op) {
      case OsdOp::kRead: Observe(tel_lat_read_, us); break;
      case OsdOp::kWrite: Observe(tel_lat_write_, us); break;
      default: Observe(tel_lat_other_, us); break;
    }
  }

  void ReportIfEmpty() {
    if (!connections_.empty() || reported_empty_) return;
    reported_empty_ = true;
    owner_.OnWorkerEmpty();
  }

  friend class ShardedServer;

  ShardedServer& owner_;
  size_t index_;
  OsdTarget& target_;
  EventLoop loop_;
  FrameMetaPool pool_;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  bool draining_ = false;
  bool reported_empty_ = false;
  ShardWorkerStats stats_;

  // Telemetry (null when un-attached).
  Counter* tel_accepted_ = nullptr;
  Counter* tel_closed_ = nullptr;
  Counter* tel_requests_ = nullptr;
  Counter* tel_bytes_in_ = nullptr;
  Counter* tel_bytes_out_ = nullptr;
  Counter* tel_frame_errors_ = nullptr;
  Counter* tel_crc_errors_ = nullptr;
  Counter* tel_decode_errors_ = nullptr;
  Counter* tel_admin_requests_ = nullptr;
  Counter* tel_admin_errors_ = nullptr;
  Counter* tel_forwarded_ = nullptr;
  Counter* tel_forward_executed_ = nullptr;
  Gauge* tel_active_ = nullptr;
  ShardedHistogram* tel_lat_read_ = nullptr;
  ShardedHistogram* tel_lat_write_ = nullptr;
  ShardedHistogram* tel_lat_other_ = nullptr;
};

// --- Cross-shard state blocks -----------------------------------------------
// Post() takes std::function (copyable), so per-request move-only state
// lives behind a shared_ptr.

struct ShardedServer::ForwardState {
  OsdCommand cmd;
  uint64_t conn_id = 0;
  uint64_t token = 0;
  size_t home = 0;
  SimTime start_ns = 0;
  OsdOp op = OsdOp::kRead;
};

struct ShardedServer::BarrierState {
  std::vector<OsdCommand> cmds;  ///< one per shard (FORMAT splits capacity)
  std::vector<OsdResponse> parts;
  std::atomic<size_t> remaining{0};
  uint64_t conn_id = 0;
  uint64_t token = 0;
  size_t home = 0;
  SimTime start_ns = 0;
  OsdOp op = OsdOp::kRead;
};

// --- ShardedServer ----------------------------------------------------------

ShardedServer::ShardedServer(std::span<OsdTarget* const> targets,
                             ShardedServerConfig config)
    : config_(std::move(config)), router_(targets.size()) {
  REO_CHECK(!targets.empty());
  config_.connection.idle_timeout_ms = config_.idle_timeout_ms;
  workers_.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    workers_.push_back(std::make_unique<ShardWorker>(*this, i, *targets[i]));
  }
}

ShardedServer::~ShardedServer() {
  if (listen_fd_ >= 0) close(listen_fd_);
}

SimTime ShardedServer::NowNs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * kNsPerSec +
         static_cast<SimTime>(ts.tv_nsec);
}

Status ShardedServer::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status{ErrorCode::kInternal,
                  std::string("socket: ") + std::strerror(errno)};
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status{ErrorCode::kInvalidArgument,
                  "bad bind address " + config_.bind_address};
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status{ErrorCode::kUnavailable,
                  std::string("bind: ") + std::strerror(errno)};
  }
  if (listen(listen_fd_, config_.backlog) != 0) {
    return Status{ErrorCode::kInternal,
                  std::string("listen: ") + std::strerror(errno)};
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status{ErrorCode::kInternal,
                  std::string("getsockname: ") + std::strerror(errno)};
  }
  port_ = ntohs(addr.sin_port);
  return Status::Ok();
}

void ShardedServer::AttachShardTelemetry(size_t shard,
                                         MetricRegistry& registry) {
  REO_CHECK(shard < workers_.size());
  workers_[shard]->AttachTelemetry(registry);
  if (shard == 0) {
    tel_rejected_ = &registry.GetCounter("server.connections.rejected");
  }
}

void ShardedServer::AttachAdmin(std::vector<MetricRegistry*> registries,
                                TimeSeriesRing* series) {
  registries_ = std::move(registries);
  series_ = series;
}

void ShardedServer::Run() {
  REO_CHECK(listen_fd_ >= 0);  // Listen() first
  started_ns_ = NowNs();
  threads_.reserve(workers_.size());
  for (auto& w : workers_) {
    threads_.emplace_back([worker = w.get()] { worker->loop().Run(); });
  }
  Status st = accept_loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) {
    OnAcceptReady();
  });
  REO_CHECK(st.ok());
  accept_loop_.AddTimer(20, [this] { PollDrain(); });
  if (series_ != nullptr) {
    series_->Advance(started_ns_);  // pin the ring's epoch to serving start
    RollSeries();
  }
  accept_loop_.Run();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ShardedServer::RollSeries() {
  uint64_t ms = series_->window_ns() / 1'000'000;
  if (ms == 0) ms = 1;
  accept_loop_.AddTimer(ms, [this] {
    series_->Advance(NowNs());
    if (!accept_loop_.stopped()) RollSeries();
  });
}

void ShardedServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  accept_loop_.Wake();
}

void ShardedServer::PollDrain() {
  if (drain_requested_.load(std::memory_order_relaxed) && !drain_begun_) {
    BeginDrainOnAcceptor();
    return;
  }
  if (!accept_loop_.stopped()) {
    accept_loop_.AddTimer(20, [this] { PollDrain(); });
  }
}

void ShardedServer::BeginDrainOnAcceptor() {
  drain_begun_ = true;
  draining_.store(true, std::memory_order_relaxed);
  Emit(events_, NowNs(), EventSeverity::kInfo, "server.drain",
       "graceful shutdown requested",
       {{"active", std::to_string(active_conns_.load())},
        {"shards", std::to_string(workers_.size())}});
  if (listen_fd_ >= 0) {
    accept_loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Phase 1 fan-out. Per-loop FIFO ordering guarantees every adoption
  // this thread posted earlier is processed before its BeginDrain.
  for (auto& w : workers_) {
    ShardWorker* worker = w.get();
    worker->loop().Post([worker] { worker->BeginDrain(); });
  }
  accept_loop_.AddTimer(config_.drain_timeout_ms, [this] {
    if (active_conns_.load(std::memory_order_relaxed) == 0) return;
    Emit(events_, NowNs(), EventSeverity::kWarn, "server.drain_timeout",
         "force-closing connections past the drain deadline",
         {{"remaining", std::to_string(active_conns_.load())}});
    for (auto& w : workers_) {
      ShardWorker* worker = w.get();
      worker->loop().Post([worker] { worker->ForceCloseAll(); });
    }
  });
}

void ShardedServer::OnWorkerEmpty() {
  // Called from worker loop threads; the LAST shard to empty releases
  // phase 2. No shard's map can refill: accepting stopped before the
  // phase-1 fan-out, and a connection only closes after its in-flight
  // (including forwarded) work completed — so once every map is empty,
  // no cross-shard task anywhere still needs a running peer loop.
  if (empty_workers_.fetch_add(1, std::memory_order_acq_rel) + 1 !=
      workers_.size()) {
    return;
  }
  Emit(events_, NowNs(), EventSeverity::kInfo, "server.drained",
       "all shards drained; checkpointing and stopping");
  for (auto& w : workers_) {
    ShardWorker* worker = w.get();
    worker->loop().Post([worker] { worker->FinishDrain(); });
    worker->loop().Wake();
  }
  accept_loop_.Stop();
}

void ShardedServer::OnAcceptReady() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    int fd = accept4(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN / transient: try next wake
    if (active_conns_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Inc(tel_rejected_);
      Emit(events_, NowNs(), EventSeverity::kWarn, "server.reject",
           "connection refused at max_connections",
           {{"peer", PeerName(addr)},
            {"max", std::to_string(config_.max_connections)}});
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_conn_id_++;
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    size_t shard = next_shard_rr_++ % workers_.size();
    ShardWorker* worker = workers_[shard].get();
    worker->loop().Post(
        [worker, fd, id, peer = PeerName(addr), cfg = config_.connection] {
          worker->Adopt(fd, id, peer, cfg);
        });
  }
}

void ShardedServer::Forward(ShardWorker& home, Connection& conn,
                            OsdCommand&& cmd, size_t dest, SimTime start_ns) {
  home.stats().forwarded.fetch_add(1, std::memory_order_relaxed);
  Inc(home.tel_forwarded_);
  auto st = std::make_shared<ForwardState>();
  st->op = cmd.op;
  st->cmd = std::move(cmd);
  st->conn_id = conn.id();
  st->token = conn.last_dispatch_token();
  st->home = home.index();
  st->start_ns = start_ns;
  ShardWorker* dw = workers_[dest].get();
  dw->loop().Post([this, st, dw] {
    dw->CountForwardExecuted();
    OsdResponse resp = dw->target().Execute(st->cmd);
    auto payload = std::make_shared<FramePayload>(
        EncodeResponsePayload(std::move(resp)));
    ShardWorker* hw = workers_[st->home].get();
    hw->loop().Post([hw, st, payload] {
      hw->DeliverCompletion(st->conn_id, st->token, std::move(*payload),
                            st->start_ns, st->op);
    });
  });
}

void ShardedServer::FanOut(ShardWorker& home, Connection& conn,
                           OsdCommand&& cmd, SimTime start_ns) {
  size_t n = workers_.size();
  home.stats().forwarded.fetch_add(n, std::memory_order_relaxed);
  Inc(home.tel_forwarded_, n);
  auto st = std::make_shared<BarrierState>();
  st->op = cmd.op;
  st->conn_id = conn.id();
  st->token = conn.last_dispatch_token();
  st->home = home.index();
  st->start_ns = start_ns;
  st->parts.resize(n);
  st->remaining.store(n, std::memory_order_relaxed);
  st->cmds.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    OsdCommand part = cmd;  // fan-out commands carry no bulk payload
    if (part.op == OsdOp::kFormat) {
      // FORMAT capacity is the whole logical unit; each shard owns an
      // even slice, mirroring the boot-time capacity partitioning.
      part.capacity_bytes = cmd.capacity_bytes / n;
    }
    st->cmds.push_back(std::move(part));
  }
  for (size_t k = 0; k < n; ++k) {
    ShardWorker* w = workers_[k].get();
    w->loop().Post([this, st, w, k] {
      w->CountForwardExecuted();
      st->parts[k] = w->target().Execute(st->cmds[k]);
      // acq_rel: the last decrementer observes every shard's part.
      if (st->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
      OsdResponse merged = MergeFanOutResponses(st->parts);
      auto payload = std::make_shared<FramePayload>(
          EncodeResponsePayload(std::move(merged)));
      ShardWorker* hw = workers_[st->home].get();
      hw->loop().Post([hw, st, payload] {
        hw->DeliverCompletion(st->conn_id, st->token, std::move(*payload),
                              st->start_ns, st->op);
      });
    });
  }
}

ShardedServerStats ShardedServer::stats() const {
  ShardedServerStats out;
  out.rejected = rejected_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    const ShardWorkerStats& s = w->stats();
    out.accepted += s.accepted.load(std::memory_order_relaxed);
    out.closed += s.closed.load(std::memory_order_relaxed);
    out.requests += s.requests.load(std::memory_order_relaxed);
    out.responses += s.responses.load(std::memory_order_relaxed);
    out.bytes_in += s.bytes_in.load(std::memory_order_relaxed);
    out.bytes_out += s.bytes_out.load(std::memory_order_relaxed);
    out.frame_errors += s.frame_errors.load(std::memory_order_relaxed);
    out.crc_errors += s.crc_errors.load(std::memory_order_relaxed);
    out.decode_errors += s.decode_errors.load(std::memory_order_relaxed);
    out.admin_requests += s.admin_requests.load(std::memory_order_relaxed);
    out.admin_errors += s.admin_errors.load(std::memory_order_relaxed);
    out.forwarded += s.forwarded.load(std::memory_order_relaxed);
    out.forward_executed +=
        s.forward_executed.load(std::memory_order_relaxed);
  }
  return out;
}

std::string ShardedServer::HealthJson(const ShardWorker& home) const {
  ShardedServerStats sum = stats();
  const char* status =
      draining_.load(std::memory_order_relaxed) ? "draining"
      : (sum.crc_errors + sum.frame_errors + sum.decode_errors > 0)
          ? "degraded"
          : "ok";
  std::string out = "{\"schema\":\"reo.health.v1\",\"status\":\"";
  out += status;
  out += "\",\"uptime_ms\":";
  out += JsonNum(started_ns_ ? static_cast<double>(NowNs() - started_ns_) / 1e6
                             : 0.0);
  out += ",\"port\":" + std::to_string(port_);
  if (!cluster_dirs_.empty() && cluster_dirs_[0] != nullptr) {
    out += ",\"node_id\":" + std::to_string(cluster_dirs_[0]->local_node());
  }
  out += ",\"shard\":" + std::to_string(home.index());
  out += ",\"shards\":" + std::to_string(workers_.size());
  out += ",\"connections\":" +
         std::to_string(active_conns_.load(std::memory_order_relaxed));
  out += ",\"accepted\":" + std::to_string(sum.accepted);
  out += ",\"requests\":" + std::to_string(sum.requests);
  out += ",\"responses\":" + std::to_string(sum.responses);
  out += ",\"forwarded\":" + std::to_string(sum.forwarded);
  out += ",\"forward_executed\":" + std::to_string(sum.forward_executed);
  out += ",\"crc_errors\":" + std::to_string(sum.crc_errors);
  out += ",\"frame_errors\":" + std::to_string(sum.frame_errors);
  out += ",\"decode_errors\":" + std::to_string(sum.decode_errors);
  out += ",\"admin_requests\":" + std::to_string(sum.admin_requests);
  out += ",\"admin_errors\":" + std::to_string(sum.admin_errors);
  out += "}";
  return out;
}

FramePayload ShardedServer::HandleAdminFrame(
    ShardWorker& home, Connection& conn, std::span<const uint8_t> payload) {
  home.stats().admin_requests.fetch_add(1, std::memory_order_relaxed);
  Inc(home.tel_admin_requests_);
  AdminResponse out;
  auto cmd = DecodeAdminCommand(payload);
  if (!cmd.ok()) {
    out.status = 1;
    out.json = "{\"error\":" +
               JsonString(std::string(cmd.status().message())) + "}";
    Emit(events_, NowNs(), EventSeverity::kWarn, "server.admin_error",
         "malformed admin request",
         {{"peer", conn.peer()},
          {"error", std::string(cmd.status().message())}});
  } else {
    switch (cmd->op) {
      case AdminOp::kStats:
        if (registries_.empty()) {
          out.status = 1;
          out.json = "{\"error\":\"no metric registry attached\"}";
        } else if (cmd->arg == 0) {
          // Whole-process view: bucket-level merge across every shard.
          std::vector<const MetricRegistry*> regs(registries_.begin(),
                                                  registries_.end());
          out.json = MetricRegistry::Merged(regs).ToJson();
        } else if (cmd->arg <= registries_.size()) {
          out.json = registries_[cmd->arg - 1]->Snapshot().ToJson();
        } else {
          out.status = 1;
          out.json = "{\"error\":\"shard " + std::to_string(cmd->arg - 1) +
                     " out of range (shards=" +
                     std::to_string(registries_.size()) + ")\"}";
        }
        break;
      case AdminOp::kSeries:
        if (series_ != nullptr) {
          series_->Advance(NowNs());  // thread-safe: internal mutex
          out.json = series_->ToJson(cmd->arg);
        } else {
          out.status = 1;
          out.json = "{\"error\":\"no time-series ring attached\"}";
        }
        break;
      case AdminOp::kEvents:
        out.json = events_ != nullptr
                       ? events_->ToJson(cmd->arg)
                       : "{\"schema\":\"reo.events.v1\",\"dropped\":0,"
                         "\"events\":[]}";
        break;
      case AdminOp::kHealth:
        out.json = HealthJson(home);
        break;
      case AdminOp::kOwners:
        if (!cluster_dirs_.empty()) {
          out.json = ClusterDirectory::MergedJson(cluster_dirs_);
        } else {
          out.status = 1;
          out.json = "{\"error\":\"no cluster directory attached\"}";
        }
        break;
    }
  }
  if (out.status != 0) {
    home.stats().admin_errors.fetch_add(1, std::memory_order_relaxed);
    Inc(home.tel_admin_errors_);
  }
  return FramePayload{EncodeAdminResponse(out), {}, {}};
}

}  // namespace reo
