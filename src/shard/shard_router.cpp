#include "shard/shard_router.h"

#include <algorithm>
#include <variant>

#include "osd/control_protocol.h"

namespace reo {

ShardRoute ShardRouter::RouteOf(const OsdCommand& cmd) const {
  switch (cmd.op) {
    // Namespace-wide effects: every shard holds a slice of every
    // partition and collection, so these must execute everywhere.
    case OsdOp::kFormat:
    case OsdOp::kCreatePartition:
    case OsdOp::kCreateCollection:
    case OsdOp::kRemoveCollection:
    case OsdOp::kList:
    case OsdOp::kListCollection:
      return ShardRoute{true, 0};

    case OsdOp::kWrite:
      if (cmd.id == kControlObject) {
        // Control messages carry their real target inside the payload;
        // route by it so the SETID / QUERY executes next to the
        // object's metadata and data-plane state.
        auto msg = DecodeControlMessage(cmd.data);
        if (!msg.ok()) {
          // Malformed: any shard rejects it identically; pick the
          // control object's home so the choice is deterministic.
          return ShardRoute{false, ShardOf(kControlObject)};
        }
        if (const auto* set = std::get_if<SetIdCommand>(&*msg)) {
          return ShardRoute{false, ShardOf(set->target)};
        }
        if (const auto* hint = std::get_if<OwnerHintCommand>(&*msg)) {
          // Owner hints live with the object's shard so a later write of
          // the same id (the refetch) lands on the shard holding the hint.
          return ShardRoute{false, ShardOf(hint->target)};
        }
        if (std::holds_alternative<NodeDownCommand>(*msg)) {
          // Every shard's directory holds a slice of the hint space.
          return ShardRoute{true, 0};
        }
        const auto& q = std::get<QueryCommand>(*msg);
        if (q.target == kControlObject) {
          // Recovery-state probe: reconstruction may be running on any
          // shard's array, so ask all of them and report the worst.
          return ShardRoute{true, 0};
        }
        return ShardRoute{false, ShardOf(q.target)};
      }
      return ShardRoute{false, ShardOf(cmd.id)};

    default:
      return ShardRoute{false, ShardOf(cmd.id)};
  }
}

OsdResponse MergeFanOutResponses(std::span<OsdResponse> parts) {
  OsdResponse merged;
  for (OsdResponse& part : parts) {
    if (merged.sense == SenseCode::kOk && part.sense != SenseCode::kOk) {
      merged.sense = part.sense;
    }
    merged.complete = std::max(merged.complete, part.complete);
    merged.degraded = merged.degraded || part.degraded;
    merged.list.insert(merged.list.end(), part.list.begin(), part.list.end());
  }
  std::sort(merged.list.begin(), merged.list.end());
  return merged;
}

}  // namespace reo
