// Object-space partitioning for the sharded server: which shard owns
// which object, which commands touch one shard, and which must fan out
// to all of them.
//
// The partition function is a pure hash of the (PID, OID) pair — the
// same ObjectIdHash the in-memory indexes use — so placement is stable
// across restarts, needs no directory state, and any party (server,
// simulator, load generator) computes it independently and agrees.
//
// Routing is command-aware, not just id-aware:
//   * Data ops (CREATE / WRITE / READ / REMOVE / attrs) go to the shard
//     owning cmd.id.
//   * Control writes to the reserved communication object (§IV.C.2)
//     route by the target embedded IN the message: a "#SETID#" or
//     per-object "#QUERY#" executes on the shard owning that object,
//     while a query of the control object itself (recovery state) fans
//     out — any shard may be reconstructing.
//   * Namespace ops whose effect or answer spans every shard (FORMAT,
//     partition / collection create-remove, LIST) fan out; the caller
//     merges the per-shard responses with MergeFanOutResponses().
#pragma once

#include <cstddef>
#include <span>

#include "common/object_id.h"
#include "osd/osd_target.h"

namespace reo {

/// Where one command executes: a single shard, or all of them.
struct ShardRoute {
  bool fan_out = false;
  size_t shard = 0;  ///< owning shard; meaningful only when !fan_out
};

class ShardRouter {
 public:
  explicit ShardRouter(size_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  size_t num_shards() const { return num_shards_; }

  /// Owning shard of an object id (stable hash partition).
  size_t ShardOf(ObjectId id) const {
    return ObjectIdHash{}(id) % num_shards_;
  }

  /// Routing decision for one decoded command (see file comment).
  ShardRoute RouteOf(const OsdCommand& cmd) const;

 private:
  size_t num_shards_;
};

/// Merges the per-shard responses of a fan-out command into the single
/// response the client sees:
///   * sense: first (lowest shard index) non-OK sense — a fan-out
///     succeeds only if every shard succeeded, and the recovery-state
///     query reports 0x65 if ANY shard is reconstructing;
///   * complete: the latest per-shard completion time;
///   * degraded: true if any part was degraded;
///   * list: concatenation of the disjoint per-shard lists, sorted so
///     the merged LIST answer is deterministic.
OsdResponse MergeFanOutResponses(std::span<OsdResponse> parts);

}  // namespace reo
