// Network model: the 10 Gbps Ethernet connecting cache server, storage
// server, and clients in the paper's testbed (§VI.A).
#pragma once

#include <cstdint>

#include "common/sim_clock.h"

namespace reo {

struct NetworkLinkConfig {
  double gbps = 10.0;               ///< link bandwidth
  SimTime rtt_ns = 100 * kNsPerUs;  ///< request/response round trip
};

/// Serializing point-to-point link with fixed RTT + store-and-forward
/// transfer time. Single queue (one link per path in the testbed).
class NetworkLink {
 public:
  explicit NetworkLink(NetworkLinkConfig config = {}) : config_(config) {}

  const NetworkLinkConfig& config() const { return config_; }

  /// Time to move `bytes` one way, excluding queueing.
  SimTime TransferDuration(uint64_t bytes) const {
    double bytes_per_sec = config_.gbps * 1e9 / 8.0;
    return config_.rtt_ns / 2 +
           static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_sec * 1e9);
  }

  /// Schedules a transfer beginning no earlier than `start`; the link
  /// serializes transfers. Returns completion time.
  SimTime Transfer(SimTime start, uint64_t bytes) {
    SimTime begin = start > busy_until_ ? start : busy_until_;
    busy_until_ = begin + TransferDuration(bytes);
    return busy_until_;
  }

  void Reset() { busy_until_ = 0; }

 private:
  NetworkLinkConfig config_;
  SimTime busy_until_ = 0;
};

}  // namespace reo
