// NetworkLink is header-only; this translation unit anchors the library.
#include "backend/network_link.h"
