#include "backend/backend_store.h"

#include <algorithm>

#include "common/rng.h"

namespace reo {

void BackendStore::RegisterObject(ObjectId id, uint64_t logical_bytes,
                                  uint64_t physical_bytes) {
  auto [it, inserted] = catalog_.emplace(
      id, Entry{.logical_bytes = logical_bytes, .physical_bytes = physical_bytes});
  if (inserted) {
    total_logical_ += logical_bytes;
  } else {
    total_logical_ += logical_bytes - it->second.logical_bytes;
    it->second.logical_bytes = logical_bytes;
    it->second.physical_bytes = physical_bytes;
  }
}

std::vector<uint8_t> BackendStore::SynthesizePayload(ObjectId id,
                                                     uint64_t version,
                                                     uint64_t physical_bytes) {
  std::vector<uint8_t> out(static_cast<size_t>(physical_bytes));
  Pcg32 rng(id.oid * 0x9E3779B97F4A7C15ULL ^ id.pid, version + 1);
  size_t i = 0;
  for (; i + 4 <= out.size(); i += 4) {
    uint32_t w = rng.Next();
    out[i] = static_cast<uint8_t>(w);
    out[i + 1] = static_cast<uint8_t>(w >> 8);
    out[i + 2] = static_cast<uint8_t>(w >> 16);
    out[i + 3] = static_cast<uint8_t>(w >> 24);
  }
  for (; i < out.size(); ++i) out[i] = static_cast<uint8_t>(rng.Next());
  return out;
}

Result<BackendFetch> BackendStore::Fetch(ObjectId id, SimTime now) {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return Status{ErrorCode::kNotFound, "not in backend"};
  const Entry& e = it->second;

  if (faults_ && faults_->enabled(FaultSite::kBackendTransient) &&
      faults_->Roll(FaultSite::kBackendTransient, /*device=*/-1, now).fire) {
    return Status{ErrorCode::kIoError, "injected transient backend error"};
  }

  // HDD: seek + sequential transfer, serialized on the single spindle.
  SimTime disk_start = std::max(now, disk_busy_until_);
  disk_busy_until_ = disk_start + hdd_.seek_ns +
                     TransferTime(e.logical_bytes, hdd_.transfer_mbps);
  // Then the object crosses the network to the cache server.
  SimTime done = link_.Transfer(disk_busy_until_, e.logical_bytes);
  if (faults_ && faults_->enabled(FaultSite::kBackendSlow)) {
    FaultDecision d = faults_->Roll(FaultSite::kBackendSlow, /*device=*/-1, now);
    if (d.fire) {
      done = static_cast<SimTime>(static_cast<double>(done - now) *
                                  d.slow_factor) +
             now + d.added_latency_ns;
    }
  }

  BackendFetch f;
  f.complete = done;
  f.version = e.version;
  f.payload = SynthesizePayload(id, e.version, e.physical_bytes);
  ++fetches_;
  if (trace_) {
    trace_->Record(TraceOp::kBackendFetch, now, done, id.oid, /*flags=*/0,
                   e.logical_bytes);
  }
  return f;
}

Result<SimTime> BackendStore::Flush(ObjectId id, uint64_t version, SimTime now) {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return Status{ErrorCode::kNotFound, "not in backend"};
  Entry& e = it->second;

  SimTime arrived = link_.Transfer(now, e.logical_bytes);
  SimTime disk_start = std::max(arrived, disk_busy_until_);
  disk_busy_until_ = disk_start + hdd_.seek_ns +
                     TransferTime(e.logical_bytes, hdd_.transfer_mbps);
  e.version = version;
  ++flushes_;
  if (trace_) {
    trace_->Record(TraceOp::kBackendFlush, now, disk_busy_until_, id.oid,
                   /*flags=*/0, e.logical_bytes);
  }
  return disk_busy_until_;
}

Result<uint64_t> BackendStore::VersionOf(ObjectId id) const {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return Status{ErrorCode::kNotFound, "not in backend"};
  return it->second.version;
}

}  // namespace reo
