// The backend data store: authoritative home of every object.
//
// Substitutes the paper's storage server (7,200 RPM 1 TB WD hard drive +
// 10 GbE). Object contents are generated deterministically from (oid,
// version) so the cache's data plane can be verified end-to-end without
// holding the whole dataset in memory twice; a write-back flush bumps the
// version, modeling the paper's "asynchronously flushed to the backend
// data store".
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/object_id.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "backend/network_link.h"
#include "fault/fault_injector.h"
#include "trace/tracer.h"

namespace reo {

struct HddConfig {
  /// Average positioning delay per whole-object request.
  SimTime seek_ns = 5 * kNsPerMs;
  /// Effective service rate. Higher than raw 7,200-rpm media speed
  /// (~140 MB/s) because the storage server's 16 GB RAM page-caches most
  /// of the 17 GB dataset (paper §VI.A testbed) — calibrated so miss
  /// latency lands in the paper's 20-25 ms band for 4.26 MB objects.
  double transfer_mbps = 300.0;
};

struct BackendFetch {
  SimTime complete = 0;
  std::vector<uint8_t> payload;  ///< physical bytes
  uint64_t version = 0;
};

/// The storage server. Serves whole-object reads and accepts write-back
/// flushes; charges HDD seek + transfer plus network transfer per op.
class BackendStore {
 public:
  /// @param physical_size_of callback computing the physical payload size
  ///        of a logical object size (must match the cache's data plane).
  BackendStore(HddConfig hdd, NetworkLinkConfig net)
      : hdd_(hdd), link_(net) {}

  /// Registers an object (logical size and physical payload size).
  void RegisterObject(ObjectId id, uint64_t logical_bytes, uint64_t physical_bytes);

  bool Contains(ObjectId id) const { return catalog_.contains(id); }
  size_t object_count() const { return catalog_.size(); }
  uint64_t total_logical_bytes() const { return total_logical_; }

  /// Reads a whole object: HDD seek+transfer then network transfer.
  Result<BackendFetch> Fetch(ObjectId id, SimTime now);

  /// Write-back flush from the cache: network transfer then HDD write.
  /// Bumps the stored version; subsequent fetches return the new content.
  Result<SimTime> Flush(ObjectId id, uint64_t version, SimTime now);

  /// Current version of an object (0 = never written back).
  Result<uint64_t> VersionOf(ObjectId id) const;

  /// Deterministic payload an object has at a version — also used by tests
  /// and the cache to validate end-to-end integrity.
  static std::vector<uint8_t> SynthesizePayload(ObjectId id, uint64_t version,
                                                uint64_t physical_bytes);

  uint64_t fetch_count() const { return fetches_; }
  uint64_t flush_count() const { return flushes_; }
  NetworkLink& link() { return link_; }

  /// Resolves the backend span track; fetches/flushes record leaf spans.
  void AttachTracing(Tracer& tracer) {
    trace_ = &tracer.RecorderFor(TraceComponent::kBackend);
  }

  /// Wires fault injection into fetches: backend.transient rolls a
  /// retryable kIoError per fetch, backend.slow adds latency.
  void AttachFaults(FaultInjector* injector) { faults_ = injector; }

 private:
  struct Entry {
    uint64_t logical_bytes = 0;
    uint64_t physical_bytes = 0;
    uint64_t version = 0;
  };

  HddConfig hdd_;
  NetworkLink link_;
  std::unordered_map<ObjectId, Entry, ObjectIdHash> catalog_;
  uint64_t total_logical_ = 0;
  uint64_t fetches_ = 0;
  uint64_t flushes_ = 0;
  SimTime disk_busy_until_ = 0;
  SpanRecorder* trace_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

}  // namespace reo
