// Trace is header-only; this translation unit anchors the library.
#include "workload/trace.h"
