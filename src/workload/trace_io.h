// Trace serialization: save and load workloads as a line-oriented text
// format, so experiments can run against externally produced traces (or
// exact replays of generated ones) instead of the built-in generator.
//
// Format (UTF-8 text):
//   # comments and blank lines ignored
//   trace <name>
//   object <index> <logical_bytes>        (one per catalog entry)
//   req <R|W> <object_index>              (one per request, in order)
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "workload/trace.h"

namespace reo {

/// Writes a trace to a stream in the text format above.
Status WriteTrace(const Trace& trace, std::ostream& out);

/// Parses a trace from a stream; validates object references.
Result<Trace> ReadTrace(std::istream& in);

/// File-path conveniences.
Status SaveTraceFile(const Trace& trace, const std::string& path);
Result<Trace> LoadTraceFile(const std::string& path);

}  // namespace reo
