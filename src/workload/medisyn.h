// MediSyn-like synthetic workload generator.
//
// The paper generates its traces with MediSyn [36]: Zipfian object
// popularity over 4,000 media objects (avg 4.4 MB, 17.04 GB total), with
// three locality strengths (weak / medium / strong), plus write-intensive
// variants mixing 10–50 % writes (§VI.A, §VI.D). This module reproduces
// those statistical properties deterministically:
//   * sizes ~ lognormal, normalized so the catalog totals objects × mean;
//   * popularity ~ Zipf(skew), with popularity rank decoupled from size;
//   * writes drawn Bernoulli(write_ratio) over the same popularity law.
#pragma once

#include <cstdint>

#include "workload/trace.h"

namespace reo {

struct MediSynConfig {
  std::string name = "custom";
  uint32_t num_objects = 4000;
  /// ~4.26 MB mean: 4,000 objects total the paper's 17.04 GB dataset
  /// ("average object size is around 4.4 MB").
  uint64_t mean_object_bytes = 4'260'000;
  double size_sigma = 0.6;      ///< lognormal shape for object sizes
  double zipf_skew = 0.9;       ///< popularity skew
  uint64_t num_requests = 51057;
  double write_ratio = 0.0;     ///< fraction of write requests
  uint64_t seed = 42;

  /// Temporal locality (MediSyn's file-introduction / popularity-lifetime
  /// model): each object's accesses fall within an active interval
  /// covering this fraction of the trace, with the interval start drawn
  /// uniformly. 1.0 = accesses spread over the whole trace (no extra
  /// temporal locality); smaller = stronger temporal clustering.
  double lifetime_fraction = 1.0;
  /// Lognormal spread of per-object lifetimes around lifetime_fraction.
  double lifetime_sigma = 0.4;
};

/// Generates a trace from the configuration. Deterministic in `seed`.
Trace GenerateMediSyn(const MediSynConfig& config);

/// The paper's three read-only localities (§VI.A): same catalog and object
/// distribution, differing skew and request count.
MediSynConfig WeakLocalityConfig();
MediSynConfig MediumLocalityConfig();
MediSynConfig StrongLocalityConfig();

/// §VI.D write-intensive variants of the medium workload.
MediSynConfig WriteIntensiveConfig(double write_ratio);

}  // namespace reo
