#include "workload/medisyn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"

namespace reo {
namespace {

constexpr uint64_t kSizeGranule = 4096;  // sizes rounded to 4 KiB
constexpr uint64_t kMinObjectBytes = 64 * 1024;

/// Standard normal via Box-Muller on PCG32.
double SampleNormal(Pcg32& rng) {
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  if (u1 < 1e-12) u1 = 1e-12;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

Trace GenerateMediSyn(const MediSynConfig& config) {
  REO_CHECK(config.num_objects > 0);
  REO_CHECK(config.write_ratio >= 0.0 && config.write_ratio <= 1.0);
  Pcg32 rng(config.seed, 0x5eed);

  Trace trace;
  trace.name = config.name;

  // --- Sizes: lognormal, normalized to an exact total -----------------------
  std::vector<double> raw(config.num_objects);
  double sum = 0.0;
  for (auto& v : raw) {
    v = std::exp(config.size_sigma * SampleNormal(rng));
    sum += v;
  }
  double target_total =
      static_cast<double>(config.num_objects) * static_cast<double>(config.mean_object_bytes);
  trace.catalog.sizes.resize(config.num_objects);
  for (uint32_t i = 0; i < config.num_objects; ++i) {
    auto bytes = static_cast<uint64_t>(raw[i] / sum * target_total);
    bytes = std::max(kMinObjectBytes, bytes / kSizeGranule * kSizeGranule);
    trace.catalog.sizes[i] = bytes;
  }

  // --- Popularity: Zipf over a random rank->object permutation --------------
  // (so the hottest object is not systematically the largest/smallest).
  std::vector<uint32_t> rank_to_object(config.num_objects);
  std::iota(rank_to_object.begin(), rank_to_object.end(), 0u);
  for (uint32_t i = config.num_objects - 1; i > 0; --i) {
    uint32_t j = rng.NextBounded(i + 1);
    std::swap(rank_to_object[i], rank_to_object[j]);
  }

  ZipfSampler zipf(config.num_objects, config.zipf_skew);
  trace.requests.reserve(config.num_requests);

  if (config.lifetime_fraction >= 1.0) {
    // Stationary popularity: i.i.d. Zipf draws.
    for (uint64_t r = 0; r < config.num_requests; ++r) {
      Request req;
      req.object = rank_to_object[zipf.Sample(rng)];
      req.is_write = rng.NextDouble() < config.write_ratio;
      trace.requests.push_back(req);
    }
    return trace;
  }

  // MediSyn's temporal model: each object is "introduced" at a random
  // point of the trace and its accesses fall within a bounded active
  // lifetime, so at any instant only a subset of the catalog is live.
  // Per-object request counts still follow the Zipf popularity law.
  //
  // 1. Allocate exact per-rank counts (largest remainder).
  std::vector<uint64_t> counts(config.num_objects, 0);
  {
    std::vector<std::pair<double, uint32_t>> remainders;
    remainders.reserve(config.num_objects);
    uint64_t assigned = 0;
    for (uint32_t rank = 0; rank < config.num_objects; ++rank) {
      double exact = zipf.Pmf(rank) * static_cast<double>(config.num_requests);
      counts[rank] = static_cast<uint64_t>(exact);
      assigned += counts[rank];
      remainders.emplace_back(exact - std::floor(exact), rank);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (size_t i = 0; assigned < config.num_requests; ++i) {
      counts[remainders[i % remainders.size()].second]++;
      ++assigned;
    }
  }

  // 2. Place each object's accesses inside its active interval.
  std::vector<std::pair<double, uint32_t>> timed;
  timed.reserve(config.num_requests);
  for (uint32_t rank = 0; rank < config.num_objects; ++rank) {
    if (counts[rank] == 0) continue;
    double life = config.lifetime_fraction *
                  std::exp(config.lifetime_sigma * SampleNormal(rng));
    life = std::min(life, 1.0);
    double start = rng.NextDouble() * (1.0 - life);
    for (uint64_t k = 0; k < counts[rank]; ++k) {
      timed.emplace_back(start + rng.NextDouble() * life, rank_to_object[rank]);
    }
  }
  std::sort(timed.begin(), timed.end());
  for (const auto& [when, object] : timed) {
    (void)when;
    Request req;
    req.object = object;
    req.is_write = rng.NextDouble() < config.write_ratio;
    trace.requests.push_back(req);
  }
  return trace;
}

// The three locality presets are calibrated (skew + lifetime) so the
// hit-ratio-vs-cache-size bands match the paper's figures: weak stays low
// (~20-38 % over the 4-12 % sweep), medium lands mid-band with ~27 % at a
// 2 % cache (the paper's full-replication operating point in Fig 9), and
// strong is high (>70 %).

MediSynConfig WeakLocalityConfig() {
  MediSynConfig c;
  c.name = "weak";
  c.zipf_skew = 0.6;
  c.lifetime_fraction = 0.45;
  c.num_requests = 25616;
  c.seed = 101;
  return c;
}

MediSynConfig MediumLocalityConfig() {
  MediSynConfig c;
  c.name = "medium";
  c.zipf_skew = 0.75;
  c.lifetime_fraction = 0.25;
  c.num_requests = 51057;
  c.seed = 202;
  return c;
}

MediSynConfig StrongLocalityConfig() {
  MediSynConfig c;
  c.name = "strong";
  c.zipf_skew = 0.95;
  c.lifetime_fraction = 0.15;
  c.num_requests = 89723;
  c.seed = 303;
  return c;
}

MediSynConfig WriteIntensiveConfig(double write_ratio) {
  MediSynConfig c = MediumLocalityConfig();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "write-%.0f%%", write_ratio * 100.0);
  c.name = buf;
  c.write_ratio = write_ratio;
  c.seed = 404 + static_cast<uint64_t>(write_ratio * 100);
  return c;
}

}  // namespace reo
