// Trace representation: an object catalog plus a request sequence.
//
// All of the paper's experiments replay synthetic traces of whole-object
// reads/writes over a fixed catalog (4,000 objects averaging 4.4 MB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/object_id.h"

namespace reo {

/// One whole-object request.
struct Request {
  uint32_t object = 0;  ///< index into the catalog
  bool is_write = false;
};

/// The fixed object population a trace runs over.
struct ObjectCatalog {
  std::vector<uint64_t> sizes;  ///< logical bytes per object index

  size_t count() const { return sizes.size(); }
  uint64_t TotalBytes() const {
    uint64_t s = 0;
    for (auto v : sizes) s += v;
    return s;
  }
  /// OSD object id for catalog index i (user objects in the first
  /// partition, after the reserved range).
  static ObjectId IdFor(uint32_t index) {
    return ObjectId{kFirstUserId, kFirstUserId + 0x100 + index};
  }
};

/// A complete workload: catalog + requests + provenance.
struct Trace {
  std::string name;
  ObjectCatalog catalog;
  std::vector<Request> requests;

  uint64_t TotalAccessedBytes() const {
    uint64_t s = 0;
    for (const auto& r : requests) s += catalog.sizes[r.object];
    return s;
  }
  size_t WriteCount() const {
    size_t n = 0;
    for (const auto& r : requests) n += r.is_write ? 1 : 0;
    return n;
  }
};

}  // namespace reo
