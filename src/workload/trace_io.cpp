#include "workload/trace_io.h"

#include <fstream>
#include <sstream>

namespace reo {

Status WriteTrace(const Trace& trace, std::ostream& out) {
  out << "# Reo trace format v1\n";
  out << "trace " << (trace.name.empty() ? "unnamed" : trace.name) << "\n";
  for (uint32_t i = 0; i < trace.catalog.count(); ++i) {
    out << "object " << i << " " << trace.catalog.sizes[i] << "\n";
  }
  for (const Request& r : trace.requests) {
    out << "req " << (r.is_write ? 'W' : 'R') << " " << r.object << "\n";
  }
  if (!out) return {ErrorCode::kInternal, "stream write failed"};
  return Status::Ok();
}

Result<Trace> ReadTrace(std::istream& in) {
  Trace trace;
  std::string line;
  size_t line_no = 0;
  auto fail = [&](const std::string& why) {
    return Status{ErrorCode::kInvalidArgument,
                  "line " + std::to_string(line_no) + ": " + why};
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "trace") {
      ls >> trace.name;
    } else if (kind == "object") {
      uint64_t index = 0, bytes = 0;
      if (!(ls >> index >> bytes) || bytes == 0) {
        return fail("bad object line");
      }
      if (index != trace.catalog.sizes.size()) {
        return fail("object indices must be dense and in order");
      }
      trace.catalog.sizes.push_back(bytes);
    } else if (kind == "req") {
      char op = 0;
      uint64_t object = 0;
      if (!(ls >> op >> object) || (op != 'R' && op != 'W')) {
        return fail("bad req line");
      }
      if (object >= trace.catalog.sizes.size()) {
        return fail("req references unknown object");
      }
      trace.requests.push_back(
          Request{.object = static_cast<uint32_t>(object), .is_write = op == 'W'});
    } else {
      return fail("unknown directive '" + kind + "'");
    }
  }
  if (trace.catalog.count() == 0) {
    return Status{ErrorCode::kInvalidArgument, "trace has no objects"};
  }
  return trace;
}

Status SaveTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return {ErrorCode::kNotFound, "cannot open " + path};
  return WriteTrace(trace, out);
}

Result<Trace> LoadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status{ErrorCode::kNotFound, "cannot open " + path};
  return ReadTrace(in);
}

}  // namespace reo
