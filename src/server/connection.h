// One accepted TCP connection: non-blocking socket IO, incremental frame
// reassembly, pipelined request dispatch, and a bounded write queue with
// read backpressure.
//
// Lifecycle: OsdServer accepts the socket and owns the Connection; the
// Connection registers itself with the EventLoop and calls back into its
// ConnectionHost for every decoded frame. All entry points run on the
// loop thread. Close is single-shot: the connection reports its reason to
// the host exactly once, and the host destroys it (no member may be
// touched after OnClose fires).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "server/event_loop.h"
#include "server/frame.h"
#include "server/frame_queue.h"

namespace reo {

class Connection;

/// Outcome of dispatching one frame to the host.
///
/// The synchronous shape (`deferred == false`) ships `response`
/// immediately, preserving the original single-threaded contract. The
/// deferred shape is the cross-shard hook: the host parked the request
/// (e.g. forwarded it to another shard's loop) and will deliver the
/// response later via Connection::Complete() with the token the
/// connection assigned to this frame (Connection::last_dispatch_token()).
/// Responses always flush in request order regardless of completion
/// order. A `barrier` result additionally stalls dispatch of every
/// later pipelined frame on this connection until it completes — the
/// ordering fence for fan-out ops like FORMAT.
struct FrameResult {
  FramePayload response;  ///< shipped now (deferred == false); empty = none
  bool deferred = false;
  bool barrier = false;  ///< only meaningful with deferred == true
};

/// Server-side callbacks a Connection drives. OnClose hands ownership
/// back: the host is expected to destroy the connection.
class ConnectionHost {
 public:
  virtual ~ConnectionHost() = default;

  /// A complete, CRC-verified frame arrived; returns the response payload
  /// to ship back as scatter-gather parts (all-empty = no response), or a
  /// deferred marker (see FrameResult). `payload` views the connection's
  /// reassembly buffer in place (no copy) and is only valid for the
  /// duration of the call — decode it, don't retain it.
  virtual FrameResult OnFrame(Connection& conn,
                              std::span<const uint8_t> payload) = 0;

  /// The stream produced a corrupt frame (CRC mismatch) or lost framing
  /// (bad magic / oversized length). The connection closes right after;
  /// this hook exists so the corruption is counted and logged, never
  /// silently swallowed.
  virtual void OnCorruptFrame(Connection& conn, FrameStatus status) = 0;

  /// Raw byte accounting (called per successful read/write batch).
  virtual void OnBytes(uint64_t bytes_in, uint64_t bytes_out) = 0;

  /// Terminal notification; the host destroys `conn`.
  virtual void OnClose(Connection& conn, std::string_view reason) = 0;
};

struct ConnectionConfig {
  /// Pending response bytes above which the connection stops reading
  /// (and stops executing further pipelined frames).
  size_t write_high_watermark = 4u << 20;
  /// Hard cap: a peer that will not drain its responses gets closed.
  size_t write_hard_limit = 64u << 20;
  /// Close connections idle (no complete frame) this long. 0 = never.
  uint64_t idle_timeout_ms = 60'000;
  size_t max_frame_payload = kMaxFramePayload;
  /// Deferred (cross-shard) responses outstanding above which the
  /// connection stops dispatching further pipelined frames — bounds the
  /// per-connection forwarding window the same way the write watermark
  /// bounds response bytes.
  size_t max_inflight = 128;
};

class Connection {
 public:
  /// Takes ownership of `fd` (nonblocking). Registers with `loop`.
  /// `pool` recycles frame-metadata blocks across the host's connections;
  /// it must outlive the connection.
  Connection(int fd, uint64_t id, EventLoop& loop, ConnectionHost& host,
             ConnectionConfig config, std::string peer, FrameMetaPool& pool);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  uint64_t id() const { return id_; }
  const std::string& peer() const { return peer_; }
  int fd() const { return fd_; }

  /// Bytes of response data accepted but not yet written to the socket.
  size_t pending_write_bytes() const { return out_.pending_bytes(); }

  /// Frames decoded and dispatched on this connection.
  uint64_t frames_handled() const { return frames_handled_; }

  /// Token of the frame currently being dispatched (valid only inside
  /// ConnectionHost::OnFrame); a host returning deferred keeps it to
  /// Complete() the frame later.
  uint64_t last_dispatch_token() const { return dispatch_token_; }

  /// Deferred responses not yet completed.
  size_t inflight() const { return slots_.size(); }

  /// Delivers the response for a deferred frame. Must run on the loop
  /// thread (cross-shard completions arrive via EventLoop::Post). The
  /// response is queued in request order: it flushes once every earlier
  /// frame's response has been produced. May destroy the connection
  /// (flush failure / drain completion) — callers must not touch it
  /// afterwards.
  void Complete(uint64_t token, FramePayload response);

  /// Enters drain mode: one final read pass (requests already sent by
  /// the peer count as in-flight), then stop reading, finish dispatching
  /// every buffered frame, flush the responses, and close ("drained").
  /// Idempotent.
  void BeginDrain();

  bool draining() const { return draining_; }

 private:
  void OnReady(uint32_t events);
  /// Reads until EAGAIN / EOF / backpressure; returns false on fatal error.
  bool DoRead();
  /// Dispatches buffered frames until backpressure or exhaustion.
  bool ProcessFrames();
  /// Moves the contiguous completed prefix of slots_ into the write
  /// queue; returns false on write-queue overflow (connection failed).
  bool FlushSlots();
  /// Writes pending bytes until EAGAIN; returns false on fatal error.
  bool DoWrite();
  void UpdateInterest();
  void ArmIdleTimer();
  /// Records the close reason (first wins) and schedules teardown.
  void Fail(std::string_view reason);
  /// Final step of every event: reports close to the host (which deletes
  /// `this`) if a reason was recorded. Nothing may run after it.
  void FinishEvent();

  int fd_;
  uint64_t id_;
  EventLoop& loop_;
  ConnectionHost& host_;
  ConnectionConfig config_;
  std::string peer_;

  FrameDecoder decoder_;
  FrameQueue out_;  ///< framed responses: pooled metadata + moved payloads
  uint32_t interest_ = 0;
  bool draining_ = false;
  bool closing_ = false;
  std::string close_reason_;
  uint64_t frames_handled_ = 0;
  TimerId idle_timer_ = 0;

  /// In-order response slots. Only frames dispatched while responses are
  /// outstanding (or themselves deferred) occupy a slot; the common
  /// synchronous case bypasses the deque entirely.
  struct Slot {
    uint64_t token = 0;
    bool done = false;
    FramePayload response;
  };
  std::deque<Slot> slots_;
  uint64_t next_token_ = 1;
  uint64_t dispatch_token_ = 0;
  uint64_t stall_token_ = 0;  ///< nonzero: barrier op pending, no dispatch
};

}  // namespace reo
