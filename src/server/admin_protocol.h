// In-band ADMIN commands: STATS / SERIES / EVENTS / HEALTH served on the
// same CRC32C-framed TCP stream as data commands. An admin request is one
// framed payload whose leading magic differs from the OSD command magic,
// so the server dispatches per frame with a single u32 peek and an admin
// poll never perturbs data-path ordering on the connection.
//
// Request payload (little-endian, fixed 10 bytes):
//   u32 magic "REOA" | u8 op | u32 arg | u8 reserved (must be 0)
// `arg` scopes the reply: SERIES = newest windows wanted (0 = all
// retained), EVENTS = newest events wanted (0 = all retained); STATS and
// HEALTH ignore it. Strict decode: trailing bytes or a nonzero reserved
// byte reject the frame (the reserved byte is the compatibility hinge —
// old servers refuse new-format requests instead of misreading them).
//
// Response payload:
//   u32 magic "REOS" | u8 status (0 = ok) | u64 json_len | json bytes
// The JSON body is one of the versioned schemas ("reo.stats.v1" =
// MetricSnapshot::ToJson, "reo.series.v1", "reo.events.v1",
// "reo.health.v1"); on status != 0 it is {"error":"..."}.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace reo {

inline constexpr uint32_t kAdminCommandMagic = 0x52454F41;   // "REOA"
inline constexpr uint32_t kAdminResponseMagic = 0x52454F53;  // "REOS"

enum class AdminOp : uint8_t {
  kStats = 0,   ///< full MetricSnapshot JSON
  kSeries = 1,  ///< TimeSeriesRing JSON (arg = max windows, 0 = all)
  kEvents = 2,  ///< EventLog JSON (arg = max events, 0 = all)
  kHealth = 3,  ///< liveness summary JSON
  kOwners = 4,  ///< cluster directory dump ("reo.owners.v1")
};

constexpr std::string_view to_string(AdminOp op) {
  switch (op) {
    case AdminOp::kStats: return "stats";
    case AdminOp::kSeries: return "series";
    case AdminOp::kEvents: return "events";
    case AdminOp::kHealth: return "health";
    case AdminOp::kOwners: return "owners";
  }
  return "unknown";
}

struct AdminCommand {
  AdminOp op = AdminOp::kStats;
  uint32_t arg = 0;
};

struct AdminResponse {
  uint8_t status = 0;  ///< 0 = ok; nonzero carries {"error":...} JSON
  std::string json;
};

/// True when a framed payload is an admin request (vs an OSD command):
/// the one-u32 dispatch peek OsdServer::OnFrame uses.
bool IsAdminFrame(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeAdminCommand(const AdminCommand& cmd);
Result<AdminCommand> DecodeAdminCommand(std::span<const uint8_t> wire);

std::vector<uint8_t> EncodeAdminResponse(const AdminResponse& resp);
Result<AdminResponse> DecodeAdminResponse(std::span<const uint8_t> wire);

}  // namespace reo
