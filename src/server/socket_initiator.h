// SocketInitiator: the client end of the real network path.
//
// Mirrors OsdTransport's interface shape — Roundtrip(command) ->
// response, stats(), AttachTelemetry() — but ships the same encoded
// bytes over a TCP socket to an OsdServer instead of a simulated
// NetworkLink. Blocking IO: the load generator and tests run one
// initiator per closed-loop worker. Send()/Receive() are exposed
// separately so callers can pipeline several commands onto the wire
// before collecting responses (the graceful-drain test depends on it).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "osd/osd_target.h"
#include "osd/transport.h"
#include "server/admin_protocol.h"
#include "server/frame.h"
#include "telemetry/metric_registry.h"

namespace reo {

/// Wire counters for one socket session: the simulated transport's
/// counters plus the framing-level corruption the real path can see.
struct SocketInitiatorStats : TransportStats {
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t crc_errors = 0;      ///< response frames failing CRC32C
  uint64_t frame_errors = 0;    ///< lost framing (bad magic / oversized)
  uint64_t timeouts = 0;        ///< connect/receive deadline expiries
  uint64_t reconnects = 0;      ///< sessions re-established by Roundtrip
  uint64_t admin_commands = 0;  ///< in-band ADMIN round-trips issued
};

/// Partial-failure posture of one initiator session. The defaults keep the
/// historical behavior (no receive deadline, no automatic reconnect) except
/// that connect() no longer blocks forever on an unresponsive host.
struct SocketInitiatorConfig {
  /// Give up on connect() after this long. 0 = block indefinitely.
  uint32_t connect_timeout_ms = 5000;
  /// Give up on a response after this long (SO_RCVTIMEO). 0 = wait forever.
  uint32_t receive_timeout_ms = 0;
  /// Transparent reconnect+resend attempts in Roundtrip, applied only to
  /// idempotent reads (kRead/kGetAttr/kList*): a write that died mid-flight
  /// may or may not have been applied, so it is never replayed blindly.
  uint32_t max_retries = 0;
  /// Base backoff between reconnect attempts (real sleep, jittered ±50%).
  uint32_t retry_backoff_ms = 50;
  /// Ceiling on any single reconnect sleep, jitter included. Without the
  /// cap the doubling makes deep retry counts sleep for minutes — and N
  /// clients hammering one dead node would synchronize on the overflow
  /// wraparound. 0 disables the cap.
  uint32_t retry_backoff_max_ms = 2000;
  /// Jitter seed, so concurrent workers don't reconnect in lockstep.
  uint64_t seed = 1;
};

/// Sleep before reconnect-retry number `retry` (0-based), in ms:
/// `retry_backoff_ms * 2^retry`, jittered ±50% (retry.h convention),
/// saturating at `retry_backoff_max_ms`. Exposed for the bound tests.
uint32_t ReconnectBackoffMs(const SocketInitiatorConfig& config,
                            uint32_t retry, Pcg32& rng);

class SocketInitiator {
 public:
  SocketInitiator() = default;
  explicit SocketInitiator(const SocketInitiatorConfig& config)
      : config_(config), retry_rng_(config.seed, /*stream=*/0x50c) {}
  ~SocketInitiator();

  SocketInitiator(const SocketInitiator&) = delete;
  SocketInitiator& operator=(const SocketInitiator&) = delete;
  SocketInitiator(SocketInitiator&& other) noexcept;
  SocketInitiator& operator=(SocketInitiator&& other) noexcept;

  /// Connects to `host`:`port` (IPv4 dotted quad or "localhost").
  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one command and waits for its response. On any transport
  /// failure returns a response with sense kFail (matching OsdTransport's
  /// contract); the session is closed. With `max_retries` configured,
  /// idempotent reads transparently reconnect and resend first.
  OsdResponse Roundtrip(const OsdCommand& command);

  /// Pipelining: ships one command without waiting.
  Status Send(const OsdCommand& command);
  /// Receives the next response frame (blocking).
  Result<OsdResponse> Receive();

  /// Sends one in-band ADMIN command (STATS / SERIES / EVENTS / HEALTH)
  /// and waits for its JSON reply. `arg` scopes SERIES and EVENTS replies
  /// to the newest N windows/events (0 = all retained). Must not be
  /// interleaved with pipelined Send()s still awaiting Receive() — the
  /// wire answers strictly in order.
  Result<AdminResponse> AdminRoundtrip(AdminOp op, uint32_t arg = 0);

  const SocketInitiatorStats& stats() const { return stats_; }

  /// Registers wire-level metrics ("initiator.*").
  void AttachTelemetry(MetricRegistry& registry);

 private:
  /// One gathered sendmsg of header + payload + CRC trailer: the frame
  /// goes out of the encode buffer in place, never copied into a staging
  /// vector.
  Status SendFramed(std::span<const uint8_t> payload);

  /// Blocks for the next intact framed payload. The returned view stays
  /// valid until the decoder's next Feed() (i.e. the next receive).
  Result<std::span<const uint8_t>> ReceiveFrame();

  int fd_ = -1;
  SocketInitiatorConfig config_;
  Pcg32 retry_rng_{1, 0x50c};
  std::string host_;    ///< remembered for Roundtrip reconnects
  uint16_t port_ = 0;
  FrameDecoder decoder_;
  SocketInitiatorStats stats_;

  // Telemetry (null when un-attached).
  Counter* tel_commands_ = nullptr;
  Counter* tel_bytes_sent_ = nullptr;
  Counter* tel_bytes_received_ = nullptr;
  Counter* tel_decode_errors_ = nullptr;
  Counter* tel_crc_errors_ = nullptr;
  Counter* tel_frame_errors_ = nullptr;
  Counter* tel_timeouts_ = nullptr;
  Counter* tel_reconnects_ = nullptr;
};

}  // namespace reo
