// SocketInitiator: the client end of the real network path.
//
// Mirrors OsdTransport's interface shape — Roundtrip(command) ->
// response, stats(), AttachTelemetry() — but ships the same encoded
// bytes over a TCP socket to an OsdServer instead of a simulated
// NetworkLink. Blocking IO: the load generator and tests run one
// initiator per closed-loop worker. Send()/Receive() are exposed
// separately so callers can pipeline several commands onto the wire
// before collecting responses (the graceful-drain test depends on it).
#pragma once

#include <cstdint>
#include <string>

#include "osd/osd_target.h"
#include "osd/transport.h"
#include "server/frame.h"
#include "telemetry/metric_registry.h"

namespace reo {

/// Wire counters for one socket session: the simulated transport's
/// counters plus the framing-level corruption the real path can see.
struct SocketInitiatorStats : TransportStats {
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t crc_errors = 0;    ///< response frames failing CRC32C
  uint64_t frame_errors = 0;  ///< lost framing (bad magic / oversized)
};

class SocketInitiator {
 public:
  SocketInitiator() = default;
  ~SocketInitiator();

  SocketInitiator(const SocketInitiator&) = delete;
  SocketInitiator& operator=(const SocketInitiator&) = delete;
  SocketInitiator(SocketInitiator&& other) noexcept;
  SocketInitiator& operator=(SocketInitiator&& other) noexcept;

  /// Connects to `host`:`port` (IPv4 dotted quad or "localhost").
  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one command and waits for its response. On any transport
  /// failure returns a response with sense kFail (matching OsdTransport's
  /// contract); the session is closed.
  OsdResponse Roundtrip(const OsdCommand& command);

  /// Pipelining: ships one command without waiting.
  Status Send(const OsdCommand& command);
  /// Receives the next response frame (blocking).
  Result<OsdResponse> Receive();

  const SocketInitiatorStats& stats() const { return stats_; }

  /// Registers wire-level metrics ("initiator.*").
  void AttachTelemetry(MetricRegistry& registry);

 private:
  Status SendBytes(const uint8_t* data, size_t len);

  int fd_ = -1;
  FrameDecoder decoder_;
  SocketInitiatorStats stats_;

  // Telemetry (null when un-attached).
  Counter* tel_commands_ = nullptr;
  Counter* tel_bytes_sent_ = nullptr;
  Counter* tel_bytes_received_ = nullptr;
  Counter* tel_decode_errors_ = nullptr;
  Counter* tel_crc_errors_ = nullptr;
  Counter* tel_frame_errors_ = nullptr;
};

}  // namespace reo
