#include "server/socket_initiator.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace reo {

SocketInitiator::~SocketInitiator() { Close(); }

SocketInitiator::SocketInitiator(SocketInitiator&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      stats_(other.stats_),
      tel_commands_(other.tel_commands_),
      tel_bytes_sent_(other.tel_bytes_sent_),
      tel_bytes_received_(other.tel_bytes_received_),
      tel_decode_errors_(other.tel_decode_errors_),
      tel_crc_errors_(other.tel_crc_errors_),
      tel_frame_errors_(other.tel_frame_errors_) {}

SocketInitiator& SocketInitiator::operator=(SocketInitiator&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    stats_ = other.stats_;
    tel_commands_ = other.tel_commands_;
    tel_bytes_sent_ = other.tel_bytes_sent_;
    tel_bytes_received_ = other.tel_bytes_received_;
    tel_decode_errors_ = other.tel_decode_errors_;
    tel_crc_errors_ = other.tel_crc_errors_;
    tel_frame_errors_ = other.tel_frame_errors_;
  }
  return *this;
}

void SocketInitiator::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void SocketInitiator::AttachTelemetry(MetricRegistry& registry) {
  tel_commands_ = &registry.GetCounter("initiator.commands");
  tel_bytes_sent_ = &registry.GetCounter("initiator.bytes_sent");
  tel_bytes_received_ = &registry.GetCounter("initiator.bytes_received");
  tel_decode_errors_ = &registry.GetCounter("initiator.decode_errors");
  tel_crc_errors_ = &registry.GetCounter("initiator.crc_errors");
  tel_frame_errors_ = &registry.GetCounter("initiator.frame_errors");
}

Status SocketInitiator::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status{ErrorCode::kInternal,
                  std::string("socket: ") + std::strerror(errno)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string& ip = host == "localhost" ? std::string("127.0.0.1") : host;
  if (inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status{ErrorCode::kInvalidArgument, "bad host " + host};
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st{ErrorCode::kUnavailable,
              std::string("connect: ") + std::strerror(errno)};
    Close();
    return st;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  decoder_ = FrameDecoder();
  return Status::Ok();
}

Status SocketInitiator::SendBytes(const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status{ErrorCode::kUnavailable,
                  std::string("send: ") + std::strerror(errno)};
  }
  stats_.bytes_sent += len;
  Inc(tel_bytes_sent_, len);
  return Status::Ok();
}

Status SocketInitiator::Send(const OsdCommand& command) {
  if (fd_ < 0) return Status{ErrorCode::kUnavailable, "not connected"};
  ++stats_.commands;
  Inc(tel_commands_);
  std::vector<uint8_t> frame = EncodeFrame(EncodeCommand(command));
  REO_RETURN_IF_ERROR(SendBytes(frame.data(), frame.size()));
  ++stats_.frames_sent;
  return Status::Ok();
}

Result<OsdResponse> SocketInitiator::Receive() {
  if (fd_ < 0) return Status{ErrorCode::kUnavailable, "not connected"};
  std::vector<uint8_t> payload;
  for (;;) {
    FrameStatus st = decoder_.Next(&payload);
    if (st == FrameStatus::kFrame) break;
    if (st == FrameStatus::kCrcMismatch) {
      ++stats_.crc_errors;
      Inc(tel_crc_errors_);
      Close();
      return Status{ErrorCode::kCorrupted, "response frame failed CRC32C"};
    }
    if (st != FrameStatus::kNeedMore) {
      ++stats_.frame_errors;
      Inc(tel_frame_errors_);
      Close();
      return Status{ErrorCode::kCorrupted, "response stream lost framing"};
    }
    uint8_t buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_received += static_cast<uint64_t>(n);
      Inc(tel_bytes_received_, static_cast<uint64_t>(n));
      decoder_.Feed({buf, static_cast<size_t>(n)});
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return Status{ErrorCode::kUnavailable,
                  n == 0 ? std::string("server closed the connection")
                         : std::string("recv: ") + std::strerror(errno)};
  }
  ++stats_.frames_received;
  auto resp = DecodeResponse(payload);
  if (!resp.ok()) {
    ++stats_.decode_errors;
    Inc(tel_decode_errors_);
    Close();
    return resp.status();
  }
  return resp;
}

OsdResponse SocketInitiator::Roundtrip(const OsdCommand& command) {
  Status sent = Send(command);
  if (sent.ok()) {
    auto resp = Receive();
    if (resp.ok()) return std::move(*resp);
  }
  OsdResponse err;
  err.sense = SenseCode::kFail;
  return err;
}

}  // namespace reo
