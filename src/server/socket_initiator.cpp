#include "server/socket_initiator.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

namespace reo {

SocketInitiator::~SocketInitiator() { Close(); }

SocketInitiator::SocketInitiator(SocketInitiator&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      config_(other.config_),
      retry_rng_(other.retry_rng_),
      host_(std::move(other.host_)),
      port_(other.port_),
      decoder_(std::move(other.decoder_)),
      stats_(other.stats_),
      tel_commands_(other.tel_commands_),
      tel_bytes_sent_(other.tel_bytes_sent_),
      tel_bytes_received_(other.tel_bytes_received_),
      tel_decode_errors_(other.tel_decode_errors_),
      tel_crc_errors_(other.tel_crc_errors_),
      tel_frame_errors_(other.tel_frame_errors_),
      tel_timeouts_(other.tel_timeouts_),
      tel_reconnects_(other.tel_reconnects_) {}

SocketInitiator& SocketInitiator::operator=(SocketInitiator&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    config_ = other.config_;
    retry_rng_ = other.retry_rng_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    decoder_ = std::move(other.decoder_);
    stats_ = other.stats_;
    tel_commands_ = other.tel_commands_;
    tel_bytes_sent_ = other.tel_bytes_sent_;
    tel_bytes_received_ = other.tel_bytes_received_;
    tel_decode_errors_ = other.tel_decode_errors_;
    tel_crc_errors_ = other.tel_crc_errors_;
    tel_frame_errors_ = other.tel_frame_errors_;
    tel_timeouts_ = other.tel_timeouts_;
    tel_reconnects_ = other.tel_reconnects_;
  }
  return *this;
}

void SocketInitiator::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void SocketInitiator::AttachTelemetry(MetricRegistry& registry) {
  tel_commands_ = &registry.GetCounter("initiator.commands");
  tel_bytes_sent_ = &registry.GetCounter("initiator.bytes_sent");
  tel_bytes_received_ = &registry.GetCounter("initiator.bytes_received");
  tel_decode_errors_ = &registry.GetCounter("initiator.decode_errors");
  tel_crc_errors_ = &registry.GetCounter("initiator.crc_errors");
  tel_frame_errors_ = &registry.GetCounter("initiator.frame_errors");
  tel_timeouts_ = &registry.GetCounter("initiator.timeouts");
  tel_reconnects_ = &registry.GetCounter("initiator.reconnects");
}

Status SocketInitiator::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status{ErrorCode::kInternal,
                  std::string("socket: ") + std::strerror(errno)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string& ip = host == "localhost" ? std::string("127.0.0.1") : host;
  if (inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status{ErrorCode::kInvalidArgument, "bad host " + host};
  }
  if (config_.connect_timeout_ms > 0) {
    // Bounded connect: non-blocking connect, poll for writability, then
    // restore blocking mode for the data path.
    int flags = fcntl(fd_, F_GETFL, 0);
    (void)fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd_, POLLOUT, 0};
      int pr = poll(&pfd, 1, static_cast<int>(config_.connect_timeout_ms));
      if (pr == 0) {
        ++stats_.timeouts;
        Inc(tel_timeouts_);
        Close();
        return Status{ErrorCode::kIoError, "connect timed out"};
      }
      int err = pr < 0 ? errno : 0;
      if (pr > 0) {
        socklen_t len = sizeof(err);
        (void)getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      }
      if (err != 0) {
        Status st{ErrorCode::kUnavailable,
                  std::string("connect: ") + std::strerror(err)};
        Close();
        return st;
      }
    } else if (rc != 0) {
      Status st{ErrorCode::kUnavailable,
                std::string("connect: ") + std::strerror(errno)};
      Close();
      return st;
    }
    (void)fcntl(fd_, F_SETFL, flags);
  } else if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
             0) {
    Status st{ErrorCode::kUnavailable,
              std::string("connect: ") + std::strerror(errno)};
    Close();
    return st;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (config_.receive_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = config_.receive_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(config_.receive_timeout_ms % 1000) * 1000;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  host_ = host;
  port_ = port;
  decoder_ = FrameDecoder();
  return Status::Ok();
}

Status SocketInitiator::SendFramed(std::span<const uint8_t> payload) {
  uint8_t header[kFrameHeaderBytes];
  uint8_t trailer[kFrameTrailerBytes];
  EncodeFrameHeader(header, payload.size());
  EncodeFrameTrailer(trailer, payload);
  iovec iov[3] = {
      {header, sizeof(header)},
      {const_cast<uint8_t*>(payload.data()), payload.size()},
      {trailer, sizeof(trailer)},
  };
  size_t total = FramedSize(payload.size());
  size_t off = 0;
  size_t first = 0;
  while (off < total) {
    // Advance the iovec window past fully sent entries; resume mid-entry
    // after a partial send.
    size_t skip = off;
    while (skip >= iov[first].iov_len) {
      skip -= iov[first].iov_len;
      ++first;
    }
    iovec window[3];
    size_t n_iov = 0;
    for (size_t i = first; i < 3; ++i, ++n_iov) window[n_iov] = iov[i];
    window[0].iov_base = static_cast<uint8_t*>(window[0].iov_base) + skip;
    window[0].iov_len -= skip;
    msghdr msg{};
    msg.msg_iov = window;
    msg.msg_iovlen = n_iov;
    ssize_t n = sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status{ErrorCode::kUnavailable,
                  std::string("send: ") + std::strerror(errno)};
  }
  stats_.bytes_sent += total;
  Inc(tel_bytes_sent_, total);
  return Status::Ok();
}

Status SocketInitiator::Send(const OsdCommand& command) {
  if (fd_ < 0) return Status{ErrorCode::kUnavailable, "not connected"};
  ++stats_.commands;
  Inc(tel_commands_);
  REO_RETURN_IF_ERROR(SendFramed(EncodeCommand(command)));
  ++stats_.frames_sent;
  return Status::Ok();
}

Result<std::span<const uint8_t>> SocketInitiator::ReceiveFrame() {
  if (fd_ < 0) return Status{ErrorCode::kUnavailable, "not connected"};
  std::span<const uint8_t> payload;
  for (;;) {
    // The view stays valid until the next Feed(); the response is decoded
    // from it in place below, before any further read.
    FrameStatus st = decoder_.NextView(&payload);
    if (st == FrameStatus::kFrame) break;
    if (st == FrameStatus::kCrcMismatch) {
      ++stats_.crc_errors;
      Inc(tel_crc_errors_);
      Close();
      return Status{ErrorCode::kCorrupted, "response frame failed CRC32C"};
    }
    if (st != FrameStatus::kNeedMore) {
      ++stats_.frame_errors;
      Inc(tel_frame_errors_);
      Close();
      return Status{ErrorCode::kCorrupted, "response stream lost framing"};
    }
    uint8_t buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_received += static_cast<uint64_t>(n);
      Inc(tel_bytes_received_, static_cast<uint64_t>(n));
      decoder_.Feed({buf, static_cast<size_t>(n)});
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO deadline expired: the session state is unknown (a
      // response may still be in flight), so drop the connection.
      ++stats_.timeouts;
      Inc(tel_timeouts_);
      Close();
      return Status{ErrorCode::kIoError, "receive timed out"};
    }
    Close();
    return Status{ErrorCode::kUnavailable,
                  n == 0 ? std::string("server closed the connection")
                         : std::string("recv: ") + std::strerror(errno)};
  }
  ++stats_.frames_received;
  return payload;
}

Result<OsdResponse> SocketInitiator::Receive() {
  auto payload = ReceiveFrame();
  if (!payload.ok()) return payload.status();
  auto resp = DecodeResponse(*payload);
  if (!resp.ok()) {
    ++stats_.decode_errors;
    Inc(tel_decode_errors_);
    Close();
    return resp.status();
  }
  return resp;
}

Result<AdminResponse> SocketInitiator::AdminRoundtrip(AdminOp op,
                                                      uint32_t arg) {
  if (fd_ < 0) return Status{ErrorCode::kUnavailable, "not connected"};
  ++stats_.admin_commands;
  REO_RETURN_IF_ERROR(SendFramed(EncodeAdminCommand(AdminCommand{op, arg})));
  ++stats_.frames_sent;
  auto payload = ReceiveFrame();
  if (!payload.ok()) return payload.status();
  auto resp = DecodeAdminResponse(*payload);
  if (!resp.ok()) {
    ++stats_.decode_errors;
    Inc(tel_decode_errors_);
    Close();
    return resp.status();
  }
  return resp;
}

namespace {

/// Safe to resend blindly: re-executing on the target changes nothing.
bool IdempotentRead(OsdOp op) {
  return op == OsdOp::kRead || op == OsdOp::kGetAttr || op == OsdOp::kList ||
         op == OsdOp::kListCollection;
}

}  // namespace

uint32_t ReconnectBackoffMs(const SocketInitiatorConfig& config,
                            uint32_t retry, Pcg32& rng) {
  // Cap the exponent before multiplying: 2^retry overflows every integer
  // width long before max_retries runs out, and the wraparound would
  // synchronize the very reconnect storm the jitter exists to spread.
  double base = static_cast<double>(config.retry_backoff_ms) *
                std::pow(2.0, std::min(retry, 30u));
  double jitter = 0.5 + rng.NextDouble();  // [0.5, 1.5)
  double delay = base * jitter;
  double cap = static_cast<double>(config.retry_backoff_max_ms);
  if (cap > 0.0 && delay > cap) delay = cap;
  // Uncapped configs still must not overflow the uint32 (casting an
  // out-of-range double is undefined behavior, not a saturation).
  constexpr double kMax = 4294967295.0;
  if (delay > kMax) delay = kMax;
  return delay > 0.0 ? static_cast<uint32_t>(delay) : 0u;
}

OsdResponse SocketInitiator::Roundtrip(const OsdCommand& command) {
  auto attempt = [&]() -> Result<OsdResponse> {
    REO_RETURN_IF_ERROR(Send(command));
    return Receive();
  };
  auto resp = attempt();
  if (!resp.ok() && config_.max_retries > 0 && IdempotentRead(command.op) &&
      !host_.empty()) {
    // The connection died between request and response. For idempotent
    // reads, reconnect (jittered exponential backoff) and resend; a write
    // may have been applied before the cut, so it is never replayed here.
    for (uint32_t r = 0; r < config_.max_retries && !resp.ok(); ++r) {
      uint32_t sleep_ms = ReconnectBackoffMs(config_, r, retry_rng_);
      if (sleep_ms > 0) (void)poll(nullptr, 0, static_cast<int>(sleep_ms));
      if (!Connect(host_, port_).ok()) continue;
      ++stats_.reconnects;
      Inc(tel_reconnects_);
      resp = attempt();
    }
  }
  if (resp.ok()) return std::move(*resp);
  OsdResponse err;
  err.sense = SenseCode::kFail;
  return err;
}

}  // namespace reo
