#include "server/osd_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "osd/transport.h"
#include "server/admin_protocol.h"
#include "telemetry/json_util.h"

namespace reo {
namespace {

std::string PeerName(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

OsdServer::OsdServer(OsdTarget& target, OsdServerConfig config)
    : target_(target), config_(std::move(config)) {
  config_.connection.idle_timeout_ms = config_.idle_timeout_ms;
}

OsdServer::~OsdServer() {
  connections_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
}

SimTime OsdServer::NowNs() const {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * kNsPerSec +
         static_cast<SimTime>(ts.tv_nsec);
}

Status OsdServer::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status{ErrorCode::kInternal,
                  std::string("socket: ") + std::strerror(errno)};
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status{ErrorCode::kInvalidArgument,
                  "bad bind address " + config_.bind_address};
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status{ErrorCode::kUnavailable,
                  std::string("bind: ") + std::strerror(errno)};
  }
  if (listen(listen_fd_, config_.backlog) != 0) {
    return Status{ErrorCode::kInternal,
                  std::string("listen: ") + std::strerror(errno)};
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status{ErrorCode::kInternal,
                  std::string("getsockname: ") + std::strerror(errno)};
  }
  port_ = ntohs(addr.sin_port);
  return Status::Ok();
}

void OsdServer::AttachTelemetry(MetricRegistry& registry) {
  tel_accepted_ = &registry.GetCounter("server.connections.accepted");
  tel_closed_ = &registry.GetCounter("server.connections.closed");
  tel_rejected_ = &registry.GetCounter("server.connections.rejected");
  tel_requests_ = &registry.GetCounter("server.requests");
  tel_bytes_in_ = &registry.GetCounter("server.bytes_in");
  tel_bytes_out_ = &registry.GetCounter("server.bytes_out");
  tel_frame_errors_ = &registry.GetCounter("server.frame_errors");
  tel_crc_errors_ = &registry.GetCounter("server.crc_errors");
  tel_decode_errors_ = &registry.GetCounter("server.decode_errors");
  tel_admin_requests_ = &registry.GetCounter("server.admin.requests");
  tel_admin_errors_ = &registry.GetCounter("server.admin.errors");
  tel_active_ = &registry.GetGauge("server.connections.active");
  tel_lat_read_ = &registry.GetHistogram("server.latency.read_us");
  tel_lat_write_ = &registry.GetHistogram("server.latency.write_us");
  tel_lat_other_ = &registry.GetHistogram("server.latency.other_us");
}

void OsdServer::AttachAdmin(MetricRegistry* registry, TimeSeriesRing* series) {
  admin_registry_ = registry;
  series_ = series;
}

void OsdServer::Run() {
  REO_CHECK(listen_fd_ >= 0);  // Listen() first
  started_ns_ = NowNs();
  Status st = loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) {
    OnAcceptReady();
  });
  REO_CHECK(st.ok());
  // Latch drain requests (RequestDrain may fire from a signal handler:
  // it only sets the flag and wakes the loop) via a cheap poll timer.
  loop_.AddTimer(20, [this] { PollDrain(); });
  if (series_ != nullptr) {
    series_->Advance(started_ns_);  // pin the ring's epoch to serving start
    RollSeries();
  }
  loop_.Run();
}

void OsdServer::RollSeries() {
  // Re-armed one-shot, like PollDrain: close due windows at the ring's
  // own cadence so SERIES answers stay fresh even with no pollers.
  uint64_t ms = series_->window_ns() / 1'000'000;
  if (ms == 0) ms = 1;
  loop_.AddTimer(ms, [this] {
    series_->Advance(NowNs());
    if (!loop_.stopped()) RollSeries();
  });
}

void OsdServer::PollDrain() {
  if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
    BeginDrainOnLoop();
    return;
  }
  if (!loop_.stopped()) loop_.AddTimer(20, [this] { PollDrain(); });
}

void OsdServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  loop_.Wake();
}

void OsdServer::BeginDrainOnLoop() {
  draining_ = true;
  Emit(events_, NowNs(), EventSeverity::kInfo, "server.drain",
       "graceful shutdown requested",
       {{"active", std::to_string(connections_.size())}});
  // Stop accepting: close the listening socket outright so clients see
  // connection-refused instead of a hung handshake.
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Snapshot ids: BeginDrain can complete (and erase) connections inline.
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = connections_.find(id);
    if (it != connections_.end()) it->second->BeginDrain();
  }
  if (!connections_.empty()) {
    loop_.AddTimer(config_.drain_timeout_ms, [this] {
      if (connections_.empty()) return;
      Emit(events_, NowNs(), EventSeverity::kWarn, "server.drain_timeout",
           "force-closing connections past the drain deadline",
           {{"remaining", std::to_string(connections_.size())}});
      stats_.closed += connections_.size();
      Inc(tel_closed_, connections_.size());
      connections_.clear();
      Set(tel_active_, 0);
      MaybeFinishDrain();
    });
  }
  MaybeFinishDrain();
}

void OsdServer::MaybeFinishDrain() {
  if (draining_ && connections_.empty()) {
    if (config_.on_drained) config_.on_drained();
    Emit(events_, NowNs(), EventSeverity::kInfo, "server.drained",
         "all connections drained; stopping");
    loop_.Stop();
  }
}

void OsdServer::OnAcceptReady() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    int fd = accept4(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors (ECONNABORTED etc.): try next wake
    }
    if (connections_.size() >= config_.max_connections) {
      ++stats_.rejected;
      Inc(tel_rejected_);
      Emit(events_, NowNs(), EventSeverity::kWarn, "server.reject",
           "connection refused at max_connections",
           {{"peer", PeerName(addr)},
            {"max", std::to_string(config_.max_connections)}});
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_conn_id_++;
    ConnectionHost& host = *this;  // conversion is private outside members
    connections_.emplace(
        id, std::make_unique<Connection>(fd, id, loop_, host,
                                         config_.connection, PeerName(addr),
                                         frame_pool_));
    ++stats_.accepted;
    Inc(tel_accepted_);
    Set(tel_active_, static_cast<double>(connections_.size()));
    Emit(events_, NowNs(), EventSeverity::kDebug, "server.accept",
         "connection accepted",
         {{"peer", connections_[id]->peer()}, {"conn", std::to_string(id)}});
  }
}

FrameResult OsdServer::OnFrame(Connection& conn,
                               std::span<const uint8_t> payload) {
  // Admin frames ride the same framed transport but are not data
  // requests: dispatch them before the request counters so STATS polling
  // never skews server.requests or the derived per-op ratios.
  if (IsAdminFrame(payload)) {
    return FrameResult{HandleAdminFrame(conn, payload)};
  }
  ++stats_.requests;
  Inc(tel_requests_);
  auto decoded = DecodeCommand(payload);
  if (!decoded.ok()) {
    ++stats_.decode_errors;
    Inc(tel_decode_errors_);
    Emit(events_, NowNs(), EventSeverity::kWarn, "server.decode_error",
         "framed payload is not a valid OSD command",
         {{"peer", conn.peer()},
          {"bytes", std::to_string(payload.size())},
          {"error", std::string(decoded.status().message())}});
    OsdResponse err;
    err.sense = SenseCode::kFail;
    ++stats_.responses;
    EncodedResponseParts p = EncodeResponseParts(std::move(err));
    return FrameResult{FramePayload{std::move(p.head), std::move(p.body),
                                    std::move(p.tail)}};
  }
  // Device time starts when the command lands at the target, as with the
  // simulated link; the server stamps its own monotonic clock.
  SimTime start = NowNs();
  decoded->now = start;
  TraceOp root_op = decoded->op == OsdOp::kRead    ? TraceOp::kGet
                    : decoded->op == OsdOp::kWrite ? TraceOp::kPut
                                                   : TraceOp::kOsdCommand;
  // Root span and latency histogram share the same two clock stamps, so
  // stage.transport sums equal server.latency sums under sample_every=1.
  RequestTrace root(tracer_, trace_root_, root_op, start, decoded->id.oid);
  OsdResponse resp = target_.Execute(*decoded);
  SimTime end = NowNs();
  root.set_end(end);
  root.Finish();
  double service_us = static_cast<double>(end - start) / 1e3;
  switch (decoded->op) {
    case OsdOp::kRead: Observe(tel_lat_read_, service_us); break;
    case OsdOp::kWrite: Observe(tel_lat_write_, service_us); break;
    default: Observe(tel_lat_other_, service_us); break;
  }
  ++stats_.responses;
  // The bulk data buffer is moved through EncodeResponseParts into the
  // frame queue's body span — no payload copy between cache and kernel.
  EncodedResponseParts p = EncodeResponseParts(std::move(resp));
  return FrameResult{
      FramePayload{std::move(p.head), std::move(p.body), std::move(p.tail)}};
}

std::string OsdServer::HealthJson() const {
  const char* status =
      draining_ ? "draining"
      : (stats_.crc_errors + stats_.frame_errors + stats_.decode_errors > 0)
          ? "degraded"
          : "ok";
  std::string out = "{\"schema\":\"reo.health.v1\",\"status\":\"";
  out += status;
  out += "\",\"uptime_ms\":";
  out += JsonNum(started_ns_ ? static_cast<double>(NowNs() - started_ns_) / 1e6
                             : 0.0);
  out += ",\"port\":" + std::to_string(port_);
  if (cluster_ != nullptr) {
    out += ",\"node_id\":" + std::to_string(cluster_->local_node());
  }
  out += ",\"connections\":" + std::to_string(connections_.size());
  out += ",\"accepted\":" + std::to_string(stats_.accepted);
  out += ",\"requests\":" + std::to_string(stats_.requests);
  out += ",\"responses\":" + std::to_string(stats_.responses);
  out += ",\"crc_errors\":" + std::to_string(stats_.crc_errors);
  out += ",\"frame_errors\":" + std::to_string(stats_.frame_errors);
  out += ",\"decode_errors\":" + std::to_string(stats_.decode_errors);
  out += ",\"admin_requests\":" + std::to_string(stats_.admin_requests);
  out += ",\"admin_errors\":" + std::to_string(stats_.admin_errors);
  out += "}";
  return out;
}

FramePayload OsdServer::HandleAdminFrame(Connection& conn,
                                         std::span<const uint8_t> payload) {
  ++stats_.admin_requests;
  Inc(tel_admin_requests_);
  AdminResponse out;
  auto cmd = DecodeAdminCommand(payload);
  if (!cmd.ok()) {
    out.status = 1;
    out.json = "{\"error\":" +
               JsonString(std::string(cmd.status().message())) + "}";
    Emit(events_, NowNs(), EventSeverity::kWarn, "server.admin_error",
         "malformed admin request",
         {{"peer", conn.peer()},
          {"error", std::string(cmd.status().message())}});
  } else {
    switch (cmd->op) {
      case AdminOp::kStats:
        if (admin_registry_ != nullptr) {
          out.json = admin_registry_->Snapshot().ToJson();
        } else {
          out.status = 1;
          out.json = "{\"error\":\"no metric registry attached\"}";
        }
        break;
      case AdminOp::kSeries:
        if (series_ != nullptr) {
          // Close any windows that came due since the last roll so the
          // answer is current as of this frame.
          series_->Advance(NowNs());
          out.json = series_->ToJson(cmd->arg);
        } else {
          out.status = 1;
          out.json = "{\"error\":\"no time-series ring attached\"}";
        }
        break;
      case AdminOp::kEvents:
        out.json = events_ != nullptr
                       ? events_->ToJson(cmd->arg)
                       : "{\"schema\":\"reo.events.v1\",\"dropped\":0,"
                         "\"events\":[]}";
        break;
      case AdminOp::kHealth:
        out.json = HealthJson();
        break;
      case AdminOp::kOwners:
        if (cluster_ != nullptr) {
          out.json = cluster_->ToJson();
        } else {
          out.status = 1;
          out.json = "{\"error\":\"no cluster directory attached\"}";
        }
        break;
    }
  }
  if (out.status != 0) {
    ++stats_.admin_errors;
    Inc(tel_admin_errors_);
  }
  return FramePayload{EncodeAdminResponse(out), {}, {}};
}

void OsdServer::OnCorruptFrame(Connection& conn, FrameStatus status) {
  const char* kind = "bad_magic";
  if (status == FrameStatus::kCrcMismatch) {
    ++stats_.crc_errors;
    Inc(tel_crc_errors_);
    kind = "crc_mismatch";
  } else {
    ++stats_.frame_errors;
    Inc(tel_frame_errors_);
    if (status == FrameStatus::kOversized) kind = "oversized_length";
  }
  Emit(events_, NowNs(), EventSeverity::kWarn, "server.wire_corruption",
       "corrupt frame on connection; dropping it",
       {{"peer", conn.peer()},
        {"conn", std::to_string(conn.id())},
        {"kind", kind},
        {"frames_ok", std::to_string(conn.frames_handled())}});
}

void OsdServer::OnBytes(uint64_t bytes_in, uint64_t bytes_out) {
  stats_.bytes_in += bytes_in;
  stats_.bytes_out += bytes_out;
  Inc(tel_bytes_in_, bytes_in);
  Inc(tel_bytes_out_, bytes_out);
}

void OsdServer::OnClose(Connection& conn, std::string_view reason) {
  Emit(events_, NowNs(), EventSeverity::kDebug, "server.close",
       "connection closed",
       {{"peer", conn.peer()},
        {"conn", std::to_string(conn.id())},
        {"reason", std::string(reason)},
        {"frames", std::to_string(conn.frames_handled())}});
  ++stats_.closed;
  Inc(tel_closed_);
  connections_.erase(conn.id());  // destroys conn
  Set(tel_active_, static_cast<double>(connections_.size()));
  MaybeFinishDrain();
}

}  // namespace reo
