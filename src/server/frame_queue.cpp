#include "server/frame_queue.h"

#include "common/crc32c.h"

namespace reo {

FrameMetaPool::~FrameMetaPool() {
  while (free_ != nullptr) {
    FrameMeta* next = free_->next;
    delete free_;
    free_ = next;
  }
}

FrameMeta* FrameMetaPool::Get() {
  if (free_ != nullptr) {
    FrameMeta* meta = free_;
    free_ = meta->next;
    meta->next = nullptr;
    ++reused_;
    return meta;
  }
  ++allocated_;
  return new FrameMeta();
}

void FrameMetaPool::Put(FrameMeta* meta) {
  meta->next = free_;
  free_ = meta;
}

void FrameQueue::Push(std::vector<uint8_t> payload) {
  FramePayload parts;
  // The wire sees head‖body‖tail concatenated, so a single-buffer frame
  // can ride in `head` (body is the non-zeroing bulk type).
  parts.head = std::move(payload);
  Push(std::move(parts));
}

void FrameQueue::Push(FramePayload parts) {
  FrameMeta* meta = pool_->Get();
  size_t payload_bytes = parts.size();
  EncodeFrameHeader(meta->bytes, payload_bytes);
  // Seeded continuation: CRC over head‖body‖tail without concatenating.
  uint32_t crc = Crc32c(parts.head);
  crc = Crc32c(parts.body, crc);
  crc = Crc32c(parts.tail, crc);
  EncodeFrameTrailerFromCrc(meta->bytes + kFrameHeaderBytes, crc);
  size_t framed = FramedSize(payload_bytes);
  pending_bytes_ += framed;
  ++frames_pushed_;
  frames_.push_back(Entry{meta, std::move(parts), framed});
}

size_t FrameQueue::Gather(struct iovec* iov, size_t max) const {
  size_t n = 0;
  size_t skip = head_written_;
  for (const Entry& e : frames_) {
    if (n >= max) break;
    // Each frame is up to five spans on the wire: header, the payload's
    // head/body/tail parts, trailer. Empty parts are skipped.
    const struct {
      const uint8_t* base;
      size_t len;
    } parts[5] = {
        {e.meta->bytes, kFrameHeaderBytes},
        {e.parts.head.data(), e.parts.head.size()},
        {e.parts.body.data(), e.parts.body.size()},
        {e.parts.tail.data(), e.parts.tail.size()},
        {e.meta->bytes + kFrameHeaderBytes, kFrameTrailerBytes},
    };
    for (const auto& part : parts) {
      if (part.len == 0) continue;
      if (skip >= part.len) {
        skip -= part.len;
        continue;
      }
      if (n >= max) return n;
      iov[n].iov_base = const_cast<uint8_t*>(part.base) + skip;
      iov[n].iov_len = part.len - skip;
      skip = 0;
      ++n;
    }
  }
  return n;
}

void FrameQueue::Consume(size_t n) {
  pending_bytes_ -= n;
  head_written_ += n;
  while (!frames_.empty()) {
    size_t framed = frames_.front().framed_size;
    if (head_written_ < framed) break;
    head_written_ -= framed;
    pool_->Put(frames_.front().meta);
    frames_.pop_front();
  }
}

void FrameQueue::Clear() {
  for (Entry& e : frames_) pool_->Put(e.meta);
  frames_.clear();
  head_written_ = 0;
  pending_bytes_ = 0;
}

}  // namespace reo
