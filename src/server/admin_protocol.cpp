#include "server/admin_protocol.h"

namespace reo {
namespace {

constexpr size_t kRequestBytes = 4 + 1 + 4 + 1;

uint32_t ReadU32(std::span<const uint8_t> b, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(b[pos + static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

void PushU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PushU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

}  // namespace

bool IsAdminFrame(std::span<const uint8_t> payload) {
  return payload.size() >= 4 && ReadU32(payload, 0) == kAdminCommandMagic;
}

std::vector<uint8_t> EncodeAdminCommand(const AdminCommand& cmd) {
  std::vector<uint8_t> out;
  out.reserve(kRequestBytes);
  PushU32(out, kAdminCommandMagic);
  out.push_back(static_cast<uint8_t>(cmd.op));
  PushU32(out, cmd.arg);
  out.push_back(0);  // reserved
  return out;
}

Result<AdminCommand> DecodeAdminCommand(std::span<const uint8_t> wire) {
  if (wire.size() != kRequestBytes) {
    return Status{ErrorCode::kCorrupted, "admin request: wrong length"};
  }
  if (ReadU32(wire, 0) != kAdminCommandMagic) {
    return Status{ErrorCode::kCorrupted, "admin request: bad magic"};
  }
  AdminCommand cmd;
  uint8_t op = wire[4];
  if (op > static_cast<uint8_t>(AdminOp::kOwners)) {
    return Status{ErrorCode::kCorrupted, "admin request: unknown op"};
  }
  cmd.op = static_cast<AdminOp>(op);
  cmd.arg = ReadU32(wire, 5);
  if (wire[9] != 0) {
    return Status{ErrorCode::kCorrupted, "admin request: reserved byte set"};
  }
  return cmd;
}

std::vector<uint8_t> EncodeAdminResponse(const AdminResponse& resp) {
  std::vector<uint8_t> out;
  out.reserve(4 + 1 + 8 + resp.json.size());
  PushU32(out, kAdminResponseMagic);
  out.push_back(resp.status);
  PushU64(out, resp.json.size());
  out.insert(out.end(), resp.json.begin(), resp.json.end());
  return out;
}

Result<AdminResponse> DecodeAdminResponse(std::span<const uint8_t> wire) {
  if (wire.size() < 4 + 1 + 8) {
    return Status{ErrorCode::kCorrupted, "admin response: truncated header"};
  }
  if (ReadU32(wire, 0) != kAdminResponseMagic) {
    return Status{ErrorCode::kCorrupted, "admin response: bad magic"};
  }
  AdminResponse resp;
  resp.status = wire[4];
  uint64_t len = 0;
  for (int i = 0; i < 8; ++i) {
    len |= static_cast<uint64_t>(wire[5 + static_cast<size_t>(i)]) << (8 * i);
  }
  // Compare against bytes actually present (a hostile 64-bit length must
  // not wrap any pos+len arithmetic).
  if (len != wire.size() - (4 + 1 + 8)) {
    return Status{ErrorCode::kCorrupted, "admin response: wrong json length"};
  }
  resp.json.assign(reinterpret_cast<const char*>(wire.data()) + 13,
                   static_cast<size_t>(len));
  return resp;
}

}  // namespace reo
