#include "server/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace reo {
namespace {

/// Input-side buffering bound: always admits one maximum-size frame (or
/// the decoder could deadlock below the watermark), plus a read quantum.
size_t InputCap(const ConnectionConfig& c) {
  return FramedSize(c.max_frame_payload) + 64 * 1024;
}

/// iovec entries gathered per sendmsg (16 frames' worth of spans).
constexpr size_t kWriteIovBatch = 48;

}  // namespace

Connection::Connection(int fd, uint64_t id, EventLoop& loop,
                       ConnectionHost& host, ConnectionConfig config,
                       std::string peer, FrameMetaPool& pool)
    : fd_(fd),
      id_(id),
      loop_(loop),
      host_(host),
      config_(config),
      peer_(std::move(peer)),
      decoder_(config.max_frame_payload),
      out_(pool) {
  interest_ = EPOLLIN;
  Status st = loop_.Add(fd_, interest_, [this](uint32_t ev) { OnReady(ev); });
  if (!st.ok()) {
    closing_ = true;
    close_reason_ = st.to_string();
    // Tear down from the loop, not the constructor: the host must finish
    // inserting us into its connection table first.
    loop_.AddTimer(0, [this] { host_.OnClose(*this, close_reason_); });
    return;
  }
  ArmIdleTimer();
}

Connection::~Connection() {
  if (idle_timer_) loop_.CancelTimer(idle_timer_);
  loop_.Remove(fd_);
  close(fd_);
}

void Connection::ArmIdleTimer() {
  if (idle_timer_) loop_.CancelTimer(idle_timer_);
  idle_timer_ = 0;
  if (config_.idle_timeout_ms == 0) return;
  idle_timer_ = loop_.AddTimer(config_.idle_timeout_ms, [this] {
    idle_timer_ = 0;
    Fail("idle timeout");
    FinishEvent();
  });
}

void Connection::Fail(std::string_view reason) {
  if (!closing_) {
    closing_ = true;
    close_reason_ = reason;
  }
}

void Connection::FinishEvent() {
  if (closing_) host_.OnClose(*this, close_reason_);  // deletes this
}

void Connection::BeginDrain() {
  if (draining_ || closing_) return;
  // Final read pass: requests the peer already sent (sitting in the
  // kernel receive buffer) are still in-flight and get served; only
  // bytes arriving after this point are refused.
  if (!DoRead()) {
    draining_ = true;
    FinishEvent();
    return;
  }
  draining_ = true;
  if (!ProcessFrames()) {
    FinishEvent();
    return;
  }
  UpdateInterest();
}

void Connection::OnReady(uint32_t events) {
  if (closing_) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    Fail(events & EPOLLERR ? "socket error" : "peer hangup");
    FinishEvent();
    return;
  }
  if ((events & EPOLLIN) && !draining_ && !DoRead()) {
    FinishEvent();
    return;
  }
  // Both readable and writable events land here: Pump executes whatever
  // frames became decodable and flushes whatever became writable.
  if (!ProcessFrames()) {
    FinishEvent();
    return;
  }
  UpdateInterest();
  FinishEvent();
}

bool Connection::DoRead() {
  uint8_t buf[64 * 1024];
  for (;;) {
    if (pending_write_bytes() >= config_.write_high_watermark ||
        decoder_.buffered() >= InputCap(config_)) {
      break;  // backpressure: stop pulling bytes off the socket
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      host_.OnBytes(static_cast<uint64_t>(n), 0);
      decoder_.Feed({buf, static_cast<size_t>(n)});
      if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained the socket
      continue;
    }
    if (n == 0) {
      // Orderly shutdown from the peer: execute and answer what is
      // already buffered, then close (same path as a server drain).
      draining_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Fail("read error");
    return false;
  }
  return true;
}

bool Connection::ProcessFrames() {
  std::span<const uint8_t> payload;
  for (;;) {
    bool input_exhausted = true;
    bool deferred_blocked =
        stall_token_ != 0 || slots_.size() >= config_.max_inflight;
    if (!deferred_blocked &&
        pending_write_bytes() < config_.write_high_watermark) {
      FrameStatus st = decoder_.NextView(&payload);
      if (st == FrameStatus::kFrame) {
        ++frames_handled_;
        ArmIdleTimer();
        dispatch_token_ = next_token_++;
        FrameResult r = host_.OnFrame(*this, payload);
        if (r.deferred) {
          // Response arrives later via Complete(); hold its place so the
          // wire order matches the request order.
          slots_.push_back(Slot{dispatch_token_, false, {}});
          if (r.barrier) stall_token_ = dispatch_token_;
        } else if (!r.response.empty()) {
          if (slots_.empty()) {
            // The handler's buffer is shipped as-is: the queue frames it
            // with a pooled header/trailer block, no payload copy.
            out_.Push(std::move(r.response));
            if (pending_write_bytes() > config_.write_hard_limit) {
              Fail("write queue overflow");
              return false;
            }
          } else {
            // Earlier responses are still pending: queue behind them.
            slots_.push_back(
                Slot{dispatch_token_, true, std::move(r.response)});
          }
        }
        continue;  // keep executing the pipeline
      }
      if (st != FrameStatus::kNeedMore) {
        // Corruption or lost framing: surface it loudly, then drop.
        host_.OnCorruptFrame(*this, st);
        Fail(st == FrameStatus::kCrcMismatch ? "crc mismatch" : "bad framing");
        return false;
      }
    } else if (deferred_blocked) {
      input_exhausted = false;  // Complete() resumes dispatch
    } else {
      input_exhausted = false;  // stopped by backpressure, not input
    }
    if (!DoWrite()) return false;
    if (pending_write_bytes() >= config_.write_high_watermark) {
      return true;  // EPOLLOUT resumes us
    }
    if (deferred_blocked) return true;  // Complete() resumes us
    if (input_exhausted) {
      if (draining_ && pending_write_bytes() == 0 && slots_.empty()) {
        Fail("drained");
        return false;
      }
      return true;
    }
    // Backpressure cleared by the flush: loop and execute more frames.
  }
}

bool Connection::FlushSlots() {
  while (!slots_.empty() && slots_.front().done) {
    if (!slots_.front().response.empty()) {
      out_.Push(std::move(slots_.front().response));
    }
    slots_.pop_front();
    if (pending_write_bytes() > config_.write_hard_limit) {
      Fail("write queue overflow");
      return false;
    }
  }
  return true;
}

void Connection::Complete(uint64_t token, FramePayload response) {
  if (closing_) return;
  for (Slot& s : slots_) {
    if (s.token == token) {
      s.done = true;
      s.response = std::move(response);
      break;
    }
  }
  if (stall_token_ == token) stall_token_ = 0;
  // A completion is a loop event of its own: flush what became ordered,
  // resume the pipeline the deferral blocked, and tear down on failure
  // or once a drain has nothing left in flight.
  if (!FlushSlots()) {
    FinishEvent();
    return;
  }
  if (!ProcessFrames()) {
    FinishEvent();
    return;
  }
  UpdateInterest();
  FinishEvent();
}

bool Connection::DoWrite() {
  while (!out_.empty()) {
    // Scatter-gather flush: header/payload/trailer spans go to the socket
    // in place (one syscall per batch, no flat staging copy).
    struct iovec iov[kWriteIovBatch];
    size_t n_iov = out_.Gather(iov, kWriteIovBatch);
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n_iov;
    ssize_t n = sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      host_.OnBytes(0, static_cast<uint64_t>(n));
      out_.Consume(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    Fail("write error");
    return false;
  }
  return true;
}

void Connection::UpdateInterest() {
  uint32_t want = 0;
  if (!draining_ && pending_write_bytes() < config_.write_high_watermark &&
      decoder_.buffered() < InputCap(config_)) {
    want |= EPOLLIN;
  }
  if (pending_write_bytes() > 0) want |= EPOLLOUT;
  if (want == 0) want = EPOLLHUP;  // still detect peer teardown
  if (want != interest_) {
    interest_ = want;
    (void)loop_.Modify(fd_, interest_);
  }
}

}  // namespace reo
