// OsdServer: the real network target.
//
// Exports the existing OSD wire protocol (osd/transport.h encodings)
// over TCP: a listening socket plus N framed connections multiplexed on
// one epoll EventLoop. Decoded commands dispatch synchronously into an
// OsdTarget — the same dispatch the simulator's in-process transport
// uses, so everything behind the target (data plane, flash array,
// recovery) serves real remote traffic unchanged.
//
// Shutdown is graceful by contract: RequestDrain() (async-signal-safe,
// call it from a SIGTERM handler) stops the accept path, lets every
// connection finish the requests it has already received, flushes their
// responses, and then Run() returns. A drain deadline force-closes
// stragglers so shutdown is bounded.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "osd/osd_target.h"
#include "server/connection.h"
#include "server/event_loop.h"
#include "telemetry/metric_registry.h"
#include "telemetry/time_series.h"
#include "trace/event_log.h"
#include "trace/tracer.h"

namespace reo {

struct OsdServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port via port()
  int backlog = 128;
  size_t max_connections = 1024;
  uint64_t idle_timeout_ms = 60'000;
  /// After RequestDrain(), connections that have not finished within this
  /// budget are force-closed so shutdown always completes.
  uint64_t drain_timeout_ms = 5'000;
  ConnectionConfig connection;
  /// Invoked on the loop thread once drain completes, before Run()
  /// returns — the clean-shutdown checkpoint hook (every in-flight
  /// request has been answered; nothing can dirty the state afterwards).
  std::function<void()> on_drained;
};

/// Aggregate serving counters (mirrored into MetricRegistry when attached).
struct OsdServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t rejected = 0;       ///< accepts refused at max_connections
  uint64_t requests = 0;       ///< frames decoded into commands
  uint64_t responses = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frame_errors = 0;   ///< lost framing: bad magic / oversized length
  uint64_t crc_errors = 0;     ///< frame CRC32C mismatches
  uint64_t decode_errors = 0;  ///< framed payloads DecodeCommand rejected
  uint64_t admin_requests = 0; ///< in-band ADMIN frames served
  uint64_t admin_errors = 0;   ///< malformed / unservable ADMIN frames
};

class OsdServer final : private ConnectionHost {
 public:
  /// @param target command executor; must outlive the server.
  explicit OsdServer(OsdTarget& target, OsdServerConfig config = {});
  ~OsdServer() override;

  /// Binds and listens; after success port() returns the bound port.
  Status Listen();
  uint16_t port() const { return port_; }

  /// Serves until drain completes. Call from the (single) serving thread.
  void Run();

  /// Initiates graceful shutdown. Thread- and async-signal-safe.
  void RequestDrain();

  size_t active_connections() const { return connections_.size(); }
  const OsdServerStats& stats() const { return stats_; }
  EventLoop& loop() { return loop_; }

  /// Registers serving metrics ("server.*"): connection/request/byte
  /// counters, wire-corruption counters, per-op service latency
  /// histograms. Resolve-once, like every other layer.
  void AttachTelemetry(MetricRegistry& registry);

  /// Attaches the structured event sink: accept/close at debug,
  /// wire corruption at warn, drain milestones at info.
  void AttachEvents(EventLog& events) { events_ = &events; }

  /// Enables the in-band ADMIN commands (STATS / SERIES / EVENTS /
  /// HEALTH) on every connection: an admin frame is answered inline on
  /// the loop (snapshot + JSON encode, microseconds — never blocking the
  /// data path on IO). Either pointer may be null; the matching op then
  /// answers with an error status. With `series` attached, Run() rolls
  /// its windows on a loop timer at the ring's own window interval.
  void AttachAdmin(MetricRegistry* registry, TimeSeriesRing* series);

  /// Cluster mode: the ADMIN OWNERS command answers from this directory,
  /// and HealthJson reports the node id. Must outlive the server.
  void AttachCluster(const ClusterDirectory& directory) {
    cluster_ = &directory;
  }

  /// Opens a sampled root span (the transport track) around every data
  /// command, with the same clock stamps the service-latency histograms
  /// observe — so with sample_every == 1 the stage.transport totals match
  /// server.latency.* exactly (the attribution invariant tests pin).
  void AttachTracing(Tracer& tracer) {
    tracer_ = &tracer;
    trace_root_ = &tracer.RecorderFor(TraceComponent::kTransport);
  }

 private:
  // ConnectionHost:
  FrameResult OnFrame(Connection& conn,
                      std::span<const uint8_t> payload) override;
  void OnCorruptFrame(Connection& conn, FrameStatus status) override;
  void OnBytes(uint64_t bytes_in, uint64_t bytes_out) override;
  void OnClose(Connection& conn, std::string_view reason) override;

  void OnAcceptReady();
  void PollDrain();
  void BeginDrainOnLoop();
  void MaybeFinishDrain();
  SimTime NowNs() const;

  FramePayload HandleAdminFrame(Connection& conn,
                                std::span<const uint8_t> payload);
  void RollSeries();
  std::string HealthJson() const;

  OsdTarget& target_;
  OsdServerConfig config_;
  EventLoop loop_;
  FrameMetaPool frame_pool_;  ///< response frame metadata, shared by all conns
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;
  OsdServerStats stats_;
  bool draining_ = false;
  /// Set by RequestDrain() (possibly from a signal handler — lock-free
  /// relaxed atomics are async-signal-safe); latched on the loop.
  std::atomic<bool> drain_requested_{false};

  EventLog* events_ = nullptr;

  // Admin plane (null when un-attached).
  MetricRegistry* admin_registry_ = nullptr;
  TimeSeriesRing* series_ = nullptr;
  const ClusterDirectory* cluster_ = nullptr;

  // Tracing (null when un-attached).
  Tracer* tracer_ = nullptr;
  SpanRecorder* trace_root_ = nullptr;

  SimTime started_ns_ = 0;  ///< Run() entry stamp, for health uptime

  // Telemetry (null when un-attached).
  Counter* tel_accepted_ = nullptr;
  Counter* tel_closed_ = nullptr;
  Counter* tel_rejected_ = nullptr;
  Counter* tel_requests_ = nullptr;
  Counter* tel_bytes_in_ = nullptr;
  Counter* tel_bytes_out_ = nullptr;
  Counter* tel_frame_errors_ = nullptr;
  Counter* tel_crc_errors_ = nullptr;
  Counter* tel_decode_errors_ = nullptr;
  Counter* tel_admin_requests_ = nullptr;
  Counter* tel_admin_errors_ = nullptr;
  Gauge* tel_active_ = nullptr;
  ShardedHistogram* tel_lat_read_ = nullptr;
  ShardedHistogram* tel_lat_write_ = nullptr;
  ShardedHistogram* tel_lat_other_ = nullptr;
};

}  // namespace reo
