// Wire framing for the socket serving path.
//
// The simulated transport (osd/transport.h) hands complete byte vectors
// around in-process, so it never needs message boundaries. A real TCP
// stream does: this module wraps the existing EncodeCommand /
// EncodeResponse blobs in a length-prefixed frame with a CRC32C trailer
// (common/crc32c), and reassembles frames incrementally from the
// arbitrary read chunks a socket delivers.
//
// Frame layout (all integers little-endian):
//
//   offset 0   u32  magic   "REOF" (0x464F4552 on the wire)
//   offset 4   u32  length  payload byte count
//   offset 8   ...  payload (an encoded OSD command or response)
//   offset 8+n u32  crc     CRC32C over the payload bytes only
//
// The decoder is strict: a bad magic or an oversized length poisons the
// stream (framing is lost, the connection must be dropped); a CRC
// mismatch is reported per-frame so the caller can count the corruption
// before dropping the connection (see ISSUE: never silently).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace reo {

inline constexpr uint32_t kFrameMagic = 0x464F4552;  // "REOF"
inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Default ceiling on one frame's payload. Commands carry at most one
/// object's physical payload; 16 MiB leaves ample headroom over the
/// largest scaled chunk while bounding a malicious length field.
inline constexpr size_t kMaxFramePayload = 16u << 20;

/// Bytes a payload occupies once framed.
constexpr size_t FramedSize(size_t payload_bytes) {
  return kFrameHeaderBytes + payload_bytes + kFrameTrailerBytes;
}

/// Appends one complete frame around `payload` to `out`.
void AppendFrame(std::vector<uint8_t>& out, std::span<const uint8_t> payload);

/// Convenience single-frame encode.
std::vector<uint8_t> EncodeFrame(std::span<const uint8_t> payload);

/// Writes the 8-byte frame header (magic + length) into `out`. For
/// scatter-gather senders that ship the payload from its own buffer.
void EncodeFrameHeader(uint8_t out[kFrameHeaderBytes], size_t payload_bytes);

/// Writes the 4-byte CRC32C trailer for `payload` into `out`.
void EncodeFrameTrailer(uint8_t out[kFrameTrailerBytes],
                        std::span<const uint8_t> payload);

/// Writes a trailer from an already-computed payload CRC. For senders that
/// build the CRC incrementally over scattered payload parts via seeded
/// continuation: Crc32c(tail, Crc32c(head)) == Crc32c(head‖tail).
void EncodeFrameTrailerFromCrc(uint8_t out[kFrameTrailerBytes], uint32_t crc);

/// Outcome of one FrameDecoder::Next() attempt.
enum class FrameStatus : uint8_t {
  kFrame,        ///< *out holds the next payload
  kNeedMore,     ///< no complete frame buffered yet
  kBadMagic,     ///< stream does not start with a frame header; unrecoverable
  kOversized,    ///< length field exceeds the configured maximum; unrecoverable
  kCrcMismatch,  ///< frame extracted but payload failed its CRC
};

/// Incremental frame reassembler for one byte stream. Feed it whatever a
/// read() returned; pull complete payloads out. After kBadMagic or
/// kOversized the stream offset is ambiguous and the decoder refuses
/// further work (fail-stop, matching how the connection must be closed).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Buffers `bytes` for reassembly.
  void Feed(std::span<const uint8_t> bytes);

  /// Tries to extract the next frame. On kFrame, `*out` receives the
  /// payload. On kCrcMismatch the corrupt frame is consumed (the caller
  /// decides whether the connection survives). kBadMagic / kOversized are
  /// sticky.
  FrameStatus Next(std::vector<uint8_t>* out);

  /// Zero-copy variant: on kFrame, `*out` views the payload in place
  /// inside the reassembly buffer. The view is invalidated by the next
  /// Feed() or Next()/NextView() call — decode or copy it before then.
  FrameStatus NextView(std::span<const uint8_t>* out);

  /// Bytes buffered but not yet consumed by complete frames.
  size_t buffered() const { return buf_.size() - consumed_; }

  bool poisoned() const { return poisoned_; }

 private:
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  ///< prefix of buf_ already handed out
  size_t max_payload_;
  bool poisoned_ = false;
};

}  // namespace reo
