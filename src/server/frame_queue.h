// Pooled, scatter-gather response framing for the socket serving path.
//
// The original output path encoded every response by copying header +
// payload + CRC trailer into one flat byte vector per connection — a full
// extra copy of every payload, plus allocation churn proportional to the
// response rate. Here a frame's 12 bytes of metadata (8-byte header,
// 4-byte CRC trailer) live in a small block recycled through a free list,
// and the payload stays in the buffer the handler produced; the socket
// writer gathers header/payload/trailer spans with one writev-style call.
//
// Threading: the pool and queues are confined to the owning event-loop
// thread, like everything else in the server; nothing here locks.
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "server/frame.h"

namespace reo {

/// One recycled frame-metadata block: bytes [0,8) hold the frame header,
/// bytes [8,12) the CRC trailer.
struct FrameMeta {
  uint8_t bytes[kFrameHeaderBytes + kFrameTrailerBytes];
  FrameMeta* next = nullptr;  ///< free-list link while pooled
};

/// Free list of FrameMeta blocks. Get() pops a recycled block (or mints a
/// new one on a cold start); Put() returns it. Shared by every connection
/// of a server, so a burst on one connection seeds the pool for all.
class FrameMetaPool {
 public:
  FrameMetaPool() = default;
  ~FrameMetaPool();

  FrameMetaPool(const FrameMetaPool&) = delete;
  FrameMetaPool& operator=(const FrameMetaPool&) = delete;

  FrameMeta* Get();
  void Put(FrameMeta* meta);

  /// Blocks ever minted with operator new (pool misses).
  uint64_t allocated() const { return allocated_; }
  /// Get() calls served from the free list (pool hits).
  uint64_t reused() const { return reused_; }

 private:
  FrameMeta* free_ = nullptr;
  uint64_t allocated_ = 0;
  uint64_t reused_ = 0;
};

/// One frame payload as up to three owned buffers, shipped scatter-gather
/// without concatenation. On the wire the payload is head‖body‖tail; empty
/// parts are skipped. Splitting lets a response handler move its bulk data
/// buffer into `body` while the small fixed-layout prefix/suffix fields go
/// in `head`/`tail` — no 64 KiB memcpy per read response.
struct FramePayload {
  std::vector<uint8_t> head;
  PayloadBuffer body;  ///< bulk data, moved straight from the cache read
  std::vector<uint8_t> tail;

  size_t size() const { return head.size() + body.size() + tail.size(); }
  bool empty() const { return size() == 0; }
};

/// FIFO of framed responses awaiting the socket. Push() takes ownership of
/// the payload buffer (no copy) and frames it with a pooled metadata
/// block; Gather()/Consume() drive a writev-style partial-write loop.
class FrameQueue {
 public:
  explicit FrameQueue(FrameMetaPool& pool) : pool_(&pool) {}
  ~FrameQueue() { Clear(); }

  FrameQueue(const FrameQueue&) = delete;
  FrameQueue& operator=(const FrameQueue&) = delete;

  /// Frames `payload` (header + CRC computed here) and queues it.
  void Push(std::vector<uint8_t> payload);

  /// Multi-part variant: frames head‖body‖tail without joining them. The
  /// CRC trailer is built by seeded continuation across the parts, so the
  /// receiver sees a frame byte-identical to Push(head‖body‖tail).
  void Push(FramePayload parts);

  /// Fills `iov` with up to `max` spans of unsent bytes, starting from the
  /// partial-write position. Returns the entry count (0 when empty).
  size_t Gather(struct iovec* iov, size_t max) const;

  /// Advances past `n` bytes the socket accepted; recycles metadata blocks
  /// of fully written frames.
  void Consume(size_t n);

  /// Drops everything queued and recycles the metadata blocks.
  void Clear();

  bool empty() const { return frames_.empty(); }
  /// Bytes accepted but not yet written to the socket.
  size_t pending_bytes() const { return pending_bytes_; }
  /// Frames pushed over the queue's lifetime.
  uint64_t frames_pushed() const { return frames_pushed_; }

 private:
  struct Entry {
    FrameMeta* meta;
    FramePayload parts;
    size_t framed_size;  ///< FramedSize(parts.size()), precomputed
  };

  std::deque<Entry> frames_;
  size_t head_written_ = 0;  ///< bytes of the head frame already written
  size_t pending_bytes_ = 0;
  uint64_t frames_pushed_ = 0;
  FrameMetaPool* pool_;
};

}  // namespace reo
