#include "server/frame.h"

#include "common/crc32c.h"

namespace reo {
namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void AppendFrame(std::vector<uint8_t>& out, std::span<const uint8_t> payload) {
  out.reserve(out.size() + FramedSize(payload.size()));
  PutU32(out, kFrameMagic);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32(out, Crc32c(payload));
}

std::vector<uint8_t> EncodeFrame(std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  AppendFrame(out, payload);
  return out;
}

void FrameDecoder::Feed(std::span<const uint8_t> bytes) {
  if (poisoned_) return;
  // Compact before growing: drop the already-consumed prefix once it
  // dominates the buffer, so steady-state memory stays near one frame.
  if (consumed_ > 0 && (consumed_ >= buf_.size() || consumed_ > 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameStatus FrameDecoder::Next(std::vector<uint8_t>* out) {
  if (poisoned_) return FrameStatus::kBadMagic;
  size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  const uint8_t* head = buf_.data() + consumed_;
  if (ReadU32(head) != kFrameMagic) {
    poisoned_ = true;
    return FrameStatus::kBadMagic;
  }
  uint32_t length = ReadU32(head + 4);
  if (length > max_payload_) {
    poisoned_ = true;
    return FrameStatus::kOversized;
  }
  if (avail < FramedSize(length)) return FrameStatus::kNeedMore;

  const uint8_t* payload = head + kFrameHeaderBytes;
  uint32_t want = ReadU32(payload + length);
  consumed_ += FramedSize(length);
  if (Crc32c({payload, length}) != want) return FrameStatus::kCrcMismatch;
  out->assign(payload, payload + length);
  return FrameStatus::kFrame;
}

}  // namespace reo
