#include "server/frame.h"

#include "common/crc32c.h"

namespace reo {
namespace {

void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void EncodeFrameHeader(uint8_t out[kFrameHeaderBytes], size_t payload_bytes) {
  PutU32(out, kFrameMagic);
  PutU32(out + 4, static_cast<uint32_t>(payload_bytes));
}

void EncodeFrameTrailer(uint8_t out[kFrameTrailerBytes],
                        std::span<const uint8_t> payload) {
  EncodeFrameTrailerFromCrc(out, Crc32c(payload));
}

void EncodeFrameTrailerFromCrc(uint8_t out[kFrameTrailerBytes], uint32_t crc) {
  PutU32(out, crc);
}

void AppendFrame(std::vector<uint8_t>& out, std::span<const uint8_t> payload) {
  // No per-call reserve: an exact reserve() here pins capacity to the
  // current size and forces a reallocation (and full copy) on every
  // append, turning batched encodes quadratic. Geometric growth keeps a
  // batch of N frames at O(log N) reallocations.
  size_t base = out.size();
  out.resize(base + FramedSize(payload.size()));
  uint8_t* p = out.data() + base;
  EncodeFrameHeader(p, payload.size());
  std::copy(payload.begin(), payload.end(), p + kFrameHeaderBytes);
  EncodeFrameTrailer(p + kFrameHeaderBytes + payload.size(), payload);
}

std::vector<uint8_t> EncodeFrame(std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  AppendFrame(out, payload);
  return out;
}

void FrameDecoder::Feed(std::span<const uint8_t> bytes) {
  if (poisoned_) return;
  // Compact before growing: drop the already-consumed prefix once it
  // dominates the buffer, so steady-state memory stays near one frame.
  if (consumed_ > 0 && (consumed_ >= buf_.size() || consumed_ > 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameStatus FrameDecoder::NextView(std::span<const uint8_t>* out) {
  if (poisoned_) return FrameStatus::kBadMagic;
  size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  const uint8_t* head = buf_.data() + consumed_;
  if (ReadU32(head) != kFrameMagic) {
    poisoned_ = true;
    return FrameStatus::kBadMagic;
  }
  uint32_t length = ReadU32(head + 4);
  if (length > max_payload_) {
    poisoned_ = true;
    return FrameStatus::kOversized;
  }
  if (avail < FramedSize(length)) return FrameStatus::kNeedMore;

  const uint8_t* payload = head + kFrameHeaderBytes;
  uint32_t want = ReadU32(payload + length);
  consumed_ += FramedSize(length);
  if (Crc32c({payload, length}) != want) return FrameStatus::kCrcMismatch;
  *out = {payload, length};
  return FrameStatus::kFrame;
}

FrameStatus FrameDecoder::Next(std::vector<uint8_t>* out) {
  std::span<const uint8_t> view;
  FrameStatus st = NextView(&view);
  if (st == FrameStatus::kFrame) out->assign(view.begin(), view.end());
  return st;
}

}  // namespace reo
