// Non-blocking event loop for the serving path: epoll readiness dispatch
// plus a hashed timer wheel for idle / drain deadlines.
//
// Threading model (see DESIGN.md "Network serving"): ONE loop thread owns
// every connection and the OsdTarget behind them — the target is
// single-threaded by design, so the server stays lock-free by running all
// socket IO and command execution on the loop. The only cross-thread
// entry point is Wake()/Stop(), which is async-signal-safe (an eventfd
// write) so a SIGTERM handler may call it directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace reo {

/// Opaque handle for a scheduled timer (0 = invalid).
using TimerId = uint64_t;

/// Hashed timer wheel: O(1) schedule/cancel, coarse `tick_ms` resolution.
/// Deadlines land in slot (deadline / tick) % slots with a rounds counter
/// for far-future entries — the classic scheme (Varghese & Lauck) used by
/// every serious server runtime; ample for multi-millisecond socket
/// timeouts.
class TimerWheel {
 public:
  explicit TimerWheel(uint64_t tick_ms = 10, size_t slots = 512);

  /// Schedules `cb` to fire `delay_ms` after `now_ms`.
  TimerId Schedule(uint64_t now_ms, uint64_t delay_ms, std::function<void()> cb);

  /// Cancels a pending timer; no-op for already-fired or invalid ids.
  void Cancel(TimerId id);

  /// Fires every timer due at or before `now_ms`.
  void Advance(uint64_t now_ms);

  /// Milliseconds until the next pending deadline (clamped to >= 0), or
  /// -1 when no timers are pending (block indefinitely).
  int NextTimeoutMs(uint64_t now_ms) const;

  size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    TimerId id = 0;
    uint64_t deadline_ms = 0;
    std::function<void()> cb;
  };

  uint64_t tick_ms_;
  std::vector<std::list<Entry>> slots_;
  /// id -> (slot, iterator) for O(1) cancel.
  std::unordered_map<TimerId, std::pair<size_t, std::list<Entry>::iterator>> live_;
  /// Every pending deadline, ordered, so NextTimeoutMs() is O(1) instead
  /// of scanning live_ on every loop iteration.
  std::multiset<uint64_t> deadlines_;
  uint64_t last_tick_ = 0;  ///< wheel position already drained (in ticks)
  TimerId next_id_ = 1;
};

/// epoll wrapper dispatching readiness to per-fd callbacks.
class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...), dispatching to
  /// `handler(ready_events)`. One handler per fd.
  Status Add(int fd, uint32_t events, std::function<void(uint32_t)> handler);

  /// Changes the interest set of a registered fd.
  Status Modify(int fd, uint32_t events);

  /// Deregisters `fd`. Safe to call from inside a handler (pending
  /// dispatches to the fd this iteration are suppressed).
  void Remove(int fd);

  /// Schedules a one-shot timer relative to now.
  TimerId AddTimer(uint64_t delay_ms, std::function<void()> cb);
  void CancelTimer(TimerId id);

  /// Runs until Stop(). Dispatches IO, then due timers, each iteration.
  void Run();

  /// Requests Run() to return after the current iteration. Thread- and
  /// async-signal-safe.
  void Stop();

  /// Wakes a blocked epoll_wait without stopping. Thread- and
  /// async-signal-safe.
  void Wake();

  /// Enqueues `task` to run on the loop thread, FIFO across all posting
  /// threads. Thread-safe (not signal-safe: takes a mutex) — this is the
  /// cross-shard handoff primitive: another thread packages work, Post()s
  /// it, and the owning loop executes it between IO dispatches. Tasks
  /// still queued when Run() returns are destroyed unrun.
  void Post(std::function<void()> task);

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  /// CLOCK_MONOTONIC milliseconds, cached once per loop iteration.
  uint64_t now_ms() const { return now_ms_; }

 private:
  uint64_t ReadClockMs() const;
  void DrainPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd; written by Wake()/Stop()
  std::unordered_map<int, std::function<void(uint32_t)>> handlers_;
  /// Bumped on Add()/Remove() so stale ready-list entries are skipped.
  uint64_t generation_ = 0;
  std::unordered_map<int, uint64_t> fd_generation_;
  TimerWheel timers_;
  uint64_t now_ms_ = 0;
  /// Set via Stop() from any thread or a signal handler; lock-free
  /// relaxed atomics are both data-race-free and async-signal-safe.
  std::atomic<bool> stop_{false};
  /// Cross-thread task queue (Post). Guarded by post_mu_; drained in one
  /// swap per loop iteration so posters never block on running tasks.
  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace reo
