#include "server/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace reo {

// --- TimerWheel --------------------------------------------------------------

TimerWheel::TimerWheel(uint64_t tick_ms, size_t slots)
    : tick_ms_(tick_ms ? tick_ms : 1), slots_(slots ? slots : 1) {}

TimerId TimerWheel::Schedule(uint64_t now_ms, uint64_t delay_ms,
                             std::function<void()> cb) {
  TimerId id = next_id_++;
  uint64_t deadline = now_ms + delay_ms;
  Entry e{id, deadline, std::move(cb)};
  // Slot by deadline tick; Advance() re-checks the deadline so entries
  // scheduled more than one wheel revolution out simply wait in place.
  size_t slot = static_cast<size_t>(deadline / tick_ms_) % slots_.size();
  slots_[slot].push_front(std::move(e));
  live_.emplace(id, std::make_pair(slot, slots_[slot].begin()));
  deadlines_.insert(deadline);
  if (last_tick_ == 0) last_tick_ = now_ms / tick_ms_;
  return id;
}

void TimerWheel::Cancel(TimerId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  auto node = it->second.second;
  deadlines_.erase(deadlines_.find(node->deadline_ms));
  slots_[it->second.first].erase(node);
  live_.erase(it);
}

void TimerWheel::Advance(uint64_t now_ms) {
  uint64_t tick = now_ms / tick_ms_;
  if (live_.empty()) {
    last_tick_ = tick;
    return;
  }
  // Visit each slot between the last drained tick and now (at most one
  // full revolution), firing entries whose deadline has passed.
  uint64_t span = tick - last_tick_;
  if (span > slots_.size()) span = slots_.size();
  for (uint64_t t = 0; t <= span; ++t) {
    size_t slot = static_cast<size_t>((last_tick_ + t) % slots_.size());
    auto& list = slots_[slot];
    // Fire due entries one at a time, fully unlinking each entry (slot
    // list, live_, deadlines_) BEFORE running its callback: a callback
    // may Cancel() any other pending timer, erasing arbitrary list
    // nodes, so no iterator into the slot may survive across cb().
    // After every callback the slot is rescanned from the front.
    bool fired = true;
    while (fired) {
      fired = false;
      for (auto it = list.begin(); it != list.end(); ++it) {
        if (it->deadline_ms > now_ms) continue;
        auto cb = std::move(it->cb);
        live_.erase(it->id);
        deadlines_.erase(deadlines_.find(it->deadline_ms));
        list.erase(it);
        fired = true;
        cb();
        break;
      }
    }
  }
  last_tick_ = tick;
}

int TimerWheel::NextTimeoutMs(uint64_t now_ms) const {
  if (deadlines_.empty()) return -1;
  uint64_t best = *deadlines_.begin();
  if (best <= now_ms) return 0;
  uint64_t delta = best - now_ms;
  return delta > 60'000 ? 60'000 : static_cast<int>(delta);
}

// --- EventLoop ---------------------------------------------------------------

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  REO_CHECK(epoll_fd_ >= 0 && wake_fd_ >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  REO_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
  now_ms_ = ReadClockMs();
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

uint64_t EventLoop::ReadClockMs() const {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000'000;
}

Status EventLoop::Add(int fd, uint32_t events,
                      std::function<void(uint32_t)> handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status{ErrorCode::kInternal,
                  std::string("epoll_ctl add: ") + std::strerror(errno)};
  }
  handlers_[fd] = std::move(handler);
  fd_generation_[fd] = ++generation_;
  return Status::Ok();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status{ErrorCode::kInternal,
                  std::string("epoll_ctl mod: ") + std::strerror(errno)};
  }
  return Status::Ok();
}

void EventLoop::Remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
  fd_generation_.erase(fd);
  ++generation_;
}

TimerId EventLoop::AddTimer(uint64_t delay_ms, std::function<void()> cb) {
  return timers_.Schedule(now_ms_, delay_ms, std::move(cb));
}

void EventLoop::CancelTimer(TimerId id) { timers_.Cancel(id); }

void EventLoop::Wake() {
  uint64_t one = 1;
  // write(2) is async-signal-safe; short/failed writes only mean the
  // eventfd is already signalled.
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  Wake();
}

void EventLoop::Post(std::function<void()> task) {
  bool was_empty;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    was_empty = posted_.empty();
    posted_.push_back(std::move(task));
  }
  // One wake per burst: followers see a non-empty queue and know the
  // eventfd is already signalled.
  if (was_empty) Wake();
}

void EventLoop::DrainPosted() {
  // Swap out the batch so tasks may Post() (to this loop or peers)
  // without deadlocking on post_mu_; tasks queued by this batch run next
  // iteration (their Post() re-arms the wake eventfd).
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& task : batch) {
    if (stop_.load(std::memory_order_relaxed)) break;
    task();
  }
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  uint64_t batch_gen[kMaxEvents];
  while (!stop_.load(std::memory_order_relaxed)) {
    now_ms_ = ReadClockMs();
    int timeout = timers_.NextTimeoutMs(now_ms_);
    int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (n < 0 && errno != EINTR) break;
    now_ms_ = ReadClockMs();
    // Snapshot each fd's registration generation before dispatching any
    // handler: a handler earlier in the batch may Remove() (or remove and
    // re-add) a later fd, and its stale readiness must not reach the
    // handler of a new registration that reused the fd number.
    for (int i = 0; i < n; ++i) {
      auto gen = fd_generation_.find(events[i].data.fd);
      batch_gen[i] = gen == fd_generation_.end() ? 0 : gen->second;
    }
    for (int i = 0; i < n && !stop_.load(std::memory_order_relaxed); ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      auto gen = fd_generation_.find(fd);
      if (gen == fd_generation_.end() || gen->second != batch_gen[i]) continue;
      auto h = handlers_.find(fd);
      if (h == handlers_.end()) continue;
      // Copy: the handler may Remove(fd) and invalidate the map entry.
      auto handler = h->second;
      handler(events[i].events);
    }
    DrainPosted();
    timers_.Advance(now_ms_);
  }
}

}  // namespace reo
