#include "ec/parity_update.h"

#include <vector>

#include "ec/gf256.h"

namespace reo {

ParityUpdateCost ComputeUpdateCost(size_t live_data_chunks, size_t parity_chunks) {
  ParityUpdateCost cost{};
  cost.direct_reads = live_data_chunks > 0 ? live_data_chunks - 1 : 0;
  cost.delta_reads = 1 + parity_chunks;
  return cost;
}

ParityUpdateStrategy ChooseStrategy(size_t live_data_chunks, size_t parity_chunks) {
  auto cost = ComputeUpdateCost(live_data_chunks, parity_chunks);
  return cost.delta_reads <= cost.direct_reads ? ParityUpdateStrategy::kDelta
                                               : ParityUpdateStrategy::kDirect;
}

void ApplyDeltaUpdate(const RsCode& code, size_t p, size_t d,
                      std::span<const uint8_t> old_data,
                      std::span<const uint8_t> new_data,
                      std::span<uint8_t> parity) {
  REO_CHECK(old_data.size() == new_data.size());
  REO_CHECK(old_data.size() == parity.size());
  std::vector<uint8_t> delta(old_data.size());
  for (size_t i = 0; i < delta.size(); ++i) delta[i] = old_data[i] ^ new_data[i];
  gf256::MulAcc(parity, delta, code.Coefficient(p, d));
}

}  // namespace reo
