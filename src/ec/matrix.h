// Dense matrices over GF(256): the algebra behind Reed-Solomon encode,
// decode-matrix inversion, and systematic generator construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace reo {

/// Row-major matrix over GF(256).
class GfMatrix {
 public:
  GfMatrix() = default;
  GfMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static GfMatrix Identity(size_t n);
  /// Vandermonde matrix V[i][j] = (i+1)^j — classic RS construction.
  static GfMatrix Vandermonde(size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  uint8_t& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  uint8_t at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  GfMatrix Multiply(const GfMatrix& rhs) const;

  /// Returns a matrix of the given rows of *this (used to build decode
  /// matrices from surviving fragment indices).
  GfMatrix SelectRows(const std::vector<size_t>& rows) const;

  /// Gauss-Jordan inverse; fails if singular.
  Result<GfMatrix> Inverse() const;

  /// In-place Gauss-Jordan to reduce the top square to identity, applying
  /// the same ops across all columns. Used to derive a systematic generator
  /// from a Vandermonde matrix. Fails if the leading square is singular.
  Status ReduceLeadingSquareToIdentity();

  friend bool operator==(const GfMatrix& a, const GfMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint8_t> data_;
};

}  // namespace reo
