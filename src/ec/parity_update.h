// Parity maintenance on data updates: direct vs delta parity-updating.
//
// §II.B of the paper: updating a data chunk forces a parity recalculation.
// *Direct* updating re-reads the other data chunks of the stripe and
// re-encodes; *delta* updating reads the old data chunk and each old parity
// chunk and applies P' = P + g * (D' + D). "In this paper, we choose the
// encoding method that incurs the least disk reads" — ChooseStrategy
// implements exactly that cost comparison, and the two Apply* helpers
// implement the math.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "ec/rs_code.h"

namespace reo {

enum class ParityUpdateStrategy : uint8_t {
  kDirect,  ///< read all sibling data chunks, re-encode parity
  kDelta,   ///< read old data + old parity, apply delta
};

/// Chunk-read counts each strategy would incur for one updated data chunk.
struct ParityUpdateCost {
  size_t direct_reads;  ///< m - 1 sibling data chunks
  size_t delta_reads;   ///< 1 old data chunk + k old parity chunks
};

/// Computes the read cost of both strategies for an (m, k) stripe.
/// `live_data_chunks` is how many data chunks the stripe currently holds
/// (short stripes read fewer siblings).
ParityUpdateCost ComputeUpdateCost(size_t live_data_chunks, size_t parity_chunks);

/// Picks whichever strategy incurs fewer chunk reads (ties favor delta,
/// which also writes nothing extra).
ParityUpdateStrategy ChooseStrategy(size_t live_data_chunks, size_t parity_chunks);

/// Delta update for parity chunk index `p`:
///   parity ^= g[p][d] * (new_data ^ old_data)
/// All spans must be the same length.
void ApplyDeltaUpdate(const RsCode& code, size_t p, size_t d,
                      std::span<const uint8_t> old_data,
                      std::span<const uint8_t> new_data,
                      std::span<uint8_t> parity);

}  // namespace reo
