#include "ec/rs_code.h"

#include <algorithm>

#include "ec/gf256.h"

namespace reo {

RsCode::RsCode(size_t m, size_t k, RsConstruction construction)
    : m_(m), k_(k) {
  REO_CHECK(m >= 1);
  REO_CHECK(m + k <= 255);
  if (k == 1) {
    // Single parity is plain RAID-5 XOR: generator row of ones. Still MDS
    // (dropping identity row i leaves a unit upper/lower triangular-like
    // square with the ones-row, whose determinant is 1), and MulAcc's
    // coefficient-1 path reduces encoding to pure XOR.
    generator_ = GfMatrix(m + 1, m);
    for (size_t d = 0; d < m; ++d) {
      generator_.at(d, d) = 1;
      generator_.at(m, d) = 1;
    }
    return;
  }
  if (construction == RsConstruction::kCauchy) {
    // Identity on top, Cauchy parity rows C[p][d] = 1/(x_p + y_d) with
    // disjoint {x_p} and {y_d}: every square submatrix of a Cauchy matrix
    // is invertible, which makes [I; C] MDS.
    generator_ = GfMatrix(m + k, m);
    for (size_t d = 0; d < m; ++d) generator_.at(d, d) = 1;
    for (size_t p = 0; p < k; ++p) {
      for (size_t d = 0; d < m; ++d) {
        auto x = static_cast<uint8_t>(p);
        auto y = static_cast<uint8_t>(k + d);
        generator_.at(m + p, d) = gf256::Inv(gf256::Add(x, y));
      }
    }
    return;
  }
  // Systematic Vandermonde: G = V * inv(V_top). Right-multiplying by an
  // invertible matrix keeps every m x m row-submatrix invertible (each is
  // submatrix(V) * inv(V_top), a product of invertibles), so any m
  // surviving fragments decode — the MDS property. (Note: *row*-reducing V
  // instead would destroy this property.)
  GfMatrix v = GfMatrix::Vandermonde(m + k, m);
  std::vector<size_t> top(m);
  for (size_t i = 0; i < m; ++i) top[i] = i;
  auto top_inv = v.SelectRows(top).Inverse();
  REO_CHECK(top_inv.ok());
  generator_ = v.Multiply(*top_inv);
}

uint8_t RsCode::Coefficient(size_t p, size_t d) const {
  REO_CHECK(p < k_ && d < m_);
  return generator_.at(m_ + p, d);
}

void RsCode::Encode(std::span<const std::span<const uint8_t>> data,
                    std::span<const std::span<uint8_t>> parity) const {
  REO_CHECK(data.size() == m_);
  REO_CHECK(parity.size() == k_);
  for (size_t p = 0; p < k_; ++p) {
    EncodeParity(p, data, parity[p]);
  }
}

void RsCode::EncodeParity(size_t p,
                          std::span<const std::span<const uint8_t>> data,
                          std::span<uint8_t> parity) const {
  REO_CHECK(p < k_);
  REO_CHECK(data.size() == m_);
  std::fill(parity.begin(), parity.end(), 0);
  for (size_t d = 0; d < m_; ++d) {
    REO_CHECK(data[d].size() == parity.size());
    gf256::MulAcc(parity, data[d], generator_.at(m_ + p, d));
  }
}

Status RsCode::Reconstruct(
    std::span<const std::pair<size_t, std::span<const uint8_t>>> present,
    std::span<const size_t> missing,
    std::span<const std::span<uint8_t>> out) const {
  REO_CHECK(missing.size() == out.size());
  if (present.size() < m_) {
    return {ErrorCode::kUnrecoverable, "fewer surviving fragments than m"};
  }
  // Use the first m survivors.
  std::vector<size_t> rows;
  rows.reserve(m_);
  std::vector<std::span<const uint8_t>> bufs;
  bufs.reserve(m_);
  for (const auto& [idx, buf] : present) {
    if (rows.size() == m_) break;
    REO_CHECK(idx < m_ + k_);
    rows.push_back(idx);
    bufs.push_back(buf);
  }
  // survivors = G[rows] * data  =>  data = inv(G[rows]) * survivors.
  GfMatrix sub = generator_.SelectRows(rows);
  auto inv = sub.Inverse();
  if (!inv.ok()) return inv.status();

  // For each missing fragment f, its row in G times recovered data gives the
  // fragment; compose G[f] * inv so each output is a single pass over the
  // survivor buffers.
  for (size_t mi = 0; mi < missing.size(); ++mi) {
    size_t f = missing[mi];
    REO_CHECK(f < m_ + k_);
    std::span<uint8_t> dst = out[mi];
    std::fill(dst.begin(), dst.end(), 0);
    for (size_t s = 0; s < m_; ++s) {
      uint8_t coef = 0;
      for (size_t d = 0; d < m_; ++d) {
        coef = gf256::Add(coef, gf256::Mul(generator_.at(f, d), inv->at(d, s)));
      }
      REO_CHECK(bufs[s].size() == dst.size());
      gf256::MulAcc(dst, bufs[s], coef);
    }
  }
  return Status::Ok();
}

}  // namespace reo
