// GF(2^8) arithmetic for Reed-Solomon coding.
//
// Field: polynomial basis with the AES/Rijndael-compatible primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), generator 2. Multiplication
// and division go through exp/log tables; bulk multiply-accumulate over
// buffers is the hot path of stripe encoding and reconstruction.
#pragma once

#include <cstdint>
#include <span>

namespace reo::gf256 {

/// a + b (== a - b) in GF(256).
constexpr uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }

/// a * b via exp/log tables.
uint8_t Mul(uint8_t a, uint8_t b);

/// a / b; b must be non-zero.
uint8_t Div(uint8_t a, uint8_t b);

/// Multiplicative inverse; a must be non-zero.
uint8_t Inv(uint8_t a);

/// a^e (e >= 0).
uint8_t Pow(uint8_t a, uint32_t e);

/// dst[i] ^= c * src[i] for all i. The stripe-encoding kernel. Dispatches
/// to an SSSE3 pshufb split-nibble kernel at runtime when the CPU has it
/// (mirroring the CRC32C SSE4.2 dispatch); byte-identical to the scalar
/// path either way.
void MulAcc(std::span<uint8_t> dst, std::span<const uint8_t> src, uint8_t c);

/// dst[i] = c * src[i] for all i.
void MulBuf(std::span<uint8_t> dst, std::span<const uint8_t> src, uint8_t c);

/// Portable table-per-coefficient reference kernels. Exposed so the
/// differential tests and micro-benches can pin the SIMD path against
/// them; production code calls MulAcc/MulBuf and gets the dispatch.
void MulAccScalar(std::span<uint8_t> dst, std::span<const uint8_t> src,
                  uint8_t c);
void MulBufScalar(std::span<uint8_t> dst, std::span<const uint8_t> src,
                  uint8_t c);

/// True when the runtime dispatch selects the SIMD kernels on this CPU.
bool HasSimdKernels();

}  // namespace reo::gf256
