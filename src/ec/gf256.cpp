#include "ec/gf256.h"

#include <array>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "common/status.h"

namespace reo::gf256 {
namespace {

constexpr uint16_t kPoly = 0x11D;  // x^8+x^4+x^3+x^2+1

struct Tables {
  std::array<uint8_t, 512> exp{};  // doubled to avoid a mod in Mul
  std::array<uint8_t, 256> log{};
};

constexpr Tables MakeTables() {
  Tables t{};
  uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<size_t>(i)] = static_cast<uint8_t>(x);
    t.log[static_cast<size_t>(x)] = static_cast<uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  for (int i = 255; i < 512; ++i) {
    t.exp[static_cast<size_t>(i)] = t.exp[static_cast<size_t>(i - 255)];
  }
  return t;
}

constexpr Tables kT = MakeTables();

}  // namespace

uint8_t Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kT.exp[static_cast<size_t>(kT.log[a]) + kT.log[b]];
}

uint8_t Div(uint8_t a, uint8_t b) {
  REO_CHECK(b != 0);
  if (a == 0) return 0;
  return kT.exp[static_cast<size_t>(kT.log[a]) + 255 - kT.log[b]];
}

uint8_t Inv(uint8_t a) {
  REO_CHECK(a != 0);
  return kT.exp[static_cast<size_t>(255 - kT.log[a])];
}

uint8_t Pow(uint8_t a, uint32_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  uint32_t l = (static_cast<uint32_t>(kT.log[a]) * e) % 255;
  return kT.exp[l];
}

void MulAccScalar(std::span<uint8_t> dst, std::span<const uint8_t> src,
                  uint8_t c) {
  REO_CHECK(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  // Per-coefficient 256-entry product table: one lookup per byte.
  uint8_t table[256];
  for (int v = 0; v < 256; ++v) table[v] = Mul(c, static_cast<uint8_t>(v));
  for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= table[src[i]];
}

void MulBufScalar(std::span<uint8_t> dst, std::span<const uint8_t> src,
                  uint8_t c) {
  REO_CHECK(dst.size() == src.size());
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  if (c == 1) {
    for (size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
    return;
  }
  uint8_t table[256];
  for (int v = 0; v < 256; ++v) table[v] = Mul(c, static_cast<uint8_t>(v));
  for (size_t i = 0; i < dst.size(); ++i) dst[i] = table[src[i]];
}

#if defined(__x86_64__) || defined(__i386__)
namespace {

/// Split-nibble product tables for one coefficient: lo[v] = c*v,
/// hi[v] = c*(v<<4), so c*b = lo[b & 0xF] ^ hi[b >> 4] — exactly the two
/// pshufb lookups per 16 bytes the SIMD kernels run.
struct NibbleTables {
  alignas(16) uint8_t lo[16];
  alignas(16) uint8_t hi[16];
};

NibbleTables MakeNibbleTables(uint8_t c) {
  NibbleTables t;
  for (int v = 0; v < 16; ++v) {
    t.lo[v] = Mul(c, static_cast<uint8_t>(v));
    t.hi[v] = Mul(c, static_cast<uint8_t>(v << 4));
  }
  return t;
}

/// 16 products per iteration: two pshufb table lookups (low and high
/// nibble) and a xor, instead of sixteen serial L1 loads.
__attribute__((target("ssse3")))
void MulAccSimd(uint8_t* dst, const uint8_t* src, size_t n, uint8_t c) {
  const NibbleTables t = MakeNibbleTables(c);
  const __m128i lo_tbl = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi_tbl = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    __m128i lo = _mm_shuffle_epi8(lo_tbl, _mm_and_si128(s, mask));
    __m128i hi = _mm_shuffle_epi8(
        hi_tbl, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    d = _mm_xor_si128(d, _mm_xor_si128(lo, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  for (; i < n; ++i) dst[i] ^= t.lo[src[i] & 0x0F] ^ t.hi[src[i] >> 4];
}

__attribute__((target("ssse3")))
void MulBufSimd(uint8_t* dst, const uint8_t* src, size_t n, uint8_t c) {
  const NibbleTables t = MakeNibbleTables(c);
  const __m128i lo_tbl = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi_tbl = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i lo = _mm_shuffle_epi8(lo_tbl, _mm_and_si128(s, mask));
    __m128i hi = _mm_shuffle_epi8(
        hi_tbl, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(lo, hi));
  }
  for (; i < n; ++i) dst[i] = t.lo[src[i] & 0x0F] ^ t.hi[src[i] >> 4];
}

bool HasSsse3() {
  static const bool has = __builtin_cpu_supports("ssse3");
  return has;
}

/// Below this, building the nibble tables costs more than it saves.
constexpr size_t kSimdCutover = 32;

}  // namespace
#endif  // x86

bool HasSimdKernels() {
#if defined(__x86_64__) || defined(__i386__)
  return HasSsse3();
#else
  return false;
#endif
}

void MulAcc(std::span<uint8_t> dst, std::span<const uint8_t> src, uint8_t c) {
#if defined(__x86_64__) || defined(__i386__)
  if (c > 1 && dst.size() == src.size() && dst.size() >= kSimdCutover &&
      HasSsse3()) {
    MulAccSimd(dst.data(), src.data(), dst.size(), c);
    return;
  }
#endif
  MulAccScalar(dst, src, c);
}

void MulBuf(std::span<uint8_t> dst, std::span<const uint8_t> src, uint8_t c) {
#if defined(__x86_64__) || defined(__i386__)
  if (c > 1 && dst.size() == src.size() && dst.size() >= kSimdCutover &&
      HasSsse3()) {
    MulBufSimd(dst.data(), src.data(), dst.size(), c);
    return;
  }
#endif
  MulBufScalar(dst, src, c);
}

}  // namespace reo::gf256
