#include "ec/gf256.h"

#include <array>

#include "common/status.h"

namespace reo::gf256 {
namespace {

constexpr uint16_t kPoly = 0x11D;  // x^8+x^4+x^3+x^2+1

struct Tables {
  std::array<uint8_t, 512> exp{};  // doubled to avoid a mod in Mul
  std::array<uint8_t, 256> log{};
};

constexpr Tables MakeTables() {
  Tables t{};
  uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<size_t>(i)] = static_cast<uint8_t>(x);
    t.log[static_cast<size_t>(x)] = static_cast<uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  for (int i = 255; i < 512; ++i) {
    t.exp[static_cast<size_t>(i)] = t.exp[static_cast<size_t>(i - 255)];
  }
  return t;
}

constexpr Tables kT = MakeTables();

}  // namespace

uint8_t Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kT.exp[static_cast<size_t>(kT.log[a]) + kT.log[b]];
}

uint8_t Div(uint8_t a, uint8_t b) {
  REO_CHECK(b != 0);
  if (a == 0) return 0;
  return kT.exp[static_cast<size_t>(kT.log[a]) + 255 - kT.log[b]];
}

uint8_t Inv(uint8_t a) {
  REO_CHECK(a != 0);
  return kT.exp[static_cast<size_t>(255 - kT.log[a])];
}

uint8_t Pow(uint8_t a, uint32_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  uint32_t l = (static_cast<uint32_t>(kT.log[a]) * e) % 255;
  return kT.exp[l];
}

void MulAcc(std::span<uint8_t> dst, std::span<const uint8_t> src, uint8_t c) {
  REO_CHECK(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  // Per-coefficient 256-entry product table: one lookup per byte.
  uint8_t table[256];
  for (int v = 0; v < 256; ++v) table[v] = Mul(c, static_cast<uint8_t>(v));
  for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= table[src[i]];
}

void MulBuf(std::span<uint8_t> dst, std::span<const uint8_t> src, uint8_t c) {
  REO_CHECK(dst.size() == src.size());
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  if (c == 1) {
    for (size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
    return;
  }
  uint8_t table[256];
  for (int v = 0; v < 256; ++v) table[v] = Mul(c, static_cast<uint8_t>(v));
  for (size_t i = 0; i < dst.size(); ++i) dst[i] = table[src[i]];
}

}  // namespace reo::gf256
