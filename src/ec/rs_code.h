// Systematic Reed-Solomon code over GF(256).
//
// An (m, k) code turns m equal-size data chunks into n = m + k fragments
// (the m data chunks unchanged plus k parity chunks). Any m surviving
// fragments reconstruct everything — exactly the erasure model described in
// §II.B of the Reo paper. The generator is a Vandermonde matrix reduced to
// systematic form, the textbook RS construction the paper cites [17].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "ec/matrix.h"

namespace reo {

/// Generator-matrix construction. Both are MDS (any m survivors decode):
/// Vandermonde is the paper's textbook choice [17]; Cauchy (Blömer et al.)
/// derives parity coefficients 1/(x_i + y_j) directly, with every square
/// submatrix invertible by construction.
enum class RsConstruction : uint8_t {
  kVandermonde,
  kCauchy,
};

/// Immutable codec for a fixed (m data, k parity) geometry.
class RsCode {
 public:
  /// @param m data chunks per stripe (>= 1)
  /// @param k parity chunks per stripe (>= 0); m + k <= 255
  explicit RsCode(size_t m, size_t k,
                  RsConstruction construction = RsConstruction::kVandermonde);

  size_t data_chunks() const { return m_; }
  size_t parity_chunks() const { return k_; }
  size_t total_chunks() const { return m_ + k_; }

  /// Encoding coefficient of data chunk `d` in parity chunk `p`.
  uint8_t Coefficient(size_t p, size_t d) const;

  /// Computes all k parity buffers from the m data buffers.
  /// All spans must have identical size; parity spans are overwritten.
  void Encode(std::span<const std::span<const uint8_t>> data,
              std::span<const std::span<uint8_t>> parity) const;

  /// Recomputes a single parity chunk (index `p` in [0,k)).
  void EncodeParity(size_t p, std::span<const std::span<const uint8_t>> data,
                    std::span<uint8_t> parity) const;

  /// Reconstructs the fragments listed in `missing` (global fragment
  /// indices: 0..m-1 data, m..m+k-1 parity) from any >= m survivors.
  ///
  /// @param present   fragment index -> buffer for every surviving fragment
  ///                  (must contain at least m entries; extra are ignored)
  /// @param missing   fragment indices to rebuild
  /// @param out       output buffers, parallel to `missing`
  /// @returns kUnrecoverable if fewer than m fragments survive.
  Status Reconstruct(
      std::span<const std::pair<size_t, std::span<const uint8_t>>> present,
      std::span<const size_t> missing,
      std::span<const std::span<uint8_t>> out) const;

 private:
  size_t m_;
  size_t k_;
  GfMatrix generator_;  // n x m, top m x m == identity
};

}  // namespace reo
