#include "ec/matrix.h"

#include "ec/gf256.h"

namespace reo {

GfMatrix GfMatrix::Identity(size_t n) {
  GfMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::Vandermonde(size_t rows, size_t cols) {
  GfMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.at(r, c) = gf256::Pow(static_cast<uint8_t>(r + 1), static_cast<uint32_t>(c));
    }
  }
  return m;
}

GfMatrix GfMatrix::Multiply(const GfMatrix& rhs) const {
  REO_CHECK(cols_ == rhs.rows_);
  GfMatrix out(rows_, rhs.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      uint8_t a = at(r, k);
      if (a == 0) continue;
      for (size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) = gf256::Add(out.at(r, c), gf256::Mul(a, rhs.at(k, c)));
      }
    }
  }
  return out;
}

GfMatrix GfMatrix::SelectRows(const std::vector<size_t>& rows) const {
  GfMatrix out(rows.size(), cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    REO_CHECK(rows[i] < rows_);
    for (size_t c = 0; c < cols_; ++c) out.at(i, c) = at(rows[i], c);
  }
  return out;
}

Result<GfMatrix> GfMatrix::Inverse() const {
  REO_CHECK(rows_ == cols_);
  size_t n = rows_;
  GfMatrix aug(n, 2 * n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) aug.at(r, c) = at(r, c);
    aug.at(r, n + r) = 1;
  }
  for (size_t col = 0; col < n; ++col) {
    // Pivot.
    size_t pivot = col;
    while (pivot < n && aug.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return Status{ErrorCode::kInvalidArgument, "singular matrix"};
    if (pivot != col) {
      for (size_t c = 0; c < 2 * n; ++c) std::swap(aug.at(pivot, c), aug.at(col, c));
    }
    uint8_t inv = gf256::Inv(aug.at(col, col));
    for (size_t c = 0; c < 2 * n; ++c) aug.at(col, c) = gf256::Mul(aug.at(col, c), inv);
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      uint8_t f = aug.at(r, col);
      if (f == 0) continue;
      for (size_t c = 0; c < 2 * n; ++c) {
        aug.at(r, c) = gf256::Add(aug.at(r, c), gf256::Mul(f, aug.at(col, c)));
      }
    }
  }
  GfMatrix out(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) out.at(r, c) = aug.at(r, n + c);
  }
  return out;
}

Status GfMatrix::ReduceLeadingSquareToIdentity() {
  size_t n = cols_;
  REO_CHECK(rows_ >= n);
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    while (pivot < rows_ && at(pivot, col) == 0) ++pivot;
    if (pivot == rows_) return {ErrorCode::kInvalidArgument, "singular leading square"};
    if (pivot != col) {
      for (size_t c = 0; c < cols_; ++c) std::swap(at(pivot, c), at(col, c));
    }
    uint8_t inv = gf256::Inv(at(col, col));
    for (size_t c = 0; c < cols_; ++c) at(col, c) = gf256::Mul(at(col, c), inv);
    for (size_t r = 0; r < rows_; ++r) {
      if (r == col) continue;
      uint8_t f = at(r, col);
      if (f == 0) continue;
      for (size_t c = 0; c < cols_; ++c) {
        at(r, c) = gf256::Add(at(r, c), gf256::Mul(f, at(col, c)));
      }
    }
  }
  return Status::Ok();
}

}  // namespace reo
