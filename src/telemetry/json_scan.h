// Minimal JSON reader for the telemetry plane's own exports: an arena DOM
// (one flat node vector, indices as references) just rich enough for the
// admin tooling (reo_top, admin_probe) to walk STATS / SERIES / EVENTS /
// HEALTH responses. Strict on structure (balanced, complete, single root),
// tolerant on nothing — a parse failure returns nullopt so probes fail
// loudly instead of reading garbage.
//
// Deliberately NOT a general-purpose library: no writer (json_util.h
// emits), no \uXXXX decoding beyond passthrough of the escaped text for
// ASCII, no number-roundtrip guarantees past double precision, input
// capped to the wire protocol's frame limit. Both sides of the wire are
// this repo; the fuzz tests cover hostile inputs anyway.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace reo {

class JsonDoc {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON value (plus optional surrounding whitespace).
  /// Returns nullopt on any syntax error, trailing garbage, or input
  /// larger than kMaxInput / nested deeper than kMaxDepth.
  static std::optional<JsonDoc> Parse(std::string_view text);

  static constexpr size_t kMaxInput = 64u << 20;
  static constexpr int kMaxDepth = 64;
  static constexpr int kInvalid = -1;

  int root() const { return 0; }

  Type type(int node) const { return nodes_[static_cast<size_t>(node)].type; }
  bool is(int node, Type t) const { return node != kInvalid && type(node) == t; }

  /// Number value; 0.0 if the node is not a number.
  double number(int node) const;
  bool boolean(int node) const;
  /// Decoded string value; empty if not a string.
  const std::string& str(int node) const;

  /// Array length / object member count; 0 for scalars.
  size_t size(int node) const;
  /// Array element i (kInvalid if out of range / not an array).
  int item(int node, size_t i) const;
  /// Object member by key (kInvalid if missing / not an object). Keys with
  /// dots are fine — lookup is exact, not path-split.
  int member(int node, std::string_view key) const;
  /// Object member by position, for iteration.
  const std::string& key(int node, size_t i) const;
  int value(int node, size_t i) const;

  /// Convenience: member(...) chained through nested objects.
  int Find(std::initializer_list<std::string_view> path) const;

  /// Numbers of an all-number/null array (null -> NaN); empty if not.
  std::vector<double> NumberArray(int node) const;

 private:
  struct Node {
    Type type = Type::kNull;
    double num = 0.0;
    bool b = false;
    std::string str;                    // string value
    std::vector<std::string> keys;      // object keys
    std::vector<int> children;          // array items / object values
  };

  std::vector<Node> nodes_;
  static const std::string kEmpty;

  struct Parser;
};

}  // namespace reo
