// BENCH_serve.json: the machine-readable serving-benchmark report.
//
// One flat schema shared by tools/reo_loadgen (real sockets) and
// bench/openloop_latency (simulator), so CI and the checked-in baseline
// can diff runs field-by-field instead of scraping stdout:
//
//   {
//     "schema": "reo.bench_serve.v1",
//     "bench": "reo_loadgen",
//     "workload": "4conn x 3000req ...",
//     "ops": 12000,
//     "wall_seconds": 2.61,
//     "cpu_seconds": 1.94,
//     "throughput_ops_per_sec": 4597.7,
//     "latency_us": {"p50": 531.0, "p99": 3804.0, "p999": 5333.0},
//     "bytes_per_op": 43412.6,
//     "allocs_per_op": 102.4
//   }
//
// allocs_per_op is -1 when the producer cannot count allocations (the
// simulator benches); every other field is always present. Validation is
// tools/bench_validate (dependency-free, same pattern as trace_validate).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace reo {

inline constexpr const char* kBenchServeSchema = "reo.bench_serve.v1";

struct BenchServeReport {
  std::string bench;     ///< producing binary, e.g. "reo_loadgen"
  std::string workload;  ///< human-readable workload parameters
  uint64_t ops = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;  ///< user+system of the producing process
  double throughput_ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double bytes_per_op = 0.0;
  double allocs_per_op = -1.0;  ///< -1 = not measured
};

/// Renders the report as the schema above (stable key order).
std::string BenchServeToJson(const BenchServeReport& report);

/// Atomically writes the report to `path`.
Status WriteBenchServeJson(const std::string& path,
                           const BenchServeReport& report);

}  // namespace reo
