// Shared JSON emission helpers for the telemetry plane's hand-rolled
// encoders (metric snapshots, time-series exports, event logs, health
// reports). Emission only — parsing lives in json_scan.h.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace reo {

/// %g-style compact number formatting without locale surprises. JSON has
/// no literal for non-finite values (an unbounded H_hot gauge, a NaN
/// ratio over an empty window) — render those as null.
inline std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Enough digits to round-trip counters up to 2^53 exactly.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Appends `s` as a JSON string literal, escaping quotes, backslashes,
/// and control characters (event messages can carry newlines from
/// strerror/operator input; metric names never do, but the encoder must
/// not depend on that).
inline void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

inline std::string JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(out, s);
  return out;
}

}  // namespace reo
