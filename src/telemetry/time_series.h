// Windowed time-series over live metrics: a bounded ring of fixed-interval
// windows, each recording per-window deltas (counters), sampled levels
// (gauges), delta ratios (e.g. miss ratio, flash writes per op), and
// per-window latency percentiles (histogram deltas). This is the substrate
// the ADMIN SERIES wire command and the reo_top dashboard read, and what a
// ReCA-style phase-change detector (ROADMAP item 4) would consume.
//
// Memory is bounded by construction: capacity windows x tracked columns of
// doubles, regardless of runtime. If the owner stalls (e.g. a debugger
// pause) and many windows elapse before the next Advance(), the ring
// fast-forwards — at most `capacity` windows materialize and the skipped
// count records the gap — so a stall costs O(capacity), never O(elapsed).
//
// Threading: Track* calls happen at wiring time (before the server runs);
// Advance() and the query/export methods serialize on an internal mutex and
// may be called from any thread. The tracked metrics themselves are read
// with the registry's relaxed-atomic accessors, so Advance() never blocks
// metric writers.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "telemetry/metric_registry.h"

namespace reo {

struct TimeSeriesConfig {
  uint64_t window_ns = 1'000'000'000;  ///< window width (default 1 s)
  size_t capacity = 128;               ///< closed windows retained
};

class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(TimeSeriesConfig cfg = {});

  TimeSeriesRing(const TimeSeriesRing&) = delete;
  TimeSeriesRing& operator=(const TimeSeriesRing&) = delete;

  // --- Tracking registration (wiring time). Each call adds one or more
  // named columns; names must be unique across calls. Pointers must
  // outlive the ring (they point into a MetricRegistry).

  /// Column `name`: per-window delta of the counter.
  void TrackCounter(std::string name, const Counter* c);

  /// Column `name`: per-window delta of the SUM of several counters —
  /// the multi-shard form (one same-named counter per shard registry).
  /// Summing before the delta keeps every shard aligned on the same
  /// window boundary by construction.
  void TrackCounter(std::string name, std::vector<const Counter*> cs);

  /// Column `name`: gauge level sampled at window close.
  void TrackGauge(std::string name, const Gauge* g);

  /// Column `name`: sum of several gauges sampled at window close (e.g.
  /// active connections across every shard).
  void TrackGauge(std::string name, std::vector<const Gauge*> gs);

  /// Column `name`: delta(sum of numerators) / delta(sum of denominators)
  /// per window; an empty-denominator window renders NaN (JSON null).
  /// Multi-counter sums cover derived ratios like flash-writes-per-op
  /// (sum of per-device write counters over server requests).
  void TrackRatio(std::string name, std::vector<const Counter*> numerators,
                  std::vector<const Counter*> denominators);

  /// Columns `name.p50`, `name.p99`, `name.count`: per-window percentiles
  /// and sample count from the histogram's windowed delta (DeltaSince of
  /// successive folded snapshots; the delta's max is cumulative, so
  /// per-window percentiles clamp at the all-time max — see histogram.h).
  void TrackHistogram(std::string name, const ShardedHistogram* h);

  /// Same columns over the BUCKET-level merge of several histograms (one
  /// per shard registry): per-window percentiles are computed over the
  /// union of samples, never averaged from per-shard percentiles.
  void TrackHistogram(std::string name,
                      std::vector<const ShardedHistogram*> hs);

  // --- Advancing time. The first call pins the epoch (opens the first
  // window); later calls close every window whose end <= now_ns.
  void Advance(uint64_t now_ns);

  // --- Queries (oldest -> newest; max_windows == 0 means all retained).
  size_t windows() const;
  uint64_t skipped_windows() const;
  uint64_t window_ns() const { return cfg_.window_ns; }
  size_t columns() const;

  /// Values of one column; empty if the column name is unknown.
  std::vector<double> Values(std::string_view column,
                             size_t max_windows = 0) const;
  /// Window start timestamps in milliseconds (now_ns / 1e6 domain).
  std::vector<uint64_t> WindowStartMs(size_t max_windows = 0) const;

  /// {"schema":"reo.series.v1","window_ms":...,"windows":...,
  ///  "skipped_windows":...,"t_ms":[...],"series":{"name":[...],...}}
  /// NaN (empty ratio window) renders as null.
  std::string ToJson(size_t max_windows = 0) const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kRatio, kHistogram };

  struct Column {
    std::string name;
    std::vector<double> ring;  // capacity slots, indexed like times_
  };

  struct Series {
    Kind kind = Kind::kCounter;
    std::vector<const Counter*> num;  // counter / ratio numerator
    std::vector<const Counter*> den;  // ratio denominator
    std::vector<const Gauge*> gauges;
    std::vector<const ShardedHistogram*> hists;
    uint64_t prev_num = 0;
    uint64_t prev_den = 0;
    Histogram prev_hist;
    size_t col0 = 0;  // first owned column index (histogram owns 3)

    Histogram FoldHists() const;  // bucket-level merge across hists
  };

  static uint64_t SumCounters(const std::vector<const Counter*>& cs);
  size_t Slot(size_t logical) const {  // logical 0 = oldest
    return (head_ + logical) % cfg_.capacity;
  }
  void CloseWindow();  // caller holds mu_; closes [open_start_, +window_ns)

  TimeSeriesConfig cfg_;
  mutable std::mutex mu_;
  std::vector<Series> series_;
  std::vector<Column> cols_;
  std::vector<uint64_t> times_ms_;  // window start, ms
  bool started_ = false;
  uint64_t open_start_ns_ = 0;
  size_t head_ = 0;  // slot of oldest closed window
  size_t size_ = 0;  // closed windows retained (<= capacity)
  uint64_t skipped_ = 0;
};

/// Wires the serving-path metrics every deployment wants to watch into
/// `ring`: request/byte/error deltas, connection level, per-op read/write
/// latency percentiles, read-miss ratio, and flash writes per op summed
/// over `num_devices` devices. Metrics are resolved (created if absent)
/// from `registry`, so call this after — or instead of worrying about —
/// component AttachTelemetry order.
void TrackServingDefaults(MetricRegistry& registry, TimeSeriesRing& ring,
                          size_t num_devices);

/// Multi-shard form: the same columns, with every counter / gauge /
/// histogram summed (bucket-merged) across one registry per shard, so the
/// control-plane ring reports whole-process series and the paper ratios
/// in reo_top stay correct under sharding. `num_devices` is per shard.
void TrackServingDefaults(std::span<MetricRegistry* const> registries,
                          TimeSeriesRing& ring, size_t num_devices);

}  // namespace reo
