#include "telemetry/bench_json.h"

#include <cstdio>
#include <cmath>

#include "common/file_util.h"

namespace reo {
namespace {

/// Escapes the few characters a workload description could smuggle in.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double v) {
  // JSON has no NaN/Inf; clamp to 0 rather than emit an unparsable token.
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string BenchServeToJson(const BenchServeReport& r) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"";
  out += kBenchServeSchema;
  out += "\",\n";
  out += "  \"bench\": \"" + JsonEscape(r.bench) + "\",\n";
  out += "  \"workload\": \"" + JsonEscape(r.workload) + "\",\n";
  out += "  \"ops\": " + std::to_string(r.ops) + ",\n";
  out += "  \"wall_seconds\": " + Num(r.wall_seconds) + ",\n";
  out += "  \"cpu_seconds\": " + Num(r.cpu_seconds) + ",\n";
  out += "  \"throughput_ops_per_sec\": " + Num(r.throughput_ops_per_sec) +
         ",\n";
  out += "  \"latency_us\": {\"p50\": " + Num(r.p50_us) +
         ", \"p99\": " + Num(r.p99_us) + ", \"p999\": " + Num(r.p999_us) +
         "},\n";
  out += "  \"bytes_per_op\": " + Num(r.bytes_per_op) + ",\n";
  out += "  \"allocs_per_op\": " + Num(r.allocs_per_op) + "\n";
  out += "}\n";
  return out;
}

Status WriteBenchServeJson(const std::string& path,
                           const BenchServeReport& report) {
  return WriteFileAtomic(path, BenchServeToJson(report));
}

}  // namespace reo
