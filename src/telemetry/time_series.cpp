#include "telemetry/time_series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "telemetry/json_util.h"

namespace reo {

TimeSeriesRing::TimeSeriesRing(TimeSeriesConfig cfg) : cfg_(cfg) {
  if (cfg_.window_ns == 0) cfg_.window_ns = 1;
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  times_ms_.resize(cfg_.capacity, 0);
}

void TimeSeriesRing::TrackCounter(std::string name, const Counter* c) {
  TrackCounter(std::move(name), std::vector<const Counter*>{c});
}

void TimeSeriesRing::TrackCounter(std::string name,
                                  std::vector<const Counter*> cs) {
  std::lock_guard<std::mutex> lock(mu_);
  Series s;
  s.kind = Kind::kCounter;
  s.num = std::move(cs);
  s.prev_num = SumCounters(s.num);
  s.col0 = cols_.size();
  cols_.push_back({std::move(name), std::vector<double>(cfg_.capacity, 0.0)});
  series_.push_back(std::move(s));
}

void TimeSeriesRing::TrackGauge(std::string name, const Gauge* g) {
  TrackGauge(std::move(name), std::vector<const Gauge*>{g});
}

void TimeSeriesRing::TrackGauge(std::string name,
                                std::vector<const Gauge*> gs) {
  std::lock_guard<std::mutex> lock(mu_);
  Series s;
  s.kind = Kind::kGauge;
  s.gauges = std::move(gs);
  s.col0 = cols_.size();
  cols_.push_back({std::move(name), std::vector<double>(cfg_.capacity, 0.0)});
  series_.push_back(std::move(s));
}

void TimeSeriesRing::TrackRatio(std::string name,
                                std::vector<const Counter*> numerators,
                                std::vector<const Counter*> denominators) {
  std::lock_guard<std::mutex> lock(mu_);
  Series s;
  s.kind = Kind::kRatio;
  s.num = std::move(numerators);
  s.den = std::move(denominators);
  s.prev_num = SumCounters(s.num);
  s.prev_den = SumCounters(s.den);
  s.col0 = cols_.size();
  cols_.push_back({std::move(name), std::vector<double>(cfg_.capacity, 0.0)});
  series_.push_back(std::move(s));
}

void TimeSeriesRing::TrackHistogram(std::string name,
                                    const ShardedHistogram* h) {
  TrackHistogram(std::move(name), std::vector<const ShardedHistogram*>{h});
}

void TimeSeriesRing::TrackHistogram(std::string name,
                                    std::vector<const ShardedHistogram*> hs) {
  std::lock_guard<std::mutex> lock(mu_);
  Series s;
  s.kind = Kind::kHistogram;
  s.hists = std::move(hs);
  s.prev_hist = s.FoldHists();
  s.col0 = cols_.size();
  cols_.push_back({name + ".p50", std::vector<double>(cfg_.capacity, 0.0)});
  cols_.push_back({name + ".p99", std::vector<double>(cfg_.capacity, 0.0)});
  cols_.push_back(
      {std::move(name) + ".count", std::vector<double>(cfg_.capacity, 0.0)});
  series_.push_back(std::move(s));
}

uint64_t TimeSeriesRing::SumCounters(const std::vector<const Counter*>& cs) {
  uint64_t sum = 0;
  for (const Counter* c : cs) sum += c->value();
  return sum;
}

Histogram TimeSeriesRing::Series::FoldHists() const {
  Histogram out;
  for (const ShardedHistogram* h : hists) out.Merge(h->Merged());
  return out;
}

void TimeSeriesRing::CloseWindow() {
  size_t slot = Slot(size_);  // if full, Slot(size_) == head_ (overwritten)
  if (size_ == cfg_.capacity) {
    head_ = (head_ + 1) % cfg_.capacity;
  } else {
    ++size_;
  }
  times_ms_[slot] = open_start_ns_ / 1'000'000;
  open_start_ns_ += cfg_.window_ns;

  for (Series& s : series_) {
    switch (s.kind) {
      case Kind::kCounter: {
        uint64_t cum = SumCounters(s.num);
        // Saturating delta: a registry Reset between windows must render a
        // zero window, not a huge unsigned wraparound.
        uint64_t d = cum > s.prev_num ? cum - s.prev_num : 0;
        cols_[s.col0].ring[slot] = static_cast<double>(d);
        s.prev_num = cum;
        break;
      }
      case Kind::kGauge: {
        double level = 0.0;
        for (const Gauge* g : s.gauges) level += g->value();
        cols_[s.col0].ring[slot] = level;
        break;
      }
      case Kind::kRatio: {
        uint64_t num_cum = SumCounters(s.num);
        uint64_t den_cum = SumCounters(s.den);
        uint64_t dn = num_cum > s.prev_num ? num_cum - s.prev_num : 0;
        uint64_t dd = den_cum > s.prev_den ? den_cum - s.prev_den : 0;
        cols_[s.col0].ring[slot] =
            dd ? static_cast<double>(dn) / static_cast<double>(dd)
               : std::numeric_limits<double>::quiet_NaN();
        s.prev_num = num_cum;
        s.prev_den = den_cum;
        break;
      }
      case Kind::kHistogram: {
        Histogram folded = s.FoldHists();
        Histogram delta = folded.DeltaSince(s.prev_hist);
        cols_[s.col0].ring[slot] = delta.Percentile(0.50);
        cols_[s.col0 + 1].ring[slot] = delta.Percentile(0.99);
        cols_[s.col0 + 2].ring[slot] = static_cast<double>(delta.count());
        s.prev_hist = std::move(folded);
        break;
      }
    }
  }
}

void TimeSeriesRing::Advance(uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) {
    started_ = true;
    open_start_ns_ = now_ns;
    // Re-baseline every series at the epoch: traffic between Track* and
    // the first Advance (e.g. warmup ops before the server loop starts)
    // must not leak into the first window's delta.
    for (Series& s : series_) {
      s.prev_num = SumCounters(s.num);
      s.prev_den = SumCounters(s.den);
      if (!s.hists.empty()) s.prev_hist = s.FoldHists();
    }
    return;
  }
  if (now_ns < open_start_ns_) return;  // clock went backwards: hold
  uint64_t elapsed = (now_ns - open_start_ns_) / cfg_.window_ns;
  if (elapsed > cfg_.capacity) {
    // Fast-forward a stall: only the trailing `capacity` windows can be
    // retained anyway, so jump the open window and account the gap. The
    // whole stalled-period delta lands in the first materialized window.
    skipped_ += elapsed - cfg_.capacity;
    open_start_ns_ += (elapsed - cfg_.capacity) * cfg_.window_ns;
    elapsed = cfg_.capacity;
  }
  for (uint64_t i = 0; i < elapsed; ++i) CloseWindow();
}

size_t TimeSeriesRing::windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

uint64_t TimeSeriesRing::skipped_windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_;
}

size_t TimeSeriesRing::columns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cols_.size();
}

std::vector<double> TimeSeriesRing::Values(std::string_view column,
                                           size_t max_windows) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Column& c : cols_) {
    if (c.name != column) continue;
    size_t n = size_;
    if (max_windows && max_windows < n) n = max_windows;
    std::vector<double> out;
    out.reserve(n);
    for (size_t i = size_ - n; i < size_; ++i) out.push_back(c.ring[Slot(i)]);
    return out;
  }
  return {};
}

std::vector<uint64_t> TimeSeriesRing::WindowStartMs(size_t max_windows) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = size_;
  if (max_windows && max_windows < n) n = max_windows;
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = size_ - n; i < size_; ++i) out.push_back(times_ms_[Slot(i)]);
  return out;
}

std::string TimeSeriesRing::ToJson(size_t max_windows) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = size_;
  if (max_windows && max_windows < n) n = max_windows;
  size_t first = size_ - n;

  std::string out = "{\"schema\":\"reo.series.v1\",\"window_ms\":";
  out += JsonNum(static_cast<double>(cfg_.window_ns) / 1e6);
  out += ",\"windows\":" + JsonNum(static_cast<double>(n));
  out += ",\"skipped_windows\":" + JsonNum(static_cast<double>(skipped_));
  out += ",\"t_ms\":[";
  for (size_t i = first; i < size_; ++i) {
    if (i != first) out.push_back(',');
    out += JsonNum(static_cast<double>(times_ms_[Slot(i)]));
  }
  out += "],\"series\":{";
  bool first_col = true;
  for (const Column& c : cols_) {
    if (!first_col) out.push_back(',');
    first_col = false;
    AppendJsonString(out, c.name);
    out += ":[";
    for (size_t i = first; i < size_; ++i) {
      if (i != first) out.push_back(',');
      out += JsonNum(c.ring[Slot(i)]);  // NaN ratio -> null
    }
    out.push_back(']');
  }
  out += "}}";
  return out;
}

void TrackServingDefaults(MetricRegistry& registry, TimeSeriesRing& ring,
                          size_t num_devices) {
  MetricRegistry* regs[] = {&registry};
  TrackServingDefaults(regs, ring, num_devices);
}

void TrackServingDefaults(std::span<MetricRegistry* const> registries,
                          TimeSeriesRing& ring, size_t num_devices) {
  // Every column sums the same-named metric across all registries; with
  // one registry this collapses to the original single-stack wiring.
  auto counters_named = [&](const std::string& name) {
    std::vector<const Counter*> cs;
    cs.reserve(registries.size());
    for (MetricRegistry* r : registries) cs.push_back(&r->GetCounter(name));
    return cs;
  };
  auto counter = [&](const char* name) {
    ring.TrackCounter(name, counters_named(name));
  };
  counter("server.requests");
  counter("server.bytes_in");
  counter("server.bytes_out");
  counter("server.crc_errors");
  counter("server.frame_errors");
  counter("server.decode_errors");
  counter("osd.reads");
  counter("osd.writes");
  counter("osd.degraded_reads");
  counter("osd.sense_errors");
  counter("retry.attempts");
  counter("retry.exhausted");
  counter("fault.crc_detected");
  counter("fault.crc_repairs");
  counter("fault.crc_unrepaired");
  counter("scrub.chunks_repaired");
  counter("scrub.corrupt_found");

  std::vector<const Gauge*> active;
  std::vector<const ShardedHistogram*> lat_read, lat_write;
  for (MetricRegistry* r : registries) {
    active.push_back(&r->GetGauge("server.connections.active"));
    lat_read.push_back(&r->GetHistogram("server.latency.read_us"));
    lat_write.push_back(&r->GetHistogram("server.latency.write_us"));
  }
  ring.TrackGauge("server.connections.active", std::move(active));
  ring.TrackHistogram("server.latency.read_us", std::move(lat_read));
  ring.TrackHistogram("server.latency.write_us", std::move(lat_write));

  // Read miss ratio on the serving path (no cache_manager in reo_server:
  // the OSD target counts object-index misses directly).
  ring.TrackRatio("osd.read_miss_ratio", counters_named("osd.read_misses"),
                  counters_named("osd.reads"));

  // Flash writes per server op: the paper's device-wear lens. Sums every
  // device's write counter (per shard) so the ratio survives device
  // replacement and covers all shard arrays.
  std::vector<const Counter*> flash_writes;
  flash_writes.reserve(num_devices * registries.size());
  for (size_t d = 0; d < num_devices; ++d) {
    for (const Counter* c :
         counters_named("flash.dev" + std::to_string(d) + ".writes")) {
      flash_writes.push_back(c);
    }
  }
  if (!flash_writes.empty()) {
    ring.TrackRatio("flash.writes_per_op", std::move(flash_writes),
                    counters_named("server.requests"));
  }

  // DRAM admission tier (all zero when the tier is off; the registry
  // creates the counters either way so the columns always exist).
  counter("admit.staged");
  counter("admit.graduated");
  counter("admit.dropped");
  counter("dram.evictions");
  std::vector<const Counter*> dram_hits = counters_named("dram.hits");
  std::vector<const Counter*> dram_all = dram_hits;
  for (const Counter* c : counters_named("dram.misses")) {
    dram_all.push_back(c);
  }
  ring.TrackRatio("dram.hit_ratio", std::move(dram_hits),
                  std::move(dram_all));
}

}  // namespace reo
