#include "telemetry/metric_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace reo {
namespace {

/// %g-style compact formatting without locale surprises. Gauges can carry
/// non-finite values (e.g. an unbounded H_hot threshold), which JSON has
/// no literal for — render those as null.
std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Enough digits to round-trip counters up to 2^53 exactly.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// RFC 4180 field quoting: names containing a comma, quote, or newline
/// are wrapped in double quotes with embedded quotes doubled, so a
/// snapshot always loads as one row per metric.
std::string CsvField(std::string_view s) {
  if (s.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

const MetricSnapshot::Entry* MetricSnapshot::Find(std::string_view name) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Entry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

std::string MetricSnapshot::ToJson() const {
  std::string out = "{";
  auto emit_section = [&](const char* title, Kind kind, auto render) {
    out += "\"";
    out += title;
    out += "\":{";
    bool first = true;
    for (const Entry& e : entries) {
      if (e.kind != kind) continue;
      if (!first) out.push_back(',');
      first = false;
      AppendJsonString(out, e.name);
      out.push_back(':');
      render(e);
    }
    out += "}";
  };
  emit_section("counters", Kind::kCounter,
               [&](const Entry& e) { out += Num(e.value); });
  out.push_back(',');
  emit_section("gauges", Kind::kGauge,
               [&](const Entry& e) { out += Num(e.value); });
  out.push_back(',');
  emit_section("histograms", Kind::kHistogram, [&](const Entry& e) {
    out += "{\"count\":" + Num(static_cast<double>(e.count)) +
           ",\"mean\":" + Num(e.mean) + ",\"p50\":" + Num(e.p50) +
           ",\"p99\":" + Num(e.p99) + ",\"p999\":" + Num(e.p999) +
           ",\"max\":" + Num(e.max) + "}";
  });
  out.push_back('}');
  return out;
}

std::string MetricSnapshot::ToCsv() const {
  std::string out = "kind,name,value,count,mean,p50,p99,p999,max\n";
  for (const Entry& e : entries) {
    switch (e.kind) {
      case Kind::kCounter:
        out += "counter," + CsvField(e.name) + "," + Num(e.value) + ",,,,,,\n";
        break;
      case Kind::kGauge:
        out += "gauge," + CsvField(e.name) + "," + Num(e.value) + ",,,,,,\n";
        break;
      case Kind::kHistogram:
        out += "histogram," + CsvField(e.name) + ",," +
               Num(static_cast<double>(e.count)) + "," + Num(e.mean) + "," +
               Num(e.p50) + "," + Num(e.p99) + "," + Num(e.p999) + "," +
               Num(e.max) + "\n";
        break;
    }
  }
  return out;
}

bool MetricRegistry::ClaimName(const std::string& name, Kind kind) {
  auto [it, inserted] = kinds_.emplace(name, kind);
  if (inserted || it->second == kind) return true;
  ++name_collisions_;
  return false;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  if (!ClaimName(name, Kind::kCounter)) {
    orphan_counters_.push_back(std::make_unique<Counter>());
    return *orphan_counters_.back();
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  if (!ClaimName(name, Kind::kGauge)) {
    orphan_gauges_.push_back(std::make_unique<Gauge>());
    return *orphan_gauges_.back();
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  if (!ClaimName(name, Kind::kHistogram)) {
    orphan_histograms_.push_back(std::make_unique<Histogram>());
    return *orphan_histograms_.back();
  }
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricRegistry::Reset() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricSnapshot MetricRegistry::Snapshot() const {
  MetricSnapshot snap;
  snap.entries.reserve(size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot::Entry e;
    e.name = name;
    e.kind = MetricSnapshot::Kind::kCounter;
    e.value = static_cast<double>(c->value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot::Entry e;
    e.name = name;
    e.kind = MetricSnapshot::Kind::kGauge;
    e.value = g->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot::Entry e;
    e.name = name;
    e.kind = MetricSnapshot::Kind::kHistogram;
    e.count = h->count();
    e.mean = h->mean();
    e.p50 = h->Percentile(0.50);
    e.p99 = h->Percentile(0.99);
    e.p999 = h->Percentile(0.999);
    e.max = h->max();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const MetricSnapshot::Entry& a, const MetricSnapshot::Entry& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace reo
