#include "telemetry/metric_registry.h"

#include <algorithm>

#include "telemetry/json_util.h"

namespace reo {
namespace {

/// RFC 4180 field quoting: names containing a comma, quote, or newline
/// are wrapped in double quotes with embedded quotes doubled, so a
/// snapshot always loads as one row per metric.
std::string CsvField(std::string_view s) {
  if (s.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

size_t CurrentMetricDomain() {
  static std::atomic<size_t> next{0};
  thread_local size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricDomains;
  return mine;
}

void ShardedHistogram::Merge(const Histogram& other) {
  Shard& s = shards_[CurrentMetricDomain()];
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    uint64_t n = other.bucket_count(b);
    if (n) {
      s.buckets[static_cast<size_t>(b)].fetch_add(n,
                                                  std::memory_order_relaxed);
    }
  }
  s.count.fetch_add(other.count(), std::memory_order_relaxed);
  s.sum.fetch_add(other.sum(), std::memory_order_relaxed);
  double m = s.max.load(std::memory_order_relaxed);
  double om = other.max();
  while (om > m &&
         !s.max.compare_exchange_weak(m, om, std::memory_order_relaxed)) {
  }
}

Histogram ShardedHistogram::Merged() const {
  Histogram out;
  uint64_t counts[Histogram::kBuckets];
  for (const Shard& s : shards_) {
    uint64_t total = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      counts[b] = s.buckets[static_cast<size_t>(b)].load(
          std::memory_order_relaxed);
      total += counts[b];
    }
    out.MergeBuckets(counts, total, s.sum.load(std::memory_order_relaxed),
                     s.max.load(std::memory_order_relaxed));
  }
  return out;
}

uint64_t ShardedHistogram::count() const {
  uint64_t n = 0;
  for (const Shard& s : shards_) n += s.count.load(std::memory_order_relaxed);
  return n;
}

double ShardedHistogram::sum() const {
  double v = 0.0;
  for (const Shard& s : shards_) v += s.sum.load(std::memory_order_relaxed);
  return v;
}

double ShardedHistogram::mean() const {
  uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double ShardedHistogram::max() const {
  double m = 0.0;
  for (const Shard& s : shards_) {
    m = std::max(m, s.max.load(std::memory_order_relaxed));
  }
  return m;
}

void ShardedHistogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.max.store(0.0, std::memory_order_relaxed);
  }
}

const MetricSnapshot::Entry* MetricSnapshot::Find(std::string_view name) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Entry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

std::string MetricSnapshot::ToJson() const {
  std::string out = "{";
  auto emit_section = [&](const char* title, Kind kind, auto render) {
    out += "\"";
    out += title;
    out += "\":{";
    bool first = true;
    for (const Entry& e : entries) {
      if (e.kind != kind) continue;
      if (!first) out.push_back(',');
      first = false;
      AppendJsonString(out, e.name);
      out.push_back(':');
      render(e);
    }
    out += "}";
  };
  emit_section("counters", Kind::kCounter,
               [&](const Entry& e) { out += JsonNum(e.value); });
  out.push_back(',');
  emit_section("gauges", Kind::kGauge,
               [&](const Entry& e) { out += JsonNum(e.value); });
  out.push_back(',');
  emit_section("histograms", Kind::kHistogram, [&](const Entry& e) {
    out += "{\"count\":" + JsonNum(static_cast<double>(e.count)) +
           ",\"mean\":" + JsonNum(e.mean) + ",\"p50\":" + JsonNum(e.p50) +
           ",\"p99\":" + JsonNum(e.p99) + ",\"p999\":" + JsonNum(e.p999) +
           ",\"max\":" + JsonNum(e.max) + ",\"sum\":" + JsonNum(e.sum) + "}";
  });
  out.push_back('}');
  return out;
}

std::string MetricSnapshot::ToCsv() const {
  std::string out = "kind,name,value,count,mean,p50,p99,p999,max,sum\n";
  for (const Entry& e : entries) {
    switch (e.kind) {
      case Kind::kCounter:
        out += "counter," + CsvField(e.name) + "," + JsonNum(e.value) +
               ",,,,,,,\n";
        break;
      case Kind::kGauge:
        out += "gauge," + CsvField(e.name) + "," + JsonNum(e.value) +
               ",,,,,,,\n";
        break;
      case Kind::kHistogram:
        out += "histogram," + CsvField(e.name) + ",," +
               JsonNum(static_cast<double>(e.count)) + "," + JsonNum(e.mean) +
               "," + JsonNum(e.p50) + "," + JsonNum(e.p99) + "," +
               JsonNum(e.p999) + "," + JsonNum(e.max) + "," + JsonNum(e.sum) +
               "\n";
        break;
    }
  }
  return out;
}

bool MetricRegistry::ClaimName(const std::string& name, Kind kind) {
  auto [it, inserted] = kinds_.emplace(name, kind);
  if (inserted || it->second == kind) return true;
  name_collisions_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ClaimName(name, Kind::kCounter)) {
    orphan_counters_.push_back(std::make_unique<Counter>());
    return *orphan_counters_.back();
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ClaimName(name, Kind::kGauge)) {
    orphan_gauges_.push_back(std::make_unique<Gauge>());
    return *orphan_gauges_.back();
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

ShardedHistogram& MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ClaimName(name, Kind::kHistogram)) {
    orphan_histograms_.push_back(std::make_unique<ShardedHistogram>());
    return *orphan_histograms_.back();
  }
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<ShardedHistogram>();
  return *slot;
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricSnapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot::Entry e;
    e.name = name;
    e.kind = MetricSnapshot::Kind::kCounter;
    e.value = static_cast<double>(c->value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot::Entry e;
    e.name = name;
    e.kind = MetricSnapshot::Kind::kGauge;
    e.value = g->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    Histogram merged = h->Merged();
    MetricSnapshot::Entry e;
    e.name = name;
    e.kind = MetricSnapshot::Kind::kHistogram;
    e.count = merged.count();
    e.mean = merged.mean();
    e.p50 = merged.Percentile(0.50);
    e.p99 = merged.Percentile(0.99);
    e.p999 = merged.Percentile(0.999);
    e.max = merged.max();
    e.sum = merged.sum();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const MetricSnapshot::Entry& a, const MetricSnapshot::Entry& b) {
              return a.name < b.name;
            });
  return snap;
}

MetricSnapshot MetricRegistry::Merged(
    std::span<const MetricRegistry* const> regs) {
  // Accumulate per name across registries, locking one registry at a
  // time (no lock nesting; concurrent metric updates stay relaxed-atomic
  // and never block on this).
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  for (const MetricRegistry* reg : regs) {
    if (reg == nullptr) continue;
    std::lock_guard<std::mutex> lock(reg->mu_);
    for (const auto& [name, c] : reg->counters_) {
      counters[name] += static_cast<double>(c->value());
    }
    for (const auto& [name, g] : reg->gauges_) {
      gauges[name] += g->value();
    }
    for (const auto& [name, h] : reg->histograms_) {
      histograms[name].Merge(h->Merged());
    }
  }
  MetricSnapshot snap;
  snap.entries.reserve(counters.size() + gauges.size() + histograms.size());
  for (const auto& [name, v] : counters) {
    MetricSnapshot::Entry e;
    e.name = name;
    e.kind = MetricSnapshot::Kind::kCounter;
    e.value = v;
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, v] : gauges) {
    MetricSnapshot::Entry e;
    e.name = name;
    e.kind = MetricSnapshot::Kind::kGauge;
    e.value = v;
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, merged] : histograms) {
    MetricSnapshot::Entry e;
    e.name = name;
    e.kind = MetricSnapshot::Kind::kHistogram;
    e.count = merged.count();
    e.mean = merged.mean();
    e.p50 = merged.Percentile(0.50);
    e.p99 = merged.Percentile(0.99);
    e.p999 = merged.Percentile(0.999);
    e.max = merged.max();
    e.sum = merged.sum();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const MetricSnapshot::Entry& a, const MetricSnapshot::Entry& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace reo
