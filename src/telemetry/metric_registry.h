// Always-on runtime telemetry: a registry of named counters, gauges, and
// log-bucketed histograms shared by every layer of the cache (data plane,
// OSD target, flash array, recovery scheduler, simulator, TCP server).
//
// Design goals, in order:
//   1. Cheap on the hot path. Components resolve their metrics ONCE (at
//      AttachTelemetry time) into raw pointers; per-event cost is a single
//      relaxed atomic increment / store with no map lookup, lock, or
//      allocation.
//   2. Thread-safe by construction. Counters and histogram buffers are
//      striped across kMetricDomains cache-line-padded domains (each
//      writer thread picks a stable domain, so concurrent shards of a
//      future multi-threaded server never contend on one line), updates
//      are relaxed atomics, and Snapshot() aggregates across domains
//      instead of mutating shared state — readers never perturb writers.
//   3. Optional. Components run un-attached (null pointers) with zero
//      telemetry overhead beyond a predictable branch; the Inc/Set/Observe
//      helpers below fold the null check away from call sites.
//   4. Mergeable & exportable. Histograms reuse common/histogram.h's
//      fixed log-bucket layout (merged across domains at snapshot time);
//      the registry renders one consistent JSON or CSV snapshot.
//
// Metric naming scheme: dot-separated lowercase path,
//   <subsystem>[.<instance>][.<group>].<metric>[_<unit>]
// e.g. "cache.class2.hits", "flash.dev0.writes", "cache.latency.hit_us",
// "recovery.class1.ondemand.rebuilds". Instances are zero-indexed
// ("dev0".."devN", "class0".."class3"). Units are suffixes (_us, _bytes).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"

namespace reo {

/// Update-side striping width. One domain per concurrently-writing thread
/// is the target shape (ROADMAP item 1 plans N serving shards); threads
/// beyond the width share domains correctly (updates stay atomic), they
/// just contend. Power of two so future shard-id masking stays cheap.
inline constexpr size_t kMetricDomains = 8;

/// Stable per-thread domain index in [0, kMetricDomains): assigned
/// round-robin on a thread's first metric update and cached thread-local.
size_t CurrentMetricDomain();

/// Destination cache-line size for the padding below (std::
/// hardware_destructive_interference_size is 64 on every target we build).
inline constexpr size_t kMetricCacheLine = 64;

/// Monotonically increasing event count. Writers add into their own
/// domain's line with relaxed ordering; value() folds the stripes.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    shards_[CurrentMetricDomain()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kMetricCacheLine) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kMetricDomains> shards_;
};

/// Point-in-time level (last write wins). A single relaxed atomic: striping
/// cannot compose last-write-wins semantics, and gauges are updated rarely
/// (per accept/close, per wear recalculation), never per-op.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  alignas(kMetricCacheLine) std::atomic<double> value_{0.0};
};

/// Thread-safe log-bucketed histogram: per-domain atomic bucket buffers
/// sharing common/histogram.h's bucket layout, folded into a plain
/// Histogram on demand. Add() is wait-free (two relaxed fetch_adds, one
/// relaxed float accumulate, one bounded CAS loop for the max).
class ShardedHistogram {
 public:
  ShardedHistogram() = default;
  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  void Add(double v) {
    if (v < 0) v = 0;
    Shard& s = shards_[CurrentMetricDomain()];
    s.buckets[static_cast<size_t>(Histogram::BucketFor(v))].fetch_add(
        1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    double m = s.max.load(std::memory_order_relaxed);
    while (v > m && !s.max.compare_exchange_weak(m, v,
                                                 std::memory_order_relaxed)) {
    }
  }

  /// Bulk-merges a plain (thread-local) histogram into the caller's
  /// domain — the load generator's per-worker rollup path.
  void Merge(const Histogram& other);

  /// Folds every domain into one plain Histogram. Concurrent Add()s are
  /// fine: each shard's fields are read relaxed, so the fold is a
  /// consistent-enough instant (a racing sample may appear in the bucket
  /// array but not yet in the count, skewing one summary by one sample).
  Histogram Merged() const;

  // Convenience passthroughs (fold on demand; snapshot-path cost only).
  uint64_t count() const;
  double sum() const;
  double mean() const;
  double max() const;
  double Percentile(double q) const { return Merged().Percentile(q); }
  std::string Summary() const { return Merged().Summary(); }

  void Reset();

 private:
  struct alignas(kMetricCacheLine) Shard {
    std::array<std::atomic<uint64_t>, Histogram::kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };
  std::array<Shard, kMetricDomains> shards_;
};

/// Null-tolerant hot-path helpers: un-attached components pass nullptr.
inline void Inc(Counter* c, uint64_t n = 1) {
  if (c) c->Inc(n);
}
inline void Set(Gauge* g, double v) {
  if (g) g->Set(v);
}
inline void Observe(ShardedHistogram* h, double v) {
  if (h) h->Add(v);
}
inline void Observe(Histogram* h, double v) {
  if (h) h->Add(v);
}

/// Flat, copyable export of one registry at one instant. Plain data:
/// reports can carry it by value after the registry is gone.
struct MetricSnapshot {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0.0;  ///< counter / gauge reading
    // Histogram summary (kind == kHistogram only).
    uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };

  std::vector<Entry> entries;  ///< sorted by name

  const Entry* Find(std::string_view name) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  std::string ToJson() const;
  /// Header + one row per metric:
  /// kind,name,value,count,mean,p50,p99,p999,max,sum
  std::string ToCsv() const;
};

/// Owner of all metrics for one system instance. Registration is
/// idempotent: a second Get* with the same name and kind returns the same
/// object. Re-using a name with a *different* kind is a programming error
/// the registry survives: the caller receives a private scratch metric
/// (excluded from snapshots) and `name_collisions()` records the bug.
/// Metric addresses are stable for the registry's lifetime.
///
/// Thread safety: registration, Reset, and Snapshot serialize on an
/// internal mutex (they are attach/export-path operations); metric
/// *updates* through resolved pointers are lock-free relaxed atomics and
/// may race freely with everything, including Snapshot().
class MetricRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  ShardedHistogram& GetHistogram(const std::string& name);

  /// Number of cross-kind name collisions observed (0 in a healthy system).
  uint64_t name_collisions() const {
    return name_collisions_.load(std::memory_order_relaxed);
  }

  /// Metrics registered (collided scratch metrics excluded).
  size_t size() const;

  /// Zeroes every metric, keeping registrations (and addresses) intact.
  void Reset();

  MetricSnapshot Snapshot() const;

  /// One snapshot merged across several registries — the multi-shard
  /// ADMIN STATS view. Counters and gauges sum (gauges are levels of
  /// per-shard resources — active connections, DRAM bytes — whose
  /// whole-process reading is the sum); histograms merge at the BUCKET
  /// level before summarizing, so merged percentiles are computed over
  /// the union of samples, never averaged from per-shard summaries.
  /// A name registered in only some registries merges with zero
  /// contributions from the rest. Null registry pointers are skipped.
  static MetricSnapshot Merged(std::span<const MetricRegistry* const> regs);

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  /// True if `name` is free for `kind` (or already that kind); on
  /// cross-kind clash records the collision and returns false. Caller
  /// holds mu_.
  bool ClaimName(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>> histograms_;
  std::map<std::string, Kind> kinds_;

  // Scratch metrics handed out on collision: writable, never exported.
  std::vector<std::unique_ptr<Counter>> orphan_counters_;
  std::vector<std::unique_ptr<Gauge>> orphan_gauges_;
  std::vector<std::unique_ptr<ShardedHistogram>> orphan_histograms_;
  std::atomic<uint64_t> name_collisions_{0};
};

}  // namespace reo
