// Always-on runtime telemetry: a registry of named counters, gauges, and
// log-bucketed histograms shared by every layer of the cache (data plane,
// OSD target, flash array, recovery scheduler, simulator).
//
// Design goals, in order:
//   1. Cheap on the hot path. Components resolve their metrics ONCE (at
//      AttachTelemetry time) into raw pointers; per-event cost is a single
//      increment / store with no map lookup, lock, or allocation.
//   2. Optional. Components run un-attached (null pointers) with zero
//      telemetry overhead beyond a predictable branch; the Inc/Set/Observe
//      helpers below fold the null check away from call sites.
//   3. Mergeable & exportable. Histograms reuse common/histogram.h (fixed
//      log-bucket layout, Merge-able across registries); the registry
//      renders one consistent JSON or CSV snapshot of everything.
//
// Metric naming scheme: dot-separated lowercase path,
//   <subsystem>[.<instance>][.<group>].<metric>[_<unit>]
// e.g. "cache.class2.hits", "flash.dev0.writes", "cache.latency.hit_us",
// "recovery.class1.ondemand.rebuilds". Instances are zero-indexed
// ("dev0".."devN", "class0".."class3"). Units are suffixes (_us, _bytes).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"

namespace reo {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time level (last write wins).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Null-tolerant hot-path helpers: un-attached components pass nullptr.
inline void Inc(Counter* c, uint64_t n = 1) {
  if (c) c->Inc(n);
}
inline void Set(Gauge* g, double v) {
  if (g) g->Set(v);
}
inline void Observe(Histogram* h, double v) {
  if (h) h->Add(v);
}

/// Flat, copyable export of one registry at one instant. Plain data:
/// reports can carry it by value after the registry is gone.
struct MetricSnapshot {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0.0;  ///< counter / gauge reading
    // Histogram summary (kind == kHistogram only).
    uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double max = 0.0;
  };

  std::vector<Entry> entries;  ///< sorted by name

  const Entry* Find(std::string_view name) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  std::string ToJson() const;
  /// Header + one row per metric: kind,name,value,count,mean,p50,p99,p999,max
  std::string ToCsv() const;
};

/// Owner of all metrics for one system instance. Registration is
/// idempotent: a second Get* with the same name and kind returns the same
/// object. Re-using a name with a *different* kind is a programming error
/// the registry survives: the caller receives a private scratch metric
/// (excluded from snapshots) and `name_collisions()` records the bug.
/// Metric addresses are stable for the registry's lifetime. Not
/// thread-safe; the system is single-threaded by design.
class MetricRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Number of cross-kind name collisions observed (0 in a healthy system).
  uint64_t name_collisions() const { return name_collisions_; }

  /// Metrics registered (collided scratch metrics excluded).
  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zeroes every metric, keeping registrations (and addresses) intact.
  void Reset();

  MetricSnapshot Snapshot() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  /// True if `name` is free for `kind` (or already that kind); on
  /// cross-kind clash records the collision and returns false.
  bool ClaimName(const std::string& name, Kind kind);

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, Kind> kinds_;

  // Scratch metrics handed out on collision: writable, never exported.
  std::vector<std::unique_ptr<Counter>> orphan_counters_;
  std::vector<std::unique_ptr<Gauge>> orphan_gauges_;
  std::vector<std::unique_ptr<Histogram>> orphan_histograms_;
  uint64_t name_collisions_ = 0;
};

}  // namespace reo
