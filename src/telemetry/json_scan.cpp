#include "telemetry/json_scan.h"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace reo {

const std::string JsonDoc::kEmpty;

struct JsonDoc::Parser {
  std::string_view in;
  size_t pos = 0;
  JsonDoc* doc;

  void SkipWs() {
    while (pos < in.size() && (in[pos] == ' ' || in[pos] == '\t' ||
                               in[pos] == '\n' || in[pos] == '\r')) {
      ++pos;
    }
  }

  bool Eat(char c) {
    if (pos < in.size() && in[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view lit) {
    if (in.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  // Appends the parsed value as a new node; returns its index or kInvalid.
  int Value(int depth) {
    if (depth > kMaxDepth) return kInvalid;
    SkipWs();
    if (pos >= in.size()) return kInvalid;
    char c = in[pos];
    int idx = static_cast<int>(doc->nodes_.size());
    doc->nodes_.emplace_back();
    switch (c) {
      case '{': {
        doc->nodes_[static_cast<size_t>(idx)].type = Type::kObject;
        ++pos;
        SkipWs();
        if (Eat('}')) return idx;
        while (true) {
          SkipWs();
          std::string key;
          if (!String(&key)) return kInvalid;
          SkipWs();
          if (!Eat(':')) return kInvalid;
          int child = Value(depth + 1);
          if (child == kInvalid) return kInvalid;
          Node& n = doc->nodes_[static_cast<size_t>(idx)];
          n.keys.push_back(std::move(key));
          n.children.push_back(child);
          SkipWs();
          if (Eat(',')) continue;
          if (Eat('}')) return idx;
          return kInvalid;
        }
      }
      case '[': {
        doc->nodes_[static_cast<size_t>(idx)].type = Type::kArray;
        ++pos;
        SkipWs();
        if (Eat(']')) return idx;
        while (true) {
          int child = Value(depth + 1);
          if (child == kInvalid) return kInvalid;
          doc->nodes_[static_cast<size_t>(idx)].children.push_back(child);
          SkipWs();
          if (Eat(',')) continue;
          if (Eat(']')) return idx;
          return kInvalid;
        }
      }
      case '"': {
        Node& n = doc->nodes_[static_cast<size_t>(idx)];
        n.type = Type::kString;
        if (!String(&n.str)) return kInvalid;
        return idx;
      }
      case 't':
        if (!Literal("true")) return kInvalid;
        doc->nodes_[static_cast<size_t>(idx)].type = Type::kBool;
        doc->nodes_[static_cast<size_t>(idx)].b = true;
        return idx;
      case 'f':
        if (!Literal("false")) return kInvalid;
        doc->nodes_[static_cast<size_t>(idx)].type = Type::kBool;
        return idx;
      case 'n':
        if (!Literal("null")) return kInvalid;
        return idx;  // Type::kNull
      default:
        return Number(idx) ? idx : kInvalid;
    }
  }

  bool Number(int idx) {
    size_t start = pos;
    if (pos < in.size() && in[pos] == '-') ++pos;
    if (pos >= in.size() || in[pos] < '0' || in[pos] > '9') return false;
    // Integer part: no leading zeros per RFC 8259.
    if (in[pos] == '0') {
      ++pos;
    } else {
      while (pos < in.size() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    }
    if (pos < in.size() && in[pos] == '.') {
      ++pos;
      if (pos >= in.size() || in[pos] < '0' || in[pos] > '9') return false;
      while (pos < in.size() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    }
    if (pos < in.size() && (in[pos] == 'e' || in[pos] == 'E')) {
      ++pos;
      if (pos < in.size() && (in[pos] == '+' || in[pos] == '-')) ++pos;
      if (pos >= in.size() || in[pos] < '0' || in[pos] > '9') return false;
      while (pos < in.size() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    }
    std::string tmp(in.substr(start, pos - start));  // NUL-terminate
    Node& n = doc->nodes_[static_cast<size_t>(idx)];
    n.type = Type::kNumber;
    n.num = std::strtod(tmp.c_str(), nullptr);
    return true;
  }

  bool String(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos < in.size()) {
      unsigned char c = static_cast<unsigned char>(in[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos;
        if (pos >= in.size()) return false;
        char e = in[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos + 4 > in.size()) return false;
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = in[pos + static_cast<size_t>(i)];
              v <<= 4;
              if (h >= '0' && h <= '9') {
                v |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                v |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                v |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            pos += 4;
            // Our emitters only produce \u00xx for control bytes; decode
            // the Latin-1 range as one byte and anything beyond as UTF-8.
            if (v < 0x80) {
              out->push_back(static_cast<char>(v));
            } else if (v < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (v >> 6)));
              out->push_back(static_cast<char>(0x80 | (v & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (v >> 12)));
              out->push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (v & 0x3F)));
            }
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(static_cast<char>(c));
        ++pos;
      }
    }
    return false;  // unterminated
  }
};

std::optional<JsonDoc> JsonDoc::Parse(std::string_view text) {
  if (text.size() > kMaxInput) return std::nullopt;
  JsonDoc doc;
  Parser p{text, 0, &doc};
  int root = p.Value(0);
  if (root != 0) return std::nullopt;  // failed, or (impossibly) non-first
  p.SkipWs();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return doc;
}

double JsonDoc::number(int node) const {
  if (!is(node, Type::kNumber)) return 0.0;
  return nodes_[static_cast<size_t>(node)].num;
}

bool JsonDoc::boolean(int node) const {
  return is(node, Type::kBool) && nodes_[static_cast<size_t>(node)].b;
}

const std::string& JsonDoc::str(int node) const {
  if (!is(node, Type::kString)) return kEmpty;
  return nodes_[static_cast<size_t>(node)].str;
}

size_t JsonDoc::size(int node) const {
  if (node == kInvalid) return 0;
  return nodes_[static_cast<size_t>(node)].children.size();
}

int JsonDoc::item(int node, size_t i) const {
  if (!is(node, Type::kArray)) return kInvalid;
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (i >= n.children.size()) return kInvalid;
  return n.children[i];
}

int JsonDoc::member(int node, std::string_view key) const {
  if (!is(node, Type::kObject)) return kInvalid;
  const Node& n = nodes_[static_cast<size_t>(node)];
  for (size_t i = 0; i < n.keys.size(); ++i) {
    if (n.keys[i] == key) return n.children[i];
  }
  return kInvalid;
}

const std::string& JsonDoc::key(int node, size_t i) const {
  if (!is(node, Type::kObject)) return kEmpty;
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (i >= n.keys.size()) return kEmpty;
  return n.keys[i];
}

int JsonDoc::value(int node, size_t i) const {
  if (!is(node, Type::kObject)) return kInvalid;
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (i >= n.children.size()) return kInvalid;
  return n.children[i];
}

int JsonDoc::Find(std::initializer_list<std::string_view> path) const {
  int node = root();
  for (std::string_view seg : path) {
    node = member(node, seg);
    if (node == kInvalid) return kInvalid;
  }
  return node;
}

std::vector<double> JsonDoc::NumberArray(int node) const {
  std::vector<double> out;
  if (!is(node, Type::kArray)) return out;
  const Node& n = nodes_[static_cast<size_t>(node)];
  out.reserve(n.children.size());
  for (int child : n.children) {
    if (is(child, Type::kNumber)) {
      out.push_back(number(child));
    } else if (is(child, Type::kNull)) {
      out.push_back(std::numeric_limits<double>::quiet_NaN());
    } else {
      out.clear();
      return out;
    }
  }
  return out;
}

}  // namespace reo
