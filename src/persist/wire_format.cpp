#include "persist/wire_format.h"

#include "common/crc32c.h"

namespace reo {
namespace {

/// Reads a u32 at `off` without bounds checking (caller guarantees room).
uint32_t PeekU32(std::span<const uint8_t> b, size_t off) {
  uint32_t v;
  std::memcpy(&v, b.data() + off, 4);
  return v;
}

}  // namespace

// --- Data-log records ------------------------------------------------------

std::vector<uint8_t> EncodeDataRecordHeader(const DataRecordHeader& h) {
  ByteWriter w;
  w.U32(kDataRecordMagic);
  w.U32(0);  // header_crc patched below
  w.U32(h.payload_crc);
  w.U32(h.payload_len);
  w.U64(h.id.pid);
  w.U64(h.id.oid);
  w.U64(h.logical_size);
  w.U64(h.lsn);
  w.U8(h.class_id);
  w.U8(h.dirty ? 1 : 0);
  w.U16(0);
  w.U32(0);
  std::vector<uint8_t> out = w.Take();
  REO_CHECK(out.size() == kDataRecordHeaderBytes);
  uint32_t crc = Crc32c(std::span(out).subspan(8));
  std::memcpy(out.data() + 4, &crc, 4);
  return out;
}

Result<DataRecordHeader> DecodeDataRecordHeader(std::span<const uint8_t> raw) {
  if (raw.size() < kDataRecordHeaderBytes) {
    return Status{ErrorCode::kCorrupted, "data record header truncated"};
  }
  raw = raw.first(kDataRecordHeaderBytes);
  if (PeekU32(raw, 0) != kDataRecordMagic) {
    return Status{ErrorCode::kCorrupted, "data record magic mismatch"};
  }
  if (PeekU32(raw, 4) != Crc32c(raw.subspan(8))) {
    return Status{ErrorCode::kCorrupted, "data record header CRC mismatch"};
  }
  ByteReader r(raw.subspan(8));
  DataRecordHeader h;
  h.payload_crc = r.U32();
  h.payload_len = r.U32();
  h.id.pid = r.U64();
  h.id.oid = r.U64();
  h.logical_size = r.U64();
  h.lsn = r.U64();
  h.class_id = r.U8();
  h.dirty = r.U8() != 0;
  return h;
}

// --- Journal records -------------------------------------------------------

std::vector<uint8_t> EncodeWalBody(const WalRecord& rec) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(rec.type));
  switch (rec.type) {
    case WalRecordType::kPut:
      w.U64(rec.id.pid);
      w.U64(rec.id.oid);
      w.U64(rec.logical_size);
      w.U64(rec.lsn);
      w.U8(rec.class_id);
      w.U8(rec.dirty ? 1 : 0);
      w.F64(rec.hotness);
      w.U32(rec.loc.segment);
      w.U64(rec.loc.offset);
      w.U32(rec.loc.payload_len);
      w.U32(rec.loc.payload_crc);
      break;
    case WalRecordType::kState:
      w.U64(rec.id.pid);
      w.U64(rec.id.oid);
      w.U8(rec.class_id);
      w.U8(rec.dirty ? 1 : 0);
      w.U8(rec.has_hotness ? 1 : 0);
      w.F64(rec.hotness);
      break;
    case WalRecordType::kEvict:
      w.U64(rec.id.pid);
      w.U64(rec.id.oid);
      break;
    case WalRecordType::kClassifier:
      w.F64(rec.hotness);  // hotness carries H_hot here
      break;
  }
  return w.Take();
}

Result<WalRecord> DecodeWalBody(std::span<const uint8_t> body) {
  ByteReader r(body);
  WalRecord rec;
  uint8_t type = r.U8();
  switch (type) {
    case static_cast<uint8_t>(WalRecordType::kPut):
      rec.type = WalRecordType::kPut;
      rec.id.pid = r.U64();
      rec.id.oid = r.U64();
      rec.logical_size = r.U64();
      rec.lsn = r.U64();
      rec.class_id = r.U8();
      rec.dirty = r.U8() != 0;
      rec.hotness = r.F64();
      rec.loc.segment = r.U32();
      rec.loc.offset = r.U64();
      rec.loc.payload_len = r.U32();
      rec.loc.payload_crc = r.U32();
      break;
    case static_cast<uint8_t>(WalRecordType::kState):
      rec.type = WalRecordType::kState;
      rec.id.pid = r.U64();
      rec.id.oid = r.U64();
      rec.class_id = r.U8();
      rec.dirty = r.U8() != 0;
      rec.has_hotness = r.U8() != 0;
      rec.hotness = r.F64();
      break;
    case static_cast<uint8_t>(WalRecordType::kEvict):
      rec.type = WalRecordType::kEvict;
      rec.id.pid = r.U64();
      rec.id.oid = r.U64();
      break;
    case static_cast<uint8_t>(WalRecordType::kClassifier):
      rec.type = WalRecordType::kClassifier;
      rec.hotness = r.F64();
      break;
    default:
      return Status{ErrorCode::kCorrupted, "unknown journal record type"};
  }
  if (!r.ok()) {
    return Status{ErrorCode::kCorrupted, "journal record body truncated"};
  }
  return rec;
}

void AppendWalFrame(std::vector<uint8_t>& out, std::span<const uint8_t> body) {
  // [magic u32][crc u32][len u32][body]; the CRC covers len + body so a
  // corrupted length can never masquerade as a valid record.
  uint32_t len = static_cast<uint32_t>(body.size());
  uint32_t crc = Crc32c(std::span(reinterpret_cast<const uint8_t*>(&len), 4));
  crc = Crc32c(body, crc);
  size_t base = out.size();
  out.resize(base + 12 + body.size());
  uint8_t* p = out.data() + base;
  auto put32 = [](uint8_t* dst, uint32_t v) {
    dst[0] = static_cast<uint8_t>(v);
    dst[1] = static_cast<uint8_t>(v >> 8);
    dst[2] = static_cast<uint8_t>(v >> 16);
    dst[3] = static_cast<uint8_t>(v >> 24);
  };
  put32(p, kWalRecordMagic);
  put32(p + 4, crc);
  put32(p + 8, len);
  if (!body.empty()) std::memcpy(p + 12, body.data(), body.size());
}

std::vector<uint8_t> FrameWalRecord(std::span<const uint8_t> body) {
  std::vector<uint8_t> out;
  AppendWalFrame(out, body);
  return out;
}

namespace {

/// True when an intact framed record starts exactly at `stream[0]`.
bool FrameIsIntactAt(std::span<const uint8_t> stream) {
  if (stream.size() < 12) return false;
  if (PeekU32(stream, 0) != kWalRecordMagic) return false;
  uint32_t len = PeekU32(stream, 8);
  if (len > kMaxWalBodyBytes || stream.size() < 12 + static_cast<size_t>(len)) {
    return false;
  }
  uint32_t crc = Crc32c(stream.subspan(8, 4));
  crc = Crc32c(stream.subspan(12, len), crc);
  return crc == PeekU32(stream, 4);
}

/// True when any intact record starts anywhere inside `stream`.
bool AnyIntactFrameIn(std::span<const uint8_t> stream) {
  for (size_t i = 0; i + 12 <= stream.size(); ++i) {
    if (FrameIsIntactAt(stream.subspan(i))) return true;
  }
  return false;
}

}  // namespace

WalFrameScan ScanWalFrame(std::span<const uint8_t> stream) {
  WalFrameScan scan;
  if (stream.empty()) {
    scan.state = WalFrameScan::State::kEnd;
    return scan;
  }
  if (FrameIsIntactAt(stream)) {
    uint32_t len = PeekU32(stream, 8);
    scan.state = WalFrameScan::State::kRecord;
    scan.consumed = 12 + len;
    scan.body.assign(stream.begin() + 12, stream.begin() + 12 + len);
    return scan;
  }
  // The head is not an intact record. If nothing intact exists further on,
  // this is the classic torn tail of an interrupted append — safe to cut.
  // If intact records DO follow, bytes in the committed middle of the log
  // were damaged; silently skipping them could resurrect evicted objects
  // or drop acknowledged ones, so the caller must fail stop.
  scan.state = AnyIntactFrameIn(stream.subspan(1))
                   ? WalFrameScan::State::kCorrupt
                   : WalFrameScan::State::kTorn;
  return scan;
}

}  // namespace reo
