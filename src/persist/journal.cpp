#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/file_util.h"

namespace reo {
namespace {

Status Errno(const std::string& what) {
  return Status(ErrorCode::kUnavailable, what + ": " + std::strerror(errno));
}

}  // namespace

WalJournal::~WalJournal() { Close(); }

std::string WalJournal::FilePath(const std::string& dir, uint32_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06u.log", seq);
  return dir + "/" + name;
}

Status WalJournal::Open(const std::string& dir, uint32_t seq) {
  dir_ = dir;
  active_seq_ = seq;
  return OpenActive();
}

Status WalJournal::OpenActive() {
  const std::string path = FilePath(dir_, active_seq_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) return Errno("open " + path);
  return Status::Ok();
}

Status WalJournal::Append(std::span<const uint8_t> body) {
  if (fd_ < 0) return Status(ErrorCode::kUnavailable, "journal closed");
  size_t before = pending_.size();
  AppendWalFrame(pending_, body);
  unsynced_ = true;
  ++stats_.records;
  stats_.bytes += pending_.size() - before;
  return Status::Ok();
}

Status WalJournal::FlushPending() {
  if (pending_.empty()) return Status::Ok();
  size_t done = 0;
  while (done < pending_.size()) {
    ssize_t n = ::write(fd_, pending_.data() + done, pending_.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("append " + FilePath(dir_, active_seq_));
    }
    done += static_cast<size_t>(n);
  }
  ++stats_.batch_writes;
  pending_.clear();
  return Status::Ok();
}

Status WalJournal::Sync() {
  if (!unsynced_ || fd_ < 0) return Status::Ok();
  REO_RETURN_IF_ERROR(FlushPending());
  if (::fsync(fd_) != 0) return Errno("fsync " + FilePath(dir_, active_seq_));
  unsynced_ = false;
  ++stats_.fsyncs;
  return Status::Ok();
}

Status WalJournal::Rotate(uint32_t new_seq) {
  REO_CHECK(new_seq > active_seq_);
  REO_RETURN_IF_ERROR(Sync());
  Close();
  uint32_t old_seq = active_seq_;
  active_seq_ = new_seq;
  REO_RETURN_IF_ERROR(OpenActive());
  for (uint32_t seq = 1; seq <= old_seq; ++seq) {
    ::unlink(FilePath(dir_, seq).c_str());
  }
  return Status::Ok();
}

void WalJournal::Reset(uint32_t new_seq) {
  pending_.clear();  // FORMAT: records bound for the wiped file are dropped
  Close();
  for (uint32_t seq = 1; seq <= active_seq_; ++seq) {
    ::unlink(FilePath(dir_, seq).c_str());
  }
  active_seq_ = new_seq;
  Status st = OpenActive();
  REO_CHECK(st.ok());
}

Status WalJournal::ReplayFile(
    const std::string& dir, uint32_t seq,
    const std::function<Status(const WalRecord&)>& fn) {
  const std::string path = FilePath(dir, seq);
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::span<const uint8_t> stream(
      reinterpret_cast<const uint8_t*>(contents->data()), contents->size());
  size_t pos = 0;
  while (true) {
    WalFrameScan scan = ScanWalFrame(stream.subspan(pos));
    switch (scan.state) {
      case WalFrameScan::State::kEnd:
        return Status::Ok();
      case WalFrameScan::State::kRecord: {
        auto rec = DecodeWalBody(scan.body);
        if (!rec.ok()) {
          // The frame CRC held but the body failed to parse: record-level
          // corruption mid-log. Fail stop rather than guess.
          return Status(ErrorCode::kCorrupted,
                        path + ": " + rec.status().message());
        }
        REO_RETURN_IF_ERROR(fn(*rec));
        pos += scan.consumed;
        break;
      }
      case WalFrameScan::State::kTorn: {
        // Interrupted append: everything before `pos` replayed fine, the
        // bytes after it never committed. Cut them so the next run starts
        // from a clean tail.
        std::error_code ec;
        std::filesystem::resize_file(path, pos, ec);
        if (ec) {
          return Status(ErrorCode::kUnavailable,
                        "truncate " + path + ": " + ec.message());
        }
        ++stats_.torn_tail_truncations;
        return Status::Ok();
      }
      case WalFrameScan::State::kCorrupt:
        return Status(ErrorCode::kCorrupted,
                      path + ": journal damaged mid-log at offset " +
                          std::to_string(pos));
    }
  }
}

void WalJournal::Close() {
  if (fd_ >= 0) {
    // Best-effort: unsynced records carry no durability promise, but keep
    // the historical "visible after close" behavior for clean shutdowns.
    (void)FlushPending();
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace reo
