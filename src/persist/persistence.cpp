#include "persist/persistence.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>

#include "common/crc32c.h"
#include "common/file_util.h"
#include "telemetry/metric_registry.h"
#include "trace/event_log.h"

namespace reo {
namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointFile[] = "CHECKPOINT";

/// Parses "wal-000042.log" / "seg-000007.dat" style names.
std::optional<uint32_t> ParseNumbered(const std::string& name,
                                      const char* prefix, const char* suffix) {
  size_t plen = std::strlen(prefix), slen = std::strlen(suffix);
  if (name.size() != plen + 6 + slen) return std::nullopt;
  if (name.compare(0, plen, prefix) != 0) return std::nullopt;
  if (name.compare(plen + 6, slen, suffix) != 0) return std::nullopt;
  uint32_t v = 0;
  for (size_t i = plen; i < plen + 6; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  return v;
}

/// Decoded checkpoint image.
struct CheckpointImage {
  uint64_t next_lsn = 1;
  uint32_t wal_start = 1;   ///< replay journal files at or above this seq
  uint32_t data_segment = 0;  ///< data log's active segment when written
  double h_hot = 0.0;
  std::vector<PersistedObject> objects;
};

std::string EncodeCheckpoint(const CheckpointImage& img) {
  ByteWriter body;
  body.U64(img.next_lsn);
  body.U32(img.wal_start);
  body.U32(img.data_segment);
  body.F64(img.h_hot);
  body.U64(img.objects.size());
  for (const PersistedObject& o : img.objects) {
    body.U64(o.id.pid);
    body.U64(o.id.oid);
    body.U64(o.logical_size);
    body.U64(o.lsn);
    body.U8(o.class_id);
    body.U8(o.dirty ? 1 : 0);
    body.F64(o.hotness);
    body.U32(o.loc.segment);
    body.U64(o.loc.offset);
    body.U32(o.loc.payload_len);
    body.U32(o.loc.payload_crc);
  }
  ByteWriter head;
  head.U32(kCheckpointMagic);
  head.U32(kCheckpointFormatVersion);
  head.U32(Crc32c(body.bytes()));
  std::vector<uint8_t> out = head.Take();
  out.insert(out.end(), body.bytes().begin(), body.bytes().end());
  return std::string(reinterpret_cast<const char*>(out.data()), out.size());
}

Result<CheckpointImage> DecodeCheckpoint(std::string_view raw) {
  auto bytes = std::span(reinterpret_cast<const uint8_t*>(raw.data()),
                         raw.size());
  if (bytes.size() < 12) {
    return Status(ErrorCode::kCorrupted, "checkpoint truncated");
  }
  ByteReader head(bytes.first(12));
  if (head.U32() != kCheckpointMagic) {
    return Status(ErrorCode::kCorrupted, "checkpoint magic mismatch");
  }
  if (head.U32() != kCheckpointFormatVersion) {
    return Status(ErrorCode::kCorrupted, "checkpoint version mismatch");
  }
  uint32_t crc = head.U32();
  auto body = bytes.subspan(12);
  if (crc != Crc32c(body)) {
    return Status(ErrorCode::kCorrupted, "checkpoint CRC mismatch");
  }
  ByteReader r(body);
  CheckpointImage img;
  img.next_lsn = r.U64();
  img.wal_start = r.U32();
  img.data_segment = r.U32();
  img.h_hot = r.F64();
  uint64_t count = r.U64();
  if (count > body.size()) {  // each entry is > 1 byte; cheap sanity bound
    return Status(ErrorCode::kCorrupted, "checkpoint object count implausible");
  }
  img.objects.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PersistedObject o;
    o.id.pid = r.U64();
    o.id.oid = r.U64();
    o.logical_size = r.U64();
    o.lsn = r.U64();
    o.class_id = r.U8();
    o.dirty = r.U8() != 0;
    o.hotness = r.F64();
    o.loc.segment = r.U32();
    o.loc.offset = r.U64();
    o.loc.payload_len = r.U32();
    o.loc.payload_crc = r.U32();
    img.objects.push_back(o);
  }
  if (!r.ok()) {
    return Status(ErrorCode::kCorrupted, "checkpoint body truncated");
  }
  return img;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

PersistenceManager::PersistenceManager(PersistenceConfig config)
    : config_(std::move(config)) {}

PersistenceManager::~PersistenceManager() {
  // Best effort: push buffered group-commit bytes out on clean destruction.
  (void)SyncNow();
}

std::string PersistenceManager::CheckpointPath() const {
  return config_.data_dir + "/" + kCheckpointFile;
}

Result<std::unique_ptr<PersistenceManager>> PersistenceManager::Open(
    const PersistenceConfig& config) {
  if (!config.enabled()) {
    return Status(ErrorCode::kInvalidArgument, "persistence data_dir empty");
  }
  std::error_code ec;
  fs::create_directories(config.data_dir, ec);
  if (ec) {
    return Status(ErrorCode::kUnavailable,
                  "create " + config.data_dir + ": " + ec.message());
  }
  auto mgr = std::unique_ptr<PersistenceManager>(
      new PersistenceManager(config));
  REO_RETURN_IF_ERROR(mgr->Recover());
  return mgr;
}

Status PersistenceManager::Recover() {
  const uint64_t t0 = NowMicros();

  // 1. Checkpoint image (absence = fresh start; damage = fail stop).
  uint32_t wal_start = 1;
  uint32_t checkpoint_segment = 0;
  auto raw = ReadFileToString(CheckpointPath());
  if (raw.ok()) {
    auto img = DecodeCheckpoint(*raw);
    if (!img.ok()) {
      // Name the file: the operator's next move is to inspect or move it.
      return Status{img.status().code(),
                    CheckpointPath() + ": " +
                        std::string(img.status().message())};
    }
    replay_stats_.checkpoint_loaded = true;
    replay_stats_.checkpoint_objects = img->objects.size();
    next_lsn_ = img->next_lsn;
    wal_start = img->wal_start;
    checkpoint_segment = img->data_segment;
    h_hot_ = img->h_hot;
    for (const PersistedObject& o : img->objects) IndexPut(o, false);
  } else if (raw.status().code() != ErrorCode::kNotFound) {
    return raw.status();
  }

  // 2. Scan the directory once for journal files and data segments.
  std::set<uint32_t> wal_seqs;
  std::set<uint32_t> seg_files;
  for (const auto& entry : fs::directory_iterator(config_.data_dir)) {
    const std::string name = entry.path().filename().string();
    if (auto seq = ParseNumbered(name, "wal-", ".log")) wal_seqs.insert(*seq);
    if (auto seg = ParseNumbered(name, "seg-", ".dat")) seg_files.insert(*seg);
  }

  // 3. Replay journal files at or above the checkpoint's start sequence,
  //    ascending. Files below it are pre-checkpoint leftovers (a crash
  //    between checkpoint write and WAL rotation) — safe to discard.
  uint32_t max_wal = wal_start;
  for (uint32_t seq : wal_seqs) {
    if (seq < wal_start) {
      ::unlink(WalJournal::FilePath(config_.data_dir, seq).c_str());
      continue;
    }
    max_wal = std::max(max_wal, seq);
    uint64_t torn_before = journal_.stats().torn_tail_truncations;
    Status st = journal_.ReplayFile(
        config_.data_dir, seq, [&](const WalRecord& rec) -> Status {
          ++replay_stats_.journal_records;
          switch (rec.type) {
            case WalRecordType::kPut: {
              PersistedObject o{rec.id,  rec.class_id, rec.dirty,
                                rec.logical_size, rec.lsn, rec.hotness,
                                rec.loc};
              auto it = index_.find(rec.id);
              if (it != index_.end()) o.hotness = it->second.hotness;
              IndexPut(o, false);
              next_lsn_ = std::max(next_lsn_, rec.lsn + 1);
              break;
            }
            case WalRecordType::kState: {
              auto it = index_.find(rec.id);
              if (it == index_.end()) break;  // duplicate-tolerant
              if (rec.class_id != kKeepClass) {
                it->second.class_id = rec.class_id;
                it->second.dirty = rec.dirty;
              }
              if (rec.has_hotness) it->second.hotness = rec.hotness;
              break;
            }
            case WalRecordType::kEvict: {
              auto it = index_.find(rec.id);
              if (it != index_.end()) {
                live_bytes_ -= it->second.loc.payload_len;
                index_.erase(it);
              }
              break;
            }
            case WalRecordType::kClassifier:
              h_hot_ = rec.hotness;
              break;
          }
          return Status::Ok();
        });
    if (!st.ok()) return st;
    if (journal_.stats().torn_tail_truncations != torn_before &&
        seq != *wal_seqs.rbegin()) {
      // A torn tail is only explicable in the newest file; an older file
      // ending mid-record means records that later files build on are gone.
      return Status(ErrorCode::kCorrupted,
                    WalJournal::FilePath(config_.data_dir, seq) +
                        ": torn mid-sequence journal file");
    }
  }

  // 4. Verify every index entry against its data segment file; drop
  //    entries whose bytes cannot exist (journaled but the data write
  //    never reached the disk before the crash — unacknowledged by
  //    construction, since acks follow the data fsync).
  std::map<uint32_t, uint64_t> max_end;  // segment -> highest record end
  uint32_t max_segment = checkpoint_segment;
  for (auto it = index_.begin(); it != index_.end();) {
    const DataLocation& loc = it->second.loc;
    struct stat st {};
    bool ok = ::stat(DataLog::PathFor(config_.data_dir, loc.segment).c_str(),
                     &st) == 0 &&
              static_cast<uint64_t>(st.st_size) >= loc.record_end();
    if (!ok) {
      ++replay_stats_.invalid_locations;
      live_bytes_ -= loc.payload_len;
      it = index_.erase(it);
      continue;
    }
    uint64_t& end = max_end[loc.segment];
    end = std::max(end, loc.record_end());
    max_segment = std::max(max_segment, loc.segment);
    ++it;
  }

  // 5. Open the data log on a fresh segment past everything on disk, seed
  //    live-record accounting, cut garbage tails, unlink dead segments.
  if (!seg_files.empty()) {
    max_segment = std::max(max_segment, *seg_files.rbegin());
  }
  REO_RETURN_IF_ERROR(
      data_log_.Open(config_.data_dir, config_.segment_bytes, max_segment + 1));
  for (const auto& [id, obj] : index_) data_log_.NoteLive(obj.loc.segment);
  for (uint32_t seg : seg_files) {
    auto it = max_end.find(seg);
    if (it == max_end.end()) {
      ::unlink(data_log_.SegmentPath(seg).c_str());
      ++replay_stats_.gc_segments;
    } else {
      REO_RETURN_IF_ERROR(data_log_.TruncateSegment(seg, it->second));
    }
  }

  // 6. Continue journaling into the newest WAL file (its torn tail, if
  //    any, was truncated during replay, so appends extend good records).
  REO_RETURN_IF_ERROR(journal_.Open(config_.data_dir, max_wal));

  for (const auto& [id, obj] : index_) {
    if (obj.class_id < 4) ++replay_stats_.objects_per_class[obj.class_id];
  }
  replay_stats_.torn_tail_truncations =
      journal_.stats().torn_tail_truncations + data_log_.stats().tail_truncations;
  replay_stats_.duration_us = NowMicros() - t0;

  // Baseline the component stats: recovery-time activity lives in
  // replay_stats_, runtime counters start from zero.
  data_base_ = data_log_.stats();
  journal_base_ = journal_.stats();
  return Status::Ok();
}

void PersistenceManager::IndexPut(const PersistedObject& obj,
                                  bool account_segments) {
  auto it = index_.find(obj.id);
  if (it != index_.end()) {
    live_bytes_ -= it->second.loc.payload_len;
    if (account_segments) data_log_.Release(it->second.loc.segment);
    it->second = obj;
  } else {
    index_.emplace(obj.id, obj);
  }
  live_bytes_ += obj.loc.payload_len;
}

Status PersistenceManager::Journal(const WalRecord& rec) {
  return journal_.Append(EncodeWalBody(rec));
}

Status PersistenceManager::SyncNow() {
  if (faults_ && faults_->enabled(FaultSite::kPersistFsync) &&
      faults_->Roll(FaultSite::kPersistFsync).fire) {
    // The batch stays pending: the next sync retries the whole window.
    return {ErrorCode::kIoError, "injected fsync failure"};
  }
  REO_RETURN_IF_ERROR(data_log_.Sync());  // data before the journal that
  REO_RETURN_IF_ERROR(journal_.Sync());   // points at it
  unsynced_records_ = 0;
  unsynced_bytes_ = 0;
  return Status::Ok();
}

Status PersistenceManager::MaybeBatchSync(bool critical) {
  if ((critical && config_.sync_critical) ||
      unsynced_records_ >= config_.fsync_batch_records ||
      unsynced_bytes_ >= config_.fsync_batch_bytes) {
    return SyncNow();
  }
  return Status::Ok();
}

Status PersistenceManager::MaybeCheckpoint(SimTime now) {
  if (records_since_checkpoint_ < config_.checkpoint_interval_records) {
    return Status::Ok();
  }
  return Checkpoint(now);
}

Status PersistenceManager::CommitWrite(ObjectId id, uint8_t class_id,
                                       uint64_t logical_size,
                                       std::span<const uint8_t> payload,
                                       SimTime now) {
  if (replaying_) return Status::Ok();
  if (faults_ && faults_->enabled(FaultSite::kPersistWrite) &&
      faults_->Roll(FaultSite::kPersistWrite, /*device=*/-1, now).fire) {
    ++commit_errors_;
    MirrorMetrics();
    return {ErrorCode::kIoError, "injected short write"};
  }
  const bool dirty = class_id == 1;
  const uint64_t lsn = next_lsn_++;
  auto loc = data_log_.Append(id, class_id, dirty, logical_size, lsn, payload);
  if (!loc.ok()) {
    ++commit_errors_;
    MirrorMetrics();
    return loc.status();
  }
  WalRecord rec;
  rec.type = WalRecordType::kPut;
  rec.id = id;
  rec.logical_size = logical_size;
  rec.lsn = lsn;
  rec.class_id = class_id;
  rec.dirty = dirty;
  rec.loc = *loc;
  auto it = index_.find(id);
  rec.hotness = it != index_.end() ? it->second.hotness : 0.0;
  Status st = Journal(rec);
  if (!st.ok()) {
    ++commit_errors_;
    data_log_.Release(loc->segment);
    MirrorMetrics();
    return st;
  }
  PersistedObject obj{id,  class_id, dirty, logical_size,
                      lsn, rec.hotness, *loc};
  IndexPut(obj, true);
  ++unsynced_records_;
  unsynced_bytes_ += kDataRecordHeaderBytes + payload.size();
  ++records_since_checkpoint_;
  st = MaybeBatchSync(class_id <= 1);
  if (!st.ok()) {
    ++commit_errors_;
    MirrorMetrics();
    return st;
  }
  st = MaybeCheckpoint(now);
  MirrorMetrics();
  return st;
}

Status PersistenceManager::CommitState(ObjectId id, uint8_t class_id,
                                       std::optional<double> hotness,
                                       SimTime now) {
  if (replaying_) return Status::Ok();
  auto it = index_.find(id);
  if (it == index_.end()) return Status::Ok();
  WalRecord rec;
  rec.type = WalRecordType::kState;
  rec.id = id;
  rec.class_id = class_id;
  rec.dirty = class_id == 1;
  rec.has_hotness = hotness.has_value();
  rec.hotness = hotness.value_or(0.0);
  REO_RETURN_IF_ERROR(Journal(rec));
  it->second.class_id = class_id;
  it->second.dirty = rec.dirty;
  if (hotness) it->second.hotness = *hotness;
  ++unsynced_records_;
  ++records_since_checkpoint_;
  REO_RETURN_IF_ERROR(MaybeBatchSync(class_id <= 1));
  Status st = MaybeCheckpoint(now);
  MirrorMetrics();
  return st;
}

Status PersistenceManager::NoteHotness(ObjectId id, double hotness) {
  if (replaying_) return Status::Ok();
  auto it = index_.find(id);
  if (it == index_.end()) return Status::Ok();
  WalRecord rec;
  rec.type = WalRecordType::kState;
  rec.id = id;
  rec.class_id = kKeepClass;
  rec.dirty = it->second.dirty;
  rec.has_hotness = true;
  rec.hotness = hotness;
  REO_RETURN_IF_ERROR(Journal(rec));
  it->second.hotness = hotness;
  ++unsynced_records_;
  REO_RETURN_IF_ERROR(MaybeBatchSync(false));
  MirrorMetrics();
  return Status::Ok();
}

Status PersistenceManager::NoteClassifierState(double h_hot) {
  if (replaying_) return Status::Ok();
  WalRecord rec;
  rec.type = WalRecordType::kClassifier;
  rec.hotness = h_hot;
  REO_RETURN_IF_ERROR(Journal(rec));
  h_hot_ = h_hot;
  ++unsynced_records_;
  REO_RETURN_IF_ERROR(MaybeBatchSync(false));
  MirrorMetrics();
  return Status::Ok();
}

Status PersistenceManager::CommitEvict(ObjectId id, SimTime now) {
  if (replaying_) return Status::Ok();
  auto it = index_.find(id);
  if (it == index_.end()) return Status::Ok();
  const bool critical = it->second.class_id <= 1;
  WalRecord rec;
  rec.type = WalRecordType::kEvict;
  rec.id = id;
  REO_RETURN_IF_ERROR(Journal(rec));
  live_bytes_ -= it->second.loc.payload_len;
  data_log_.Release(it->second.loc.segment);
  index_.erase(it);
  ++unsynced_records_;
  ++records_since_checkpoint_;
  REO_RETURN_IF_ERROR(MaybeBatchSync(critical));
  Status st = MaybeCheckpoint(now);
  MirrorMetrics();
  return st;
}

Status PersistenceManager::Checkpoint(SimTime now) {
  REO_RETURN_IF_ERROR(SyncNow());
  CheckpointImage img;
  img.next_lsn = next_lsn_;
  img.wal_start = journal_.active_seq() + 1;
  img.data_segment = data_log_.active_segment();
  img.h_hot = h_hot_;
  img.objects.reserve(index_.size());
  for (const auto& [id, obj] : index_) img.objects.push_back(obj);
  REO_RETURN_IF_ERROR(WriteFileAtomic(CheckpointPath(), EncodeCheckpoint(img)));
  REO_RETURN_IF_ERROR(journal_.Rotate(journal_.active_seq() + 1));
  records_since_checkpoint_ = 0;
  ++checkpoints_;
  MirrorMetrics();
  Emit(events_, now, EventSeverity::kInfo, "persist.checkpoint",
       "checkpoint written",
       {{"objects", std::to_string(index_.size())},
        {"wal_seq", std::to_string(journal_.active_seq())},
        {"live_bytes", std::to_string(live_bytes_)}});
  return Status::Ok();
}

void PersistenceManager::ResetAll() {
  index_.clear();
  live_bytes_ = 0;
  next_lsn_ = 1;
  h_hot_ = 0.0;
  unsynced_records_ = 0;
  unsynced_bytes_ = 0;
  records_since_checkpoint_ = 0;
  ::unlink(CheckpointPath().c_str());
  data_log_.Reset(1);
  journal_.Reset(1);
  MirrorMetrics();
}

std::vector<PersistedObject> PersistenceManager::RestoreOrder() const {
  std::vector<PersistedObject> order;
  order.reserve(index_.size());
  for (const auto& [id, obj] : index_) order.push_back(obj);
  std::sort(order.begin(), order.end(),
            [](const PersistedObject& a, const PersistedObject& b) {
              if (a.class_id != b.class_id) return a.class_id < b.class_id;
              if (a.hotness != b.hotness) return a.hotness > b.hotness;
              return a.lsn < b.lsn;
            });
  return order;
}

Result<std::vector<uint8_t>> PersistenceManager::ReadPayload(
    const PersistedObject& obj) {
  auto payload = data_log_.ReadPayload(obj.id, obj.lsn, obj.loc);
  if (!payload.ok()) MirrorMetrics();
  return payload;
}

const PersistedObject* PersistenceManager::Find(ObjectId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &it->second;
}

void PersistenceManager::AttachTelemetry(MetricRegistry& registry) {
  m_appends_ = &registry.GetCounter("persist.appends");
  m_bytes_data_ = &registry.GetCounter("persist.bytes_data");
  m_journal_records_ = &registry.GetCounter("persist.journal_records");
  m_bytes_journaled_ = &registry.GetCounter("persist.bytes_journaled");
  m_fsyncs_ = &registry.GetCounter("persist.fsyncs");
  m_checkpoints_ = &registry.GetCounter("persist.checkpoints");
  m_gc_segments_ = &registry.GetCounter("persist.gc_segments");
  m_torn_tails_ = &registry.GetCounter("persist.torn_tail_truncations");
  m_verify_failures_ = &registry.GetCounter("persist.verify_failures");
  m_commit_errors_ = &registry.GetCounter("persist.commit_errors");
  m_live_objects_ = &registry.GetGauge("persist.live_objects");
  m_live_bytes_ = &registry.GetGauge("persist.live_bytes");

  // Replay facts are point-in-time: publish them once, as gauges.
  registry.GetGauge("persist.replay.duration_us")
      .Set(static_cast<double>(replay_stats_.duration_us));
  registry.GetGauge("persist.replay.records")
      .Set(static_cast<double>(replay_stats_.journal_records));
  registry.GetGauge("persist.replay.checkpoint_objects")
      .Set(static_cast<double>(replay_stats_.checkpoint_objects));
  registry.GetGauge("persist.replay.torn_tail_truncations")
      .Set(static_cast<double>(replay_stats_.torn_tail_truncations));
  registry.GetGauge("persist.replay.invalid_locations")
      .Set(static_cast<double>(replay_stats_.invalid_locations));
  registry.GetGauge("persist.replay.gc_segments")
      .Set(static_cast<double>(replay_stats_.gc_segments));
  for (int c = 0; c < 4; ++c) {
    registry.GetGauge("persist.replay.class" + std::to_string(c) + "_objects")
        .Set(static_cast<double>(replay_stats_.objects_per_class[c]));
  }
  MirrorMetrics();
}

void PersistenceManager::MirrorMetrics() {
  if (!m_appends_) return;
  const DataLogStats& d = data_log_.stats();
  const JournalStats& j = journal_.stats();
  Inc(m_appends_, d.appends - data_base_.appends);
  Inc(m_bytes_data_, d.bytes_appended - data_base_.bytes_appended);
  Inc(m_fsyncs_, (d.fsyncs - data_base_.fsyncs) + (j.fsyncs - journal_base_.fsyncs));
  Inc(m_gc_segments_, d.segments_reclaimed - data_base_.segments_reclaimed);
  Inc(m_verify_failures_, d.read_failures - data_base_.read_failures);
  Inc(m_torn_tails_, (d.tail_truncations - data_base_.tail_truncations) +
                         (j.torn_tail_truncations -
                          journal_base_.torn_tail_truncations));
  Inc(m_journal_records_, j.records - journal_base_.records);
  Inc(m_bytes_journaled_, j.bytes - journal_base_.bytes);
  Inc(m_checkpoints_, checkpoints_ - checkpoints_mirrored_);
  Inc(m_commit_errors_, commit_errors_ - commit_errors_mirrored_);
  data_base_ = d;
  journal_base_ = j;
  checkpoints_mirrored_ = checkpoints_;
  commit_errors_mirrored_ = commit_errors_;
  Set(m_live_objects_, static_cast<double>(index_.size()));
  Set(m_live_bytes_, static_cast<double>(live_bytes_));
}

}  // namespace reo
