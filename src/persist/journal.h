// Write-ahead metadata journal.
//
// Sequence-numbered `wal-NNNNNN.log` files of framed records (see
// wire_format.h). Exactly one file is active for appends; a checkpoint
// rotates to a fresh file and unlinks everything older, so the replay set
// is always "checkpoint image + the WAL files at or above its sequence".
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "persist/wire_format.h"

namespace reo {

struct JournalStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t batch_writes = 0;  ///< write() syscalls; records/batch_writes =
                              ///< group-commit batching factor
  uint64_t torn_tail_truncations = 0;
};

class WalJournal {
 public:
  WalJournal() = default;
  ~WalJournal();

  WalJournal(const WalJournal&) = delete;
  WalJournal& operator=(const WalJournal&) = delete;

  /// Opens (creating if absent) the journal file with sequence `seq` for
  /// appends. Appends land after any records the file already holds.
  Status Open(const std::string& dir, uint32_t seq);

  /// Frames one record body into the in-memory batch. Nothing reaches the
  /// file until Sync() (or Close) flushes the whole batch as one
  /// contiguous write — the group-commit fast path issues a single
  /// write+fsync pair per batch regardless of how many records it holds.
  Status Append(std::span<const uint8_t> body);

  /// Flushes the pending batch as one write, then fsyncs the active file
  /// (no-op when nothing is unsynced).
  Status Sync();

  /// Starts a fresh journal file with sequence `new_seq` and unlinks every
  /// `wal-*.log` with a lower sequence (checkpoint compaction).
  Status Rotate(uint32_t new_seq);

  /// Unlinks every journal file and reopens sequence `new_seq` (FORMAT).
  void Reset(uint32_t new_seq);

  /// Replays one journal file: invokes `fn` for each intact record body in
  /// order. A torn tail is truncated off the file (counted); mid-file
  /// corruption returns kCorrupted without truncating. A missing file is
  /// kNotFound. `fn` returning a non-OK status aborts the replay.
  Status ReplayFile(const std::string& dir, uint32_t seq,
                    const std::function<Status(const WalRecord&)>& fn);

  const JournalStats& stats() const { return stats_; }
  uint32_t active_seq() const { return active_seq_; }
  static std::string FilePath(const std::string& dir, uint32_t seq);

 private:
  Status OpenActive();
  Status FlushPending();
  void Close();

  std::string dir_;
  uint32_t active_seq_ = 1;
  int fd_ = -1;
  bool unsynced_ = false;
  std::vector<uint8_t> pending_;  ///< framed records awaiting one write
  JournalStats stats_;
};

}  // namespace reo
