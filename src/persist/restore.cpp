#include "persist/restore.h"

#include <chrono>
#include <string>
#include <vector>

#include "osd/osd_target.h"
#include "trace/event_log.h"

namespace reo {
namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RestoreReport RestoreToTarget(PersistenceManager& persist, OsdTarget& target,
                              uint64_t capacity_bytes, SimTime now,
                              EventLog* events) {
  RestoreReport report;
  const uint64_t t0 = NowMicros();
  const ReplayStats& replay = persist.replay_stats();
  Emit(events, now, EventSeverity::kInfo, "persist.replay",
       "checkpoint + journal tail replayed",
       {{"checkpoint_objects", std::to_string(replay.checkpoint_objects)},
        {"journal_records", std::to_string(replay.journal_records)},
        {"torn_tail_truncations",
         std::to_string(replay.torn_tail_truncations)},
        {"invalid_locations", std::to_string(replay.invalid_locations)},
        {"replay_us", std::to_string(replay.duration_us)}});

  persist.BeginRestore();
  // Format directly on the store: Execute(kFormat) would tell the data
  // plane to wipe the durable state we are about to replay from.
  ObjectStore& store = target.object_store();
  store.Format(capacity_bytes);

  std::vector<ObjectId> drop;  // verification failures: evict, don't resurrect
  for (const PersistedObject& obj : persist.RestoreOrder()) {
    if (obj.id == kControlObject) continue;
    const uint8_t cls = obj.class_id < 4 ? obj.class_id : 3;
    auto payload = persist.ReadPayload(obj);
    if (!payload.ok()) {
      ++report.payload_verify_failures;
      if (cls == 1) ++report.dirty_lost;
      drop.push_back(obj.id);
      Emit(events, now, EventSeverity::kWarn, "persist.restore",
           "payload verification failed; object dropped",
           {{"id", obj.id.ToString()}, {"class", std::to_string(cls)}});
      continue;
    }
    if (!store.HasPartition(obj.id.pid)) {
      (void)store.CreatePartition(obj.id.pid);
    }
    if (!store.Exists(obj.id)) {
      (void)store.CreateObject(obj.id, obj.logical_size);
    }
    if (auto rec = store.Find(obj.id); rec.ok()) {
      (*rec)->attributes.SetU64(kAttrClassId, cls);
    }
    OsdCommand cmd;
    cmd.op = OsdOp::kWrite;
    cmd.id = obj.id;
    cmd.logical_size = obj.logical_size;
    cmd.data = std::move(*payload);
    cmd.now = now;
    OsdResponse resp = target.Execute(cmd);
    if (!resp.ok()) {
      ++report.write_failures;
      if (cls == 1) ++report.dirty_lost;
      drop.push_back(obj.id);
      Emit(events, now, EventSeverity::kWarn, "persist.restore",
           "data plane rejected replayed write; object dropped",
           {{"id", obj.id.ToString()}, {"class", std::to_string(cls)}});
      continue;
    }
    ++report.restored_per_class[cls];
    Emit(events, now, EventSeverity::kDebug, "persist.restore",
         "object restored",
         {{"id", obj.id.ToString()},
          {"class", std::to_string(cls)},
          {"lsn", std::to_string(obj.lsn)},
          {"bytes", std::to_string(obj.loc.payload_len)}});
  }
  persist.EndRestore();
  for (ObjectId id : drop) (void)persist.CommitEvict(id, now);

  report.duration_us = NowMicros() - t0;
  Emit(events, now, EventSeverity::kInfo, "recovery.restart",
       "restart recovery complete",
       {{"class0", std::to_string(report.restored_per_class[0])},
        {"class1", std::to_string(report.restored_per_class[1])},
        {"class2", std::to_string(report.restored_per_class[2])},
        {"class3", std::to_string(report.restored_per_class[3])},
        {"dirty_lost", std::to_string(report.dirty_lost)},
        {"verify_failures", std::to_string(report.payload_verify_failures)},
        {"torn_tail_truncations",
         std::to_string(replay.torn_tail_truncations)},
        {"restore_us", std::to_string(report.duration_us)}});
  return report;
}

}  // namespace reo
