// Segmented append-only data log.
//
// Object payloads land in `seg-NNNNNN.dat` files, one self-verifying
// record per object write (56-byte CRC-guarded header + payload). Segments
// rotate at a size threshold; garbage collection is segment-granular: when
// eviction/overwrite releases the last live record of a sealed segment,
// the whole file is unlinked (the log-structured layout Nemo argues for —
// no per-object in-place files, no random-write cleaning).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "persist/wire_format.h"

namespace reo {

/// Append/GC counters, mirrored into "persist.*" metrics by the manager.
struct DataLogStats {
  uint64_t appends = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  uint64_t segments_reclaimed = 0;  ///< GC unlinks
  uint64_t tail_truncations = 0;    ///< recovery cut a garbage segment tail
  uint64_t read_failures = 0;       ///< header/CRC mismatch on ReadPayload
};

class DataLog {
 public:
  DataLog() = default;
  ~DataLog();

  DataLog(const DataLog&) = delete;
  DataLog& operator=(const DataLog&) = delete;

  /// Opens the log rooted at `dir` (already created). `next_segment` seeds
  /// the id of the first segment this process appends to; it must be
  /// greater than every sealed segment referenced by the recovered index.
  Status Open(const std::string& dir, uint64_t segment_bytes,
              uint32_t next_segment);

  /// Appends one record; returns where it landed. The bytes are buffered
  /// in the page cache until Sync().
  Result<DataLocation> Append(ObjectId id, uint8_t class_id, bool dirty,
                              uint64_t logical_size, uint64_t lsn,
                              std::span<const uint8_t> payload);

  /// fsyncs the active segment (no-op when nothing unsynced).
  Status Sync();

  /// Reads and verifies one record: header CRC, identity match against the
  /// index (id + lsn), payload CRC. kCorrupted on any mismatch.
  Result<std::vector<uint8_t>> ReadPayload(ObjectId id, uint64_t lsn,
                                           const DataLocation& loc);

  /// Recovery accounting: registers a live record in `segment`.
  void NoteLive(uint32_t segment);

  /// Drops a record's liveness; unlinks the segment file when it was the
  /// last live record of a sealed (non-active) segment. Returns true when
  /// the segment was reclaimed.
  bool Release(uint32_t segment);

  /// Truncates `segment`'s file down to `keep_bytes` (recovery: clears the
  /// un-indexed garbage a crash left past the last committed record).
  /// Counts a tail truncation when bytes were actually cut.
  Status TruncateSegment(uint32_t segment, uint64_t keep_bytes);

  /// Unlinks every segment file and resets state (FORMAT path).
  void Reset(uint32_t next_segment);

  /// Closes the active segment fd (destructor also does this).
  void Close();

  const DataLogStats& stats() const { return stats_; }
  uint32_t active_segment() const { return active_segment_; }
  size_t live_segments() const { return live_records_.size(); }
  std::string SegmentPath(uint32_t segment) const;
  /// Same formatting with an explicit root — usable before Open().
  static std::string PathFor(const std::string& dir, uint32_t segment);

 private:
  Status OpenActive();
  Status RotateIfNeeded(size_t next_record_bytes);

  std::string dir_;
  uint64_t segment_bytes_ = 8ull << 20;
  uint32_t active_segment_ = 1;
  int fd_ = -1;
  uint64_t active_size_ = 0;
  bool unsynced_ = false;
  std::map<uint32_t, uint64_t> live_records_;  // segment -> live record count
  DataLogStats stats_;
};

}  // namespace reo
