#include "persist/data_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"

namespace reo {
namespace {

Status Errno(const std::string& what) {
  return Status(ErrorCode::kUnavailable, what + ": " + std::strerror(errno));
}

}  // namespace

DataLog::~DataLog() { Close(); }

std::string DataLog::PathFor(const std::string& dir, uint32_t segment) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06u.dat", segment);
  return dir + "/" + name;
}

std::string DataLog::SegmentPath(uint32_t segment) const {
  return PathFor(dir_, segment);
}

Status DataLog::Open(const std::string& dir, uint64_t segment_bytes,
                     uint32_t next_segment) {
  dir_ = dir;
  segment_bytes_ = segment_bytes;
  active_segment_ = next_segment;
  return OpenActive();
}

Status DataLog::OpenActive() {
  const std::string path = SegmentPath(active_segment_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) return Errno("open " + path);
  struct stat st {};
  if (::fstat(fd_, &st) != 0) return Errno("stat " + path);
  active_size_ = static_cast<uint64_t>(st.st_size);
  return Status::Ok();
}

Status DataLog::RotateIfNeeded(size_t next_record_bytes) {
  if (active_size_ == 0 || active_size_ + next_record_bytes <= segment_bytes_) {
    return Status::Ok();
  }
  REO_RETURN_IF_ERROR(Sync());
  ::close(fd_);
  fd_ = -1;
  // A sealed segment with no live records (all its writes were already
  // overwritten) can be reclaimed the moment we rotate away from it.
  if (live_records_.find(active_segment_) == live_records_.end()) {
    ::unlink(SegmentPath(active_segment_).c_str());
    ++stats_.segments_reclaimed;
  }
  ++active_segment_;
  return OpenActive();
}

Result<DataLocation> DataLog::Append(ObjectId id, uint8_t class_id, bool dirty,
                                     uint64_t logical_size, uint64_t lsn,
                                     std::span<const uint8_t> payload) {
  if (fd_ < 0) return Status(ErrorCode::kUnavailable, "data log closed");
  DataRecordHeader h;
  h.id = id;
  h.logical_size = logical_size;
  h.lsn = lsn;
  h.payload_len = static_cast<uint32_t>(payload.size());
  h.payload_crc = Crc32c(payload);
  h.class_id = class_id;
  h.dirty = dirty;
  std::vector<uint8_t> record = EncodeDataRecordHeader(h);
  record.insert(record.end(), payload.begin(), payload.end());

  REO_RETURN_IF_ERROR(RotateIfNeeded(record.size()));

  DataLocation loc;
  loc.segment = active_segment_;
  loc.offset = active_size_;
  loc.payload_len = h.payload_len;
  loc.payload_crc = h.payload_crc;

  size_t done = 0;
  while (done < record.size()) {
    ssize_t n = ::write(fd_, record.data() + done, record.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("append " + SegmentPath(active_segment_));
    }
    done += static_cast<size_t>(n);
  }
  active_size_ += record.size();
  unsynced_ = true;
  ++stats_.appends;
  stats_.bytes_appended += record.size();
  NoteLive(loc.segment);
  return loc;
}

Status DataLog::Sync() {
  if (!unsynced_ || fd_ < 0) return Status::Ok();
  if (::fsync(fd_) != 0) return Errno("fsync " + SegmentPath(active_segment_));
  unsynced_ = false;
  ++stats_.fsyncs;
  return Status::Ok();
}

Result<std::vector<uint8_t>> DataLog::ReadPayload(ObjectId id, uint64_t lsn,
                                                  const DataLocation& loc) {
  const std::string path = SegmentPath(loc.segment);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    ++stats_.read_failures;
    return Errno("open " + path);
  }
  std::vector<uint8_t> raw(kDataRecordHeaderBytes +
                           static_cast<size_t>(loc.payload_len));
  size_t done = 0;
  while (done < raw.size()) {
    ssize_t n = ::pread(fd, raw.data() + done, raw.size() - done,
                        static_cast<off_t>(loc.offset + done));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  if (done < raw.size()) {
    ++stats_.read_failures;
    return Status(ErrorCode::kCorrupted, "short read in " + path);
  }
  auto header = DecodeDataRecordHeader(raw);
  if (!header.ok()) {
    ++stats_.read_failures;
    return header.status();
  }
  std::span<const uint8_t> payload =
      std::span(raw).subspan(kDataRecordHeaderBytes);
  if (header->id != id || header->lsn != lsn ||
      header->payload_len != loc.payload_len ||
      Crc32c(payload) != header->payload_crc) {
    ++stats_.read_failures;
    return Status(ErrorCode::kCorrupted,
                  "data record identity/CRC mismatch in " + path);
  }
  return std::vector<uint8_t>(payload.begin(), payload.end());
}

void DataLog::NoteLive(uint32_t segment) { ++live_records_[segment]; }

bool DataLog::Release(uint32_t segment) {
  auto it = live_records_.find(segment);
  if (it == live_records_.end()) return false;
  if (--it->second > 0) return false;
  live_records_.erase(it);
  if (segment == active_segment_) return false;  // reclaimed at rotation
  ::unlink(SegmentPath(segment).c_str());
  ++stats_.segments_reclaimed;
  return true;
}

Status DataLog::TruncateSegment(uint32_t segment, uint64_t keep_bytes) {
  const std::string path = SegmentPath(segment);
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return Errno("stat " + path);
  if (static_cast<uint64_t>(st.st_size) <= keep_bytes) return Status::Ok();
  if (::truncate(path.c_str(), static_cast<off_t>(keep_bytes)) != 0) {
    return Errno("truncate " + path);
  }
  if (segment == active_segment_) active_size_ = keep_bytes;
  ++stats_.tail_truncations;
  return Status::Ok();
}

void DataLog::Reset(uint32_t next_segment) {
  Close();
  for (uint32_t seg = 1; seg <= active_segment_; ++seg) {
    ::unlink(SegmentPath(seg).c_str());
  }
  for (const auto& [seg, count] : live_records_) {
    ::unlink(SegmentPath(seg).c_str());
  }
  live_records_.clear();
  active_segment_ = next_segment;
  Status st = OpenActive();
  REO_CHECK(st.ok());
}

void DataLog::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace reo
