// On-disk record formats of the persistence subsystem.
//
// Three little-endian, CRC32C-guarded layouts share this header:
//
//   * data-log record   — one per object write in a `seg-NNNNNN.dat`
//                         segment: fixed 56-byte header + payload bytes;
//   * journal record    — one per metadata transition in a `wal-NNNNNN.log`
//                         write-ahead file: [magic][crc][len][type+body];
//   * checkpoint image  — the whole object index + classifier state,
//                         written atomically to `CHECKPOINT`.
//
// Every record is self-verifying: a reader can always decide "intact",
// "torn" (truncated mid-record) or "corrupt" (CRC mismatch) without any
// out-of-band state, which is what crash recovery truncation relies on.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"

namespace reo {

// --- Magics & limits -------------------------------------------------------

inline constexpr uint32_t kDataRecordMagic = 0x444F4552;  // "REOD"
inline constexpr uint32_t kWalRecordMagic = 0x4A4F4552;   // "REOJ"
inline constexpr uint32_t kCheckpointMagic = 0x434F4552;  // "REOC"
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// Journal bodies are a few dozen bytes; anything larger than this is
/// treated as corruption rather than an allocation request.
inline constexpr uint32_t kMaxWalBodyBytes = 4096;

/// Fixed size of the data-log record header preceding the payload.
inline constexpr size_t kDataRecordHeaderBytes = 56;

// --- Little-endian byte packing -------------------------------------------

/// Append-only little-endian serializer (portable: no struct punning).
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    U64(bits);
  }
  void Bytes(std::span<const uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void Raw(const void* p, size_t n) {
    // The build targets are little-endian; memcpy keeps this free of
    // alignment and aliasing hazards.
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader: overruns latch `ok() == false`
/// and further reads return zero instead of touching out-of-range bytes.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t U8() { return static_cast<uint8_t>(Raw(1)); }
  uint16_t U16() { return static_cast<uint16_t>(Raw(2)); }
  uint32_t U32() { return static_cast<uint32_t>(Raw(4)); }
  uint64_t U64() { return Raw(8); }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  uint64_t Raw(size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return 0;
    }
    uint64_t v = 0;
    std::memcpy(&v, data_.data() + pos_, n);
    pos_ += n;
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- Data-log records ------------------------------------------------------

/// Where one object's persisted payload lives inside the segmented log.
struct DataLocation {
  uint32_t segment = 0;
  uint64_t offset = 0;       ///< byte offset of the record header
  uint32_t payload_len = 0;  ///< payload bytes following the header
  uint32_t payload_crc = 0;  ///< CRC32C of those bytes

  uint64_t record_end() const {
    return offset + kDataRecordHeaderBytes + payload_len;
  }
  friend bool operator==(const DataLocation&, const DataLocation&) = default;
};

/// Decoded data-log record header.
struct DataRecordHeader {
  ObjectId id;
  uint64_t logical_size = 0;
  uint64_t lsn = 0;  ///< journal sequence number of the committing write
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
  uint8_t class_id = 3;
  bool dirty = false;
};

/// Serializes a data-record header (exactly kDataRecordHeaderBytes).
std::vector<uint8_t> EncodeDataRecordHeader(const DataRecordHeader& h);

/// Parses + CRC-verifies a header. kCorrupted on any mismatch.
Result<DataRecordHeader> DecodeDataRecordHeader(std::span<const uint8_t> raw);

// --- Journal records -------------------------------------------------------

enum class WalRecordType : uint8_t {
  kPut = 1,         ///< object written: index entry incl. data location
  kState = 2,       ///< class / dirty / hotness transition
  kEvict = 3,       ///< object removed
  kClassifier = 4,  ///< adaptive classifier state (H_hot)
};

/// One decoded journal record (fields used depend on `type`).
struct WalRecord {
  WalRecordType type = WalRecordType::kPut;
  ObjectId id;
  uint64_t logical_size = 0;
  uint64_t lsn = 0;
  uint8_t class_id = 3;   ///< kKeepClass in a kState record = unchanged
  bool dirty = false;
  bool has_hotness = false;
  double hotness = 0.0;
  DataLocation loc;  ///< kPut only
};

/// kState class_id sentinel: leave the object's class untouched.
inline constexpr uint8_t kKeepClass = 0xFF;

/// Serializes the type+body of a journal record (framing added by the WAL).
std::vector<uint8_t> EncodeWalBody(const WalRecord& rec);

/// Parses a type+body produced by EncodeWalBody.
Result<WalRecord> DecodeWalBody(std::span<const uint8_t> body);

/// Wraps a body with [magic][crc][len] framing, ready to append.
std::vector<uint8_t> FrameWalRecord(std::span<const uint8_t> body);

/// Frames `body` directly onto the end of `out` — the group-commit path:
/// the journal batches many framed records into one contiguous buffer and
/// issues a single write per fsync batch. FrameWalRecord wraps this.
void AppendWalFrame(std::vector<uint8_t>& out, std::span<const uint8_t> body);

/// Outcome of pulling one framed record off a journal byte stream.
struct WalFrameScan {
  enum class State : uint8_t {
    kRecord,   ///< a valid record was decoded; `consumed` advances past it
    kTorn,     ///< stream ends mid-record or CRC fails at the tail
    kCorrupt,  ///< CRC/magic fails but intact records exist further on
    kEnd,      ///< clean end of stream
  };
  State state = State::kEnd;
  size_t consumed = 0;  ///< bytes to advance on kRecord
  std::vector<uint8_t> body;
};

/// Examines the stream head. On a bad frame, scans ahead for any later
/// intact record to distinguish a torn tail (truncate, recover) from
/// mid-log corruption (fail-stop).
WalFrameScan ScanWalFrame(std::span<const uint8_t> stream);

}  // namespace reo
