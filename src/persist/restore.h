// Restart restore: replays recovered objects into an OSD target in the
// paper's differentiated-recovery order — class 0 (metadata) first, then
// class 1 (dirty), then clean classes 2/3 hot-before-cold — so the data
// whose loss is user-visible is back before anything merely warm.
#pragma once

#include <cstdint>

#include "common/sim_clock.h"
#include "persist/persistence.h"

namespace reo {

class OsdTarget;
class EventLog;

/// Outcome of one restart restore pass.
struct RestoreReport {
  uint64_t restored_per_class[4] = {0, 0, 0, 0};
  uint64_t payload_verify_failures = 0;  ///< data-log CRC/identity mismatches
  uint64_t write_failures = 0;           ///< data plane refused the replay
  uint64_t dirty_lost = 0;  ///< class-1 objects that could not be restored
  uint64_t duration_us = 0;

  uint64_t total_restored() const {
    return restored_per_class[0] + restored_per_class[1] +
           restored_per_class[2] + restored_per_class[3];
  }
};

/// Formats the target and replays every recovered object through it in
/// class order. Objects whose payload fails verification are dropped from
/// the durable index (journaled as evictions) rather than resurrected
/// corrupt. Emits one "persist.restore" debug event per object (the
/// class-order timeline tests read these), plus "persist.replay" and
/// "recovery.restart" summaries.
RestoreReport RestoreToTarget(PersistenceManager& persist, OsdTarget& target,
                              uint64_t capacity_bytes, SimTime now,
                              EventLog* events);

}  // namespace reo
