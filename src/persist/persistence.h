// Durable cache state: WAL + segmented data log + checkpointed index.
//
// The PersistenceManager owns three on-disk structures under one data
// directory:
//
//   seg-NNNNNN.dat   segmented append-only data log (object payloads)
//   wal-NNNNNN.log   write-ahead metadata journal (create/dirty/clean/
//                    reclass/evict transitions + classifier state)
//   CHECKPOINT       atomic image of the object index + classifier state
//
// Commit protocol (write path): payload → data log, then a kPut journal
// record pointing at it, then the in-memory index. Class-0 metadata and
// class-1 dirty commits fsync (data first, journal second) before the
// caller may acknowledge; clean classes group-commit under a bounded
// fsync batch — they can always be re-fetched from the backend, so the
// paper's reliability contract only holds the replicated classes to the
// synchronous path (Flashield's bounded-write lesson applied to fsyncs).
//
// Restart = load CHECKPOINT, replay the journal tail (torn tail truncated
// and counted; mid-log corruption fail-stops), verify every index entry
// against its data segment, then hand RestoreOrder() — class 0 → 1 → 2 → 3,
// hot before cold within a class — to restore.h for replay into the target.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/object_id.h"
#include "common/sim_clock.h"
#include "fault/fault_injector.h"
#include "persist/data_log.h"
#include "persist/journal.h"

namespace reo {

class MetricRegistry;
class Counter;
class Gauge;
class EventLog;

/// Tuning for the persistence subsystem. An empty `data_dir` disables
/// persistence entirely (the null backend: simulator and tests run
/// byte-identical to the in-memory configuration).
struct PersistenceConfig {
  std::string data_dir;
  uint64_t segment_bytes = 8ull << 20;       ///< data-log rotation threshold
  uint64_t fsync_batch_records = 32;         ///< group-commit record bound
  uint64_t fsync_batch_bytes = 1ull << 20;   ///< group-commit byte bound
  uint64_t checkpoint_interval_records = 4096;  ///< auto-checkpoint period
  bool sync_critical = true;  ///< fsync class-0/1 commits before returning

  bool enabled() const { return !data_dir.empty(); }
};

/// One recovered object: everything needed to restore it.
struct PersistedObject {
  ObjectId id;
  uint8_t class_id = 3;
  bool dirty = false;
  uint64_t logical_size = 0;
  uint64_t lsn = 0;      ///< journal sequence number of the committing write
  double hotness = 0.0;  ///< last H reported by the cache manager
  DataLocation loc;
};

/// What Open() found on disk (published as persist.replay.* gauges).
struct ReplayStats {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_objects = 0;  ///< index entries in the checkpoint
  uint64_t journal_records = 0;     ///< WAL records replayed on top
  uint64_t objects_per_class[4] = {0, 0, 0, 0};  ///< final recovered index
  uint64_t torn_tail_truncations = 0;  ///< journal + data tails cut
  uint64_t invalid_locations = 0;  ///< index entries dropped at verification
  uint64_t gc_segments = 0;        ///< dead segment files unlinked at open
  uint64_t duration_us = 0;
};

/// Owner of the durable state for one OSD. Single-threaded, like the rest
/// of the stack (the server runs everything on one event-loop thread).
class PersistenceManager {
 public:
  /// Opens `config.data_dir` (created if needed) and runs recovery:
  /// checkpoint load → journal replay → location verification → segment GC.
  /// kCorrupted when the checkpoint or the committed middle of the journal
  /// is damaged (fail-stop: guessing could resurrect evicted objects).
  static Result<std::unique_ptr<PersistenceManager>> Open(
      const PersistenceConfig& config);

  ~PersistenceManager();

  PersistenceManager(const PersistenceManager&) = delete;
  PersistenceManager& operator=(const PersistenceManager&) = delete;

  // --- Commit path (no-ops while replaying()) ----------------------------

  /// Persists one object write: data-log append + kPut journal record +
  /// index update. Synchronous (fsynced) for class 0/1; group-committed
  /// otherwise. The payload must be the physical (shaped) bytes so restore
  /// can replay it through the data plane unchanged.
  Status CommitWrite(ObjectId id, uint8_t class_id, uint64_t logical_size,
                     std::span<const uint8_t> payload, SimTime now);

  /// Journals a class/dirty transition (reclass, flush). Unknown ids are
  /// ignored (nothing persisted to transition). Fsyncs when the object
  /// enters a replicated class (0/1).
  Status CommitState(ObjectId id, uint8_t class_id,
                     std::optional<double> hotness, SimTime now);

  /// Journals a hotness refresh without touching the class (group-committed;
  /// hotness only orders the restore scan, so losing the tail is benign).
  Status NoteHotness(ObjectId id, double hotness);

  /// Journals the adaptive classifier's threshold so restart resumes with
  /// a warm H_hot instead of re-learning from scratch.
  Status NoteClassifierState(double h_hot);

  /// Journals an eviction and releases the data-log record (segment GC).
  /// Fsynced when the object was in a replicated class.
  Status CommitEvict(ObjectId id, SimTime now);

  /// Writes a checkpoint (atomic), rotates the journal, unlinks old WALs.
  Status Checkpoint(SimTime now);

  /// Drops all durable state and starts fresh (FORMAT). Keeps metrics.
  void ResetAll();

  // --- Restore path ------------------------------------------------------

  /// While restoring, every Commit*/Note* call is suppressed — the replay
  /// drives writes back through the data plane, which must not re-journal.
  void BeginRestore() { replaying_ = true; }
  void EndRestore() { replaying_ = false; }
  bool replaying() const { return replaying_; }

  /// Recovered objects in restore order: class 0 → 1 → 2 → 3, hotter
  /// first within a class, insertion (LSN) order as the tiebreak.
  std::vector<PersistedObject> RestoreOrder() const;

  /// Reads + verifies one recovered payload (header identity and CRC).
  Result<std::vector<uint8_t>> ReadPayload(const PersistedObject& obj);

  // --- Introspection -----------------------------------------------------

  const ReplayStats& replay_stats() const { return replay_stats_; }
  size_t live_objects() const { return index_.size(); }
  uint64_t live_bytes() const { return live_bytes_; }
  double recovered_h_hot() const { return h_hot_; }
  const std::string& data_dir() const { return config_.data_dir; }
  const PersistedObject* Find(ObjectId id) const;

  void AttachTelemetry(MetricRegistry& registry);
  void AttachEvents(EventLog& events) { events_ = &events; }

  /// Wires fault injection into the commit path: persist.write fails a
  /// commit before it touches the data log (short write), persist.fsync
  /// fails the next sync. Both count as commit errors.
  void AttachFaults(FaultInjector* injector) { faults_ = injector; }

 private:
  explicit PersistenceManager(PersistenceConfig config);

  Status Recover();
  Status Journal(const WalRecord& rec);
  Status SyncNow();
  Status MaybeBatchSync(bool critical);
  Status MaybeCheckpoint(SimTime now);
  void IndexPut(const PersistedObject& obj, bool account_segments);
  void MirrorMetrics();
  std::string CheckpointPath() const;

  PersistenceConfig config_;
  DataLog data_log_;
  WalJournal journal_;

  std::unordered_map<ObjectId, PersistedObject, ObjectIdHash> index_;
  uint64_t live_bytes_ = 0;
  uint64_t next_lsn_ = 1;
  double h_hot_ = 0.0;
  bool replaying_ = false;

  uint64_t unsynced_records_ = 0;
  uint64_t unsynced_bytes_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t commit_errors_ = 0;

  ReplayStats replay_stats_;

  // Delta baselines for mirroring DataLog/WalJournal stats into counters.
  DataLogStats data_base_;
  JournalStats journal_base_;

  // Resolve-once metric pointers (null when un-attached).
  Counter* m_appends_ = nullptr;
  Counter* m_bytes_data_ = nullptr;
  Counter* m_journal_records_ = nullptr;
  Counter* m_bytes_journaled_ = nullptr;
  Counter* m_fsyncs_ = nullptr;
  Counter* m_checkpoints_ = nullptr;
  Counter* m_gc_segments_ = nullptr;
  Counter* m_torn_tails_ = nullptr;
  Counter* m_verify_failures_ = nullptr;
  Counter* m_commit_errors_ = nullptr;
  Gauge* m_live_objects_ = nullptr;
  Gauge* m_live_bytes_ = nullptr;
  uint64_t checkpoints_mirrored_ = 0;
  uint64_t commit_errors_mirrored_ = 0;

  EventLog* events_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

}  // namespace reo
