// Simulated flash SSD.
//
// Substitute for the paper's Intel 540s SATA SSDs (see DESIGN.md §2). The
// device stores chunk payloads in fixed "slots" (real bytes, CRC-protected),
// models service time as fixed cost + size/bandwidth, tracks wear
// (bytes written / erase-block cycles), and supports fail / replace for the
// failure-resistance experiments.
//
// Two byte quantities per slot: the *logical* size (full paper-scale bytes,
// used for capacity and timing) and the *physical* payload actually held in
// memory (logical >> scale_shift; see DESIGN.md "Scaling").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "common/sim_clock.h"
#include "common/status.h"
#include "fault/failslow.h"
#include "fault/fault_injector.h"
#include "flash/ftl.h"
#include "telemetry/metric_registry.h"
#include "trace/tracer.h"

namespace reo {

/// Identifies a chunk slot on one device.
using SlotId = uint32_t;

/// Index of a device within a FlashArray.
using DeviceIndex = uint32_t;

/// Service-time and geometry parameters for one device.
struct FlashDeviceConfig {
  uint32_t id = 0;
  uint64_t capacity_bytes = 120ULL * 1000 * 1000 * 1000;  ///< logical bytes
  double read_mbps = 500.0;    ///< sequential read bandwidth (logical MB/s)
  double write_mbps = 350.0;   ///< sequential write bandwidth
  SimTime read_fixed_ns = 80 * kNsPerUs;   ///< per-IO setup latency
  SimTime write_fixed_ns = 100 * kNsPerUs;
  uint64_t erase_block_bytes = 4ULL << 20;  ///< wear-accounting granularity
  uint32_t pe_cycle_limit = 3000;  ///< endurance rating (P/E cycles)

  /// Route writes/frees through a page-mapped FTL model (flash/ftl.h):
  /// wear then reflects garbage-collection write amplification instead of
  /// the flat factor-1 estimate. Slower; off by default.
  bool model_ftl = false;
  GcPolicy ftl_gc_policy = GcPolicy::kGreedy;
};

enum class DeviceState : uint8_t {
  kHealthy,
  kFailed,  ///< shot down: contents lost, IO rejected
};

/// Lifetime wear and traffic counters.
struct FlashWearStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;      ///< logical bytes programmed
  uint64_t erase_cycles = 0;       ///< block erases implied by writes
  uint64_t io_reads = 0;
  uint64_t io_writes = 0;
  /// Fraction of rated endurance consumed (0 = new, 1 = worn out).
  double WearFraction(const FlashDeviceConfig& cfg) const {
    if (cfg.pe_cycle_limit == 0) return 0.0;
    double rated_bytes = static_cast<double>(cfg.capacity_bytes) *
                         static_cast<double>(cfg.pe_cycle_limit);
    if (rated_bytes <= 0) return 0.0;
    return static_cast<double>(bytes_written) / rated_bytes;
  }
};

/// One simulated SSD.
class FlashDevice {
 public:
  explicit FlashDevice(FlashDeviceConfig config);

  const FlashDeviceConfig& config() const { return config_; }
  DeviceState state() const { return state_; }
  bool healthy() const { return state_ == DeviceState::kHealthy; }

  // --- Space ---------------------------------------------------------------

  /// Reserves a slot for `logical_bytes`; fails with kNoSpace when full and
  /// kUnavailable when the device is failed.
  Result<SlotId> AllocateSlot(uint64_t logical_bytes);

  /// Releases a slot and its bytes.
  Status FreeSlot(SlotId slot);

  /// Stores the physical payload for a previously allocated slot.
  Status WriteSlot(SlotId slot, std::span<const uint8_t> payload);

  /// Returns a view of the physical payload. Fails with kUnavailable if the
  /// device is down and kCorrupted if the payload fails its CRC. Non-const:
  /// reads advance the wear/traffic counters.
  Result<std::span<const uint8_t>> ReadSlot(SlotId slot);

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t free_bytes() const { return config_.capacity_bytes - used_bytes_; }
  size_t live_slots() const { return live_slots_; }

  // --- Timing --------------------------------------------------------------

  /// Schedules an IO of `logical_bytes` starting no earlier than `start`;
  /// returns its completion time. The device serializes its own IOs
  /// (busy_until), so concurrent chunk reads on *different* devices overlap
  /// while reads on the same device queue.
  SimTime SubmitIo(SimTime start, uint64_t logical_bytes, bool is_write);

  /// Pure service time of one IO, without queueing.
  SimTime ServiceTime(uint64_t logical_bytes, bool is_write) const;

  SimTime busy_until() const { return busy_until_; }

  // --- Failure & wear --------------------------------------------------------

  /// Shoot the device down: every resident payload is lost.
  void Fail();

  /// Injects latent (silent) corruption: flips one payload byte without
  /// touching the stored CRC, so the damage is only visible when the slot
  /// is next read or scrubbed. Models bit rot / partial data loss.
  Status CorruptSlot(SlotId slot, uint32_t byte_index = 0);

  /// Swap in a fresh spare at the same array position: healthy, empty,
  /// zero wear.
  void Replace();

  const FlashWearStats& wear() const { return wear_; }

  /// The FTL model, when enabled (nullptr otherwise). Exposes write
  /// amplification, GC counters, and per-block wear.
  const Ftl* ftl() const { return ftl_.get(); }

  /// Registers this device's metrics under `prefix` (e.g. "flash.dev0")
  /// and begins hot-path updates. Survives Fail/Replace: a spare swapped
  /// in at this position keeps reporting under the same names (counters
  /// are array-position-lifetime; gauges reflect the current device).
  void AttachTelemetry(MetricRegistry& registry, const std::string& prefix);

  /// Resolves this device's span track ("flash.dev<index>"). Like
  /// telemetry, the recorder pointer is position-lifetime: it survives
  /// Fail/Replace so a spare keeps recording on the same track.
  void AttachTracing(Tracer& tracer, uint8_t array_index);

  /// Wires fault injection into this device's slot I/O. `injector` rolls
  /// flash.read_transient / flash.write_transient / flash.latent /
  /// flash.failslow per op; `detector` (optional) observes every IO's
  /// service time for fail-slow detection. Both pointers are
  /// position-lifetime (survive Fail/Replace), like telemetry.
  void AttachFaults(FaultInjector* injector, FailSlowDetector* detector,
                    DeviceIndex array_index);

 private:
  struct Slot {
    bool allocated = false;
    uint64_t logical_bytes = 0;
    uint32_t crc = 0;
    uint64_t lpn_base = 0;   ///< first FTL page (model_ftl only)
    uint32_t page_count = 0;
    std::vector<uint8_t> payload;
  };

  void InitFtl();
  Status FtlWriteSlot(Slot& s);
  void FtlTrimSlot(Slot& s);

  FlashDeviceConfig config_;
  DeviceState state_ = DeviceState::kHealthy;
  std::vector<Slot> slots_;
  std::vector<SlotId> free_list_;
  uint64_t used_bytes_ = 0;
  size_t live_slots_ = 0;
  SimTime busy_until_ = 0;
  FlashWearStats wear_;
  uint64_t pending_erase_bytes_ = 0;  // accumulates toward erase cycles

  // FTL integration (model_ftl): logical-page-space allocator state.
  std::unique_ptr<Ftl> ftl_;
  uint64_t lpn_bump_ = 0;  ///< next never-used lpn
  std::vector<std::vector<uint64_t>> lpn_free_;  ///< freelists by page count

  // Telemetry (null when un-attached). Registry/prefix are remembered so a
  // replacement FTL re-attaches after a spare swap.
  MetricRegistry* tel_registry_ = nullptr;
  std::string tel_prefix_;
  Counter* tel_reads_ = nullptr;
  Counter* tel_writes_ = nullptr;
  Counter* tel_erases_ = nullptr;
  Gauge* tel_bytes_read_ = nullptr;
  Gauge* tel_bytes_written_ = nullptr;
  Gauge* tel_wear_ = nullptr;
  uint64_t tel_published_erases_ = 0;  ///< FTL erase count already exported

  // Tracing (null when un-attached): SubmitIo records one leaf span per IO
  // on this device's track, [queue-adjusted begin, completion].
  SpanRecorder* trace_ = nullptr;

  // Fault injection (null when un-attached).
  FaultInjector* faults_ = nullptr;
  FailSlowDetector* failslow_ = nullptr;
  DeviceIndex fault_index_ = 0;
};

}  // namespace reo
