// An array of simulated flash SSDs — the substrate the paper's target runs
// on (five 120 GB SSDs in the evaluation). Owns the devices, exposes
// fail / replace-with-spare, and aggregate space/wear views.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flash/flash_device.h"
#include "telemetry/metric_registry.h"

namespace reo {

class FlashArray {
 public:
  /// Builds `count` devices from a template config (ids are overwritten
  /// with the array position).
  FlashArray(size_t count, FlashDeviceConfig device_template);

  size_t size() const { return devices_.size(); }
  FlashDevice& device(DeviceIndex i) { return *devices_.at(i); }
  const FlashDevice& device(DeviceIndex i) const { return *devices_.at(i); }

  /// Number of devices currently healthy.
  size_t healthy_count() const;

  /// Indices of all healthy devices, in position order.
  std::vector<DeviceIndex> HealthyDevices() const;

  /// Shoots down device `i` (paper §VI.C "shootdown" command).
  Status FailDevice(DeviceIndex i);

  /// Replaces device `i` with a fresh spare (empty, healthy, zero wear).
  Status ReplaceDevice(DeviceIndex i);

  /// Aggregate logical capacity across all devices (healthy or not).
  uint64_t total_capacity_bytes() const;
  /// Aggregate logical bytes in use on healthy devices.
  uint64_t used_bytes() const;

  /// Largest wear fraction across devices (the array's life-limiting value).
  double MaxWearFraction() const;

  /// Registers every device's metrics ("flash.dev<i>.*") plus array-level
  /// gauges ("flash.devices", "flash.healthy_devices") and begins hot-path
  /// updates.
  void AttachTelemetry(MetricRegistry& registry);

  /// Resolves a span track per device position ("flash.dev<i>").
  void AttachTracing(Tracer& tracer);

  /// Wires fault injection into every device (position-indexed).
  void AttachFaults(FaultInjector* injector, FailSlowDetector* detector);

 private:
  std::vector<std::unique_ptr<FlashDevice>> devices_;
  Gauge* tel_healthy_ = nullptr;
};

}  // namespace reo
