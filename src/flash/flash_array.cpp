#include "flash/flash_array.h"

#include <algorithm>

namespace reo {

FlashArray::FlashArray(size_t count, FlashDeviceConfig device_template) {
  REO_CHECK(count >= 1);
  devices_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    FlashDeviceConfig cfg = device_template;
    cfg.id = static_cast<uint32_t>(i);
    devices_.push_back(std::make_unique<FlashDevice>(cfg));
  }
}

size_t FlashArray::healthy_count() const {
  size_t n = 0;
  for (const auto& d : devices_) n += d->healthy() ? 1 : 0;
  return n;
}

std::vector<DeviceIndex> FlashArray::HealthyDevices() const {
  std::vector<DeviceIndex> out;
  out.reserve(devices_.size());
  for (DeviceIndex i = 0; i < devices_.size(); ++i) {
    if (devices_[i]->healthy()) out.push_back(i);
  }
  return out;
}

Status FlashArray::FailDevice(DeviceIndex i) {
  if (i >= devices_.size()) return {ErrorCode::kNotFound, "no such device"};
  if (!devices_[i]->healthy()) return {ErrorCode::kInvalidArgument, "already failed"};
  devices_[i]->Fail();
  Set(tel_healthy_, static_cast<double>(healthy_count()));
  return Status::Ok();
}

Status FlashArray::ReplaceDevice(DeviceIndex i) {
  if (i >= devices_.size()) return {ErrorCode::kNotFound, "no such device"};
  devices_[i]->Replace();
  Set(tel_healthy_, static_cast<double>(healthy_count()));
  return Status::Ok();
}

void FlashArray::AttachTelemetry(MetricRegistry& registry) {
  for (DeviceIndex i = 0; i < devices_.size(); ++i) {
    devices_[i]->AttachTelemetry(registry,
                                 "flash.dev" + std::to_string(i));
  }
  registry.GetGauge("flash.devices").Set(static_cast<double>(devices_.size()));
  tel_healthy_ = &registry.GetGauge("flash.healthy_devices");
  tel_healthy_->Set(static_cast<double>(healthy_count()));
}

void FlashArray::AttachTracing(Tracer& tracer) {
  for (DeviceIndex i = 0; i < devices_.size(); ++i) {
    devices_[i]->AttachTracing(tracer, static_cast<uint8_t>(i));
  }
}

void FlashArray::AttachFaults(FaultInjector* injector,
                              FailSlowDetector* detector) {
  for (DeviceIndex i = 0; i < devices_.size(); ++i) {
    devices_[i]->AttachFaults(injector, detector, i);
  }
}

uint64_t FlashArray::total_capacity_bytes() const {
  uint64_t sum = 0;
  for (const auto& d : devices_) sum += d->config().capacity_bytes;
  return sum;
}

uint64_t FlashArray::used_bytes() const {
  uint64_t sum = 0;
  for (const auto& d : devices_) {
    if (d->healthy()) sum += d->used_bytes();
  }
  return sum;
}

double FlashArray::MaxWearFraction() const {
  double w = 0.0;
  for (const auto& d : devices_) {
    w = std::max(w, d->wear().WearFraction(d->config()));
  }
  return w;
}

}  // namespace reo
