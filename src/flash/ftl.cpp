#include "flash/ftl.h"

#include <algorithm>
#include <cmath>

namespace reo {

Ftl::Ftl(FtlConfig config) : config_(config) {
  REO_CHECK(config_.block_count >= 6);
  REO_CHECK(config_.pages_per_block >= 1);
  REO_CHECK(config_.over_provisioning >= 0.0 && config_.over_provisioning < 0.9);
  uint64_t total_pages =
      static_cast<uint64_t>(config_.block_count) * config_.pages_per_block;
  logical_pages_ = static_cast<uint64_t>(
      static_cast<double>(total_pages) * (1.0 - config_.over_provisioning));
  REO_CHECK(logical_pages_ >= 1);

  blocks_.resize(config_.block_count);
  for (auto& b : blocks_) {
    b.page_lpn.assign(config_.pages_per_block, kUnmapped);
  }
  erase_counts_.assign(config_.block_count, 0);
  free_blocks_.reserve(config_.block_count);
  for (uint32_t i = config_.block_count; i > 2; --i) {
    free_blocks_.push_back(i - 1);
  }
  host_block_ = 0;
  gc_block_ = 1;
  map_.assign(static_cast<size_t>(logical_pages_), {~0u, ~0u});
}

void Ftl::AttachTelemetry(MetricRegistry& registry, const std::string& prefix) {
  tel_host_writes_ = &registry.GetCounter(prefix + ".host_pages_written");
  tel_nand_writes_ = &registry.GetCounter(prefix + ".nand_pages_written");
  tel_gc_runs_ = &registry.GetCounter(prefix + ".gc_runs");
  tel_gc_relocated_ = &registry.GetCounter(prefix + ".gc_pages_relocated");
  tel_write_amp_ = &registry.GetGauge(prefix + ".write_amp");
  tel_write_amp_->Set(stats_.WriteAmplification());
}

bool Ftl::IsMapped(uint64_t lpn) const {
  return lpn < logical_pages_ && map_[static_cast<size_t>(lpn)].first != ~0u;
}

Status Ftl::TrimPage(uint64_t lpn) {
  if (lpn >= logical_pages_) return {ErrorCode::kInvalidArgument, "lpn OOB"};
  auto& [blk, page] = map_[static_cast<size_t>(lpn)];
  if (blk == ~0u) return {ErrorCode::kNotFound, "page not mapped"};
  Block& b = blocks_[blk];
  REO_CHECK(b.page_lpn[page] == lpn);
  b.page_lpn[page] = kUnmapped;
  --b.valid;
  blk = ~0u;
  page = ~0u;
  --mapped_pages_;
  return Status::Ok();
}

void Ftl::AppendPage(uint64_t lpn, uint32_t& frontier) {
  if (blocks_[frontier].next_page >= config_.pages_per_block) {
    REO_CHECK(!free_blocks_.empty());
    frontier = free_blocks_.back();
    free_blocks_.pop_back();
  }
  Block& b = blocks_[frontier];
  uint32_t page = b.next_page++;
  b.page_lpn[page] = lpn;
  ++b.valid;
  b.seq = ++seq_;
  map_[static_cast<size_t>(lpn)] = {frontier, page};
  ++stats_.nand_pages_written;
  Inc(tel_nand_writes_);
}

uint32_t Ftl::PickVictim() const {
  uint32_t best = ~0u;
  double best_score = -1.0;
  for (uint32_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (i == host_block_ || i == gc_block_) continue;
    if (b.next_page < config_.pages_per_block) continue;  // not sealed
    if (b.valid == config_.pages_per_block) continue;     // nothing to gain
    double u = static_cast<double>(b.valid) / config_.pages_per_block;
    double score = 0.0;
    switch (config_.gc_policy) {
      case GcPolicy::kGreedy:
        score = 1.0 - u;  // most invalid wins
        break;
      case GcPolicy::kCostBenefit: {
        double age = static_cast<double>(seq_ - b.seq + 1);
        score = (1.0 - u) / (2.0 * u + 1e-9) * age;
        break;
      }
      case GcPolicy::kWearAware: {
        // Greedy, with a wear penalty steering GC away from worn blocks.
        double wear = static_cast<double>(erase_counts_[i]);
        score = (1.0 - u) * 1000.0 - wear;
        break;
      }
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

uint32_t Ftl::PickWearLevelVictim() const {
  if (config_.gc_policy != GcPolicy::kWearAware) return ~0u;
  // Consider only blocks GC could actually take (sealed, not a frontier):
  // a parked frontier must not pin the wear floor.
  uint32_t best = ~0u;
  uint32_t hi = 0;
  for (uint32_t i = 0; i < blocks_.size(); ++i) {
    if (i == host_block_ || i == gc_block_) continue;
    const Block& b = blocks_[i];
    if (b.next_page < config_.pages_per_block) continue;
    hi = std::max(hi, erase_counts_[i]);
    if (best == ~0u || erase_counts_[i] < erase_counts_[best]) best = i;
  }
  if (best == ~0u) return ~0u;
  // Migrate the least-worn (cold) block only while the gap is large.
  if (hi - erase_counts_[best] <= config_.wear_leveling_delta) return ~0u;
  return best;
}

void Ftl::RunGc() {
  uint32_t victim = PickWearLevelVictim();
  if (victim == ~0u) victim = PickVictim();
  if (victim == ~0u) return;
  Block& v = blocks_[victim];

  // Progress guarantee: the GC frontier must be able to absorb the
  // victim's valid pages. Its current room plus (if a fresh block is
  // available) one whole block always suffices, since valid < ppb.
  uint32_t gc_room = config_.pages_per_block - blocks_[gc_block_].next_page;
  if (v.valid > gc_room && free_blocks_.empty()) return;
  ++stats_.gc_runs;
  Inc(tel_gc_runs_);

  for (uint32_t p = 0; p < config_.pages_per_block; ++p) {
    uint64_t lpn = v.page_lpn[p];
    if (lpn == kUnmapped) continue;
    v.page_lpn[p] = kUnmapped;
    --v.valid;
    AppendPage(lpn, gc_block_);
    ++stats_.gc_pages_relocated;
    Inc(tel_gc_relocated_);
  }

  // Erase the victim.
  v.page_lpn.assign(config_.pages_per_block, kUnmapped);
  v.valid = 0;
  v.next_page = 0;
  ++erase_counts_[victim];
  ++stats_.erases;
  free_blocks_.push_back(victim);
}

Status Ftl::EnsureWritable() {
  // Host appends refill from the free list; keep it above the watermark.
  bool host_full = blocks_[host_block_].next_page >= config_.pages_per_block;
  while (free_blocks_.size() <= config_.gc_low_watermark) {
    uint64_t before = stats_.erases;
    RunGc();
    if (stats_.erases == before) break;  // no reclaimable victim
  }
  if (host_full && free_blocks_.empty()) {
    return {ErrorCode::kNoSpace, "FTL full"};
  }
  return Status::Ok();
}

Status Ftl::WritePage(uint64_t lpn) {
  if (lpn >= logical_pages_) return {ErrorCode::kInvalidArgument, "lpn OOB"};
  REO_RETURN_IF_ERROR(EnsureWritable());
  // Invalidate the old location (overwrite is out-of-place).
  auto& [blk, page] = map_[static_cast<size_t>(lpn)];
  if (blk != ~0u) {
    Block& old = blocks_[blk];
    old.page_lpn[page] = kUnmapped;
    --old.valid;
  } else {
    ++mapped_pages_;
  }
  AppendPage(lpn, host_block_);
  ++stats_.host_pages_written;
  Inc(tel_host_writes_);
  Set(tel_write_amp_, stats_.WriteAmplification());
  return Status::Ok();
}

double Ftl::WearSpread() const {
  uint64_t total = 0;
  uint32_t hi = 0;
  for (uint32_t e : erase_counts_) {
    total += e;
    hi = std::max(hi, e);
  }
  if (hi == 0) return 1.0;
  double mean = static_cast<double>(total) / static_cast<double>(erase_counts_.size());
  return static_cast<double>(hi) / std::max(1.0, mean);
}

}  // namespace reo
