#include "flash/flash_device.h"

#include <algorithm>
#include <cmath>

#include "common/crc32c.h"

namespace reo {

FlashDevice::FlashDevice(FlashDeviceConfig config) : config_(config) {
  REO_CHECK(config_.capacity_bytes > 0);
  if (config_.model_ftl) InitFtl();
}

void FlashDevice::InitFtl() {
  // Size the FTL so its logical page space covers the device capacity.
  FtlConfig fc;
  fc.gc_policy = config_.ftl_gc_policy;
  uint64_t block_bytes = static_cast<uint64_t>(fc.page_bytes) * fc.pages_per_block;
  // 30 % logical headroom over the slot capacity: the lpn-range allocator
  // reuses freed ranges per size class, so mixed chunk sizes can leave
  // some ranges parked on freelists.
  uint64_t needed_pages =
      (config_.capacity_bytes + config_.capacity_bytes / 3 + fc.page_bytes - 1) /
      fc.page_bytes;
  uint64_t physical_pages = static_cast<uint64_t>(
      std::ceil(static_cast<double>(needed_pages) / (1.0 - fc.over_provisioning)));
  fc.block_count = static_cast<uint32_t>(
      std::max<uint64_t>(8, (physical_pages * fc.page_bytes + block_bytes - 1) /
                                block_bytes));
  ftl_ = std::make_unique<Ftl>(fc);
  lpn_bump_ = 0;
  lpn_free_.clear();
}

void FlashDevice::AttachTelemetry(MetricRegistry& registry,
                                  const std::string& prefix) {
  tel_registry_ = &registry;
  tel_prefix_ = prefix;
  tel_reads_ = &registry.GetCounter(prefix + ".reads");
  tel_writes_ = &registry.GetCounter(prefix + ".writes");
  tel_erases_ = &registry.GetCounter(prefix + ".erases");
  tel_bytes_read_ = &registry.GetGauge(prefix + ".bytes_read");
  tel_bytes_written_ = &registry.GetGauge(prefix + ".bytes_written");
  tel_wear_ = &registry.GetGauge(prefix + ".wear_fraction");
  if (ftl_) ftl_->AttachTelemetry(registry, prefix + ".ftl");
}

void FlashDevice::AttachTracing(Tracer& tracer, uint8_t array_index) {
  trace_ = &tracer.RecorderFor(TraceComponent::kFlashDevice, array_index);
}

void FlashDevice::AttachFaults(FaultInjector* injector,
                               FailSlowDetector* detector,
                               DeviceIndex array_index) {
  faults_ = injector;
  failslow_ = detector;
  fault_index_ = array_index;
}

Status FlashDevice::FtlWriteSlot(Slot& s) {
  if (s.page_count == 0) {
    // First write: allocate a contiguous lpn range (reusing a freed range
    // of the same size if available).
    auto pages = static_cast<uint32_t>(
        (s.logical_bytes + ftl_->config().page_bytes - 1) /
        ftl_->config().page_bytes);
    pages = std::max(pages, 1u);
    if (pages < lpn_free_.size() && !lpn_free_[pages].empty()) {
      s.lpn_base = lpn_free_[pages].back();
      lpn_free_[pages].pop_back();
    } else {
      s.lpn_base = lpn_bump_;
      lpn_bump_ += pages;
    }
    s.page_count = pages;
  }
  for (uint32_t p = 0; p < s.page_count; ++p) {
    REO_RETURN_IF_ERROR(ftl_->WritePage(s.lpn_base + p));
  }
  return Status::Ok();
}

void FlashDevice::FtlTrimSlot(Slot& s) {
  if (s.page_count == 0) return;
  for (uint32_t p = 0; p < s.page_count; ++p) {
    (void)ftl_->TrimPage(s.lpn_base + p);
  }
  if (lpn_free_.size() <= s.page_count) lpn_free_.resize(s.page_count + 1);
  lpn_free_[s.page_count].push_back(s.lpn_base);
  s.page_count = 0;
}

Result<SlotId> FlashDevice::AllocateSlot(uint64_t logical_bytes) {
  if (!healthy()) return Status{ErrorCode::kUnavailable, "device failed"};
  if (logical_bytes == 0) return Status{ErrorCode::kInvalidArgument, "empty slot"};
  if (logical_bytes > free_bytes()) {
    return Status{ErrorCode::kNoSpace, "device full"};
  }
  SlotId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<SlotId>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[id];
  s.allocated = true;
  s.logical_bytes = logical_bytes;
  s.crc = 0;
  s.payload.clear();
  used_bytes_ += logical_bytes;
  ++live_slots_;
  return id;
}

Status FlashDevice::FreeSlot(SlotId slot) {
  if (slot >= slots_.size() || !slots_[slot].allocated) {
    return {ErrorCode::kNotFound, "no such slot"};
  }
  Slot& s = slots_[slot];
  if (ftl_) FtlTrimSlot(s);
  used_bytes_ -= s.logical_bytes;
  --live_slots_;
  s = Slot{};
  free_list_.push_back(slot);
  return Status::Ok();
}

Status FlashDevice::WriteSlot(SlotId slot, std::span<const uint8_t> payload) {
  if (!healthy()) return {ErrorCode::kUnavailable, "device failed"};
  if (slot >= slots_.size() || !slots_[slot].allocated) {
    return {ErrorCode::kNotFound, "no such slot"};
  }
  Slot& s = slots_[slot];
  if (faults_ && faults_->enabled(FaultSite::kFlashWriteTransient) &&
      faults_
          ->Roll(FaultSite::kFlashWriteTransient,
                 static_cast<int32_t>(fault_index_))
          .fire) {
    // Before any mutation, so the caller's rollback sees the old contents.
    return {ErrorCode::kIoError, "injected transient write error"};
  }
  s.payload.assign(payload.begin(), payload.end());
  s.crc = Crc32c(payload);
  if (faults_ && faults_->enabled(FaultSite::kFlashLatent) &&
      faults_
          ->Roll(FaultSite::kFlashLatent, static_cast<int32_t>(fault_index_))
          .fire &&
      !s.payload.empty()) {
    // Latent sector error: damage the stored bytes but not the CRC, so the
    // corruption stays silent until the slot is read or scrubbed.
    s.payload[0] ^= 0xFF;
  }
  ++wear_.io_writes;
  Inc(tel_writes_);
  if (ftl_) {
    // Wear comes from the FTL: GC write amplification and real erases.
    REO_RETURN_IF_ERROR(FtlWriteSlot(s));
    wear_.bytes_written =
        ftl_->stats().nand_pages_written * ftl_->config().page_bytes;
    wear_.erase_cycles = ftl_->stats().erases;
    Inc(tel_erases_, wear_.erase_cycles - tel_published_erases_);
    tel_published_erases_ = wear_.erase_cycles;
    Set(tel_bytes_written_, static_cast<double>(wear_.bytes_written));
    Set(tel_wear_, wear_.WearFraction(config_));
    return Status::Ok();
  }
  // Flat model: programming `logical_bytes` eventually forces that many
  // bytes of erasure (write amplification factor 1).
  wear_.bytes_written += s.logical_bytes;
  pending_erase_bytes_ += s.logical_bytes;
  while (pending_erase_bytes_ >= config_.erase_block_bytes) {
    pending_erase_bytes_ -= config_.erase_block_bytes;
    ++wear_.erase_cycles;
    Inc(tel_erases_);
  }
  Set(tel_bytes_written_, static_cast<double>(wear_.bytes_written));
  Set(tel_wear_, wear_.WearFraction(config_));
  return Status::Ok();
}

Result<std::span<const uint8_t>> FlashDevice::ReadSlot(SlotId slot) {
  if (!healthy()) return Status{ErrorCode::kUnavailable, "device failed"};
  if (slot >= slots_.size() || !slots_[slot].allocated) {
    return Status{ErrorCode::kNotFound, "no such slot"};
  }
  const Slot& s = slots_[slot];
  if (faults_ && faults_->enabled(FaultSite::kFlashReadTransient) &&
      faults_
          ->Roll(FaultSite::kFlashReadTransient,
                 static_cast<int32_t>(fault_index_))
          .fire) {
    return Status{ErrorCode::kIoError, "injected transient read error"};
  }
  if (Crc32c(s.payload) != s.crc) {
    return Status{ErrorCode::kCorrupted, "slot CRC mismatch"};
  }
  wear_.bytes_read += s.logical_bytes;
  ++wear_.io_reads;
  Inc(tel_reads_);
  Set(tel_bytes_read_, static_cast<double>(wear_.bytes_read));
  return std::span<const uint8_t>(s.payload);
}

SimTime FlashDevice::ServiceTime(uint64_t logical_bytes, bool is_write) const {
  if (is_write) {
    return config_.write_fixed_ns + TransferTime(logical_bytes, config_.write_mbps);
  }
  return config_.read_fixed_ns + TransferTime(logical_bytes, config_.read_mbps);
}

SimTime FlashDevice::SubmitIo(SimTime start, uint64_t logical_bytes, bool is_write) {
  SimTime begin = std::max(start, busy_until_);
  SimTime service = ServiceTime(logical_bytes, is_write);
  if (faults_ && faults_->enabled(FaultSite::kFlashFailSlow)) {
    FaultDecision d = faults_->Roll(FaultSite::kFlashFailSlow,
                                    static_cast<int32_t>(fault_index_), start);
    if (d.fire) {
      service = static_cast<SimTime>(static_cast<double>(service) *
                                     d.slow_factor) +
                d.added_latency_ns;
    }
  }
  busy_until_ = begin + service;
  if (failslow_) failslow_->Observe(fault_index_, service, busy_until_);
  if (trace_) {
    // Span covers queueing-adjusted service only, so same-track spans on a
    // busy device abut instead of overlapping.
    trace_->Record(is_write ? TraceOp::kDeviceWrite : TraceOp::kDeviceRead,
                   begin, busy_until_, /*object=*/0, /*flags=*/0,
                   /*detail=*/logical_bytes);
  }
  return busy_until_;
}

Status FlashDevice::CorruptSlot(SlotId slot, uint32_t byte_index) {
  if (slot >= slots_.size() || !slots_[slot].allocated) {
    return {ErrorCode::kNotFound, "no such slot"};
  }
  Slot& s = slots_[slot];
  if (s.payload.empty()) return {ErrorCode::kInvalidArgument, "slot never written"};
  s.payload[byte_index % s.payload.size()] ^= 0xFF;
  return Status::Ok();
}

void FlashDevice::Fail() {
  state_ = DeviceState::kFailed;
  // Payload is gone; metadata (slot sizes) is retained by the array layer
  // for accounting, but this device can never serve those bytes again.
  for (auto& s : slots_) {
    s.payload.clear();
    s.payload.shrink_to_fit();
  }
}

void FlashDevice::Replace() {
  slots_.clear();
  free_list_.clear();
  used_bytes_ = 0;
  live_slots_ = 0;
  wear_ = FlashWearStats{};
  pending_erase_bytes_ = 0;
  state_ = DeviceState::kHealthy;
  if (config_.model_ftl) InitFtl();  // a spare arrives with zero wear
  tel_published_erases_ = 0;
  if (tel_registry_) {
    // Fresh gauges for the fresh device; the new FTL re-attaches under the
    // same prefix so its counters continue at this array position.
    Set(tel_bytes_read_, 0.0);
    Set(tel_bytes_written_, 0.0);
    Set(tel_wear_, 0.0);
    if (ftl_) ftl_->AttachTelemetry(*tel_registry_, tel_prefix_ + ".ftl");
  }
}

}  // namespace reo
