// Flash Translation Layer model.
//
// The paper's motivation is flash wear: cells endure 1,000-5,000 P/E
// cycles, and every host write eventually forces whole-block erasures,
// amplified by garbage collection. This FTL models that machinery —
// out-of-place page writes, per-block validity tracking, GC with
// selectable victim policies, TRIM — and reports write amplification and
// wear-leveling quality. FlashDevice can route its write accounting
// through an Ftl (FlashDeviceConfig::model_ftl) so device wear reflects GC
// traffic instead of a flat factor-1 estimate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/metric_registry.h"

namespace reo {

/// GC victim-selection policies.
enum class GcPolicy : uint8_t {
  kGreedy,      ///< most invalid pages first (min valid relocation)
  kCostBenefit, ///< classic (1-u)/(2u) * age heuristic
  kWearAware,   ///< greedy, tie-broken toward least-worn blocks
};

struct FtlConfig {
  uint32_t page_bytes = 4096;
  uint32_t pages_per_block = 64;
  uint32_t block_count = 1024;
  /// Fraction of blocks held back as over-provisioning (GC headroom).
  double over_provisioning = 0.07;
  /// GC triggers when free blocks fall to this count.
  uint32_t gc_low_watermark = 4;
  GcPolicy gc_policy = GcPolicy::kGreedy;
  /// kWearAware only: when the max-min erase-count gap exceeds this,
  /// static wear leveling kicks in — the least-worn sealed block (usually
  /// full of cold data) is migrated so its block re-enters rotation.
  uint32_t wear_leveling_delta = 8;
};

/// Lifetime counters.
struct FtlStats {
  uint64_t host_pages_written = 0;
  uint64_t nand_pages_written = 0;  ///< host + GC relocations
  uint64_t gc_runs = 0;
  uint64_t gc_pages_relocated = 0;
  uint64_t erases = 0;

  double WriteAmplification() const {
    return host_pages_written
               ? static_cast<double>(nand_pages_written) /
                     static_cast<double>(host_pages_written)
               : 1.0;
  }
};

/// Page-mapped FTL simulation.
class Ftl {
 public:
  explicit Ftl(FtlConfig config);

  const FtlConfig& config() const { return config_; }
  const FtlStats& stats() const { return stats_; }

  /// Registers this FTL's metrics under `prefix` (e.g. "flash.dev0.ftl")
  /// and begins hot-path updates. Counters are cumulative per name: a
  /// replacement FTL attaching to the same prefix continues them.
  void AttachTelemetry(MetricRegistry& registry, const std::string& prefix);

  /// Logical pages exposed to the host (capacity minus over-provisioning).
  uint64_t logical_pages() const { return logical_pages_; }

  /// Writes (or overwrites) a logical page. Runs GC as needed. Fails with
  /// kNoSpace only if the drive is truly full of valid data.
  Status WritePage(uint64_t lpn);

  /// Declares a logical page unused (TRIM): invalidates without writing.
  Status TrimPage(uint64_t lpn);

  /// True if the logical page currently holds data.
  bool IsMapped(uint64_t lpn) const;

  /// Valid pages currently mapped.
  uint64_t mapped_pages() const { return mapped_pages_; }

  /// Per-block erase counts (wear histogram source).
  const std::vector<uint32_t>& erase_counts() const { return erase_counts_; }

  /// Max/mean erase-count ratio — 1.0 is perfectly level wear. (Max/mean,
  /// not max/min: an idle frontier block legitimately sits at zero erases
  /// and would make a min-based metric meaningless.)
  double WearSpread() const;

 private:
  struct Block {
    std::vector<uint64_t> page_lpn;  ///< lpn per page, kInvalid if not live
    uint32_t valid = 0;
    uint32_t next_page = 0;          ///< append cursor
    uint64_t seq = 0;                ///< age stamp for cost-benefit
  };

  static constexpr uint64_t kUnmapped = ~0ULL;

  uint32_t PickVictim() const;
  /// Static wear leveling: least-worn sealed block, if the wear gap
  /// warrants migrating it; ~0u otherwise.
  uint32_t PickWearLevelVictim() const;
  void RunGc();
  /// Appends into the given write frontier (host or GC), acquiring a fresh
  /// block from the free list when the frontier fills.
  void AppendPage(uint64_t lpn, uint32_t& frontier);
  Status EnsureWritable();

  FtlConfig config_;
  uint64_t logical_pages_;
  std::vector<Block> blocks_;
  std::vector<uint32_t> erase_counts_;
  std::vector<uint32_t> free_blocks_;  // stack of fully-erased blocks
  std::vector<std::pair<uint32_t, uint32_t>> map_;  // lpn -> (block, page)
  // Dual write frontiers: host writes and GC relocations go to separate
  // blocks (hot/cold separation; also guarantees GC progress).
  uint32_t host_block_;
  uint32_t gc_block_;
  uint64_t mapped_pages_ = 0;
  uint64_t seq_ = 0;
  FtlStats stats_;

  // Telemetry (null when un-attached).
  Counter* tel_host_writes_ = nullptr;
  Counter* tel_nand_writes_ = nullptr;
  Counter* tel_gc_runs_ = nullptr;
  Counter* tel_gc_relocated_ = nullptr;
  Gauge* tel_write_amp_ = nullptr;
};

}  // namespace reo
