// Data classification (paper §IV.C.1, Table II).
//
// Four classes by semantic importance: system metadata (0), dirty cache
// data (1), hot clean data (2), cold clean data (3). Hotness is
// H = Freq / Size; the cutoff H_hot is chosen adaptively so the redundancy
// the hot set would need fits the reserved fraction of flash space.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/object_id.h"

namespace reo {

/// Table II class IDs, ordered by importance (0 = most important).
enum class DataClass : uint8_t {
  kMetadata = 0,   ///< system metadata (root/partition/super block/…)
  kDirty = 1,      ///< write-back data not yet flushed
  kHotClean = 2,   ///< frequently read, synchronized with backend
  kColdClean = 3,  ///< infrequently read, synchronized with backend
};

constexpr std::string_view to_string(DataClass c) {
  switch (c) {
    case DataClass::kMetadata: return "metadata";
    case DataClass::kDirty: return "dirty";
    case DataClass::kHotClean: return "hot-clean";
    case DataClass::kColdClean: return "cold-clean";
  }
  return "?";
}

/// The attributes classification needs for one object.
struct ObjectState {
  ObjectId id;
  uint64_t logical_size = 0;
  uint64_t freq = 0;  ///< reads since the object entered the cache
  bool dirty = false;
  bool is_metadata = false;

  /// Hotness indicator H = Freq / Size (paper §IV.C.1): frequently read,
  /// small objects rank highest.
  double H() const {
    if (logical_size == 0) return static_cast<double>(freq);
    return static_cast<double>(freq) / static_cast<double>(logical_size);
  }
};

/// Pure Table II classification given the current hot threshold.
DataClass Classify(const ObjectState& obj, double h_hot);

/// Adaptive H_hot selection (paper §IV.C.1).
///
/// Given the clean resident objects and the redundancy budget left for hot
/// data, sort by H descending and "presumably add" objects — accumulating
/// the redundancy each would need — until the budget is consumed. The H of
/// the last included object becomes the threshold.
class AdaptiveHotClassifier {
 public:
  /// @param redundancy_cost  callback returning the redundancy bytes (not
  ///        counting the data itself) protecting an object of a given
  ///        logical size at the hot level would cost.
  explicit AdaptiveHotClassifier(
      std::function<uint64_t(uint64_t logical_size)> redundancy_cost);

  /// Recomputes the threshold. `candidates` are clean resident objects.
  /// Returns the new H_hot (+inf when the budget admits nothing).
  double Refresh(std::vector<ObjectState> candidates, uint64_t hot_budget_bytes);

  double h_hot() const { return h_hot_; }
  /// Number of objects the last Refresh admitted as hot.
  size_t hot_count() const { return hot_count_; }

 private:
  std::function<uint64_t(uint64_t)> redundancy_cost_;
  double h_hot_;
  size_t hot_count_ = 0;
};

}  // namespace reo
