#include "core/classifier.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace reo {

DataClass Classify(const ObjectState& obj, double h_hot) {
  if (obj.is_metadata) return DataClass::kMetadata;
  if (obj.dirty) return DataClass::kDirty;
  if (obj.H() >= h_hot) return DataClass::kHotClean;
  return DataClass::kColdClean;
}

AdaptiveHotClassifier::AdaptiveHotClassifier(
    std::function<uint64_t(uint64_t)> redundancy_cost)
    : redundancy_cost_(std::move(redundancy_cost)),
      h_hot_(std::numeric_limits<double>::infinity()) {
  REO_CHECK(redundancy_cost_ != nullptr);
}

double AdaptiveHotClassifier::Refresh(std::vector<ObjectState> candidates,
                                      uint64_t hot_budget_bytes) {
  std::sort(candidates.begin(), candidates.end(),
            [](const ObjectState& a, const ObjectState& b) {
              double ha = a.H(), hb = b.H();
              if (ha != hb) return ha > hb;
              return a.id < b.id;  // deterministic tie-break
            });
  uint64_t spent = 0;
  hot_count_ = 0;
  h_hot_ = std::numeric_limits<double>::infinity();
  for (const auto& obj : candidates) {
    uint64_t cost = redundancy_cost_(obj.logical_size);
    if (spent + cost > hot_budget_bytes) break;
    spent += cost;
    h_hot_ = obj.H();
    ++hot_count_;
  }
  return h_hot_;
}

}  // namespace reo
