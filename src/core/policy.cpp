#include "core/policy.h"

namespace reo {

RedundancyLevel RedundancyPolicy::LevelFor(DataClass cls) const {
  switch (config_.mode) {
    case ProtectionMode::kUniform0:
      return RedundancyLevel::kNone;
    case ProtectionMode::kUniform1:
      return RedundancyLevel::kParity1;
    case ProtectionMode::kUniform2:
      return RedundancyLevel::kParity2;
    case ProtectionMode::kFullReplication:
      return RedundancyLevel::kReplicate;
    case ProtectionMode::kReo:
      switch (cls) {
        case DataClass::kMetadata:
        case DataClass::kDirty:
          return RedundancyLevel::kReplicate;
        case DataClass::kHotClean:
          return RedundancyLevel::kParity2;
        case DataClass::kColdClean:
          return RedundancyLevel::kNone;
      }
  }
  return RedundancyLevel::kNone;
}

uint64_t RedundancyPolicy::ReserveBytes(uint64_t raw_capacity_bytes) const {
  if (config_.mode != ProtectionMode::kReo) {
    // Uniform modes spend whatever their level implies; no explicit cap.
    return raw_capacity_bytes;
  }
  return static_cast<uint64_t>(config_.reo_reserve_fraction *
                               static_cast<double>(raw_capacity_bytes));
}

bool RedundancyPolicy::ReserveApplies(DataClass cls) const {
  if (config_.mode != ProtectionMode::kReo) return false;
  return cls == DataClass::kHotClean || cls == DataClass::kColdClean;
}

}  // namespace reo
