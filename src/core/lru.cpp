#include "core/lru.h"

namespace reo {

Status LruList::Insert(ObjectId id) {
  if (index_.contains(id)) return {ErrorCode::kAlreadyExists, "already cached"};
  order_.push_front(id);
  index_.emplace(id, order_.begin());
  return Status::Ok();
}

Status LruList::Touch(ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return {ErrorCode::kNotFound, "not cached"};
  order_.splice(order_.begin(), order_, it->second);
  it->second = order_.begin();
  return Status::Ok();
}

Status LruList::Remove(ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return {ErrorCode::kNotFound, "not cached"};
  order_.erase(it->second);
  index_.erase(it);
  return Status::Ok();
}

std::optional<ObjectId> LruList::Lru() const {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

}  // namespace reo
