// Protection policies: Reo's differentiated redundancy and the paper's
// baselines (uniform 0/1/2-parity, full replication) — §IV.C.4 and §VI.A.
#pragma once

#include <cstdint>
#include <string_view>

#include "array/stripe.h"
#include "core/classifier.h"

namespace reo {

/// The configurations compared in the evaluation.
enum class ProtectionMode : uint8_t {
  kUniform0,         ///< 0-parity: no redundancy for anything
  kUniform1,         ///< 1 parity chunk per stripe for all data
  kUniform2,         ///< 2 parity chunks per stripe for all data
  kFullReplication,  ///< replicas on every device for all data
  kReo,              ///< differentiated redundancy (Table II mapping)
};

constexpr std::string_view to_string(ProtectionMode m) {
  switch (m) {
    case ProtectionMode::kUniform0: return "0-parity";
    case ProtectionMode::kUniform1: return "1-parity";
    case ProtectionMode::kUniform2: return "2-parity";
    case ProtectionMode::kFullReplication: return "full-replication";
    case ProtectionMode::kReo: return "Reo";
  }
  return "?";
}

struct PolicyConfig {
  ProtectionMode mode = ProtectionMode::kReo;
  /// Reo-X%: fraction of raw flash space reserved for redundancy
  /// (paper §VI.B: 10%, 20%, 40%).
  double reo_reserve_fraction = 0.10;
};

/// Maps a data class to the redundancy level to store it at.
class RedundancyPolicy {
 public:
  explicit RedundancyPolicy(PolicyConfig config) : config_(config) {}

  const PolicyConfig& config() const { return config_; }
  ProtectionMode mode() const { return config_.mode; }

  /// The level `cls` is stored at (§IV.C.4). Uniform modes ignore the
  /// class; Reo maps metadata/dirty -> replicate, hot -> 2-parity,
  /// cold -> none.
  RedundancyLevel LevelFor(DataClass cls) const;

  /// Redundancy byte budget for a raw array capacity. Uniform modes have
  /// no explicit reserve (redundancy is implied by the level everywhere).
  uint64_t ReserveBytes(uint64_t raw_capacity_bytes) const;

  /// Whether the reserve cap applies to this class under this mode. Reo
  /// exempts metadata and dirty data: their protection is mandatory (a
  /// loss would be permanent), so they may exceed the reserve.
  bool ReserveApplies(DataClass cls) const;

 private:
  PolicyConfig config_;
};

}  // namespace reo
