// Differentiated data recovery ordering (paper §IV.D).
//
// After a failure, recoverable objects are reconstructed "according to
// their class (metadata, dirty data, hot clean data, and finally cold
// clean data), from Class 0 to Class 3" — and, within a class, hot data
// first (highest H), because it is most likely to be requested soon.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/object_id.h"
#include "core/classifier.h"
#include "telemetry/metric_registry.h"

namespace reo {

/// Priority queue of objects awaiting reconstruction: ordered by class
/// ascending (0 first), then H descending, with deterministic tie-breaks.
class RecoveryScheduler {
 public:
  /// Enqueues (or re-prioritizes) an object.
  void Enqueue(ObjectId id, DataClass cls, double h, uint64_t bytes);

  /// Removes an object (rebuilt on demand, evicted, or lost).
  void Remove(ObjectId id);

  /// Highest-priority object, or nullopt when drained.
  std::optional<ObjectId> Peek() const;

  /// Pops the highest-priority object.
  std::optional<ObjectId> Pop();

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }
  uint64_t pending_bytes() const { return pending_bytes_; }
  void Clear();

  /// Registers recovery metrics ("recovery.*"): queue pressure gauges plus
  /// per-class on-demand vs background rebuild counters and latency
  /// histograms.
  void AttachTelemetry(MetricRegistry& registry);

  /// Records one completed reconstruction. The cache manager performs the
  /// rebuild IO (on-demand at access/failure time, or paced background
  /// work) and reports it here so recovery telemetry lives with the
  /// scheduler that ordered it.
  void RecordRebuild(DataClass cls, bool on_demand, double latency_us);

 private:
  struct Key {
    uint8_t cls;
    double neg_h;  // ordered ascending => highest H first
    ObjectId id;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.cls != b.cls) return a.cls < b.cls;
      if (a.neg_h != b.neg_h) return a.neg_h < b.neg_h;
      return a.id < b.id;
    }
  };

  void PublishQueueGauges();

  std::set<Key> queue_;
  std::unordered_map<ObjectId, std::pair<Key, uint64_t>, ObjectIdHash> index_;
  uint64_t pending_bytes_ = 0;

  // Telemetry (null when un-attached). Rebuild counters are indexed
  // [class 0-3][0 = background, 1 = on-demand].
  Counter* tel_enqueues_ = nullptr;
  Counter* tel_rebuilds_[4][2] = {};
  ShardedHistogram* tel_latency_[2] = {};
  Gauge* tel_depth_ = nullptr;
  Gauge* tel_pending_bytes_ = nullptr;
};

}  // namespace reo
