// Differentiated data recovery ordering (paper §IV.D).
//
// After a failure, recoverable objects are reconstructed "according to
// their class (metadata, dirty data, hot clean data, and finally cold
// clean data), from Class 0 to Class 3" — and, within a class, hot data
// first (highest H), because it is most likely to be requested soon.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/object_id.h"
#include "core/classifier.h"

namespace reo {

/// Priority queue of objects awaiting reconstruction: ordered by class
/// ascending (0 first), then H descending, with deterministic tie-breaks.
class RecoveryScheduler {
 public:
  /// Enqueues (or re-prioritizes) an object.
  void Enqueue(ObjectId id, DataClass cls, double h, uint64_t bytes);

  /// Removes an object (rebuilt on demand, evicted, or lost).
  void Remove(ObjectId id);

  /// Highest-priority object, or nullopt when drained.
  std::optional<ObjectId> Peek() const;

  /// Pops the highest-priority object.
  std::optional<ObjectId> Pop();

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }
  uint64_t pending_bytes() const { return pending_bytes_; }
  void Clear();

 private:
  struct Key {
    uint8_t cls;
    double neg_h;  // ordered ascending => highest H first
    ObjectId id;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.cls != b.cls) return a.cls < b.cls;
      if (a.neg_h != b.neg_h) return a.neg_h < b.neg_h;
      return a.id < b.id;
    }
  };

  std::set<Key> queue_;
  std::unordered_map<ObjectId, std::pair<Key, uint64_t>, ObjectIdHash> index_;
  uint64_t pending_bytes_ = 0;
};

}  // namespace reo
