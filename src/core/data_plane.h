// ReoDataPlane: the target-side differentiated-redundancy engine.
//
// Implements the osd::DataPlane interface over the StripeManager: maps
// class IDs to redundancy levels via the active policy, enforces the
// redundancy reserve (sense 0x67 when the reserved space is exhausted —
// the object is then stored/kept unprotected rather than rejected), and
// exposes recovery state to the control-object protocol.
#pragma once

#include <cstdint>

#include "admit/admission_tier.h"
#include "array/stripe_manager.h"
#include "common/rng.h"
#include "core/policy.h"
#include "fault/retry.h"
#include "osd/osd_target.h"
#include "telemetry/metric_registry.h"
#include "trace/event_log.h"
#include "trace/tracer.h"

namespace reo {

class PersistenceManager;

class ReoDataPlane final : public DataPlane {
 public:
  /// @param stripes storage engine; must outlive the plane.
  ReoDataPlane(StripeManager& stripes, RedundancyPolicy policy);

  // --- DataPlane -------------------------------------------------------------
  Result<DataPlaneIo> WriteObject(ObjectId id, std::span<const uint8_t> payload,
                                  uint64_t logical_bytes, uint8_t class_id,
                                  SimTime now) override;
  Result<DataPlaneIo> ReadObject(ObjectId id, SimTime now) override;
  Status RemoveObject(ObjectId id) override;
  Status SetObjectClass(ObjectId id, uint8_t class_id, SimTime now) override;
  ObjectHealth Health(ObjectId id) const override;
  bool recovery_active() const override { return recovery_active_; }
  bool HasSpaceFor(uint64_t logical_bytes, uint8_t class_id) const override;
  /// Flash-only space check: ignores the DRAM tier's staging shortcut.
  /// The cache manager's graduation wrapper evicts against this.
  bool HasFlashSpaceFor(uint64_t logical_bytes, uint8_t class_id) const;
  void OnFormat(uint64_t capacity_bytes, SimTime now) override;

  // --- Reo-specific ----------------------------------------------------------

  const RedundancyPolicy& policy() const { return policy_; }
  StripeManager& stripes() { return stripes_; }

  /// Redundancy byte budget (from the Reo-X% reserve fraction).
  uint64_t reserve_bytes() const { return reserve_bytes_; }
  /// Redundancy bytes currently in use.
  uint64_t redundancy_in_use() const { return stripes_.redundancy_bytes(); }

  /// Level an object of `class_id` would be stored at *right now*,
  /// including the reserve-cap downgrade for hot-clean data.
  RedundancyLevel EffectiveLevel(uint64_t logical_bytes, uint8_t class_id) const;

  void set_recovery_active(bool active) { recovery_active_ = active; }

  /// Counters for reserve-cap downgrades (observable as sense 0x67).
  uint64_t reserve_rejections() const { return reserve_rejections_; }

  /// Registers the redundancy engine's metrics ("dataplane.*") and begins
  /// hot-path updates: op counts, reserve pressure, redundancy footprint.
  void AttachTelemetry(MetricRegistry& registry);

  /// Resolves the data-plane span track and fans out to the stripe layer
  /// (reconstruction track + per-device flash tracks).
  void AttachTracing(Tracer& tracer);

  /// Routes every successful write/reclass/remove through the durable log.
  /// Null (the default) keeps the plane byte-identical to the in-memory
  /// configuration. The manager must outlive the plane.
  void AttachPersistence(PersistenceManager* persist) { persist_ = persist; }

  /// Bounded retry with jittered backoff for transient (kIoError) stripe
  /// reads/writes. The seed keeps simulated backoff jitter reproducible.
  void ConfigureRetry(const RetryPolicy& policy, uint64_t seed) {
    retry_ = policy;
    retry_rng_ = Pcg32(seed, /*stream=*/0x7e7);
  }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Partial-failure milestones (retry.exhausted, fault.crc_repair) land
  /// in this log.
  void AttachEvents(EventLog& events) {
    ev_ = &events;
    stripes_.AttachEvents(events);
  }

  /// Interposes the DRAM admission tier on the write/read path: clean
  /// writes (classes 2/3) stage in DRAM and reach flash only when the
  /// tier's policy graduates them; reads check DRAM first. The tier must
  /// outlive the plane. A disabled tier (dram_bytes == 0) leaves every
  /// path byte-identical to the un-attached plane.
  void AttachAdmission(AdmissionTier& tier);

 private:
  /// The flash write path proper: PutObject with bounded retry, then the
  /// durable-log commit. Staged writes bypass this until graduation.
  Result<DataPlaneIo> WriteToFlash(ObjectId id, std::span<const uint8_t> payload,
                                   uint64_t logical_bytes, uint8_t class_id,
                                   SimTime now);
  /// Whether this write should be held in DRAM instead of hitting flash.
  bool ShouldStage(uint64_t stored_bytes, uint8_t class_id) const;

  StripeManager& stripes_;
  RedundancyPolicy policy_;
  PersistenceManager* persist_ = nullptr;
  AdmissionTier* admit_ = nullptr;
  uint64_t reserve_bytes_ = 0;
  bool recovery_active_ = false;
  uint64_t reserve_rejections_ = 0;

  // Telemetry (null when un-attached).
  Counter* tel_writes_ = nullptr;
  Counter* tel_reads_ = nullptr;
  Counter* tel_degraded_reads_ = nullptr;
  Counter* tel_removes_ = nullptr;
  Counter* tel_reclass_ = nullptr;
  Counter* tel_reserve_rejections_ = nullptr;
  Gauge* tel_redundancy_bytes_ = nullptr;
  Gauge* tel_user_bytes_ = nullptr;
  Counter* tel_retry_attempts_ = nullptr;
  Counter* tel_retry_successes_ = nullptr;
  Counter* tel_retry_exhausted_ = nullptr;
  Counter* tel_crc_repairs_ = nullptr;
  Counter* tel_crc_unrepaired_ = nullptr;

  SpanRecorder* trace_ = nullptr;
  EventLog* ev_ = nullptr;
  RetryPolicy retry_;
  Pcg32 retry_rng_{0x5eed, 0x7e7};
};

}  // namespace reo
