#include "core/data_plane.h"

#include <algorithm>

#include "persist/persistence.h"

namespace reo {
namespace {

DataPlaneIo ToDataPlaneIo(ArrayIo io) {
  DataPlaneIo out;
  out.complete = io.complete;
  out.degraded = io.degraded;
  out.payload = std::move(io.payload);
  return out;
}

}  // namespace

ReoDataPlane::ReoDataPlane(StripeManager& stripes, RedundancyPolicy policy)
    : stripes_(stripes), policy_(policy) {
  // Reo-X% reserves X% of the *cache budget* (the configured cache size),
  // which may be far below the raw capacity of the device array.
  uint64_t budget = stripes_.array().total_capacity_bytes();
  if (uint64_t limit = stripes_.config().capacity_limit_bytes; limit > 0) {
    budget = std::min(budget, limit);
  }
  reserve_bytes_ = policy_.ReserveBytes(budget);
}

void ReoDataPlane::AttachTelemetry(MetricRegistry& registry) {
  tel_writes_ = &registry.GetCounter("dataplane.writes");
  tel_reads_ = &registry.GetCounter("dataplane.reads");
  tel_degraded_reads_ = &registry.GetCounter("dataplane.degraded_reads");
  tel_removes_ = &registry.GetCounter("dataplane.removes");
  tel_reclass_ = &registry.GetCounter("dataplane.reencodes");
  tel_reserve_rejections_ = &registry.GetCounter("dataplane.reserve_rejections");
  tel_redundancy_bytes_ = &registry.GetGauge("dataplane.redundancy_bytes");
  tel_user_bytes_ = &registry.GetGauge("dataplane.user_bytes");
  registry.GetGauge("dataplane.reserve_bytes")
      .Set(static_cast<double>(reserve_bytes_));
  tel_retry_attempts_ = &registry.GetCounter("retry.attempts");
  tel_retry_successes_ = &registry.GetCounter("retry.successes");
  tel_retry_exhausted_ = &registry.GetCounter("retry.exhausted");
  tel_crc_repairs_ = &registry.GetCounter("fault.crc_repairs");
  tel_crc_unrepaired_ = &registry.GetCounter("fault.crc_unrepaired");
  stripes_.AttachTelemetry(registry);
}

void ReoDataPlane::AttachTracing(Tracer& tracer) {
  trace_ = &tracer.RecorderFor(TraceComponent::kDataPlane);
  stripes_.AttachTracing(tracer);
}

RedundancyLevel ReoDataPlane::EffectiveLevel(uint64_t logical_bytes,
                                             uint8_t class_id) const {
  auto cls = static_cast<DataClass>(class_id);
  RedundancyLevel level = policy_.LevelFor(cls);
  if (level == RedundancyLevel::kNone || !policy_.ReserveApplies(cls)) {
    return level;
  }
  uint64_t cost =
      stripes_.FootprintEstimate(logical_bytes, level) - logical_bytes;
  if (stripes_.redundancy_bytes() + cost > reserve_bytes_) {
    // Reserve exhausted: store the data unprotected rather than reject it
    // (the paper reports this condition with sense 0x67).
    return RedundancyLevel::kNone;
  }
  return level;
}

void ReoDataPlane::AttachAdmission(AdmissionTier& tier) {
  admit_ = &tier;
  tier.SetFlashWriter([this](ObjectId id, std::span<const uint8_t> payload,
                             uint64_t logical_bytes, uint8_t class_id,
                             SimTime now) -> Status {
    auto io = WriteToFlash(id, payload, logical_bytes, class_id, now);
    return io.ok() ? Status::Ok() : io.status();
  });
}

bool ReoDataPlane::ShouldStage(uint64_t stored_bytes, uint8_t class_id) const {
  return admit_ != nullptr && admit_->enabled() &&
         AdmissionTier::StageableClass(class_id) &&
         admit_->CanHold(stored_bytes) &&
         (persist_ == nullptr || !persist_->replaying());
}

Result<DataPlaneIo> ReoDataPlane::WriteObject(ObjectId id,
                                              std::span<const uint8_t> payload,
                                              uint64_t logical_bytes,
                                              uint8_t class_id, SimTime now) {
  // The in-process simulator hands over exactly PhysicalSize(logical)
  // bytes (chunk-padded, possibly scaled); wire clients naturally send
  // logical-sized payloads. Adapt the latter to the array's chunk
  // geometry here — zero-pad up to the physical footprint (or truncate
  // under a scaled configuration, where payload storage is lossy by
  // design). Any other size mismatch still fails in PutObject.
  std::vector<uint8_t> shaped;
  if (uint64_t physical = stripes_.PhysicalSize(logical_bytes);
      payload.size() == logical_bytes && payload.size() != physical) {
    shaped.assign(payload.begin(), payload.end());
    shaped.resize(physical, 0);
    payload = shaped;
  }
  if (ShouldStage(payload.size(), class_id)) {
    if (stripes_.Contains(id)) {
      // Overwrite of a flash-resident object: write through so the flash
      // copy stays fresh (staging it would leave a stale version below),
      // and invalidate any DRAM copy of the previous version.
      auto io = WriteToFlash(id, payload, logical_bytes, class_id, now);
      if (io.ok()) {
        admit_->NoteWriteThrough(payload.size(), now);
        admit_->Erase(id);
      }
      return io;
    }
    PayloadBuffer staged(payload.begin(), payload.end());
    Status st =
        admit_->Stage(id, std::move(staged), logical_bytes, class_id, now);
    if (st.ok()) {
      DataPlaneIo io;
      io.complete = now;  // DRAM latency is noise next to the flash path
      return io;
    }
    // Staging refused: fall through to the flash path below.
  } else if (admit_ != nullptr && admit_->enabled()) {
    admit_->CountBypass();
  }
  return WriteToFlash(id, payload, logical_bytes, class_id, now);
}

Result<DataPlaneIo> ReoDataPlane::WriteToFlash(ObjectId id,
                                               std::span<const uint8_t> payload,
                                               uint64_t logical_bytes,
                                               uint8_t class_id, SimTime now) {
  TraceSpan span(trace_, TraceOp::kDataWrite, now, id.oid);
  RedundancyLevel desired = policy_.LevelFor(static_cast<DataClass>(class_id));
  RedundancyLevel level = EffectiveLevel(logical_bytes, class_id);
  if (level != desired) {
    ++reserve_rejections_;
    Inc(tel_reserve_rejections_);
  }
  // PutObject rolls back fully on failure, so retrying a transient write
  // error is safe: nothing of the failed attempt remains.
  SimTime t = now;
  auto io = stripes_.PutObject(id, payload, logical_bytes, level, t);
  for (uint32_t attempt = 1;
       !io.ok() && IsRetryable(io.status()) && attempt < retry_.max_attempts;
       ++attempt) {
    t += RetryBackoff(retry_, attempt - 1, retry_rng_);
    Inc(tel_retry_attempts_);
    io = stripes_.PutObject(id, payload, logical_bytes, level, t);
    if (io.ok()) Inc(tel_retry_successes_);
  }
  if (!io.ok()) {
    if (IsRetryable(io.status())) {
      Inc(tel_retry_exhausted_);
      Emit(ev_, t, EventSeverity::kWarn, "retry.exhausted",
           "transient write errors exceeded the retry budget",
           {{"object", std::to_string(id.oid)},
            {"attempts", std::to_string(retry_.max_attempts)}});
    }
    span.set_flags(kSpanError);
    return io.status();
  }
  span.set_end(io->complete);
  span.set_detail(logical_bytes);
  Inc(tel_writes_);
  Set(tel_redundancy_bytes_, static_cast<double>(stripes_.redundancy_bytes()));
  Set(tel_user_bytes_, static_cast<double>(stripes_.user_bytes()));
  if (persist_ != nullptr) {
    // Persist the physical (shaped) bytes: restore replays them through
    // PutObject unchanged. Replicated classes (0/1) must be durable before
    // the ack, so a failed commit fails the write; clean classes can be
    // re-fetched from the backend, so their commit failures only count.
    Status commit = persist_->CommitWrite(id, class_id, logical_bytes,
                                          payload, now);
    if (!commit.ok() && class_id <= 1 && !persist_->replaying()) {
      span.set_flags(kSpanError);
      return Status(ErrorCode::kUnavailable,
                    "persistence commit failed: " + commit.message());
    }
  }
  return ToDataPlaneIo(std::move(*io));
}

Result<DataPlaneIo> ReoDataPlane::ReadObject(ObjectId id, SimTime now) {
  if (admit_ != nullptr && admit_->enabled()) {
    if (const DramCache::Entry* e = admit_->Lookup(id, now)) {
      DataPlaneIo io;
      io.complete = now;
      io.payload.assign(e->payload.begin(), e->payload.end());
      return io;
    }
  }
  TraceSpan span(trace_, TraceOp::kDataRead, now, id.oid);
  // Bounded retry for transient device errors. Chunks that failed with
  // kIoError were NOT marked lost, so the retry re-reads the same slots.
  SimTime t = now;
  auto io = stripes_.GetObject(id, t);
  for (uint32_t attempt = 1;
       !io.ok() && IsRetryable(io.status()) && attempt < retry_.max_attempts;
       ++attempt) {
    t += RetryBackoff(retry_, attempt - 1, retry_rng_);
    Inc(tel_retry_attempts_);
    io = stripes_.GetObject(id, t);
    if (io.ok()) Inc(tel_retry_successes_);
  }
  if (!io.ok()) {
    if (IsRetryable(io.status())) {
      Inc(tel_retry_exhausted_);
      Emit(ev_, t, EventSeverity::kWarn, "retry.exhausted",
           "transient read errors exceeded the retry budget",
           {{"object", std::to_string(id.oid)},
            {"attempts", std::to_string(retry_.max_attempts)}});
    }
    span.set_flags(kSpanError);
    return io.status();
  }
  if (io->corrupt_chunks > 0) {
    // Latent sector errors surfaced during this read; the degraded-read
    // machinery already decoded good data from the surviving redundancy.
    // Repair in place now — rewrite the bad slots — so the next read (and
    // the redundancy margin) is whole again.
    auto rb = stripes_.RebuildObject(id, io->complete);
    if (rb.ok()) {
      io->complete = std::max(io->complete, rb->complete);
      io->chunk_reads += rb->chunk_reads;
      io->chunk_writes += rb->chunk_writes;
      Inc(tel_crc_repairs_, io->corrupt_chunks);
      Emit(ev_, io->complete, EventSeverity::kInfo, "fault.crc_repair",
           "corrupt chunks repaired in place after degraded read",
           {{"object", std::to_string(id.oid)},
            {"chunks", std::to_string(io->corrupt_chunks)}});
    } else {
      Inc(tel_crc_unrepaired_);
      Emit(ev_, io->complete, EventSeverity::kWarn, "fault.crc_repair_failed",
           rb.status().to_string(),
           {{"object", std::to_string(id.oid)},
            {"chunks", std::to_string(io->corrupt_chunks)}});
    }
  }
  Inc(tel_reads_);
  if (io->degraded) {
    Inc(tel_degraded_reads_);
    span.set_flags(kSpanDegraded);
  }
  span.set_end(io->complete);
  return ToDataPlaneIo(std::move(*io));
}

Status ReoDataPlane::RemoveObject(ObjectId id) {
  bool staged = admit_ != nullptr && admit_->Erase(id);
  Status st = stripes_.RemoveObject(id);
  if (st.ok()) {
    Inc(tel_removes_);
    Set(tel_redundancy_bytes_, static_cast<double>(stripes_.redundancy_bytes()));
    Set(tel_user_bytes_, static_cast<double>(stripes_.user_bytes()));
    if (persist_ != nullptr) (void)persist_->CommitEvict(id, /*now=*/0);
  } else if (staged && st.code() == ErrorCode::kNotFound) {
    // The object lived only in DRAM: nothing on flash, nothing in the
    // durable log, but the remove succeeded.
    Inc(tel_removes_);
    return Status::Ok();
  }
  return st;
}

Status ReoDataPlane::SetObjectClass(ObjectId id, uint8_t class_id, SimTime now) {
  if (admit_ != nullptr && admit_->Contains(id)) {
    if (AdmissionTier::StageableClass(class_id)) {
      // Clean reclass of a DRAM-staged object: just retag it; the class
      // takes effect when (if) the object graduates.
      admit_->SetClass(id, class_id);
      return Status::Ok();
    }
    // Reclass into a durability class: the object needs flash + journal
    // now, so it graduates immediately at the new class.
    return admit_->GraduateNow(id, class_id, now);
  }
  auto size = stripes_.LogicalSizeOf(id);
  if (!size.ok()) return size.status();
  TraceSpan span(trace_, TraceOp::kReencode, now, id.oid);
  span.set_detail(class_id);
  RedundancyLevel desired = policy_.LevelFor(static_cast<DataClass>(class_id));
  RedundancyLevel effective = EffectiveLevel(*size, class_id);
  auto io = stripes_.ReencodeObject(id, effective, now);
  if (!io.ok()) {
    span.set_flags(kSpanError);
    return io.status();
  }
  span.set_end(io->complete);
  Inc(tel_reclass_);
  Set(tel_redundancy_bytes_, static_cast<double>(stripes_.redundancy_bytes()));
  Set(tel_user_bytes_, static_cast<double>(stripes_.user_bytes()));
  if (persist_ != nullptr) {
    (void)persist_->CommitState(id, class_id, std::nullopt, now);
  }
  if (effective != desired) {
    ++reserve_rejections_;
    Inc(tel_reserve_rejections_);
    // Data stored, but at reduced protection: report "redundancy space
    // full" so the initiator can react (paper Table III, 0x67).
    return {ErrorCode::kNoSpace, "redundancy reserve exhausted"};
  }
  return Status::Ok();
}

ObjectHealth ReoDataPlane::Health(ObjectId id) const {
  if (admit_ != nullptr && admit_->Contains(id)) return ObjectHealth::kIntact;
  if (!stripes_.Contains(id)) return ObjectHealth::kAbsent;
  switch (stripes_.SurvivalOf(id)) {
    case ObjectSurvival::kIntact: return ObjectHealth::kIntact;
    case ObjectSurvival::kRecoverable: return ObjectHealth::kDegraded;
    case ObjectSurvival::kLost: return ObjectHealth::kLost;
  }
  return ObjectHealth::kLost;
}

bool ReoDataPlane::HasSpaceFor(uint64_t logical_bytes, uint8_t class_id) const {
  // A stageable write only needs DRAM room — the tier makes room by
  // evicting, and graduations make flash room through the cache manager.
  if (ShouldStage(stripes_.PhysicalSize(logical_bytes), class_id)) return true;
  return HasFlashSpaceFor(logical_bytes, class_id);
}

bool ReoDataPlane::HasFlashSpaceFor(uint64_t logical_bytes,
                                    uint8_t class_id) const {
  return stripes_.HasSpaceFor(logical_bytes, EffectiveLevel(logical_bytes, class_id));
}

void ReoDataPlane::OnFormat(uint64_t capacity_bytes, SimTime now) {
  (void)capacity_bytes;
  (void)now;
  if (admit_ != nullptr) admit_->Clear();
  // A client-driven FORMAT starts an empty cache: drop the durable state
  // too — but never while restore itself is replaying through a format.
  if (persist_ != nullptr && !persist_->replaying()) persist_->ResetAll();
}

}  // namespace reo
