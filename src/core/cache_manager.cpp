#include "core/cache_manager.h"

#include <algorithm>
#include <string>

#include "common/crc32c.h"
#include "persist/persistence.h"

namespace reo {
namespace {

/// The exofs metadata objects are small; the paper notes the largest
/// (root directory) is 4 KB (§IV.C.4).
constexpr uint64_t kMetadataObjectBytes = 4096;

}  // namespace

CacheManager::CacheManager(OsdTarget& target, ReoDataPlane& plane,
                           BackendStore& backend, CacheManagerConfig config)
    : initiator_(target),
      plane_(plane),
      backend_(backend),
      config_(config),
      classifier_([&s = plane.stripes()](uint64_t size) {
        // Redundancy bytes protecting `size` at the hot level (2-parity).
        return s.FootprintEstimate(size, RedundancyLevel::kParity2) - size;
      }) {
  initiator_.set_control_latency(config_.control_write_ns);
}

void CacheManager::Initialize(SimTime now) {
  (void)initiator_.FormatOsd(plane_.stripes().array().total_capacity_bytes(),
                             now);

  // Install the Table I metadata objects as Class 0 (replicated).
  for (ObjectId id : {kSuperBlockObject, kDeviceTableObject,
                      kRootDirectoryObject}) {
    Entry e;
    e.logical_size = kMetadataObjectBytes;
    e.freq = 1;
    e.metadata = true;
    e.cls = DataClass::kMetadata;
    entries_[id] = e;
    resident_bytes_ += kMetadataObjectBytes;
    (void)SendClassification(id, DataClass::kMetadata, now);
    (void)initiator_.WriteObject(
        id,
        BackendStore::SynthesizePayload(
            id, 0, plane_.stripes().PhysicalSize(kMetadataObjectBytes)),
        kMetadataObjectBytes, now);
  }
}

void CacheManager::AttachTelemetry(MetricRegistry& registry) {
  for (int cls = 0; cls < 4; ++cls) {
    std::string base = "cache.class" + std::to_string(cls);
    tel_.class_hits[cls] = &registry.GetCounter(base + ".hits");
    tel_.class_misses[cls] = &registry.GetCounter(base + ".misses");
    tel_.class_evictions[cls] = &registry.GetCounter(base + ".evictions");
  }
  tel_.writes = &registry.GetCounter("cache.writes");
  tel_.degraded_reads = &registry.GetCounter("cache.degraded_reads");
  tel_.flushes = &registry.GetCounter("cache.flushes");
  tel_.reclassifications = &registry.GetCounter("cache.reclassifications");
  tel_.lost_evictions = &registry.GetCounter("cache.lost_evictions");
  tel_.dirty_lost = &registry.GetCounter("cache.dirty_lost");
  tel_.uncacheable = &registry.GetCounter("cache.uncacheable");
  tel_.verify_failures = &registry.GetCounter("cache.verify_failures");
  tel_.backend_retry_attempts = &registry.GetCounter("retry.backend.attempts");
  tel_.backend_retry_exhausted = &registry.GetCounter("retry.backend.exhausted");
  tel_.failslow_demotions = &registry.GetCounter("failslow.demotions");
  tel_.hit_latency_us = &registry.GetHistogram("cache.latency.hit_us");
  tel_.miss_latency_us = &registry.GetHistogram("cache.latency.miss_us");
  tel_.degraded_latency_us = &registry.GetHistogram("cache.latency.degraded_us");
  tel_.write_latency_us = &registry.GetHistogram("cache.latency.write_us");
  tel_.resident_bytes = &registry.GetGauge("cache.resident_bytes");
  tel_.resident_objects = &registry.GetGauge("cache.resident_objects");
  tel_.h_hot = &registry.GetGauge("cache.h_hot");
  PublishResidency();
  Set(tel_.h_hot, classifier_.h_hot());
  // recovery_ is owned here, so this is the scheduler's only attach path.
  recovery_.AttachTelemetry(registry);
}

void CacheManager::AttachTracing(Tracer& tracer) {
  tracer_ = &tracer;
  trace_root_ = &tracer.RecorderFor(TraceComponent::kCacheManager);
  ev_ = &tracer.events();
  plane_.AttachTracing(tracer);
  backend_.AttachTracing(tracer);
}

void CacheManager::PublishResidency() {
  Set(tel_.resident_bytes, static_cast<double>(resident_bytes_));
  Set(tel_.resident_objects, static_cast<double>(entries_.size()));
}

void CacheManager::FinishRecoveryIfDrained(SimTime now) {
  if (!recovery_.empty()) return;
  if (plane_.recovery_active()) {
    Emit(ev_, now, EventSeverity::kInfo, "recovery.complete",
         "recovery queue drained",
         {{"rebuilds", std::to_string(stats_.rebuilds)}});
  }
  plane_.set_recovery_active(false);
}

ObjectState CacheManager::StateOf(ObjectId id, const Entry& e) const {
  return ObjectState{.id = id,
                     .logical_size = e.logical_size,
                     .freq = e.freq,
                     .dirty = e.dirty,
                     .is_metadata = e.metadata};
}

void CacheManager::AttachAdmission(AdmissionTier& tier) {
  // Graduations happen outside the admission path, where nobody has made
  // flash room yet; wrap the plane's writer with the same evict-to-fit
  // loop a miss fill runs, or every graduation into a full flash cache
  // would fail and the eviction would degrade to a drop.
  tier.SetFlashWriter([this, inner = tier.flash_writer()](
                          ObjectId id, std::span<const uint8_t> payload,
                          uint64_t logical_bytes, uint8_t class_id,
                          SimTime now) -> Status {
    size_t attempts = entries_.size() + 2;
    while (!plane_.HasFlashSpaceFor(logical_bytes, class_id)) {
      if (attempts-- == 0 || !EvictOne(now)) {
        return Status(ErrorCode::kNoSpace, "no flash room for graduation");
      }
      if (entries_.find(id) == entries_.end()) {
        // The eviction scan took the graduating object itself: it is no
        // longer cached, so writing it to flash would leak untracked space.
        return Status(ErrorCode::kNotFound, "evicted during graduation");
      }
    }
    return inner(id, payload, logical_bytes, class_id, now);
  });
  tier.SetHotnessHook([this](ObjectId id, uint64_t logical_bytes,
                             uint64_t dram_hits, uint8_t staged_class) {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      // Evicted from the initiator-side index already: classify on the
      // DRAM-observed reuse alone.
      ObjectState state{.id = id,
                        .logical_size = logical_bytes,
                        .freq = dram_hits};
      return static_cast<uint8_t>(Classify(state, classifier_.h_hot()));
    }
    ObjectState state = StateOf(id, it->second);
    state.freq = std::max(state.freq, dram_hits);
    DataClass cls = Classify(state, classifier_.h_hot());
    // A graduation is by definition clean data leaving DRAM; never let a
    // stale dirty flag route it into a durability class here.
    if (cls == DataClass::kMetadata || cls == DataClass::kDirty) {
      return staged_class;
    }
    return static_cast<uint8_t>(cls);
  });
}

SenseCode CacheManager::SendClassification(ObjectId id, DataClass cls,
                                           SimTime now) {
  SenseCode sense =
      initiator_.SetClassId(id, static_cast<uint8_t>(cls), now);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    // On 0x67 the target kept the object at reduced protection; track the
    // effective class so later refreshes retry once the reserve frees up.
    it->second.cls = sense == SenseCode::kRedundancyFull
                         ? DataClass::kColdClean
                         : cls;
    if (persist_ != nullptr) {
      (void)persist_->NoteHotness(id, StateOf(id, it->second).H());
    }
  }
  return sense;
}

SenseCode CacheManager::QueryObject(ObjectId id, bool is_write, uint64_t size,
                                    SimTime now) {
  return initiator_.Query(id, is_write, 0, size, now);
}

// ---------------------------------------------------------------------------
// Client requests
// ---------------------------------------------------------------------------

RequestResult CacheManager::Get(ObjectId id, uint64_t logical_size, SimTime now) {
  ++request_counter_;
  ++stats_.gets;
  RequestResult res;
  res.bytes = logical_size;
  RequestTrace trace(tracer_, trace_root_, TraceOp::kGet, now, id.oid);

  if (array_unusable_) {
    // The striped volume is gone: every request goes to the backend.
    ++stats_.misses;
    ++stats_.uncacheable;
    Inc(tel_.class_misses[static_cast<int>(DataClass::kColdClean)]);
    Inc(tel_.uncacheable);
    trace.set_op(TraceOp::kGetUncacheable);
    auto fetch = FetchWithRetry(id, now);
    res.sense = fetch.ok() ? SenseCode::kOk : SenseCode::kFail;
    if (fetch.ok()) {
      res.latency = fetch->complete - now;
      trace.set_end(fetch->complete);
      Observe(tel_.miss_latency_us, static_cast<double>(res.latency) / 1e3);
    } else {
      trace.set_flags(kSpanError);
    }
    return res;
  }

  auto it = entries_.find(id);
  if (it != entries_.end()) {
    auto resp = initiator_.ReadObject(id, now);
    if (resp.ok()) {
      ++stats_.hits;
      res.hit = true;
      res.degraded = resp.degraded;
      res.latency = resp.complete > now ? resp.complete - now : 0;
      res.sense = resp.sense;
      it->second.freq++;
      (void)lru_.Touch(id);
      if (resp.degraded) ++stats_.degraded_reads;
      trace.set_op(resp.degraded ? TraceOp::kGetDegraded : TraceOp::kGetHit);
      if (resp.degraded) trace.set_flags(kSpanDegraded);
      trace.set_class(static_cast<uint8_t>(it->second.cls));
      trace.set_end(resp.complete);
      Inc(tel_.class_hits[static_cast<int>(it->second.cls)]);
      if (resp.degraded) {
        Inc(tel_.degraded_reads);
        Observe(tel_.degraded_latency_us,
                static_cast<double>(res.latency) / 1e3);
      } else {
        Observe(tel_.hit_latency_us, static_cast<double>(res.latency) / 1e3);
      }

      // This access may have pushed the object across H_hot: upgrade it
      // now rather than waiting for the next periodic refresh, so the
      // redundancy reserve stays committed under LRU churn. (Downgrades
      // and threshold adaptation happen at refresh time.)
      if (plane_.policy().mode() == ProtectionMode::kReo &&
          !reserve_full_hint_) {
        Entry& e = it->second;
        if (!e.dirty && !e.metadata && e.cls == DataClass::kColdClean &&
            StateOf(id, e).H() >= classifier_.h_hot()) {
          SenseCode sense = SendClassification(id, DataClass::kHotClean, now);
          ++stats_.reclassifications;
          Inc(tel_.reclassifications);
          // 0x67: the reserve is exhausted; stop retrying on every hit
          // until the next refresh frees budget (avoids a control-message
          // storm the target would reject anyway).
          if (sense == SenseCode::kRedundancyFull) reserve_full_hint_ = true;
        }
      }

      if (config_.verify_hits) {
        auto expected = BackendStore::SynthesizePayload(
            id, it->second.version, plane_.stripes().PhysicalSize(logical_size));
        if (Crc32c(expected) != Crc32c(resp.data)) {
          ++stats_.verify_failures;
          Inc(tel_.verify_failures);
        }
      }

      if (resp.degraded && plane_.policy().mode() == ProtectionMode::kReo) {
        // On-demand recovery first (§IV.D): repair this object now so the
        // next access is clean, and drop it from the background queue.
        // Uniform (block-based) protection has no object-level repair: it
        // pays the reconstruction on every degraded access until a spare
        // arrives and the block-level rebuild reaches the data.
        recovery_.Remove(id);
        auto rb = plane_.stripes().RebuildObject(id, resp.complete);
        if (rb.ok()) {
          ++stats_.rebuilds;
          double rebuild_us = static_cast<double>(rb->complete > resp.complete
                                                      ? rb->complete - resp.complete
                                                      : 0) /
                              1e3;
          recovery_.RecordRebuild(it->second.cls, /*on_demand=*/true,
                                  rebuild_us);
          trace.set_flags(kSpanOnDemand);
          trace.Cover(rb->complete);  // repair rides on this request
          Emit(ev_, resp.complete, EventSeverity::kInfo, "recovery.rebuild",
               "on-demand repair-on-read",
               {{"object", id.ToString()},
                {"class", std::to_string(static_cast<int>(it->second.cls))},
                {"mode", "on-demand"},
                {"latency_us", std::to_string(rebuild_us)}});
        }
        FinishRecoveryIfDrained(now);
      }

      MaybeRefresh(now);
      AdvanceBackground(now);
      return res;
    }
    // 0x63 or worse: the cached copy is gone. Evict and fall through.
    EvictObject(id, now, /*lost=*/true);
  }

  ++stats_.misses;
  {
    // Attribute the miss to the class the object would be admitted as.
    Entry probe;
    probe.logical_size = logical_size;
    probe.freq = 1;
    DataClass miss_cls = Classify(StateOf(id, probe), classifier_.h_hot());
    Inc(tel_.class_misses[static_cast<int>(miss_cls)]);
  }
  trace.set_op(TraceOp::kGetMiss);
  auto fetch = FetchWithRetry(id, now);
  if (!fetch.ok()) {
    res.sense = SenseCode::kFail;
    trace.set_flags(kSpanError);
    return res;
  }
  res.latency = fetch->complete - now;
  res.sense = SenseCode::kOk;
  trace.set_end(fetch->complete);
  Observe(tel_.miss_latency_us, static_cast<double>(res.latency) / 1e3);

  auto& array = plane_.stripes().array();
  bool degraded_array = array.healthy_count() < array.size();
  if (degraded_array && !config_.admit_while_degraded) {
    ++stats_.uncacheable;
    Inc(tel_.uncacheable);
  } else {
    SimTime io_complete = fetch->complete;
    if (!Admit(id, logical_size, fetch->payload, fetch->version,
               /*dirty=*/false, fetch->complete, io_complete)) {
      ++stats_.uncacheable;
      Inc(tel_.uncacheable);
    }
    trace.Cover(io_complete);  // admission IO rides on the miss
  }
  MaybeRefresh(now);
  AdvanceBackground(now);
  return res;
}

RequestResult CacheManager::Put(ObjectId id, uint64_t logical_size, SimTime now) {
  ++request_counter_;
  ++stats_.writes;
  Inc(tel_.writes);
  RequestResult res;
  res.is_write = true;
  res.bytes = logical_size;
  RequestTrace trace(tracer_, trace_root_, TraceOp::kPut, now, id.oid);

  uint64_t physical = plane_.stripes().PhysicalSize(logical_size);
  backend_.RegisterObject(id, logical_size, physical);

  uint64_t version = next_version_++;
  if (array_unusable_) {
    ++stats_.uncacheable;
    Inc(tel_.uncacheable);
    trace.set_op(TraceOp::kPutUncacheable);
    auto done = backend_.Flush(id, version, now);
    res.latency = done.ok() ? *done - now : 0;
    if (done.ok()) trace.set_end(*done);
    Observe(tel_.write_latency_us, static_cast<double>(res.latency) / 1e3);
    return res;
  }
  auto payload = BackendStore::SynthesizePayload(id, version, physical);

  // Whole-object overwrite: drop the old copy (its pending flush, if any,
  // is superseded) and admit the new version as dirty.
  if (auto it = entries_.find(id); it != entries_.end() && !it->second.metadata) {
    recovery_.Remove(id);
    (void)lru_.Remove(id);
    resident_bytes_ -= it->second.logical_size;
    entries_.erase(it);
    (void)initiator_.RemoveObject(id, now);
  }

  if (config_.write_policy == WritePolicy::kWriteThrough) {
    // Persist first; the cached copy is clean from the start.
    trace.set_op(TraceOp::kPutWriteThrough);
    auto done = backend_.Flush(id, version, now);
    res.latency = done.ok() ? *done - now : 0;
    if (done.ok()) trace.set_end(*done);
    Observe(tel_.write_latency_us, static_cast<double>(res.latency) / 1e3);
    SimTime io_complete = now;
    if (!Admit(id, logical_size, payload, version, /*dirty=*/false, now,
               io_complete)) {
      ++stats_.uncacheable;
      Inc(tel_.uncacheable);
    }
    trace.Cover(io_complete);
    MaybeRefresh(now);
    AdvanceBackground(now);
    return res;
  }

  SimTime io_complete = now;
  if (Admit(id, logical_size, payload, version, /*dirty=*/true, now,
            io_complete)) {
    res.hit = true;  // absorbed by the cache
    res.latency = io_complete > now ? io_complete - now : 0;
    trace.set_op(TraceOp::kPutWriteBack);
    trace.set_class(static_cast<uint8_t>(DataClass::kDirty));
    trace.set_end(io_complete);
  } else {
    // Cannot cache: write through to the backend synchronously.
    ++stats_.uncacheable;
    Inc(tel_.uncacheable);
    trace.set_op(TraceOp::kPutUncacheable);
    auto done = backend_.Flush(id, version, now);
    res.latency = done.ok() ? *done - now : 0;
    if (done.ok()) trace.set_end(*done);
  }
  Observe(tel_.write_latency_us, static_cast<double>(res.latency) / 1e3);
  MaybeRefresh(now);
  AdvanceBackground(now);
  return res;
}

// ---------------------------------------------------------------------------
// Admission & eviction
// ---------------------------------------------------------------------------

bool CacheManager::Admit(ObjectId id, uint64_t logical_size,
                         std::span<const uint8_t> payload, uint64_t version,
                         bool dirty, SimTime now, SimTime& io_complete) {
  Entry e;
  e.logical_size = logical_size;
  e.freq = 1;
  e.version = version;
  e.dirty = dirty;
  ObjectState state = StateOf(id, e);
  DataClass cls = Classify(state, classifier_.h_hot());
  e.cls = cls;  // SendClassification below runs before the entry exists

  // Make room, then create/classify/write. The write itself can still see
  // 0x64 (per-device fragmentation), in which case we evict and retry.
  constexpr size_t kEvictionStormThreshold = 16;
  size_t evictions = 0;
  auto evict_one = [&] {
    if (!EvictOne(now)) return false;
    if (++evictions == kEvictionStormThreshold) {
      Emit(ev_, now, EventSeverity::kWarn, "cache.eviction_storm",
           "one admission displaced many objects",
           {{"object", id.ToString()},
            {"evictions", std::to_string(evictions)},
            {"bytes", std::to_string(logical_size)}});
    }
    return true;
  };
  size_t attempts = entries_.size() + 2;
  while (attempts-- > 0) {
    while (!plane_.HasSpaceFor(logical_size, static_cast<uint8_t>(cls))) {
      if (!evict_one()) return false;
    }
    // CREATE is idempotent from the initiator's view: AlreadyExists maps
    // to kFail, which is fine for a re-admission.
    (void)initiator_.CreateObject(id, logical_size, now);
    (void)SendClassification(id, cls, now);

    auto resp = initiator_.WriteObject(id, payload, logical_size, now);
    if (resp.ok()) {
      entries_[id] = e;
      (void)lru_.Insert(id);
      resident_bytes_ += logical_size;
      PublishResidency();
      if (dirty) {
        flush_queue_.push_back(
            {.id = id, .version = version, .ready_time = now + config_.flush_delay_ns});
      }
      io_complete = std::max(io_complete, resp.complete);
      return true;
    }
    if (resp.sense != SenseCode::kCacheFull) return false;
    if (!evict_one()) return false;
  }
  return false;
}

bool CacheManager::EvictOne(SimTime now) {
  // LRU-first among clean objects; dirty objects must be flushed before
  // they can leave the cache (write-back invariant).
  ObjectId victim;
  bool found = false;
  lru_.ForEachLruFirst([&](ObjectId id) {
    auto it = entries_.find(id);
    if (it == entries_.end()) return true;
    if (it->second.metadata) return true;
    if (!it->second.dirty) {
      victim = id;
      found = true;
      return false;
    }
    return true;
  });
  if (!found) {
    // Everything is dirty: flush the LRU-most dirty object, then evict it.
    lru_.ForEachLruFirst([&](ObjectId id) {
      auto it = entries_.find(id);
      if (it == entries_.end() || it->second.metadata) return true;
      victim = id;
      found = true;
      return false;
    });
    if (!found) return false;
    auto it = entries_.find(victim);
    FlushObject(victim, it->second, now);
  }
  EvictObject(victim, now, /*lost=*/false);
  return true;
}

void CacheManager::EvictObject(ObjectId id, SimTime now, bool lost) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  if (it->second.cls == DataClass::kHotClean) {
    // Evicting a hot object releases its parity: the reserve may have
    // room again, so hit-time upgrades can resume.
    reserve_full_hint_ = false;
  }
  if (lost) {
    ++stats_.lost_evictions;
    Inc(tel_.lost_evictions);
  } else {
    ++stats_.evictions;
  }
  Inc(tel_.class_evictions[static_cast<int>(it->second.cls)]);
  resident_bytes_ -= it->second.logical_size;
  entries_.erase(it);
  (void)lru_.Remove(id);
  recovery_.Remove(id);
  (void)initiator_.RemoveObject(id, now);
  PublishResidency();
}

// ---------------------------------------------------------------------------
// Write-back flusher
// ---------------------------------------------------------------------------

void CacheManager::FlushObject(ObjectId id, Entry& e, SimTime now) {
  auto done = backend_.Flush(id, e.version, std::max(now, flusher_busy_until_));
  if (done.ok()) flusher_busy_until_ = *done;
  e.dirty = false;
  ++stats_.flushes;
  Inc(tel_.flushes);
  // The object is clean now: reclassify (hot or cold) so replication space
  // is returned to the reserve.
  DataClass cls = Classify(StateOf(id, e), classifier_.h_hot());
  (void)SendClassification(id, cls, now);
}

Result<BackendFetch> CacheManager::FetchWithRetry(ObjectId id, SimTime now) {
  // Fetches are idempotent reads of the authoritative copy: a transient
  // (kIoError) failure is always safe to retry after a jittered backoff.
  const RetryPolicy& rp = config_.backend_retry;
  SimTime t = now;
  auto fetch = backend_.Fetch(id, t);
  for (uint32_t attempt = 1;
       !fetch.ok() && IsRetryable(fetch.status()) && attempt < rp.max_attempts;
       ++attempt) {
    t += RetryBackoff(rp, attempt - 1, backend_retry_rng_);
    Inc(tel_.backend_retry_attempts);
    fetch = backend_.Fetch(id, t);
  }
  if (!fetch.ok() && IsRetryable(fetch.status())) {
    Inc(tel_.backend_retry_exhausted);
    Emit(ev_, t, EventSeverity::kWarn, "retry.backend_exhausted",
         "transient backend errors exceeded the retry budget",
         {{"object", std::to_string(id.oid)},
          {"attempts", std::to_string(rp.max_attempts)}});
  }
  return fetch;
}

void CacheManager::PollFailSlow(SimTime now) {
  if (failslow_ == nullptr) return;
  for (FaultDeviceIndex d : failslow_->TakeFlagged()) {
    if (!config_.failslow_demote) continue;  // detection/events only
    Inc(tel_.failslow_demotions);
    Emit(ev_, now, EventSeverity::kWarn, "device.failslow_demoted",
         "fail-slow device proactively demoted; spare swapped in",
         {{"device", std::to_string(d)}});
    // Treat the limping device as failed: the usual differentiated
    // recovery rebuilds its data onto the healthy set, and a fresh spare
    // takes its array slot. Resetting the detector gives the replacement
    // device a clean latency history.
    OnDeviceFailure(static_cast<DeviceIndex>(d), now);
    OnSpareInserted(static_cast<DeviceIndex>(d), now);
    failslow_->Reset(d);
  }
}

void CacheManager::AdvanceBackground(SimTime now) {
  // React to fail-slow detections before scheduling other background work
  // (a demotion enqueues recovery that the budget below starts draining).
  PollFailSlow(now);
  // Flusher: drain eligible dirty objects while the (virtual) flusher is
  // idle. The queue is in write order, so ready times are monotone.
  while (!flush_queue_.empty() && flusher_busy_until_ <= now &&
         flush_queue_.front().ready_time <= now) {
    PendingFlush pf = flush_queue_.front();
    flush_queue_.pop_front();
    auto it = entries_.find(pf.id);
    if (it == entries_.end() || !it->second.dirty ||
        it->second.version != pf.version) {
      continue;  // superseded or evicted
    }
    // The background flusher ran continuously: this flush started when the
    // object became eligible (or when the flusher freed up), not at the
    // moment we happen to observe the queue.
    FlushObject(pf.id, it->second, std::max(pf.ready_time, flusher_busy_until_));
  }
  // Paced background reconstruction.
  if (!recovery_.empty()) {
    RunRecoveryBudget(now, config_.recovery_bytes_per_request);
  }
  // Paced reclassification (re-encode) maintenance.
  size_t applied = 0;
  while (!reclass_queue_.empty() && applied < config_.reclass_per_request) {
    auto [id, cls] = reclass_queue_.front();
    reclass_queue_.pop_front();
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.dirty || it->second.cls == cls) {
      continue;  // evicted, dirtied, or already there
    }
    (void)SendClassification(id, cls, now);
    ++stats_.reclassifications;
    Inc(tel_.reclassifications);
    ++applied;
  }
}

// ---------------------------------------------------------------------------
// Classification refresh
// ---------------------------------------------------------------------------

void CacheManager::MaybeRefresh(SimTime now) {
  if (plane_.policy().mode() != ProtectionMode::kReo) return;
  if (config_.hhot_refresh_interval == 0) return;
  if (request_counter_ % config_.hhot_refresh_interval != 0) return;
  RefreshClassification(now);
}

void CacheManager::RefreshClassification(SimTime now) {
  auto& stripes = plane_.stripes();
  // Budget for hot-data parity = reserve minus what replication (metadata +
  // dirty) already consumes.
  uint64_t repl_used = stripes.redundancy_bytes_at(RedundancyLevel::kReplicate);
  uint64_t reserve = plane_.reserve_bytes();
  uint64_t hot_budget = reserve > repl_used ? reserve - repl_used : 0;
  hot_budget = static_cast<uint64_t>(static_cast<double>(hot_budget) *
                                     config_.hot_admission_headroom);

  std::vector<ObjectState> candidates;
  candidates.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    if (e.metadata || e.dirty) continue;
    candidates.push_back(StateOf(id, e));
  }
  classifier_.Refresh(candidates, hot_budget);
  double h_hot = classifier_.h_hot();
  Set(tel_.h_hot, h_hot);
  if (persist_ != nullptr) (void)persist_->NoteClassifierState(h_hot);
  Emit(ev_, now, EventSeverity::kDebug, "reclass.refresh",
       "adaptive H_hot threshold recomputed",
       {{"h_hot", std::to_string(h_hot)},
        {"candidates", std::to_string(candidates.size())},
        {"hot_budget", std::to_string(hot_budget)}});
  reserve_full_hint_ = false;  // downgrades below may free budget

  // Apply class changes: downgrades first (they release reserve budget),
  // then upgrades by H descending. Demotion uses hysteresis — an object
  // just under the threshold keeps its parity — so boundary objects do
  // not ping-pong (each flip is a full re-encode).
  struct Change {
    ObjectId id;
    DataClass to;
    double h;
  };
  constexpr double kDemoteHysteresis = 0.8;
  std::vector<Change> downs, ups;
  for (const auto& [id, e] : entries_) {
    if (e.metadata || e.dirty) continue;
    double h = StateOf(id, e).H();
    DataClass want = Classify(StateOf(id, e), h_hot);
    if (want == e.cls) continue;
    if (want == DataClass::kColdClean && e.cls == DataClass::kHotClean &&
        h >= kDemoteHysteresis * h_hot) {
      continue;  // within the hysteresis band: stay hot
    }
    (want == DataClass::kColdClean ? downs : ups).push_back({id, want, h});
  }
  std::sort(downs.begin(), downs.end(),
            [](const Change& a, const Change& b) { return a.h < b.h; });
  std::sort(ups.begin(), ups.end(),
            [](const Change& a, const Change& b) { return a.h > b.h; });

  // Queue the changes (downgrades first, so drained budget frees before
  // upgrades need it); the re-encode IO itself is background maintenance,
  // applied a few objects per request by AdvanceBackground.
  reclass_queue_.clear();  // superseded by the fresh snapshot
  size_t queued = 0;
  for (const auto* batch : {&downs, &ups}) {
    for (const Change& c : *batch) {
      if (queued >= config_.max_reclass_per_refresh) return;
      reclass_queue_.emplace_back(c.id, c.to);
      ++queued;
    }
  }
}

// ---------------------------------------------------------------------------
// Failure plane
// ---------------------------------------------------------------------------

void CacheManager::OnDeviceFailure(DeviceIndex device, SimTime now) {
  // Failure handling is always traced (force): it is rare and is exactly
  // what the recovery timeline exists to explain.
  RequestTrace trace(tracer_, trace_root_, TraceOp::kFailureHandling, now,
                     /*object=*/0, /*force=*/true);
  auto& stripes = plane_.stripes();
  (void)stripes.array().FailDevice(device);
  auto affected = stripes.OnDeviceFailure(device);
  Emit(ev_, now, EventSeverity::kError, "device.failure", "device shot down",
       {{"device", std::to_string(device)},
        {"affected_objects", std::to_string(affected.size())},
        {"healthy_left", std::to_string(stripes.array().healthy_count())}});

  // Uniform protection is RAID-style striping: once the failure count
  // exceeds the parity tolerance, the whole volume is gone — not just the
  // resident data, the array itself is unusable until re-formatted
  // (paper §VI.C). Object-based Reo never enters this state.
  if (plane_.policy().mode() != ProtectionMode::kReo) {
    auto& array = stripes.array();
    size_t failed = array.size() - array.healthy_count();
    size_t tolerance = FailuresSurvived(
        plane_.policy().LevelFor(DataClass::kColdClean), array.size());
    if (failed > tolerance) {
      array_unusable_ = true;
      Emit(ev_, now, EventSeverity::kError, "array.unusable",
           "uniform-protection volume lost beyond parity tolerance",
           {{"failed", std::to_string(failed)},
            {"tolerance", std::to_string(tolerance)}});
      std::vector<ObjectId> resident;
      resident.reserve(entries_.size());
      for (const auto& [id, e] : entries_) {
        if (e.dirty) {
          ++stats_.dirty_lost;
          Inc(tel_.dirty_lost);
        }
        resident.push_back(id);
      }
      for (ObjectId id : resident) EvictObject(id, now, /*lost=*/true);
      recovery_.Clear();
      flush_queue_.clear();
      plane_.set_recovery_active(false);
      return;
    }
  }

  for (const auto& a : affected) {
    auto it = entries_.find(a.id);
    if (it == entries_.end()) continue;
    switch (a.survival) {
      case ObjectSurvival::kIntact:
        break;
      case ObjectSurvival::kLost:
        if (it->second.dirty) {
          ++stats_.dirty_lost;
          Inc(tel_.dirty_lost);
        }
        EvictObject(a.id, now, /*lost=*/true);
        break;
      case ObjectSurvival::kRecoverable:
        // Differentiated recovery is Reo's mechanism (§IV.D). Uniform
        // protection reconstructs only when a spare is inserted, block by
        // block — see OnSpareInserted.
        if (plane_.policy().mode() == ProtectionMode::kReo) {
          recovery_.Enqueue(a.id, it->second.cls, StateOf(a.id, it->second).H(),
                            a.lost_bytes);
        }
        break;
    }
  }
  if (!recovery_.empty()) plane_.set_recovery_active(true);

  // §IV.D: "prioritized recovery minimizes this vulnerable window by
  // reconstructing the most important data first to create additional
  // data redundancy ... as quickly as possible." Class 0/1 (metadata,
  // dirty) are small and their loss is permanent, so they are re-protected
  // synchronously at failure time; classes 2/3 recover at the background
  // pace.
  trace.Cover(RecoverCriticalNow(now));
}

SimTime CacheManager::RecoverCriticalNow(SimTime now) {
  SimTime last = now;
  while (auto next = recovery_.Peek()) {
    auto it = entries_.find(*next);
    if (it == entries_.end()) {
      recovery_.Pop();
      continue;
    }
    if (it->second.cls > DataClass::kDirty) break;  // queue is class-ordered
    auto rb = plane_.stripes().RebuildObject(*next, now);
    if (rb.ok()) {
      double rebuild_us =
          static_cast<double>(rb->complete > now ? rb->complete - now : 0) / 1e3;
      recovery_.RecordRebuild(it->second.cls, /*on_demand=*/true, rebuild_us);
      Emit(ev_, now, EventSeverity::kInfo, "recovery.rebuild",
           "critical-class rebuild at failure time",
           {{"object", next->ToString()},
            {"class", std::to_string(static_cast<int>(it->second.cls))},
            {"mode", "on-demand"},
            {"latency_us", std::to_string(rebuild_us)}});
      last = std::max(last, rb->complete);
      recovery_.Pop();
      ++stats_.rebuilds;
    } else if (rb.code() == ErrorCode::kUnrecoverable) {
      recovery_.Pop();
      if (it->second.dirty) {
        ++stats_.dirty_lost;
        Inc(tel_.dirty_lost);
      }
      EvictObject(*next, now, /*lost=*/true);
    } else {
      break;  // transient (e.g. no space): keep it queued, retry later
    }
  }
  FinishRecoveryIfDrained(now);
  return last;
}

void CacheManager::OnSpareInserted(DeviceIndex device, SimTime now) {
  RequestTrace trace(tracer_, trace_root_, TraceOp::kSpareHandling, now,
                     /*object=*/0, /*force=*/true);
  (void)plane_.stripes().array().ReplaceDevice(device);
  Emit(ev_, now, EventSeverity::kInfo, "spare.inserted",
       "fresh spare swapped into array position",
       {{"device", std::to_string(device)},
        {"healthy", std::to_string(plane_.stripes().array().healthy_count())}});
  if (array_unusable_ &&
      plane_.stripes().array().healthy_count() == plane_.stripes().array().size()) {
    // A fully repaired uniform array comes back empty (re-formatted).
    array_unusable_ = false;
    return;
  }
  if (plane_.policy().mode() != ProtectionMode::kReo) {
    // Traditional block-based reconstruction "simply rebuilds the entire
    // storage from block 0" (§IV.D): every damaged object, in allocation
    // order, with no priority by importance.
    for (ObjectId id : plane_.stripes().DamagedObjects()) {
      recovery_.Enqueue(id, DataClass::kColdClean, 0.0,
                        plane_.stripes().LogicalSizeOf(id).value_or(0));
    }
    if (!recovery_.empty()) plane_.set_recovery_active(true);
    return;
  }
  // Stripes rebuilt at reduced width keep several chunks on one device;
  // with the width restored, fault isolation must be restored too, most
  // important data first (replicated metadata/dirty are the worst case —
  // all their copies may sit on one surviving device).
  for (ObjectId id : plane_.stripes().PoorlyPlacedObjects()) {
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    recovery_.Enqueue(id, it->second.cls, StateOf(id, it->second).H(),
                      it->second.logical_size);
  }
  if (!recovery_.empty()) plane_.set_recovery_active(true);
  trace.Cover(RecoverCriticalNow(now));
}

SimTime CacheManager::RunRecoveryBudget(SimTime now, uint64_t byte_budget) {
  SimTime last = now;
  uint64_t rebuilt = 0;
  while (rebuilt < byte_budget) {
    auto next = recovery_.Peek();
    if (!next) break;
    auto it = entries_.find(*next);
    if (it == entries_.end()) {
      recovery_.Pop();
      continue;
    }
    auto rb = plane_.stripes().RebuildObject(*next, now);
    if (rb.ok()) {
      double rebuild_us =
          static_cast<double>(rb->complete > now ? rb->complete - now : 0) / 1e3;
      recovery_.RecordRebuild(it->second.cls, /*on_demand=*/false, rebuild_us);
      Emit(ev_, now, EventSeverity::kInfo, "recovery.rebuild",
           "paced background rebuild",
           {{"object", next->ToString()},
            {"class", std::to_string(static_cast<int>(it->second.cls))},
            {"mode", "background"},
            {"latency_us", std::to_string(rebuild_us)}});
      last = std::max(last, rb->complete);
      recovery_.Pop();
      ++stats_.rebuilds;
      rebuilt += it->second.logical_size;
    } else if (rb.code() == ErrorCode::kUnrecoverable) {
      recovery_.Pop();
      if (it->second.dirty) {
        ++stats_.dirty_lost;
        Inc(tel_.dirty_lost);
      }
      EvictObject(*next, now, /*lost=*/true);
    } else {
      break;  // e.g. no space to place rebuilt chunks; keep queued
    }
  }
  FinishRecoveryIfDrained(now);
  return last;
}

SimTime CacheManager::DrainRecovery(SimTime now) {
  RequestTrace trace(tracer_, trace_root_, TraceOp::kRecoveryDrain, now,
                     /*object=*/0, /*force=*/true);
  trace.Cover(RunRecoveryBudget(now, UINT64_MAX));
  return now;
}

StripeManager::ScrubReport CacheManager::RunScrub(SimTime now) {
  RequestTrace trace(tracer_, trace_root_, TraceOp::kScrub, now,
                     /*object=*/0, /*force=*/true);
  auto report = plane_.stripes().Scrub(now);
  trace.Cover(report.complete);
  Emit(ev_, now, EventSeverity::kInfo, "scrub.complete",
       "full-array scrub pass",
       {{"scanned", std::to_string(report.chunks_scanned)},
        {"corrupt", std::to_string(report.corrupt_found)},
        {"repaired", std::to_string(report.chunks_repaired)},
        {"lost", std::to_string(report.lost.size())}});
  for (ObjectId id : report.lost) {
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    if (it->second.dirty) {
      ++stats_.dirty_lost;
      Inc(tel_.dirty_lost);
    }
    EvictObject(id, now, /*lost=*/true);
  }
  return report;
}

}  // namespace reo
