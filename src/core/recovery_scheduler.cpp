#include "core/recovery_scheduler.h"

#include <string>

namespace reo {

void RecoveryScheduler::AttachTelemetry(MetricRegistry& registry) {
  tel_enqueues_ = &registry.GetCounter("recovery.enqueues");
  for (int cls = 0; cls < 4; ++cls) {
    std::string base = "recovery.class" + std::to_string(cls);
    tel_rebuilds_[cls][0] = &registry.GetCounter(base + ".background.rebuilds");
    tel_rebuilds_[cls][1] = &registry.GetCounter(base + ".ondemand.rebuilds");
  }
  tel_latency_[0] = &registry.GetHistogram("recovery.latency.background_us");
  tel_latency_[1] = &registry.GetHistogram("recovery.latency.ondemand_us");
  tel_depth_ = &registry.GetGauge("recovery.queue_depth");
  tel_pending_bytes_ = &registry.GetGauge("recovery.pending_bytes");
  PublishQueueGauges();
}

void RecoveryScheduler::RecordRebuild(DataClass cls, bool on_demand,
                                      double latency_us) {
  int c = static_cast<int>(cls);
  if (c < 0 || c > 3) c = 3;
  Inc(tel_rebuilds_[c][on_demand ? 1 : 0]);
  Observe(tel_latency_[on_demand ? 1 : 0], latency_us);
}

void RecoveryScheduler::PublishQueueGauges() {
  Set(tel_depth_, static_cast<double>(queue_.size()));
  Set(tel_pending_bytes_, static_cast<double>(pending_bytes_));
}

void RecoveryScheduler::Enqueue(ObjectId id, DataClass cls, double h,
                                uint64_t bytes) {
  Remove(id);
  Key key{static_cast<uint8_t>(cls), -h, id};
  queue_.insert(key);
  index_.emplace(id, std::make_pair(key, bytes));
  pending_bytes_ += bytes;
  Inc(tel_enqueues_);
  PublishQueueGauges();
}

void RecoveryScheduler::Remove(ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  queue_.erase(it->second.first);
  pending_bytes_ -= it->second.second;
  index_.erase(it);
  PublishQueueGauges();
}

std::optional<ObjectId> RecoveryScheduler::Peek() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.begin()->id;
}

std::optional<ObjectId> RecoveryScheduler::Pop() {
  if (queue_.empty()) return std::nullopt;
  ObjectId id = queue_.begin()->id;
  Remove(id);
  return id;
}

void RecoveryScheduler::Clear() {
  queue_.clear();
  index_.clear();
  pending_bytes_ = 0;
  PublishQueueGauges();
}

}  // namespace reo
