#include "core/recovery_scheduler.h"

namespace reo {

void RecoveryScheduler::Enqueue(ObjectId id, DataClass cls, double h,
                                uint64_t bytes) {
  Remove(id);
  Key key{static_cast<uint8_t>(cls), -h, id};
  queue_.insert(key);
  index_.emplace(id, std::make_pair(key, bytes));
  pending_bytes_ += bytes;
}

void RecoveryScheduler::Remove(ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  queue_.erase(it->second.first);
  pending_bytes_ -= it->second.second;
  index_.erase(it);
}

std::optional<ObjectId> RecoveryScheduler::Peek() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.begin()->id;
}

std::optional<ObjectId> RecoveryScheduler::Pop() {
  if (queue_.empty()) return std::nullopt;
  ObjectId id = queue_.begin()->id;
  Remove(id);
  return id;
}

void RecoveryScheduler::Clear() {
  queue_.clear();
  index_.clear();
  pending_bytes_ = 0;
}

}  // namespace reo
