// Object-granular LRU list — the paper's cache replacement algorithm
// ("we use the standard LRU replacement algorithm ... implemented at the
// object level", §V).
#pragma once

#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"

namespace reo {

/// Intrusive-style LRU over ObjectIds. O(1) touch/insert/remove.
class LruList {
 public:
  /// Inserts at the MRU end; fails if already present.
  Status Insert(ObjectId id);

  /// Moves an existing entry to the MRU end.
  Status Touch(ObjectId id);

  /// Removes an entry.
  Status Remove(ObjectId id);

  bool Contains(ObjectId id) const { return index_.contains(id); }
  size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// The LRU-most entry (eviction candidate), if any.
  std::optional<ObjectId> Lru() const;

  /// Walks from LRU toward MRU, invoking `fn(id)`; stops when `fn` returns
  /// false. Iterates over a snapshot, so `fn` may freely remove entries.
  template <typename Fn>
  void ForEachLruFirst(Fn&& fn) const {
    std::vector<ObjectId> snapshot(order_.rbegin(), order_.rend());
    for (const ObjectId& id : snapshot) {
      if (!index_.contains(id)) continue;  // removed by an earlier fn call
      if (!fn(id)) break;
    }
  }

 private:
  std::list<ObjectId> order_;  // front = MRU, back = LRU
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator, ObjectIdHash> index_;
};

}  // namespace reo
