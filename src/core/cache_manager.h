// The Reo cache manager — the initiator-side component of the paper's
// prototype (§V: "an object-based cache manager ... on the osd-initiator
// side", ~2,000 lines of C).
//
// Responsibilities:
//   * object-granular LRU replacement;
//   * hot/cold classification with the adaptive H_hot threshold (§IV.C.1),
//     delivered to the target through #SETID# control messages (§IV.C.2);
//   * write-back caching with a background flusher (dirty objects are
//     Class 1 until flushed, then reclassified);
//   * failure reaction: evicting lost objects, queueing recoverable ones
//     for differentiated recovery (§IV.D), repair-on-read for on-demand
//     accesses, and paced background reconstruction.
//
// All traffic to the target flows through an OsdInitiator session, exactly
// as the paper's initiator-side cache manager talks to osd-target.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "backend/backend_store.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "fault/failslow.h"
#include "fault/retry.h"
#include "core/classifier.h"
#include "core/data_plane.h"
#include "core/lru.h"
#include "core/recovery_scheduler.h"
#include "osd/osd_initiator.h"
#include "osd/osd_target.h"
#include "telemetry/metric_registry.h"
#include "trace/tracer.h"

namespace reo {

/// How client writes reach the backend (cf. the write-policy design space
/// the paper cites [18]; Reo's evaluation uses write-back).
enum class WritePolicy : uint8_t {
  kWriteBack,     ///< absorb in cache as Class 1, flush asynchronously
  kWriteThrough,  ///< persist to the backend first, cache a clean copy
};

struct CacheManagerConfig {
  WritePolicy write_policy = WritePolicy::kWriteBack;
  /// Requests between adaptive H_hot refreshes (§IV.C.1 "updated
  /// periodically"). 0 disables refresh.
  uint64_t hhot_refresh_interval = 2000;
  /// Re-encodes queued per refresh (bounds reclassification churn; the
  /// first refresh after warm-up legitimately re-encodes the whole hot set).
  size_t max_reclass_per_refresh = 1024;
  /// Queued reclassifications applied per client request: spreads the
  /// re-encode IO instead of stalling the device queues in one burst at
  /// refresh time (maintenance IO is background work).
  size_t reclass_per_request = 2;
  /// Multiplier on the hot-set budget during threshold selection. The walk
  /// sizes the hot set against a point-in-time snapshot, but LRU churn
  /// keeps part of that set out of cache; a headroom > 1 keeps the reserve
  /// committed, while the hard reserve cap (sense 0x67) still bounds
  /// actual redundancy usage.
  double hot_admission_headroom = 2.0;
  /// Background reconstruction pacing: logical bytes rebuilt per client
  /// request while the recovery queue is non-empty.
  uint64_t recovery_bytes_per_request = 16ULL << 20;
  /// Latency of one fsync'd control-object write (§IV.C.2: "a few dozen
  /// bytes ... completed very quickly").
  SimTime control_write_ns = 150 * kNsPerUs;
  /// Write-back delay: a dirty object becomes eligible for background
  /// flushing this long after its write (absorbs overwrites; during this
  /// window the object is Class 1 and replicated). Forced flushes during
  /// eviction ignore the delay.
  SimTime flush_delay_ns = 5 * kNsPerSec;
  /// CRC-verify hit payloads against the expected generated content.
  bool verify_hits = true;
  /// Admit new (clean) objects while the array is degraded (a failed
  /// device with no spare). On by default: the surviving devices still
  /// form a working object store, so the cache re-warms (an unusable
  /// uniform RAID volume is handled separately — see array_unusable()).
  /// Set false to freeze the cache contents during failures, which makes
  /// post-failure hit ratios reflect exactly the data each policy
  /// protected (used by the failure benches' probe analysis). Writes
  /// (dirty data) are always absorbed — write-back safety never pauses.
  bool admit_while_degraded = true;
  /// Bounded retry (with jittered backoff) for transient backend fetch
  /// errors. Fetches are idempotent reads, so retrying is always safe.
  RetryPolicy backend_retry;
  /// When a FailSlowDetector flags a device, proactively demote it: treat
  /// it as failed, swap in a spare at the same index, and run the normal
  /// differentiated recovery. Off by default (detection/events only).
  bool failslow_demote = false;
};

/// Outcome of one client request against the cache.
struct RequestResult {
  bool hit = false;
  bool is_write = false;
  bool degraded = false;       ///< served via parity reconstruction
  SimTime latency = 0;
  uint64_t bytes = 0;          ///< logical bytes served
  SenseCode sense = SenseCode::kOk;
};

/// Cumulative cache-manager counters.
struct CacheStats {
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t writes = 0;
  uint64_t evictions = 0;
  uint64_t lost_evictions = 0;   ///< evicted because a failure destroyed them
  uint64_t dirty_lost = 0;       ///< permanent data loss events
  uint64_t degraded_reads = 0;
  uint64_t rebuilds = 0;         ///< objects reconstructed (bg + on-demand)
  uint64_t flushes = 0;
  uint64_t reclassifications = 0;
  uint64_t verify_failures = 0;
  uint64_t uncacheable = 0;      ///< served but not admitted

  double HitRatio() const {
    return gets ? static_cast<double>(hits) / static_cast<double>(gets) : 0.0;
  }
};

class CacheManager {
 public:
  /// All references must outlive the manager.
  CacheManager(OsdTarget& target, ReoDataPlane& plane, BackendStore& backend,
               CacheManagerConfig config);

  /// Formats the OSD and installs the Table I metadata objects (Class 0,
  /// replicated). Call once before serving.
  void Initialize(SimTime now);

  /// Client read of a whole object. Serves from cache (possibly degraded)
  /// or fetches from the backend and admits.
  RequestResult Get(ObjectId id, uint64_t logical_size, SimTime now);

  /// Client whole-object update: write-back — the new version is stored in
  /// cache as dirty (Class 1) and flushed to the backend asynchronously.
  RequestResult Put(ObjectId id, uint64_t logical_size, SimTime now);

  /// Progress background work (flusher, paced reconstruction). Called
  /// automatically after each request; exposed for tests and idle periods.
  void AdvanceBackground(SimTime now);

  // --- Failure plane ---------------------------------------------------------

  /// Device shootdown (paper §VI.C): marks data lost, evicts unrecoverable
  /// objects, queues recoverable ones for differentiated recovery.
  void OnDeviceFailure(DeviceIndex device, SimTime now);

  /// Spare insertion: swaps in an empty device; reconstruction will start
  /// placing rebuilt chunks on it.
  void OnSpareInserted(DeviceIndex device, SimTime now);

  /// Drains the whole recovery queue immediately (end-of-run barrier or
  /// explicit "rebuild now" tooling). Returns completion time.
  SimTime DrainRecovery(SimTime now);

  /// Runs a full scrub pass over the flash array: latent corruption is
  /// repaired from redundancy where possible; objects damaged beyond
  /// their protection are evicted (dirty ones count as permanent loss).
  StripeManager::ScrubReport RunScrub(SimTime now);

  // --- Introspection ---------------------------------------------------------

  const CacheStats& stats() const { return stats_; }
  /// True when a uniform-protection array has lost more devices than its
  /// parity tolerates: RAID-style striping makes the whole volume unusable
  /// (§VI.C: "a cache with uniform data protection ... becomes completely
  /// unusable, with a hit ratio of 0%"). Reo never bricks — object-based
  /// management keeps the surviving objects addressable.
  bool array_unusable() const { return array_unusable_; }
  size_t resident_objects() const { return entries_.size(); }
  uint64_t resident_bytes() const { return resident_bytes_; }
  double h_hot() const { return classifier_.h_hot(); }
  const AdaptiveHotClassifier& classifier() const { return classifier_; }
  bool recovery_active() const { return plane_.recovery_active(); }
  size_t recovery_backlog() const { return recovery_.size(); }
  ReoDataPlane& plane() { return plane_; }
  const OsdInitiator& initiator() const { return initiator_; }
  /// Mutable access for session plumbing (e.g. attaching a wire transport).
  OsdInitiator& initiator_mutable() { return initiator_; }

  /// Sends a #QUERY# control message for an object and returns the sense
  /// code (exercises the paper's query path; used by examples/tests).
  SenseCode QueryObject(ObjectId id, bool is_write, uint64_t size, SimTime now);

  /// Registers cache metrics ("cache.*": per-class hit/miss/eviction
  /// counts, hit/miss/degraded/write latency histograms, residency gauges)
  /// plus the recovery scheduler's ("recovery.*"), and begins hot-path
  /// updates.
  void AttachTelemetry(MetricRegistry& registry);

  /// Resolves tracing sinks: the manager opens the root span of every
  /// client request (Get/Put) and of every failure-plane entry point, and
  /// emits the structured events (device failures, rebuilds, eviction
  /// storms, reclassification refreshes). Fans out to the data plane and
  /// backend it owns references to; the simulator attaches the target and
  /// transport separately.
  void AttachTracing(Tracer& tracer);

  /// Streams classification knowledge into the durable journal — per-object
  /// hotness at #SETID# time and the adaptive H_hot after each refresh — so
  /// a restart restores hot-before-cold inside the clean classes and
  /// resumes with a warm threshold. Null (the default) is a no-op.
  void AttachPersistence(PersistenceManager* persist) { persist_ = persist; }

  /// Polls the detector during background advancement; with
  /// `failslow_demote` set, flagged devices are demoted (failed + spare
  /// swapped in) so a limping device cannot drag down the whole array.
  /// The detector must outlive the manager.
  void AttachFaultDetector(FailSlowDetector* detector) { failslow_ = detector; }

  /// Installs the classification hook on the DRAM admission tier: an
  /// object graduating to flash is classified from its *observed* access
  /// history (initiator-side frequency plus reuse seen while
  /// DRAM-resident) against the live H_hot, so class 2/3 placement starts
  /// from evidence instead of the cold-start guess it was staged with.
  /// The tier must outlive the manager.
  void AttachAdmission(AdmissionTier& tier);

 private:
  struct Entry {
    uint64_t logical_size = 0;
    uint64_t freq = 0;
    uint64_t version = 0;   ///< content version (flushed to backend on flush)
    bool dirty = false;
    bool metadata = false;
    DataClass cls = DataClass::kColdClean;
  };

  ObjectState StateOf(ObjectId id, const Entry& e) const;

  /// Sends a #SETID# control write and applies the class locally.
  SenseCode SendClassification(ObjectId id, DataClass cls, SimTime now);

  /// Backend fetch with bounded retry on transient (kIoError) failures.
  Result<BackendFetch> FetchWithRetry(ObjectId id, SimTime now);

  /// Drains the fail-slow detector; demotes flagged devices when enabled.
  void PollFailSlow(SimTime now);

  /// Admits a fetched/written object. Returns false if it cannot fit even
  /// after evicting everything evictable.
  bool Admit(ObjectId id, uint64_t logical_size,
             std::span<const uint8_t> payload, uint64_t version, bool dirty,
             SimTime now, SimTime& io_complete);

  /// Evicts the best victim (LRU-first, clean preferred; dirty objects are
  /// flushed first). Returns false if nothing can be evicted.
  bool EvictOne(SimTime now);

  void EvictObject(ObjectId id, SimTime now, bool lost);

  /// Synchronously flushes one dirty object and reclassifies it clean.
  void FlushObject(ObjectId id, Entry& e, SimTime now);

  void RefreshClassification(SimTime now);
  /// Synchronously rebuilds queued Class 0/1 (metadata, dirty) objects.
  /// Returns the completion time of the last rebuild (`now` if none ran).
  SimTime RecoverCriticalNow(SimTime now);
  void MaybeRefresh(SimTime now);
  /// Returns the completion time of the last rebuild (`now` if none ran).
  SimTime RunRecoveryBudget(SimTime now, uint64_t byte_budget);

  OsdInitiator initiator_;
  ReoDataPlane& plane_;
  BackendStore& backend_;
  PersistenceManager* persist_ = nullptr;
  FailSlowDetector* failslow_ = nullptr;
  CacheManagerConfig config_;
  Pcg32 backend_retry_rng_{0x5eed, 0xbac0};

  std::unordered_map<ObjectId, Entry, ObjectIdHash> entries_;
  LruList lru_;
  uint64_t resident_bytes_ = 0;

  AdaptiveHotClassifier classifier_;
  RecoveryScheduler recovery_;
  struct PendingFlush {
    ObjectId id;
    uint64_t version;
    SimTime ready_time;  ///< earliest background-flush time
  };
  std::deque<PendingFlush> flush_queue_;
  /// Pending class changes from the last refresh, drained incrementally.
  std::deque<std::pair<ObjectId, DataClass>> reclass_queue_;
  SimTime flusher_busy_until_ = 0;

  /// Telemetry pointers (null when un-attached); resolved once at
  /// AttachTelemetry so the per-request cost is plain increments.
  struct Telemetry {
    Counter* class_hits[4] = {};
    Counter* class_misses[4] = {};
    Counter* class_evictions[4] = {};
    Counter* writes = nullptr;
    Counter* degraded_reads = nullptr;
    Counter* flushes = nullptr;
    Counter* reclassifications = nullptr;
    Counter* lost_evictions = nullptr;
    Counter* dirty_lost = nullptr;
    Counter* uncacheable = nullptr;
    Counter* verify_failures = nullptr;
    Counter* backend_retry_attempts = nullptr;
    Counter* backend_retry_exhausted = nullptr;
    Counter* failslow_demotions = nullptr;
    ShardedHistogram* hit_latency_us = nullptr;
    ShardedHistogram* miss_latency_us = nullptr;
    ShardedHistogram* degraded_latency_us = nullptr;
    ShardedHistogram* write_latency_us = nullptr;
    Gauge* resident_bytes = nullptr;
    Gauge* resident_objects = nullptr;
    Gauge* h_hot = nullptr;
  };

  void PublishResidency();

  /// Emits "recovery.complete" once when the queue drains after failure
  /// work (and clears the plane's recovery-active flag).
  void FinishRecoveryIfDrained(SimTime now);

  Telemetry tel_;

  // Tracing sinks (null when un-attached; each use costs one branch).
  Tracer* tracer_ = nullptr;
  SpanRecorder* trace_root_ = nullptr;
  EventLog* ev_ = nullptr;
  CacheStats stats_;
  uint64_t request_counter_ = 0;
  uint64_t next_version_ = 1;
  bool array_unusable_ = false;
  /// Set when a hot upgrade bounced off the reserve (0x67); suppresses
  /// hit-time upgrade attempts until the next refresh frees budget.
  bool reserve_full_hint_ = false;
};

}  // namespace reo
