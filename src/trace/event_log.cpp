#include "trace/event_log.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "telemetry/json_util.h"

namespace reo {
namespace {

void AppendTimestamp(std::string& out, SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "[%12.3f ms] ", ToMs(t));
  out += buf;
}

void AppendLine(std::string& out, const LoggedEvent& e) {
  AppendTimestamp(out, e.time);
  char head[80];
  std::snprintf(head, sizeof(head), "%-5s %-22s ",
                std::string(to_string(e.severity)).c_str(), e.category.c_str());
  out += head;
  out += e.message;
  for (const auto& [k, v] : e.fields) {
    out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  out += '\n';
}

}  // namespace

std::string_view LoggedEvent::Field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

void EventLog::Emit(
    SimTime time, EventSeverity severity, std::string_view category,
    std::string_view message,
    std::initializer_list<std::pair<std::string_view, std::string>> fields) {
  // Claim a ticket first: the bound is enforced globally, not per shard,
  // so single-threaded behavior matches the old flat log exactly (first
  // `capacity_` events kept, later ones counted as dropped).
  uint64_t seq = stored_.fetch_add(1, std::memory_order_relaxed);
  if (seq >= capacity_) {
    stored_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  LoggedEvent e;
  e.time = time;
  e.severity = severity;
  e.category = std::string(category);
  e.message = std::string(message);
  e.fields.reserve(fields.size());
  for (const auto& [k, v] : fields) {
    e.fields.emplace_back(std::string(k), v);
  }
  Shard& shard = shards_[CurrentMetricDomain()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.events.emplace_back(seq, std::move(e));
}

std::vector<LoggedEvent> EventLog::Merged() const {
  std::vector<std::pair<uint64_t, const LoggedEvent*>> order;
  // Hold every shard lock across the copy so the merge is one consistent
  // cut (events are rare; these locks are all but uncontended).
  std::array<std::unique_lock<std::mutex>, kMetricDomains> locks;
  for (size_t d = 0; d < kMetricDomains; ++d) {
    locks[d] = std::unique_lock<std::mutex>(shards_[d].mu);
  }
  size_t total = 0;
  for (const Shard& s : shards_) total += s.events.size();
  order.reserve(total);
  for (const Shard& s : shards_) {
    for (const auto& [seq, e] : s.events) order.emplace_back(seq, &e);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<LoggedEvent> out;
  out.reserve(order.size());
  for (const auto& [seq, e] : order) out.push_back(*e);
  return out;
}

const std::vector<LoggedEvent>& EventLog::events() const {
  std::lock_guard<std::mutex> lock(merged_mu_);
  merged_ = Merged();
  return merged_;
}

void EventLog::Clear() {
  std::array<std::unique_lock<std::mutex>, kMetricDomains> locks;
  for (size_t d = 0; d < kMetricDomains; ++d) {
    locks[d] = std::unique_lock<std::mutex>(shards_[d].mu);
  }
  for (size_t d = 0; d < kMetricDomains; ++d) {
    shards_[d].events.clear();
  }
  stored_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::string EventLog::ToText() const {
  std::vector<LoggedEvent> all = Merged();
  std::string out;
  for (const auto& e : all) AppendLine(out, e);
  if (uint64_t d = dropped(); d > 0) {
    out += "... " + std::to_string(d) + " later events dropped (log full)\n";
  }
  return out;
}

std::string EventLog::ToJson(size_t max_events) const {
  std::vector<LoggedEvent> all = Merged();
  size_t n = all.size();
  if (max_events && max_events < n) n = max_events;
  size_t first = all.size() - n;

  std::string out = "{\"schema\":\"reo.events.v1\",\"dropped\":";
  out += JsonNum(static_cast<double>(dropped()));
  out += ",\"events\":[";
  for (size_t i = first; i < all.size(); ++i) {
    const LoggedEvent& e = all[i];
    if (i != first) out.push_back(',');
    out += "{\"t_ms\":" + JsonNum(ToMs(e.time));
    out += ",\"severity\":";
    AppendJsonString(out, to_string(e.severity));
    out += ",\"category\":";
    AppendJsonString(out, e.category);
    out += ",\"message\":";
    AppendJsonString(out, e.message);
    out += ",\"fields\":{";
    for (size_t f = 0; f < e.fields.size(); ++f) {
      if (f) out.push_back(',');
      AppendJsonString(out, e.fields[f].first);
      out.push_back(':');
      AppendJsonString(out, e.fields[f].second);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string EventLog::RecoveryTimeline() const {
  std::vector<LoggedEvent> all = Merged();
  std::string out = "== Recovery timeline ==\n";
  // Per-class on-demand/background rebuild roll-up, filled as we walk.
  struct ClassTally {
    uint64_t on_demand = 0;
    uint64_t background = 0;
  };
  std::map<int, ClassTally> tally;
  size_t shown = 0;

  auto relevant = [](const LoggedEvent& e) {
    return e.category.starts_with("device.") ||
           e.category.starts_with("spare.") ||
           e.category.starts_with("recovery.") ||
           e.category.starts_with("array.") ||
           e.category.starts_with("sim.fail") ||
           e.category.starts_with("sim.spare");
  };

  for (const auto& e : all) {
    if (!relevant(e)) continue;
    if (e.category == "recovery.rebuild") {
      int cls = 0;
      if (auto f = e.Field("class"); !f.empty()) cls = f[0] - '0';
      bool on_demand = e.Field("mode") == "on-demand";
      (on_demand ? tally[cls].on_demand : tally[cls].background)++;
      continue;  // individual rebuilds roll up; milestones print below
    }
    AppendLine(out, e);
    ++shown;
  }
  if (!tally.empty()) {
    out += "-- rebuilds by class (differentiated recovery order 0->3) --\n";
    for (const auto& [cls, t] : tally) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "  class %d: %llu on-demand, %llu background\n", cls,
                    static_cast<unsigned long long>(t.on_demand),
                    static_cast<unsigned long long>(t.background));
      out += buf;
    }
  }
  if (shown == 0 && tally.empty()) out += "(no recovery activity)\n";
  return out;
}

}  // namespace reo
