#include "trace/event_log.h"

#include <cstdio>
#include <map>

#include "telemetry/json_util.h"

namespace reo {
namespace {

void AppendTimestamp(std::string& out, SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "[%12.3f ms] ", ToMs(t));
  out += buf;
}

void AppendLine(std::string& out, const LoggedEvent& e) {
  AppendTimestamp(out, e.time);
  char head[80];
  std::snprintf(head, sizeof(head), "%-5s %-22s ",
                std::string(to_string(e.severity)).c_str(), e.category.c_str());
  out += head;
  out += e.message;
  for (const auto& [k, v] : e.fields) {
    out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  out += '\n';
}

}  // namespace

std::string_view LoggedEvent::Field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

void EventLog::Emit(
    SimTime time, EventSeverity severity, std::string_view category,
    std::string_view message,
    std::initializer_list<std::pair<std::string_view, std::string>> fields) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  LoggedEvent e;
  e.time = time;
  e.severity = severity;
  e.category = std::string(category);
  e.message = std::string(message);
  e.fields.reserve(fields.size());
  for (const auto& [k, v] : fields) {
    e.fields.emplace_back(std::string(k), v);
  }
  events_.push_back(std::move(e));
}

std::string EventLog::ToText() const {
  std::string out;
  for (const auto& e : events_) AppendLine(out, e);
  if (dropped_ > 0) {
    out += "... " + std::to_string(dropped_) + " later events dropped (log full)\n";
  }
  return out;
}

std::string EventLog::ToJson(size_t max_events) const {
  size_t n = events_.size();
  if (max_events && max_events < n) n = max_events;
  size_t first = events_.size() - n;

  std::string out = "{\"schema\":\"reo.events.v1\",\"dropped\":";
  out += JsonNum(static_cast<double>(dropped_));
  out += ",\"events\":[";
  for (size_t i = first; i < events_.size(); ++i) {
    const LoggedEvent& e = events_[i];
    if (i != first) out.push_back(',');
    out += "{\"t_ms\":" + JsonNum(ToMs(e.time));
    out += ",\"severity\":";
    AppendJsonString(out, to_string(e.severity));
    out += ",\"category\":";
    AppendJsonString(out, e.category);
    out += ",\"message\":";
    AppendJsonString(out, e.message);
    out += ",\"fields\":{";
    for (size_t f = 0; f < e.fields.size(); ++f) {
      if (f) out.push_back(',');
      AppendJsonString(out, e.fields[f].first);
      out.push_back(':');
      AppendJsonString(out, e.fields[f].second);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string EventLog::RecoveryTimeline() const {
  std::string out = "== Recovery timeline ==\n";
  // Per-class on-demand/background rebuild roll-up, filled as we walk.
  struct ClassTally {
    uint64_t on_demand = 0;
    uint64_t background = 0;
  };
  std::map<int, ClassTally> tally;
  size_t shown = 0;

  auto relevant = [](const LoggedEvent& e) {
    return e.category.starts_with("device.") ||
           e.category.starts_with("spare.") ||
           e.category.starts_with("recovery.") ||
           e.category.starts_with("array.") ||
           e.category.starts_with("sim.fail") ||
           e.category.starts_with("sim.spare");
  };

  for (const auto& e : events_) {
    if (!relevant(e)) continue;
    if (e.category == "recovery.rebuild") {
      int cls = 0;
      if (auto f = e.Field("class"); !f.empty()) cls = f[0] - '0';
      bool on_demand = e.Field("mode") == "on-demand";
      (on_demand ? tally[cls].on_demand : tally[cls].background)++;
      continue;  // individual rebuilds roll up; milestones print below
    }
    AppendLine(out, e);
    ++shown;
  }
  if (!tally.empty()) {
    out += "-- rebuilds by class (differentiated recovery order 0->3) --\n";
    for (const auto& [cls, t] : tally) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "  class %d: %llu on-demand, %llu background\n", cls,
                    static_cast<unsigned long long>(t.on_demand),
                    static_cast<unsigned long long>(t.background));
      out += buf;
    }
  }
  if (shown == 0 && tally.empty()) out += "(no recovery activity)\n";
  return out;
}

}  // namespace reo
