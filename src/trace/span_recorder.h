// Lock-cheap span recording: one fixed-capacity ring of POD records per
// component, plus the RAII TraceSpan guard the hot paths use.
//
// Cost model (mirrors telemetry/metric_registry.h):
//   * un-attached component: its SpanRecorder* is null — opening a span is
//     a single branch, nothing else;
//   * attached but the current request is unsampled: one extra load
//     (Tracer::active() returns null);
//   * sampled: fill a 40-byte record, bump two ints. No allocation, no
//     map lookup, no lock; the ring overwrites its oldest record when full
//     and counts the drop.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_clock.h"
#include "trace/trace_context.h"

namespace reo {

class Tracer;

/// One completed span. Fixed-size plain data; rings hold these by value.
struct SpanRecord {
  TraceId trace_id = 0;
  SimTime start = 0;
  SimTime end = 0;
  uint64_t object = 0;   ///< oid (0 = not object-scoped)
  uint64_t detail = 0;   ///< op-specific: bytes moved, chunks read, ...
  SpanId span_id = kNoSpan;
  SpanId parent_id = kNoSpan;
  TraceComponent component = TraceComponent::kSim;
  uint8_t instance = 0;  ///< device index for kFlashDevice, else 0
  TraceOp op = TraceOp::kGet;
  uint8_t flags = 0;
};
static_assert(sizeof(SpanRecord) <= 56, "span records must stay ring-friendly");

/// Ring buffer of spans for one component (one exporter track). Owned by
/// the Tracer; components cache a raw pointer at AttachTracing time.
class SpanRecorder {
 public:
  SpanRecorder(Tracer& tracer, TraceComponent component, uint8_t instance,
               size_t capacity);

  TraceComponent component() const { return component_; }
  uint8_t instance() const { return instance_; }

  /// Records a leaf span (a span that can have no children, e.g. one
  /// device IO) under the active context. No-op when no trace is active.
  void Record(TraceOp op, SimTime start, SimTime end, uint64_t object = 0,
              uint8_t flags = 0, uint64_t detail = 0);

  /// Spans recorded over the recorder's lifetime (including overwritten).
  uint64_t total() const { return total_; }
  /// Spans lost to ring overflow.
  uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  size_t size() const { return total_ < ring_.size() ? total_ : ring_.size(); }

  /// Visits retained records oldest-first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    size_t n = size();
    size_t first = total_ > ring_.size() ? head_ : 0;
    for (size_t i = 0; i < n; ++i) {
      fn(ring_[(first + i) % ring_.size()]);
    }
  }

  Tracer& tracer() { return tracer_; }

 private:
  friend class TraceSpan;

  /// Commits one record: ring write plus the tracer's per-stage latency
  /// observation (out-of-line in tracer.cpp — it needs the full Tracer).
  void Push(const SpanRecord& r);

  Tracer& tracer_;
  std::vector<SpanRecord> ring_;
  size_t head_ = 0;      ///< next write position
  uint64_t total_ = 0;
  TraceComponent component_;
  uint8_t instance_;
};

/// RAII guard for a span that encloses nested work. Opening pushes the
/// span onto the context's parent chain (children allocated while it is
/// open attach to it); Finish/destruction restores the chain and commits
/// the record. Inert when the recorder is null or no trace is active.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(SpanRecorder* rec, TraceOp op, SimTime start, uint64_t object = 0) {
    Begin(rec, op, start, object);
  }
  ~TraceSpan() { Finish(); }

  /// Opens the span (constructor body, callable on a default-constructed
  /// guard once the active context exists). No-op if already open.
  void Begin(SpanRecorder* rec, TraceOp op, SimTime start, uint64_t object = 0);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is live (recorder attached and request sampled).
  bool active() const { return ctx_ != nullptr; }

  /// Completion time; defaults to the start time if never set.
  void set_end(SimTime t) {
    if (ctx_) record_.end = t;
  }
  /// Extends the span to cover `t` (keeps the later of the two ends).
  void Cover(SimTime t) {
    if (ctx_ && t > record_.end) record_.end = t;
  }
  void set_op(TraceOp op) {
    if (ctx_) record_.op = op;
  }
  void set_flags(uint8_t flags) {
    if (ctx_) record_.flags |= flags;
  }
  void set_detail(uint64_t detail) {
    if (ctx_) record_.detail = detail;
  }
  void set_object(uint64_t object) {
    if (ctx_) record_.object = object;
  }

  /// Commits the record and closes the nesting scope. Idempotent; the
  /// destructor calls it for you.
  void Finish();

 private:
  SpanRecorder* rec_ = nullptr;
  TraceContext* ctx_ = nullptr;
  SpanId saved_parent_ = kNoSpan;
  SpanRecord record_;
};

}  // namespace reo
