#include "trace/json_lint.h"

#include <cctype>

namespace reo {
namespace {

class Lint {
 public:
  explicit Lint(std::string_view text) : text_(text) {}

  JsonLintResult Run() {
    SkipWs();
    if (!Value()) return Fail();
    SkipWs();
    if (pos_ != text_.size()) {
      error_ = "trailing garbage after top-level value";
      return Fail();
    }
    result_.ok = true;
    return result_;
  }

 private:
  JsonLintResult Fail() {
    result_.ok = false;
    result_.error = error_.empty() ? "malformed JSON" : error_;
    result_.error_offset = pos_;
    return result_;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eof() { return pos_ >= text_.size(); }
  char Peek() { return text_[pos_]; }

  bool Expect(char c) {
    if (Eof() || text_[pos_] != c) {
      error_ = std::string("expected '") + c + "'";
      return false;
    }
    ++pos_;
    return true;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      error_ = "bad literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool Value() {
    if (Eof()) {
      error_ = "unexpected end of input";
      return false;
    }
    switch (Peek()) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String(nullptr);
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool String(std::string* out) {
    if (!Expect('"')) return false;
    while (true) {
      if (Eof()) {
        error_ = "unterminated string";
        return false;
      }
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        error_ = "raw control character in string";
        return false;
      }
      if (c == '\\') {
        if (Eof()) {
          error_ = "unterminated escape";
          return false;
        }
        char e = text_[pos_++];
        switch (e) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            if (out) out->push_back(e);
            break;
          case 'u':
            for (int i = 0; i < 4; ++i) {
              if (Eof() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
                error_ = "bad \\u escape";
                return false;
              }
              ++pos_;
            }
            break;
          default:
            --pos_;
            error_ = "bad escape character";
            return false;
        }
      } else if (out) {
        out->push_back(c);
      }
    }
  }

  bool Number() {
    size_t begin = pos_;
    if (!Eof() && Peek() == '-') ++pos_;
    while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (!Eof() && Peek() == '.') {
      ++pos_;
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (pos_ == begin ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]))) {
      pos_ = begin;
      error_ = "invalid number";
      return false;
    }
    return true;
  }

  bool Object() {
    if (!Expect('{')) return false;
    ++result_.objects;
    SkipWs();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!String(&key)) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (key == "ph" && !Eof() && Peek() == '"') {
        std::string ph;
        if (!String(&ph)) return false;
        if (ph == "X") ++result_.complete_events;
        else if (ph == "M") ++result_.metadata_events;
        else if (ph == "i") ++result_.instant_events;
      } else if (!Value()) {
        return false;
      }
      SkipWs();
      if (!Eof() && Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  bool Array() {
    if (!Expect('[')) return false;
    ++result_.arrays;
    SkipWs();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (!Eof() && Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
  JsonLintResult result_;
};

}  // namespace

JsonLintResult LintJson(std::string_view text) { return Lint(text).Run(); }

}  // namespace reo
