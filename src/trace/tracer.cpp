#include "trace/tracer.h"

namespace reo {

SpanRecorder::SpanRecorder(Tracer& tracer, TraceComponent component,
                           uint8_t instance, size_t capacity)
    : tracer_(tracer),
      ring_(capacity > 0 ? capacity : 1),
      component_(component),
      instance_(instance) {}

void SpanRecorder::Push(const SpanRecord& r) {
  ring_[head_] = r;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
  tracer_.ObserveSpan(r);
}

void SpanRecorder::Record(TraceOp op, SimTime start, SimTime end,
                          uint64_t object, uint8_t flags, uint64_t detail) {
  TraceContext* ctx = tracer_.active();
  if (!ctx) return;
  SpanRecord r;
  r.trace_id = ctx->trace_id;
  r.span_id = ctx->next_span++;
  r.parent_id = ctx->current_parent;
  r.component = component_;
  r.instance = instance_;
  r.op = op;
  r.flags = flags;
  r.start = start;
  r.end = end >= start ? end : start;
  r.object = object;
  r.detail = detail;
  Push(r);
}

void TraceSpan::Begin(SpanRecorder* rec, TraceOp op, SimTime start,
                      uint64_t object) {
  if (!rec || ctx_) return;  // the one-branch un-attached fast path
  TraceContext* ctx = rec->tracer_.active();
  if (!ctx) return;  // attached, but this request is unsampled
  rec_ = rec;
  ctx_ = ctx;
  record_.trace_id = ctx->trace_id;
  record_.span_id = ctx->next_span++;
  record_.parent_id = ctx->current_parent;
  record_.component = rec->component_;
  record_.instance = rec->instance_;
  record_.op = op;
  record_.start = start;
  record_.end = start;
  record_.object = object;
  saved_parent_ = ctx->current_parent;
  ctx->current_parent = record_.span_id;
}

void TraceSpan::Finish() {
  if (!ctx_) return;
  ctx_->current_parent = saved_parent_;
  rec_->Push(record_);
  ctx_ = nullptr;
  rec_ = nullptr;
}

Tracer::Tracer(TracerConfig config) : config_(config), events_(config.max_events) {
  if (config_.sample_every == 0) config_.sample_every = 1;
}

SpanRecorder& Tracer::RecorderFor(TraceComponent component, uint8_t instance) {
  for (auto& rec : recorders_) {
    if (rec->component() == component && rec->instance() == instance) {
      return *rec;
    }
  }
  recorders_.push_back(std::make_unique<SpanRecorder>(
      *this, component, instance, config_.spans_per_component));
  return *recorders_.back();
}

TraceContext* Tracer::Begin(bool force) {
  if (active_ != nullptr) return nullptr;  // join the enclosing trace
  ++roots_seen_;
  if (!force && (roots_seen_ - 1) % config_.sample_every != 0) return nullptr;
  ++traces_sampled_;
  context_ = TraceContext{};
  context_.trace_id = next_trace_id_++;
  active_ = &context_;
  return active_;
}

void Tracer::End() { active_ = nullptr; }

void Tracer::AttachStageMetrics(MetricRegistry& registry) {
  for (uint8_t c = 0; c < kTraceComponentCount; ++c) {
    stage_us_[c] = &registry.GetHistogram(
        "stage." + std::string(to_string(static_cast<TraceComponent>(c))) +
        ".span_us");
  }
}

void Tracer::ObserveSpan(const SpanRecord& r) {
  ShardedHistogram* h = stage_us_[static_cast<uint8_t>(r.component)];
  if (!h) return;
  h->Add(r.end > r.start ? static_cast<double>(r.end - r.start) / 1e3 : 0.0);
}

TraceStats Tracer::Stats() const {
  TraceStats s;
  s.requests_seen = roots_seen_;
  s.traces_sampled = traces_sampled_;
  for (const auto& rec : recorders_) {
    s.spans_recorded += rec->total();
    s.spans_dropped += rec->dropped();
  }
  s.events_logged = events_.size() + events_.dropped();
  s.events_dropped = events_.dropped();
  return s;
}

RequestTrace::RequestTrace(Tracer* tracer, SpanRecorder* root, TraceOp op,
                           SimTime start, uint64_t object, bool force) {
  if (!tracer) return;  // tracing not attached: a single branch
  ctx_ = tracer->Begin(force);
  if (!ctx_) return;
  tracer_ = tracer;
  ctx_->object = object;
  span_.Begin(root, op, start, object);
}

void RequestTrace::Finish() {
  if (!ctx_) return;
  span_.Finish();
  tracer_->End();
  ctx_ = nullptr;
  tracer_ = nullptr;
}

}  // namespace reo
