// Exporters: Chrome trace-event JSON (loads in Perfetto / chrome://tracing)
// and the human-readable recovery-timeline text report.
#pragma once

#include <string>

#include "trace/tracer.h"

namespace reo {

/// Renders every retained span and event as Chrome trace-event JSON:
/// one track (tid) per component (devices fan out per instance), complete
/// ("X") events for spans with trace/span/parent/object args, instant
/// ("i") events for the EventLog. Timestamps are virtual microseconds.
std::string ChromeTraceJson(const Tracer& tracer);

/// The EventLog's recovery timeline plus a span-accounting footer.
std::string TraceReportText(const Tracer& tracer);

}  // namespace reo
