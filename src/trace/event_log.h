// Structured log of discrete system occurrences: device failures, spare
// insertions, class reclassification refreshes, on-demand vs background
// rebuilds, eviction storms. Complements spans (which time *continuous*
// work) with the sparse milestones the paper's recovery analysis (§VI.C,
// Fig. 8) reads minute-by-minute.
//
// Events are rare by construction, so they carry real strings; the hot
// path never emits one. The log is bounded: once `capacity` events are
// held, later ones are counted but not stored (the earliest events are
// the ones a post-mortem timeline needs).
//
// Threading (the MetricRegistry treatment): writers append to per-domain
// buffers striped across cache-line-padded shards keyed by
// CurrentMetricDomain(), so concurrent emitters on different threads touch
// different mutexes; a global atomic ticket enforces the capacity bound
// and gives every event a total emission order. Readers aggregate the
// shards on demand — ToText/ToJson/RecoveryTimeline/size/dropped are safe
// against concurrent Emit. events() (the reference-returning accessor)
// merges into an internal buffer and, like MetricRegistry's resolve-once
// pointers, expects no concurrent *reader* of the same log.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sim_clock.h"
#include "telemetry/metric_registry.h"

namespace reo {

enum class EventSeverity : uint8_t { kDebug = 0, kInfo, kWarn, kError };

constexpr std::string_view to_string(EventSeverity s) {
  switch (s) {
    case EventSeverity::kDebug: return "DEBUG";
    case EventSeverity::kInfo: return "INFO";
    case EventSeverity::kWarn: return "WARN";
    case EventSeverity::kError: return "ERROR";
  }
  return "?";
}

/// One logged occurrence: a dot-scoped category ("device.failure",
/// "recovery.rebuild"), a short message, and key=value detail fields.
struct LoggedEvent {
  SimTime time = 0;
  EventSeverity severity = EventSeverity::kInfo;
  std::string category;
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;

  /// First value for `key`, or empty when absent.
  std::string_view Field(std::string_view key) const;
};

class EventLog {
 public:
  explicit EventLog(size_t capacity = 65536) : capacity_(capacity) {}

  void Emit(SimTime time, EventSeverity severity, std::string_view category,
            std::string_view message,
            std::initializer_list<std::pair<std::string_view, std::string>>
                fields = {});

  /// All stored events in emission order. Aggregates the shards into an
  /// internal buffer; do not call from concurrent readers (writers are
  /// fine — anything emitted during the merge lands in the next call).
  const std::vector<LoggedEvent>& events() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t size() const { return stored_.load(std::memory_order_relaxed); }
  void Clear();

  /// Full log, one line per event:
  ///   [     12.345 ms] WARN  device.failure      device 0 shot down  device=0 ...
  std::string ToText() const;

  /// {"schema":"reo.events.v1","dropped":N,"events":[{"t_ms":...,
  ///  "severity":"WARN","category":...,"message":...,"fields":{...}},...]}
  /// Newest `max_events` retained events (0 = all) — the ADMIN EVENTS body.
  std::string ToJson(size_t max_events = 0) const;

  /// Human-readable recovery report: the failure/spare/rebuild milestones
  /// in time order, with per-class rebuild roll-ups — the "what did the
  /// recovery scheduler do minute-by-minute" answer for a Fig. 8 run.
  std::string RecoveryTimeline() const;

 private:
  /// One writer stripe: events interleave across shards; the `seq` ticket
  /// recovers the global emission order at aggregation time.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<std::pair<uint64_t, LoggedEvent>> events;  // (seq, event)
  };

  /// Snapshot of every shard, merged back into emission order.
  std::vector<LoggedEvent> Merged() const;

  std::array<Shard, kMetricDomains> shards_;
  size_t capacity_;
  /// Tickets: total events stored across shards (bounded by capacity_).
  std::atomic<uint64_t> stored_{0};
  std::atomic<uint64_t> dropped_{0};
  /// events() scratch; rebuilt per call under merged_mu_.
  mutable std::mutex merged_mu_;
  mutable std::vector<LoggedEvent> merged_;
};

/// Null-tolerant emit helper, mirroring telemetry's Inc/Set/Observe: a
/// component whose EventLog* is un-attached pays one branch.
inline void Emit(EventLog* log, SimTime time, EventSeverity severity,
                 std::string_view category, std::string_view message,
                 std::initializer_list<std::pair<std::string_view, std::string>>
                     fields = {}) {
  if (log) log->Emit(time, severity, category, message, fields);
}

}  // namespace reo
