// Request-tracing identifiers and the per-request context that propagates
// through the stack (transport → osd_target → cache_manager → data_plane →
// array/ec → flash devices).
//
// The system is single-threaded by design, so propagation is a single
// "active context" slot owned by the Tracer: the component that opens a
// request (cache manager, failure handler) installs the context, every
// nested span allocates its id from it, and the slot empties when the
// request ends. Components never pass context through call signatures —
// exactly how the telemetry layer avoids threading a registry everywhere.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/sim_clock.h"

namespace reo {

/// Identifies one traced request end-to-end.
using TraceId = uint64_t;
/// Identifies one span within a trace. 0 = "no span" (root parent).
using SpanId = uint32_t;

constexpr SpanId kNoSpan = 0;

/// The layer a span was recorded in; one exporter track per component
/// (devices additionally fan out by instance: "flash.dev0", "flash.dev1").
enum class TraceComponent : uint8_t {
  kCacheManager = 0,
  kTransport,
  kOsdTarget,
  kDataPlane,
  kReconstruction,
  kFlashDevice,
  kBackend,
  kSim,
};
constexpr uint8_t kTraceComponentCount = 8;

constexpr std::string_view to_string(TraceComponent c) {
  switch (c) {
    case TraceComponent::kCacheManager: return "cache_manager";
    case TraceComponent::kTransport: return "transport";
    case TraceComponent::kOsdTarget: return "osd_target";
    case TraceComponent::kDataPlane: return "data_plane";
    case TraceComponent::kReconstruction: return "reconstruction";
    case TraceComponent::kFlashDevice: return "flash";
    case TraceComponent::kBackend: return "backend";
    case TraceComponent::kSim: return "sim";
  }
  return "unknown";
}

/// What a span did. Root spans use the request-outcome values (kGetHit,
/// kGetDegraded, ...) so a trace viewer can filter the latency waterfall
/// by request type without inspecting flags.
enum class TraceOp : uint8_t {
  // Root (request) spans — the outcome is set when the request completes.
  kGet = 0,          ///< read, outcome not yet known
  kGetHit,
  kGetMiss,
  kGetDegraded,      ///< hit served via parity reconstruction
  kGetUncacheable,   ///< served straight from the backend (array unusable)
  kPut,              ///< write, outcome not yet known
  kPutWriteBack,     ///< absorbed dirty
  kPutWriteThrough,
  kPutUncacheable,
  // Root spans for non-request work.
  kFailureHandling,  ///< device shootdown reaction
  kSpareHandling,
  kRecoveryDrain,
  kScrub,
  // Nested spans.
  kRoundtrip,        ///< transport: encode + link + execute + decode
  kOsdRead,
  kOsdWrite,
  kOsdControl,
  kOsdCommand,       ///< any other opcode
  kDataRead,
  kDataWrite,
  kReencode,
  kStripeDecode,     ///< parity/replica decode of lost chunks
  kRebuild,          ///< object reconstruction onto healthy devices
  kDeviceRead,
  kDeviceWrite,
  kBackendFetch,
  kBackendFlush,
};

constexpr std::string_view to_string(TraceOp op) {
  switch (op) {
    case TraceOp::kGet: return "get";
    case TraceOp::kGetHit: return "get.hit";
    case TraceOp::kGetMiss: return "get.miss";
    case TraceOp::kGetDegraded: return "get.degraded";
    case TraceOp::kGetUncacheable: return "get.uncacheable";
    case TraceOp::kPut: return "put";
    case TraceOp::kPutWriteBack: return "put.writeback";
    case TraceOp::kPutWriteThrough: return "put.writethrough";
    case TraceOp::kPutUncacheable: return "put.uncacheable";
    case TraceOp::kFailureHandling: return "failure.handle";
    case TraceOp::kSpareHandling: return "spare.handle";
    case TraceOp::kRecoveryDrain: return "recovery.drain";
    case TraceOp::kScrub: return "scrub";
    case TraceOp::kRoundtrip: return "roundtrip";
    case TraceOp::kOsdRead: return "osd.read";
    case TraceOp::kOsdWrite: return "osd.write";
    case TraceOp::kOsdControl: return "osd.control";
    case TraceOp::kOsdCommand: return "osd.command";
    case TraceOp::kDataRead: return "data.read";
    case TraceOp::kDataWrite: return "data.write";
    case TraceOp::kReencode: return "data.reencode";
    case TraceOp::kStripeDecode: return "stripe.decode";
    case TraceOp::kRebuild: return "rebuild";
    case TraceOp::kDeviceRead: return "dev.read";
    case TraceOp::kDeviceWrite: return "dev.write";
    case TraceOp::kBackendFetch: return "backend.fetch";
    case TraceOp::kBackendFlush: return "backend.flush";
  }
  return "unknown";
}

/// Span flag bits.
constexpr uint8_t kSpanDegraded = 1 << 0;  ///< needed parity reconstruction
constexpr uint8_t kSpanError = 1 << 1;     ///< finished with a non-OK status
constexpr uint8_t kSpanOnDemand = 1 << 2;  ///< on-demand (vs background) work

/// Mutable state of the request currently being traced. Allocated by the
/// Tracer when a root span opens (subject to sampling) and reachable by
/// every component through Tracer::active().
struct TraceContext {
  TraceId trace_id = 0;
  SpanId next_span = 1;               ///< id allocator
  SpanId current_parent = kNoSpan;    ///< innermost open span
  // Request annotations, stamped by the cache manager.
  uint64_t object = 0;                ///< oid of the requested object
  uint8_t class_id = 0xff;            ///< DataClass, 0xff = unknown
};

}  // namespace reo
