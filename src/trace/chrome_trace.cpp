#include "trace/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <vector>

namespace reo {
namespace {

constexpr int kPid = 1;
/// The event track sits above the component tracks.
constexpr int kEventTid = 0;

void AppendEscaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Virtual ns -> Chrome's microsecond timestamps (fractional allowed).
std::string Us(SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t) / 1e3);
  return buf;
}

std::string TrackName(const SpanRecorder& rec) {
  std::string name(to_string(rec.component()));
  if (rec.component() == TraceComponent::kFlashDevice) {
    name += ".dev" + std::to_string(rec.instance());
  } else if (rec.instance() != 0) {
    name += "." + std::to_string(rec.instance());
  }
  return name;
}

void AppendMeta(std::string& out, int tid, const std::string& name) {
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
         ",\"tid\":" + std::to_string(tid) + ",\"name\":\"thread_name\",\"args\":{\"name\":";
  AppendEscaped(out, name);
  out += "}},\n";
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
         ",\"tid\":" + std::to_string(tid) +
         ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
         std::to_string(tid) + "}},\n";
}

void AppendSpan(std::string& out, const SpanRecord& r, int tid,
                const std::string& track) {
  out += "{\"ph\":\"X\",\"pid\":" + std::to_string(kPid) +
         ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + Us(r.start) +
         ",\"dur\":" + Us(r.end - r.start) + ",\"name\":";
  AppendEscaped(out, to_string(r.op));
  out += ",\"cat\":";
  AppendEscaped(out, track);
  out += ",\"args\":{\"trace\":" + std::to_string(r.trace_id) +
         ",\"span\":" + std::to_string(r.span_id) +
         ",\"parent\":" + std::to_string(r.parent_id);
  if (r.object != 0) out += ",\"object\":" + std::to_string(r.object);
  if (r.detail != 0) out += ",\"detail\":" + std::to_string(r.detail);
  if (r.flags != 0) {
    out += ",\"flags\":\"";
    bool first = true;
    auto flag = [&](uint8_t bit, const char* name) {
      if (!(r.flags & bit)) return;
      if (!first) out += '|';
      first = false;
      out += name;
    };
    flag(kSpanDegraded, "degraded");
    flag(kSpanError, "error");
    flag(kSpanOnDemand, "on-demand");
    out += '"';
  }
  out += "}},\n";
}

void AppendEvent(std::string& out, const LoggedEvent& e) {
  out += "{\"ph\":\"i\",\"pid\":" + std::to_string(kPid) +
         ",\"tid\":" + std::to_string(kEventTid) + ",\"ts\":" + Us(e.time) +
         ",\"s\":\"g\",\"name\":";
  AppendEscaped(out, e.category);
  out += ",\"cat\":\"event\",\"args\":{\"severity\":";
  AppendEscaped(out, to_string(e.severity));
  out += ",\"message\":";
  AppendEscaped(out, e.message);
  for (const auto& [k, v] : e.fields) {
    out += ',';
    AppendEscaped(out, k);
    out += ':';
    AppendEscaped(out, v);
  }
  out += "}},\n";
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":\"reo\"}},\n";
  AppendMeta(out, kEventTid, "events");

  // Stable track order: component enum order, then instance.
  std::vector<const SpanRecorder*> recs;
  tracer.ForEachRecorder([&](const SpanRecorder& r) { recs.push_back(&r); });
  std::sort(recs.begin(), recs.end(),
            [](const SpanRecorder* a, const SpanRecorder* b) {
              if (a->component() != b->component()) {
                return a->component() < b->component();
              }
              return a->instance() < b->instance();
            });

  int tid = kEventTid;
  for (const SpanRecorder* rec : recs) {
    ++tid;
    std::string track = TrackName(*rec);
    AppendMeta(out, tid, track);
    rec->ForEach([&](const SpanRecord& r) { AppendSpan(out, r, tid, track); });
  }
  for (const LoggedEvent& e : tracer.events().events()) AppendEvent(out, e);

  // Strip the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

std::string TraceReportText(const Tracer& tracer) {
  std::string out = tracer.events().RecoveryTimeline();
  out += "\n== Trace accounting ==\n";
  TraceStats s = tracer.Stats();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "roots seen: %llu, traces sampled: %llu (1 in %llu)\n"
                "spans recorded: %llu (%llu dropped to ring overflow)\n"
                "events logged: %llu (%llu dropped)\n",
                static_cast<unsigned long long>(s.requests_seen),
                static_cast<unsigned long long>(s.traces_sampled),
                static_cast<unsigned long long>(tracer.config().sample_every),
                static_cast<unsigned long long>(s.spans_recorded),
                static_cast<unsigned long long>(s.spans_dropped),
                static_cast<unsigned long long>(s.events_logged),
                static_cast<unsigned long long>(s.events_dropped));
  out += buf;
  return out;
}

}  // namespace reo
