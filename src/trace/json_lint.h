// Minimal dependency-free JSON validator used by tools/trace_validate and
// the trace tests. Not a general parser: it checks well-formedness and
// counts Chrome trace-event phases, nothing more.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace reo {

struct JsonLintResult {
  bool ok = false;
  std::string error;        ///< empty when ok
  size_t error_offset = 0;  ///< byte offset of the first problem
  uint64_t objects = 0;
  uint64_t arrays = 0;
  /// Counts of `"ph":"X"` / `"ph":"M"` / `"ph":"i"` pairs seen — the
  /// Chrome trace-event span / metadata / instant events.
  uint64_t complete_events = 0;
  uint64_t metadata_events = 0;
  uint64_t instant_events = 0;
};

/// Validates that `text` is one complete JSON value (trailing whitespace
/// allowed) and tallies trace-event phases along the way.
JsonLintResult LintJson(std::string_view text);

}  // namespace reo
