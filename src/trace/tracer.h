// The tracing sink: owns every component's SpanRecorder, the EventLog,
// the sampling decision, and the single active TraceContext.
//
// Usage mirrors the telemetry registry: the simulator (or a test) owns one
// Tracer, each component resolves its recorder once in AttachTracing, and
// the hot path costs a branch per potential span when nothing is attached.
// Request roots open a RequestTrace guard; nested layers open TraceSpan
// guards (span_recorder.h) or call SpanRecorder::Record for leaves.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/metric_registry.h"
#include "trace/event_log.h"
#include "trace/span_recorder.h"
#include "trace/trace_context.h"

namespace reo {

struct TracerConfig {
  /// Trace 1 in N requests (1 = every request). Non-request roots
  /// (failure handling, recovery drains) are always traced.
  uint64_t sample_every = 1;
  /// Span-ring capacity per component track.
  size_t spans_per_component = 1 << 16;
  /// Event-log capacity.
  size_t max_events = 1 << 16;
};

/// Aggregate accounting across recorders, carried in RunReport.
struct TraceStats {
  uint64_t requests_seen = 0;    ///< root-span opportunities observed
  uint64_t traces_sampled = 0;   ///< roots actually traced
  uint64_t spans_recorded = 0;
  uint64_t spans_dropped = 0;    ///< lost to ring overflow
  uint64_t events_logged = 0;
  uint64_t events_dropped = 0;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  /// Resolve-once lookup of the ring for one component track. Stable
  /// addresses for the tracer's lifetime.
  SpanRecorder& RecorderFor(TraceComponent component, uint8_t instance = 0);

  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  /// Context of the request being traced, or null (unsampled / idle).
  TraceContext* active() { return active_; }

  const TracerConfig& config() const { return config_; }
  TraceStats Stats() const;

  /// Registers per-stage latency histograms ("stage.<component>.span_us",
  /// one per component track; device instances fold into one) and feeds
  /// every committed span's duration into them from then on. This is the
  /// latency-attribution bridge: with sample_every == 1 the transport
  /// stage's sums equal the server's end-to-end latency sums exactly, and
  /// nested stages show where that time went. Nested stages on the
  /// simulated serving path carry *modeled* device time while the
  /// transport root carries wall clock — compare shapes, not absolutes.
  void AttachStageMetrics(MetricRegistry& registry);

  /// Observation hook SpanRecorder::Push calls on every committed span.
  void ObserveSpan(const SpanRecord& r);

  /// Visits every recorder (export order: component, then instance).
  template <typename Fn>
  void ForEachRecorder(Fn&& fn) const {
    for (const auto& rec : recorders_) fn(*rec);
  }

 private:
  friend class RequestTrace;

  /// Opens a trace for a new root (subject to sampling unless `force`).
  /// Returns null when the root is unsampled or a trace is already open
  /// (nested roots join the enclosing trace as plain spans instead).
  TraceContext* Begin(bool force);
  void End();

  TracerConfig config_;
  std::vector<std::unique_ptr<SpanRecorder>> recorders_;
  EventLog events_;
  TraceContext context_;            ///< storage for the active trace
  TraceContext* active_ = nullptr;
  TraceId next_trace_id_ = 1;
  uint64_t roots_seen_ = 0;
  uint64_t traces_sampled_ = 0;
  /// Per-component stage histograms (null when un-attached).
  std::array<ShardedHistogram*, kTraceComponentCount> stage_us_{};
};

/// RAII root-span guard. The cache manager opens one per client request
/// (Get/Put) and per failure-plane entry point; everything the request
/// touches nests under it. Inert when `tracer` is null or the request is
/// not sampled.
class RequestTrace {
 public:
  /// @param root the recorder the root span lands in (usually the cache
  ///        manager's); must belong to `tracer` when both are non-null.
  RequestTrace(Tracer* tracer, SpanRecorder* root, TraceOp op, SimTime start,
               uint64_t object = 0, bool force = false);
  ~RequestTrace() { Finish(); }

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  bool sampled() const { return ctx_ != nullptr; }
  TraceContext* context() { return ctx_; }

  void set_end(SimTime t) { span_.set_end(t); }
  void Cover(SimTime t) { span_.Cover(t); }
  void set_op(TraceOp op) { span_.set_op(op); }
  void set_flags(uint8_t flags) { span_.set_flags(flags); }
  void set_class(uint8_t class_id) {
    if (ctx_) ctx_->class_id = class_id;
  }

  /// Commits the root span and releases the tracer's active slot.
  /// Idempotent; the destructor calls it.
  void Finish();

 private:
  Tracer* tracer_ = nullptr;
  TraceContext* ctx_ = nullptr;
  TraceSpan span_;
};

}  // namespace reo
