// Wire-transport tests: command/response serialization round trips,
// corruption rejection, link-time accounting, and the full cache stack
// running over the wire.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/cache_manager.h"
#include "osd/transport.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

OsdCommand SampleCommand() {
  OsdCommand c;
  c.op = OsdOp::kWrite;
  c.id = Oid(7);
  c.logical_size = 12345;
  c.capacity_bytes = 1 << 20;
  c.now = 987654321;
  c.attr = kAttrClassId;
  c.data = {1, 2, 3, 4, 5};
  c.attr_value = {9, 9};
  return c;
}

TEST(TransportWireTest, CommandRoundTrip) {
  OsdCommand c = SampleCommand();
  auto wire = EncodeCommand(c);
  auto back = DecodeCommand(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->op, c.op);
  EXPECT_EQ(back->id, c.id);
  EXPECT_EQ(back->logical_size, c.logical_size);
  EXPECT_EQ(back->capacity_bytes, c.capacity_bytes);
  EXPECT_EQ(back->now, c.now);
  EXPECT_EQ(back->attr, c.attr);
  EXPECT_EQ(back->data, c.data);
  EXPECT_EQ(back->attr_value, c.attr_value);
}

TEST(TransportWireTest, ResponseRoundTrip) {
  OsdResponse r;
  r.sense = SenseCode::kRedundancyFull;
  r.complete = 42424242;
  r.degraded = true;
  r.data = {7, 8, 9};
  r.attr_value = {1};
  r.list = {0x10000, 0x10004, 0x20000};
  auto wire = EncodeResponse(r);
  auto back = DecodeResponse(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sense, r.sense);
  EXPECT_EQ(back->complete, r.complete);
  EXPECT_EQ(back->degraded, r.degraded);
  EXPECT_EQ(back->data, r.data);
  EXPECT_EQ(back->attr_value, r.attr_value);
  EXPECT_EQ(back->list, r.list);
}

TEST(TransportWireTest, ResponsePartsConcatenateToFlatEncoding) {
  // The scatter-gather encoder must be byte-identical to EncodeResponse:
  // head‖body‖tail == flat wire, with the data buffer moved into body.
  OsdResponse r;
  r.sense = SenseCode::kRedundancyFull;
  r.complete = 42424242;
  r.degraded = true;
  r.data.resize(1000);
  for (size_t i = 0; i < r.data.size(); ++i) {
    r.data[i] = static_cast<uint8_t>(i * 37 + 5);
  }
  r.attr_value = {1, 2, 3};
  r.list = {0x10000, 0x10004, 0x20000};
  auto flat = EncodeResponse(r);

  OsdResponse moved = r;  // keep r intact for the flat encode comparison
  auto parts = EncodeResponseParts(std::move(moved));
  EXPECT_EQ(parts.body, r.data);  // moved, not re-encoded

  std::vector<uint8_t> joined = parts.head;
  joined.insert(joined.end(), parts.body.begin(), parts.body.end());
  joined.insert(joined.end(), parts.tail.begin(), parts.tail.end());
  EXPECT_EQ(joined, flat);

  // And empty optional fields still concatenate correctly.
  OsdResponse bare;
  auto bare_flat = EncodeResponse(bare);
  auto bare_parts = EncodeResponseParts(std::move(bare));
  std::vector<uint8_t> bare_joined = bare_parts.head;
  bare_joined.insert(bare_joined.end(), bare_parts.body.begin(),
                     bare_parts.body.end());
  bare_joined.insert(bare_joined.end(), bare_parts.tail.begin(),
                     bare_parts.tail.end());
  EXPECT_EQ(bare_joined, bare_flat);
}

TEST(TransportWireTest, NegativeSenseSurvivesWire) {
  OsdResponse r;
  r.sense = SenseCode::kFail;  // -1
  auto back = DecodeResponse(EncodeResponse(r));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sense, SenseCode::kFail);
}

TEST(TransportWireTest, TruncationAndGarbageRejected) {
  auto wire = EncodeCommand(SampleCommand());
  for (size_t cut : {size_t{0}, size_t{3}, wire.size() / 2, wire.size() - 1}) {
    std::vector<uint8_t> trunc(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeCommand(trunc).ok()) << "cut " << cut;
  }
  // Trailing junk is also rejected (framing must be exact).
  auto padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(DecodeCommand(padded).ok());
  // Bad magic.
  auto bad = wire;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(DecodeCommand(bad).ok());
  // Bad opcode.
  auto badop = wire;
  badop[4] = 0xEE;
  EXPECT_FALSE(DecodeCommand(badop).ok());
}

TEST(TransportWireTest, FuzzDecodeNeverCrashes) {
  Pcg32 rng(31);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> junk(rng.NextBounded(96));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    (void)DecodeCommand(junk);
    (void)DecodeResponse(junk);
  }
}

struct WireStack {
  WireStack() {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 1 << 20;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                    .reo_reserve_fraction = 0.3}));
    target = std::make_unique<OsdTarget>(*plane);
    transport = std::make_unique<OsdTransport>(*target);
    backend = std::make_unique<BackendStore>(HddConfig{}, NetworkLinkConfig{});
    cache = std::make_unique<CacheManager>(*target, *plane, *backend,
                                           CacheManagerConfig{});
    cache->initiator_mutable().UseTransport(transport.get());
    cache->Initialize(0);
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<OsdTarget> target;
  std::unique_ptr<OsdTransport> transport;
  std::unique_ptr<BackendStore> backend;
  std::unique_ptr<CacheManager> cache;
};

TEST(TransportStackTest, CacheWorksOverTheWire) {
  WireStack fx;
  fx.backend->RegisterObject(Oid(1), 4 * kChunk, fx.stripes->PhysicalSize(4 * kChunk));
  SimClock clock;
  auto miss = fx.cache->Get(Oid(1), 4 * kChunk, clock.now());
  clock.Advance(miss.latency);
  EXPECT_FALSE(miss.hit);
  auto hit = fx.cache->Get(Oid(1), 4 * kChunk, clock.now());
  EXPECT_TRUE(hit.hit);
  // Every hit payload crossed the wire and was verified by content CRC.
  EXPECT_EQ(fx.cache->stats().verify_failures, 0u);
  EXPECT_GT(fx.transport->stats().commands, 0u);
  EXPECT_GT(fx.transport->stats().bytes_sent, 0u);
  EXPECT_GT(fx.transport->stats().bytes_received,
            fx.stripes->PhysicalSize(4 * kChunk));  // the read payload
  EXPECT_EQ(fx.transport->stats().decode_errors, 0u);
}

TEST(TransportStackTest, WireAddsLatency) {
  WireStack fx;
  fx.backend->RegisterObject(Oid(1), 4 * kChunk, fx.stripes->PhysicalSize(4 * kChunk));
  SimClock clock;
  (void)fx.cache->Get(Oid(1), 4 * kChunk, clock.now());
  auto wire_hit = fx.cache->Get(Oid(1), 4 * kChunk, 10 * kNsPerSec);

  // Same stack without a transport: the in-process hit is faster.
  FlashDeviceConfig dev;
  dev.capacity_bytes = 1 << 20;
  FlashArray array(5, dev);
  StripeManager stripes(array, {.chunk_logical_bytes = kChunk, .scale_shift = 0});
  ReoDataPlane plane(stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                                .reo_reserve_fraction = 0.3}));
  OsdTarget target(plane);
  BackendStore backend(HddConfig{}, NetworkLinkConfig{});
  CacheManager cache(target, plane, backend, CacheManagerConfig{});
  cache.Initialize(0);
  backend.RegisterObject(Oid(1), 4 * kChunk, stripes.PhysicalSize(4 * kChunk));
  (void)cache.Get(Oid(1), 4 * kChunk, 0);
  auto local_hit = cache.Get(Oid(1), 4 * kChunk, 10 * kNsPerSec);

  EXPECT_TRUE(wire_hit.hit);
  EXPECT_TRUE(local_hit.hit);
  EXPECT_GT(wire_hit.latency, local_hit.latency);
}

// --- Write-through policy -------------------------------------------------------

TEST(WritePolicyTest, WriteThroughPersistsImmediately) {
  FlashDeviceConfig dev;
  dev.capacity_bytes = 1 << 20;
  FlashArray array(5, dev);
  StripeManager stripes(array, {.chunk_logical_bytes = kChunk, .scale_shift = 0});
  ReoDataPlane plane(stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                                .reo_reserve_fraction = 0.3}));
  OsdTarget target(plane);
  BackendStore backend(HddConfig{}, NetworkLinkConfig{});
  CacheManagerConfig cfg;
  cfg.write_policy = WritePolicy::kWriteThrough;
  CacheManager cache(target, plane, backend, cfg);
  cache.Initialize(0);
  backend.RegisterObject(Oid(1), 3 * kChunk, stripes.PhysicalSize(3 * kChunk));

  auto w = cache.Put(Oid(1), 3 * kChunk, 0);
  EXPECT_TRUE(w.is_write);
  // Backend already has the new version; the cached copy is clean.
  EXPECT_GT(*backend.VersionOf(Oid(1)), 0u);
  EXPECT_EQ(backend.flush_count(), 1u);
  EXPECT_NE(*stripes.LevelOf(Oid(1)), RedundancyLevel::kReplicate);
  // A failure can never lose dirty data: there is none.
  cache.OnDeviceFailure(0, w.latency);
  cache.OnDeviceFailure(1, w.latency);
  EXPECT_EQ(cache.stats().dirty_lost, 0u);
  // Reads hit the clean cached copy and verify.
  auto r = cache.Get(Oid(1), 3 * kChunk, w.latency);
  if (r.hit) EXPECT_EQ(cache.stats().verify_failures, 0u);
}

TEST(WritePolicyTest, WriteThroughIsSlowerThanWriteBack) {
  auto run = [](WritePolicy policy) {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 1 << 20;
    FlashArray array(5, dev);
    StripeManager stripes(array, {.chunk_logical_bytes = kChunk, .scale_shift = 0});
    ReoDataPlane plane(stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                                  .reo_reserve_fraction = 0.3}));
    OsdTarget target(plane);
    BackendStore backend(HddConfig{}, NetworkLinkConfig{});
    CacheManagerConfig cfg;
    cfg.write_policy = policy;
    CacheManager cache(target, plane, backend, cfg);
    cache.Initialize(0);
    backend.RegisterObject(Oid(1), 3 * kChunk, stripes.PhysicalSize(3 * kChunk));
    return cache.Put(Oid(1), 3 * kChunk, 0).latency;
  };
  // Write-back absorbs at flash speed; write-through pays the HDD seek.
  EXPECT_GT(run(WritePolicy::kWriteThrough), run(WritePolicy::kWriteBack));
}

}  // namespace
}  // namespace reo
