// Unit tests for the common substrate: status/result, CRC32C, PCG32,
// Zipf sampling, histograms, file utilities, and the virtual clock.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <set>
#include <thread>

#include "common/buffer.h"
#include "common/crc32c.h"
#include "common/file_util.h"
#include "common/histogram.h"
#include "common/object_id.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/units.h"
#include "common/zipf.h"

namespace reo {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s{ErrorCode::kNoSpace, "cache full"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNoSpace);
  EXPECT_EQ(s.to_string(), "NO_SPACE: cache full");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto c : {ErrorCode::kOk, ErrorCode::kNotFound, ErrorCode::kCorrupted,
                 ErrorCode::kUnrecoverable, ErrorCode::kNoSpace,
                 ErrorCode::kInvalidArgument, ErrorCode::kAlreadyExists,
                 ErrorCode::kUnavailable, ErrorCode::kInternal}) {
    EXPECT_NE(to_string(c), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r{ErrorCode::kNotFound, "missing"};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// --- ObjectId ---------------------------------------------------------------

TEST(ObjectIdTest, ReservedIdsMatchTableI) {
  EXPECT_EQ(kRootObject.pid, 0u);
  EXPECT_EQ(kRootObject.oid, 0u);
  EXPECT_EQ(kSuperBlockObject.pid, 0x10000u);
  EXPECT_EQ(kSuperBlockObject.oid, 0x10000u);
  EXPECT_EQ(kDeviceTableObject.oid, 0x10001u);
  EXPECT_EQ(kRootDirectoryObject.oid, 0x10002u);
  EXPECT_EQ(kControlObject.oid, 0x10004u);
}

TEST(ObjectIdTest, EqualityAndOrdering) {
  ObjectId a{1, 2}, b{1, 3}, c{1, 2};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(ObjectIdTest, HashSpreadsValues) {
  ObjectIdHash h;
  std::set<size_t> hashes;
  for (uint64_t i = 0; i < 1000; ++i) {
    hashes.insert(h(ObjectId{0x10000, 0x10000 + i}));
  }
  EXPECT_GT(hashes.size(), 990u);  // essentially collision-free
}

TEST(ObjectIdTest, ToStringIsHex) {
  EXPECT_EQ((ObjectId{0x10000, 0x10004}.ToString()), "0x10000:0x10004");
}

// --- CRC32C -----------------------------------------------------------------

TEST(Crc32cTest, KnownVector) {
  // RFC 3720 test vector: crc32c("123456789") == 0xE3069283.
  const char* s = "123456789";
  EXPECT_EQ(Crc32c({reinterpret_cast<const uint8_t*>(s), 9}), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(Crc32c({}), 0u); }

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::vector<uint8_t> buf(257, 0xAB);
  uint32_t clean = Crc32c(buf);
  for (size_t i = 0; i < buf.size(); i += 37) {
    buf[i] ^= 0x01;
    EXPECT_NE(Crc32c(buf), clean) << "flip at " << i;
    buf[i] ^= 0x01;
  }
}

// Differential: the dispatched path (SSE4.2 on capable CPUs) must agree with
// the table-driven portable path over every alignment of the 8/4/1-byte
// hardware tail handling — unaligned starts, odd lengths 0..64, and
// multi-chunk seeded continuation.
TEST(Crc32cTest, DispatchedMatchesPortable) {
  Pcg32 rng(11);
  std::vector<uint8_t> backing(64 + 13);
  for (auto& b : backing) b = static_cast<uint8_t>(rng.Next());
  for (size_t off = 0; off < 13; ++off) {
    for (size_t len = 0; len + off <= backing.size() && len <= 64; ++len) {
      std::span<const uint8_t> data(backing.data() + off, len);
      ASSERT_EQ(Crc32c(data), Crc32cPortable(data))
          << "off=" << off << " len=" << len;
    }
  }
}

TEST(Crc32cTest, SeededContinuationMatchesWholeBuffer) {
  Pcg32 rng(12);
  std::vector<uint8_t> buf(1024);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  uint32_t whole = Crc32c(buf);
  // Split at awkward points: the seeded continuation must match computing the
  // whole buffer in one call, on both paths.
  for (size_t split : {size_t{1}, size_t{7}, size_t{63}, size_t{512},
                       size_t{1023}}) {
    std::span<const uint8_t> head(buf.data(), split);
    std::span<const uint8_t> tail(buf.data() + split, buf.size() - split);
    EXPECT_EQ(Crc32c(tail, Crc32c(head)), whole) << "split=" << split;
    EXPECT_EQ(Crc32cPortable(tail, Crc32cPortable(head)), whole)
        << "split=" << split;
  }
}

// Differential for the PCLMULQDQ-folded bulk path: buffer sizes straddling
// the fold threshold (the dispatch boundary between the plain SSE4.2 loop
// and the 3-lane folded kernel), each at unaligned starting offsets, must
// agree with the portable table. Runs regardless of CPU support — on
// machines without PCLMULQDQ it degenerates to re-checking the SSE4.2 or
// portable path, which keeps the test meaningful everywhere.
TEST(Crc32cTest, ClmulFoldedPathMatchesPortableAcrossThreshold) {
  Pcg32 rng(13);
  std::vector<uint8_t> backing(4 * kCrc32cFoldThreshold + 64);
  for (auto& b : backing) b = static_cast<uint8_t>(rng.Next());
  const size_t lens[] = {
      kCrc32cFoldThreshold - 1,      kCrc32cFoldThreshold,
      kCrc32cFoldThreshold + 1,      kCrc32cFoldThreshold + 17,
      2 * kCrc32cFoldThreshold - 5,  3 * kCrc32cFoldThreshold,
      4 * kCrc32cFoldThreshold + 11,
  };
  for (size_t off : {size_t{0}, size_t{1}, size_t{3}, size_t{7}, size_t{9}}) {
    for (size_t len : lens) {
      ASSERT_LE(off + len, backing.size());
      std::span<const uint8_t> data(backing.data() + off, len);
      ASSERT_EQ(Crc32c(data), Crc32cPortable(data))
          << "off=" << off << " len=" << len
          << " clmul=" << Crc32cUsesClmul();
    }
  }
}

// Seeded continuation across the fold threshold: splitting a large buffer
// so one side takes the folded path and the other the small-input path
// must still compose to the whole-buffer CRC.
TEST(Crc32cTest, ClmulSeededContinuationAcrossThreshold) {
  Pcg32 rng(14);
  std::vector<uint8_t> buf(3 * kCrc32cFoldThreshold);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  uint32_t whole = Crc32cPortable(buf);
  EXPECT_EQ(Crc32c(buf), whole);
  for (size_t split : {size_t{1}, size_t{64}, kCrc32cFoldThreshold - 1,
                       kCrc32cFoldThreshold, kCrc32cFoldThreshold + 1,
                       buf.size() - 7}) {
    std::span<const uint8_t> head(buf.data(), split);
    std::span<const uint8_t> tail(buf.data() + split, buf.size() - split);
    EXPECT_EQ(Crc32c(tail, Crc32c(head)), whole) << "split=" << split;
  }
}

// --- Pcg32 ------------------------------------------------------------------

TEST(Pcg32Test, Deterministic) {
  Pcg32 a(7, 1), b(7, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg32Test, StreamsDiffer) {
  Pcg32 a(7, 1), b(7, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, BoundedStaysInRange) {
  Pcg32 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// --- Zipf -------------------------------------------------------------------

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 0.9);
  double sum = 0;
  for (uint32_t i = 0; i < 100; ++i) sum += z.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfSampler z(50, 1.1);
  for (uint32_t i = 1; i < 50; ++i) {
    EXPECT_LE(z.Pmf(i), z.Pmf(i - 1));
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfSampler z(10, 0.0);
  for (uint32_t i = 0; i < 10; ++i) EXPECT_NEAR(z.Pmf(i), 0.1, 1e-12);
}

TEST(ZipfTest, SamplingMatchesPmf) {
  ZipfSampler z(20, 1.0);
  Pcg32 rng(99);
  std::vector<int> counts(20, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[z.Sample(rng)]++;
  for (uint32_t r = 0; r < 20; ++r) {
    double expect = z.Pmf(r) * kDraws;
    EXPECT_NEAR(counts[r], expect, 5 * std::sqrt(expect) + 5) << "rank " << r;
  }
}

TEST(ZipfTest, HigherSkewConcentratesMass) {
  ZipfSampler weak(1000, 0.6), strong(1000, 1.2);
  EXPECT_GT(strong.Cdf(9), weak.Cdf(9));
}

// --- Histogram / stats -------------------------------------------------------

TEST(StatAccumulatorTest, Basics) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  s.Add(2.0);
  s.Add(4.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(StatAccumulatorTest, Merge) {
  StatAccumulator a, b;
  a.Add(1.0);
  b.Add(3.0);
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

// The bit-scan bucketing must agree with the original log2 formulation for
// every double. Exhaustive over the sensitive inputs: the exact nominal
// boundary of every bucket and its neighbouring representable doubles,
// every exact power of two in range, the sub-1.0 floor, and the overflow
// clamp; plus a broad random sweep.
TEST(HistogramTest, BucketForMatchesReferenceAtAllBoundaries) {
  for (int b = 0; b < Histogram::kBuckets + 8; ++b) {
    double edge = std::exp2(static_cast<double>(b) / 8.0);
    double probes[] = {
        std::nextafter(edge, 0.0), edge,
        std::nextafter(edge, std::numeric_limits<double>::infinity())};
    for (double v : probes) {
      ASSERT_EQ(Histogram::BucketFor(v), Histogram::BucketForReference(v))
          << "bucket edge " << b << " v=" << std::hexfloat << v;
    }
  }
}

TEST(HistogramTest, BucketForMatchesReferenceAtPowersOfTwo) {
  for (int e = 0; e <= 40; ++e) {
    double p = std::exp2(static_cast<double>(e));
    for (double v :
         {std::nextafter(p, 0.0), p,
          std::nextafter(p, std::numeric_limits<double>::infinity())}) {
      ASSERT_EQ(Histogram::BucketFor(v), Histogram::BucketForReference(v))
          << "2^" << e << " v=" << std::hexfloat << v;
    }
  }
}

TEST(HistogramTest, BucketForMatchesReferenceBelowOneAndAtClamp) {
  for (double v : {0.0, 1e-300, 0.25, 0.999999, 1.0}) {
    EXPECT_EQ(Histogram::BucketFor(v), 0);
    EXPECT_EQ(Histogram::BucketForReference(v), 0);
  }
  // Values past bucket 255's lower edge all clamp into the overflow bucket.
  for (double v : {std::exp2(254.0 / 8.0), std::exp2(32.0), std::exp2(40.0),
                   1e30, std::numeric_limits<double>::max()}) {
    ASSERT_EQ(Histogram::BucketFor(v), Histogram::BucketForReference(v))
        << std::hexfloat << v;
  }
  EXPECT_EQ(Histogram::BucketFor(1e30), Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketForMatchesReferenceRandomSweep) {
  Pcg32 rng(13);
  for (int i = 0; i < 200000; ++i) {
    // Log-uniform over [2^-2, 2^38): exercises every octave the histogram
    // covers plus the clamp region.
    double e = -2.0 + 40.0 * rng.NextDouble();
    double v = std::exp2(e) * (0.5 + rng.NextDouble());
    ASSERT_EQ(Histogram::BucketFor(v), Histogram::BucketForReference(v))
        << std::hexfloat << v;
  }
}

TEST(HistogramTest, MeanExact) {
  Histogram h;
  h.Add(10);
  h.Add(20);
  h.Add(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, PercentileApproximate) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  EXPECT_NEAR(h.Percentile(0.5), 500, 40);
  EXPECT_NEAR(h.Percentile(0.99), 990, 60);
  EXPECT_NEAR(h.Percentile(1.0), 1000, 60);
}

TEST(HistogramTest, WideRangePercentiles) {
  // Latencies in µs can span sub-ms hits to multi-second queueing storms;
  // the log buckets must resolve both ends (previously capped near 2^16).
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Add(5'000);      // 5 ms
  h.Add(30'000'000);                              // a 30 s outlier
  EXPECT_NEAR(h.Percentile(0.50), 5'000, 500);
  EXPECT_GT(h.Percentile(0.995), 1'000'000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 30'000'000.0);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Add(5);
  b.Add(500);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 252.5, 1e-9);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.Add(12'345);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 12'345.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.max(), 12'345.0);
  EXPECT_DOUBLE_EQ(h.sum(), 12'345.0);
}

TEST(HistogramTest, PercentilesAfterMerge) {
  // Merged histograms must answer quantiles over the combined stream.
  Histogram fast, slow;
  for (int i = 0; i < 90; ++i) fast.Add(100);
  for (int i = 0; i < 10; ++i) slow.Add(1'000'000);
  fast.Merge(slow);
  EXPECT_EQ(fast.count(), 100u);
  EXPECT_NEAR(fast.Percentile(0.5), 100, 15);
  EXPECT_GT(fast.Percentile(0.95), 500'000.0);
  EXPECT_DOUBLE_EQ(fast.Percentile(1.0), 1'000'000.0);
}

TEST(HistogramTest, ValuesBeyondBucketRange) {
  // Values past the last regular bucket boundary (~2^32) land in the
  // overflow bucket; the top must still report the true maximum.
  Histogram h;
  h.Add(5e9);
  h.Add(6e9);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 6e9);
  EXPECT_GE(h.Percentile(0.5), 3e9);
  EXPECT_LE(h.Percentile(0.5), 6e9);
  EXPECT_DOUBLE_EQ(h.max(), 6e9);
}

TEST(HistogramTest, PercentileMonotoneAndCappedAtMax) {
  Histogram h;
  for (int i = 1; i <= 257; ++i) h.Add(i * i);  // spread across buckets
  double prev = -1.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    double p = h.Percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    EXPECT_LE(p, h.max()) << "q=" << q;
    prev = p;
  }
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), h.max());
  EXPECT_FALSE(h.Summary().empty());
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

// --- SimClock / units --------------------------------------------------------

TEST(SimClockTest, AdvanceMonotone) {
  SimClock c;
  EXPECT_EQ(c.now(), 0u);
  c.Advance(100);
  EXPECT_EQ(c.now(), 100u);
  c.AdvanceTo(50);  // into the past: no-op
  EXPECT_EQ(c.now(), 100u);
  c.AdvanceTo(200);
  EXPECT_EQ(c.now(), 200u);
}

TEST(SimClockTest, TransferTimeMath) {
  // 100 MB at 100 MB/s = 1 second.
  EXPECT_EQ(TransferTime(100'000'000, 100.0), kNsPerSec);
  EXPECT_EQ(TransferTime(0, 100.0), 0u);
  EXPECT_EQ(TransferTime(12345, 0.0), 0u);
}

TEST(UnitsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(4 * kKiB), "4.00 KiB");
  EXPECT_EQ(HumanBytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(HumanBytes(2 * kGiB), "2.00 GiB");
}

// --- File utilities --------------------------------------------------------

TEST(FileUtilTest, WriteReadRoundTrip) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "reo_file_util_rt";
  std::filesystem::create_directories(dir);
  std::string path = (dir / "blob.bin").string();
  std::string payload = "hello\0world";
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  std::filesystem::remove_all(dir);
}

TEST(FileUtilTest, OverwriteReplacesContents) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "reo_file_util_ow";
  std::filesystem::create_directories(dir);
  std::string path = (dir / "blob.bin").string();
  ASSERT_TRUE(WriteFileAtomic(path, "first image, rather long").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "second");
  std::filesystem::remove_all(dir);
}

// Regression: the tmp name used to be a fixed `path + ".tmp"`, so two
// concurrent writers interleaved bytes in the SAME tmp file and rename
// could publish a mixed image. With per-call unique tmp names, the final
// file must always be exactly one writer's payload, and no tmp debris
// may survive.
TEST(FileUtilTest, ConcurrentWritersNeverTearTheFile) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "reo_file_util_race";
  std::filesystem::create_directories(dir);
  std::string path = (dir / "contended.bin").string();

  constexpr int kWriters = 8;
  constexpr int kRounds = 25;
  std::vector<std::string> payloads;
  for (int w = 0; w < kWriters; ++w) {
    // Distinct lengths AND distinct bytes: any interleaving is detectable.
    payloads.push_back(std::string(1024 + 257 * w, static_cast<char>('A' + w)));
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        ASSERT_TRUE(WriteFileAtomic(path, payloads[w]).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  bool matches_one_writer = false;
  for (const std::string& p : payloads) matches_one_writer |= (*back == p);
  EXPECT_TRUE(matches_one_writer)
      << "final file is a mix of writers (size " << back->size() << ")";

  // The unique-suffix scheme must also clean up after itself.
  size_t leftovers = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().filename().string() != "contended.bin") ++leftovers;
  }
  EXPECT_EQ(leftovers, 0u);
  std::filesystem::remove_all(dir);
}

// --- PayloadBuffer (non-zeroing resize) ------------------------------------

/// Base allocator that counts value-initializing (no-arg) constructions —
/// the memset-equivalent work PayloadBuffer exists to skip.
template <typename T>
struct ZeroCountingAllocator : std::allocator<T> {
  static inline uint64_t value_constructions = 0;

  template <typename U>
  struct rebind {
    using other = ZeroCountingAllocator<U>;
  };

  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) ++value_constructions;
    ::new (static_cast<void*>(ptr)) U(std::forward<Args>(args)...);
  }
};

TEST(PayloadBufferTest, ResizeSkipsValueInitialization) {
  using Counting = ZeroCountingAllocator<uint8_t>;
  // A plain vector over the counting base value-initializes every element.
  Counting::value_constructions = 0;
  std::vector<uint8_t, Counting> zeroing;
  zeroing.resize(4096);
  EXPECT_EQ(Counting::value_constructions, 4096u);

  // The DefaultInitAllocator wrapper routes resize() to default-init and
  // never reaches the base's value-initializing construct.
  Counting::value_constructions = 0;
  std::vector<uint8_t, DefaultInitAllocator<uint8_t, Counting>> raw;
  raw.resize(4096);
  EXPECT_EQ(Counting::value_constructions, 0u);

  // Explicit values still construct through the base as before.
  raw.resize(4096 + 16, 0xAB);
  EXPECT_EQ(raw.back(), 0xAB);
}

TEST(PayloadBufferTest, InteroperatesWithPlainVectors) {
  PayloadBuffer buf;
  buf.resize(8);
  std::vector<uint8_t> src{1, 2, 3, 4, 5, 6, 7, 8};
  std::copy(src.begin(), src.end(), buf.begin());
  EXPECT_TRUE(buf == src);
  EXPECT_TRUE(src == buf);
  buf[0] = 9;
  EXPECT_FALSE(buf == src);
  // Explicit value-fill forms keep zeroing semantics.
  PayloadBuffer zeroed(16, 0);
  EXPECT_TRUE(std::all_of(zeroed.begin(), zeroed.end(),
                          [](uint8_t b) { return b == 0; }));
}

}  // namespace
}  // namespace reo
