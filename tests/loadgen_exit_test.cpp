// Pins the reo_loadgen exit-code precedence (tools/loadgen_exit.h). The CI
// smoke jobs branch on these codes, so every cell of the policy matrix is
// asserted — in particular that a fatal worker fails the run even in kill
// mode (the regression: kill-mode success used to be checked first, so a
// run whose workers never connected exited 0 and CI passed on a dead
// worker).
#include <gtest/gtest.h>

#include "loadgen_exit.h"

namespace reo::loadgen {
namespace {

RunOutcome Clean() { return RunOutcome{}; }

TEST(LoadgenExitTest, CleanRunIsZero) { EXPECT_EQ(ExitCode(Clean()), 0); }

TEST(LoadgenExitTest, FatalWorkerIsOne) {
  RunOutcome o = Clean();
  o.worker_fatal = true;
  EXPECT_EQ(ExitCode(o), 1);
}

TEST(LoadgenExitTest, FatalWorkerBeatsKillModeSuccess) {
  // The regression this policy exists for: a worker that died fatally
  // (e.g. could never connect) must fail the run even when the SIGKILL
  // was delivered.
  RunOutcome o = Clean();
  o.kill_mode = true;
  o.killed = true;
  o.worker_fatal = true;
  EXPECT_EQ(ExitCode(o), 1);
}

TEST(LoadgenExitTest, KillDeliveredIsZeroDespiteWireNoise) {
  // After the SIGKILL, torn responses and dropped connections are
  // expected; the wire/verify gates must not apply.
  RunOutcome o = Clean();
  o.kill_mode = true;
  o.killed = true;
  o.wire_errors = 7;
  o.verify_errors = 3;
  EXPECT_EQ(ExitCode(o), 0);
}

TEST(LoadgenExitTest, KillNeverDeliveredIsOne) {
  RunOutcome o = Clean();
  o.kill_mode = true;
  o.killed = false;
  EXPECT_EQ(ExitCode(o), 1);
}

TEST(LoadgenExitTest, WireCorruptionIsTwo) {
  RunOutcome o = Clean();
  o.wire_errors = 1;
  EXPECT_EQ(ExitCode(o), 2);
}

TEST(LoadgenExitTest, WireCorruptionOutranksVerifyErrors) {
  RunOutcome o = Clean();
  o.wire_errors = 1;
  o.verify_errors = 5;
  EXPECT_EQ(ExitCode(o), 2);
}

TEST(LoadgenExitTest, VerifyErrorsAreThree) {
  RunOutcome o = Clean();
  o.verify_errors = 1;
  EXPECT_EQ(ExitCode(o), 3);
}

}  // namespace
}  // namespace reo::loadgen
