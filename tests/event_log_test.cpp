// EventLog's thread-safety contract (the MetricRegistry treatment): many
// writers emit concurrently across the domain shards while readers snapshot.
// Run under TSan (the dedicated CI job builds this binary with
// -fsanitize=thread); the exactness assertions below catch lost updates and
// broken ordering even without it.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "trace/event_log.h"

namespace reo {
namespace {

TEST(EventLogConcurrencyTest, ConcurrentEmitsAreExactAndBounded) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5'000;
  EventLog log(kThreads * kPerThread);  // roomy: nothing should drop

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        log.Emit(static_cast<SimTime>(i), EventSeverity::kInfo,
                 "test.writer" + std::to_string(t), std::to_string(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(log.size(), kThreads * kPerThread);
  EXPECT_EQ(log.dropped(), 0u);

  // Per-thread program order survives the shard merge: each writer's own
  // events appear in increasing sequence in the aggregated view.
  const auto& events = log.events();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::vector<uint64_t> next(kThreads, 0);
  for (const auto& e : events) {
    int writer = e.category.back() - '0';
    ASSERT_GE(writer, 0);
    ASSERT_LT(writer, kThreads);
    EXPECT_EQ(e.message, std::to_string(next[writer]));
    ++next[writer];
  }
}

TEST(EventLogConcurrencyTest, CapacityBoundHoldsUnderContention) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 2'000;
  constexpr size_t kCapacity = 1'000;  // far less than the emit total
  EventLog log(kCapacity);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        log.Emit(0, EventSeverity::kInfo, "test.flood", "x");
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(log.size(), kCapacity);
  EXPECT_EQ(log.dropped(), kThreads * kPerThread - kCapacity);
  EXPECT_EQ(log.events().size(), kCapacity);
}

TEST(EventLogConcurrencyTest, ReadersAreSafeAgainstConcurrentEmit) {
  // ToText/ToJson/RecoveryTimeline/size/dropped all aggregate on read and
  // must never crash or report garbage while writers are mid-flight.
  constexpr int kWriters = 4;
  constexpr uint64_t kPerThread = 10'000;
  EventLog log(kWriters * kPerThread);
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&log] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        log.Emit(static_cast<SimTime>(i), EventSeverity::kWarn,
                 "device.failure", "shot", {{"device", "0"}});
      }
    });
  }
  std::thread reader([&] {
    size_t prev = 0;
    while (!done.load(std::memory_order_acquire)) {
      size_t n = log.size();
      EXPECT_GE(n, prev);
      EXPECT_LE(n, kWriters * kPerThread);
      prev = n;
      // A ticket can be claimed but not yet pushed, so no count assertion
      // on the rendered views — exercising them race-free is the contract.
      std::string text = log.ToText();
      std::string json = log.ToJson(16);
      EXPECT_NE(json.find("\"schema\":\"reo.events.v1\""), std::string::npos);
      std::string timeline = log.RecoveryTimeline();
      EXPECT_NE(timeline.find("== Recovery timeline =="), std::string::npos);
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(log.size(), kWriters * kPerThread);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogConcurrencyTest, ClearResetsEverything) {
  EventLog log(8);
  for (int i = 0; i < 12; ++i) {
    log.Emit(i, EventSeverity::kInfo, "test.fill", "x");
  }
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.dropped(), 4u);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.events().empty());
  log.Emit(0, EventSeverity::kInfo, "test.after", "y");
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events()[0].category, "test.after");
}

}  // namespace
}  // namespace reo
