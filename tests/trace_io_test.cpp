// Trace serialization tests: round trip, format validation, and error
// reporting with line numbers.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/medisyn.h"
#include "workload/trace_io.h"

namespace reo {
namespace {

Trace SmallTrace() {
  MediSynConfig cfg;
  cfg.name = "roundtrip";
  cfg.num_objects = 25;
  cfg.mean_object_bytes = 100'000;
  cfg.num_requests = 200;
  cfg.write_ratio = 0.25;
  cfg.seed = 3;
  return GenerateMediSyn(cfg);
}

TEST(TraceIoTest, RoundTrip) {
  Trace original = SmallTrace();
  std::stringstream buf;
  ASSERT_TRUE(WriteTrace(original, buf).ok());

  auto loaded = ReadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->catalog.sizes, original.catalog.sizes);
  ASSERT_EQ(loaded->requests.size(), original.requests.size());
  for (size_t i = 0; i < original.requests.size(); ++i) {
    EXPECT_EQ(loaded->requests[i].object, original.requests[i].object);
    EXPECT_EQ(loaded->requests[i].is_write, original.requests[i].is_write);
  }
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# header comment\n"
      "\n"
      "trace demo\n"
      "object 0 4096\n"
      "# interleaved comment\n"
      "req R 0\n"
      "req W 0\n");
  auto t = ReadTrace(in);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->name, "demo");
  EXPECT_EQ(t->catalog.count(), 1u);
  ASSERT_EQ(t->requests.size(), 2u);
  EXPECT_FALSE(t->requests[0].is_write);
  EXPECT_TRUE(t->requests[1].is_write);
}

TEST(TraceIoTest, RejectsMalformedInput) {
  struct Case {
    const char* text;
    const char* why;
  };
  for (const auto& c : std::initializer_list<Case>{
           {"object 0 4096\nreq R 1\n", "req references unknown object"},
           {"object 1 4096\n", "indices must be dense"},
           {"object 0 0\n", "zero-size object"},
           {"object 0 4096\nreq X 0\n", "bad op"},
           {"bogus directive\n", "unknown directive"},
           {"# only comments\n", "no objects"},
       }) {
    std::stringstream in(c.text);
    auto t = ReadTrace(in);
    EXPECT_FALSE(t.ok()) << c.why;
  }
}

TEST(TraceIoTest, ErrorsCarryLineNumbers) {
  std::stringstream in("object 0 4096\nobject 1 4096\nreq R 9\n");
  auto t = ReadTrace(in);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos);
}

TEST(TraceIoTest, FileRoundTrip) {
  Trace original = SmallTrace();
  std::string path = ::testing::TempDir() + "/reo_trace_test.trace";
  ASSERT_TRUE(SaveTraceFile(original, path).ok());
  auto loaded = LoadTraceFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->catalog.sizes, original.catalog.sizes);
  EXPECT_EQ(loaded->requests.size(), original.requests.size());
  EXPECT_EQ(LoadTraceFile("/nonexistent/nope.trace").code(),
            ErrorCode::kNotFound);
}

}  // namespace
}  // namespace reo
