// Backend store and network link model tests.
#include <gtest/gtest.h>

#include "backend/backend_store.h"

namespace reo {
namespace {

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

BackendStore MakeStore() {
  return BackendStore(HddConfig{.seek_ns = 1 * kNsPerMs, .transfer_mbps = 100.0},
                      NetworkLinkConfig{.gbps = 10.0, .rtt_ns = 100 * kNsPerUs});
}

TEST(NetworkLinkTest, TransferDuration) {
  NetworkLink link({.gbps = 10.0, .rtt_ns = 100 * kNsPerUs});
  // 1.25 GB/s -> 1,250,000 bytes per ms; 1.25 MB = 1 ms + half RTT.
  EXPECT_EQ(link.TransferDuration(1'250'000), 50 * kNsPerUs + kNsPerMs);
}

TEST(NetworkLinkTest, SerializesTransfers) {
  NetworkLink link({.gbps = 8.0, .rtt_ns = 0});
  SimTime t1 = link.Transfer(0, 1'000'000);  // 1 MB at 1 GB/s = 1 ms
  EXPECT_EQ(t1, kNsPerMs);
  SimTime t2 = link.Transfer(0, 1'000'000);  // queues behind t1
  EXPECT_EQ(t2, 2 * kNsPerMs);
  link.Reset();
  EXPECT_EQ(link.Transfer(0, 1'000'000), kNsPerMs);
}

TEST(BackendStoreTest, RegisterAndFetch) {
  auto store = MakeStore();
  store.RegisterObject(Oid(1), 10000, 1000);
  ASSERT_TRUE(store.Contains(Oid(1)));
  EXPECT_EQ(store.object_count(), 1u);
  EXPECT_EQ(store.total_logical_bytes(), 10000u);

  auto f = store.Fetch(Oid(1), 0);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->payload.size(), 1000u);
  EXPECT_EQ(f->version, 0u);
  EXPECT_GT(f->complete, kNsPerMs);  // at least the seek
  EXPECT_EQ(store.fetch_count(), 1u);
}

TEST(BackendStoreTest, FetchUnknownFails) {
  auto store = MakeStore();
  EXPECT_EQ(store.Fetch(Oid(1), 0).code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.Flush(Oid(1), 1, 0).code(), ErrorCode::kNotFound);
}

TEST(BackendStoreTest, PayloadIsDeterministic) {
  auto a = BackendStore::SynthesizePayload(Oid(1), 0, 512);
  auto b = BackendStore::SynthesizePayload(Oid(1), 0, 512);
  EXPECT_EQ(a, b);
  // Different object or version gives different content.
  EXPECT_NE(a, BackendStore::SynthesizePayload(Oid(2), 0, 512));
  EXPECT_NE(a, BackendStore::SynthesizePayload(Oid(1), 1, 512));
}

TEST(BackendStoreTest, FlushBumpsVersion) {
  auto store = MakeStore();
  store.RegisterObject(Oid(1), 10000, 1000);
  auto before = store.Fetch(Oid(1), 0);
  ASSERT_TRUE(before.ok());

  auto done = store.Flush(Oid(1), 3, before->complete);
  ASSERT_TRUE(done.ok());
  EXPECT_GT(*done, before->complete);
  EXPECT_EQ(*store.VersionOf(Oid(1)), 3u);

  auto after = store.Fetch(Oid(1), *done);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->version, 3u);
  EXPECT_NE(after->payload, before->payload);
  EXPECT_EQ(after->payload, BackendStore::SynthesizePayload(Oid(1), 3, 1000));
}

TEST(BackendStoreTest, ReRegisterUpdatesSizes) {
  auto store = MakeStore();
  store.RegisterObject(Oid(1), 10000, 1000);
  store.RegisterObject(Oid(1), 20000, 2000);
  EXPECT_EQ(store.object_count(), 1u);
  EXPECT_EQ(store.total_logical_bytes(), 20000u);
  auto f = store.Fetch(Oid(1), 0);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->payload.size(), 2000u);
}

TEST(BackendStoreTest, DiskSerializesFetches) {
  auto store = MakeStore();
  store.RegisterObject(Oid(1), 1'000'000, 100);
  store.RegisterObject(Oid(2), 1'000'000, 100);
  auto f1 = store.Fetch(Oid(1), 0);
  auto f2 = store.Fetch(Oid(2), 0);
  ASSERT_TRUE(f1.ok() && f2.ok());
  // Second fetch queues behind the first on the spindle.
  EXPECT_GE(f2->complete, f1->complete + kNsPerMs);
}

TEST(BackendStoreTest, LargerObjectsTakeLonger) {
  auto store = MakeStore();
  store.RegisterObject(Oid(1), 1'000'000, 100);
  auto small = store.Fetch(Oid(1), 0);
  ASSERT_TRUE(small.ok());

  auto store2 = MakeStore();
  store2.RegisterObject(Oid(1), 50'000'000, 100);
  auto big = store2.Fetch(Oid(1), 0);
  ASSERT_TRUE(big.ok());
  EXPECT_GT(big->complete, small->complete);
}

}  // namespace
}  // namespace reo
