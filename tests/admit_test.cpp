// DRAM admission tier tests: policy units (flashiness adaptation,
// write-credit refill/exhaustion), the segmented-LRU DRAM cache, the
// tier's graduate-vs-drop accounting, and the data-plane integration
// invariant — an attached admit-all tier serves byte-identical payloads
// to the un-attached plane, and a zero-byte tier changes nothing at all.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "admit/admission_tier.h"
#include "backend/backend_store.h"
#include "core/data_plane.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;
constexpr SimTime kSec = 1'000'000'000;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x30000 + n}; }

AdmissionCandidate Candidate(uint64_t n, uint64_t stored, uint64_t hits) {
  AdmissionCandidate c;
  c.id = Oid(n);
  c.logical_bytes = stored;
  c.stored_bytes = stored;
  c.dram_hits = hits;
  return c;
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

TEST(AdmissionPolicyTest, ParseNames) {
  AdmissionPolicyKind k;
  EXPECT_TRUE(ParseAdmissionPolicy("all", &k));
  EXPECT_EQ(k, AdmissionPolicyKind::kAdmitAll);
  EXPECT_TRUE(ParseAdmissionPolicy("flashiness", &k));
  EXPECT_EQ(k, AdmissionPolicyKind::kFlashiness);
  EXPECT_TRUE(ParseAdmissionPolicy("credit", &k));
  EXPECT_EQ(k, AdmissionPolicyKind::kWriteCredit);
  EXPECT_FALSE(ParseAdmissionPolicy("lru", &k));
}

TEST(AdmissionPolicyTest, AdmitAllAdmitsEverything) {
  AdmissionConfig cfg;
  auto policy = MakeAdmissionPolicy(cfg);
  EXPECT_EQ(policy->name(), "all");
  EXPECT_TRUE(policy->ShouldAdmit(Candidate(0, kChunk, 0), 0));
  EXPECT_TRUE(policy->ShouldAdmit(Candidate(1, kChunk, 100), 0));
}

TEST(AdmissionPolicyTest, FlashinessThresholdAdapts) {
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicyKind::kFlashiness;
  cfg.flashiness_target = 0.5;
  cfg.flashiness_window = 4;
  auto policy = MakeAdmissionPolicy(cfg);

  // The threshold starts at 1 observed reuse: no-hit objects drop,
  // one-hit objects graduate.
  EXPECT_FALSE(policy->ShouldAdmit(Candidate(0, kChunk, 0), 0));
  EXPECT_TRUE(policy->ShouldAdmit(Candidate(1, kChunk, 1), 0));

  // A window graduating everything (fraction 1.0 > target 0.5) raises the
  // threshold; the two evictions above already count toward the window.
  EXPECT_TRUE(policy->ShouldAdmit(Candidate(2, kChunk, 5), 0));
  EXPECT_TRUE(policy->ShouldAdmit(Candidate(3, kChunk, 5), 0));
  EXPECT_FALSE(policy->ShouldAdmit(Candidate(4, kChunk, 1), 0))
      << "threshold should have adapted up past 1 hit";

  // Windows graduating nothing walk it back down.
  for (int i = 0; i < 8; ++i) {
    (void)policy->ShouldAdmit(Candidate(100 + i, kChunk, 0), 0);
  }
  EXPECT_TRUE(policy->ShouldAdmit(Candidate(5, kChunk, 1), 0))
      << "threshold should have adapted back down";
}

TEST(AdmissionPolicyTest, WriteCreditSpendsAndRefills) {
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicyKind::kWriteCredit;
  cfg.flash_write_budget_bps = 1000;
  cfg.credit_burst_seconds = 1.0;  // bucket cap: 1000 bytes
  auto policy = MakeAdmissionPolicy(cfg);
  EXPECT_EQ(policy->name(), "credit");

  // Starts full: an 800-byte graduation is affordable; spending 600 leaves
  // too little for another 600.
  EXPECT_TRUE(policy->ShouldAdmit(Candidate(0, 800, 0), 0));
  policy->OnFlashWrite(600, 0);
  EXPECT_FALSE(policy->ShouldAdmit(Candidate(1, 600, 0), 0));

  // ShouldAdmit itself must not spend: asking twice changes nothing.
  EXPECT_FALSE(policy->ShouldAdmit(Candidate(1, 600, 0), 0));

  // One simulated second refills the budget (capped at the burst size).
  EXPECT_TRUE(policy->ShouldAdmit(Candidate(2, 600, 0), kSec));
  policy->OnFlashWrite(1000, kSec);
  EXPECT_FALSE(policy->ShouldAdmit(Candidate(3, 600, 0), kSec));
  EXPECT_TRUE(policy->ShouldAdmit(Candidate(3, 600, 0), 2 * kSec));
}

// ---------------------------------------------------------------------------
// DramCache
// ---------------------------------------------------------------------------

PayloadBuffer Bytes(size_t n, uint8_t fill) {
  PayloadBuffer b;
  b.resize(n, fill);
  return b;
}

TEST(DramCacheTest, EvictsProbationBeforeProtected) {
  DramCache cache(4 * kChunk, 0.5);
  cache.Put(Oid(0), Bytes(kChunk, 0xA0), kChunk, 3, 0);
  cache.Put(Oid(1), Bytes(kChunk, 0xA1), kChunk, 3, 1);
  cache.Put(Oid(2), Bytes(kChunk, 0xA2), kChunk, 3, 2);

  // A hit promotes object 0 into the protected segment; the victim order
  // becomes probation-oldest-first (1, 2), then the protected survivor.
  ASSERT_NE(cache.Get(Oid(0), 10), nullptr);

  AdmissionCandidate victim;
  PayloadBuffer payload;
  ASSERT_TRUE(cache.PopVictim(&victim, &payload));
  EXPECT_EQ(victim.id, Oid(1));
  ASSERT_TRUE(cache.PopVictim(&victim, &payload));
  EXPECT_EQ(victim.id, Oid(2));
  ASSERT_TRUE(cache.PopVictim(&victim, &payload));
  EXPECT_EQ(victim.id, Oid(0));
  EXPECT_EQ(victim.dram_hits, 1u);
  EXPECT_EQ(payload.size(), kChunk);
  EXPECT_EQ(payload[0], 0xA0);
  EXPECT_FALSE(cache.PopVictim(&victim, &payload));
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(DramCacheTest, TracksBytesAndReuseFeatures) {
  DramCache cache(4 * kChunk, 0.5);
  EXPECT_TRUE(cache.CanHold(4 * kChunk));
  EXPECT_FALSE(cache.CanHold(4 * kChunk + 1));

  cache.Put(Oid(0), Bytes(kChunk, 1), 2 * kChunk, 2, 5);
  EXPECT_EQ(cache.bytes(), kChunk);
  EXPECT_TRUE(cache.HasRoomFor(3 * kChunk));
  EXPECT_FALSE(cache.HasRoomFor(4 * kChunk));

  const DramCache::Entry* e = cache.Get(Oid(0), 17);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hits, 1u);
  EXPECT_EQ(e->staged_at, 5u);
  EXPECT_EQ(e->last_hit, 17u);
  EXPECT_EQ(e->logical_bytes, 2 * kChunk);
  EXPECT_EQ(e->class_id, 2);

  // Peek observes without perturbing; SetClass updates in place.
  EXPECT_EQ(cache.Peek(Oid(0))->hits, 1u);
  EXPECT_TRUE(cache.SetClass(Oid(0), 3));
  EXPECT_EQ(cache.Peek(Oid(0))->class_id, 3);
  EXPECT_FALSE(cache.SetClass(Oid(9), 3));

  // Replacing an entry releases the old bytes first.
  cache.Put(Oid(0), Bytes(2 * kChunk, 2), 2 * kChunk, 3, 20);
  EXPECT_EQ(cache.bytes(), 2 * kChunk);

  EXPECT_TRUE(cache.Erase(Oid(0)));
  EXPECT_FALSE(cache.Erase(Oid(0)));
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// AdmissionTier
// ---------------------------------------------------------------------------

struct TierFixture {
  explicit TierFixture(AdmissionPolicyKind policy, uint64_t dram_bytes,
                       bool fail_writes = false) {
    AdmissionConfig cfg;
    cfg.dram_bytes = dram_bytes;
    cfg.policy = policy;
    cfg.flashiness_window = 1 << 20;  // hold the threshold at 1 for tests
    tier = std::make_unique<AdmissionTier>(cfg);
    tier->SetFlashWriter([this, fail_writes](ObjectId id,
                                             std::span<const uint8_t> payload,
                                             uint64_t, uint8_t class_id,
                                             SimTime) -> Status {
      if (fail_writes) return Status(ErrorCode::kNoSpace, "full");
      flash_writes.push_back({id, class_id, payload.size()});
      return Status::Ok();
    });
  }

  Status Stage(uint64_t n, uint64_t stored, uint8_t cls, SimTime now) {
    return tier->Stage(Oid(n), Bytes(stored, static_cast<uint8_t>(n)), stored,
                       cls, now);
  }

  struct FlashWrite {
    ObjectId id;
    uint8_t class_id;
    size_t bytes;
  };
  std::unique_ptr<AdmissionTier> tier;
  std::vector<FlashWrite> flash_writes;
};

TEST(AdmissionTierTest, DisabledTierStagesNothing) {
  TierFixture fx(AdmissionPolicyKind::kAdmitAll, 0);
  EXPECT_FALSE(fx.tier->enabled());
  EXPECT_FALSE(fx.tier->CanHold(1));
}

TEST(AdmissionTierTest, AdmitAllGraduatesEveryEviction) {
  TierFixture fx(AdmissionPolicyKind::kAdmitAll, 2 * kChunk);
  ASSERT_TRUE(fx.Stage(0, kChunk, 3, 0).ok());
  ASSERT_TRUE(fx.Stage(1, kChunk, 3, 1).ok());
  EXPECT_TRUE(fx.flash_writes.empty());

  // The third staging evicts the LRU victim, which graduates to flash.
  ASSERT_TRUE(fx.Stage(2, kChunk, 3, 2).ok());
  ASSERT_EQ(fx.flash_writes.size(), 1u);
  EXPECT_EQ(fx.flash_writes[0].id, Oid(0));

  const AdmissionStats& s = fx.tier->stats();
  EXPECT_EQ(s.staged, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.graduated, 1u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.graduated + s.dropped, s.evictions);
}

TEST(AdmissionTierTest, FlashinessGraduatesReusedDropsCold) {
  TierFixture fx(AdmissionPolicyKind::kFlashiness, 2 * kChunk);
  ASSERT_TRUE(fx.Stage(0, kChunk, 3, 0).ok());
  ASSERT_TRUE(fx.Stage(1, kChunk, 3, 1).ok());
  // Object 0 earns a DRAM hit (promoting it); object 1 never does.
  ASSERT_NE(fx.tier->Lookup(Oid(0), 2), nullptr);
  EXPECT_EQ(fx.tier->Lookup(Oid(9), 2), nullptr);

  // Evict both: 1 (probation, no reuse) drops; 0 (protected, one hit)
  // graduates.
  ASSERT_TRUE(fx.Stage(2, 2 * kChunk, 3, 3).ok());
  ASSERT_EQ(fx.flash_writes.size(), 1u);
  EXPECT_EQ(fx.flash_writes[0].id, Oid(0));

  const AdmissionStats& s = fx.tier->stats();
  EXPECT_EQ(s.dram_hits, 1u);
  EXPECT_EQ(s.dram_misses, 1u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.graduated, 1u);
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_EQ(s.graduated + s.dropped, s.evictions);
}

TEST(AdmissionTierTest, HotnessHookControlsGraduationClass) {
  TierFixture fx(AdmissionPolicyKind::kAdmitAll, kChunk);
  fx.tier->SetHotnessHook([](ObjectId, uint64_t, uint64_t dram_hits,
                             uint8_t staged_class) -> uint8_t {
    return dram_hits > 0 ? 2 : staged_class;
  });
  ASSERT_TRUE(fx.Stage(0, kChunk, 3, 0).ok());
  ASSERT_NE(fx.tier->Lookup(Oid(0), 1), nullptr);
  ASSERT_TRUE(fx.Stage(1, kChunk, 3, 2).ok());
  ASSERT_EQ(fx.flash_writes.size(), 1u);
  EXPECT_EQ(fx.flash_writes[0].class_id, 2) << "observed reuse -> hot clean";
}

TEST(AdmissionTierTest, FailedGraduationCountsAsDrop) {
  TierFixture fx(AdmissionPolicyKind::kAdmitAll, kChunk, /*fail_writes=*/true);
  ASSERT_TRUE(fx.Stage(0, kChunk, 3, 0).ok());
  ASSERT_TRUE(fx.Stage(1, kChunk, 3, 1).ok());
  const AdmissionStats& s = fx.tier->stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.graduated, 0u);
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_EQ(s.graduate_failures, 1u);
  EXPECT_EQ(s.graduated + s.dropped, s.evictions);
}

TEST(AdmissionTierTest, GraduateNowWritesAndMaintainsInvariant) {
  TierFixture fx(AdmissionPolicyKind::kAdmitAll, 2 * kChunk);
  ASSERT_TRUE(fx.Stage(0, kChunk, 3, 0).ok());
  ASSERT_TRUE(fx.tier->GraduateNow(Oid(0), 1, 5).ok());
  EXPECT_FALSE(fx.tier->Contains(Oid(0)));
  ASSERT_EQ(fx.flash_writes.size(), 1u);
  EXPECT_EQ(fx.flash_writes[0].class_id, 1) << "reclass forces the new class";

  const AdmissionStats& s = fx.tier->stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.graduated, 1u);
  EXPECT_EQ(s.graduated + s.dropped, s.evictions);

  EXPECT_FALSE(fx.tier->GraduateNow(Oid(0), 1, 6).ok()) << "already gone";
}

TEST(AdmissionTierTest, OversizedObjectIsRejected) {
  TierFixture fx(AdmissionPolicyKind::kAdmitAll, kChunk);
  EXPECT_FALSE(fx.Stage(0, 2 * kChunk, 3, 0).ok());
  EXPECT_EQ(fx.tier->stats().staged, 0u);
}

// ---------------------------------------------------------------------------
// Data-plane integration
// ---------------------------------------------------------------------------

struct PlaneFixture {
  PlaneFixture() {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 256 * kChunk;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                    .reo_reserve_fraction = 0.2}));
  }

  Result<DataPlaneIo> Write(uint64_t n, uint64_t logical, uint8_t cls) {
    auto payload = BackendStore::SynthesizePayload(
        Oid(n), 0, stripes->PhysicalSize(logical));
    return plane->WriteObject(Oid(n), payload, logical, cls, 0);
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
};

TEST(AdmissionPlaneTest, AdmitAllTierServesByteIdenticalReads) {
  PlaneFixture bare;
  PlaneFixture tiered;
  AdmissionConfig cfg;
  cfg.dram_bytes = 64 * kChunk;
  AdmissionTier tier(cfg);
  tiered.plane->AttachAdmission(tier);

  for (uint64_t n = 0; n < 16; ++n) {
    uint8_t cls = static_cast<uint8_t>(n % 4);
    ASSERT_TRUE(bare.Write(n, 2 * kChunk, cls).ok());
    ASSERT_TRUE(tiered.Write(n, 2 * kChunk, cls).ok());
  }
  EXPECT_GT(tier.stats().staged, 0u) << "clean classes should stage";
  EXPECT_GT(tier.stats().bypass, 0u) << "durability classes should bypass";

  for (uint64_t n = 0; n < 16; ++n) {
    auto a = bare.plane->ReadObject(Oid(n), 1);
    auto b = tiered.plane->ReadObject(Oid(n), 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->payload, b->payload) << "object " << n;
  }
}

TEST(AdmissionPlaneTest, ZeroByteTierChangesNothing) {
  PlaneFixture bare;
  PlaneFixture tiered;
  AdmissionTier tier(AdmissionConfig{});  // dram_bytes == 0
  tiered.plane->AttachAdmission(tier);

  for (uint64_t n = 0; n < 8; ++n) {
    ASSERT_TRUE(bare.Write(n, 2 * kChunk, 3).ok());
    ASSERT_TRUE(tiered.Write(n, 2 * kChunk, 3).ok());
  }
  EXPECT_EQ(tier.stats().staged, 0u);
  EXPECT_EQ(tier.dram_objects(), 0u);
  EXPECT_EQ(bare.stripes->Space().user_bytes, tiered.stripes->Space().user_bytes);
  EXPECT_EQ(bare.stripes->Space().redundancy_bytes,
            tiered.stripes->Space().redundancy_bytes);

  for (uint64_t n = 0; n < 8; ++n) {
    auto a = bare.plane->ReadObject(Oid(n), 1);
    auto b = tiered.plane->ReadObject(Oid(n), 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->payload, b->payload);
  }
}

TEST(AdmissionPlaneTest, StagedObjectLifecycle) {
  PlaneFixture fx;
  AdmissionConfig cfg;
  cfg.dram_bytes = 64 * kChunk;
  AdmissionTier tier(cfg);
  fx.plane->AttachAdmission(tier);

  // A clean write stages in DRAM: readable, healthy, not yet on flash.
  ASSERT_TRUE(fx.Write(0, 2 * kChunk, 3).ok());
  EXPECT_TRUE(tier.Contains(Oid(0)));
  EXPECT_FALSE(fx.stripes->Contains(Oid(0)));
  EXPECT_EQ(fx.plane->Health(Oid(0)), ObjectHealth::kIntact);
  auto r = fx.plane->ReadObject(Oid(0), 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(tier.stats().dram_hits, 1u);

  // Reclass to a durability class graduates immediately.
  ASSERT_TRUE(fx.plane->SetObjectClass(Oid(0), 1, 2).ok());
  EXPECT_FALSE(tier.Contains(Oid(0)));
  EXPECT_TRUE(fx.stripes->Contains(Oid(0)));
  EXPECT_EQ(tier.stats().graduated, 1u);

  // A DRAM-only object removes cleanly without ever touching flash.
  ASSERT_TRUE(fx.Write(1, 2 * kChunk, 3).ok());
  ASSERT_TRUE(fx.plane->RemoveObject(Oid(1)).ok());
  EXPECT_FALSE(tier.Contains(Oid(1)));
  EXPECT_FALSE(fx.stripes->Contains(Oid(1)));

  const AdmissionStats& s = tier.stats();
  EXPECT_EQ(s.graduated + s.dropped, s.evictions);
}

}  // namespace
}  // namespace reo
