// Randomized invariant test for the stripe manager: a long random
// interleaving of puts, overwrites, removes, re-encodes, device failures,
// replacements, and rebuilds, with a shadow model checking content and
// accounting invariants after every step.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "array/stripe_manager.h"
#include "backend/backend_store.h"
#include "common/rng.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 512;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

struct ShadowObject {
  uint64_t logical = 0;
  uint64_t version = 0;
  RedundancyLevel level = RedundancyLevel::kNone;
};

class ArrayFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  ArrayFuzz() {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 4ULL << 20;
    array_ = std::make_unique<FlashArray>(5, dev);
    stripes_ = std::make_unique<StripeManager>(
        *array_,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
  }

  std::vector<uint8_t> PayloadOf(uint64_t n, const ShadowObject& s) {
    return BackendStore::SynthesizePayload(Oid(n), s.version,
                                           stripes_->PhysicalSize(s.logical));
  }

  /// Every shadow object must be in the state the stripe manager reports,
  /// and every readable object must round-trip bit-exactly.
  void CheckInvariants() {
    uint64_t user = 0;
    for (auto& [n, s] : shadow_) {
      ASSERT_TRUE(stripes_->Contains(Oid(n))) << "object " << n;
      EXPECT_EQ(*stripes_->LevelOf(Oid(n)), s.level);
      EXPECT_EQ(*stripes_->LogicalSizeOf(Oid(n)), s.logical);
      user += s.logical;

      auto survival = stripes_->SurvivalOf(Oid(n));
      auto read = stripes_->GetObject(Oid(n), 0);
      if (survival == ObjectSurvival::kLost) {
        EXPECT_FALSE(read.ok());
      } else {
        ASSERT_TRUE(read.ok()) << "object " << n << " survival "
                               << static_cast<int>(survival);
        EXPECT_EQ(read->payload, PayloadOf(n, s)) << "object " << n;
        // An intact object never needs reconstruction; a recoverable one
        // needs it only if *data* chunks (not just parity) were lost.
        if (survival == ObjectSurvival::kIntact) {
          EXPECT_FALSE(read->degraded) << "object " << n;
        }
      }
    }
    // Byte accounting matches the shadow exactly.
    EXPECT_EQ(stripes_->user_bytes(), user);
    // Per-level redundancy sums to the global counter.
    uint64_t redundancy = 0;
    for (auto level : {RedundancyLevel::kNone, RedundancyLevel::kParity1,
                       RedundancyLevel::kParity2, RedundancyLevel::kReplicate}) {
      redundancy += stripes_->redundancy_bytes_at(level);
    }
    EXPECT_EQ(stripes_->redundancy_bytes(), redundancy);
    EXPECT_EQ(stripes_->ListObjects().size(), shadow_.size());
  }

  std::unique_ptr<FlashArray> array_;
  std::unique_ptr<StripeManager> stripes_;
  std::map<uint64_t, ShadowObject> shadow_;
};

TEST_P(ArrayFuzz, RandomOperationSoak) {
  Pcg32 rng(GetParam());
  auto random_level = [&] {
    switch (rng.NextBounded(4)) {
      case 0: return RedundancyLevel::kNone;
      case 1: return RedundancyLevel::kParity1;
      case 2: return RedundancyLevel::kParity2;
      default: return RedundancyLevel::kReplicate;
    }
  };

  for (int step = 0; step < 400; ++step) {
    uint32_t op = rng.NextBounded(100);
    uint64_t n = rng.NextBounded(24);
    if (op < 40) {
      // Put (insert or overwrite).
      ShadowObject s;
      s.logical = (1 + rng.NextBounded(20)) * (kChunk / 2);
      s.version = rng.Next();
      s.level = random_level();
      auto payload = PayloadOf(n, s);
      auto r = stripes_->PutObject(Oid(n), payload, s.logical, s.level, 0);
      if (r.ok()) {
        shadow_[n] = s;
      } else {
        // A failed put must not leave the object behind in a new state;
        // an overwrite that fails loses the object (documented).
        EXPECT_EQ(r.code(), ErrorCode::kNoSpace);
        shadow_.erase(n);
        EXPECT_FALSE(stripes_->Contains(Oid(n)));
      }
    } else if (op < 55) {
      // Remove.
      bool existed = shadow_.erase(n) > 0;
      Status st = stripes_->RemoveObject(Oid(n));
      EXPECT_EQ(st.ok(), existed);
    } else if (op < 70) {
      // Re-encode to a random level.
      auto it = shadow_.find(n);
      RedundancyLevel level = random_level();
      auto r = stripes_->ReencodeObject(Oid(n), level, 0);
      if (it == shadow_.end()) {
        EXPECT_EQ(r.code(), ErrorCode::kNotFound);
      } else if (r.ok()) {
        it->second.level = level;
      } else if (stripes_->Contains(Oid(n))) {
        // Failed but restored at the old level.
        EXPECT_EQ(*stripes_->LevelOf(Oid(n)), it->second.level);
      } else {
        shadow_.erase(it);  // re-encode failure dropped the object
      }
    } else if (op < 80) {
      // Fail a random healthy device (keep at least two alive so the test
      // keeps making progress).
      if (array_->healthy_count() > 2) {
        auto healthy = array_->HealthyDevices();
        DeviceIndex d = healthy[rng.NextBounded(static_cast<uint32_t>(healthy.size()))];
        ASSERT_TRUE(array_->FailDevice(d).ok());
        auto affected = stripes_->OnDeviceFailure(d);
        // Objects reported lost must be dropped from the cache (shadow
        // model mirrors the cache manager's reaction).
        for (const auto& a : affected) {
          if (a.survival == ObjectSurvival::kLost) {
            uint64_t key = a.id.oid - 0x20000;
            shadow_.erase(key);
            ASSERT_TRUE(stripes_->RemoveObject(a.id).ok());
          }
        }
      }
    } else if (op < 90) {
      // Replace a failed device and rebuild everything damaged.
      for (DeviceIndex d = 0; d < array_->size(); ++d) {
        if (!array_->device(d).healthy()) {
          ASSERT_TRUE(array_->ReplaceDevice(d).ok());
          break;
        }
      }
      for (ObjectId id : stripes_->DamagedObjects()) {
        auto r = stripes_->RebuildObject(id, 0);
        if (r.ok()) {
          EXPECT_EQ(stripes_->SurvivalOf(id), ObjectSurvival::kIntact);
        }
      }
    } else {
      // Rebuild one damaged object in place (onto survivors).
      auto damaged = stripes_->DamagedObjects();
      if (!damaged.empty()) {
        (void)stripes_->RebuildObject(damaged[rng.NextBounded(
                                          static_cast<uint32_t>(damaged.size()))],
                                      0);
      }
    }

    if (step % 20 == 19) CheckInvariants();
  }
  CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace reo
