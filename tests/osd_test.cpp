// OSD substrate tests: object store semantics, attribute pages, the
// control-object wire protocol, command dispatch, and Table III sense codes.
#include <gtest/gtest.h>

#include <unordered_map>

#include "osd/control_protocol.h"
#include "osd/object_store.h"
#include "osd/osd_target.h"

namespace reo {
namespace {

// --- ObjectStore -----------------------------------------------------------------

TEST(ObjectStoreTest, FormatCreatesTableIObjects) {
  ObjectStore store;
  store.Format(1 << 30);
  EXPECT_TRUE(store.Exists(kRootObject));
  EXPECT_TRUE(store.Exists(kSuperBlockObject));
  EXPECT_TRUE(store.Exists(kDeviceTableObject));
  EXPECT_TRUE(store.Exists(kRootDirectoryObject));
  EXPECT_TRUE(store.Exists(kControlObject));
  EXPECT_TRUE(store.HasPartition(kFirstUserId));
  EXPECT_EQ(store.capacity_bytes(), 1u << 30);

  auto root = store.Find(kRootObject);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->type, ObjectType::kRoot);
}

TEST(ObjectStoreTest, PartitionRules) {
  ObjectStore store;
  store.Format(1);
  EXPECT_EQ(store.CreatePartition(5).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(store.CreatePartition(kFirstUserId).code(), ErrorCode::kAlreadyExists);
  ASSERT_TRUE(store.CreatePartition(0x20000).ok());
  EXPECT_EQ(store.ListPartitions(), (std::vector<uint64_t>{0x10000, 0x20000}));
  // Each partition has a partition object with OID 0.
  EXPECT_TRUE(store.Exists(ObjectId{0x20000, 0}));
}

TEST(ObjectStoreTest, UserObjectLifecycle) {
  ObjectStore store;
  store.Format(1);
  ObjectId id{kFirstUserId, 0x20000};
  ASSERT_TRUE(store.CreateObject(id, 4096).ok());
  EXPECT_EQ(store.CreateObject(id).code(), ErrorCode::kAlreadyExists);
  auto rec = store.Find(id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->logical_size, 4096u);
  EXPECT_EQ((*rec)->type, ObjectType::kUser);
  ASSERT_TRUE(store.RemoveObject(id).ok());
  EXPECT_FALSE(store.Exists(id));
  EXPECT_EQ(store.RemoveObject(id).code(), ErrorCode::kNotFound);
}

TEST(ObjectStoreTest, ReservedObjectsCannotBeRemoved) {
  ObjectStore store;
  store.Format(1);
  for (ObjectId id : {kSuperBlockObject, kDeviceTableObject,
                      kRootDirectoryObject, kControlObject}) {
    EXPECT_EQ(store.RemoveObject(id).code(), ErrorCode::kInvalidArgument)
        << id.ToString();
    EXPECT_TRUE(store.Exists(id));
  }
}

TEST(ObjectStoreTest, CreateInMissingPartitionFails) {
  ObjectStore store;
  store.Format(1);
  EXPECT_EQ(store.CreateObject(ObjectId{0x99999, 1}).code(), ErrorCode::kNotFound);
}

TEST(ObjectStoreTest, CollectionsMembership) {
  ObjectStore store;
  store.Format(1);
  ObjectId coll{kFirstUserId, 0x30000};
  ObjectId member{kFirstUserId, 0x30001};
  ASSERT_TRUE(store.CreateCollection(coll).ok());
  ASSERT_TRUE(store.CreateObject(member).ok());
  ASSERT_TRUE(store.AddToCollection(coll, member).ok());
  EXPECT_EQ(store.AddToCollection(coll, member).code(), ErrorCode::kAlreadyExists);

  auto members = store.ListCollection(coll);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(*members, std::vector<uint64_t>{member.oid});

  // §II.A: user objects share the PID with their collections.
  ASSERT_TRUE(store.CreatePartition(0x20000).ok());
  ObjectId foreign{0x20000, 0x30001};
  ASSERT_TRUE(store.CreateObject(foreign).ok());
  EXPECT_EQ(store.AddToCollection(coll, foreign).code(), ErrorCode::kInvalidArgument);

  // Non-empty collections cannot be removed.
  EXPECT_EQ(store.RemoveCollection(coll).code(), ErrorCode::kInvalidArgument);
  ASSERT_TRUE(store.RemoveFromCollection(coll, member).ok());
  ASSERT_TRUE(store.RemoveCollection(coll).ok());
}

TEST(ObjectStoreTest, RemovingObjectLeavesCollectionsConsistent) {
  ObjectStore store;
  store.Format(1);
  ObjectId coll{kFirstUserId, 0x30000};
  ObjectId member{kFirstUserId, 0x30001};
  ASSERT_TRUE(store.CreateCollection(coll).ok());
  ASSERT_TRUE(store.CreateObject(member).ok());
  ASSERT_TRUE(store.AddToCollection(coll, member).ok());
  ASSERT_TRUE(store.RemoveObject(member).ok());
  auto members = store.ListCollection(coll);
  ASSERT_TRUE(members.ok());
  EXPECT_TRUE(members->empty());
}

TEST(ObjectStoreTest, ListObjects) {
  ObjectStore store;
  store.Format(1);
  ASSERT_TRUE(store.CreateObject(ObjectId{kFirstUserId, 0x50000}).ok());
  ASSERT_TRUE(store.CreateObject(ObjectId{kFirstUserId, 0x50001}).ok());
  auto oids = store.ListObjects(kFirstUserId);
  // 4 reserved (Table I) + 2 created.
  EXPECT_EQ(oids.size(), 6u);
}

// --- AttributeStore ----------------------------------------------------------------

TEST(AttributeStoreTest, SetGetU64) {
  AttributeStore attrs;
  attrs.SetU64(kAttrClassId, 2);
  auto v = attrs.GetU64(kAttrClassId);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2u);
  EXPECT_FALSE(attrs.GetU64(kAttrDirty).has_value());
}

TEST(AttributeStoreTest, RawBytesRoundTrip) {
  AttributeStore attrs;
  std::vector<uint8_t> value{1, 2, 3};
  attrs.Set(AttributeId{7, 9}, value);
  auto got = attrs.Get(AttributeId{7, 9});
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(std::equal(got->begin(), got->end(), value.begin(), value.end()));
}

TEST(AttributeStoreTest, RemoveAndListPage) {
  AttributeStore attrs;
  attrs.SetU64(kAttrClassId, 1);
  attrs.SetU64(kAttrReadFreq, 5);
  attrs.SetU64(AttributeId{99, 1}, 7);
  auto page = attrs.ListPage(kReoAttributePage);
  EXPECT_EQ(page.size(), 2u);
  ASSERT_TRUE(attrs.Remove(kAttrClassId).ok());
  EXPECT_EQ(attrs.Remove(kAttrClassId).code(), ErrorCode::kNotFound);
  EXPECT_EQ(attrs.ListPage(kReoAttributePage).size(), 1u);
}

// --- Control protocol (paper §IV.C.2) -------------------------------------------

TEST(ControlProtocolTest, SetIdRoundTrip) {
  SetIdCommand cmd{.target = {0x10000, 0x10123}, .class_id = 2};
  auto wire = EncodeControlMessage(ControlMessage{cmd});
  std::string s(wire.begin(), wire.end());
  EXPECT_TRUE(s.starts_with("#SETID#"));
  auto decoded = DecodeControlMessage(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<SetIdCommand>(*decoded), cmd);
}

TEST(ControlProtocolTest, QueryRoundTrip) {
  QueryCommand cmd{.target = {0x10000, 0x42}, .is_write = true, .offset = 128,
                   .size = 4096};
  auto wire = EncodeControlMessage(ControlMessage{cmd});
  std::string s(wire.begin(), wire.end());
  EXPECT_TRUE(s.starts_with("#QUERY#"));
  EXPECT_NE(s.find(":W:"), std::string::npos);
  auto decoded = DecodeControlMessage(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<QueryCommand>(*decoded), cmd);
}

TEST(ControlProtocolTest, ReadQueryEncodesR) {
  QueryCommand cmd{.target = {1, 2}, .is_write = false, .offset = 0, .size = 1};
  auto wire = EncodeControlMessage(ControlMessage{cmd});
  std::string s(wire.begin(), wire.end());
  EXPECT_NE(s.find(":R:"), std::string::npos);
}

TEST(ControlProtocolTest, MalformedInputsRejected) {
  for (const char* bad :
       {"", "#NOPE#:1:2:3", "#SETID#:1:2", "#SETID#:1:2:3:4", "#SETID#:x:2:3",
        "#SETID#:1:2:999", "#QUERY#:1:2:R:0", "#QUERY#:1:2:Z:0:1",
        "#QUERY#:1:2:R:abc:1"}) {
    std::string s(bad);
    auto r = DecodeControlMessage(
        std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
    EXPECT_FALSE(r.ok()) << "input: " << bad;
  }
}

// --- OsdTarget with a fake data plane --------------------------------------------

/// Minimal in-memory data plane for target-dispatch tests.
class FakeDataPlane final : public DataPlane {
 public:
  Result<DataPlaneIo> WriteObject(ObjectId id, std::span<const uint8_t> payload,
                                  uint64_t logical, uint8_t class_id,
                                  SimTime now) override {
    if (full_) return Status{ErrorCode::kNoSpace, "full"};
    auto& o = objects_[id];
    o.payload.assign(payload.begin(), payload.end());
    o.logical = logical;
    o.class_id = class_id;
    o.health = ObjectHealth::kIntact;
    return DataPlaneIo{.complete = now + 10};
  }
  Result<DataPlaneIo> ReadObject(ObjectId id, SimTime now) override {
    auto it = objects_.find(id);
    if (it == objects_.end()) return Status{ErrorCode::kNotFound, ""};
    if (it->second.health == ObjectHealth::kLost) {
      return Status{ErrorCode::kUnrecoverable, ""};
    }
    DataPlaneIo io;
    io.complete = now + 5;
    io.degraded = it->second.health == ObjectHealth::kDegraded;
    io.payload.assign(it->second.payload.begin(), it->second.payload.end());
    return io;
  }
  Status RemoveObject(ObjectId id) override {
    return objects_.erase(id) ? Status::Ok()
                              : Status{ErrorCode::kNotFound, ""};
  }
  Status SetObjectClass(ObjectId id, uint8_t class_id, SimTime) override {
    auto it = objects_.find(id);
    if (it == objects_.end()) return {ErrorCode::kNotFound, ""};
    if (reserve_full_) return {ErrorCode::kNoSpace, "reserve"};
    it->second.class_id = class_id;
    return Status::Ok();
  }
  ObjectHealth Health(ObjectId id) const override {
    auto it = objects_.find(id);
    return it == objects_.end() ? ObjectHealth::kAbsent : it->second.health;
  }
  bool recovery_active() const override { return recovering_; }
  bool HasSpaceFor(uint64_t, uint8_t) const override { return !full_; }

  struct Obj {
    std::vector<uint8_t> payload;
    uint64_t logical = 0;
    uint8_t class_id = 3;
    ObjectHealth health = ObjectHealth::kIntact;
  };
  std::unordered_map<ObjectId, Obj, ObjectIdHash> objects_;
  bool full_ = false;
  bool reserve_full_ = false;
  bool recovering_ = false;
};

class OsdTargetTest : public ::testing::Test {
 protected:
  OsdTargetTest() : target_(plane_) {
    OsdCommand format;
    format.op = OsdOp::kFormat;
    format.capacity_bytes = 1 << 30;
    (void)target_.Execute(format);
  }

  OsdResponse Create(ObjectId id, uint64_t size = 100) {
    OsdCommand c;
    c.op = OsdOp::kCreate;
    c.id = id;
    c.logical_size = size;
    return target_.Execute(c);
  }
  OsdResponse Write(ObjectId id, std::vector<uint8_t> data, uint64_t size) {
    OsdCommand c;
    c.op = OsdOp::kWrite;
    c.id = id;
    c.data = std::move(data);
    c.logical_size = size;
    return target_.Execute(c);
  }
  OsdResponse Control(const ControlMessage& msg) {
    OsdCommand c;
    c.op = OsdOp::kWrite;
    c.id = kControlObject;
    c.data = EncodeControlMessage(msg);
    return target_.Execute(c);
  }

  FakeDataPlane plane_;
  OsdTarget target_;
  ObjectId obj_{kFirstUserId, 0x20000};
};

TEST_F(OsdTargetTest, CreateWriteReadRemove) {
  ASSERT_TRUE(Create(obj_).ok());
  ASSERT_TRUE(Write(obj_, {1, 2, 3}, 3).ok());

  OsdCommand read;
  read.op = OsdOp::kRead;
  read.id = obj_;
  auto resp = target_.Execute(read);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.data, (std::vector<uint8_t>{1, 2, 3}));

  OsdCommand rm;
  rm.op = OsdOp::kRemove;
  rm.id = obj_;
  EXPECT_TRUE(target_.Execute(rm).ok());
  EXPECT_EQ(target_.Execute(read).sense, SenseCode::kFail);
}

TEST_F(OsdTargetTest, WriteToMissingObjectFails) {
  EXPECT_EQ(Write(obj_, {1}, 1).sense, SenseCode::kFail);
}

TEST_F(OsdTargetTest, WriteWhenFullReturnsCacheFull) {
  ASSERT_TRUE(Create(obj_).ok());
  plane_.full_ = true;
  EXPECT_EQ(Write(obj_, {1}, 1).sense, SenseCode::kCacheFull);
}

TEST_F(OsdTargetTest, WriteUsesClassAttribute) {
  ASSERT_TRUE(Create(obj_).ok());
  ASSERT_TRUE(Control(SetIdCommand{.target = obj_, .class_id = 1}).ok());
  ASSERT_TRUE(Write(obj_, {9}, 1).ok());
  EXPECT_EQ(plane_.objects_[obj_].class_id, 1);
}

TEST_F(OsdTargetTest, SetIdBeforeWriteIsAccepted) {
  ASSERT_TRUE(Create(obj_).ok());
  // Object exists in metadata but not in the data plane yet.
  EXPECT_EQ(Control(SetIdCommand{.target = obj_, .class_id = 2}).sense,
            SenseCode::kOk);
}

TEST_F(OsdTargetTest, SetIdOnUnknownObjectFails) {
  EXPECT_EQ(Control(SetIdCommand{.target = obj_, .class_id = 2}).sense,
            SenseCode::kFail);
}

TEST_F(OsdTargetTest, SetIdReserveFullIs0x67) {
  ASSERT_TRUE(Create(obj_).ok());
  ASSERT_TRUE(Write(obj_, {1}, 1).ok());
  plane_.reserve_full_ = true;
  EXPECT_EQ(Control(SetIdCommand{.target = obj_, .class_id = 2}).sense,
            SenseCode::kRedundancyFull);
}

TEST_F(OsdTargetTest, QueryReadSenses) {
  ASSERT_TRUE(Create(obj_).ok());
  ASSERT_TRUE(Write(obj_, {1}, 1).ok());
  auto query = [&](ObjectHealth h) {
    plane_.objects_[obj_].health = h;
    return Control(QueryCommand{.target = obj_, .is_write = false, .size = 1}).sense;
  };
  EXPECT_EQ(query(ObjectHealth::kIntact), SenseCode::kOk);
  EXPECT_EQ(query(ObjectHealth::kDegraded), SenseCode::kOk);
  EXPECT_EQ(query(ObjectHealth::kLost), SenseCode::kCorrupted);
  plane_.objects_.erase(obj_);
  EXPECT_EQ(
      Control(QueryCommand{.target = obj_, .is_write = false, .size = 1}).sense,
      SenseCode::kFail);
}

TEST_F(OsdTargetTest, QueryWriteReportsCacheFull) {
  ASSERT_TRUE(Create(obj_).ok());
  EXPECT_EQ(
      Control(QueryCommand{.target = obj_, .is_write = true, .size = 10}).sense,
      SenseCode::kOk);
  plane_.full_ = true;
  EXPECT_EQ(
      Control(QueryCommand{.target = obj_, .is_write = true, .size = 10}).sense,
      SenseCode::kCacheFull);
}

TEST_F(OsdTargetTest, ControlObjectQueryReportsRecoveryState) {
  auto q = QueryCommand{.target = kControlObject, .is_write = false, .size = 0};
  EXPECT_EQ(Control(q).sense, SenseCode::kOk);
  plane_.recovering_ = true;
  EXPECT_EQ(Control(q).sense, SenseCode::kRecoveryStarts);
}

TEST_F(OsdTargetTest, MalformedControlMessageFails) {
  OsdCommand c;
  c.op = OsdOp::kWrite;
  c.id = kControlObject;
  std::string junk = "#BOGUS#:1";
  c.data.assign(junk.begin(), junk.end());
  EXPECT_EQ(target_.Execute(c).sense, SenseCode::kFail);
}

TEST_F(OsdTargetTest, AttrCommands) {
  ASSERT_TRUE(Create(obj_).ok());
  OsdCommand set;
  set.op = OsdOp::kSetAttr;
  set.id = obj_;
  set.attr = kAttrReadFreq;
  set.attr_value = {42, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_TRUE(target_.Execute(set).ok());

  OsdCommand get;
  get.op = OsdOp::kGetAttr;
  get.id = obj_;
  get.attr = kAttrReadFreq;
  auto resp = target_.Execute(get);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.attr_value, set.attr_value);

  get.attr = kAttrDirty;  // never set
  EXPECT_EQ(target_.Execute(get).sense, SenseCode::kFail);
}

TEST_F(OsdTargetTest, ListAndCollections) {
  ASSERT_TRUE(Create(obj_).ok());
  OsdCommand list;
  list.op = OsdOp::kList;
  list.id = ObjectId{kFirstUserId, 0};
  auto resp = target_.Execute(list);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.list.size(), 5u);  // 4 reserved + 1 created

  OsdCommand coll;
  coll.op = OsdOp::kCreateCollection;
  coll.id = ObjectId{kFirstUserId, 0x60000};
  ASSERT_TRUE(target_.Execute(coll).ok());
  coll.op = OsdOp::kListCollection;
  auto members = target_.Execute(coll);
  ASSERT_TRUE(members.ok());
  EXPECT_TRUE(members.list.empty());
  coll.op = OsdOp::kRemoveCollection;
  EXPECT_TRUE(target_.Execute(coll).ok());
}

TEST_F(OsdTargetTest, StatsCount) {
  ASSERT_TRUE(Create(obj_).ok());
  ASSERT_TRUE(Write(obj_, {1}, 1).ok());
  OsdCommand read;
  read.op = OsdOp::kRead;
  read.id = obj_;
  (void)target_.Execute(read);
  (void)Control(QueryCommand{.target = obj_, .is_write = false, .size = 1});
  const auto& st = target_.stats();
  EXPECT_EQ(st.reads, 1u);
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.control_messages, 1u);
  EXPECT_GE(st.commands, 4u);
}

}  // namespace
}  // namespace reo
