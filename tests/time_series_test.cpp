// TimeSeriesRing: window boundary math, rollover, gap fast-forward,
// per-window percentiles, JSON export shape — plus the JsonDoc reader the
// admin tooling uses to consume that export.
#include "telemetry/time_series.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/json_scan.h"
#include "trace/json_lint.h"

namespace reo {
namespace {

constexpr uint64_t kMs = 1'000'000;  // ns

TimeSeriesConfig SmallCfg(uint64_t window_ms = 10, size_t capacity = 4) {
  TimeSeriesConfig cfg;
  cfg.window_ns = window_ms * kMs;
  cfg.capacity = capacity;
  return cfg;
}

TEST(TimeSeriesTest, CounterDeltasLandInTheRightWindows) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("server.requests");
  TimeSeriesRing ring(SmallCfg());
  ring.TrackCounter("server.requests", &c);

  ring.Advance(0);  // epoch: opens [0, 10ms)
  c.Inc(5);
  ring.Advance(10 * kMs);  // closes [0,10): delta 5
  c.Inc(7);
  ring.Advance(9 * kMs);   // before epoch of open window? no-op (monotone)
  ring.Advance(20 * kMs);  // closes [10,20): delta 7

  EXPECT_EQ(ring.windows(), 2u);
  std::vector<double> v = ring.Values("server.requests");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 5.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  std::vector<uint64_t> t = ring.WindowStartMs();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], 0u);
  EXPECT_EQ(t[1], 10u);
}

TEST(TimeSeriesTest, BoundaryIsHalfOpen) {
  // A window [s, s+W) closes exactly when now reaches s+W, not before.
  MetricRegistry reg;
  Counter& c = reg.GetCounter("x");
  TimeSeriesRing ring(SmallCfg());
  ring.TrackCounter("x", &c);

  ring.Advance(0);
  c.Inc(1);
  ring.Advance(10 * kMs - 1);  // one ns short: still open
  EXPECT_EQ(ring.windows(), 0u);
  ring.Advance(10 * kMs);  // exactly the edge: closes
  EXPECT_EQ(ring.windows(), 1u);

  // Multiple whole windows elapse in one call: each closes; the delta
  // lands in the first (re-reads between closes see no new increments).
  c.Inc(9);
  ring.Advance(40 * kMs);
  EXPECT_EQ(ring.windows(), 4u);
  std::vector<double> v = ring.Values("x");
  EXPECT_DOUBLE_EQ(v[1], 9.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(TimeSeriesTest, RolloverKeepsNewestCapacityWindows) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("x");
  TimeSeriesRing ring(SmallCfg(10, 4));
  ring.TrackCounter("x", &c);

  ring.Advance(0);
  for (int w = 1; w <= 7; ++w) {
    c.Inc(static_cast<uint64_t>(w));
    ring.Advance(static_cast<uint64_t>(w) * 10 * kMs);
  }
  // 7 windows closed with deltas 1..7; only the last 4 retained.
  EXPECT_EQ(ring.windows(), 4u);
  std::vector<double> v = ring.Values("x");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 4.0);
  EXPECT_DOUBLE_EQ(v[3], 7.0);
  std::vector<uint64_t> t = ring.WindowStartMs();
  EXPECT_EQ(t[0], 30u);
  EXPECT_EQ(t[3], 60u);
  EXPECT_EQ(ring.skipped_windows(), 0u);  // rollover is not a gap

  // max_windows trims from the oldest side.
  std::vector<double> last2 = ring.Values("x", 2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_DOUBLE_EQ(last2[0], 6.0);
  EXPECT_DOUBLE_EQ(last2[1], 7.0);
}

TEST(TimeSeriesTest, LongStallFastForwardsAndCountsSkippedWindows) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("x");
  TimeSeriesRing ring(SmallCfg(10, 4));
  ring.TrackCounter("x", &c);

  ring.Advance(0);
  c.Inc(100);
  // 1000 windows elapse in one call: only capacity materialize, the rest
  // are accounted, and the whole stalled delta lands in the first
  // materialized window. Cost is O(capacity), not O(elapsed).
  ring.Advance(10'000 * kMs);
  EXPECT_EQ(ring.windows(), 4u);
  EXPECT_EQ(ring.skipped_windows(), 996u);
  std::vector<double> v = ring.Values("x");
  EXPECT_DOUBLE_EQ(v[0], 100.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);

  // Timeline stays aligned after the jump: next window continues from now.
  c.Inc(3);
  ring.Advance(10'010 * kMs);
  EXPECT_DOUBLE_EQ(ring.Values("x").back(), 3.0);
  std::vector<uint64_t> t = ring.WindowStartMs();
  for (size_t i = 1; i < t.size(); ++i) EXPECT_GT(t[i], t[i - 1]);
}

TEST(TimeSeriesTest, GaugeIsSampledNotDeltaed) {
  MetricRegistry reg;
  Gauge& g = reg.GetGauge("server.connections.active");
  TimeSeriesRing ring(SmallCfg());
  ring.TrackGauge("conns", &g);

  ring.Advance(0);
  g.Set(3.0);
  ring.Advance(10 * kMs);
  // No further Set: the level carries forward into later windows.
  ring.Advance(30 * kMs);
  std::vector<double> v = ring.Values("conns");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 3.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(TimeSeriesTest, RatioIsDeltaOverDeltaAndEmptyWindowIsNaN) {
  MetricRegistry reg;
  Counter& miss = reg.GetCounter("osd.read_misses");
  Counter& reads = reg.GetCounter("osd.reads");
  TimeSeriesRing ring(SmallCfg());
  ring.TrackRatio("miss_ratio", {&miss}, {&reads});

  // Pre-epoch traffic must not leak into the first window.
  miss.Inc(1000);
  reads.Inc(1000);
  ring.Advance(0);

  miss.Inc(1);
  reads.Inc(4);
  ring.Advance(10 * kMs);  // 1/4
  ring.Advance(20 * kMs);  // no ops: NaN window
  std::vector<double> v = ring.Values("miss_ratio");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_TRUE(std::isnan(v[1]));
}

TEST(TimeSeriesTest, MultiCounterRatioSumsBothSides) {
  MetricRegistry reg;
  Counter& w0 = reg.GetCounter("flash.dev0.writes");
  Counter& w1 = reg.GetCounter("flash.dev1.writes");
  Counter& ops = reg.GetCounter("server.requests");
  TimeSeriesRing ring(SmallCfg());
  ring.TrackRatio("flash.writes_per_op", {&w0, &w1}, {&ops});

  ring.Advance(0);
  w0.Inc(6);
  w1.Inc(4);
  ops.Inc(5);
  ring.Advance(10 * kMs);
  std::vector<double> v = ring.Values("flash.writes_per_op");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
}

TEST(TimeSeriesTest, HistogramTracksPerWindowPercentiles) {
  MetricRegistry reg;
  ShardedHistogram& h = reg.GetHistogram("server.latency.read_us");
  TimeSeriesRing ring(SmallCfg());
  ring.TrackHistogram("server.latency.read_us", &h);

  ring.Advance(0);
  for (int i = 0; i < 100; ++i) h.Add(100.0);
  ring.Advance(10 * kMs);
  for (int i = 0; i < 100; ++i) h.Add(10000.0);
  ring.Advance(20 * kMs);

  std::vector<double> p50 = ring.Values("server.latency.read_us.p50");
  std::vector<double> count = ring.Values("server.latency.read_us.count");
  ASSERT_EQ(p50.size(), 2u);
  // Per-window percentiles reflect only that window's samples: the slow
  // second window must not be averaged down by the fast first one.
  EXPECT_NEAR(p50[0], 100.0, 100.0 * 0.10);
  EXPECT_GT(p50[1], 5000.0);
  EXPECT_DOUBLE_EQ(count[0], 100.0);
  EXPECT_DOUBLE_EQ(count[1], 100.0);
  std::vector<double> p99 = ring.Values("server.latency.read_us.p99");
  EXPECT_GE(p99[1], p50[1]);
}

TEST(TimeSeriesTest, ToJsonIsWellFormedAndRoundTrips) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("server.requests");
  Counter& miss = reg.GetCounter("osd.read_misses");
  Counter& reads = reg.GetCounter("osd.reads");
  ShardedHistogram& h = reg.GetHistogram("server.latency.read_us");
  TimeSeriesRing ring(SmallCfg());
  ring.TrackCounter("server.requests", &c);
  ring.TrackRatio("osd.read_miss_ratio", {&miss}, {&reads});
  ring.TrackHistogram("server.latency.read_us", &h);

  ring.Advance(0);
  c.Inc(42);
  h.Add(100.0);
  ring.Advance(10 * kMs);
  ring.Advance(20 * kMs);  // empty window: ratio NaN -> null

  std::string json = ring.ToJson();
  JsonLintResult lint = LintJson(json);
  EXPECT_TRUE(lint.ok) << lint.error << "\n" << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;

  auto doc = JsonDoc::Parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  EXPECT_EQ(doc->str(doc->Find({"schema"})), "reo.series.v1");
  EXPECT_DOUBLE_EQ(doc->number(doc->Find({"window_ms"})), 10.0);
  EXPECT_DOUBLE_EQ(doc->number(doc->Find({"windows"})), 2.0);
  std::vector<double> reqs =
      doc->NumberArray(doc->Find({"series", "server.requests"}));
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_DOUBLE_EQ(reqs[0], 42.0);
  std::vector<double> ratio =
      doc->NumberArray(doc->Find({"series", "osd.read_miss_ratio"}));
  ASSERT_EQ(ratio.size(), 2u);
  EXPECT_TRUE(std::isnan(ratio[1]));  // null decodes as NaN
  EXPECT_EQ(doc->NumberArray(doc->Find({"t_ms"})).size(), 2u);
}

TEST(TimeSeriesTest, TrackServingDefaultsWiresTheStandardColumns) {
  MetricRegistry reg;
  TimeSeriesRing ring(SmallCfg(10, 8));
  TrackServingDefaults(reg, ring, 3);

  ring.Advance(0);
  reg.GetCounter("server.requests").Inc(10);
  reg.GetCounter("osd.reads").Inc(8);
  reg.GetCounter("osd.read_misses").Inc(2);
  reg.GetCounter("flash.dev0.writes").Inc(3);
  reg.GetCounter("flash.dev2.writes").Inc(2);
  reg.GetHistogram("server.latency.read_us").Add(120.0);
  ring.Advance(10 * kMs);

  EXPECT_DOUBLE_EQ(ring.Values("server.requests")[0], 10.0);
  EXPECT_DOUBLE_EQ(ring.Values("osd.read_miss_ratio")[0], 0.25);
  EXPECT_DOUBLE_EQ(ring.Values("flash.writes_per_op")[0], 0.5);
  EXPECT_EQ(ring.Values("server.latency.read_us.count").size(), 1u);
  EXPECT_GT(ring.columns(), 20u);
  EXPECT_EQ(reg.name_collisions(), 0u);
}

TEST(TimeSeriesTest, ConcurrentAdvanceAndExportStaysConsistent) {
  // The server's poll timer advances while admin connections export: no
  // torn windows, no crashes, every export parses.
  MetricRegistry reg;
  Counter& c = reg.GetCounter("server.requests");
  ShardedHistogram& h = reg.GetHistogram("server.latency.read_us");
  TimeSeriesRing ring(SmallCfg(1, 16));
  ring.TrackCounter("server.requests", &c);
  ring.TrackHistogram("server.latency.read_us", &h);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t now = 0;
    while (!stop.load(std::memory_order_acquire)) {
      c.Inc();
      h.Add(50.0);
      now += kMs;
      ring.Advance(now);
    }
  });
  for (int i = 0; i < 200; ++i) {
    std::string json = ring.ToJson(8);
    auto doc = JsonDoc::Parse(json);
    ASSERT_TRUE(doc.has_value()) << json;
    size_t windows =
        static_cast<size_t>(doc->number(doc->Find({"windows"})));
    EXPECT_LE(windows, 16u);
    EXPECT_EQ(doc->NumberArray(doc->Find({"t_ms"})).size(),
              std::min<size_t>(windows, 8u));
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

// --- JsonDoc reader edge cases (the admin tooling's parse path).

TEST(JsonScanTest, ParsesScalarsStringsAndNesting) {
  auto doc = JsonDoc::Parse(
      " {\"a\":1.5e2, \"b\":[true,false,null,\"x\\n\\u0041\"],"
      "\"c\":{\"d.dotted\":-7}} ");
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->number(doc->Find({"a"})), 150.0);
  int b = doc->Find({"b"});
  ASSERT_EQ(doc->size(b), 4u);
  EXPECT_TRUE(doc->boolean(doc->item(b, 0)));
  EXPECT_EQ(doc->type(doc->item(b, 2)), JsonDoc::Type::kNull);
  EXPECT_EQ(doc->str(doc->item(b, 3)), "x\nA");
  // Dotted keys look up exactly (metric names carry dots).
  EXPECT_DOUBLE_EQ(doc->number(doc->Find({"c", "d.dotted"})), -7.0);
}

TEST(JsonScanTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonDoc::Parse("").has_value());
  EXPECT_FALSE(JsonDoc::Parse("{").has_value());
  EXPECT_FALSE(JsonDoc::Parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(JsonDoc::Parse("[1,2,]").has_value());
  EXPECT_FALSE(JsonDoc::Parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(JsonDoc::Parse("01").has_value());
  EXPECT_FALSE(JsonDoc::Parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(JsonDoc::Parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonDoc::Parse("{\"a\":\"\x01\"}").has_value());
  EXPECT_FALSE(JsonDoc::Parse("nul").has_value());
  // Depth bomb: deeper than kMaxDepth must fail cleanly, not overflow.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonDoc::Parse(deep).has_value());
}

TEST(JsonScanTest, MissingLookupsAreInvalidNotUb) {
  auto doc = JsonDoc::Parse("{\"a\":[1]}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find({"zzz"}), JsonDoc::kInvalid);
  EXPECT_EQ(doc->Find({"a", "b"}), JsonDoc::kInvalid);  // array, not object
  EXPECT_EQ(doc->item(doc->Find({"a"}), 5), JsonDoc::kInvalid);
  EXPECT_DOUBLE_EQ(doc->number(JsonDoc::kInvalid), 0.0);
  EXPECT_EQ(doc->str(JsonDoc::kInvalid), "");
  EXPECT_EQ(doc->size(JsonDoc::kInvalid), 0u);
}

}  // namespace
}  // namespace reo
