// exofs-layer tests: mkfs/mount, directory tree persistence, file IO, and
// interaction with the differentiated-redundancy data plane underneath.
#include <gtest/gtest.h>

#include <memory>

#include "core/data_plane.h"
#include "osd/exofs.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 1024;

struct ExofsFixture {
  ExofsFixture() {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 1 << 20;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                    .reo_reserve_fraction = 0.3}));
    target = std::make_unique<OsdTarget>(*plane);
    initiator = std::make_unique<OsdInitiator>(*target);
    fs = std::make_unique<ExofsClient>(
        *initiator, [this](uint64_t l) { return stripes->PhysicalSize(l); });
  }

  std::vector<uint8_t> Bytes(const std::string& s) {
    return {s.begin(), s.end()};
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<OsdTarget> target;
  std::unique_ptr<OsdInitiator> initiator;
  std::unique_ptr<ExofsClient> fs;
};

TEST(ExofsTest, MkFsAndMount) {
  ExofsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  EXPECT_TRUE(fx.fs->mounted());
  auto root = fx.fs->ReadDir("/", 0);
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->empty());

  // A second client mounts the same volume and sees the same state.
  ExofsClient other(*fx.initiator,
                    [&](uint64_t l) { return fx.stripes->PhysicalSize(l); });
  ASSERT_TRUE(other.Mount(0).ok());
  EXPECT_EQ(other.next_oid(), fx.fs->next_oid());
}

TEST(ExofsTest, MountWithoutMkFsFails) {
  ExofsFixture fx;
  EXPECT_FALSE(fx.fs->Mount(0).ok());
  EXPECT_EQ(fx.fs->Mkdir("/a", 0).code(), ErrorCode::kUnavailable);
}

TEST(ExofsTest, DirectoryTree) {
  ExofsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  ASSERT_TRUE(fx.fs->Mkdir("/media", 0).ok());
  ASSERT_TRUE(fx.fs->Mkdir("/media/videos", 0).ok());
  ASSERT_TRUE(fx.fs->Mkdir("/logs", 0).ok());
  EXPECT_EQ(fx.fs->Mkdir("/media", 0).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fx.fs->Mkdir("/nope/sub", 0).code(), ErrorCode::kNotFound);

  auto root = fx.fs->ReadDir("/", 0);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->size(), 2u);
  auto media = fx.fs->ReadDir("/media", 0);
  ASSERT_TRUE(media.ok());
  ASSERT_EQ(media->size(), 1u);
  EXPECT_EQ((*media)[0].name, "videos");
  EXPECT_TRUE((*media)[0].is_directory);
}

TEST(ExofsTest, FileWriteReadRoundTrip) {
  ExofsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  ASSERT_TRUE(fx.fs->Mkdir("/data", 0).ok());

  auto content = fx.Bytes("hello object storage; exofs stores files as user objects");
  ASSERT_TRUE(fx.fs->WriteFile("/data/greeting.txt", content, content.size(), 0).ok());

  auto read = fx.fs->ReadFile("/data/greeting.txt", 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);

  auto ent = fx.fs->Lookup("/data/greeting.txt", 0);
  ASSERT_TRUE(ent.ok());
  EXPECT_FALSE(ent->is_directory);
  EXPECT_EQ(ent->size, content.size());
  // The file lives as a user object above the reserved OID range.
  EXPECT_GE(ent->object.oid, 0x20000u);
}

TEST(ExofsTest, OverwriteUpdatesSize) {
  ExofsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  auto small = fx.Bytes("v1");
  auto big = fx.Bytes(std::string(3000, 'x'));
  ASSERT_TRUE(fx.fs->WriteFile("/f", small, small.size(), 0).ok());
  ASSERT_TRUE(fx.fs->WriteFile("/f", big, big.size(), 0).ok());
  auto read = fx.fs->ReadFile("/f", 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, big);
  EXPECT_EQ(fx.fs->Lookup("/f", 0)->size, big.size());
}

TEST(ExofsTest, UnlinkSemantics) {
  ExofsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  ASSERT_TRUE(fx.fs->Mkdir("/d", 0).ok());
  auto c = fx.Bytes("x");
  ASSERT_TRUE(fx.fs->WriteFile("/d/f", c, 1, 0).ok());

  // Non-empty directory is protected.
  EXPECT_EQ(fx.fs->Unlink("/d", 0).code(), ErrorCode::kInvalidArgument);
  ASSERT_TRUE(fx.fs->Unlink("/d/f", 0).ok());
  EXPECT_EQ(fx.fs->ReadFile("/d/f", 0).code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fx.fs->Unlink("/d", 0).ok());
  EXPECT_EQ(fx.fs->ReadDir("/d", 0).code(), ErrorCode::kNotFound);
  EXPECT_EQ(fx.fs->Unlink("/never", 0).code(), ErrorCode::kNotFound);
}

TEST(ExofsTest, PathValidation) {
  ExofsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  EXPECT_EQ(fx.fs->Mkdir("relative/path", 0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fx.fs->Mkdir("/bad name", 0).code(), ErrorCode::kInvalidArgument);
  auto root = fx.fs->Lookup("/", 0);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->object, kRootDirectoryObject);
}

TEST(ExofsTest, NamespaceSurvivesRemount) {
  ExofsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  ASSERT_TRUE(fx.fs->Mkdir("/a", 0).ok());
  auto c = fx.Bytes("persistent");
  ASSERT_TRUE(fx.fs->WriteFile("/a/f", c, c.size(), 0).ok());

  ExofsClient again(*fx.initiator,
                    [&](uint64_t l) { return fx.stripes->PhysicalSize(l); });
  ASSERT_TRUE(again.Mount(0).ok());
  auto read = again.ReadFile("/a/f", 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, c);
  // OID allocation continues past existing objects.
  ASSERT_TRUE(again.WriteFile("/a/g", c, c.size(), 0).ok());
  EXPECT_NE(again.Lookup("/a/g", 0)->object, again.Lookup("/a/f", 0)->object);
}

TEST(ExofsTest, MetadataSurvivesDeviceFailures) {
  // The superblock and directories are Class-0-style metadata — but here
  // they are written unclassified (cold). The *reserved* superblock and
  // root directory objects written by MkFs land on the data plane like
  // any object; protect them by classifying as metadata first.
  ExofsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  for (ObjectId id : {kSuperBlockObject, kRootDirectoryObject}) {
    EXPECT_EQ(fx.initiator->SetClassId(id, 0, 0), SenseCode::kOk);
  }
  ASSERT_TRUE(fx.array->FailDevice(0).ok());
  (void)fx.stripes->OnDeviceFailure(0);

  ExofsClient again(*fx.initiator,
                    [&](uint64_t l) { return fx.stripes->PhysicalSize(l); });
  EXPECT_TRUE(again.Mount(0).ok());
  EXPECT_TRUE(again.ReadDir("/", 0).ok());
}

TEST(ExofsTest, ManyFilesStressNamespace) {
  ExofsFixture fx;
  ASSERT_TRUE(fx.fs->MkFs(5 << 20, 0).ok());
  ASSERT_TRUE(fx.fs->Mkdir("/bulk", 0).ok());
  for (int i = 0; i < 40; ++i) {
    auto c = fx.Bytes("file-" + std::to_string(i));
    ASSERT_TRUE(fx.fs->WriteFile("/bulk/f" + std::to_string(i), c, c.size(), 0).ok())
        << i;
  }
  auto dir = fx.fs->ReadDir("/bulk", 0);
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->size(), 40u);
  for (int i = 0; i < 40; i += 7) {
    auto read = fx.fs->ReadFile("/bulk/f" + std::to_string(i), 0);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, fx.Bytes("file-" + std::to_string(i)));
  }
}

}  // namespace
}  // namespace reo
