// Fault-injection subsystem tests: spec parsing, injector determinism,
// fail-slow detection, retry policies, and the partial-failure handling
// they drive end to end — degraded reads per redundancy class, transient
// I/O retry, failure-atomic overwrites, fail-slow demotion, scrubber
// accounting, and persistence commit faults.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend_store.h"
#include "core/cache_manager.h"
#include "fault/failslow.h"
#include "fault/fault_injector.h"
#include "fault/fault_spec.h"
#include "fault/retry.h"
#include "persist/persistence.h"
#include "sim/cache_simulator.h"
#include "trace/event_log.h"
#include "workload/medisyn.h"

namespace reo {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kChunk = 1024;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x30000 + n}; }

FaultSpec MustParse(const std::string& json) {
  auto spec = ParseFaultSpec(json);
  EXPECT_TRUE(spec.ok()) << spec.status().to_string();
  return spec.ok() ? *spec : FaultSpec{};
}

// --- Spec parsing -----------------------------------------------------------

TEST(FaultSpecTest, ParsesFullSpec) {
  FaultSpec spec = MustParse(R"({
    "seed": 42,
    "rules": [
      {"site": "flash.latent", "probability": 0.01},
      {"site": "flash.read_transient", "probability": 0.05,
       "window": [10, 5000], "burst": 2, "max_triggers": 100},
      {"site": "flash.failslow", "device": 2, "probability": 1.0,
       "slow_factor": 8.0, "added_latency_ns": 500},
      {"site": "persist.fsync", "probability": 0.001}
    ]
  })");
  ASSERT_EQ(spec.rules.size(), 4u);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.rules[0].site, FaultSite::kFlashLatent);
  EXPECT_DOUBLE_EQ(spec.rules[0].probability, 0.01);
  EXPECT_EQ(spec.rules[1].window_start_op, 10u);
  EXPECT_EQ(spec.rules[1].window_end_op, 5000u);
  EXPECT_EQ(spec.rules[1].burst, 2u);
  EXPECT_EQ(spec.rules[1].max_triggers, 100u);
  EXPECT_EQ(spec.rules[2].device, 2);
  EXPECT_DOUBLE_EQ(spec.rules[2].slow_factor, 8.0);
  EXPECT_EQ(spec.rules[2].added_latency_ns, 500u);
  EXPECT_TRUE(spec.Targets(FaultSite::kFlashLatent));
  EXPECT_TRUE(spec.Targets(FaultSite::kPersistFsync));
  EXPECT_FALSE(spec.Targets(FaultSite::kBackendTransient));
}

TEST(FaultSpecTest, RejectsUnknownSite) {
  auto spec = ParseFaultSpec(
      R"({"rules": [{"site": "flash.mystery", "probability": 1}]})");
  EXPECT_EQ(spec.status().code(), ErrorCode::kInvalidArgument);
}

TEST(FaultSpecTest, RejectsMalformedJson) {
  EXPECT_FALSE(ParseFaultSpec(R"({"rules": [)").ok());
  EXPECT_FALSE(ParseFaultSpec("").ok());
  EXPECT_FALSE(ParseFaultSpec(R"({"seeed": 1, "rules": []})").ok());
}

TEST(FaultSpecTest, LoadRejectsMissingFile) {
  auto spec = LoadFaultSpecFile("/nonexistent/fault_spec.json");
  EXPECT_FALSE(spec.ok());
}

// --- Injector ---------------------------------------------------------------

TEST(FaultInjectorTest, WindowBoundsFiring) {
  FaultSpec spec = MustParse(R"({"rules": [
    {"site": "flash.latent", "probability": 1.0, "window": [2, 4]}]})");
  FaultInjector inj(spec);
  for (int i = 0; i < 8; ++i) inj.Roll(FaultSite::kFlashLatent);
  ASSERT_EQ(inj.history().size(), 2u);
  EXPECT_EQ(inj.history()[0].op_index, 2u);
  EXPECT_EQ(inj.history()[1].op_index, 3u);
  EXPECT_EQ(inj.ops(FaultSite::kFlashLatent), 8u);
}

TEST(FaultInjectorTest, MaxTriggersCapsFiring) {
  FaultSpec spec = MustParse(R"({"rules": [
    {"site": "backend.transient", "probability": 1.0, "max_triggers": 2}]})");
  FaultInjector inj(spec);
  for (int i = 0; i < 10; ++i) inj.Roll(FaultSite::kBackendTransient);
  EXPECT_EQ(inj.injected(FaultSite::kBackendTransient), 2u);
}

TEST(FaultInjectorTest, BurstFiresConsecutiveOps) {
  FaultSpec spec = MustParse(R"({"rules": [
    {"site": "flash.read_transient", "probability": 1.0,
     "burst": 3, "max_triggers": 1}]})");
  FaultInjector inj(spec);
  for (int i = 0; i < 10; ++i) inj.Roll(FaultSite::kFlashReadTransient);
  // One trigger, but the burst covers 3 consecutive operations.
  ASSERT_EQ(inj.history().size(), 3u);
  EXPECT_EQ(inj.history()[0].op_index, 0u);
  EXPECT_EQ(inj.history()[2].op_index, 2u);
}

TEST(FaultInjectorTest, DeviceFilterMatches) {
  FaultSpec spec = MustParse(R"({"rules": [
    {"site": "flash.failslow", "probability": 1.0, "device": 2,
     "slow_factor": 8.0}]})");
  FaultInjector inj(spec);
  EXPECT_FALSE(inj.Roll(FaultSite::kFlashFailSlow, /*device=*/0).fire);
  FaultDecision d = inj.Roll(FaultSite::kFlashFailSlow, /*device=*/2);
  EXPECT_TRUE(d.fire);
  EXPECT_DOUBLE_EQ(d.slow_factor, 8.0);
  // Filtered rolls still advance the op counter (reproducibility).
  EXPECT_EQ(inj.ops(FaultSite::kFlashFailSlow), 2u);
}

TEST(FaultInjectorTest, DisabledSiteIsFree) {
  FaultSpec spec = MustParse(R"({"rules": [
    {"site": "flash.latent", "probability": 1.0}]})");
  FaultInjector inj(spec);
  EXPECT_TRUE(inj.enabled(FaultSite::kFlashLatent));
  EXPECT_FALSE(inj.enabled(FaultSite::kPersistWrite));
  EXPECT_FALSE(inj.Roll(FaultSite::kPersistWrite).fire);
  EXPECT_EQ(inj.ops(FaultSite::kPersistWrite), 0u);
}

TEST(FaultInjectorTest, SiteStreamsAreIndependent) {
  // The fault sequence at one site depends only on that site's op count,
  // never on how rolls at other sites interleave.
  FaultSpec spec = MustParse(R"({"seed": 7, "rules": [
    {"site": "flash.latent", "probability": 0.3},
    {"site": "backend.transient", "probability": 0.3}]})");
  FaultInjector a(spec);
  FaultInjector b(spec);
  for (int i = 0; i < 200; ++i) a.Roll(FaultSite::kFlashLatent);
  for (int i = 0; i < 200; ++i) a.Roll(FaultSite::kBackendTransient);
  for (int i = 0; i < 200; ++i) {  // interleaved
    b.Roll(FaultSite::kFlashLatent);
    b.Roll(FaultSite::kBackendTransient);
  }
  auto ops_at = [](const FaultInjector& inj, FaultSite site) {
    std::vector<uint64_t> out;
    for (const auto& rec : inj.history()) {
      if (rec.site == site) out.push_back(rec.op_index);
    }
    return out;
  };
  EXPECT_GT(a.injected_total(), 0u);
  EXPECT_EQ(ops_at(a, FaultSite::kFlashLatent),
            ops_at(b, FaultSite::kFlashLatent));
  EXPECT_EQ(ops_at(a, FaultSite::kBackendTransient),
            ops_at(b, FaultSite::kBackendTransient));
}

// --- Retry policy -----------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsWithJitterBounds) {
  RetryPolicy policy;
  policy.backoff_ns = 1000;
  policy.backoff_multiplier = 2.0;
  policy.jitter_fraction = 0.5;
  Pcg32 rng(3, 9);
  for (int trial = 0; trial < 100; ++trial) {
    SimTime b0 = RetryBackoff(policy, 0, rng);
    SimTime b2 = RetryBackoff(policy, 2, rng);
    EXPECT_GE(b0, 500u);
    EXPECT_LE(b0, 1500u);
    EXPECT_GE(b2, 2000u);   // 1000 * 2^2 * (1 - 0.5)
    EXPECT_LE(b2, 6000u);   // 1000 * 2^2 * (1 + 0.5)
  }
}

TEST(RetryPolicyTest, IsRetryableOnlyForIoError) {
  EXPECT_TRUE(IsRetryable(Status{ErrorCode::kIoError, "x"}));
  EXPECT_FALSE(IsRetryable(Status{ErrorCode::kCorrupted, "x"}));
  EXPECT_FALSE(IsRetryable(Status{ErrorCode::kUnavailable, "x"}));
  EXPECT_FALSE(IsRetryable(Status::Ok()));
}

// --- Fail-slow detection ----------------------------------------------------

FailSlowConfig QuickDetect() {
  FailSlowConfig cfg;
  cfg.min_samples = 8;
  cfg.check_interval = 4;
  cfg.sustain_checks = 2;
  cfg.outlier_factor = 4.0;
  return cfg;
}

TEST(FailSlowDetectorTest, FlagsSustainedOutlierOnce) {
  FailSlowDetector det(4, QuickDetect());
  for (int i = 0; i < 64; ++i) {
    for (FaultDeviceIndex d = 0; d < 4; ++d) {
      det.Observe(d, d == 2 ? 5'000'000 : 100'000, i);
    }
  }
  EXPECT_TRUE(det.flagged(2));
  EXPECT_FALSE(det.flagged(0));
  auto flagged = det.TakeFlagged();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 2u);
  EXPECT_TRUE(det.TakeFlagged().empty());  // reported at most once
  EXPECT_EQ(det.flagged_total(), 1u);
}

TEST(FailSlowDetectorTest, HealthyFleetNeverFlags) {
  FailSlowDetector det(4, QuickDetect());
  for (int i = 0; i < 256; ++i) {
    for (FaultDeviceIndex d = 0; d < 4; ++d) {
      det.Observe(d, 100'000 + (d * 7 + i) % 1000, i);
    }
  }
  EXPECT_EQ(det.flagged_total(), 0u);
  EXPECT_TRUE(det.TakeFlagged().empty());
}

TEST(FailSlowDetectorTest, ResetForgetsHistory) {
  FailSlowDetector det(4, QuickDetect());
  for (int i = 0; i < 64; ++i) {
    for (FaultDeviceIndex d = 0; d < 4; ++d) {
      det.Observe(d, d == 2 ? 5'000'000 : 100'000, i);
    }
  }
  ASSERT_TRUE(det.flagged(2));
  det.Reset(2);
  EXPECT_FALSE(det.flagged(2));
  EXPECT_DOUBLE_EQ(det.ewma(2), 0.0);
}

// --- Degraded reads, retry, and overwrite atomicity (data plane) ------------

/// Flash stack + data plane with a fault injector on the array.
struct PlaneFixture {
  explicit PlaneFixture(FaultSpec spec,
                        ProtectionMode mode = ProtectionMode::kReo) {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 1 << 20;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes,
        RedundancyPolicy({.mode = mode, .reo_reserve_fraction = 0.25}));
    plane->ConfigureRetry(RetryPolicy{}, /*seed=*/7);
    plane->AttachTelemetry(registry);
    if (!spec.empty()) {
      injector = std::make_unique<FaultInjector>(std::move(spec));
      array->AttachFaults(injector.get(), nullptr);
    }
  }

  std::vector<uint8_t> PayloadFor(uint64_t n, uint64_t logical,
                                  uint64_t version = 0) {
    return BackendStore::SynthesizePayload(Oid(n), version,
                                           stripes->PhysicalSize(logical));
  }

  double Metric(const std::string& name) {
    const auto* e = registry.Snapshot().Find(name);
    return e != nullptr ? e->value : 0.0;
  }

  MetricRegistry registry;
  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<FaultInjector> injector;
};

FaultSpec OneLatentFault() {
  return MustParse(R"({"rules": [
    {"site": "flash.latent", "probability": 1.0, "max_triggers": 1}]})");
}

/// Classes 0-2 carry redundancy: a latent-corrupt chunk is served via
/// parity/replica read-repair and then rebuilt in place.
class DegradedReadRepairP : public ::testing::TestWithParam<uint8_t> {};

TEST_P(DegradedReadRepairP, LatentCorruptionIsRepairedInPlace) {
  PlaneFixture fx(OneLatentFault());
  uint64_t logical = 4 * kChunk;
  auto payload = fx.PayloadFor(1, logical);
  ASSERT_TRUE(
      fx.plane->WriteObject(Oid(1), payload, logical, GetParam(), 0).ok());
  ASSERT_EQ(fx.injector->injected(FaultSite::kFlashLatent), 1u);

  auto io = fx.plane->ReadObject(Oid(1), 0);
  ASSERT_TRUE(io.ok()) << io.status().to_string();
  EXPECT_EQ(io->payload, payload);
  EXPECT_GE(fx.Metric("fault.crc_detected"), 1.0);
  EXPECT_GE(fx.Metric("fault.crc_repairs"), 1.0);
  EXPECT_EQ(fx.Metric("fault.crc_unrepaired"), 0.0);

  // The in-place repair leaves the object fully intact: a direct array
  // read sees no corruption and no degraded decode.
  auto clean = fx.stripes->GetObject(Oid(1), 0);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->corrupt_chunks, 0u);
  EXPECT_FALSE(clean->degraded);
  EXPECT_EQ(clean->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Classes, DegradedReadRepairP,
                         ::testing::Values(uint8_t{0}, uint8_t{1}, uint8_t{2}),
                         [](const auto& info) {
                           return "class" + std::to_string(info.param);
                         });

TEST(DegradedReadTest, Class3CorruptionIsUnrecoverableAtThePlane) {
  // Cold-clean data has no redundancy: the plane reports the loss and the
  // cache layer above turns it into a clean miss + backend refetch
  // (covered by ColdCleanCorruptionBecomesCleanMiss below).
  PlaneFixture fx(OneLatentFault());
  uint64_t logical = 4 * kChunk;
  auto payload = fx.PayloadFor(1, logical);
  ASSERT_TRUE(fx.plane->WriteObject(Oid(1), payload, logical, 3, 0).ok());

  auto io = fx.plane->ReadObject(Oid(1), 0);
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.status().code(), ErrorCode::kUnrecoverable);
  EXPECT_GE(fx.Metric("fault.crc_detected"), 1.0);
  EXPECT_EQ(fx.Metric("fault.crc_repairs"), 0.0);
}

TEST(TransientRetryTest, ReadRetrySucceedsAfterOneFault) {
  PlaneFixture fx(MustParse(R"({"rules": [
    {"site": "flash.read_transient", "probability": 1.0,
     "max_triggers": 1}]})"));
  uint64_t logical = 4 * kChunk;
  auto payload = fx.PayloadFor(1, logical);
  ASSERT_TRUE(fx.plane->WriteObject(Oid(1), payload, logical, 3, 0).ok());

  auto io = fx.plane->ReadObject(Oid(1), 0);
  ASSERT_TRUE(io.ok()) << io.status().to_string();
  EXPECT_EQ(io->payload, payload);
  EXPECT_EQ(fx.Metric("retry.attempts"), 1.0);
  EXPECT_EQ(fx.Metric("retry.successes"), 1.0);
  EXPECT_EQ(fx.Metric("retry.exhausted"), 0.0);
}

TEST(TransientRetryTest, ReadRetryExhaustsUnderPersistentFault) {
  PlaneFixture fx(MustParse(R"({"rules": [
    {"site": "flash.read_transient", "probability": 1.0}]})"));
  uint64_t logical = 4 * kChunk;
  auto payload = fx.PayloadFor(1, logical);
  ASSERT_TRUE(fx.plane->WriteObject(Oid(1), payload, logical, 3, 0).ok());

  auto io = fx.plane->ReadObject(Oid(1), 0);
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(fx.Metric("retry.exhausted"), 1.0);
  EXPECT_EQ(fx.Metric("retry.attempts"),
            static_cast<double>(RetryPolicy{}.max_attempts - 1));
}

TEST(TransientRetryTest, WriteRetrySucceedsAfterOneFault) {
  PlaneFixture fx(MustParse(R"({"rules": [
    {"site": "flash.write_transient", "probability": 1.0,
     "max_triggers": 1}]})"));
  uint64_t logical = 4 * kChunk;
  auto payload = fx.PayloadFor(1, logical);
  auto io = fx.plane->WriteObject(Oid(1), payload, logical, 2, 0);
  ASSERT_TRUE(io.ok()) << io.status().to_string();
  EXPECT_EQ(fx.Metric("retry.attempts"), 1.0);
  EXPECT_EQ(fx.Metric("retry.successes"), 1.0);

  auto back = fx.plane->ReadObject(Oid(1), 0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->payload, payload);
}

TEST(TransientRetryTest, FailedOverwriteKeepsTheOldCopy) {
  // A write that exhausts its retries must not destroy the previously
  // acknowledged version (failure-atomic overwrite in the stripe layer).
  PlaneFixture fx(FaultSpec{});
  uint64_t logical = 4 * kChunk;
  auto v0 = fx.PayloadFor(1, logical, /*version=*/0);
  ASSERT_TRUE(fx.plane->WriteObject(Oid(1), v0, logical, 2, 0).ok());

  FaultSpec always_fail = MustParse(R"({"rules": [
    {"site": "flash.write_transient", "probability": 1.0}]})");
  FaultInjector inj(always_fail);
  fx.array->AttachFaults(&inj, nullptr);

  auto v1 = fx.PayloadFor(1, logical, /*version=*/1);
  auto io = fx.plane->WriteObject(Oid(1), v1, logical, 2, 0);
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(fx.Metric("retry.exhausted"), 1.0);

  fx.array->AttachFaults(nullptr, nullptr);
  auto back = fx.plane->ReadObject(Oid(1), 0);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->payload, v0);
}

// --- Cold-clean corruption at the cache layer -------------------------------

struct CacheFaultFixture {
  CacheFaultFixture() {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 64 * kChunk;
    array = std::make_unique<FlashArray>(5, dev);
    stripes = std::make_unique<StripeManager>(
        *array,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane = std::make_unique<ReoDataPlane>(
        *stripes, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                    .reo_reserve_fraction = 0.25}));
    plane->ConfigureRetry(RetryPolicy{}, /*seed=*/7);
    target = std::make_unique<OsdTarget>(*plane);
    backend = std::make_unique<BackendStore>(HddConfig{}, NetworkLinkConfig{});
    CacheManagerConfig cfg;
    cfg.verify_hits = true;
    cache = std::make_unique<CacheManager>(*target, *plane, *backend, cfg);
    cache->Initialize(0);
  }

  /// Arm after Initialize so metadata writes don't absorb the triggers.
  void ArmFaults(FaultSpec spec) {
    injector = std::make_unique<FaultInjector>(std::move(spec));
    array->AttachFaults(injector.get(), nullptr);
  }

  RequestResult Get(uint64_t n, uint64_t logical) {
    backend->RegisterObject(Oid(n), logical, stripes->PhysicalSize(logical));
    auto r = cache->Get(Oid(n), logical, clock.now());
    clock.Advance(r.latency);
    return r;
  }

  std::unique_ptr<FlashArray> array;
  std::unique_ptr<StripeManager> stripes;
  std::unique_ptr<ReoDataPlane> plane;
  std::unique_ptr<OsdTarget> target;
  std::unique_ptr<BackendStore> backend;
  std::unique_ptr<CacheManager> cache;
  std::unique_ptr<FaultInjector> injector;
  SimClock clock;
};

TEST(CacheFaultTest, ColdCleanCorruptionBecomesCleanMiss) {
  CacheFaultFixture fx;
  fx.ArmFaults(OneLatentFault());

  // Miss-admit as cold clean; the single latent fault corrupts one chunk
  // of the freshly written (unprotected) copy.
  auto miss = fx.Get(1, 4 * kChunk);
  EXPECT_FALSE(miss.hit);
  ASSERT_EQ(fx.injector->injected(FaultSite::kFlashLatent), 1u);

  // The corrupt copy is evicted and the request refetches from the
  // backend — a clean miss, never a wrong answer.
  auto reread = fx.Get(1, 4 * kChunk);
  EXPECT_FALSE(reread.hit);
  EXPECT_EQ(reread.sense, SenseCode::kOk);
  EXPECT_EQ(fx.cache->stats().verify_failures, 0u);

  // The refetched copy (trigger exhausted) serves clean hits.
  auto hit = fx.Get(1, 4 * kChunk);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(fx.cache->stats().verify_failures, 0u);
}

// --- Scrubber accounting ----------------------------------------------------

TEST(ScrubAccountingTest, DetectionAndRepairHitMetricsAndEvents) {
  PlaneFixture fx(FaultSpec{});
  EventLog events;
  fx.stripes->AttachEvents(events);
  uint64_t logical = 4 * kChunk;
  auto payload = fx.PayloadFor(1, logical);
  ASSERT_TRUE(fx.plane->WriteObject(Oid(1), payload, logical, 2, 0).ok());

  // Corrupt the first live slot found on any device.
  bool corrupted = false;
  for (DeviceIndex d = 0; d < fx.array->size() && !corrupted; ++d) {
    for (SlotId s = 0; s < 64 && !corrupted; ++s) {
      corrupted = fx.array->device(d).CorruptSlot(s, 7).ok();
    }
  }
  ASSERT_TRUE(corrupted);

  auto report = fx.stripes->Scrub(0);
  EXPECT_GE(report.chunks_scanned, 1u);
  EXPECT_EQ(report.corrupt_found, 1u);
  EXPECT_GE(report.chunks_repaired, 1u);
  EXPECT_TRUE(report.lost.empty());

  // Every detection/repair is visible in metrics...
  EXPECT_EQ(fx.Metric("scrub.passes"), 1.0);
  EXPECT_EQ(fx.Metric("scrub.corrupt_found"),
            static_cast<double>(report.corrupt_found));
  EXPECT_EQ(fx.Metric("scrub.chunks_repaired"),
            static_cast<double>(report.chunks_repaired));
  EXPECT_GE(fx.Metric("fault.crc_detected"), 1.0);
  EXPECT_EQ(fx.Metric("scrub.lost_objects"), 0.0);

  // ...and in the event log.
  bool saw_detect = false;
  bool saw_repair = false;
  for (const auto& ev : events.events()) {
    saw_detect |= ev.category == "scrub.corrupt_found";
    saw_repair |= ev.category == "scrub.repair";
  }
  EXPECT_TRUE(saw_detect);
  EXPECT_TRUE(saw_repair);

  // The repaired object reads back intact.
  auto clean = fx.stripes->GetObject(Oid(1), 0);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->corrupt_chunks, 0u);
  EXPECT_EQ(clean->payload, payload);
}

// --- Persistence commit faults ----------------------------------------------

std::string ScratchDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("reo_fault_" + name);
  fs::remove_all(dir);
  return dir.string();
}

TEST(PersistFaultTest, InjectedShortWriteFailsTheCommit) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("write");
  auto opened = PersistenceManager::Open(cfg);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  auto& pm = **opened;

  FaultSpec spec = MustParse(R"({"rules": [
    {"site": "persist.write", "probability": 1.0, "max_triggers": 1}]})");
  FaultInjector inj(spec);
  pm.AttachFaults(&inj);

  std::vector<uint8_t> payload(kChunk, 0xAB);
  EXPECT_EQ(pm.CommitWrite(Oid(1), 2, kChunk, payload, 0).code(),
            ErrorCode::kIoError);
  // Trigger exhausted: the next commit lands.
  EXPECT_TRUE(pm.CommitWrite(Oid(1), 2, kChunk, payload, 0).ok());
  fs::remove_all(cfg.data_dir);
}

TEST(PersistFaultTest, InjectedFsyncFailureFailsCriticalCommit) {
  PersistenceConfig cfg;
  cfg.data_dir = ScratchDir("fsync");
  cfg.sync_critical = true;
  auto opened = PersistenceManager::Open(cfg);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  auto& pm = **opened;

  FaultSpec spec = MustParse(R"({"rules": [
    {"site": "persist.fsync", "probability": 1.0, "max_triggers": 1}]})");
  FaultInjector inj(spec);
  pm.AttachFaults(&inj);

  std::vector<uint8_t> payload(kChunk, 0xCD);
  // Class-1 (dirty) commits sync before acking: the fsync fault surfaces.
  EXPECT_FALSE(pm.CommitWrite(Oid(1), 1, kChunk, payload, 0).ok());
  EXPECT_TRUE(pm.CommitWrite(Oid(2), 1, kChunk, payload, 0).ok());
  fs::remove_all(cfg.data_dir);
}

// --- Whole-system determinism and fail-slow demotion ------------------------

MediSynConfig TinyWorkload() {
  MediSynConfig cfg;
  cfg.name = "fault-tiny";
  cfg.num_objects = 60;
  cfg.mean_object_bytes = 64 * 1024;
  cfg.zipf_skew = 0.9;
  cfg.num_requests = 600;
  cfg.seed = 5;
  return cfg;
}

TEST(FaultSimulationTest, SameSpecAndSeedReproducesTheRun) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.verify_hits = true;
  cfg.faults = MustParse(R"({"seed": 9, "rules": [
    {"site": "flash.latent", "probability": 0.02},
    {"site": "flash.read_transient", "probability": 0.01},
    {"site": "backend.transient", "probability": 0.01}]})");

  CacheSimulator a(trace, cfg);
  CacheSimulator b(trace, cfg);
  RunReport ra = a.Run();
  RunReport rb = b.Run();

  ASSERT_NE(a.fault_injector(), nullptr);
  ASSERT_NE(b.fault_injector(), nullptr);
  EXPECT_GT(a.fault_injector()->injected_total(), 0u);
  // Identical fault sequence, record for record...
  EXPECT_EQ(a.fault_injector()->history(), b.fault_injector()->history());
  // ...and an identical run on top of it.
  EXPECT_EQ(ra.total.requests, rb.total.requests);
  EXPECT_EQ(ra.total.hits, rb.total.hits);
  EXPECT_EQ(ra.cache.verify_failures, rb.cache.verify_failures);
  EXPECT_EQ(ra.cache.verify_failures, 0u);
  for (const char* metric :
       {"fault.injected", "fault.crc_detected", "fault.crc_repairs",
        "fault.crc_unrepaired", "retry.attempts", "retry.backend.attempts"}) {
    const auto* ea = ra.telemetry.Find(metric);
    const auto* eb = rb.telemetry.Find(metric);
    ASSERT_NE(ea, nullptr) << metric;
    ASSERT_NE(eb, nullptr) << metric;
    EXPECT_EQ(ea->value, eb->value) << metric;
  }
}

TEST(FaultSimulationTest, FailSlowDeviceIsFlaggedAndDemoted) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.verify_hits = true;
  cfg.faults = MustParse(R"({"rules": [
    {"site": "flash.failslow", "probability": 1.0, "device": 1,
     "slow_factor": 30.0}]})");
  cfg.failslow = QuickDetect();
  cfg.failslow_demote = true;

  CacheSimulator sim(trace, cfg);
  RunReport report = sim.Run();

  const auto* flagged = report.telemetry.Find("failslow.flagged");
  const auto* demoted = report.telemetry.Find("failslow.demotions");
  ASSERT_NE(flagged, nullptr);
  ASSERT_NE(demoted, nullptr);
  EXPECT_GE(flagged->value, 1.0);
  EXPECT_GE(demoted->value, 1.0);
  // Demotion is transparent to correctness.
  EXPECT_EQ(report.cache.verify_failures, 0u);
  EXPECT_EQ(report.total.requests, 600u);
}

TEST(FaultSimulationTest, FailSlowFlagWithoutDemotionIsAdvisory) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.faults = MustParse(R"({"rules": [
    {"site": "flash.failslow", "probability": 1.0, "device": 1,
     "slow_factor": 30.0}]})");
  cfg.failslow = QuickDetect();
  cfg.failslow_demote = false;

  CacheSimulator sim(trace, cfg);
  RunReport report = sim.Run();

  const auto* flagged = report.telemetry.Find("failslow.flagged");
  const auto* demoted = report.telemetry.Find("failslow.demotions");
  ASSERT_NE(flagged, nullptr);
  EXPECT_GE(flagged->value, 1.0);
  EXPECT_TRUE(demoted == nullptr || demoted->value == 0.0);
}

TEST(FaultSimulationTest, PeriodicScrubRepairsLatentCorruption) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.verify_hits = true;
  cfg.faults = MustParse(R"({"rules": [
    {"site": "flash.latent", "probability": 0.05}]})");
  cfg.scrub_interval_requests = 100;

  CacheSimulator sim(trace, cfg);
  RunReport report = sim.Run();

  const auto* passes = report.telemetry.Find("scrub.passes");
  ASSERT_NE(passes, nullptr);
  EXPECT_GE(passes->value, 5.0);
  EXPECT_EQ(report.cache.verify_failures, 0u);
}

}  // namespace
}  // namespace reo
