// Randomized end-to-end soak: arbitrary interleavings of reads, writes,
// device failures, spare insertions, scrubs, and latent corruption, with
// every hit CRC-verified against the expected version. The invariants:
//   * served content is always correct (no stale or corrupt hit);
//   * dirty data written at full array health is never lost under Reo
//     while any device survives (data written *while degraded* is only
//     replicated across the survivors — by design it can die if the
//     remaining devices fail too, so the soak pauses writes then);
//   * the system stays internally consistent (no damaged leftovers after
//     full repair, accounting matches).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/cache_manager.h"

namespace reo {
namespace {

constexpr uint64_t kChunk = 2048;

ObjectId Oid(uint64_t n) { return ObjectId{kFirstUserId, 0x20000 + n}; }

class CacheSoak : public ::testing::TestWithParam<uint64_t> {
 protected:
  CacheSoak() {
    FlashDeviceConfig dev;
    dev.capacity_bytes = 2 << 20;
    array_ = std::make_unique<FlashArray>(5, dev);
    stripes_ = std::make_unique<StripeManager>(
        *array_,
        StripeManagerConfig{.chunk_logical_bytes = kChunk, .scale_shift = 0});
    plane_ = std::make_unique<ReoDataPlane>(
        *stripes_, RedundancyPolicy({.mode = ProtectionMode::kReo,
                                     .reo_reserve_fraction = 0.25}));
    target_ = std::make_unique<OsdTarget>(*plane_);
    backend_ = std::make_unique<BackendStore>(HddConfig{}, NetworkLinkConfig{});
    CacheManagerConfig cfg;
    cfg.hhot_refresh_interval = 50;
    cfg.verify_hits = true;  // every hit is content-checked
    cache_ = std::make_unique<CacheManager>(*target_, *plane_, *backend_, cfg);
    cache_->Initialize(0);
    for (uint64_t n = 0; n < kObjects; ++n) {
      uint64_t logical = (1 + (n % 7)) * kChunk;
      backend_->RegisterObject(Oid(n), logical, stripes_->PhysicalSize(logical));
      sizes_[n] = logical;
    }
  }

  static constexpr uint64_t kObjects = 48;

  std::unique_ptr<FlashArray> array_;
  std::unique_ptr<StripeManager> stripes_;
  std::unique_ptr<ReoDataPlane> plane_;
  std::unique_ptr<OsdTarget> target_;
  std::unique_ptr<BackendStore> backend_;
  std::unique_ptr<CacheManager> cache_;
  std::unordered_map<uint64_t, uint64_t> sizes_;
  SimClock clock_;
};

TEST_P(CacheSoak, EverythingStaysConsistent) {
  Pcg32 rng(GetParam());
  size_t failed = 0;

  for (int step = 0; step < 3000; ++step) {
    uint32_t op = rng.NextBounded(100);
    uint64_t n = rng.NextBounded(kObjects);
    bool fully_healthy = array_->healthy_count() == array_->size();
    if (op < 70 || (op < 88 && !fully_healthy)) {
      auto r = cache_->Get(Oid(n), sizes_[n], clock_.now());
      clock_.Advance(r.latency);
    } else if (op < 88) {
      auto r = cache_->Put(Oid(n), sizes_[n], clock_.now());
      clock_.Advance(r.latency);
    } else if (op < 92) {
      // Fail a device, keeping at least one alive.
      if (failed < 4) {
        auto healthy = array_->HealthyDevices();
        DeviceIndex d =
            healthy[rng.NextBounded(static_cast<uint32_t>(healthy.size()))];
        cache_->OnDeviceFailure(d, clock_.now());
        ++failed;
      }
    } else if (op < 96) {
      // Insert a spare for some failed device.
      for (DeviceIndex d = 0; d < array_->size(); ++d) {
        if (!array_->device(d).healthy()) {
          cache_->OnSpareInserted(d, clock_.now());
          --failed;
          break;
        }
      }
    } else if (op < 98) {
      // Latent corruption somewhere, then a scrub pass.
      auto healthy = array_->HealthyDevices();
      DeviceIndex d =
          healthy[rng.NextBounded(static_cast<uint32_t>(healthy.size()))];
      (void)array_->device(d).CorruptSlot(rng.NextBounded(64), rng.Next());
      (void)cache_->RunScrub(clock_.now());
    } else {
      cache_->DrainRecovery(clock_.now());
    }

    // Standing invariants.
    ASSERT_EQ(cache_->stats().verify_failures, 0u) << "step " << step;
    ASSERT_EQ(cache_->stats().dirty_lost, 0u) << "step " << step;
  }

  // Quiesce: flush everything, repair everything, then re-read the world.
  for (DeviceIndex d = 0; d < array_->size(); ++d) {
    if (!array_->device(d).healthy()) cache_->OnSpareInserted(d, clock_.now());
  }
  cache_->DrainRecovery(clock_.now());
  clock_.Advance(120 * kNsPerSec);
  cache_->AdvanceBackground(clock_.now());
  (void)cache_->RunScrub(clock_.now());
  EXPECT_TRUE(stripes_->DamagedObjects().empty());

  for (uint64_t n = 0; n < kObjects; ++n) {
    auto r = cache_->Get(Oid(n), sizes_[n], clock_.now());
    clock_.Advance(r.latency);
    ASSERT_EQ(r.sense, SenseCode::kOk) << "object " << n;
  }
  EXPECT_EQ(cache_->stats().verify_failures, 0u);
  EXPECT_EQ(cache_->stats().dirty_lost, 0u);
  EXPECT_EQ(cache_->stats().gets,
            cache_->stats().hits + cache_->stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheSoak, ::testing::Values(11, 22, 33, 44, 55),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace reo
