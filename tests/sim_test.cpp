// Simulation-harness tests: windowed metrics math, window splitting at
// failure events, probe windows, and simulator plumbing.
#include <gtest/gtest.h>

#include "sim/cache_simulator.h"
#include "sim/metrics.h"
#include "workload/medisyn.h"

namespace reo {
namespace {

TEST(WindowMetricsTest, RatiosAndRates) {
  WindowMetrics w;
  w.start = 0;
  w.end = 2 * kNsPerSec;
  w.requests = 10;
  w.reads = 8;
  w.hits = 6;
  w.bytes = 100'000'000;  // 100 MB over 2 s = 50 MB/s
  EXPECT_DOUBLE_EQ(w.HitRatio(), 0.75);
  EXPECT_DOUBLE_EQ(w.BandwidthMBps(), 50.0);
}

TEST(WindowMetricsTest, WriteOnlyWindowHasZeroHitRatio) {
  WindowMetrics w;
  w.requests = 5;  // all writes
  EXPECT_DOUBLE_EQ(w.HitRatio(), 0.0);
}

TEST(WindowMetricsTest, MergeCombines) {
  WindowMetrics a, b;
  a.start = 0;
  a.end = kNsPerSec;
  a.requests = a.reads = 4;
  a.hits = 2;
  a.bytes = 10;
  a.latency_us.Add(100);
  b.start = kNsPerSec;
  b.end = 3 * kNsPerSec;
  b.requests = b.reads = 6;
  b.hits = 6;
  b.bytes = 20;
  b.latency_us.Add(200);
  a.Merge(b);
  EXPECT_EQ(a.requests, 10u);
  EXPECT_EQ(a.hits, 8u);
  EXPECT_EQ(a.bytes, 30u);
  EXPECT_EQ(a.end, 3 * kNsPerSec);
  EXPECT_EQ(a.latency_us.count(), 2u);
}

TEST(WindowMetricsTest, MergeIsOrderIndependent) {
  // Merging the later window INTO the earlier one and vice versa must
  // produce the same wall-time span (and thus the same bandwidth).
  WindowMetrics early, late;
  early.start = kNsPerSec;
  early.end = 2 * kNsPerSec;
  early.requests = early.reads = 1;
  early.bytes = 50'000'000;
  late.start = 2 * kNsPerSec;
  late.end = 3 * kNsPerSec;
  late.requests = late.reads = 1;
  late.bytes = 50'000'000;

  WindowMetrics fwd = early;
  fwd.Merge(late);
  WindowMetrics rev = late;
  rev.Merge(early);
  EXPECT_EQ(fwd.start, kNsPerSec);
  EXPECT_EQ(rev.start, kNsPerSec);
  EXPECT_EQ(rev.end, fwd.end);
  EXPECT_DOUBLE_EQ(rev.BandwidthMBps(), fwd.BandwidthMBps());
  EXPECT_DOUBLE_EQ(fwd.BandwidthMBps(), 50.0);  // 100 MB over 2 s
}

TEST(MetricsCollectorTest, WindowsSplitAndTotalAccumulates) {
  MetricsCollector m;
  m.StartWindow("phase0", 0);
  m.Record(true, false, 10, 100, 1000);
  m.Record(false, false, 10, 100, 2000);
  m.StartWindow("phase1", 2000);
  m.Record(true, false, 10, 100, 3000);
  m.Finish(3000);

  ASSERT_EQ(m.windows().size(), 2u);
  EXPECT_EQ(m.windows()[0].label, "phase0");
  EXPECT_EQ(m.windows()[0].requests, 2u);
  EXPECT_EQ(m.windows()[0].end, 2000u);
  EXPECT_EQ(m.windows()[1].requests, 1u);
  EXPECT_EQ(m.total().requests, 3u);
  EXPECT_EQ(m.total().hits, 2u);
}

TEST(MetricsCollectorTest, WritesCountedInTrafficNotHits) {
  MetricsCollector m;
  m.StartWindow("w", 0);
  m.Record(true, true, 50, 10, 100);   // absorbed write
  m.Record(true, false, 50, 10, 200);  // read hit
  m.Finish(200);
  EXPECT_EQ(m.total().requests, 2u);
  EXPECT_EQ(m.total().reads, 1u);
  EXPECT_EQ(m.total().hits, 1u);
  EXPECT_EQ(m.total().bytes, 100u);
  EXPECT_DOUBLE_EQ(m.total().HitRatio(), 1.0);
}

MediSynConfig TinyWorkload() {
  MediSynConfig cfg;
  cfg.name = "tiny";
  cfg.num_objects = 60;
  cfg.mean_object_bytes = 64 * 1024;
  cfg.zipf_skew = 0.9;
  cfg.num_requests = 600;
  cfg.seed = 5;
  return cfg;
}

TEST(CacheSimulatorTest, WindowPerFailureEvent) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.policy = {.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.2};
  cfg.cache_fraction = 0.2;
  cfg.chunk_logical_bytes = 8 * 1024;
  cfg.scale_shift = 0;
  cfg.failures = {{.at_request = 200, .device = 0},
                  {.at_request = 400, .device = 1}};
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();
  ASSERT_EQ(report.windows.size(), 3u);
  EXPECT_EQ(report.windows[0].label, "0-failures");
  EXPECT_EQ(report.windows[1].label, "1-failures");
  EXPECT_EQ(report.windows[2].label, "2-failures");
  EXPECT_EQ(report.windows[0].requests, 200u);
  EXPECT_EQ(report.windows[1].requests, 200u);
  EXPECT_EQ(report.windows[2].requests, 200u);
  EXPECT_EQ(report.total.requests, 600u);
}

TEST(CacheSimulatorTest, ProbeWindowsSplitPhases) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.policy = {.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.2};
  cfg.cache_fraction = 0.2;
  cfg.chunk_logical_bytes = 8 * 1024;
  cfg.scale_shift = 0;
  cfg.probe_window_requests = 50;
  cfg.failures = {{.at_request = 200, .device = 0}};
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();
  ASSERT_EQ(report.windows.size(), 3u);
  EXPECT_EQ(report.windows[1].label, "1-failures-early");
  EXPECT_EQ(report.windows[1].requests, 50u);
  EXPECT_EQ(report.windows[2].label, "1-failures");
  EXPECT_EQ(report.windows[2].requests, 350u);
}

TEST(CacheSimulatorTest, WarmupPassRaisesHitRatio) {
  auto wl = TinyWorkload();
  wl.zipf_skew = 1.2;
  auto trace = GenerateMediSyn(wl);
  SimulationConfig cold_cfg;
  cold_cfg.policy = {.mode = ProtectionMode::kUniform0};
  cold_cfg.cache_fraction = 0.3;
  cold_cfg.chunk_logical_bytes = 8 * 1024;
  cold_cfg.scale_shift = 0;
  CacheSimulator cold(trace, cold_cfg);
  auto cold_report = cold.Run();

  auto warm_cfg = cold_cfg;
  warm_cfg.warmup_pass = true;
  CacheSimulator warm(trace, warm_cfg);
  auto warm_report = warm.Run();
  EXPECT_GE(warm_report.total.HitRatio(), cold_report.total.HitRatio());
}

TEST(CacheSimulatorTest, ReportCarriesSystemState) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.name = "probe";
  cfg.policy = {.mode = ProtectionMode::kUniform1};
  cfg.cache_fraction = 0.2;
  cfg.chunk_logical_bytes = 8 * 1024;
  cfg.scale_shift = 0;
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();
  EXPECT_EQ(report.name, "probe");
  EXPECT_EQ(report.dataset_bytes, trace.catalog.TotalBytes());
  EXPECT_GT(report.raw_capacity_bytes, 0u);
  EXPECT_GT(report.osd.commands, 0u);
  EXPECT_GT(report.space.user_bytes, 0u);
  EXPECT_NEAR(report.space.SpaceEfficiency(), 0.8, 0.05);
  EXPECT_FALSE(FormatReportRow(report).empty());
}

// --- Sharded replay ---------------------------------------------------------

TEST(CacheSimulatorTest, OneShardIsByteIdenticalToUnsharded) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.policy = {.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.2};
  cfg.cache_fraction = 0.2;
  cfg.chunk_logical_bytes = 8 * 1024;
  cfg.scale_shift = 0;
  CacheSimulator plain(trace, cfg);
  auto base = plain.Run();

  auto sharded_cfg = cfg;
  sharded_cfg.shards = 1;  // explicit 1 must not change anything
  CacheSimulator sharded(trace, sharded_cfg);
  auto got = sharded.Run();

  EXPECT_EQ(got.total.requests, base.total.requests);
  EXPECT_EQ(got.total.hits, base.total.hits);
  EXPECT_EQ(got.total.bytes, base.total.bytes);
  EXPECT_EQ(got.total.end, base.total.end);  // identical virtual timeline
  EXPECT_EQ(got.cache.gets, base.cache.gets);
  EXPECT_EQ(got.cache.evictions, base.cache.evictions);
  EXPECT_EQ(got.osd.commands, base.osd.commands);
  EXPECT_EQ(got.space.user_bytes, base.space.user_bytes);
  EXPECT_EQ(got.space.redundancy_bytes, base.space.redundancy_bytes);
  EXPECT_EQ(got.raw_capacity_bytes, base.raw_capacity_bytes);
  EXPECT_EQ(got.telemetry.ToJson(), base.telemetry.ToJson());
}

TEST(CacheSimulatorTest, ShardedRunRoutesPartitionsAndMerges) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.policy = {.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.2};
  cfg.cache_fraction = 0.2;
  cfg.chunk_logical_bytes = 8 * 1024;
  cfg.scale_shift = 0;
  cfg.shards = 4;
  CacheSimulator sim(trace, cfg);
  EXPECT_EQ(sim.shard_count(), 4u);
  auto report = sim.Run();

  // Every request was served by exactly one shard; the merged report
  // accounts for all of them.
  EXPECT_EQ(report.total.requests, 600u);
  EXPECT_EQ(report.cache.gets + report.cache.writes, 600u);
  EXPECT_GT(report.cache.hits, 0u);
  // All four stacks took traffic (hash spread over 60 objects).
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_GT(sim.cache_of(k).stats().gets + sim.cache_of(k).stats().writes,
              0u)
        << "shard " << k;
  }
  // The merged telemetry snapshot equals the per-shard counter sums.
  uint64_t gets = 0;
  for (size_t k = 0; k < 4; ++k) gets += sim.cache_of(k).stats().gets;
  EXPECT_EQ(report.cache.gets, gets);
  EXPECT_GT(report.space.capacity_bytes, 0u);
  EXPECT_FALSE(FormatReportRow(report).empty());
}

TEST(CacheSimulatorTest, ScriptedFailureFansOutToEveryShard) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.policy = {.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.2};
  cfg.cache_fraction = 0.2;
  cfg.chunk_logical_bytes = 8 * 1024;
  cfg.scale_shift = 0;
  cfg.shards = 2;
  cfg.failures = {{.at_request = 300, .device = 0}};
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();
  ASSERT_EQ(report.windows.size(), 2u);
  EXPECT_EQ(report.windows[1].label, "1-failures");
  // Both shards saw the device failure (each array lost device 0).
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_GT(sim.cache_of(k).stats().rebuilds +
                  sim.cache_of(k).stats().lost_evictions +
                  sim.cache_of(k).stats().degraded_reads,
              0u)
        << "shard " << k;
  }
  EXPECT_EQ(report.total.requests, 600u);
}

TEST(CacheSimulatorTest, VerifyHitsCatchesNothingOnHealthyRun) {
  auto trace = GenerateMediSyn(TinyWorkload());
  SimulationConfig cfg;
  cfg.policy = {.mode = ProtectionMode::kReo, .reo_reserve_fraction = 0.3};
  cfg.cache_fraction = 0.25;
  cfg.chunk_logical_bytes = 8 * 1024;
  cfg.scale_shift = 0;
  cfg.verify_hits = true;
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();
  EXPECT_GT(report.cache.hits, 0u);
  EXPECT_EQ(report.cache.verify_failures, 0u);
}

}  // namespace
}  // namespace reo
