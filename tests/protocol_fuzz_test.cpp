// Robustness fuzz for the control-protocol parser and the OSD target's
// command surface: random bytes and random mutations must never crash or
// corrupt state, and valid messages must round-trip under mutation only
// when still well-formed.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "osd/control_protocol.h"
#include "osd/osd_target.h"

namespace reo {
namespace {

TEST(ProtocolFuzzTest, RandomBytesNeverCrash) {
  Pcg32 rng(1234);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> junk(rng.NextBounded(64));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    auto r = DecodeControlMessage(junk);
    // Random bytes are overwhelmingly invalid; decoding must simply fail.
    if (r.ok()) {
      // If it parsed, re-encoding must parse again (canonicalization).
      auto wire = EncodeControlMessage(*r);
      EXPECT_TRUE(DecodeControlMessage(wire).ok());
    }
  }
}

TEST(ProtocolFuzzTest, MutatedValidMessages) {
  Pcg32 rng(99);
  for (int i = 0; i < 5000; ++i) {
    ControlMessage msg;
    if (rng.NextBounded(2) == 0) {
      msg = SetIdCommand{.target = {rng.Next64() >> 8, rng.Next64() >> 8},
                         .class_id = static_cast<uint8_t>(rng.NextBounded(4))};
    } else {
      msg = QueryCommand{.target = {rng.Next64() >> 8, rng.Next64() >> 8},
                         .is_write = rng.NextBounded(2) == 1,
                         .offset = rng.Next(),
                         .size = rng.Next()};
    }
    auto wire = EncodeControlMessage(msg);
    // Unmutated messages round-trip exactly.
    auto decoded = DecodeControlMessage(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(*decoded == msg);

    // Mutate one byte: must either fail cleanly or decode to *something*
    // (single-char hex/int field changes can stay valid) — never crash.
    auto mutated = wire;
    mutated[rng.NextBounded(static_cast<uint32_t>(mutated.size()))] =
        static_cast<uint8_t>(rng.Next());
    (void)DecodeControlMessage(mutated);

    // Truncate: must fail or parse, never crash.
    auto truncated = wire;
    truncated.resize(rng.NextBounded(static_cast<uint32_t>(wire.size())));
    (void)DecodeControlMessage(truncated);
  }
}

/// Data plane that accepts everything, for target-level fuzzing.
class NullDataPlane final : public DataPlane {
 public:
  Result<DataPlaneIo> WriteObject(ObjectId, std::span<const uint8_t>, uint64_t,
                                  uint8_t, SimTime now) override {
    return DataPlaneIo{.complete = now};
  }
  Result<DataPlaneIo> ReadObject(ObjectId, SimTime now) override {
    return DataPlaneIo{.complete = now};
  }
  Status RemoveObject(ObjectId) override { return Status::Ok(); }
  Status SetObjectClass(ObjectId, uint8_t, SimTime) override {
    return Status::Ok();
  }
  ObjectHealth Health(ObjectId) const override { return ObjectHealth::kIntact; }
  bool recovery_active() const override { return false; }
  bool HasSpaceFor(uint64_t, uint8_t) const override { return true; }
};

TEST(ProtocolFuzzTest, TargetSurvivesRandomCommandStreams) {
  NullDataPlane plane;
  OsdTarget target(plane);
  Pcg32 rng(777);

  OsdCommand format;
  format.op = OsdOp::kFormat;
  format.capacity_bytes = 1 << 20;
  (void)target.Execute(format);

  for (int i = 0; i < 20000; ++i) {
    OsdCommand c;
    c.op = static_cast<OsdOp>(rng.NextBounded(12));
    // Mix valid-looking and garbage ids; bias toward a small id pool so
    // commands interact (create/write/remove the same objects).
    c.id = ObjectId{kFirstUserId, kFirstUserId + rng.NextBounded(8)};
    if (rng.NextBounded(10) == 0) c.id = ObjectId{rng.Next(), rng.Next()};
    if (rng.NextBounded(10) == 0) c.id = kControlObject;
    c.logical_size = rng.NextBounded(1 << 16);
    c.capacity_bytes = 1 << 20;
    if (rng.NextBounded(4) == 0) {
      c.data.resize(rng.NextBounded(48));
      for (auto& b : c.data) b = static_cast<uint8_t>(rng.Next());
    }
    c.attr = AttributeId{rng.NextBounded(3), rng.NextBounded(3)};
    c.attr_value = {1, 2, 3};
    (void)target.Execute(c);
  }
  // The store survived and still answers basic queries.
  EXPECT_TRUE(target.object_store().Exists(kControlObject));
  EXPECT_GE(target.stats().commands, 20000u);
}

}  // namespace
}  // namespace reo
