// Robustness fuzz for the control-protocol parser and the OSD target's
// command surface: random bytes and random mutations must never crash or
// corrupt state, and valid messages must round-trip under mutation only
// when still well-formed.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "osd/control_protocol.h"
#include "osd/osd_target.h"
#include "osd/transport.h"
#include "server/admin_protocol.h"
#include "server/frame.h"

namespace reo {
namespace {

TEST(ProtocolFuzzTest, RandomBytesNeverCrash) {
  Pcg32 rng(1234);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> junk(rng.NextBounded(64));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    auto r = DecodeControlMessage(junk);
    // Random bytes are overwhelmingly invalid; decoding must simply fail.
    if (r.ok()) {
      // If it parsed, re-encoding must parse again (canonicalization).
      auto wire = EncodeControlMessage(*r);
      EXPECT_TRUE(DecodeControlMessage(wire).ok());
    }
  }
}

TEST(ProtocolFuzzTest, MutatedValidMessages) {
  Pcg32 rng(99);
  for (int i = 0; i < 5000; ++i) {
    ControlMessage msg;
    if (rng.NextBounded(2) == 0) {
      msg = SetIdCommand{.target = {rng.Next64() >> 8, rng.Next64() >> 8},
                         .class_id = static_cast<uint8_t>(rng.NextBounded(4))};
    } else {
      msg = QueryCommand{.target = {rng.Next64() >> 8, rng.Next64() >> 8},
                         .is_write = rng.NextBounded(2) == 1,
                         .offset = rng.Next(),
                         .size = rng.Next()};
    }
    auto wire = EncodeControlMessage(msg);
    // Unmutated messages round-trip exactly.
    auto decoded = DecodeControlMessage(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(*decoded == msg);

    // Mutate one byte: must either fail cleanly or decode to *something*
    // (single-char hex/int field changes can stay valid) — never crash.
    auto mutated = wire;
    mutated[rng.NextBounded(static_cast<uint32_t>(mutated.size()))] =
        static_cast<uint8_t>(rng.Next());
    (void)DecodeControlMessage(mutated);

    // Truncate: must fail or parse, never crash.
    auto truncated = wire;
    truncated.resize(rng.NextBounded(static_cast<uint32_t>(wire.size())));
    (void)DecodeControlMessage(truncated);
  }
}

/// Data plane that accepts everything, for target-level fuzzing.
class NullDataPlane final : public DataPlane {
 public:
  Result<DataPlaneIo> WriteObject(ObjectId, std::span<const uint8_t>, uint64_t,
                                  uint8_t, SimTime now) override {
    return DataPlaneIo{.complete = now};
  }
  Result<DataPlaneIo> ReadObject(ObjectId, SimTime now) override {
    return DataPlaneIo{.complete = now};
  }
  Status RemoveObject(ObjectId) override { return Status::Ok(); }
  Status SetObjectClass(ObjectId, uint8_t, SimTime) override {
    return Status::Ok();
  }
  ObjectHealth Health(ObjectId) const override { return ObjectHealth::kIntact; }
  bool recovery_active() const override { return false; }
  bool HasSpaceFor(uint64_t, uint8_t) const override { return true; }
};

TEST(ProtocolFuzzTest, TargetSurvivesRandomCommandStreams) {
  NullDataPlane plane;
  OsdTarget target(plane);
  Pcg32 rng(777);

  OsdCommand format;
  format.op = OsdOp::kFormat;
  format.capacity_bytes = 1 << 20;
  (void)target.Execute(format);

  for (int i = 0; i < 20000; ++i) {
    OsdCommand c;
    c.op = static_cast<OsdOp>(rng.NextBounded(12));
    // Mix valid-looking and garbage ids; bias toward a small id pool so
    // commands interact (create/write/remove the same objects).
    c.id = ObjectId{kFirstUserId, kFirstUserId + rng.NextBounded(8)};
    if (rng.NextBounded(10) == 0) c.id = ObjectId{rng.Next(), rng.Next()};
    if (rng.NextBounded(10) == 0) c.id = kControlObject;
    c.logical_size = rng.NextBounded(1 << 16);
    c.capacity_bytes = 1 << 20;
    if (rng.NextBounded(4) == 0) {
      c.data.resize(rng.NextBounded(48));
      for (auto& b : c.data) b = static_cast<uint8_t>(rng.Next());
    }
    c.attr = AttributeId{rng.NextBounded(3), rng.NextBounded(3)};
    c.attr_value = {1, 2, 3};
    (void)target.Execute(c);
  }
  // The store survived and still answers basic queries.
  EXPECT_TRUE(target.object_store().Exists(kControlObject));
  EXPECT_GE(target.stats().commands, 20000u);
}

/// Representative commands touching every opcode and every variable-length
/// field, so truncation sweeps cross every length-prefixed boundary.
std::vector<OsdCommand> SampleCommands() {
  std::vector<OsdCommand> cmds;
  for (int op = 0; op < 12; ++op) {
    OsdCommand c;
    c.op = static_cast<OsdOp>(op);
    c.id = ObjectId{kFirstUserId, kFirstUserId + 42};
    c.logical_size = 4096;
    c.capacity_bytes = 1 << 20;
    c.attr = AttributeId{2, 7};
    c.now = 123456789;
    cmds.push_back(c);
  }
  OsdCommand with_data = cmds[static_cast<int>(OsdOp::kWrite)];
  with_data.data = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  cmds.push_back(with_data);
  OsdCommand with_attr = cmds[static_cast<int>(OsdOp::kSetAttr)];
  with_attr.attr_value = {0xaa, 0xbb, 0xcc};
  cmds.push_back(with_attr);
  OsdCommand empty;  // all defaults
  cmds.push_back(empty);
  return cmds;
}

std::vector<OsdResponse> SampleResponses() {
  std::vector<OsdResponse> resps;
  OsdResponse ok;
  ok.complete = 987654321;
  resps.push_back(ok);
  OsdResponse with_data;
  with_data.data = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  with_data.degraded = true;
  resps.push_back(with_data);
  OsdResponse with_attr;
  with_attr.attr_value = {1, 2, 3, 4};
  resps.push_back(with_attr);
  OsdResponse with_list;
  with_list.list = {kFirstUserId, kFirstUserId + 1, kFirstUserId + 2};
  resps.push_back(with_list);
  OsdResponse failed;
  failed.sense = SenseCode::kFail;
  resps.push_back(failed);
  return resps;
}

// Every prefix of every valid encoding must be rejected with a clean
// Result error — no crash, no out-of-bounds read (run under ASan/UBSan in
// CI's sanitize job). A truncated length-prefixed field is the classic
// parser overread; DecodeCommand/DecodeResponse bound every announced
// length against the bytes actually remaining.
TEST(ProtocolFuzzTest, TruncatedCommandsFailCleanlyAtEveryOffset) {
  for (const OsdCommand& cmd : SampleCommands()) {
    std::vector<uint8_t> wire = EncodeCommand(cmd);
    ASSERT_TRUE(DecodeCommand(wire).ok());
    for (size_t len = 0; len < wire.size(); ++len) {
      auto r = DecodeCommand(std::span<const uint8_t>(wire.data(), len));
      EXPECT_FALSE(r.ok()) << "prefix of " << len << "/" << wire.size()
                           << " bytes decoded as op "
                           << static_cast<int>(cmd.op);
    }
  }
}

TEST(ProtocolFuzzTest, TruncatedResponsesFailCleanlyAtEveryOffset) {
  for (const OsdResponse& resp : SampleResponses()) {
    std::vector<uint8_t> wire = EncodeResponse(resp);
    ASSERT_TRUE(DecodeResponse(wire).ok());
    for (size_t len = 0; len < wire.size(); ++len) {
      auto r = DecodeResponse(std::span<const uint8_t>(wire.data(), len));
      EXPECT_FALSE(r.ok()) << "prefix of " << len << "/" << wire.size();
    }
  }
}

// Huge announced lengths (the 64-bit wrap-around case: pos + n overflows)
// must fail cleanly, not read out of bounds.
TEST(ProtocolFuzzTest, OverlongLengthFieldsFailCleanly) {
  OsdCommand cmd;
  cmd.op = OsdOp::kWrite;
  cmd.id = ObjectId{kFirstUserId, kFirstUserId + 1};
  cmd.data = {1, 2, 3, 4};
  std::vector<uint8_t> wire = EncodeCommand(cmd);
  // Stamp every byte position with 0xFF runs of 8 (covers whichever
  // offsets hold the length prefixes without hardcoding the layout).
  for (size_t pos = 0; pos + 8 <= wire.size(); ++pos) {
    auto mutated = wire;
    for (size_t i = 0; i < 8; ++i) mutated[pos + i] = 0xFF;
    (void)DecodeCommand(mutated);  // must not crash or overread
  }
  OsdResponse resp;
  resp.data = {1, 2, 3, 4};
  resp.list = {5, 6};
  std::vector<uint8_t> rwire = EncodeResponse(resp);
  for (size_t pos = 0; pos + 8 <= rwire.size(); ++pos) {
    auto mutated = rwire;
    for (size_t i = 0; i < 8; ++i) mutated[pos + i] = 0xFF;
    (void)DecodeResponse(mutated);
  }
}

// Under CRC framing, flipping any single byte of a framed command must
// never surface a corrupted payload: the decoder yields kCrcMismatch,
// kBadMagic, kOversized, or kNeedMore — and if it does yield a frame
// (flip landed in bytes past the frame), the payload is byte-identical.
TEST(ProtocolFuzzTest, ByteFlipsUnderCrcFramingNeverYieldCorruptPayloads) {
  OsdCommand cmd;
  cmd.op = OsdOp::kWrite;
  cmd.id = ObjectId{kFirstUserId, kFirstUserId + 3};
  cmd.logical_size = 10;
  cmd.data = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  std::vector<uint8_t> payload = EncodeCommand(cmd);
  std::vector<uint8_t> wire = EncodeFrame(payload);

  for (size_t pos = 0; pos < wire.size(); ++pos) {
    for (uint8_t bit = 0; bit < 8; ++bit) {
      auto mutated = wire;
      mutated[pos] ^= static_cast<uint8_t>(1u << bit);
      FrameDecoder decoder;
      decoder.Feed(mutated);
      std::vector<uint8_t> out;
      FrameStatus st = decoder.Next(&out);
      if (st == FrameStatus::kFrame) {
        // Only reachable if the flip did not affect the decoded frame's
        // bytes — i.e. never for a single frame; fail loudly with context.
        EXPECT_EQ(out, payload) << "corrupt payload surfaced; flipped byte "
                                << pos << " bit " << int(bit);
      } else {
        EXPECT_TRUE(st == FrameStatus::kCrcMismatch ||
                    st == FrameStatus::kBadMagic ||
                    st == FrameStatus::kOversized ||
                    st == FrameStatus::kNeedMore)
            << "unexpected status " << int(st) << " at byte " << pos;
      }
    }
  }
}

// ---- Admin protocol (STATS/SERIES/EVENTS/HEALTH wire encodings) ----

std::vector<AdminResponse> SampleAdminResponses() {
  std::vector<AdminResponse> resps;
  resps.push_back(AdminResponse{0, "{\"schema\":\"reo.health.v1\"}"});
  resps.push_back(AdminResponse{0, ""});  // empty body still frames
  resps.push_back(AdminResponse{1, "{\"error\":\"nope \\\"quoted\\\"\"}"});
  AdminResponse big;
  big.json.assign(4096, 'x');
  resps.push_back(std::move(big));
  return resps;
}

TEST(ProtocolFuzzTest, AdminCommandsRoundTripForEveryOpAndArg) {
  for (uint8_t op = 0; op < 5; ++op) {
    for (uint32_t arg : {0u, 1u, 17u, 0xFFFFFFFFu}) {
      AdminCommand cmd{static_cast<AdminOp>(op), arg};
      std::vector<uint8_t> wire = EncodeAdminCommand(cmd);
      EXPECT_TRUE(IsAdminFrame(wire));
      auto decoded = DecodeAdminCommand(wire);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->op, cmd.op);
      EXPECT_EQ(decoded->arg, cmd.arg);
    }
  }
  for (const AdminResponse& resp : SampleAdminResponses()) {
    auto decoded = DecodeAdminResponse(EncodeAdminResponse(resp));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status, resp.status);
    EXPECT_EQ(decoded->json, resp.json);
  }
}

// Every prefix of every valid admin encoding must be rejected cleanly —
// same truncation sweep the OSD codecs get, both wire directions.
TEST(ProtocolFuzzTest, TruncatedAdminFramesFailCleanlyAtEveryOffset) {
  for (uint8_t op = 0; op < 5; ++op) {
    std::vector<uint8_t> wire =
        EncodeAdminCommand(AdminCommand{static_cast<AdminOp>(op), 7});
    ASSERT_TRUE(DecodeAdminCommand(wire).ok());
    for (size_t len = 0; len < wire.size(); ++len) {
      auto r =
          DecodeAdminCommand(std::span<const uint8_t>(wire.data(), len));
      EXPECT_FALSE(r.ok()) << "request prefix of " << len << " bytes decoded";
    }
  }
  for (const AdminResponse& resp : SampleAdminResponses()) {
    std::vector<uint8_t> wire = EncodeAdminResponse(resp);
    ASSERT_TRUE(DecodeAdminResponse(wire).ok());
    for (size_t len = 0; len < wire.size(); ++len) {
      auto r =
          DecodeAdminResponse(std::span<const uint8_t>(wire.data(), len));
      EXPECT_FALSE(r.ok()) << "response prefix of " << len << "/"
                           << wire.size() << " bytes decoded";
    }
  }
}

// Strictness hinges: trailing bytes after a request, a nonzero reserved
// byte, an unknown op, and a json_len that disagrees with the remaining
// bytes (in either direction, including the 0xFF..FF overflow stamp) all
// reject without overread.
TEST(ProtocolFuzzTest, MalformedAdminFramesFailCleanly) {
  std::vector<uint8_t> req = EncodeAdminCommand(AdminCommand{AdminOp::kStats, 3});
  auto trailing = req;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeAdminCommand(trailing).ok());
  auto reserved = req;
  reserved.back() = 1;
  EXPECT_FALSE(DecodeAdminCommand(reserved).ok());
  auto bad_op = req;
  bad_op[4] = 200;
  EXPECT_FALSE(DecodeAdminCommand(bad_op).ok());
  // An OSD command payload is not an admin frame (and vice versa).
  OsdCommand osd;
  osd.op = OsdOp::kRead;
  EXPECT_FALSE(IsAdminFrame(EncodeCommand(osd)));
  EXPECT_FALSE(DecodeAdminCommand(EncodeCommand(osd)).ok());

  AdminResponse resp{0, "{\"ok\":true}"};
  std::vector<uint8_t> wire = EncodeAdminResponse(resp);
  for (size_t pos = 0; pos + 8 <= wire.size(); ++pos) {
    auto mutated = wire;
    for (size_t i = 0; i < 8; ++i) mutated[pos + i] = 0xFF;
    (void)DecodeAdminResponse(mutated);  // must not crash or overread
  }
  auto short_len = wire;
  --short_len[5];  // json_len low byte: announced < remaining
  EXPECT_FALSE(DecodeAdminResponse(short_len).ok());
  auto long_len = wire;
  ++long_len[5];  // announced > remaining
  EXPECT_FALSE(DecodeAdminResponse(long_len).ok());
}

// Single-byte flips of a CRC-framed admin request: the framing layer
// must flag the corruption (or the strict decoder must reject), and a
// surfaced frame must be byte-identical — corruption never reaches the
// dispatch peek silently.
TEST(ProtocolFuzzTest, AdminByteFlipsUnderCrcFramingNeverYieldCorruptPayloads) {
  std::vector<uint8_t> payload =
      EncodeAdminCommand(AdminCommand{AdminOp::kSeries, 42});
  std::vector<uint8_t> wire = EncodeFrame(payload);
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    for (uint8_t bit = 0; bit < 8; ++bit) {
      auto mutated = wire;
      mutated[pos] ^= static_cast<uint8_t>(1u << bit);
      FrameDecoder decoder;
      decoder.Feed(mutated);
      std::vector<uint8_t> out;
      FrameStatus st = decoder.Next(&out);
      if (st == FrameStatus::kFrame) {
        EXPECT_EQ(out, payload) << "corrupt admin payload surfaced; byte "
                                << pos << " bit " << int(bit);
      } else {
        EXPECT_TRUE(st == FrameStatus::kCrcMismatch ||
                    st == FrameStatus::kBadMagic ||
                    st == FrameStatus::kOversized ||
                    st == FrameStatus::kNeedMore)
            << "unexpected status " << int(st) << " at byte " << pos;
      }
    }
  }
}

TEST(ProtocolFuzzTest, AdminDecodersSurviveRandomBytes) {
  Pcg32 rng(31337);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> junk(rng.NextBounded(64));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    if (auto c = DecodeAdminCommand(junk); c.ok()) {
      EXPECT_EQ(EncodeAdminCommand(*c),
                std::vector<uint8_t>(junk.begin(), junk.end()));
    }
    if (auto r = DecodeAdminResponse(junk); r.ok()) {
      EXPECT_EQ(EncodeAdminResponse(*r),
                std::vector<uint8_t>(junk.begin(), junk.end()));
    }
  }
}

// Random garbage fed to the frame decoder in random-sized chunks: never
// crashes, never yields a frame whose CRC was not actually valid, and
// either poisons or keeps asking for more.
TEST(ProtocolFuzzTest, FrameDecoderSurvivesRandomStreams) {
  Pcg32 rng(4242);
  for (int i = 0; i < 2000; ++i) {
    FrameDecoder decoder(/*max_payload=*/4096);
    size_t total = rng.NextBounded(512);
    std::vector<uint8_t> out;
    while (total > 0 && !decoder.poisoned()) {
      size_t chunk = std::min<size_t>(1 + rng.NextBounded(64), total);
      std::vector<uint8_t> bytes(chunk);
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
      decoder.Feed(bytes);
      total -= chunk;
      for (int pulls = 0; pulls < 8; ++pulls) {
        if (decoder.Next(&out) != FrameStatus::kFrame) break;
      }
    }
  }
}

}  // namespace
}  // namespace reo
