// End-to-end integration tests through CacheSimulator: whole-trace replays
// per protection mode, with content verification and the paper's headline
// qualitative properties as assertions.
#include <gtest/gtest.h>

#include "sim/cache_simulator.h"
#include "workload/medisyn.h"

namespace reo {
namespace {

/// A small but non-trivial workload (runs in well under a second).
MediSynConfig SmallWorkload(double write_ratio = 0.0) {
  MediSynConfig cfg;
  cfg.name = "small";
  cfg.num_objects = 300;
  cfg.mean_object_bytes = 256 * 1024;
  cfg.zipf_skew = 0.9;
  cfg.num_requests = 3000;
  cfg.write_ratio = write_ratio;
  cfg.seed = 7;
  return cfg;
}

SimulationConfig BaseSim(ProtectionMode mode, double reserve = 0.2) {
  SimulationConfig cfg;
  cfg.policy = {.mode = mode, .reo_reserve_fraction = reserve};
  cfg.cache_fraction = 0.10;
  cfg.chunk_logical_bytes = 16 * 1024;
  cfg.scale_shift = 4;
  cfg.verify_hits = true;
  cfg.cache.hhot_refresh_interval = 500;
  return cfg;
}

class ModeP : public ::testing::TestWithParam<ProtectionMode> {};

TEST_P(ModeP, WholeTraceReplayIsConsistent) {
  auto trace = GenerateMediSyn(SmallWorkload());
  CacheSimulator sim(trace, BaseSim(GetParam()));
  auto report = sim.Run();

  EXPECT_EQ(report.total.requests, trace.requests.size());
  EXPECT_GT(report.total.HitRatio(), 0.0);
  EXPECT_LT(report.total.HitRatio(), 1.0);
  EXPECT_GT(report.total.BandwidthMBps(), 0.0);
  EXPECT_GT(report.total.AvgLatencyMs(), 0.0);
  // Every hit's content was CRC-verified against the expected version.
  EXPECT_EQ(report.cache.verify_failures, 0u);
  EXPECT_EQ(report.cache.dirty_lost, 0u);
  EXPECT_EQ(report.cache.hits + report.cache.misses, report.cache.gets);
}

TEST_P(ModeP, SpaceEfficiencyMatchesMode) {
  auto trace = GenerateMediSyn(SmallWorkload());
  CacheSimulator sim(trace, BaseSim(GetParam()));
  auto report = sim.Run();
  double eff = report.space.SpaceEfficiency();
  switch (GetParam()) {
    case ProtectionMode::kUniform0:
      EXPECT_NEAR(eff, 1.0, 0.01);
      break;
    case ProtectionMode::kUniform1:
      EXPECT_NEAR(eff, 0.8, 0.04);
      break;
    case ProtectionMode::kUniform2:
      EXPECT_NEAR(eff, 0.6, 0.05);
      break;
    case ProtectionMode::kFullReplication:
      EXPECT_NEAR(eff, 0.2, 0.02);
      break;
    case ProtectionMode::kReo:
      // Read-only run with a 20 % reserve: efficiency at least 80 %,
      // and the reserve is never exceeded by clean data.
      EXPECT_GE(eff, 0.78);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ModeP,
    ::testing::Values(ProtectionMode::kUniform0, ProtectionMode::kUniform1,
                      ProtectionMode::kUniform2, ProtectionMode::kFullReplication,
                      ProtectionMode::kReo),
    [](const auto& info) {
      std::string name(to_string(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(IntegrationTest, MoreCacheMeansMoreHits) {
  auto trace = GenerateMediSyn(SmallWorkload());
  double prev = -1.0;
  for (double frac : {0.04, 0.08, 0.16}) {
    auto cfg = BaseSim(ProtectionMode::kUniform1);
    cfg.cache_fraction = frac;
    CacheSimulator sim(trace, cfg);
    double hr = sim.Run().total.HitRatio();
    EXPECT_GT(hr, prev) << "fraction " << frac;
    prev = hr;
  }
}

TEST(IntegrationTest, ZeroParityDiesOnFirstFailure) {
  auto trace = GenerateMediSyn(SmallWorkload());
  auto cfg = BaseSim(ProtectionMode::kUniform0);
  cfg.warmup_pass = true;
  cfg.failures = {{.at_request = 1000, .device = 0}};
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();
  ASSERT_EQ(report.windows.size(), 2u);
  // Before the failure the warm cache serves plenty of hits; afterwards
  // the 0-parity volume is unusable (paper §VI.C: hit ratio drops to 0).
  EXPECT_GT(report.windows[0].HitRatio(), 0.3);
  EXPECT_EQ(report.windows[1].HitRatio(), 0.0);
}

TEST(IntegrationTest, ReoDegradesGracefullyAcrossTwoFailures) {
  auto trace = GenerateMediSyn(SmallWorkload());

  auto uniform_cfg = BaseSim(ProtectionMode::kUniform1);
  uniform_cfg.warmup_pass = true;
  uniform_cfg.failures = {{.at_request = 1000, .device = 0},
                          {.at_request = 2000, .device = 1}};
  CacheSimulator uniform(trace, uniform_cfg);
  auto uniform_report = uniform.Run();

  auto reo_cfg = BaseSim(ProtectionMode::kReo, 0.2);
  reo_cfg.warmup_pass = true;
  reo_cfg.failures = uniform_cfg.failures;
  CacheSimulator reo(trace, reo_cfg);
  auto reo_report = reo.Run();

  ASSERT_EQ(uniform_report.windows.size(), 3u);
  ASSERT_EQ(reo_report.windows.size(), 3u);
  // After the second failure, 1-parity has lost everything it could not
  // rebuild in time, while Reo keeps serving its protected hot set: Reo's
  // phase-2 hit ratio must beat uniform's.
  EXPECT_GT(reo_report.windows[2].HitRatio(),
            uniform_report.windows[2].HitRatio());
  EXPECT_EQ(reo_report.cache.verify_failures, 0u);
}

TEST(IntegrationTest, WritebackWorkloadKeepsDirtySafe) {
  auto trace = GenerateMediSyn(SmallWorkload(0.3));
  auto cfg = BaseSim(ProtectionMode::kReo, 0.2);
  cfg.failures = {{.at_request = 1500, .device = 2}};
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();
  EXPECT_GT(report.cache.writes, 0u);
  EXPECT_GT(report.cache.flushes, 0u);
  // Reo replicates dirty data: a single device failure must never lose it.
  EXPECT_EQ(report.cache.dirty_lost, 0u);
  EXPECT_EQ(report.cache.verify_failures, 0u);
}

TEST(IntegrationTest, SpareInsertionEnablesFullRecovery) {
  auto trace = GenerateMediSyn(SmallWorkload());
  auto cfg = BaseSim(ProtectionMode::kUniform1);
  cfg.warmup_pass = true;
  cfg.failures = {{.at_request = 500, .device = 3}};
  cfg.spares = {{.at_request = 600, .device = 3}};
  CacheSimulator sim(trace, cfg);
  auto report = sim.Run();
  EXPECT_GT(report.cache.rebuilds, 0u);
  // With a spare and 1 parity everything recoverable is eventually rebuilt.
  CacheSimulator* s = &sim;
  s->cache().DrainRecovery(0);
  EXPECT_TRUE(s->stripes().DamagedObjects().empty());
}

TEST(IntegrationTest, ReoSpaceEfficiencyTracksReserve) {
  auto trace = GenerateMediSyn(SmallWorkload());
  for (double reserve : {0.1, 0.2, 0.4}) {
    auto cfg = BaseSim(ProtectionMode::kReo, reserve);
    CacheSimulator sim(trace, cfg);
    auto report = sim.Run();
    // §VI.B: space efficiency close to (1 - reserve) or better.
    EXPECT_GE(report.space.SpaceEfficiency(), 1.0 - reserve - 0.05)
        << "reserve " << reserve;
  }
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  auto trace = GenerateMediSyn(SmallWorkload());
  auto cfg = BaseSim(ProtectionMode::kReo);
  CacheSimulator a(trace, cfg), b(trace, cfg);
  auto ra = a.Run(), rb = b.Run();
  EXPECT_EQ(ra.total.hits, rb.total.hits);
  EXPECT_EQ(ra.total.end, rb.total.end);
  EXPECT_EQ(ra.cache.evictions, rb.cache.evictions);
}

TEST(IntegrationTest, WearIsTracked) {
  auto trace = GenerateMediSyn(SmallWorkload());
  CacheSimulator sim(trace, BaseSim(ProtectionMode::kUniform1));
  auto report = sim.Run();
  EXPECT_GT(report.max_wear, 0.0);
}

}  // namespace
}  // namespace reo
